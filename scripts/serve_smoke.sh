#!/bin/sh
# Smoke-test the batch co-simulation service end to end:
#
#   scripts/serve_smoke.sh [STATS_OUT]
#
# Drives one scripted session through `syndex serve` — a DC-motor
# submission, the identical submission again (must be answered from
# the memo cache), a malformed request (must get a structured error
# without killing the session) and a clean shutdown — then asserts
# the response shapes and writes the final stats payload to STATS_OUT
# (default serve-stats.json) for CI to archive.
set -eu

stats_out=${1:-serve-stats.json}
out=$(mktemp)
trap 'rm -f "$out"' EXIT

dune exec bin/syndex.exe -- serve --montecarlo 20 > "$out" <<'EOF'
{"kind":"evaluate","id":1,"path":"examples/data/dc_motor.lcs"}
{"kind":"evaluate","id":2,"path":"examples/data/dc_motor.lcs"}
{this is not json}
{"kind":"stats","id":3}
{"kind":"shutdown","id":4}
EOF

fail() { echo "serve_smoke: $1" >&2; echo "--- session output ---" >&2; cat "$out" >&2; exit 1; }

[ "$(wc -l < "$out")" -eq 5 ] || fail "expected 5 response lines"

line() { sed -n "${1}p" "$out"; }

case "$(line 1)" in
  *'"ok":true'*'"cached":false'*'"design":"dc_motor_file"'*) ;;
  *) fail "first evaluation should be fresh and report the design" ;;
esac

case "$(line 2)" in
  *'"ok":true'*'"cached":true'*) ;;
  *) fail "duplicate submission should be a cache hit" ;;
esac

case "$(line 3)" in
  *'"ok":false'*'"code":"parse"'*) ;;
  *) fail "malformed request should get a structured parse error" ;;
esac

case "$(line 4)" in
  *'"ok":true'*'"kind":"stats"'*'"hits":1'*) ;;
  *) fail "stats should show exactly one cache hit" ;;
esac

case "$(line 5)" in
  *'"ok":true'*'"kind":"bye"'*) ;;
  *) fail "shutdown should be acknowledged with a bye" ;;
esac

# archive the stats payload for the CI artifact
line 4 > "$stats_out"
echo "serve_smoke: OK (stats in $stats_out)"
