#!/bin/sh
# Compare a bench --json dump against a checked-in baseline.
#
#   scripts/compare_bench.sh NEW.json [BASELINE.json] [TOLERANCE]
#
# BASELINE defaults to BENCH_BASELINE.json, TOLERANCE to 0.5 (a bench
# may be up to 50% slower than its baseline before it is flagged —
# shared CI runners are noisy, so the gate warns rather than fails).
# Benches present on only one side are reported and skipped.
# Always exits 0; regressions are surfaced as GitHub ::warning lines.
set -eu

new=${1:?usage: compare_bench.sh NEW.json [BASELINE.json] [TOLERANCE]}
baseline=${2:-BENCH_BASELINE.json}
tol=${3:-0.5}

[ -f "$new" ] || { echo "compare_bench: $new not found" >&2; exit 1; }
[ -f "$baseline" ] || { echo "compare_bench: $baseline not found" >&2; exit 1; }

# The dump is one {"name": ..., "time_ns": ...} object per line.
extract() {
  sed -n 's/.*"name": *"\([^"]*\)", *"time_ns": *\([0-9.eE+-]*\).*/\1 \2/p' "$1"
}

extract "$new" | sort > /tmp/bench_new.$$
extract "$baseline" | sort > /tmp/bench_base.$$
trap 'rm -f /tmp/bench_new.$$ /tmp/bench_base.$$' EXIT

join /tmp/bench_base.$$ /tmp/bench_new.$$ | awk -v tol="$tol" '
  {
    name = $1; base = $2; new = $3
    ratio = (base > 0) ? new / base : 0
    status = "ok"
    if (new > base * (1 + tol)) { status = "REGRESSION"; bad++ }
    printf "%-30s baseline %12.1f ns   now %12.1f ns   x%.2f   %s\n", \
           name, base, new, ratio, status
    if (status == "REGRESSION")
      printf "::warning title=bench regression::%s is %.2fx its baseline (%.0f ns vs %.0f ns)\n", \
             name, ratio, new, base
  }
  END { if (bad) printf "%d bench(es) above tolerance %.0f%%\n", bad, tol * 100
        else print "all benches within tolerance" }'

only_base=$(join -v1 /tmp/bench_base.$$ /tmp/bench_new.$$ | cut -d' ' -f1)
only_new=$(join -v2 /tmp/bench_base.$$ /tmp/bench_new.$$ | cut -d' ' -f1)
[ -z "$only_base" ] || echo "in baseline only (not run): $only_base"
[ -z "$only_new" ] || echo "new benches (no baseline): $only_new"

exit 0
