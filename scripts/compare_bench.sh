#!/bin/sh
# Compare bench --json dumps against a checked-in baseline.
#
#   scripts/compare_bench.sh NEW.json [NEW2.json ...]
#
# Every dump is a bench --json array; the same bench name may appear in
# several dumps (CI runs each bench >= 5 times into separate files) and
# the comparison uses the per-name MEDIAN of all samples, so a single
# noisy run can neither flag nor hide a regression.
#
# Environment:
#   BASELINE        baseline file       (default BENCH_BASELINE.json)
#   TOLERANCE       warn threshold      (default 0.5  = +50 %)
#   GATE_TOLERANCE  failing threshold   (default 0.25 = +25 %)
#   GATE_PATTERN    benches the gate fails on (default sim_hot_loop plus
#                   explore_throughput — the stable simulation kernels
#                   and the cold exploration pipeline; everything else
#                   only warns, shared CI runners are too noisy for the
#                   rest.  explore_throughput$ is anchored so the warm
#                   cache-replay variant, whose first run pays the lazy
#                   cache fill, stays warn-only)
#   GATE_MIN_RUNS   samples required for a gated verdict (default 5)
#
# Exit status: 1 when a GATE_PATTERN bench exceeds GATE_TOLERANCE with
# at least GATE_MIN_RUNS samples, or was not run at all; else 0.
set -eu

[ $# -ge 1 ] || { echo "usage: compare_bench.sh NEW.json [NEW2.json ...]" >&2; exit 2; }
baseline=${BASELINE:-BENCH_BASELINE.json}
tol=${TOLERANCE:-0.5}
gate_tol=${GATE_TOLERANCE:-0.25}
gate=${GATE_PATTERN:-"sim_hot_loop|explore_throughput$"}
min_runs=${GATE_MIN_RUNS:-5}

for f in "$@" "$baseline"; do
  [ -f "$f" ] || { echo "compare_bench: $f not found" >&2; exit 2; }
done

# Each dump is one {"name": ..., "time_ns": ...} object per line.
extract() {
  sed -n 's/.*"name": *"\([^"]*\)", *"time_ns": *\([0-9.eE+-]*\).*/\1 \2/p' "$@"
}

new_samples=/tmp/bench_new.$$
base_medians=/tmp/bench_base.$$
trap 'rm -f "$new_samples" "$base_medians"' EXIT
extract "$@" | sort > "$new_samples"
extract "$baseline" | sort > "$base_medians"

awk -v tol="$tol" -v gate_tol="$gate_tol" -v gate="$gate" -v min_runs="$min_runs" \
    -v base_file="$base_medians" '
  FILENAME == base_file { baseline[$1] = $2; next }
  { n[$1]++; sample[$1, n[$1]] = $2 }
  END {
    bad = 0
    for (name in baseline) if (!(name in n)) {
      if (name ~ gate) {
        printf "::error title=bench missing::gated bench %s was not run\n", name
        bad++
      } else
        printf "in baseline only (not run): %s\n", name
    }
    for (name in n) {
      # insertion-sort the samples, then take the median
      m = n[name]
      for (i = 1; i <= m; i++) v[i] = sample[name, i]
      for (i = 2; i <= m; i++) {
        x = v[i]
        for (j = i - 1; j >= 1 && v[j] > x; j--) v[j + 1] = v[j]
        v[j + 1] = x
      }
      med = (m % 2) ? v[(m + 1) / 2] : (v[m / 2] + v[m / 2 + 1]) / 2
      if (!(name in baseline)) {
        printf "%-30s median %12.1f ns over %d run(s)   (no baseline)\n", name, med, m
        continue
      }
      b = baseline[name]
      ratio = (b > 0) ? med / b : 0
      status = "ok"
      if (name ~ gate && med > b * (1 + gate_tol)) {
        if (m >= min_runs) { status = "REGRESSION (gated)"; bad++ }
        else status = sprintf("REGRESSION? (%d run(s), gate needs %d)", m, min_runs)
      } else if (med > b * (1 + tol))
        status = "REGRESSION"
      printf "%-30s baseline %12.1f ns   median %12.1f ns over %d run(s)   x%.2f   %s\n", \
             name, b, med, m, ratio, status
      if (status == "REGRESSION (gated)")
        printf "::error title=bench regression::%s median is %.2fx its baseline (%.0f ns vs %.0f ns over %d runs)\n", \
               name, ratio, med, b, m
      else if (index(status, "REGRESSION") == 1)
        printf "::warning title=bench regression::%s median is %.2fx its baseline (%.0f ns vs %.0f ns)\n", \
               name, ratio, med, b
    }
    if (bad) {
      printf "%d gated bench(es) beyond the %.0f%% failing threshold\n", bad, gate_tol * 100
      exit 1
    }
    printf "all benches within tolerance (gate %s at +%.0f%%, others warn at +%.0f%%)\n", \
           gate, gate_tol * 100, tol * 100
  }' "$base_medians" "$new_samples"
