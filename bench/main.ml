(* Benchmark harness: one Bechamel test per experiment of DESIGN.md's
   index (measuring the machinery that regenerates each figure), plus
   the ablation benches for the design choices DESIGN.md calls out.

   Run with: dune exec bench/main.exe                                 *)

open Bechamel
open Bechamel.Toolkit

module M = Numerics.Matrix
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations

(* ------------------------------------------------------------------ *)
(* shared fixtures (built once; benchmarks measure the runs) *)

let dc_design =
  Lifecycle.Design.pid_loop ~name:"dc_motor"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. }
    ~ts:0.05 ~reference:1. ~horizon:2.0 ()

let dc_durations ?(operators = [ "P0" ]) ~frac () =
  let ts = 0.05 in
  let d = Dur.create () in
  let set op share =
    List.iter (fun operator -> Dur.set d ~op ~operator (share *. frac *. ts)) operators
  in
  set "reference" 0.05;
  set "sample_y" 0.2;
  set "pid" 0.6;
  set "hold_u" 0.15;
  d

let two_proc = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 [ "P0"; "P1" ]

let dc_impl =
  Lifecycle.Methodology.implement ~design:dc_design ~architecture:two_proc
    ~durations:(dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 ())
    ()

let single_impl =
  Lifecycle.Methodology.implement ~design:dc_design ~architecture:(Arch.single ())
    ~durations:(dc_durations ~frac:0.6 ())
    ()

let fj8_procs = List.init 4 (fun i -> Printf.sprintf "P%d" i)
let fj8, fj8_dur = Aaa.Workloads.fork_join ~branches:8 ~operators:fj8_procs ()
let fj8_arch = Arch.bus_topology ~latency:0.005 ~time_per_word:0.002 fj8_procs

(* ------------------------------------------------------------------ *)
(* experiment benches (one per figure/experiment id) *)

let bench_fig1_latencies =
  Test.make ~name:"fig1_latencies"
    (Staged.stage (fun () ->
         let trace =
           Exec.Machine.run
             ~config:{ Exec.Machine.default_config with iterations = 50 }
             dc_impl.Lifecycle.Methodology.executive
         in
         ignore (Exec.Machine.sampling_latencies trace)))

let bench_fig2_ideal_sim =
  Test.make ~name:"fig2_ideal_sim"
    (Staged.stage (fun () -> ignore (Lifecycle.Methodology.simulate_ideal dc_design)))

let bench_fig3_delay_graph_sim =
  Test.make ~name:"fig3_delay_graph_sim"
    (Staged.stage (fun () ->
         ignore (Lifecycle.Methodology.simulate_implemented dc_design single_impl)))

let bench_fig4_sequencing =
  Test.make ~name:"fig4_sequencing"
    (Staged.stage (fun () ->
         let built = dc_design.Lifecycle.Design.build () in
         ignore
           (Translator.Cosim.attach_delay_graph ~graph:built.Lifecycle.Design.graph
              ~schedule:single_impl.Lifecycle.Methodology.schedule
              ~binding:single_impl.Lifecycle.Methodology.binding ())))

let cond_schedule =
  (* mode + two conditioned branches, for the Fig. 5 machinery *)
  let alg = Alg.create ~name:"cond" ~period:0.1 in
  let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  Alg.set_condition_source alg ~var:"m" (mode, 0);
  let _ =
    Alg.add_op alg ~name:"cheap" ~kind:Alg.Compute ~cond:{ Alg.var = "m"; value = 0 } ()
  in
  let _ =
    Alg.add_op alg ~name:"costly" ~kind:Alg.Compute ~cond:{ Alg.var = "m"; value = 1 } ()
  in
  let d = Dur.create () in
  Dur.set d ~op:"mode" ~operator:"P0" 0.002;
  Dur.set d ~op:"cheap" ~operator:"P0" 0.002;
  Dur.set d ~op:"costly" ~operator:"P0" 0.03;
  Aaa.Adequation.run ~algorithm:alg ~architecture:(Arch.single ()) ~durations:d ()

let bench_fig5_conditioning =
  Test.make ~name:"fig5_conditioning"
    (Staged.stage (fun () ->
         let exe = Aaa.Codegen.generate cond_schedule in
         let config =
           {
             Exec.Machine.default_config with
             iterations = 100;
             condition = (fun ~iteration ~var:_ -> iteration mod 2);
           }
         in
         ignore (Exec.Machine.run ~config exe)))

let bench_sync_block =
  Test.make ~name:"sync_block"
    (Staged.stage (fun () ->
         (* two clocks joined by a synchronization block, ~900 events *)
         let module G = Dataflow.Graph in
         let module E = Dataflow.Eventlib in
         let g = G.create () in
         let c1 = G.add g (E.clock ~period:0.01 ()) in
         let c2 = G.add g (E.clock ~period:0.013 ()) in
         let sync = G.add g (E.synchronization ~inputs:2 ()) in
         let count = G.add g (E.event_counter ()) in
         G.connect_event g ~src:(c1, 0) ~dst:(sync, 0);
         G.connect_event g ~src:(c2, 0) ~dst:(sync, 1);
         G.connect_event g ~src:(sync, 0) ~dst:(count, 0);
         let e = Sim.Engine.create g in
         Sim.Engine.run ~t_end:5. e))

let bench_latency_sweep_point =
  Test.make ~name:"latency_sweep"
    (Staged.stage (fun () ->
         ignore
           (Lifecycle.Methodology.evaluate ~design:dc_design ~architecture:(Arch.single ())
              ~durations:(dc_durations ~frac:0.5 ())
              ())))

let bench_jitter_sweep_point =
  Test.make ~name:"jitter_sweep"
    (Staged.stage (fun () ->
         let mode =
           Translator.Delay_graph.Jittered
             { law = Exec.Timing_law.Uniform; bcet_frac = 0.5; seed = 3 }
         in
         ignore (Lifecycle.Methodology.simulate_implemented ~mode dc_design single_impl)))

let bench_adequation =
  Test.make ~name:"adequation_sweep"
    (Staged.stage (fun () ->
         ignore
           (Aaa.Adequation.run ~algorithm:fj8 ~architecture:fj8_arch ~durations:fj8_dur ())))

let bench_lifecycle_suspension =
  (* one full lifecycle evaluation of a 4-state loop *)
  let plant =
    let sys = Control.Plants.quarter_car Control.Plants.default_quarter_car in
    Control.Lti.make ~domain:Control.Lti.Continuous ~a:sys.Control.Lti.a
      ~b:(M.block sys.Control.Lti.b 0 0 4 1) ~c:(M.identity 4) ~d:(M.zeros 4 1)
  in
  let k =
    Lifecycle.Calibrate.lqr_gain ~plant ~ts:0.05
      ~q:(M.scale 1e4 (M.identity 4))
      ~r:(M.of_arrays [| [| 1e-4 |] |])
      ()
  in
  let design =
    Lifecycle.Design.state_feedback_loop ~name:"suspension" ~plant ~x0:[| 0.05; 0.; 0.; 0. |]
      ~k ~ts:0.05 ~horizon:1.0 ()
  in
  let arch = Arch.bus_topology ~latency:0.001 ~time_per_word:0.0005 [ "w"; "b" ] in
  let durations =
    let d = Dur.create () in
    for i = 0 to 3 do
      Dur.set d ~op:(Printf.sprintf "sample_x%d" i) ~operator:"w" 0.0024
    done;
    Dur.set d ~op:"sfb" ~operator:"b" 0.0238;
    Dur.set d ~op:"hold_u" ~operator:"b" 0.0024;
    d
  in
  Test.make ~name:"lifecycle_suspension"
    (Staged.stage (fun () ->
         ignore (Lifecycle.Methodology.evaluate ~design ~architecture:arch ~durations ())))

let bench_codegen_exec =
  Test.make ~name:"codegen_exec"
    (Staged.stage (fun () ->
         let exe = Aaa.Codegen.generate dc_impl.Lifecycle.Methodology.schedule in
         ignore
           (Exec.Machine.run
              ~config:
                { Exec.Machine.default_config with iterations = 100; comm_jitter_frac = 0.3 }
              exe)))

let bench_failover_table =
  let fj8_nominal =
    Aaa.Adequation.run ~algorithm:fj8 ~architecture:fj8_arch ~durations:fj8_dur ()
  in
  Test.make ~name:"fault_failover_table"
    (Staged.stage (fun () ->
         ignore
           (Fault.Degrade.failover_table ~algorithm:fj8 ~architecture:fj8_arch
              ~durations:fj8_dur ~nominal:fj8_nominal ())))

let bench_injected_machine =
  let injection =
    Fault.Scenario.injection
      (Fault.Scenario.make ~name:"loss" ~seed:17
         [ Fault.Scenario.Message_loss { medium = None; prob = 0.2 } ])
      ~architecture:two_proc
  in
  Test.make ~name:"fault_injected_machine"
    (Staged.stage (fun () ->
         ignore
           (Exec.Machine.run
              ~config:{ Exec.Machine.default_config with iterations = 100; injection }
              dc_impl.Lifecycle.Methodology.executive)))

let bench_recovery_retransmission =
  let injection =
    Fault.Scenario.injection
      (Fault.Scenario.make ~name:"loss" ~seed:17
         [ Fault.Scenario.Message_loss { medium = None; prob = 0.2 } ])
      ~architecture:two_proc
  in
  let recovery = Exec.Recovery.make ~period:0.05 () in
  Test.make ~name:"recovery_retransmission"
    (Staged.stage (fun () ->
         ignore
           (Exec.Machine.run
              ~config:
                { Exec.Machine.default_config with iterations = 100; injection; recovery }
              dc_impl.Lifecycle.Methodology.executive)))

let bench_recovery_mode_switch =
  let injection =
    Fault.Scenario.injection
      (Fault.Scenario.make ~name:"failstop" ~seed:17
         [ Fault.Scenario.Processor_failstop { operator = "P1"; at = 1.0 } ])
      ~architecture:two_proc
  in
  let failover =
    Fault.Degrade.failover_executives
      (Fault.Degrade.failover_table ~algorithm:dc_impl.Lifecycle.Methodology.algorithm
         ~architecture:two_proc
         ~durations:(dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 ())
         ~nominal:dc_impl.Lifecycle.Methodology.schedule ())
  in
  let recovery = Exec.Recovery.make ~failover ~period:0.05 () in
  Test.make ~name:"recovery_mode_switch"
    (Staged.stage (fun () ->
         ignore
           (Exec.Machine.run
              ~config:
                { Exec.Machine.default_config with iterations = 100; injection; recovery }
              dc_impl.Lifecycle.Methodology.executive)))

let bench_standby_vote =
  let injection =
    Fault.Scenario.injection
      (Fault.Scenario.make ~name:"failstop" ~seed:17
         [ Fault.Scenario.Processor_failstop { operator = "P1"; at = 1.0 } ])
      ~architecture:two_proc
  in
  let table =
    Fault.Degrade.failover_table ~algorithm:dc_impl.Lifecycle.Methodology.algorithm
      ~architecture:two_proc
      ~durations:(dc_durations ~operators:[ "P0"; "P1" ] ~frac:0.6 ())
      ~nominal:dc_impl.Lifecycle.Methodology.schedule ()
  in
  let plan =
    match
      Fault.Degrade.standby_plan_for table
        ~nominal:dc_impl.Lifecycle.Methodology.schedule ~operator:"P1"
    with
    | Some p -> p
    | None -> failwith "standby_vote bench: no standby plan for P1"
  in
  let recovery = Exec.Recovery.make ~period:0.05 () in
  Test.make ~name:"standby_vote"
    (Staged.stage (fun () ->
         ignore
           (Exec.Standby.run
              ~config:
                { Exec.Machine.default_config with iterations = 100; injection; recovery }
              ~protects:"P1" ~standby:plan.Fault.Degrade.executive
              dc_impl.Lifecycle.Methodology.executive)))

(* ------------------------------------------------------------------ *)
(* ablation benches (design choices called out in DESIGN.md) *)

let bench_ablation_strategy_pressure =
  Test.make ~name:"ablation_adequation_pressure"
    (Staged.stage (fun () ->
         ignore
           (Aaa.Adequation.run ~strategy:Aaa.Adequation.Pressure ~algorithm:fj8
              ~architecture:fj8_arch ~durations:fj8_dur ())))

let bench_ablation_strategy_eft =
  Test.make ~name:"ablation_adequation_eft"
    (Staged.stage (fun () ->
         ignore
           (Aaa.Adequation.run ~strategy:Aaa.Adequation.Earliest_finish ~algorithm:fj8
              ~architecture:fj8_arch ~durations:fj8_dur ())))

let bench_ablation_refine =
  Test.make ~name:"ablation_adequation_refine"
    (Staged.stage (fun () ->
         let initial =
           Aaa.Adequation.run ~algorithm:fj8 ~architecture:fj8_arch ~durations:fj8_dur ()
         in
         ignore
           (Aaa.Adequation.refine ~iterations:50 ~algorithm:fj8 ~architecture:fj8_arch
              ~durations:fj8_dur ~initial ())))

let bench_sdx_roundtrip =
  let app =
    {
      Aaa.Sdx.algorithm = fj8;
      architecture = fj8_arch;
      durations = fj8_dur;
      pins = [];
    }
  in
  Test.make ~name:"sdx_roundtrip"
    (Staged.stage (fun () -> ignore (Aaa.Sdx.parse (Aaa.Sdx.print app))))

let bench_ablation_ode_rk4 =
  Test.make ~name:"ablation_engine_rk4"
    (Staged.stage (fun () ->
         ignore (Lifecycle.Methodology.simulate_ideal ~meth:Numerics.Ode.Rk4 dc_design)))

let bench_ablation_ode_rkf45 =
  Test.make ~name:"ablation_engine_rkf45"
    (Staged.stage (fun () ->
         ignore
           (Lifecycle.Methodology.simulate_ideal ~meth:Numerics.Ode.default_method dc_design)))

let bench_ablation_delay_static =
  Test.make ~name:"ablation_delay_static"
    (Staged.stage (fun () ->
         ignore
           (Lifecycle.Methodology.simulate_implemented ~mode:Translator.Delay_graph.Static_wcet
              dc_design single_impl)))

let bench_ablation_delay_jittered =
  Test.make ~name:"ablation_delay_jittered"
    (Staged.stage (fun () ->
         ignore
           (Lifecycle.Methodology.simulate_implemented
              ~mode:
                (Translator.Delay_graph.Jittered
                   { law = Exec.Timing_law.Uniform; bcet_frac = 0.4; seed = 11 })
              dc_design single_impl)))

(* ------------------------------------------------------------------ *)
(* exploration-engine benches: one irregular-duration 32-candidate
   grid (seeds axis innermost, so cache hits and engine reuse both
   apply) through three paths:

   - explore_throughput: the streamed work-stealing map-reduce with
     per-domain engine reuse and a fresh cache per run (cold) — the
     headline candidates/sec number;
   - explore_throughput_warm: same pipeline against a shared
     pre-filled cache (every candidate replays, measuring the
     memo/reduce overhead floor);
   - explore_chunked_rebuild: the pre-map-reduce path — eager list,
     static chunks, adequation + diagram + engine rebuilt for every
     candidate (engine_reuse:false) — the speedup baseline.

   All three produce bit-for-bit identical points
   (test/test_explore.ml enforces it); candidates/sec lands in the
   JSON dump via [explore_candidates]. *)

let explore_design =
  Lifecycle.Design.pid_loop ~name:"bench_dc"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. }
    ~ts:0.05 ~reference:1. ~horizon:1.0 ()

(* screening variant: design-space sweeps triage large grids with a
   short horizon, where per-candidate cost is build-dominated rather
   than run-dominated — the regime the engine-reuse path targets *)
let explore_screen_design =
  Lifecycle.Design.pid_loop ~name:"bench_dc_screen"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. }
    ~ts:0.05 ~reference:1. ~horizon:0.25 ()

let explore_platforms =
  let platform label price architecture operators =
    let durations_of frac =
      let ts = 0.05 in
      let d = Dur.create () in
      let set op share =
        List.iter
          (fun operator ->
            Dur.set d ~op ~operator (share *. frac *. ts);
            Dur.set_bcet d ~op ~operator (0.4 *. share *. frac *. ts))
          operators
      in
      set "reference" 0.05;
      set "sample_y" 0.2;
      set "pid" 0.6;
      set "hold_u" 0.15;
      d
    in
    { Explore.Grid.label; price; architecture; durations_of }
  in
  [
    platform "mcu" 1.0 (Arch.single ()) [ "P0" ];
    platform "duo" 2.2 two_proc [ "P0"; "P1" ];
  ]

let explore_fractions = [ 0.2; 0.4; 0.6; 0.8 ]
let explore_seeds = List.init 16 (fun i -> 41 + i)

let explore_grid =
  Explore.Grid.candidates ~fractions:explore_fractions ~seeds:explore_seeds
    ~platforms:explore_platforms ()

let explore_grid_seq () =
  Explore.Grid.seq ~fractions:explore_fractions ~seeds:explore_seeds
    ~platforms:explore_platforms ()

(* the number of evaluations each explore bench performs per run —
   dump_json derives candidates/sec from it *)
let explore_candidates =
  let n = List.length explore_grid in
  [
    ("explore_throughput", n);
    ("explore_throughput_warm", n);
    ("explore_chunked_rebuild", n);
  ]

let explore_pool_par =
  Explore.Pool.create ~domains:(max 2 (Domain.recommended_domain_count ())) ()

let bench_explore_throughput =
  Test.make ~name:"explore_throughput"
    (Staged.stage (fun () ->
         (* fresh cache each run: the bench measures evaluation, not replay *)
         let cache = Explore.Cache.create () in
         ignore
           (Lifecycle.Explorer.evaluate_seq ~pool:explore_pool_par ~cache
              ~designs:[ explore_screen_design ]
              ~candidates:(explore_grid_seq ()) ())))

let explore_warm_cache = lazy (
  let cache = Explore.Cache.create () in
  ignore
    (Lifecycle.Explorer.evaluate_seq ~pool:explore_pool_par ~cache
       ~designs:[ explore_screen_design ]
       ~candidates:(explore_grid_seq ()) ());
  cache)

let bench_explore_throughput_warm =
  Test.make ~name:"explore_throughput_warm"
    (Staged.stage (fun () ->
         let cache = Lazy.force explore_warm_cache in
         ignore
           (Lifecycle.Explorer.evaluate_seq ~pool:explore_pool_par ~cache
              ~designs:[ explore_screen_design ]
              ~candidates:(explore_grid_seq ()) ())))

let bench_explore_chunked_rebuild =
  Test.make ~name:"explore_chunked_rebuild"
    (Staged.stage (fun () ->
         let cache = Explore.Cache.create () in
         ignore
           (Lifecycle.Explorer.evaluate ~pool:explore_pool_par ~cache
              ~engine_reuse:false ~designs:[ explore_screen_design ]
              ~candidates:explore_grid ())))

(* ------------------------------------------------------------------ *)
(* serve-batch benches: the same 32-scenario Monte-Carlo batch through
   one shared compiled engine (Serve.Batch: reseed + reset between
   scenarios) and through the per-scenario rebuild path the rest of
   the toolchain uses.  The gap is the compilation amortisation the
   batch service exists for; results are bit-for-bit equal
   (test/test_serve.ml enforces it). *)

let serve_impl =
  Lifecycle.Methodology.implement ~design:explore_design ~architecture:(Arch.single ())
    ~durations:(dc_durations ~frac:0.6 ())
    ()

let serve_seeds = List.init 32 (fun i -> 1000 + i)

let bench_serve_batch_shared =
  Test.make ~name:"serve_batch_shared"
    (Staged.stage (fun () ->
         let b = Serve.Batch.create ~design:explore_design ~implementation:serve_impl () in
         List.iter (fun seed -> ignore (Serve.Batch.cost b ~seed)) serve_seeds))

let bench_serve_batch_rebuild =
  Test.make ~name:"serve_batch_rebuild"
    (Staged.stage (fun () ->
         List.iter
           (fun seed ->
             let engine =
               Lifecycle.Methodology.simulate_implemented
                 ~mode:
                   (Translator.Delay_graph.Jittered
                      { law = Exec.Timing_law.Uniform; bcet_frac = 0.4; seed })
                 explore_design serve_impl
             in
             ignore (explore_design.Lifecycle.Design.cost engine))
           serve_seeds))

(* ------------------------------------------------------------------ *)
(* simulation hot-loop micro-benches: the engine's two inner loops in
   isolation (event delivery and continuous integration), re-run on a
   prebuilt engine via reset.  CI tracks these against
   BENCH_BASELINE.json (scripts/compare_bench.sh). *)

let hot_event_engine =
  (* event-dense: two incommensurate clocks, a synchronization point, a
     divider and a discrete PID loop sampled by the fast clock — no
     continuous state, so the run is pure event-machinery. *)
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let module E = Dataflow.Eventlib in
  let g = G.create () in
  let clock_fast = G.add g (E.clock ~period:0.01 ()) in
  let clock_slow = G.add g (E.clock ~period:0.013 ()) in
  let sync = G.add g (E.synchronization ~inputs:2 ()) in
  let div3 = G.add g (E.divider ~factor:3 ()) in
  let counter = G.add g (E.event_counter ()) in
  let latch = G.add g (E.event_latch_time ()) in
  let reference = G.add g (C.constant [| 1. |]) in
  let wave = G.add g (C.sine_source ~freq_hz:0.5 ()) in
  let sh_y = G.add g (C.sample_hold 1) in
  let pid =
    G.add g
      (C.pid
         (Control.Pid.create ~gains:{ Control.Pid.kp = 2.; ki = 1.; kd = 0. } ~ts:0.01 ()))
  in
  let sh_u = G.add g (C.sample_hold 1) in
  let delay = G.add g (C.unit_delay [| 0. |]) in
  G.connect_data g ~src:(wave, 0) ~dst:(sh_y, 0);
  G.connect_data g ~src:(reference, 0) ~dst:(pid, 0);
  G.connect_data g ~src:(sh_y, 0) ~dst:(pid, 1);
  G.connect_data g ~src:(pid, 0) ~dst:(sh_u, 0);
  G.connect_data g ~src:(sh_u, 0) ~dst:(delay, 0);
  G.connect_event g ~src:(clock_fast, 0) ~dst:(sync, 0);
  G.connect_event g ~src:(clock_slow, 0) ~dst:(sync, 1);
  G.connect_event g ~src:(sync, 0) ~dst:(div3, 0);
  G.connect_event g ~src:(div3, 0) ~dst:(counter, 0);
  G.connect_event g ~src:(sync, 0) ~dst:(latch, 0);
  List.iter (fun b -> G.connect_event g ~src:(clock_fast, 0) ~dst:(b, 0)) [ sh_y; pid; sh_u ];
  G.connect_event g ~src:(clock_slow, 0) ~dst:(delay, 0);
  let e = Sim.Engine.create g in
  Sim.Engine.add_probe e ~name:"u" ~block:sh_u ~port:0;
  Sim.Engine.add_probe e ~name:"count" ~block:counter ~port:0;
  e

let bench_sim_hot_loop_events =
  Test.make ~name:"sim_hot_loop_events"
    (Staged.stage (fun () ->
         Sim.Engine.reset hot_event_engine;
         Sim.Engine.run ~t_end:10. hot_event_engine))

let hot_ode_engine =
  (* ODE-dense: a closed PID loop on a 2-state DC motor under RKF45 —
     the run is dominated by right-hand-side evaluations. *)
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let module E = Dataflow.Eventlib in
  let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
  let ts = 0.05 in
  let g = G.create () in
  let p = G.add g (C.lti_continuous ~x0:[| 0.; 0. |] plant) in
  let r = G.add g (C.constant [| 1. |]) in
  let sh = G.add g (C.sample_hold 1) in
  let pid =
    G.add g
      (C.pid (Control.Pid.create ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. } ~ts ()))
  in
  let hold = G.add g (C.sample_hold 1) in
  let clock = G.add g (E.clock ~period:ts ()) in
  G.connect_data g ~src:(p, 0) ~dst:(sh, 0);
  G.connect_data g ~src:(r, 0) ~dst:(pid, 0);
  G.connect_data g ~src:(sh, 0) ~dst:(pid, 1);
  G.connect_data g ~src:(pid, 0) ~dst:(hold, 0);
  G.connect_data g ~src:(hold, 0) ~dst:(p, 0);
  List.iter (fun b -> G.connect_event g ~src:(clock, 0) ~dst:(b, 0)) [ sh; pid; hold ];
  let e = Sim.Engine.create g in
  Sim.Engine.add_probe e ~name:"y" ~block:p ~port:0;
  e

let bench_sim_hot_loop_ode =
  Test.make ~name:"sim_hot_loop_ode"
    (Staged.stage (fun () ->
         Sim.Engine.reset hot_ode_engine;
         Sim.Engine.run ~t_end:5. hot_ode_engine))

(* ------------------------------------------------------------------ *)
(* media benches: CAN-like arbitration in isolation (hundreds of
   nodes) and through the executive.  CI tracks both against
   BENCH_BASELINE.json (scripts/compare_bench.sh). *)

let media_bus_cfg =
  (* 200 background nodes, mixed priorities and payloads, ~20 %
     aggregate utilization *)
  let nodes = 200 in
  let load =
    List.init nodes (fun i ->
        Media.Load.periodic ~jitter_frac:0.2 ~node:i
          ~ident:(if i mod 7 = 0 then i else 256 + i)
          ~words:(1 + (i mod 8))
          ~period:(0.5 *. float_of_int nodes /. 64.)
          ())
  in
  Media.Bus.make ~name:"bus" ~time_per_word:0.0001 ~frame_overhead:0.001 ~seed:42
    ~load ()

let bench_media_arbitration =
  Test.make ~name:"media_arbitration"
    (Staged.stage (fun () ->
         let b = Media.Bus.create media_bus_cfg in
         for k = 0 to 99 do
           ignore
             (Media.Bus.transmit b ~ident:300 ~node:(k mod 200)
                ~release:(0.01 *. float_of_int k)
                ~duration:0.0005)
         done;
         Media.Bus.drain b ~until:1.0))

let fj8_sched =
  Aaa.Adequation.run ~algorithm:fj8 ~architecture:fj8_arch ~durations:fj8_dur ()

let fj8_exe = Aaa.Codegen.generate fj8_sched

let contention_bus =
  Media.Bus.make ~name:"bus" ~time_per_word:0.002 ~frame_overhead:0.004 ~seed:11
    ~load:
      [
        Media.Load.periodic ~jitter_frac:0.3 ~node:0 ~ident:8 ~words:2
          ~period:0.05 ();
      ]
    ()

let bench_exec_bus_contention =
  Test.make ~name:"exec_bus_contention"
    (Staged.stage (fun () ->
         ignore
           (Exec.Machine.run
              ~config:
                {
                  Exec.Machine.default_config with
                  iterations = 20;
                  durations = Some fj8_dur;
                  bus_models = [ ("bus", contention_bus) ];
                }
              fj8_exe)))

(* a large multi-loop diagram for the value-flow analysis: each loop
   is source → sum → saturation → quantizer → delay → gain → back to
   the sum, so every cycle forces the fixpoint through widening and
   narrowing at the delay *)
let absint_graph =
  let g = Dataflow.Graph.create () in
  for i = 0 to 33 do
    let amplitude = 1. +. (0.1 *. float_of_int i) in
    let src = Dataflow.Graph.add g (Dataflow.Clib.constant [| amplitude |]) in
    let sum = Dataflow.Graph.add g (Dataflow.Clib.sum [| 1.; 1. |]) in
    let sat = Dataflow.Graph.add g (Dataflow.Clib.saturation ~lo:(-10.) ~hi:10. ()) in
    let quant = Dataflow.Graph.add g (Dataflow.Clib.quantizer ~step:0.01 ()) in
    let delay = Dataflow.Graph.add g (Dataflow.Clib.unit_delay [| 0. |]) in
    let fb = Dataflow.Graph.add g (Dataflow.Clib.gain 0.9) in
    Dataflow.Graph.connect_data g ~src:(src, 0) ~dst:(sum, 0);
    Dataflow.Graph.connect_data g ~src:(sum, 0) ~dst:(sat, 0);
    Dataflow.Graph.connect_data g ~src:(sat, 0) ~dst:(quant, 0);
    Dataflow.Graph.connect_data g ~src:(quant, 0) ~dst:(delay, 0);
    Dataflow.Graph.connect_data g ~src:(delay, 0) ~dst:(fb, 0);
    Dataflow.Graph.connect_data g ~src:(fb, 0) ~dst:(sum, 1)
  done;
  g

let bench_absint_fixpoint =
  Test.make ~name:"absint_fixpoint"
    (Staged.stage (fun () -> ignore (Verify.Absint.analyze absint_graph)))

(* ------------------------------------------------------------------ *)

let tests =
  [
    bench_fig1_latencies;
    bench_fig2_ideal_sim;
    bench_fig3_delay_graph_sim;
    bench_fig4_sequencing;
    bench_fig5_conditioning;
    bench_sync_block;
    bench_latency_sweep_point;
    bench_jitter_sweep_point;
    bench_adequation;
    bench_lifecycle_suspension;
    bench_codegen_exec;
    bench_failover_table;
    bench_injected_machine;
    bench_recovery_retransmission;
    bench_recovery_mode_switch;
    bench_standby_vote;
    bench_ablation_strategy_pressure;
    bench_ablation_strategy_eft;
    bench_ablation_refine;
    bench_sdx_roundtrip;
    bench_ablation_ode_rk4;
    bench_ablation_ode_rkf45;
    bench_ablation_delay_static;
    bench_ablation_delay_jittered;
    bench_explore_throughput;
    bench_explore_throughput_warm;
    bench_explore_chunked_rebuild;
    bench_serve_batch_shared;
    bench_serve_batch_rebuild;
    bench_sim_hot_loop_events;
    bench_sim_hot_loop_ode;
    bench_media_arbitration;
    bench_exec_bus_contention;
    bench_absint_fixpoint;
  ]

(* --json FILE: also dump [{"name": ..., "time_ns": ...}, ...] so CI
   and scripts can track the numbers without scraping the table.
   --only SUBSTRING: run only the benches whose name contains
   SUBSTRING (e.g. --only sim_hot_loop for the CI regression gate). *)
let find_flag flag =
  let rec find = function
    | f :: value :: _ when f = flag -> Some value
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let json_path = find_flag "--json"

let tests =
  match find_flag "--only" with
  | None -> tests
  | Some fragment ->
      let contains name =
        let nh = String.length name and nn = String.length fragment in
        let rec go i = i + nn <= nh && (String.sub name i nn = fragment || go (i + 1)) in
        nn = 0 || go 0
      in
      List.filter
        (fun t -> contains (Test.Elt.name (List.hd (Test.elements t))))
        tests

let dump_json results =
  match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let row (name, t_ns) =
        (* explore benches also report throughput; extra fields after
           time_ns are ignored by scripts/compare_bench.sh *)
        match List.assoc_opt name explore_candidates with
        | Some n when t_ns > 0. ->
            Printf.sprintf
              "  {\"name\": %S, \"time_ns\": %.1f, \"candidates_per_sec\": %.1f}"
              name t_ns
              (float_of_int n /. (t_ns /. 1e9))
        | _ -> Printf.sprintf "  {\"name\": %S, \"time_ns\": %.1f}" name t_ns
      in
      output_string oc
        ("[\n" ^ String.concat ",\n" (List.map row (List.rev results)) ^ "\n]\n");
      close_out oc;
      Printf.printf "\nwrote %d benchmark results to %s\n" (List.length results) path

let () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let results = ref [] in
  Printf.printf "%-34s %16s %10s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun test ->
      let name = Test.Elt.name (List.hd (Test.elements test)) in
      let raw = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun _label samples ->
          let est = Analyze.one ols Instance.monotonic_clock samples in
          match Analyze.OLS.estimates est with
          | Some [ t_ns ] ->
              let pretty =
                if t_ns >= 1e9 then Printf.sprintf "%.3f  s" (t_ns /. 1e9)
                else if t_ns >= 1e6 then Printf.sprintf "%.3f ms" (t_ns /. 1e6)
                else if t_ns >= 1e3 then Printf.sprintf "%.3f us" (t_ns /. 1e3)
                else Printf.sprintf "%.1f ns" t_ns
              in
              let r2 =
                match Analyze.OLS.r_square est with
                | Some r -> Printf.sprintf "%.4f" r
                | None -> "-"
              in
              results := (name, t_ns) :: !results;
              Printf.printf "%-34s %16s %10s\n" name pretty r2
          | Some _ | None -> Printf.printf "%-34s %16s %10s\n" name "(no estimate)" "-")
        raw)
    tests;
  dump_json !results
