bin/syndex.mli:
