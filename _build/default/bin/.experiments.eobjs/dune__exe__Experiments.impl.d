bin/experiments.ml: Aaa Arg Array Cmd Cmdliner Control Dataflow Exec Float Format Lifecycle List Numerics Option Printf Sim String Term Translator
