bin/syndex.ml: Aaa Arg Cmd Cmdliner Exec Filename Format Fun Lifecycle List Printf Term Translator
