bin/experiments.mli:
