open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Adq = Aaa.Adequation
module TL = Exec.Timing_law
module Machine = Exec.Machine

let chain_schedule ?(distributed = false) () =
  let alg = Alg.create ~name:"chain" ~period:0.1 in
  let s = Alg.add_op alg ~name:"sense" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  let c = Alg.add_op alg ~name:"law" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
  let a = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
  Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
  let arch, d =
    if distributed then begin
      let arch = Arch.bus_topology ~time_per_word:0.002 [ "P0"; "P1" ] in
      let d = Dur.create () in
      Dur.set d ~op:"sense" ~operator:"P0" 0.01;
      Dur.set d ~op:"law" ~operator:"P1" 0.01;
      Dur.set d ~op:"act" ~operator:"P0" 0.01;
      (arch, d)
    end
    else begin
      let arch = Arch.single () in
      let d = Dur.create () in
      List.iter
        (fun op -> Dur.set d ~op:(Alg.op_name alg op) ~operator:"P0" 0.01)
        (Alg.ops alg);
      (arch, d)
    end
  in
  let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (alg, sched, Aaa.Codegen.generate sched, (s, c, a))

let timing_law_tests =
  [
    test "wcet law returns the worst case" (fun () ->
        let rng = Numerics.Rng.create 0 in
        check_float "wcet" 2. (TL.sample TL.Wcet rng ~bcet:1. ~wcet:2.));
    test "bcet law returns the best case" (fun () ->
        let rng = Numerics.Rng.create 0 in
        check_float "bcet" 1. (TL.sample TL.Bcet rng ~bcet:1. ~wcet:2.));
    test "degenerate interval returns wcet under any law" (fun () ->
        let rng = Numerics.Rng.create 0 in
        check_float "uniform" 3. (TL.sample TL.Uniform rng ~bcet:3. ~wcet:3.));
    test "invalid interval raises" (fun () ->
        let rng = Numerics.Rng.create 0 in
        check_raises_invalid "order" (fun () ->
            ignore (TL.sample TL.Uniform rng ~bcet:2. ~wcet:1.)));
    qtest "all laws stay within [bcet, wcet]" ~count:200
      QCheck2.Gen.(pair (int_range 0 100_000) (pair (float_range 0. 5.) (float_range 0. 5.)))
      (fun (seed, (a, b)) ->
        let bcet = Float.min a b and wcet = Float.max a b in
        let rng = Numerics.Rng.create seed in
        List.for_all
          (fun law ->
            let x = TL.sample law rng ~bcet ~wcet in
            x >= bcet -. 1e-12 && x <= wcet +. 1e-12)
          [
            TL.Wcet;
            TL.Bcet;
            TL.Uniform;
            TL.Triangular 0.3;
            TL.Gaussian { mean_frac = 0.5; sigma_frac = 0.2 };
          ]);
  ]

let machine_tests =
  [
    test "wcet law reproduces the static schedule exactly" (fun () ->
        let _, sched, exe, (s, c, a) = chain_schedule () in
        let config = { Machine.default_config with law = TL.Wcet; iterations = 5 } in
        let trace = Machine.run ~config exe in
        check_int "no overruns" 0 trace.Machine.overruns;
        (* finish instants must equal k·Ts + static completion *)
        List.iter
          (fun op ->
            let slot = Sched.slot_of sched op in
            let expected = slot.Sched.cs_start +. slot.Sched.cs_duration in
            Array.iteri
              (fun k t ->
                check_float ~eps:1e-9 "static replay" ((0.1 *. float_of_int k) +. expected) t)
              (Machine.instants trace op))
          [ s; c; a ]);
    test "order conformance holds under jitter" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let config =
          { Machine.default_config with law = TL.Uniform; comm_jitter_frac = 0.3; iterations = 50 }
        in
        let trace = Machine.run ~config exe in
        check_true "conformant" (Machine.order_conformant trace));
    test "sampling latencies bounded by static offsets" (fun () ->
        let _, sched, exe, _ = chain_schedule ~distributed:true () in
        let config = { Machine.default_config with law = TL.Uniform; iterations = 100 } in
        let trace = Machine.run ~config exe in
        List.iter
          (fun (op, lat) ->
            let slot = Sched.slot_of sched op in
            let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
            Array.iter
              (fun l ->
                check_true "<= static (wcet bound)" (l <= static +. 1e-9);
                check_true "positive" (l > 0.))
              lat)
          (Machine.sampling_latencies trace));
    test "actuation latency varies under jitter (the paper's point)" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let config = { Machine.default_config with law = TL.Uniform; iterations = 200 } in
        let trace = Machine.run ~config exe in
        match Machine.actuation_latencies trace with
        | [ (_, lat) ] ->
            let jitter = Numerics.Stats.max lat -. Numerics.Stats.min lat in
            check_true "nonzero jitter" (jitter > 1e-4)
        | _ -> Alcotest.fail "expected one actuator");
    test "deterministic for equal seeds" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let config = { Machine.default_config with iterations = 20; seed = 7 } in
        let t1 = Machine.run ~config exe in
        let t2 = Machine.run ~config exe in
        let ends1 = t1.Machine.iteration_end and ends2 = t2.Machine.iteration_end in
        check_vec ~eps:0. "same ends" ends1 ends2);
    test "conditioned operations skipped when condition differs" (fun () ->
        let alg = Alg.create ~name:"cond" ~period:0.1 in
        let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"m" (mode, 0);
        let b0 =
          Alg.add_op alg ~name:"b0" ~kind:Alg.Compute ~cond:{ Alg.var = "m"; value = 0 } ()
        in
        let b1 =
          Alg.add_op alg ~name:"b1" ~kind:Alg.Compute ~cond:{ Alg.var = "m"; value = 1 } ()
        in
        let arch = Arch.single () in
        let d = Dur.create () in
        List.iter
          (fun op -> Dur.set d ~op:(Alg.op_name alg op) ~operator:"P0" 0.01)
          (Alg.ops alg);
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let config =
          {
            Machine.default_config with
            iterations = 10;
            condition = (fun ~iteration ~var:_ -> iteration mod 2);
          }
        in
        let trace = Machine.run ~config exe in
        let skipped op =
          List.filter (fun oe -> oe.Machine.oe_op = op && oe.Machine.oe_skipped) trace.Machine.ops
        in
        check_int "b0 skipped on odd iterations" 5 (List.length (skipped b0));
        check_int "b1 skipped on even iterations" 5 (List.length (skipped b1)));
    test "branch-dependent duration creates actuation jitter" (fun () ->
        (* mode → cheap or expensive branch → actuator *)
        let alg = Alg.create ~name:"condjit" ~period:1. in
        let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"m" (mode, 0);
        let b0 =
          Alg.add_op alg ~name:"cheap" ~kind:Alg.Compute ~outputs:[| 1 |]
            ~cond:{ Alg.var = "m"; value = 0 } ()
        in
        let b1 =
          Alg.add_op alg ~name:"costly" ~kind:Alg.Compute ~outputs:[| 1 |]
            ~cond:{ Alg.var = "m"; value = 1 } ()
        in
        let act = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1; 1 |] () in
        Alg.depend alg ~src:(b0, 0) ~dst:(act, 0);
        Alg.depend alg ~src:(b1, 0) ~dst:(act, 1);
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"mode" ~operator:"P0" 0.01;
        Dur.set d ~op:"cheap" ~operator:"P0" 0.01;
        Dur.set d ~op:"costly" ~operator:"P0" 0.3;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let config =
          {
            Machine.default_config with
            iterations = 20;
            law = TL.Wcet;
            condition = (fun ~iteration ~var:_ -> iteration mod 2);
          }
        in
        let trace = Machine.run ~config exe in
        match Machine.actuation_latencies trace with
        | [ (_, lat) ] ->
            let jitter = Numerics.Stats.max lat -. Numerics.Stats.min lat in
            (* the 0.29 s branch difference must show up in La *)
            check_true "jitter about the branch delta" (jitter > 0.25)
        | _ -> Alcotest.fail "expected one actuator");
    test "overrun detected when makespan exceeds the period" (fun () ->
        let alg = Alg.create ~name:"over" ~period:0.015 in
        let s = Alg.add_op alg ~name:"s" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
        Alg.depend alg ~src:(s, 0) ~dst:(a, 0);
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"s" ~operator:"P0" 0.01;
        Dur.set d ~op:"a" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_false "does not fit" (Sched.fits_period sched);
        let exe = Aaa.Codegen.generate sched in
        let config = { Machine.default_config with law = TL.Wcet; iterations = 10 } in
        let trace = Machine.run ~config exe in
        check_true "overruns counted" (trace.Machine.overruns > 0));
    test "corrupt executive deadlocks and is reported" (fun () ->
        (* swap the medium's transfer order so the receiver waits on a
           transfer whose data is posted after its own recv *)
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let broken =
          {
            exe with
            Aaa.Codegen.media_programs =
              List.map
                (fun (m, transfers) -> (m, List.rev transfers))
                exe.Aaa.Codegen.media_programs;
          }
        in
        let n_transfers =
          List.fold_left
            (fun acc (_, t) -> acc + List.length t)
            0 exe.Aaa.Codegen.media_programs
        in
        check_int "premise: two transfers on the bus" 2 n_transfers;
        match
          Machine.run ~config:{ Machine.default_config with iterations = 2 } broken
        with
        | exception Machine.Deadlock msg -> check_true "describes" (String.length msg > 0)
        | _ -> Alcotest.fail "expected Deadlock");
    test "iterations parameter honoured" (fun () ->
        let _, _, exe, (s, _, _) = chain_schedule () in
        let config = { Machine.default_config with iterations = 7 } in
        let trace = Machine.run ~config exe in
        check_int "7 sensor instants" 7 (Array.length (Machine.instants trace s)));
    test "non-positive iterations rejected" (fun () ->
        let _, _, exe, _ = chain_schedule () in
        check_raises_invalid "iterations" (fun () ->
            ignore (Machine.run ~config:{ Machine.default_config with iterations = 0 } exe)));
  ]

let async_tests =
  [
    test "time-triggered baseline is fresh under the WCET contract" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let trace =
          Exec.Async.run
            ~config:{ Exec.Async.default_config with iterations = 100 }
            exe
        in
        check_int "no stale reads" 0 trace.Exec.Async.violations;
        check_true "remote reads were checked" (trace.Exec.Async.remote_consumptions > 0));
    test "overruns create stale reads in the baseline" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let trace =
          Exec.Async.run
            ~config:
              {
                Exec.Async.default_config with
                iterations = 200;
                overrun_prob = 0.3;
                overrun_factor = 2.5;
              }
            exe
        in
        check_true "stale reads appear" (trace.Exec.Async.violations > 0));
    test "synchronised machine stays order-conformant under overruns" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let trace =
          Exec.Machine.run
            ~config:
              {
                Machine.default_config with
                iterations = 200;
                overrun_prob = 0.3;
                overrun_factor = 2.5;
              }
            exe
        in
        check_true "conformant" (Machine.order_conformant trace));
    test "machine overruns lengthen latencies beyond the static bound" (fun () ->
        let _, sched, exe, _ = chain_schedule ~distributed:true () in
        let trace =
          Exec.Machine.run
            ~config:
              {
                Machine.default_config with
                iterations = 300;
                law = TL.Wcet;
                overrun_prob = 0.5;
                overrun_factor = 2.0;
              }
            exe
        in
        match Machine.actuation_latencies trace with
        | [ (op, lat) ] ->
            let slot = Sched.slot_of sched op in
            let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
            check_true "sometimes exceeds the WCET plan"
              (Numerics.Stats.max lat > static +. 1e-6)
        | _ -> Alcotest.fail "expected one actuator");
    test "baseline latency equals the static plan at WCET without overruns" (fun () ->
        let _, sched, exe, (_, _, a) = chain_schedule () in
        let trace =
          Exec.Async.run
            ~config:{ Exec.Async.default_config with iterations = 10; law = TL.Wcet }
            exe
        in
        match trace.Exec.Async.actuation_latencies with
        | [ (op, lat) ] ->
            check_true "same actuator" (op = a);
            let slot = Sched.slot_of sched op in
            let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
            Array.iter (fun l -> check_float ~eps:1e-9 "La = plan" static l) lat
        | _ -> Alcotest.fail "expected one actuator");
    test "a producer overrun makes the data miss its TT bus slot" (fun () ->
        (* sense on P0 feeds law on P1; blow up only the sensor's
           duration so the transfer's planned slot departs without
           this iteration's sample *)
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let always_overrun =
          {
            Exec.Async.default_config with
            iterations = 20;
            law = TL.Wcet;
            overrun_prob = 1.0;
            overrun_factor = 3.0;
          }
        in
        let trace = Exec.Async.run ~config:always_overrun exe in
        (* every remote read is stale: 3x WCET pushes every producer
           past its bus slot *)
        check_int "all stale" trace.Exec.Async.remote_consumptions
          trace.Exec.Async.violations);
    test "TT bus slots serialize in the static order" (fun () ->
        (* two transfers share the bus; even with the second producer
           finishing first (Bcet law on a faster branch), freshness
           must hold: slots depart in plan order with fresh data *)
        let alg = Alg.create ~name:"two_msgs" ~period:1. in
        let s0 = Alg.add_op alg ~name:"s0" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        let s1 = Alg.add_op alg ~name:"s1" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        let c = Alg.add_op alg ~name:"c" ~kind:Alg.Compute ~inputs:[| 1; 1 |] ~outputs:[| 1 |] () in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
        Alg.depend alg ~src:(s0, 0) ~dst:(c, 0);
        Alg.depend alg ~src:(s1, 0) ~dst:(c, 1);
        Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
        let arch = Arch.bus_topology ~latency:0.01 ~time_per_word:0.01 [ "P0"; "P1" ] in
        let d = Dur.create () in
        Dur.set d ~op:"s0" ~operator:"P0" 0.05;
        Dur.set d ~op:"s1" ~operator:"P0" 0.01;
        Dur.set d ~op:"c" ~operator:"P1" 0.02;
        Dur.set d ~op:"a" ~operator:"P1" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let trace =
          Exec.Async.run
            ~config:{ Exec.Async.default_config with iterations = 30; law = TL.Uniform }
            exe
        in
        check_int "fresh despite reordering pressure" 0 trace.Exec.Async.violations);
    test "baseline rejects non-positive iterations" (fun () ->
        let _, _, exe, _ = chain_schedule () in
        check_raises_invalid "iterations" (fun () ->
            ignore
              (Exec.Async.run ~config:{ Exec.Async.default_config with iterations = 0 } exe)));
    test "utilization sums busy time per operator" (fun () ->
        let _, sched, exe, _ = chain_schedule () in
        let trace =
          Machine.run ~config:{ Machine.default_config with law = TL.Wcet; iterations = 10 } exe
        in
        (* single processor, 3 ops x 0.01 s per 0.1 s period *)
        ignore sched;
        (match Exec.Machine.utilization trace with
        | [ (_, u) ] -> check_float ~eps:1e-9 "30%" 0.3 u
        | _ -> Alcotest.fail "expected one operator"));
    test "utilization excludes skipped conditioned operations" (fun () ->
        let alg = Alg.create ~name:"c" ~period:1. in
        let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"m" (mode, 0);
        let _ =
          Alg.add_op alg ~name:"branch" ~kind:Alg.Compute ~cond:{ Alg.var = "m"; value = 1 } ()
        in
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"mode" ~operator:"P0" 0.1;
        Dur.set d ~op:"branch" ~operator:"P0" 0.4;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        (* condition never holds: only "mode" runs *)
        let trace =
          Machine.run
            ~config:{ Machine.default_config with law = TL.Wcet; iterations = 5 }
            exe
        in
        match Exec.Machine.utilization trace with
        | [ (_, u) ] -> check_float ~eps:1e-9 "10% only" 0.1 u
        | _ -> Alcotest.fail "expected one operator");
    test "durations can be characterised from measurements" (fun () ->
        let d =
          Dur.of_measurements ~margin:0.25
            [ ("f", "P0", [ 0.008; 0.010; 0.009 ]); ("g", "P0", [ 0.002 ]) ]
        in
        check_true "wcet = max * 1.25" (Dur.wcet d ~op:"f" ~operator:"P0" = Some 0.0125);
        check_true "bcet = min" (Dur.bcet d ~op:"f" ~operator:"P0" = Some 0.008);
        check_raises_invalid "empty" (fun () ->
            ignore (Dur.of_measurements [ ("h", "P0", []) ])));
    test "executed gantt renders operators, media and op names" (fun () ->
        let _, _, exe, _ = chain_schedule ~distributed:true () in
        let trace =
          Machine.run ~config:{ Machine.default_config with iterations = 4 } exe
        in
        let chart = Exec.Exec_gantt.render ~iteration:2 trace in
        check_true "operator row" (contains chart "P0");
        check_true "bus row" (contains chart "bus");
        check_true "op name" (contains chart "sense");
        check_true "window label" (contains chart "iteration 2");
        check_raises_invalid "range" (fun () ->
            ignore (Exec.Exec_gantt.render ~iteration:99 trace)));
  ]

let suites =
  [
    ("exec.timing_law", timing_law_tests);
    ("exec.machine", machine_tests);
    ("exec.async_baseline", async_tests);
  ]
