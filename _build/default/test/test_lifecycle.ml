open Helpers
module M = Numerics.Matrix
module Dur = Aaa.Durations
module Arch = Aaa.Architecture

let dc_motor_design ?(horizon = 5.) () =
  Lifecycle.Design.pid_loop ~name:"dc"
    ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
    ~x0:[| 0.; 0. |]
    ~gains:{ Control.Pid.kp = 10.; ki = 5.; kd = 0.5 }
    ~ts:0.05 ~reference:1. ~horizon ()

let pid_durations ?(scale = 1.) () =
  let d = Dur.create () in
  let all = [ "P0"; "P1" ] in
  Dur.set_everywhere d ~op:"reference" ~operators:all (0.001 *. scale);
  Dur.set_everywhere d ~op:"sample_y" ~operators:all (0.004 *. scale);
  Dur.set_everywhere d ~op:"pid" ~operators:all (0.012 *. scale);
  Dur.set_everywhere d ~op:"hold_u" ~operators:all (0.004 *. scale);
  d

let two_proc_arch () = Arch.bus_topology ~time_per_word:0.002 ~latency:0.001 [ "P0"; "P1" ]

let design_tests =
  [
    test "make rejects bad parameters" (fun () ->
        check_raises_invalid "ts" (fun () ->
            ignore
              (Lifecycle.Design.make ~name:"x" ~ts:0. ~horizon:1.
                 ~cost:(fun _ -> 0.)
                 (fun () -> assert false))));
    test "pid_loop requires SISO plant" (fun () ->
        check_raises_invalid "siso" (fun () ->
            ignore
              (Lifecycle.Design.pid_loop ~name:"x"
                 ~plant:(Control.Plants.quarter_car Control.Plants.default_quarter_car)
                 ~x0:(Array.make 4 0.)
                 ~gains:{ Control.Pid.kp = 1.; ki = 0.; kd = 0. }
                 ~ts:0.1 ~reference:1. ~horizon:1. ())));
    test "build is deterministic (identical block ids)" (fun () ->
        let d = dc_motor_design () in
        let b1 = d.Lifecycle.Design.build () in
        let b2 = d.Lifecycle.Design.build () in
        check_true "same member ids" (b1.Lifecycle.Design.members = b2.Lifecycle.Design.members);
        check_true "same clocked ids" (b1.Lifecycle.Design.clocked = b2.Lifecycle.Design.clocked));
    test "state_feedback_loop checks gain shape" (fun () ->
        let plant =
          Control.Lti.make ~domain:Control.Lti.Continuous
            ~a:(M.of_arrays [| [| 0.; 1. |]; [| 0.; 0. |] |])
            ~b:(M.of_arrays [| [| 0. |]; [| 1. |] |])
            ~c:(M.identity 2) ~d:(M.zeros 2 1)
        in
        check_raises_invalid "shape" (fun () ->
            ignore
              (Lifecycle.Design.state_feedback_loop ~name:"x" ~plant ~x0:[| 0.; 0. |]
                 ~k:(M.identity 2) ~ts:0.1 ~horizon:1. ())));
    test "state_feedback_loop requires C = I" (fun () ->
        let plant = Control.Plants.double_integrator () in
        check_raises_invalid "C" (fun () ->
            ignore
              (Lifecycle.Design.state_feedback_loop ~name:"x" ~plant ~x0:[| 0.; 0. |]
                 ~k:(M.of_arrays [| [| 1.; 1. |] |]) ~ts:0.1 ~horizon:1. ())));
  ]

let methodology_tests =
  [
    test "ideal simulation tracks the reference" (fun () ->
        let design = dc_motor_design ~horizon:20. () in
        let e = Lifecycle.Methodology.simulate_ideal design in
        let sse =
          Control.Metrics.steady_state_error ~reference:1.
            (Sim.Engine.probe_component e "y" 0)
        in
        check_true "tracks" (Float.abs sse < 0.02));
    test "extraction produces the expected operations" (fun () ->
        let design = dc_motor_design () in
        let _, alg, _ = Lifecycle.Methodology.extract design in
        check_int "four ops" 4 (Aaa.Algorithm.op_count alg);
        check_int "one sensor" 1 (List.length (Aaa.Algorithm.sensors alg));
        check_int "one actuator" 1 (List.length (Aaa.Algorithm.actuators alg)));
    test "implement yields a fitting schedule and static model" (fun () ->
        let design = dc_motor_design () in
        let impl =
          Lifecycle.Methodology.implement ~design ~architecture:(two_proc_arch ())
            ~durations:(pid_durations ()) ()
        in
        check_true "fits" impl.Lifecycle.Methodology.static.Translator.Temporal_model.fits_period;
        check_true "executive has two programs"
          (List.length impl.Lifecycle.Methodology.executive.Aaa.Codegen.programs = 2));
    test "implemented co-simulation runs and costs are finite" (fun () ->
        let design = dc_motor_design () in
        let c =
          Lifecycle.Methodology.evaluate ~design ~architecture:(two_proc_arch ())
            ~durations:(pid_durations ()) ()
        in
        check_true "ideal > 0" (c.Lifecycle.Methodology.ideal_cost > 0.);
        check_true "implemented finite"
          (Float.is_finite c.Lifecycle.Methodology.implemented_cost));
    test "larger WCETs degrade performance more" (fun () ->
        let design = dc_motor_design () in
        let arch = two_proc_arch () in
        let small =
          Lifecycle.Methodology.evaluate ~design ~architecture:arch
            ~durations:(pid_durations ~scale:0.25 ()) ()
        in
        let large =
          Lifecycle.Methodology.evaluate ~design ~architecture:arch
            ~durations:(pid_durations ~scale:2.0 ()) ()
        in
        check_true "monotone degradation"
          (large.Lifecycle.Methodology.implemented_cost
          >= small.Lifecycle.Methodology.implemented_cost));
    test "executive execution is order conformant" (fun () ->
        let design = dc_motor_design () in
        let impl =
          Lifecycle.Methodology.implement ~design ~architecture:(two_proc_arch ())
            ~durations:(pid_durations ()) ()
        in
        let trace = Lifecycle.Methodology.execute design impl in
        check_true "conformant" (Exec.Machine.order_conformant trace);
        check_int "no overrun" 0 trace.Exec.Machine.overruns);
    test "report mentions the key figures" (fun () ->
        let design = dc_motor_design () in
        let c =
          Lifecycle.Methodology.evaluate ~design ~architecture:(two_proc_arch ())
            ~durations:(pid_durations ()) ()
        in
        let r = Lifecycle.Report.comparison design c in
        check_true "ideal" (contains r "ideal cost");
        check_true "latency" (contains r "actuation La");
        check_true "makespan" (contains r "makespan"));
  ]

let lqg_tests =
  let plant = Control.Plants.mass_spring_damper ~m:1. ~k:4. ~c:0.4 in
  let ts = 0.02 in
  let sysd = Control.Discretize.discretize ~ts plant in
  let k =
    (Control.Lqr.dlqr_sys
       ~q:(M.of_arrays [| [| 100.; 0. |]; [| 0.; 10. |] |])
       ~r:(M.of_arrays [| [| 0.1 |] |])
       sysd)
      .Control.Lqr.k
  in
  let kalman =
    Control.Kalman.dkalman ~a:sysd.Control.Lti.a ~c:sysd.Control.Lti.c
      ~qn:(M.scale 1e-4 (M.identity 2))
      ~rn:(M.scale 1e-4 (M.identity 1))
      ()
  in
  let make_design ?(noise_sigma = 0.) () =
    Lifecycle.Design.lqg_loop ~name:"lqg" ~plant ~x0:[| 0.5; 0. |] ~sysd ~k ~kalman ~ts
      ~horizon:6. ~noise_sigma ~noise_seed:3 ()
  in
  [
    test "output feedback regulates from only the position measurement" (fun () ->
        let design = make_design () in
        let e = Lifecycle.Methodology.simulate_ideal design in
        let y = Sim.Engine.probe_component e "y" 0 in
        let n = Array.length y.Control.Metrics.values in
        check_true "position regulated"
          (Float.abs y.Control.Metrics.values.(n - 1) < 0.01));
    test "Kalman filtering absorbs most measurement noise" (fun () ->
        let clean = make_design () in
        let noisy = make_design ~noise_sigma:0.01 () in
        let cost d = d.Lifecycle.Design.cost (Lifecycle.Methodology.simulate_ideal d) in
        let c_clean = cost clean and c_noisy = cost noisy in
        (* within 20% of the noise-free cost *)
        check_true "filtered" (Float.abs (c_noisy -. c_clean) < 0.2 *. c_clean));
    test "lqg design runs the whole lifecycle" (fun () ->
        let design = make_design () in
        let arch =
          Aaa.Architecture.bus_topology ~latency:0.0005 ~time_per_word:0.0005
            [ "s"; "c" ]
        in
        let d = Dur.create () in
        Dur.set d ~op:"sample_y0" ~operator:"s" 0.001;
        Dur.set d ~op:"lqg" ~operator:"c" 0.006;
        Dur.set d ~op:"hold_u" ~operator:"c" 0.001;
        let c = Lifecycle.Methodology.evaluate ~design ~architecture:arch ~durations:d () in
        check_true "finite" (Float.is_finite c.Lifecycle.Methodology.implemented_cost);
        check_true "stable enough"
          (c.Lifecycle.Methodology.implemented_cost
          < 3. *. c.Lifecycle.Methodology.ideal_cost));
    test "lqg_loop validates the observer model" (fun () ->
        check_raises_invalid "outputs" (fun () ->
            ignore
              (Lifecycle.Design.lqg_loop ~name:"bad"
                 ~plant:(Control.Plants.double_integrator ())
                 ~x0:[| 0.; 0. |]
                 ~sysd:
                   (Control.Discretize.discretize ~ts:0.02
                      (Control.Plants.quarter_car Control.Plants.default_quarter_car))
                 ~k ~kalman ~ts:0.02 ~horizon:1. ())));
  ]

let conditions_tests =
  (* a design whose mode flips deterministically with time *)
  let build () =
    let module G = Dataflow.Graph in
    let module C = Dataflow.Clib in
    let g = G.create () in
    let mode_state = ref 0. in
    let mode =
      G.add g
        (Dataflow.Block.make ~name:"mode" ~out_widths:[| 1 |] ~event_inputs:1
           ~on_event:(fun ctx ~port:_ ->
             mode_state := (if ctx.Dataflow.Block.time >= 0.25 then 1. else 0.);
             [])
           ~reset:(fun () -> mode_state := 0.)
           (fun _ -> [| [| !mode_state |] |]))
    in
    let b0 =
      G.add g
        (C.stateful ~name:"b0" ~in_widths:[||] ~out_widths:[| 1 |] (fun _ -> [| [| 0. |] |]))
    in
    let b1 =
      G.add g
        (C.stateful ~name:"b1" ~in_widths:[||] ~out_widths:[| 1 |] (fun _ -> [| [| 0. |] |]))
    in
    {
      Lifecycle.Design.graph = g;
      clocked = [ mode; b0; b1 ];
      members = [ mode; b0; b1 ];
      memories = [];
      probes = [ ("m", (mode, 0)) ];
      condition_feed = Some (fun _ -> (mode, 0));
      customize_algorithm =
        Some
          (fun algorithm binding ->
            Translator.Scicos_to_syndex.declare_condition binding ~algorithm ~var:"mode"
              ~source:(mode, 0)
              ~ops:[ (b0, 0); (b1, 1) ]);
    }
  in
  let design =
    Lifecycle.Design.make ~name:"mode_flip" ~ts:0.1 ~horizon:1.
      ~cost:(fun _ -> 0.)
      build
  in
  [
    test "condition profile follows the ideal simulation's mode signal" (fun () ->
        let arch = Aaa.Architecture.single () in
        let d = Dur.create () in
        List.iter (fun op -> Dur.set d ~op ~operator:"P0" 0.001) [ "mode"; "b0"; "b1" ];
        let impl = Lifecycle.Methodology.implement ~design ~architecture:arch ~durations:d () in
        let condition =
          Lifecycle.Methodology.conditions_from_ideal ~iterations:10 design impl
        in
        (* mode becomes 1 from the event at t = 0.3 (first tick >= 0.25) *)
        check_int "early iterations are mode 0" 0 (condition ~iteration:1 ~var:"mode");
        check_int "late iterations are mode 1" 1 (condition ~iteration:8 ~var:"mode");
        check_int "unknown var is 0" 0 (condition ~iteration:3 ~var:"ghost");
        check_int "out of range is 0" 0 (condition ~iteration:99 ~var:"mode");
        (* the executive under this profile skips exactly the branches
           the ideal simulation would skip *)
        let trace =
          Lifecycle.Methodology.execute
            ~config:{ Exec.Machine.default_config with iterations = 10; condition }
            design impl
        in
        let b0_runs =
          List.length
            (List.filter
               (fun (oe : Exec.Machine.op_exec) ->
                 Aaa.Algorithm.op_name impl.Lifecycle.Methodology.algorithm
                   oe.Exec.Machine.oe_op
                 = "b0"
                 && not oe.Exec.Machine.oe_skipped)
               trace.Exec.Machine.ops)
        in
        check_true "b0 runs only during mode 0" (b0_runs >= 3 && b0_runs <= 4));
    test "conditions_from_ideal requires a condition feed" (fun () ->
        let plain = dc_motor_design () in
        let impl =
          Lifecycle.Methodology.implement ~design:plain ~architecture:(two_proc_arch ())
            ~durations:(pid_durations ()) ()
        in
        check_raises_invalid "feed" (fun () ->
            ignore
              (Lifecycle.Methodology.conditions_from_ideal ~iterations:5 plain impl
                : iteration:int -> var:string -> int)));
  ]

let calibrate_tests =
  [
    test "delay gain shape" (fun () ->
        let plant = Control.Plants.double_integrator () in
        let k =
          Lifecycle.Calibrate.lqr_delay_gain ~plant ~ts:0.1 ~delay:0.05 ~q:(M.identity 2)
            ~r:(M.identity 1) ()
        in
        check_int "1 x 3" 3 (M.cols k);
        check_int "rows" 1 (M.rows k));
    test "delay-aware gain stabilises the delayed plant" (fun () ->
        let plant = Control.Plants.double_integrator () in
        let ts = 0.1 and delay = 0.08 in
        let aug = Control.Discretize.zoh_with_delay ~ts ~delay plant in
        let k =
          Lifecycle.Calibrate.lqr_delay_gain ~plant ~ts ~delay ~q:(M.identity 2)
            ~r:(M.identity 1) ()
        in
        let cl = M.sub aug.Control.Lti.a (M.mul aug.Control.Lti.b k) in
        check_true "Schur" (Numerics.Linalg.is_stable_discrete cl));
    test "nominal gain stabilises the undelayed plant" (fun () ->
        let plant = Control.Plants.double_integrator () in
        let k =
          Lifecycle.Calibrate.lqr_gain ~plant ~ts:0.1 ~q:(M.identity 2) ~r:(M.identity 1) ()
        in
        let sysd = Control.Discretize.discretize ~ts:0.1 plant in
        let cl = M.sub sysd.Control.Lti.a (M.mul sysd.Control.Lti.b k) in
        check_true "Schur" (Numerics.Linalg.is_stable_discrete cl));
    test "retune_pid shrinks gains" (fun () ->
        let g = { Control.Pid.kp = 10.; ki = 4.; kd = 1. } in
        let g' = Lifecycle.Calibrate.retune_pid g ~latency_fraction:0.5 in
        check_true "kp smaller" (g'.Control.Pid.kp < g.Control.Pid.kp);
        check_true "kd shrinks more"
          (g'.Control.Pid.kd /. g.Control.Pid.kd < g'.Control.Pid.kp /. g.Control.Pid.kp));
    test "pid_for_delay reaches the requested delay margin" (fun () ->
        let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
        let ts = 0.05 in
        let aggressive = { Control.Pid.kp = 100.; ki = 150.; kd = 0. } in
        (* the aggressive loop's own margin is ~0.032 s; request 0.045 *)
        let calibrated, achieved =
          Lifecycle.Calibrate.pid_for_delay ~safety:1. ~plant ~ts ~delay:0.045
            ~gains:aggressive ()
        in
        check_true "margin reached" (achieved >= 0.045 -. 1e-6);
        check_true "gains reduced" (calibrated.Control.Pid.kp < aggressive.Control.Pid.kp));
    test "pid_for_delay keeps gains that already satisfy the requirement" (fun () ->
        let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
        let gentle = { Control.Pid.kp = 10.; ki = 5.; kd = 0. } in
        let calibrated, _ =
          Lifecycle.Calibrate.pid_for_delay ~safety:1. ~plant ~ts:0.05 ~delay:0.02
            ~gains:gentle ()
        in
        check_float ~eps:0. "unchanged" gentle.Control.Pid.kp calibrated.Control.Pid.kp);
    test "calibrated PID beats the aggressive one under heavy latency" (fun () ->
        (* co-simulation check: at 90% of Ts the aggressive design is
           far from ideal; the margin-calibrated gains recover *)
        let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
        let ts = 0.05 in
        let aggressive = { Control.Pid.kp = 100.; ki = 150.; kd = 0. } in
        let calibrated, _ =
          Lifecycle.Calibrate.pid_for_delay ~plant ~ts ~delay:(0.9 *. ts) ~gains:aggressive ()
        in
        let durations =
          let d = Dur.create () in
          let set op share = Dur.set d ~op ~operator:"P0" (share *. 0.9 *. ts) in
          set "reference" 0.05;
          set "sample_y" 0.2;
          set "pid" 0.6;
          set "hold_u" 0.15;
          d
        in
        let implemented gains =
          let design =
            Lifecycle.Design.pid_loop ~name:"x" ~plant ~x0:[| 0.; 0. |] ~gains ~ts
              ~reference:1. ~horizon:10. ()
          in
          (Lifecycle.Methodology.evaluate ~design ~architecture:(Arch.single ())
             ~durations ())
            .Lifecycle.Methodology.implemented_cost
        in
        check_true "calibration helps" (implemented calibrated < implemented aggressive));
    test "calibration on the delayed double integrator beats the nominal gain" (fun () ->
        (* plant with one full period of actuation delay: the nominal
           LQR design degrades; the delay-aware redesign recovers *)
        let plant =
          Control.Lti.make ~domain:Control.Lti.Continuous
            ~a:(M.of_arrays [| [| 0.; 1. |]; [| 0.; 0. |] |])
            ~b:(M.of_arrays [| [| 0. |]; [| 1. |] |])
            ~c:(M.identity 2) ~d:(M.zeros 2 1)
        in
        let ts = 0.25 in
        let q = M.identity 2 and r = M.scale 0.1 (M.identity 1) in
        let k_nom = Lifecycle.Calibrate.lqr_gain ~plant ~ts ~q ~r () in
        let delay = 0.9 *. ts in
        let k_cal = Lifecycle.Calibrate.lqr_delay_gain ~plant ~ts ~delay ~q ~r () in
        (* evaluate both on the *delayed* discrete model *)
        let aug = Control.Discretize.zoh_with_delay ~ts ~delay plant in
        let cost_of k_aug =
          let x = ref [| 1.; 0.; 0. |] in
          let acc = ref 0. in
          for _ = 0 to 120 do
            let u = Array.map (fun v -> -.v) (M.mul_vec k_aug !x) in
            acc := !acc +. (!x.(0) *. !x.(0)) +. (!x.(1) *. !x.(1));
            x := Control.Lti.step_discrete aug !x u
          done;
          !acc
        in
        (* lift the nominal gain to the augmented state (ignores u_prev) *)
        let k_nom_aug = M.hcat k_nom (M.zeros 1 1) in
        let c_nom = cost_of k_nom_aug in
        let c_cal = cost_of k_cal in
        check_true "calibrated is better" (c_cal < c_nom));
  ]

let suites =
  [
    ("lifecycle.design", design_tests);
    ("lifecycle.methodology", methodology_tests);
    ("lifecycle.lqg", lqg_tests);
    ("lifecycle.conditions", conditions_tests);
    ("lifecycle.calibrate", calibrate_tests);
  ]
