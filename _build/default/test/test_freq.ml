open Helpers
module M = Numerics.Matrix
module CM = Numerics.Cmatrix

let integrator_ol () =
  (* open loop G(s) = 1/s *)
  Control.Lti.make ~domain:Control.Lti.Continuous ~a:(M.zeros 1 1) ~b:(M.identity 1)
    ~c:(M.identity 1) ~d:(M.zeros 1 1)

let cmatrix_tests =
  [
    test "identity and scalar" (fun () ->
        let i2 = CM.identity 2 in
        check_true "diag" (CM.get i2 0 0 = Complex.one);
        let s = CM.scalar { Complex.re = 0.; im = 2. } 2 in
        check_float "im" 2. (CM.get s 1 1).Complex.im);
    test "of_real embeds" (fun () ->
        let m = CM.of_real (M.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |]) in
        check_float "entry" 3. (CM.get m 1 0).Complex.re;
        check_float "no imaginary part" 0. (CM.get m 1 0).Complex.im);
    test "mul matches real multiplication" (fun () ->
        let a = M.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        let b = M.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
        let cm = CM.mul (CM.of_real a) (CM.of_real b) in
        check_true "same" (CM.equal cm (CM.of_real (M.mul a b))));
    test "solve_mat recovers the identity" (fun () ->
        let a =
          CM.init 2 2 (fun i j ->
              { Complex.re = float_of_int ((2 * i) + j + 1); im = float_of_int (i - j) })
        in
        let x = CM.solve_mat a (CM.identity 2) in
        check_true "a·a⁻¹ = I" (CM.equal ~eps:1e-12 (CM.mul a x) (CM.identity 2)));
    test "solve_mat singular raises" (fun () ->
        let a = CM.init 2 2 (fun _ _ -> Complex.one) in
        match CM.solve_mat a (CM.identity 2) with
        | exception CM.Singular -> ()
        | _ -> Alcotest.fail "expected Singular");
    test "complex solve with purely imaginary diagonal" (fun () ->
        (* (jI)·x = 1 → x = -j *)
        let a = CM.scalar Complex.i 1 in
        let x = CM.solve_mat a (CM.identity 1) in
        check_float ~eps:1e-12 "im" (-1.) (CM.get x 0 0).Complex.im);
    test "norm_inf" (fun () ->
        let m = CM.init 1 2 (fun _ j -> if j = 0 then Complex.i else Complex.one) in
        check_float "sum of moduli" 2. (CM.norm_inf m));
  ]

let freq_tests =
  [
    test "first-order lag at the corner frequency" (fun () ->
        let lag = Control.Plants.first_order ~tau:1. ~gain:1. in
        let g = Control.Freq.response lag 1. in
        check_float ~eps:1e-9 "magnitude -3dB" (1. /. sqrt 2.) (Complex.norm g);
        check_float ~eps:1e-9 "phase -45deg" (-45.)
          (Complex.arg g *. 180. /. Float.pi));
    test "integrator response magnitude is 1/w" (fun () ->
        let g = Control.Freq.response (integrator_ol ()) 4. in
        check_float ~eps:1e-12 "1/4" 0.25 (Complex.norm g));
    test "MIMO response rejected for SISO accessor" (fun () ->
        let qc = Control.Plants.quarter_car Control.Plants.default_quarter_car in
        check_raises_invalid "mimo" (fun () -> ignore (Control.Freq.response qc 1.)));
    test "response_mimo has plant dimensions" (fun () ->
        let qc = Control.Plants.quarter_car Control.Plants.default_quarter_car in
        let g = Control.Freq.response_mimo qc 5. in
        check_int "rows" 2 (CM.rows g);
        check_int "cols" 2 (CM.cols g));
    test "discrete response at w=0 equals DC gain" (fun () ->
        let lag = Control.Plants.first_order ~tau:1. ~gain:3. in
        let sysd = Control.Discretize.discretize ~ts:0.1 lag in
        let g = Control.Freq.response sysd 0. in
        check_float ~eps:1e-9 "dc" 3. (Complex.norm g));
    test "bode is log-spaced with unwrapped phase" (fun () ->
        (* double integrator phase stays near -180°, never jumping *)
        let di = Control.Plants.double_integrator () in
        let pts = Control.Freq.bode ~n:50 di in
        List.iter
          (fun (p : Control.Freq.bode_point) ->
            check_true "phase near ±180"
              (Float.abs (Float.abs p.Control.Freq.phase_deg -. 180.) < 1.))
          pts);
    test "integrator margins: PM = 90°, wc = 1, DM = pi/2" (fun () ->
        let m = Control.Freq.margins (integrator_ol ()) in
        (match m.Control.Freq.phase_margin_deg with
        | Some pm -> check_float ~eps:1e-3 "PM" 90. pm
        | None -> Alcotest.fail "expected PM");
        (match m.Control.Freq.gain_crossover with
        | Some wc -> check_float ~eps:1e-4 "wc" 1. wc
        | None -> Alcotest.fail "expected wc");
        (match m.Control.Freq.delay_margin with
        | Some dm -> check_float ~eps:1e-3 "DM" (Float.pi /. 2.) dm
        | None -> Alcotest.fail "expected DM");
        check_true "no finite GM" (m.Control.Freq.gain_margin_db = None));
    test "textbook margins of 4/(s(s+1)(s+2))" (fun () ->
        let tf = Control.Tf.make ~num:[| 4. |] ~den:[| 0.; 2.; 3.; 1. |] in
        let sys = Control.Tf.to_ss ~domain:Control.Lti.Continuous tf in
        let m = Control.Freq.margins sys in
        (match m.Control.Freq.gain_margin_db with
        | Some gm -> check_float ~eps:0.01 "GM = 20log10(6/4)" (20. *. Float.log10 1.5) gm
        | None -> Alcotest.fail "expected GM");
        match m.Control.Freq.phase_crossover with
        | Some w -> check_float ~eps:1e-3 "w180 = sqrt 2" (sqrt 2.) w
        | None -> Alcotest.fail "expected w180");
    test "stable low-gain loop has no gain crossover" (fun () ->
        (* |G| < 1 everywhere: no 0 dB crossing *)
        let lag = Control.Plants.first_order ~tau:1. ~gain:0.5 in
        let m = Control.Freq.margins lag in
        check_true "no wc" (m.Control.Freq.gain_crossover = None);
        check_true "no PM" (m.Control.Freq.phase_margin_deg = None));
    test "dc_gain of integrating system is infinite" (fun () ->
        check_true "inf" (Control.Freq.dc_gain (integrator_ol ()) = Float.infinity));
    test "delay margin predicts destabilising delay (Padé check)" (fun () ->
        (* loop 2/(s+1): wc = sqrt(3), PM = 180 - atan(sqrt 3) = 120°,
           DM = PM/wc; closing the loop with an extra delay slightly
           below/above DM must be stable/unstable.  We check DM against
           the analytic value. *)
        let lag = Control.Plants.first_order ~tau:1. ~gain:2. in
        let m = Control.Freq.margins lag in
        match (m.Control.Freq.delay_margin, m.Control.Freq.gain_crossover) with
        | Some dm, Some wc ->
            check_float ~eps:1e-3 "wc = sqrt 3" (sqrt 3.) wc;
            let pm_expected = 180. -. (Float.atan (sqrt 3.) *. 180. /. Float.pi) in
            check_float ~eps:1e-2 "DM analytic" (pm_expected /. 180. *. Float.pi /. wc) dm
        | _ -> Alcotest.fail "expected margins");
  ]

let nyquist_tests =
  [
    test "nyquist locus of a lag stays in the lower half plane" (fun () ->
        let lag = Control.Plants.first_order ~tau:1. ~gain:1. in
        List.iter
          (fun (_, l) -> check_true "Im <= 0" (l.Complex.im <= 1e-12))
          (Control.Freq.nyquist lag));
    test "sensitivity peak of k/s matches the analytic value" (fun () ->
        (* L = k/s: |1/(1+L)|² = w²/(w²+k²) < 1, so Ms = 1 (approached
           at high frequency) *)
        let integ =
          Control.Lti.make ~domain:Control.Lti.Continuous ~a:(M.zeros 1 1)
            ~b:(M.identity 1) ~c:(M.identity 1) ~d:(M.zeros 1 1)
        in
        let ms, _ = Control.Freq.sensitivity_peak integ in
        check_true "Ms close to 1" (ms > 0.95 && ms <= 1.0 +. 1e-9));
    test "low-margin loop has a large sensitivity peak" (fun () ->
        (* 4/(s(s+1)(s+2)) has small margins: Ms well above 2 *)
        let tf = Control.Tf.make ~num:[| 4. |] ~den:[| 0.; 2.; 3.; 1. |] in
        let sys = Control.Tf.to_ss ~domain:Control.Lti.Continuous tf in
        let ms, w = Control.Freq.sensitivity_peak sys in
        check_true "peaked" (ms > 2.);
        (* the peak sits near the phase-crossover region *)
        check_true "near crossover" (w > 0.5 && w < 5.));
    test "modulus margin bounds the gain margin" (fun () ->
        (* GM(abs) >= Ms/(Ms-1) must hold *)
        let tf = Control.Tf.make ~num:[| 4. |] ~den:[| 0.; 2.; 3.; 1. |] in
        let sys = Control.Tf.to_ss ~domain:Control.Lti.Continuous tf in
        let ms, _ = Control.Freq.sensitivity_peak sys in
        let m = Control.Freq.margins sys in
        match m.Control.Freq.gain_margin_db with
        | Some gm_db ->
            let gm = Float.pow 10. (gm_db /. 20.) in
            check_true "classic inequality" (gm >= (ms /. (ms -. 1.)) -. 0.05)
        | None -> Alcotest.fail "expected a gain margin");
  ]

let norms_tests =
  [
    test "lyap solves a known scalar Gramian" (fun () ->
        (* a = -1, q = 1: 2·(-1)·P + 1 = 0 → wrong sign convention:
           A P + P Aᵀ + Q = 0 → -2P + 1 = 0 → P = 1/2 *)
        let p = Numerics.Linalg.lyap (M.of_arrays [| [| -1. |] |]) (M.identity 1) in
        check_float ~eps:1e-12 "P" 0.5 (M.get p 0 0));
    test "lyap residual vanishes for a 3x3 system" (fun () ->
        let rng = Numerics.Rng.create 9 in
        let a =
          M.sub
            (M.init 3 3 (fun _ _ -> Numerics.Rng.uniform rng (-0.5) 0.5))
            (M.scale 2. (M.identity 3))
        in
        let q = M.identity 3 in
        let p = Numerics.Linalg.lyap a q in
        let residual = M.add (M.add (M.mul a p) (M.mul p (M.transpose a))) q in
        check_true "residual" (M.norm_inf residual < 1e-9));
    test "dlyap solves a known scalar Stein equation" (fun () ->
        (* P = a²P + 1 with a = 0.5 → P = 4/3 *)
        let p = Numerics.Linalg.dlyap (M.of_arrays [| [| 0.5 |] |]) (M.identity 1) in
        check_float ~eps:1e-12 "P" (4. /. 3.) (M.get p 0 0));
    test "kron dimensions and a known product" (fun () ->
        let a = M.of_arrays [| [| 1.; 2. |] |] in
        let b = M.identity 2 in
        let k = Numerics.Linalg.kron a b in
        check_int "rows" 2 (M.rows k);
        check_int "cols" 4 (M.cols k);
        check_float "entry" 2. (M.get k 0 2));
    test "h2 of 1/(s+1) is 1/sqrt 2" (fun () ->
        let sys = Control.Plants.first_order ~tau:1. ~gain:1. in
        check_float ~eps:1e-9 "h2" (1. /. sqrt 2.) (Control.Norms.h2 sys));
    test "h2 rejects unstable systems and direct terms" (fun () ->
        check_raises_invalid "unstable" (fun () ->
            ignore (Control.Norms.h2 (Control.Plants.double_integrator ())));
        let with_d =
          Control.Lti.make ~domain:Control.Lti.Continuous
            ~a:(M.of_arrays [| [| -1. |] |])
            ~b:(M.identity 1) ~c:(M.identity 1) ~d:(M.identity 1)
        in
        check_raises_invalid "direct term" (fun () -> ignore (Control.Norms.h2 with_d)));
    test "discrete h2 matches the impulse-response energy" (fun () ->
        let sysd =
          Control.Discretize.discretize ~ts:0.2 (Control.Plants.first_order ~tau:1. ~gain:1.)
        in
        let norm = Control.Norms.h2 sysd in
        (* energy of the discrete impulse response Σ g(k)² *)
        let a = M.get sysd.Control.Lti.a 0 0 and b = M.get sysd.Control.Lti.b 0 0 in
        let energy = b *. b /. (1. -. (a *. a)) in
        check_float ~eps:1e-9 "matches analytic sum" (sqrt energy) norm);
    test "hinf of a resonant second-order system" (fun () ->
        let zeta = 0.1 in
        let sys =
          Control.Tf.to_ss ~domain:Control.Lti.Continuous
            (Control.Tf.second_order ~wn:2. ~zeta)
        in
        let peak, w_peak = Control.Norms.hinf sys in
        let expected = 1. /. (2. *. zeta *. sqrt (1. -. (zeta *. zeta))) in
        check_float ~eps:1e-4 "peak" expected peak;
        check_float ~eps:1e-2 "peak frequency" (2. *. sqrt (1. -. (2. *. zeta *. zeta))) w_peak);
    test "hinf of a lag is its DC gain" (fun () ->
        let peak, _ = Control.Norms.hinf (Control.Plants.first_order ~tau:1. ~gain:3.) in
        check_float ~eps:1e-6 "dc" 3. peak);
  ]

let suites =
  [
    ("numerics.cmatrix", cmatrix_tests);
    ("control.freq", freq_tests);
    ("control.nyquist", nyquist_tests);
    ("control.norms", norms_tests);
  ]
