(* Shared test helpers. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Invalid_argument, got %s" msg (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a result" msg

let check_vec ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Vec.equal ~eps expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg
      (Format.asprintf "%a" Numerics.Vec.pp expected)
      (Format.asprintf "%a" Numerics.Vec.pp actual)

let check_mat ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Matrix.equal ~eps expected actual) then
    Alcotest.failf "%s: expected@.%s@.got@.%s" msg
      (Format.asprintf "%a" Numerics.Matrix.pp expected)
      (Format.asprintf "%a" Numerics.Matrix.pp actual)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
