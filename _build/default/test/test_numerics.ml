open Helpers
module V = Numerics.Vec
module M = Numerics.Matrix
module L = Numerics.Linalg
module P = Numerics.Poly

(* ------------------------------------------------------------------ *)
(* Vec *)

let vec_tests =
  [
    test "create fills" (fun () -> check_vec "create" [| 2.; 2.; 2. |] (V.create 3 2.));
    test "zeros" (fun () -> check_vec "zeros" [| 0.; 0. |] (V.zeros 2));
    test "init indexes" (fun () ->
        check_vec "init" [| 0.; 1.; 4. |] (V.init 3 (fun i -> float_of_int (i * i))));
    test "add" (fun () -> check_vec "add" [| 4.; 6. |] (V.add [| 1.; 2. |] [| 3.; 4. |]));
    test "sub" (fun () -> check_vec "sub" [| -2.; -2. |] (V.sub [| 1.; 2. |] [| 3.; 4. |]));
    test "add mismatched lengths raises" (fun () ->
        check_raises_invalid "add" (fun () -> V.add [| 1. |] [| 1.; 2. |]));
    test "scale" (fun () -> check_vec "scale" [| 2.; -4. |] (V.scale 2. [| 1.; -2. |]));
    test "axpy" (fun () ->
        check_vec "axpy" [| 5.; 8. |] (V.axpy 2. [| 1.; 2. |] [| 3.; 4. |]));
    test "dot" (fun () -> check_float "dot" 11. (V.dot [| 1.; 2. |] [| 3.; 4. |]));
    test "norm2 of 3-4-right-triangle" (fun () ->
        check_float "norm" 5. (V.norm2 [| 3.; 4. |]));
    test "norm_inf" (fun () -> check_float "norm_inf" 7. (V.norm_inf [| -7.; 3. |]));
    test "norm_inf empty is zero" (fun () -> check_float "norm_inf" 0. (V.norm_inf [||]));
    test "dist2" (fun () -> check_float "dist" 5. (V.dist2 [| 0.; 0. |] [| 3.; 4. |]));
    test "map2" (fun () ->
        check_vec "map2" [| 3.; 8. |] (V.map2 ( *. ) [| 1.; 2. |] [| 3.; 4. |]));
    test "equal respects eps" (fun () ->
        check_true "close" (V.equal ~eps:1e-3 [| 1.0 |] [| 1.0005 |]);
        check_false "far" (V.equal ~eps:1e-6 [| 1.0 |] [| 1.0005 |]));
    test "copy is fresh" (fun () ->
        let v = [| 1.; 2. |] in
        let c = V.copy v in
        c.(0) <- 9.;
        check_float "original intact" 1. v.(0));
    qtest "add commutes"
      QCheck2.Gen.(pair (array_size (int_range 0 8) (float_range (-1e3) 1e3))
                     (array_size (int_range 0 8) (float_range (-1e3) 1e3)))
      (fun (u, v) ->
        if Array.length u <> Array.length v then QCheck2.assume_fail ()
        else V.equal (V.add u v) (V.add v u));
    qtest "dot with self is norm2 squared"
      QCheck2.Gen.(array_size (int_range 0 8) (float_range (-100.) 100.))
      (fun v ->
        let n = V.norm2 v in
        Float.abs (V.dot v v -. (n *. n)) <= 1e-6 *. (1. +. (n *. n)));
  ]

(* ------------------------------------------------------------------ *)
(* Matrix *)

let m22 a b c d = M.of_arrays [| [| a; b |]; [| c; d |] |]

let matrix_tests =
  [
    test "dims" (fun () ->
        let m = M.zeros 2 3 in
        check_int "rows" 2 (M.rows m);
        check_int "cols" 3 (M.cols m));
    test "identity diagonal" (fun () ->
        let i3 = M.identity 3 in
        check_float "diag" 1. (M.get i3 1 1);
        check_float "off" 0. (M.get i3 0 2));
    test "of_arrays ragged raises" (fun () ->
        check_raises_invalid "ragged" (fun () -> M.of_arrays [| [| 1. |]; [| 1.; 2. |] |]));
    test "of_arrays empty raises" (fun () ->
        check_raises_invalid "empty" (fun () -> M.of_arrays [||]));
    test "get out of bounds raises" (fun () ->
        check_raises_invalid "oob" (fun () -> M.get (M.zeros 2 2) 2 0));
    test "set is functional" (fun () ->
        let m = M.zeros 2 2 in
        let m' = M.set m 0 1 5. in
        check_float "updated" 5. (M.get m' 0 1);
        check_float "original" 0. (M.get m 0 1));
    test "mul known product" (fun () ->
        let a = m22 1. 2. 3. 4. and b = m22 5. 6. 7. 8. in
        check_mat "product" (m22 19. 22. 43. 50.) (M.mul a b));
    test "mul dimension mismatch raises" (fun () ->
        check_raises_invalid "mul" (fun () -> ignore (M.mul (M.zeros 2 3) (M.zeros 2 3))));
    test "mul_vec" (fun () ->
        check_vec "mv" [| 5.; 11. |] (M.mul_vec (m22 1. 2. 3. 4.) [| 1.; 2. |]));
    test "transpose" (fun () ->
        check_mat "t" (m22 1. 3. 2. 4.) (M.transpose (m22 1. 2. 3. 4.)));
    test "trace" (fun () -> check_float "tr" 5. (M.trace (m22 1. 2. 3. 4.)));
    test "trace of non-square raises" (fun () ->
        check_raises_invalid "tr" (fun () -> ignore (M.trace (M.zeros 2 3))));
    test "hcat/vcat shapes" (fun () ->
        let h = M.hcat (M.zeros 2 1) (M.identity 2) in
        check_int "hcat cols" 3 (M.cols h);
        let v = M.vcat (M.zeros 1 2) (M.identity 2) in
        check_int "vcat rows" 3 (M.rows v));
    test "block extraction" (fun () ->
        let m = M.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
        check_mat "block" (M.of_arrays [| [| 2.; 3. |] |]) (M.block m 0 1 1 2));
    test "block out of bounds raises" (fun () ->
        check_raises_invalid "block" (fun () -> ignore (M.block (M.zeros 2 2) 1 1 2 2)));
    test "norm_inf is max row sum" (fun () ->
        check_float "norm" 7. (M.norm_inf (m22 1. (-2.) 3. 4.)));
    test "norm_fro" (fun () ->
        check_float "fro" (sqrt 30.) (M.norm_fro (m22 1. 2. 3. 4.)));
    test "pow squares" (fun () ->
        let a = m22 1. 1. 0. 1. in
        check_mat "a^3" (m22 1. 3. 0. 1.) (M.pow a 3));
    test "pow zero is identity" (fun () ->
        check_mat "a^0" (M.identity 2) (M.pow (m22 5. 5. 5. 5.) 0));
    test "pow negative raises" (fun () ->
        check_raises_invalid "pow" (fun () -> ignore (M.pow (M.identity 2) (-1))));
    test "of_vec/to_vec roundtrip" (fun () ->
        check_vec "roundtrip" [| 1.; 2.; 3. |] (M.to_vec (M.of_vec [| 1.; 2.; 3. |])));
    test "to_vec of matrix raises" (fun () ->
        check_raises_invalid "to_vec" (fun () -> ignore (M.to_vec (M.zeros 2 2))));
    test "row/col" (fun () ->
        let m = m22 1. 2. 3. 4. in
        check_vec "row" [| 3.; 4. |] (M.row m 1);
        check_vec "col" [| 2.; 4. |] (M.col m 1));
    qtest "transpose involutive"
      QCheck2.Gen.(
        pair (int_range 1 5) (int_range 1 5) >>= fun (r, c) ->
        array_size (return (r * c)) (float_range (-100.) 100.) >|= fun a -> (r, c, a))
      (fun (r, c, a) ->
        let m = M.init r c (fun i j -> a.((i * c) + j)) in
        M.equal m (M.transpose (M.transpose m)));
    qtest "mul associative"
      QCheck2.Gen.(array_size (return 12) (float_range (-10.) 10.))
      (fun a ->
        let m1 = M.init 2 2 (fun i j -> a.((2 * i) + j)) in
        let m2 = M.init 2 2 (fun i j -> a.(4 + (2 * i) + j)) in
        let m3 = M.init 2 2 (fun i j -> a.(8 + (2 * i) + j)) in
        M.equal ~eps:1e-6 (M.mul (M.mul m1 m2) m3) (M.mul m1 (M.mul m2 m3)));
    qtest "identity neutral"
      QCheck2.Gen.(array_size (return 9) (float_range (-100.) 100.))
      (fun a ->
        let m = M.init 3 3 (fun i j -> a.((3 * i) + j)) in
        M.equal (M.mul m (M.identity 3)) m && M.equal (M.mul (M.identity 3) m) m);
  ]

(* ------------------------------------------------------------------ *)
(* Linalg *)

let random_spd rng n =
  (* Aᵀ·A + n·I is symmetric positive definite, hence invertible *)
  let a = M.init n n (fun _ _ -> Numerics.Rng.uniform rng (-1.) 1.) in
  M.add (M.mul (M.transpose a) a) (M.scale (float_of_int n) (M.identity n))

let linalg_tests =
  [
    test "solve 2x2" (fun () ->
        let a = m22 2. 1. 1. 3. in
        let x = L.solve a [| 5.; 10. |] in
        check_vec ~eps:1e-12 "solution" [| 1.; 3. |] x);
    test "solve singular raises" (fun () ->
        let a = m22 1. 2. 2. 4. in
        match L.solve a [| 1.; 2. |] with
        | exception L.Singular -> ()
        | _ -> Alcotest.fail "expected Singular");
    test "det of known matrix" (fun () ->
        check_float "det" (-2.) (L.det (m22 1. 2. 3. 4.)));
    test "det singular is zero" (fun () ->
        check_float "det" 0. (L.det (m22 1. 2. 2. 4.)));
    test "inv times original is identity" (fun () ->
        let a = m22 4. 7. 2. 6. in
        check_mat ~eps:1e-12 "inv" (M.identity 2) (M.mul a (L.inv a)));
    test "inv not square raises" (fun () ->
        check_raises_invalid "inv" (fun () -> ignore (L.lu_decompose (M.zeros 2 3))));
    test "lu_det equals det" (fun () ->
        let a = M.of_arrays [| [| 2.; 0.; 1. |]; [| 1.; 1.; 0. |]; [| 0.; 3.; 1. |] |] in
        check_float ~eps:1e-12 "det" (L.det a) (L.lu_det (L.lu_decompose a)));
    test "char_poly of diag(1,2)" (fun () ->
        (* (x-1)(x-2) = 2 - 3x + x² *)
        let p = L.char_poly (m22 1. 0. 0. 2.) in
        check_vec ~eps:1e-12 "coeffs" [| 2.; -3.; 1. |] p);
    test "eigenvalues of triangular matrix" (fun () ->
        let eigs = L.eigenvalues (m22 3. 1. 0. (-2.)) in
        let res = List.sort compare (List.map (fun z -> z.Complex.re) eigs) in
        match res with
        | [ a; b ] ->
            check_float ~eps:1e-6 "min" (-2.) a;
            check_float ~eps:1e-6 "max" 3. b
        | _ -> Alcotest.fail "expected two eigenvalues");
    test "eigenvalues of rotation are complex conjugates" (fun () ->
        let eigs = L.eigenvalues (m22 0. (-1.) 1. 0.) in
        List.iter (fun z -> check_float ~eps:1e-6 "modulus" 1. (Complex.norm z)) eigs;
        check_float ~eps:1e-6 "conjugate sum" 0.
          (List.fold_left (fun acc z -> acc +. z.Complex.im) 0. eigs));
    test "spectral radius" (fun () ->
        check_float ~eps:1e-6 "rho" 3. (L.spectral_radius (m22 3. 0. 0. (-1.))));
    test "continuous stability" (fun () ->
        check_true "stable" (L.is_stable_continuous (m22 (-1.) 0. 0. (-2.)));
        check_false "unstable" (L.is_stable_continuous (m22 1. 0. 0. (-2.))));
    test "discrete stability" (fun () ->
        check_true "stable" (L.is_stable_discrete (m22 0.5 0. 0. (-0.9)));
        check_false "unstable" (L.is_stable_discrete (m22 1.1 0. 0. 0.)));
    test "lstsq recovers line fit" (fun () ->
        (* fit y = 2x + 1 exactly through 3 points *)
        let a = M.of_arrays [| [| 0.; 1. |]; [| 1.; 1. |]; [| 2.; 1. |] |] in
        let x = L.lstsq a [| 1.; 3.; 5. |] in
        check_vec ~eps:1e-9 "coeffs" [| 2.; 1. |] x);
    qtest "LU solve residual is small" ~count:100
      QCheck2.Gen.(pair (int_range 1 6) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Numerics.Rng.create seed in
        let a = random_spd rng n in
        let b = Array.init n (fun _ -> Numerics.Rng.uniform rng (-10.) 10.) in
        let x = L.solve a b in
        V.dist2 (M.mul_vec a x) b <= 1e-8 *. (1. +. V.norm2 b));
    qtest "char_poly degree equals dimension" ~count:50
      QCheck2.Gen.(pair (int_range 1 5) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Numerics.Rng.create seed in
        let a = M.init n n (fun _ _ -> Numerics.Rng.uniform rng (-2.) 2.) in
        P.degree (L.char_poly a) = n);
    qtest "trace equals eigenvalue sum" ~count:50
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let rng = Numerics.Rng.create seed in
        let a = M.init 3 3 (fun _ _ -> Numerics.Rng.uniform rng (-2.) 2.) in
        let sum = List.fold_left (fun acc z -> acc +. z.Complex.re) 0. (L.eigenvalues a) in
        Float.abs (sum -. M.trace a) <= 1e-5 *. (1. +. Float.abs (M.trace a)));
  ]

(* ------------------------------------------------------------------ *)
(* Poly *)

let poly_tests =
  [
    test "normalize drops trailing zeros" (fun () ->
        check_vec "norm" [| 1.; 2. |] (P.normalize [| 1.; 2.; 0.; 0. |]));
    test "degree of zero poly" (fun () -> check_int "deg" 0 (P.degree [| 0.; 0. |]));
    test "eval Horner" (fun () ->
        (* 1 + 2x + 3x² at x = 2 → 17 *)
        check_float "eval" 17. (P.eval [| 1.; 2.; 3. |] 2.));
    test "add with different degrees" (fun () ->
        check_vec "add" [| 2.; 2.; 3. |] (P.add [| 1.; 2.; 3. |] [| 1. |]));
    test "mul known" (fun () ->
        (* (1+x)(1-x) = 1 - x² *)
        check_vec "mul" [| 1.; 0.; -1. |] (P.mul [| 1.; 1. |] [| 1.; -1. |]));
    test "derive" (fun () ->
        check_vec "derive" [| 2.; 6. |] (P.derive [| 1.; 2.; 3. |]));
    test "of_roots expands" (fun () ->
        (* roots 1, 2 → x² - 3x + 2 *)
        check_vec "expand" [| 2.; -3.; 1. |] (P.of_roots [| 1.; 2. |]));
    test "roots of quadratic" (fun () ->
        let rs = P.roots [| 2.; -3.; 1. |] in
        let re = List.sort compare (List.map (fun z -> z.Complex.re) rs) in
        (match re with
        | [ a; b ] ->
            check_float ~eps:1e-8 "root 1" 1. a;
            check_float ~eps:1e-8 "root 2" 2. b
        | _ -> Alcotest.fail "expected 2 roots"));
    test "roots of x^2+1 are +-i" (fun () ->
        let rs = P.roots [| 1.; 0.; 1. |] in
        List.iter (fun z -> check_float ~eps:1e-8 "real part" 0. z.Complex.re) rs;
        let ims = List.sort compare (List.map (fun z -> z.Complex.im) rs) in
        match ims with
        | [ a; b ] ->
            check_float ~eps:1e-8 "im -1" (-1.) a;
            check_float ~eps:1e-8 "im +1" 1. b
        | _ -> Alcotest.fail "expected 2 roots");
    test "roots of constant is empty" (fun () ->
        check_int "none" 0 (List.length (P.roots [| 5. |])));
    test "roots of zero poly raises" (fun () ->
        check_raises_invalid "zero" (fun () -> ignore (P.roots [| 0. |])));
    qtest "eval at computed roots is near zero" ~count:100
      QCheck2.Gen.(array_size (int_range 1 4) (float_range (-3.) 3.))
      (fun roots ->
        let p = P.of_roots roots in
        let rs = P.roots p in
        List.for_all (fun z -> Complex.norm (P.eval_c p z) <= 1e-4) rs);
  ]

(* ------------------------------------------------------------------ *)
(* Expm *)

let expm_tests =
  [
    test "expm of zero is identity" (fun () ->
        check_mat ~eps:1e-12 "e^0" (M.identity 3) (Numerics.Expm.expm (M.zeros 3 3)));
    test "expm of diagonal" (fun () ->
        let e = Numerics.Expm.expm (m22 1. 0. 0. (-1.)) in
        check_float ~eps:1e-10 "e^1" (Float.exp 1.) (M.get e 0 0);
        check_float ~eps:1e-10 "e^-1" (Float.exp (-1.)) (M.get e 1 1);
        check_float ~eps:1e-10 "off" 0. (M.get e 0 1));
    test "expm of nilpotent" (fun () ->
        (* exp([[0,1],[0,0]]) = [[1,1],[0,1]] *)
        check_mat ~eps:1e-12 "nilpotent" (m22 1. 1. 0. 1.)
          (Numerics.Expm.expm (m22 0. 1. 0. 0.)));
    test "expm of rotation gives cos/sin" (fun () ->
        let theta = 0.7 in
        let e = Numerics.Expm.expm (m22 0. (-.theta) theta 0.) in
        check_float ~eps:1e-10 "cos" (cos theta) (M.get e 0 0);
        check_float ~eps:1e-10 "sin" (sin theta) (M.get e 1 0));
    test "expm with large norm still accurate" (fun () ->
        (* scaling and squaring: e^(-30) on the diagonal *)
        let e = Numerics.Expm.expm (m22 (-30.) 0. 0. (-30.)) in
        check_float ~eps:1e-18 "tiny" (Float.exp (-30.)) (M.get e 0 0));
    test "zoh of scalar system matches analytic" (fun () ->
        (* dx = -x + u: Ad = e^{-h}, Bd = 1 - e^{-h} *)
        let a = M.of_arrays [| [| -1. |] |] and b = M.of_arrays [| [| 1. |] |] in
        let ad, bd = Numerics.Expm.zoh a b 0.3 in
        check_float ~eps:1e-12 "Ad" (Float.exp (-0.3)) (M.get ad 0 0);
        check_float ~eps:1e-12 "Bd" (1. -. Float.exp (-0.3)) (M.get bd 0 0));
    test "zoh of double integrator" (fun () ->
        (* Ad = [[1,h],[0,1]], Bd = [h²/2; h] *)
        let a = m22 0. 1. 0. 0. and b = M.of_arrays [| [| 0. |]; [| 1. |] |] in
        let ad, bd = Numerics.Expm.zoh a b 0.5 in
        check_mat ~eps:1e-12 "Ad" (m22 1. 0.5 0. 1.) ad;
        check_float ~eps:1e-12 "Bd0" 0.125 (M.get bd 0 0);
        check_float ~eps:1e-12 "Bd1" 0.5 (M.get bd 1 0));
    test "zoh rejects non-positive period" (fun () ->
        check_raises_invalid "ts" (fun () ->
            ignore (Numerics.Expm.zoh (M.identity 1) (M.identity 1) 0.)));
    qtest "expm(A)·expm(-A) = I" ~count:50
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let rng = Numerics.Rng.create seed in
        let a = M.init 3 3 (fun _ _ -> Numerics.Rng.uniform rng (-1.) 1.) in
        let prod = M.mul (Numerics.Expm.expm a) (Numerics.Expm.expm (M.neg a)) in
        M.equal ~eps:1e-8 prod (M.identity 3));
  ]

(* ------------------------------------------------------------------ *)
(* Ode *)

let ode_tests =
  let decay _ x = [| -.x.(0) |] in
  let oscillator _ x = [| x.(1); -.x.(0) |] in
  [
    test "rk4 exponential decay accuracy" (fun () ->
        let xf = Numerics.Ode.integrate ~meth:Numerics.Ode.Rk4 ~max_step:0.01 decay ~t0:0. ~t1:1. [| 1. |] in
        check_float ~eps:1e-8 "e^-1" (Float.exp (-1.)) xf.(0));
    test "euler converges coarsely" (fun () ->
        let xf = Numerics.Ode.integrate ~meth:Numerics.Ode.Euler ~max_step:1e-4 decay ~t0:0. ~t1:1. [| 1. |] in
        check_float ~eps:1e-3 "e^-1" (Float.exp (-1.)) xf.(0));
    test "rk2 between euler and rk4" (fun () ->
        let xf = Numerics.Ode.integrate ~meth:Numerics.Ode.Rk2 ~max_step:0.01 decay ~t0:0. ~t1:1. [| 1. |] in
        check_float ~eps:1e-5 "e^-1" (Float.exp (-1.)) xf.(0));
    test "rkf45 harmonic oscillator one period" (fun () ->
        let xf =
          Numerics.Ode.integrate oscillator ~t0:0. ~t1:(2. *. Float.pi) [| 1.; 0. |]
        in
        check_float ~eps:1e-4 "x back to 1" 1. xf.(0);
        check_float ~eps:1e-4 "v back to 0" 0. xf.(1));
    test "rkf45 respects tolerance on stiff-ish decay" (fun () ->
        let fast _ x = [| -50. *. x.(0) |] in
        let xf =
          Numerics.Ode.integrate
            ~meth:(Numerics.Ode.Rkf45 { rtol = 1e-8; atol = 1e-12 })
            fast ~t0:0. ~t1:0.5 [| 1. |]
        in
        check_float ~eps:1e-8 "decay" (Float.exp (-25.)) xf.(0));
    test "zero-length integration returns copy" (fun () ->
        let x0 = [| 2. |] in
        let xf = Numerics.Ode.integrate decay ~t0:1. ~t1:1. x0 in
        check_vec "same" x0 xf;
        xf.(0) <- 0.;
        check_float "copy" 2. x0.(0));
    test "t1 before t0 raises" (fun () ->
        check_raises_invalid "order" (fun () ->
            ignore (Numerics.Ode.integrate decay ~t0:1. ~t1:0. [| 1. |])));
    test "observer sees initial and final state" (fun () ->
        let seen = ref [] in
        let observer t x = seen := (t, x.(0)) :: !seen in
        ignore (Numerics.Ode.integrate ~observer decay ~t0:0. ~t1:1. [| 1. |]);
        let times = List.rev_map fst !seen in
        check_true "starts at 0" (List.hd times = 0.);
        check_float ~eps:1e-12 "ends at 1" 1. (List.hd !seen |> fst));
    test "max_step honoured by fixed methods" (fun () ->
        let count = ref 0 in
        let observer _ _ = incr count in
        ignore
          (Numerics.Ode.integrate ~meth:Numerics.Ode.Rk4 ~max_step:0.1 ~observer decay
             ~t0:0. ~t1:1. [| 1. |]);
        (* 10 steps + initial state *)
        check_int "steps" 11 !count);
    test "energy of oscillator approximately conserved by rk4" (fun () ->
        let xf =
          Numerics.Ode.integrate ~meth:Numerics.Ode.Rk4 ~max_step:0.01 oscillator ~t0:0.
            ~t1:20. [| 1.; 0. |]
        in
        let energy = (xf.(0) *. xf.(0)) +. (xf.(1) *. xf.(1)) in
        check_float ~eps:1e-6 "energy" 1. energy);
  ]

(* ------------------------------------------------------------------ *)
(* Rng *)

let rng_tests =
  [
    test "deterministic for equal seeds" (fun () ->
        let a = Numerics.Rng.create 7 and b = Numerics.Rng.create 7 in
        for _ = 1 to 100 do
          check_true "same" (Numerics.Rng.bits64 a = Numerics.Rng.bits64 b)
        done);
    test "different seeds diverge" (fun () ->
        let a = Numerics.Rng.create 1 and b = Numerics.Rng.create 2 in
        check_false "differ" (Numerics.Rng.bits64 a = Numerics.Rng.bits64 b));
    test "copy continues identically" (fun () ->
        let a = Numerics.Rng.create 3 in
        ignore (Numerics.Rng.bits64 a);
        let b = Numerics.Rng.copy a in
        check_true "same stream" (Numerics.Rng.bits64 a = Numerics.Rng.bits64 b));
    test "split decorrelates" (fun () ->
        let a = Numerics.Rng.create 3 in
        let b = Numerics.Rng.split a in
        check_false "independent" (Numerics.Rng.bits64 a = Numerics.Rng.bits64 b));
    test "float respects bound" (fun () ->
        let g = Numerics.Rng.create 11 in
        for _ = 1 to 1000 do
          let x = Numerics.Rng.float g 2.5 in
          check_true "in range" (x >= 0. && x < 2.5)
        done);
    test "float rejects non-positive bound" (fun () ->
        check_raises_invalid "bound" (fun () ->
            ignore (Numerics.Rng.float (Numerics.Rng.create 0) 0.)));
    test "int uniform in range" (fun () ->
        let g = Numerics.Rng.create 5 in
        let counts = Array.make 4 0 in
        for _ = 1 to 4000 do
          let k = Numerics.Rng.int g 4 in
          counts.(k) <- counts.(k) + 1
        done;
        Array.iter (fun c -> check_true "roughly uniform" (c > 800 && c < 1200)) counts);
    test "gaussian moments" (fun () ->
        let g = Numerics.Rng.create 17 in
        let xs = Array.init 20_000 (fun _ -> Numerics.Rng.gaussian g ~mu:3. ~sigma:2. ()) in
        check_float ~eps:0.1 "mean" 3. (Numerics.Stats.mean xs);
        check_float ~eps:0.1 "std" 2. (Numerics.Stats.stddev xs));
    test "exponential mean" (fun () ->
        let g = Numerics.Rng.create 23 in
        let xs = Array.init 20_000 (fun _ -> Numerics.Rng.exponential g 2.) in
        check_float ~eps:0.03 "mean 1/lambda" 0.5 (Numerics.Stats.mean xs));
    test "triangular bounds and mode-side skew" (fun () ->
        let g = Numerics.Rng.create 29 in
        let xs =
          Array.init 10_000 (fun _ -> Numerics.Rng.triangular g ~lo:0. ~mode:0.2 ~hi:1.)
        in
        Array.iter (fun x -> check_true "bounds" (x >= 0. && x <= 1.)) xs;
        check_float ~eps:0.02 "mean (0+0.2+1)/3" 0.4 (Numerics.Stats.mean xs));
    test "triangular invalid parameters raise" (fun () ->
        check_raises_invalid "params" (fun () ->
            ignore (Numerics.Rng.triangular (Numerics.Rng.create 0) ~lo:1. ~mode:0. ~hi:2.)));
    test "shuffle preserves multiset" (fun () ->
        let g = Numerics.Rng.create 31 in
        let a = Array.init 20 Fun.id in
        Numerics.Rng.shuffle g a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        check_true "permutation" (sorted = Array.init 20 Fun.id));
    test "choice on empty raises" (fun () ->
        check_raises_invalid "empty" (fun () ->
            ignore (Numerics.Rng.choice (Numerics.Rng.create 0) [||])));
  ]

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_tests =
  [
    test "mean" (fun () -> check_float "mean" 2. (Numerics.Stats.mean [| 1.; 2.; 3. |]));
    test "mean of empty raises" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (Numerics.Stats.mean [||])));
    test "variance/stddev" (fun () ->
        check_float "var" 2. (Numerics.Stats.variance [| 1.; 3. |] *. 2.);
        check_float "std" 1. (Numerics.Stats.stddev [| 1.; 3. |]));
    test "min/max" (fun () ->
        check_float "min" (-5.) (Numerics.Stats.min [| 3.; -5.; 2. |]);
        check_float "max" 3. (Numerics.Stats.max [| 3.; -5.; 2. |]));
    test "rms of constant" (fun () ->
        check_float "rms" 2. (Numerics.Stats.rms [| 2.; -2.; 2. |]));
    test "percentile endpoints" (fun () ->
        let xs = [| 10.; 20.; 30.; 40. |] in
        check_float "p0" 10. (Numerics.Stats.percentile xs 0.);
        check_float "p100" 40. (Numerics.Stats.percentile xs 100.));
    test "median interpolates" (fun () ->
        check_float "median" 25. (Numerics.Stats.median [| 10.; 20.; 30.; 40. |]));
    test "percentile out of range raises" (fun () ->
        check_raises_invalid "range" (fun () ->
            ignore (Numerics.Stats.percentile [| 1. |] 101.)));
    test "histogram counts all samples" (fun () ->
        let h = Numerics.Stats.histogram ~bins:4 [| 0.; 0.1; 0.5; 0.9; 1. |] in
        let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
        check_int "total" 5 total);
    test "histogram of constant sample" (fun () ->
        let h = Numerics.Stats.histogram ~bins:3 [| 5.; 5.; 5. |] in
        let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
        check_int "total" 3 total);
    test "summary mentions count" (fun () ->
        check_true "n=" (String.length (Numerics.Stats.summary [| 1.; 2. |]) > 0));
    qtest "percentile is monotone in p" ~count:100
      QCheck2.Gen.(
        pair
          (array_size (int_range 1 20) (float_range (-100.) 100.))
          (pair (float_range 0. 100.) (float_range 0. 100.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Numerics.Stats.percentile xs lo <= Numerics.Stats.percentile xs hi +. 1e-9);
  ]

let suites =
  [
    ("numerics.vec", vec_tests);
    ("numerics.matrix", matrix_tests);
    ("numerics.linalg", linalg_tests);
    ("numerics.poly", poly_tests);
    ("numerics.expm", expm_tests);
    ("numerics.ode", ode_tests);
    ("numerics.rng", rng_tests);
    ("numerics.stats", stats_tests);
  ]
