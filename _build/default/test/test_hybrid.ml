open Helpers
module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module B = Dataflow.Block

(* A bouncing ball: h'' = -g, impact at h = 0 reverses the velocity
   with restitution.  The canonical zero-crossing benchmark. *)
let bouncing_ball ~h0 ~restitution =
  let rest = ref false in
  B.make ~name:"ball" ~out_widths:[| 1 |] ~cstate0:[| h0; 0. |] ~always_active:true
    ~derivatives:(fun ctx -> if !rest then [| 0.; 0. |] else [| ctx.B.cstate.(1); -9.81 |])
    ~surfaces:1
    ~crossings:(fun ctx -> if !rest then [| 1. |] else [| ctx.B.cstate.(0) |])
    ~on_crossing:(fun ctx ~surface:_ ~rising ->
      if rising then []
      else begin
        let v = ctx.B.cstate.(1) in
        let v' = -.restitution *. v in
        if v' < 0.05 then begin
          (* come to rest: freeze the surface and stop *)
          rest := true;
          [ B.Set_cstate [| 0.; 0. |] ]
        end
        else
          (* restart epsilon above the surface so the next fall is a
             +→− crossing even when the whole flight fits inside one
             integration sub-step *)
          [ B.Set_cstate [| 1e-9; v' |] ]
      end)
    ~reset:(fun () -> rest := false)
    (fun ctx -> [| [| ctx.B.cstate.(0) |] |])

let crossing_tests =
  [
    test "block validation: surfaces need callbacks" (fun () ->
        check_raises_invalid "missing" (fun () ->
            ignore (B.make ~name:"bad" ~surfaces:1 (fun _ -> [||]))));
    test "block validation: callbacks need surfaces" (fun () ->
        check_raises_invalid "spurious" (fun () ->
            ignore
              (B.make ~name:"bad" ~crossings:(fun _ -> [||])
                 ~on_crossing:(fun _ ~surface:_ ~rising:_ -> [])
                 (fun _ -> [||]))));
    test "zero_cross locates a sine crossing at pi" (fun () ->
        let g = G.create () in
        let src = G.add g (C.sine_source ~freq_hz:(1. /. (2. *. Float.pi)) ()) in
        let zc = G.add g (E.zero_cross ~direction:`Falling ()) in
        let latch = G.add g (E.event_latch_time ()) in
        G.connect_data g ~src:(src, 0) ~dst:(zc, 0);
        G.connect_event g ~src:(zc, 0) ~dst:(latch, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"t" ~block:latch ~port:0;
        Sim.Engine.run ~t_end:4. e;
        (* sin(t) falls through zero at t = pi *)
        match Sim.Trace.last (Sim.Engine.probe e "t") with
        | Some (_, v) -> check_float ~eps:1e-6 "pi" Float.pi v.(0)
        | None -> Alcotest.fail "no crossing detected");
    test "rising-only detector ignores falling crossings" (fun () ->
        let g = G.create () in
        let src = G.add g (C.sine_source ~freq_hz:(1. /. (2. *. Float.pi)) ()) in
        let zc = G.add g (E.zero_cross ~direction:`Rising ()) in
        let counter = G.add g (E.event_counter ()) in
        G.connect_data g ~src:(src, 0) ~dst:(zc, 0);
        G.connect_event g ~src:(zc, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:7. e;
        (* over (0, 7]: falling at pi, rising at 2pi only *)
        check_int "one rising" 1 (List.length (Sim.Engine.activations e ~block:counter)));
    test "bouncing ball: first impact at analytic time" (fun () ->
        let g = G.create () in
        let ball = G.add g (bouncing_ball ~h0:1. ~restitution:0.8) in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"h" ~block:ball ~port:0;
        (* first impact: sqrt(2h/g) *)
        let t_impact = sqrt (2. /. 9.81) in
        Sim.Engine.run ~t_end:(t_impact +. 0.01) e;
        (match Sim.Trace.last (Sim.Engine.probe e "h") with
        | Some (_, v) ->
            check_true "ball rebounded above ground" (v.(0) >= 0.);
            check_true "ball is near the ground" (v.(0) < 0.05)
        | None -> Alcotest.fail "no samples"));
    test "bouncing ball: energy decreases across bounces" (fun () ->
        let g = G.create () in
        let ball = G.add g (bouncing_ball ~h0:1. ~restitution:0.8) in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"h" ~block:ball ~port:0;
        Sim.Engine.run ~t_end:3. e;
        let h = Sim.Engine.probe_component e "h" 0 in
        (* max height after the first bounce must be ~e² of the drop *)
        let after_first =
          Control.Metrics.of_arrays
            (Array.of_list
               (List.filteri
                  (fun i _ -> h.Control.Metrics.times.(i) > 0.46)
                  (Array.to_list h.Control.Metrics.times)))
            (Array.of_list
               (List.filteri
                  (fun i _ -> h.Control.Metrics.times.(i) > 0.46)
                  (Array.to_list h.Control.Metrics.values)))
        in
        let peak = Numerics.Stats.max after_first.Control.Metrics.values in
        check_true "no sample below ground"
          (Numerics.Stats.min h.Control.Metrics.values > -1e-6);
        check_float ~eps:0.02 "rebound peak ~ e^2" 0.64 peak);
    test "bouncing ball: comes to rest without Zeno lockup" (fun () ->
        let g = G.create () in
        let ball = G.add g (bouncing_ball ~h0:0.2 ~restitution:0.5) in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"h" ~block:ball ~port:0;
        Sim.Engine.run ~t_end:5. e;
        check_float ~eps:1e-12 "finished" 5. (Sim.Engine.now e);
        match Sim.Trace.last (Sim.Engine.probe e "h") with
        | Some (_, v) -> check_float ~eps:1e-6 "at rest on the ground" 0. v.(0)
        | None -> Alcotest.fail "no samples");
    test "thermostat: relay keeps temperature inside the hysteresis band" (fun () ->
        (* T' = -T/tau + K·u, relay on when T < 19 (i.e. -(T-19)
           rising), off when T > 21 *)
        let g = G.create () in
        let heater =
          G.add g
            (C.relay ~name:"thermostat" ~initially_on:true ~on_above:(-19.)
               ~off_below:(-21.) ~out_on:30. ~out_off:0. ())
        in
        (* feed -T so that "input above -19" means "T below 19" *)
        let plant =
          G.add g
            (C.lti_continuous ~name:"room" ~x0:[| 15. |]
               (Control.Plants.first_order ~tau:1. ~gain:1.))
        in
        let neg = G.add g (C.gain ~name:"neg" (-1.)) in
        G.connect_data g ~src:(plant, 0) ~dst:(neg, 0);
        G.connect_data g ~src:(neg, 0) ~dst:(heater, 0);
        G.connect_data g ~src:(heater, 0) ~dst:(plant, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"T" ~block:plant ~port:0;
        Sim.Engine.run ~t_end:10. e;
        let temps = (Sim.Engine.probe_component e "T" 0).Control.Metrics.values in
        let times = (Sim.Engine.probe_component e "T" 0).Control.Metrics.times in
        (* after warm-up, temperature cycles within [19, 21] ± locating
           tolerance *)
        Array.iteri
          (fun i temp ->
            if times.(i) > 2. then
              check_true "inside band" (temp > 18.9 && temp < 21.1))
          temps);
    test "relay toggle emits events" (fun () ->
        let g = G.create () in
        let src = G.add g (C.sine_source ~freq_hz:0.5 ()) in
        let rel =
          G.add g (C.relay ~on_above:0.5 ~off_below:(-0.5) ~out_on:1. ~out_off:0. ())
        in
        let counter = G.add g (E.event_counter ()) in
        G.connect_data g ~src:(src, 0) ~dst:(rel, 0);
        G.connect_event g ~src:(rel, 0) ~dst:(counter, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:2. e;
        (* one on-toggle and one off-toggle within one period *)
        check_int "two toggles" 2 (List.length (Sim.Engine.activations e ~block:counter)));
    test "Set_cstate dimension checked at run time" (fun () ->
        let bad =
          B.make ~name:"bad_jump" ~cstate0:[| 0. |] ~always_active:true
            ~derivatives:(fun _ -> [| 1. |])
            ~surfaces:1
            ~crossings:(fun ctx -> [| ctx.B.cstate.(0) -. 0.5 |])
            ~on_crossing:(fun _ ~surface:_ ~rising:_ -> [ B.Set_cstate [| 0.; 0. |] ])
            (fun _ -> [||])
        in
        let g = G.create () in
        let _ = G.add g bad in
        let e = Sim.Engine.create g in
        match Sim.Engine.run ~t_end:1. e with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure on bad Set_cstate");
  ]

let block_tests =
  [
    test "quantizer rounds to the grid" (fun () ->
        let g = G.create () in
        let src = G.add g (C.constant [| 0.37 |]) in
        let q = G.add g (C.quantizer ~step:0.25 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(q, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"q" ~block:q ~port:0;
        Sim.Engine.run ~t_end:0.1 e;
        (match Sim.Trace.last (Sim.Engine.probe e "q") with
        | Some (_, v) -> check_float ~eps:1e-12 "0.25 grid" 0.25 v.(0)
        | None -> Alcotest.fail "no samples"));
    test "quantizer rejects non-positive step" (fun () ->
        check_raises_invalid "step" (fun () -> ignore (C.quantizer ~step:0. ())));
    test "dead_zone clips small signals" (fun () ->
        let g = G.create () in
        let src = G.add g (C.constant [| 0.05 |]) in
        let dz = G.add g (C.dead_zone ~width:0.1 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(dz, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"y" ~block:dz ~port:0;
        Sim.Engine.run ~t_end:0.1 e;
        (match Sim.Trace.last (Sim.Engine.probe e "y") with
        | Some (_, v) -> check_float "zero inside zone" 0. v.(0)
        | None -> Alcotest.fail "no samples"));
    test "rate_limiter bounds the slope" (fun () ->
        let g = G.create () in
        let src = G.add g (C.step_source ~at:0.05 ~after:10. ()) in
        let rl = G.add g (C.rate_limiter ~rising:1. ~falling:1. ()) in
        let clock = G.add g (E.clock ~period:0.1 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(rl, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(rl, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"y" ~block:rl ~port:0;
        Sim.Engine.run ~t_end:1. e;
        (* first activation latches 0; thereafter slope <= 1 => y(1) <= 1 *)
        (match Sim.Trace.last (Sim.Engine.probe e "y") with
        | Some (_, v) ->
            check_true "bounded" (v.(0) <= 1.0 +. 1e-9);
            check_true "moving" (v.(0) > 0.5)
        | None -> Alcotest.fail "no samples"));
    test "biquad as unit gain passes signal through" (fun () ->
        let g = G.create () in
        let src = G.add g (C.constant [| 3. |]) in
        let f = G.add g (C.biquad ~b:[| 1. |] ~a:[| 1. |] ()) in
        let clock = G.add g (E.clock ~period:0.1 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(f, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(f, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"y" ~block:f ~port:0;
        Sim.Engine.run ~t_end:0.5 e;
        (match Sim.Trace.last (Sim.Engine.probe e "y") with
        | Some (_, v) -> check_float ~eps:1e-12 "pass through" 3. v.(0)
        | None -> Alcotest.fail "no samples"));
    test "biquad first-order low-pass converges to DC gain" (fun () ->
        (* y(k) = 0.5 u(k) + 0.5 y(k-1): DC gain 1 *)
        let g = G.create () in
        let src = G.add g (C.constant [| 2. |]) in
        let f = G.add g (C.biquad ~b:[| 0.5 |] ~a:[| 1.; -0.5 |] ()) in
        let clock = G.add g (E.clock ~period:0.01 ()) in
        G.connect_data g ~src:(src, 0) ~dst:(f, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(f, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"y" ~block:f ~port:0;
        Sim.Engine.run ~t_end:1. e;
        (match Sim.Trace.last (Sim.Engine.probe e "y") with
        | Some (_, v) -> check_float ~eps:1e-6 "dc" 2. v.(0)
        | None -> Alcotest.fail "no samples"));
    test "biquad validates coefficients" (fun () ->
        check_raises_invalid "a0" (fun () -> ignore (C.biquad ~b:[| 1. |] ~a:[| 0. |] ()));
        check_raises_invalid "length" (fun () ->
            ignore (C.biquad ~b:[| 1.; 1.; 1.; 1. |] ~a:[| 1. |] ())));
    test "relay validates thresholds" (fun () ->
        check_raises_invalid "order" (fun () ->
            ignore (C.relay ~on_above:0. ~off_below:1. ~out_on:1. ~out_off:0. ())));
  ]

let suites = [ ("sim.crossings", crossing_tests); ("dataflow.nonlinear_blocks", block_tests) ]
