open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations

(* distributed, conditioned application exercising all constructs *)
let full_exe () =
  let alg = Alg.create ~name:"cgen demo" ~period:0.1 in
  let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  Alg.set_condition_source alg ~var:"m" (mode, 0);
  let sense = Alg.add_op alg ~name:"sense-y" ~kind:Alg.Sensor ~outputs:[| 2 |] () in
  let cheap =
    Alg.add_op alg ~name:"cheap" ~kind:Alg.Compute ~inputs:[| 2 |] ~outputs:[| 1 |]
      ~cond:{ Alg.var = "m"; value = 0 } ()
  in
  let costly =
    Alg.add_op alg ~name:"costly" ~kind:Alg.Compute ~inputs:[| 2 |] ~outputs:[| 1 |]
      ~cond:{ Alg.var = "m"; value = 1 } ()
  in
  let act = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1; 1 |] () in
  Alg.depend alg ~src:(sense, 0) ~dst:(cheap, 0);
  Alg.depend alg ~src:(sense, 0) ~dst:(costly, 0);
  Alg.depend alg ~src:(cheap, 0) ~dst:(act, 0);
  Alg.depend alg ~src:(costly, 0) ~dst:(act, 1);
  let arch = Arch.bus_topology ~latency:0.001 ~time_per_word:0.0005 [ "P0"; "P1" ] in
  let d = Dur.create () in
  Dur.set d ~op:"mode" ~operator:"P0" 0.002;
  Dur.set d ~op:"sense-y" ~operator:"P0" 0.002;
  Dur.set d ~op:"cheap" ~operator:"P1" 0.002;
  Dur.set d ~op:"costly" ~operator:"P1" 0.02;
  Dur.set d ~op:"act" ~operator:"P0" 0.002;
  let sched = Aaa.Adequation.run ~algorithm:alg ~architecture:arch ~durations:d () in
  Aaa.Codegen.generate sched

let cgen_tests =
  [
    test "emission covers runtime, headers and one file per operator" (fun () ->
        let files = Aaa.Cgen.emit (full_exe ()) in
        let names = List.map fst files in
        List.iter
          (fun expected -> check_true expected (List.mem expected names))
          [ "scilife_runtime.h"; "channels.h"; "ops.h"; "operator_P0.c"; "operator_P1.c" ]);
    test "generated code reflects the schedule's constructs" (fun () ->
        let files = Aaa.Cgen.emit (full_exe ()) in
        let content name = List.assoc name files in
        (* mangled names, conditioning guard, channel enum, calls *)
        check_true "mangled op" (contains (content "ops.h") "op_sense_y");
        check_true "channel enum" (contains (content "channels.h") "CH_SENSE_Y_0__CHEAP_0");
        check_true "cond channel" (contains (content "channels.h") "_COND");
        let p1 = content "operator_P1.c" in
        check_true "wait" (contains p1 "rt_wait_period(rt);");
        check_true "guard" (contains p1 "if ((int)lround(buf_mode_0[0]) == 1)");
        check_true "receive into producer replica" (contains p1 "rt_receive(rt, CH_SENSE_Y_0__CHEAP_0, buf_sense_y_0, 2);");
        let p0 = content "operator_P0.c" in
        check_true "send" (contains p0 "rt_send(rt, CH_SENSE_Y_0__CHEAP_0, buf_sense_y_0, 2);"));
    test "memory operations appear as state-copy calls" (fun () ->
        (* s -> update <-> state memory -> a *)
        let alg = Alg.create ~name:"stateful" ~period:0.1 in
        let s = Alg.add_op alg ~name:"s" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        let mem = Alg.add_op alg ~name:"state" ~kind:Alg.Memory ~inputs:[| 1 |] ~outputs:[| 1 |] () in
        let upd = Alg.add_op alg ~name:"update" ~kind:Alg.Compute ~inputs:[| 1; 1 |] ~outputs:[| 1 |] () in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
        Alg.depend alg ~src:(s, 0) ~dst:(upd, 0);
        Alg.depend alg ~src:(mem, 0) ~dst:(upd, 1);
        Alg.depend alg ~src:(upd, 0) ~dst:(mem, 0);
        Alg.depend alg ~src:(upd, 0) ~dst:(a, 0);
        let arch = Arch.single () in
        let d = Dur.create () in
        List.iter (fun op -> Dur.set d ~op ~operator:"P0" 0.001) [ "s"; "state"; "update"; "a" ];
        let sched = Aaa.Adequation.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let files = Aaa.Cgen.emit (Aaa.Codegen.generate sched) in
        let p0 = List.assoc "operator_P0.c" files in
        check_true "update reads the memory buffer"
          (contains p0 "op_update(buf_s_0, buf_state_0, buf_update_0);");
        check_true "memory refreshed from its producer"
          (contains p0 "op_state(buf_update_0, buf_state_0);"));
    test "generated C compiles (when a C compiler is available)" (fun () ->
        match
          Sys.command "command -v cc > /dev/null 2>&1"
        with
        | 0 ->
            let dir = Filename.temp_file "scilife_cgen" "" in
            Sys.remove dir;
            Unix.mkdir dir 0o755;
            Aaa.Cgen.write (full_exe ()) ~dir;
            List.iter
              (fun f ->
                let cmd =
                  Printf.sprintf "cc -std=c99 -Wall -Werror -c -o /dev/null -I%s %s 2>&1"
                    (Filename.quote dir)
                    (Filename.quote (Filename.concat dir f))
                in
                check_int (f ^ " compiles") 0 (Sys.command cmd))
              [ "operator_P0.c"; "operator_P1.c" ]
        | _ -> () (* no compiler in this environment: skip *));
  ]

let suites = [ ("aaa.cgen", cgen_tests) ]
