open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sexp = Aaa.Sexp
module Sdx = Aaa.Sdx

let sample =
  {|
; a conditioned two-branch application over a gateway
(application
  (algorithm (name demo) (period 0.1)
    (operation (name mode) (kind sensor) (outputs 1))
    (operation (name cheap) (kind compute) (outputs 1) (when m 0))
    (operation (name costly) (kind compute) (outputs 1) (when m 1))
    (operation (name act) (kind actuator) (inputs 1 1))
    (dependency (from cheap 0) (to act 0))
    (dependency (from costly 0) (to act 1))
    (condition-source (var m) (from mode 0)))
  (architecture (name gw)
    (operator P0) (operator GW) (operator P1)
    (bus (name busA) (latency 0.001) (rate 0.0005) (connects P0 GW))
    (bus (name busB) (latency 0.002) (rate 0.0005) (connects GW P1)))
  (durations
    (wcet mode P0 0.002)
    (wcet cheap * 0.002)
    (wcet costly P1 0.03)
    (bcet costly P1 0.01)
    (wcet act P0 0.002))
  (pins (pin costly P1)))
|}

let sexp_tests =
  [
    test "atoms, lists and comments" (fun () ->
        let exps = Sexp.parse "a (b c) ; comment\n(d (e))" in
        check_int "three top-level" 3 (List.length exps);
        match exps with
        | [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ]; Sexp.List _ ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    test "unbalanced parens rejected with line number" (fun () ->
        (match Sexp.parse "(a\n(b" with
        | exception Failure msg -> check_true "line info" (contains msg "line")
        | _ -> Alcotest.fail "expected Failure");
        match Sexp.parse ")" with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
    test "to_string round-trips structure" (fun () ->
        let exp =
          Sexp.List
            [
              Sexp.Atom "application";
              Sexp.List [ Sexp.Atom "k"; Sexp.Atom "1"; Sexp.Atom "2" ];
              Sexp.List (List.init 30 (fun i -> Sexp.Atom (string_of_int i)));
            ]
        in
        match Sexp.parse (Sexp.to_string exp) with
        | [ reparsed ] -> check_true "equal" (reparsed = exp)
        | _ -> Alcotest.fail "expected one expression");
    test "accessors raise with context" (fun () ->
        (match Sexp.atom (Sexp.List []) with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
        check_true "keyed finds first"
          (Sexp.keyed "k" [ Sexp.List [ Sexp.Atom "k"; Sexp.Atom "v" ] ]
          = Some [ Sexp.Atom "v" ]));
  ]

let sdx_tests =
  [
    test "sample application parses with all features" (fun () ->
        let app = Sdx.parse sample in
        let alg = app.Sdx.algorithm in
        check_int "4 ops" 4 (Alg.op_count alg);
        check_int "3 operators" 3 (Arch.operator_count app.Sdx.architecture);
        check_int "2 buses" 2 (Arch.medium_count app.Sdx.architecture);
        check_true "pin" (app.Sdx.pins = [ ("costly", "P1") ]);
        (* conditioning *)
        let costly = Option.get (Alg.find_op alg "costly") in
        check_true "condition" (Alg.op_cond alg costly = Some { Alg.var = "m"; value = 1 });
        check_true "source declared" (Alg.condition_source alg ~var:"m" <> None);
        (* durations: star spreads, bcet recorded *)
        check_true "star wcet" (Dur.wcet app.Sdx.durations ~op:"cheap" ~operator:"GW" = Some 0.002);
        check_true "bcet" (Dur.bcet app.Sdx.durations ~op:"costly" ~operator:"P1" = Some 0.01));
    test "parsed application schedules end to end" (fun () ->
        let app = Sdx.parse sample in
        let sched =
          Aaa.Adequation.run ~pins:app.Sdx.pins ~algorithm:app.Sdx.algorithm
            ~architecture:app.Sdx.architecture ~durations:app.Sdx.durations ()
        in
        check_true "costly pinned"
          (Arch.operator_name app.Sdx.architecture
             (Aaa.Schedule.operator_of sched (Option.get (Alg.find_op app.Sdx.algorithm "costly")))
          = "P1"));
    test "print/parse round-trip preserves the application" (fun () ->
        let app = Sdx.parse sample in
        let app2 = Sdx.parse (Sdx.print app) in
        let alg1 = app.Sdx.algorithm and alg2 = app2.Sdx.algorithm in
        check_int "ops" (Alg.op_count alg1) (Alg.op_count alg2);
        List.iter
          (fun op ->
            let name = Alg.op_name alg1 op in
            let op2 = Option.get (Alg.find_op alg2 name) in
            check_true ("kind of " ^ name) (Alg.op_kind alg1 op = Alg.op_kind alg2 op2);
            check_true ("cond of " ^ name) (Alg.op_cond alg1 op = Alg.op_cond alg2 op2))
          (Alg.ops alg1);
        check_int "deps" (List.length (Alg.dependencies alg1))
          (List.length (Alg.dependencies alg2));
        check_int "media" (Arch.medium_count app.Sdx.architecture)
          (Arch.medium_count app2.Sdx.architecture);
        check_true "pins" (app.Sdx.pins = app2.Sdx.pins);
        (* durations survive, including BCETs and exact periods *)
        check_true "wcet" (Dur.wcet app2.Sdx.durations ~op:"costly" ~operator:"P1" = Some 0.03);
        check_true "bcet" (Dur.bcet app2.Sdx.durations ~op:"costly" ~operator:"P1" = Some 0.01);
        check_float ~eps:0. "period" (Alg.period alg1) (Alg.period alg2));
    test "round-trip schedules identically" (fun () ->
        let app = Sdx.parse sample in
        let app2 = Sdx.parse (Sdx.print app) in
        let mk app =
          (Aaa.Adequation.run ~pins:app.Sdx.pins ~algorithm:app.Sdx.algorithm
             ~architecture:app.Sdx.architecture ~durations:app.Sdx.durations ())
            .Aaa.Schedule.makespan
        in
        check_float ~eps:0. "same makespan" (mk app) (mk app2));
    test "unknown kind rejected" (fun () ->
        match
          Sdx.parse
            {|(application
                (algorithm (name x) (period 1)
                  (operation (name a) (kind widget)))
                (architecture (name y) (operator P0)))|}
        with
        | exception Failure msg -> check_true "mentions kind" (contains msg "kind")
        | _ -> Alcotest.fail "expected Failure");
    test "dangling dependency name rejected" (fun () ->
        match
          Sdx.parse
            {|(application
                (algorithm (name x) (period 1)
                  (operation (name a) (kind sensor) (outputs 1))
                  (dependency (from a 0) (to ghost 0)))
                (architecture (name y) (operator P0)))|}
        with
        | exception Failure msg -> check_true "mentions name" (contains msg "ghost")
        | _ -> Alcotest.fail "expected Failure");
    test "missing sections rejected" (fun () ->
        (match Sdx.parse "(application (architecture (name y) (operator P0)))" with
        | exception Failure msg -> check_true "algorithm" (contains msg "algorithm")
        | _ -> Alcotest.fail "expected Failure");
        match Sdx.parse "(application (algorithm (name x) (period 1)))" with
        | exception Failure msg -> check_true "architecture" (contains msg "architecture")
        | _ -> Alcotest.fail "expected Failure");
    test "unknown operator in durations rejected" (fun () ->
        match
          Sdx.parse
            {|(application
                (algorithm (name x) (period 1)
                  (operation (name a) (kind sensor) (outputs 1)))
                (architecture (name y) (operator P0))
                (durations (wcet a P9 0.1)))|}
        with
        | exception Failure msg -> check_true "mentions operator" (contains msg "P9")
        | _ -> Alcotest.fail "expected Failure");
    test "shipped example file loads and schedules" (fun () ->
        (* the repository's examples/data/dc_motor.sdx; path relative to
           the dune test runner's directory *)
        let candidates =
          [ "../examples/data/dc_motor.sdx"; "examples/data/dc_motor.sdx";
            "../../../examples/data/dc_motor.sdx" ]
        in
        match List.find_opt Sys.file_exists candidates with
        | None -> () (* skip silently when the data dir is not visible *)
        | Some path ->
            let app = Sdx.load path in
            let sched =
              Aaa.Adequation.run ~pins:app.Sdx.pins ~algorithm:app.Sdx.algorithm
                ~architecture:app.Sdx.architecture ~durations:app.Sdx.durations ()
            in
            check_true "fits" (Aaa.Schedule.fits_period sched));
  ]

let schedule_io_tests =
  [
    test "schedule round-trips through its textual form" (fun () ->
        let app = Sdx.parse sample in
        let sched =
          Aaa.Adequation.run ~pins:app.Sdx.pins ~algorithm:app.Sdx.algorithm
            ~architecture:app.Sdx.architecture ~durations:app.Sdx.durations ()
        in
        let restored =
          Aaa.Schedule_io.parse ~algorithm:app.Sdx.algorithm
            ~architecture:app.Sdx.architecture
            (Aaa.Schedule_io.print sched)
        in
        check_float ~eps:0. "makespan" sched.Aaa.Schedule.makespan
          restored.Aaa.Schedule.makespan;
        check_int "comp slots" (List.length sched.Aaa.Schedule.comp)
          (List.length restored.Aaa.Schedule.comp);
        check_int "comm slots" (List.length sched.Aaa.Schedule.comm)
          (List.length restored.Aaa.Schedule.comm);
        (* identical mapping *)
        List.iter
          (fun op ->
            check_true "same operator"
              (Aaa.Schedule.operator_of sched op = Aaa.Schedule.operator_of restored op))
          (Alg.ops app.Sdx.algorithm));
    test "loading against a different application fails loudly" (fun () ->
        let app = Sdx.parse sample in
        let sched =
          Aaa.Adequation.run ~pins:app.Sdx.pins ~algorithm:app.Sdx.algorithm
            ~architecture:app.Sdx.architecture ~durations:app.Sdx.durations ()
        in
        let text = Aaa.Schedule_io.print sched in
        let other = Alg.create ~name:"other" ~period:1. in
        match
          Aaa.Schedule_io.parse ~algorithm:other ~architecture:app.Sdx.architecture text
        with
        | exception Failure msg -> check_true "names the mismatch" (contains msg "other")
        | _ -> Alcotest.fail "expected Failure");
    test "a corrupted schedule is rejected by revalidation" (fun () ->
        let app = Sdx.parse sample in
        let sched =
          Aaa.Adequation.run ~pins:app.Sdx.pins ~algorithm:app.Sdx.algorithm
            ~architecture:app.Sdx.architecture ~durations:app.Sdx.durations ()
        in
        (* drop all transfers: precedence across operators now fails *)
        let text =
          Aaa.Schedule_io.print { sched with Aaa.Schedule.comm = [] }
        in
        if sched.Aaa.Schedule.comm = [] then ()
        else
          match
            Aaa.Schedule_io.parse ~algorithm:app.Sdx.algorithm
              ~architecture:app.Sdx.architecture text
          with
          | exception Invalid_argument _ -> ()
          | exception Failure _ -> ()
          | _ -> Alcotest.fail "expected rejection");
  ]

let suites =
  [
    ("aaa.sexp", sexp_tests);
    ("aaa.sdx", sdx_tests);
    ("aaa.schedule_io", schedule_io_tests);
  ]
