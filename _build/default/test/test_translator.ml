open Helpers
module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Adq = Aaa.Adequation
module S2S = Translator.Scicos_to_syndex
module DG = Translator.Delay_graph
module TM = Translator.Temporal_model

(* The Fig. 2 loop: plant, sampler, pid, hold, reference. *)
let fig2_loop () =
  let plant = Control.Plants.first_order ~tau:0.5 ~gain:1. in
  let g = G.create () in
  let p = G.add g (C.lti_continuous ~name:"plant" ~x0:[| 0. |] plant) in
  let r = G.add g (C.constant ~name:"reference" [| 1. |]) in
  let sh = G.add g (C.sample_hold ~name:"sample_y" 1) in
  let pid =
    G.add g
      (C.pid ~name:"pid"
         (Control.Pid.create ~gains:{ Control.Pid.kp = 3.; ki = 4.; kd = 0. } ~ts:0.05 ()))
  in
  let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
  G.connect_data g ~src:(p, 0) ~dst:(sh, 0);
  G.connect_data g ~src:(r, 0) ~dst:(pid, 0);
  G.connect_data g ~src:(sh, 0) ~dst:(pid, 1);
  G.connect_data g ~src:(pid, 0) ~dst:(hold, 0);
  G.connect_data g ~src:(hold, 0) ~dst:(p, 0);
  (g, p, r, sh, pid, hold)

let fig2_extracted () =
  let g, _, r, sh, pid, hold = fig2_loop () in
  let alg, binding =
    S2S.extract g { S2S.members = [ r; sh; pid; hold ]; memories = []; period = 0.05 }
  in
  (g, alg, binding, (r, sh, pid, hold))

let uniform_durations alg operators value =
  let d = Dur.create () in
  List.iter
    (fun op -> Dur.set_everywhere d ~op:(Alg.op_name alg op) ~operators value)
    (Alg.ops alg);
  d

(* ------------------------------------------------------------------ *)
(* Extraction *)

let extraction_tests =
  [
    test "fig2 classification" (fun () ->
        let _, alg, binding, (r, sh, pid, hold) = fig2_extracted () in
        let kind b = Alg.op_kind alg (Option.get (S2S.op_of_block binding b)) in
        check_true "sampler is sensor" (kind sh = Alg.Sensor);
        check_true "pid is compute" (kind pid = Alg.Compute);
        check_true "hold is actuator" (kind hold = Alg.Actuator);
        check_true "reference is compute" (kind r = Alg.Compute));
    test "fig2 dependencies preserved" (fun () ->
        let _, alg, _, _ = fig2_extracted () in
        Alg.validate alg;
        check_int "ops" 4 (Alg.op_count alg);
        (* reference→pid, sample→pid, pid→hold *)
        check_int "deps" 3 (List.length (Alg.dependencies alg)));
    test "binding is a bijection on members" (fun () ->
        let _, alg, binding, (r, sh, pid, hold) = fig2_extracted () in
        List.iter
          (fun b ->
            let op = Option.get (S2S.op_of_block binding b) in
            check_true "roundtrip" (S2S.block_of_op binding op = b))
          [ r; sh; pid; hold ];
        check_int "all ops bound" 4 (Alg.op_count alg));
    test "period propagates" (fun () ->
        let _, alg, _, _ = fig2_extracted () in
        check_float "Ts" 0.05 (Alg.period alg));
    test "block both sensor and actuator rejected" (fun () ->
        let g = G.create () in
        let plant =
          G.add g
            (C.lti_continuous ~name:"plant" ~x0:[| 0. |]
               (Control.Plants.first_order ~tau:1. ~gain:1.))
        in
        let sh = G.add g (C.sample_hold ~name:"loop" 1) in
        G.connect_data g ~src:(plant, 0) ~dst:(sh, 0);
        G.connect_data g ~src:(sh, 0) ~dst:(plant, 0);
        check_raises_invalid "conflict" (fun () ->
            ignore (S2S.extract g { S2S.members = [ sh ]; memories = []; period = 0.1 })));
    test "empty member set rejected" (fun () ->
        let g = G.create () in
        check_raises_invalid "empty" (fun () ->
            ignore (S2S.extract g { S2S.members = []; memories = []; period = 0.1 })));
    test "memory must be a member" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant [| 0. |]) in
        let d = G.add g (C.unit_delay [| 0. |]) in
        G.connect_data g ~src:(c, 0) ~dst:(d, 0);
        check_raises_invalid "memories" (fun () ->
            ignore (S2S.extract g { S2S.members = [ c ]; memories = [ d ]; period = 0.1 })));
    test "unit delay becomes a memory operation" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"src" [| 0. |]) in
        let d = G.add g (C.unit_delay ~name:"z" [| 0. |]) in
        let k = G.add g (C.stateful ~name:"use" ~in_widths:[| 1 |] ~out_widths:[| 1 |] Fun.id) in
        G.connect_data g ~src:(c, 0) ~dst:(d, 0);
        G.connect_data g ~src:(d, 0) ~dst:(k, 0);
        let alg, binding =
          S2S.extract g { S2S.members = [ c; d; k ]; memories = [ d ]; period = 0.1 }
        in
        check_true "memory kind"
          (Alg.op_kind alg (Option.get (S2S.op_of_block binding d)) = Alg.Memory));
    test "declare_condition tags operations" (fun () ->
        let g = G.create () in
        let m = G.add g (C.stateful ~name:"mode" ~in_widths:[||] ~out_widths:[| 1 |] Fun.id) in
        let b0 = G.add g (C.stateful ~name:"b0" ~in_widths:[||] ~out_widths:[| 1 |] Fun.id) in
        let alg, binding =
          S2S.extract g { S2S.members = [ m; b0 ]; memories = []; period = 0.1 }
        in
        S2S.declare_condition binding ~algorithm:alg ~var:"mode" ~source:(m, 0)
          ~ops:[ (b0, 0) ];
        Alg.validate alg;
        let op_b0 = Option.get (S2S.op_of_block binding b0) in
        check_true "tagged" (Alg.op_cond alg op_b0 = Some { Alg.var = "mode"; value = 0 }));
  ]

(* ------------------------------------------------------------------ *)
(* Temporal model *)

let temporal_model_tests =
  [
    test "static offsets from a schedule" (fun () ->
        let _, alg, _, _ = fig2_extracted () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.005 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let tm = TM.of_schedule sched in
        check_true "fits" tm.TM.fits_period;
        check_int "one sensor" 1 (List.length tm.TM.sampling_offsets);
        check_int "one actuator" 1 (List.length tm.TM.actuation_offsets);
        (* actuation comes after sampling in any valid chain *)
        let ls = snd (List.hd tm.TM.sampling_offsets) in
        let la = snd (List.hd tm.TM.actuation_offsets) in
        check_true "La > Ls" (la > ls);
        check_float ~eps:1e-9 "io latency" la (TM.io_latency tm));
    test "measured series match static replay under WCET law" (fun () ->
        let _, alg, _, _ = fig2_extracted () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.005 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let trace =
          Exec.Machine.run
            ~config:{ Exec.Machine.default_config with law = Exec.Timing_law.Wcet }
            exe
        in
        let tm = TM.of_schedule sched in
        List.iter2
          (fun (op_s, offset) (series : TM.series) ->
            check_true "same op" (op_s = series.TM.op);
            check_float ~eps:1e-9 "mean = static" offset series.TM.mean;
            check_float ~eps:1e-9 "no jitter" 0. series.TM.jitter)
          tm.TM.sampling_offsets (TM.sampling_series trace));
    test "pp functions produce text" (fun () ->
        let _, alg, _, _ = fig2_extracted () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.005 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let tm = TM.of_schedule sched in
        let s = Format.asprintf "%a" TM.pp_static tm in
        check_true "mentions period" (contains s "period"));
  ]

(* ------------------------------------------------------------------ *)
(* Delay graph: Figs. 4 & 5 and the synchronization translation *)

let delay_graph_tests =
  [
    test "fig4: sequencing — events at schedule completion instants" (fun () ->
        (* three operations on one processor; the delay-chain must fire
           F1, F2, F3 completion events at their scheduled finish times *)
        let _, alg, binding, (_, sh, pid, hold) = fig2_extracted () in
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"reference" ~operator:"P0" 0.001;
        Dur.set d ~op:"sample_y" ~operator:"P0" 0.002;
        Dur.set d ~op:"pid" ~operator:"P0" 0.007;
        Dur.set d ~op:"hold_u" ~operator:"P0" 0.003;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        (* fresh loop instance (ids identical by construction) *)
        let g2, _, _, _, _, _ = fig2_loop () in
        let _dg =
          Translator.Cosim.attach_delay_graph ~graph:g2 ~schedule:sched ~binding ()
        in
        let e = Sim.Engine.create g2 in
        Sim.Engine.run ~t_end:0.049 e (* one period only *);
        let check_block_instant block op_name =
          let op = Option.get (Alg.find_op alg op_name) in
          let slot = Sched.slot_of sched op in
          match Sim.Engine.activations e ~block with
          | [ t ] ->
              check_float ~eps:1e-9
                (op_name ^ " at its completion")
                (slot.Sched.cs_start +. slot.Sched.cs_duration)
                t
          | l -> Alcotest.failf "expected 1 activation of %s, got %d" op_name (List.length l)
        in
        check_block_instant sh "sample_y";
        check_block_instant pid "pid";
        check_block_instant hold "hold_u");
    test "fig4: second iteration shifted by one period" (fun () ->
        let _, alg, binding, (_, sh, _, _) = fig2_extracted () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.004 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let g2, _, _, _, _, _ = fig2_loop () in
        let _ = Translator.Cosim.attach_delay_graph ~graph:g2 ~schedule:sched ~binding () in
        let e = Sim.Engine.create g2 in
        Sim.Engine.run ~t_end:0.09 e;
        (match Sim.Engine.activations e ~block:sh with
        | [ t0; t1 ] -> check_float ~eps:1e-9 "period shift" 0.05 (t1 -. t0)
        | l -> Alcotest.failf "expected 2 activations, got %d" (List.length l)));
    test "synchronisation: cross-processor transfer delays the consumer" (fun () ->
        let _, alg, binding, (_, _, pid, _) = fig2_extracted () in
        let arch = Arch.bus_topology ~latency:0.003 ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        Dur.set d ~op:"reference" ~operator:"P0" 0.001;
        Dur.set d ~op:"sample_y" ~operator:"P0" 0.002;
        Dur.set d ~op:"pid" ~operator:"P1" 0.007;
        Dur.set d ~op:"hold_u" ~operator:"P1" 0.003;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "transfers exist" (List.length sched.Sched.comm >= 1);
        let g2, _, _, _, _, _ = fig2_loop () in
        let _ = Translator.Cosim.attach_delay_graph ~graph:g2 ~schedule:sched ~binding () in
        let e = Sim.Engine.create g2 in
        Sim.Engine.run ~t_end:0.049 e;
        let op_pid = Option.get (Alg.find_op alg "pid") in
        let slot = Sched.slot_of sched op_pid in
        (match Sim.Engine.activations e ~block:pid with
        | [ t ] ->
            check_float ~eps:1e-9 "pid completes after its transfer-gated slot"
              (slot.Sched.cs_start +. slot.Sched.cs_duration)
              t
        | l -> Alcotest.failf "expected 1 activation, got %d" (List.length l)));
    test "fig5: conditioning — branch chains selected by the condition value" (fun () ->
        (* mode source + two branches with very different durations;
           the actuation event time must follow the branch taken *)
        let g = G.create () in
        let mode_src =
          G.add g (C.stateful ~name:"mode" ~in_widths:[||] ~out_widths:[| 1 |] (fun _ -> [| [| 1. |] |]))
        in
        let b0 =
          G.add g (C.stateful ~name:"fast" ~in_widths:[||] ~out_widths:[| 1 |] (fun _ -> [| [| 0. |] |]))
        in
        let b1 =
          G.add g (C.stateful ~name:"slow" ~in_widths:[||] ~out_widths:[| 1 |] (fun _ -> [| [| 0. |] |]))
        in
        let sink =
          G.add g
            (C.stateful ~name:"merge" ~in_widths:[| 1; 1 |] ~out_widths:[| 1 |] (fun i ->
                 [| i.(0) |]))
        in
        G.connect_data g ~src:(b0, 0) ~dst:(sink, 0);
        G.connect_data g ~src:(b1, 0) ~dst:(sink, 1);
        let members = [ mode_src; b0; b1; sink ] in
        let alg, binding = S2S.extract g { S2S.members; memories = []; period = 1. } in
        S2S.declare_condition binding ~algorithm:alg ~var:"m" ~source:(mode_src, 0)
          ~ops:[ (b0, 0); (b1, 1) ];
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"mode" ~operator:"P0" 0.01;
        Dur.set d ~op:"fast" ~operator:"P0" 0.01;
        Dur.set d ~op:"slow" ~operator:"P0" 0.4;
        Dur.set d ~op:"merge" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        (* rebuild an identical diagram for the co-simulation *)
        let condition_feed var =
          check_true "var name" (var = "m");
          (mode_src, 0)
        in
        let _ =
          Translator.Cosim.attach_delay_graph ~condition_feed ~graph:g ~schedule:sched
            ~binding ()
        in
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:0.99 e;
        (* mode block outputs 1 → slow branch (0.4 s) runs, fast skipped *)
        check_int "slow activated" 1 (List.length (Sim.Engine.activations e ~block:b1));
        check_int "fast skipped" 0 (List.length (Sim.Engine.activations e ~block:b0)));
    test "jittered mode draws delays within [bcet, wcet]" (fun () ->
        let _, alg, binding, (_, sh, _, _) = fig2_extracted () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.004 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let g2, _, _, _, _, _ = fig2_loop () in
        let mode =
          DG.Jittered { law = Exec.Timing_law.Uniform; bcet_frac = 0.5; seed = 3 }
        in
        let _ = Translator.Cosim.attach_delay_graph ~mode ~graph:g2 ~schedule:sched ~binding () in
        let e = Sim.Engine.create g2 in
        Sim.Engine.run ~t_end:1. e;
        let lat = Translator.Cosim.measured_latencies e ~block:sh ~period:0.05 in
        check_true "some activations" (Array.length lat >= 18);
        (* sampler is the second op in the chain (after reference), so
           latency within [bcet sum, wcet sum] of preceding slots *)
        Array.iter
          (fun l -> check_true "within envelope" (l >= 0.002 && l <= 0.012 +. 1e-9))
          lat);
    test "comm jitter shifts arrivals within the planned bound" (fun () ->
        let _, alg, binding, (_, _, pid, _) = fig2_extracted () in
        let arch = Arch.bus_topology ~latency:0.004 ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        Dur.set d ~op:"reference" ~operator:"P0" 0.001;
        Dur.set d ~op:"sample_y" ~operator:"P0" 0.002;
        Dur.set d ~op:"pid" ~operator:"P1" 0.007;
        Dur.set d ~op:"hold_u" ~operator:"P1" 0.003;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let g2, _, _, _, _, _ = fig2_loop () in
        let mode =
          DG.Jittered { law = Exec.Timing_law.Wcet; bcet_frac = 1.; seed = 5 }
        in
        (* computations at WCET, transfers jittered: pid activations
           land at or before the static completion, never after *)
        let _ =
          Translator.Cosim.attach_delay_graph ~mode ~comm_jitter_frac:0.5 ~graph:g2
            ~schedule:sched ~binding ()
        in
        let e = Sim.Engine.create g2 in
        Sim.Engine.run ~t_end:1. e;
        let op_pid = Option.get (Alg.find_op alg "pid") in
        let slot = Sched.slot_of sched op_pid in
        let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
        let lat = Translator.Cosim.measured_latencies e ~block:pid ~period:0.05 in
        Array.iter (fun l -> check_true "within static bound" (l <= static +. 1e-9)) lat;
        let spread = Numerics.Stats.max lat -. Numerics.Stats.min lat in
        check_true "transfer jitter visible" (spread > 1e-4));
    test "missing condition feed raises" (fun () ->
        let g = G.create () in
        let m = G.add g (C.stateful ~name:"mode" ~in_widths:[||] ~out_widths:[| 1 |] Fun.id) in
        let b = G.add g (C.stateful ~name:"b" ~in_widths:[||] ~out_widths:[| 1 |] Fun.id) in
        let alg, binding = S2S.extract g { S2S.members = [ m; b ]; memories = []; period = 1. } in
        S2S.declare_condition binding ~algorithm:alg ~var:"m" ~source:(m, 0) ~ops:[ (b, 0) ];
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"mode" ~operator:"P0" 0.01;
        Dur.set d ~op:"b" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_raises_invalid "feed" (fun () ->
            ignore (Translator.Cosim.attach_delay_graph ~graph:g ~schedule:sched ~binding ())));
    test "completion tap lookup" (fun () ->
        let _, alg, binding, _ = fig2_extracted () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.004 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let g2, _, _, _, _, _ = fig2_loop () in
        let dg = Translator.Cosim.attach_delay_graph ~graph:g2 ~schedule:sched ~binding () in
        List.iter
          (fun op -> ignore (DG.completion dg op))
          (Alg.ops alg);
        check_int "taps for every op" (Alg.op_count alg) (List.length dg.DG.completions));
  ]

(* ------------------------------------------------------------------ *)
(* Cosim measurement helpers *)

let cosim_tests =
  [
    test "ideal clock gives zero latency for samplers" (fun () ->
        let g, _, _, sh, pid, hold = fig2_loop () in
        let _ =
          Translator.Cosim.ideal_clock ~graph:g ~period:0.05 ~blocks:[ sh; pid; hold ]
        in
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:0.5 e;
        let lat = Translator.Cosim.measured_latencies e ~block:sh ~period:0.05 in
        Array.iter (fun l -> check_float ~eps:1e-9 "zero" 0. l) lat);
    test "delay graph yields the static latencies (Fig. 3 vs Fig. 2)" (fun () ->
        let _, alg, binding, (_, sh, _, hold) = fig2_extracted () in
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"reference" ~operator:"P0" 0.001;
        Dur.set d ~op:"sample_y" ~operator:"P0" 0.002;
        Dur.set d ~op:"pid" ~operator:"P0" 0.007;
        Dur.set d ~op:"hold_u" ~operator:"P0" 0.003;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let tm = TM.of_schedule sched in
        let g2, _, _, _, _, _ = fig2_loop () in
        let _ = Translator.Cosim.attach_delay_graph ~graph:g2 ~schedule:sched ~binding () in
        let e = Sim.Engine.create g2 in
        Sim.Engine.run ~t_end:1. e;
        let ls = Translator.Cosim.measured_latencies e ~block:sh ~period:0.05 in
        let la = Translator.Cosim.measured_latencies e ~block:hold ~period:0.05 in
        let static_ls = snd (List.hd tm.TM.sampling_offsets) in
        let static_la = snd (List.hd tm.TM.actuation_offsets) in
        Array.iter (fun l -> check_float ~eps:1e-9 "Ls" static_ls l) ls;
        Array.iter (fun l -> check_float ~eps:1e-9 "La" static_la l) la);
  ]

let suites =
  [
    ("translator.extraction", extraction_tests);
    ("translator.temporal_model", temporal_model_tests);
    ("translator.delay_graph", delay_graph_tests);
    ("translator.cosim", cosim_tests);
  ]
