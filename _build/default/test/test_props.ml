(* Cross-cutting property-based tests: each property exercises a whole
   pipeline (adequation → codegen → machine, schedule → graph of
   delays → co-simulation, …) over randomized inputs. *)

open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Adq = Aaa.Adequation

(* random layered sensor→computes→actuator DAG with random WCETs *)
let random_workload rng ~layers ~width =
  let alg = Alg.create ~name:"rand" ~period:10. in
  let prev = ref [] in
  for layer = 0 to layers - 1 do
    let ops =
      List.init width (fun i ->
          let kind =
            if layer = 0 then Alg.Sensor
            else if layer = layers - 1 then Alg.Actuator
            else Alg.Compute
          in
          let inputs = if layer = 0 then [||] else [| 1 |] in
          let outputs = if layer = layers - 1 then [||] else [| 1 |] in
          Alg.add_op alg ~name:(Printf.sprintf "op_%d_%d" layer i) ~kind ~inputs ~outputs ())
    in
    (match !prev with
    | [] -> ()
    | sources ->
        List.iter
          (fun op ->
            let src = List.nth sources (Numerics.Rng.int rng (List.length sources)) in
            Alg.depend alg ~src:(src, 0) ~dst:(op, 0))
          ops);
    prev := ops
  done;
  alg

let random_durations rng alg procs =
  let d = Dur.create () in
  List.iter
    (fun op ->
      Dur.set_everywhere d ~op:(Alg.op_name alg op) ~operators:procs
        (0.001 +. Numerics.Rng.float rng 0.02))
    (Alg.ops alg);
  d

(* architectures to draw from: bus, mesh, gateway *)
let random_architecture rng =
  match Numerics.Rng.int rng 3 with
  | 0 -> Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 [ "P0"; "P1"; "P2" ]
  | 1 -> Arch.fully_connected ~latency:0.0002 ~time_per_word:0.0005 [ "P0"; "P1"; "P2" ]
  | _ ->
      let arch = Arch.create ~name:"gateway" in
      let p0 = Arch.add_operator arch ~name:"P0" in
      let p1 = Arch.add_operator arch ~name:"P1" in
      let p2 = Arch.add_operator arch ~name:"P2" in
      let _ =
        Arch.add_medium arch ~name:"busA" ~kind:Arch.Bus ~latency:0.0005
          ~time_per_word:0.0005 [ p0; p1 ]
      in
      let _ =
        Arch.add_medium arch ~name:"busB" ~kind:Arch.Bus ~latency:0.0005
          ~time_per_word:0.0005 [ p1; p2 ]
      in
      arch

let procs_of arch = List.map (Arch.operator_name arch) (Arch.operators arch)

let random_schedule seed =
  let rng = Numerics.Rng.create seed in
  let layers = 2 + Numerics.Rng.int rng 3 in
  let width = 1 + Numerics.Rng.int rng 3 in
  let alg = random_workload rng ~layers ~width in
  let arch = random_architecture rng in
  let d = random_durations rng alg (procs_of arch) in
  let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
  (alg, sched)

let pipeline_props =
  [
    qtest "machine under WCET law replays every static completion" ~count:40
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let alg, sched = random_schedule seed in
        let exe = Aaa.Codegen.generate sched in
        let trace =
          Exec.Machine.run
            ~config:
              { Exec.Machine.default_config with law = Exec.Timing_law.Wcet; iterations = 3 }
            exe
        in
        List.for_all
          (fun op ->
            let slot = Sched.slot_of sched op in
            let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
            Array.to_list (Exec.Machine.instants trace op)
            |> List.mapi (fun k t -> (k, t))
            |> List.for_all (fun (k, t) ->
                   Float.abs (t -. ((float_of_int k *. 10.) +. static)) < 1e-9))
          (Alg.ops alg));
    qtest "machine under jitter stays order conformant and deadlock-free" ~count:40
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let _, sched = random_schedule seed in
        let exe = Aaa.Codegen.generate sched in
        let trace =
          Exec.Machine.run
            ~config:
              {
                Exec.Machine.default_config with
                iterations = 5;
                comm_jitter_frac = 0.5;
                seed;
              }
            exe
        in
        Exec.Machine.order_conformant trace);
    qtest "time-triggered baseline is always fresh under the WCET contract" ~count:40
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let _, sched = random_schedule seed in
        let exe = Aaa.Codegen.generate sched in
        let trace =
          Exec.Async.run
            ~config:{ Exec.Async.default_config with iterations = 5; seed }
            exe
        in
        trace.Exec.Async.violations = 0);
    qtest "graph of delays reproduces every completion instant" ~count:25
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        (* build a plain diagram with one event-activated latch per
           operation, activate them through the generated graph of
           delays, and check the first-period instants *)
        let alg, sched = random_schedule seed in
        let g = Dataflow.Graph.create () in
        let latches =
          List.map
            (fun op ->
              (op, Dataflow.Graph.add g (Dataflow.Eventlib.event_latch_time ())))
            (Alg.ops alg)
        in
        let dg = Translator.Delay_graph.build ~graph:g ~schedule:sched () in
        List.iter
          (fun (op, latch) ->
            let tap = Translator.Delay_graph.completion dg op in
            Dataflow.Graph.connect_event g ~src:tap ~dst:(latch, 0))
          latches;
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:9.9 e;
        List.for_all
          (fun (op, latch) ->
            let slot = Sched.slot_of sched op in
            let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
            match Sim.Engine.activations e ~block:latch with
            | t :: _ -> Float.abs (t -. static) < 1e-9
            | [] -> false)
          latches);
    qtest "architecture routes are simple and reach the destination" ~count:60
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Numerics.Rng.create seed in
        let arch = random_architecture rng in
        let ops = Arch.operators arch in
        let p0 = List.nth ops 0 and p2 = List.nth ops (List.length ops - 1) in
        let routes = Arch.routes arch p0 p2 in
        routes <> []
        && List.for_all
             (fun route ->
               route <> []
               && snd (List.nth route (List.length route - 1)) = p2
               &&
               let stops = List.map snd route in
               List.length (List.sort_uniq compare stops) = List.length stops)
             routes);
    qtest "SDX round-trips preserve the adequation result" ~count:25
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let rng = Numerics.Rng.create seed in
        let procs = [ "P0"; "P1"; "P2" ] in
        let alg, d =
          Aaa.Workloads.layered ~rng
            ~layers:(2 + Numerics.Rng.int rng 3)
            ~width:(1 + Numerics.Rng.int rng 3)
            ~operators:procs ()
        in
        let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 procs in
        let app = { Aaa.Sdx.algorithm = alg; architecture = arch; durations = d; pins = [] } in
        let app2 = Aaa.Sdx.parse (Aaa.Sdx.print app) in
        let makespan app =
          (Adq.run ~algorithm:app.Aaa.Sdx.algorithm ~architecture:app.Aaa.Sdx.architecture
             ~durations:app.Aaa.Sdx.durations ())
            .Sched.makespan
        in
        makespan app = makespan app2);
    qtest "engine re-runs are bit-identical after reset" ~count:15
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let _, sched = random_schedule seed in
        let g = Dataflow.Graph.create () in
        let dg = Translator.Delay_graph.build ~graph:g ~schedule:sched () in
        ignore dg;
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:20. e;
        let first = Sim.Engine.event_log e in
        Sim.Engine.reset e;
        Sim.Engine.run ~t_end:20. e;
        Sim.Engine.event_log e = first);
  ]

(* random feed-forward block networks: sources feeding a DAG of
   processing blocks, every stateful block clocked *)
let random_diagram seed =
  let module G = Dataflow.Graph in
  let module C = Dataflow.Clib in
  let module E = Dataflow.Eventlib in
  let rng = Numerics.Rng.create seed in
  let g = G.create () in
  let clock = G.add g (E.clock ~period:0.05 ()) in
  let source () =
    match Numerics.Rng.int rng 3 with
    | 0 -> G.add g (C.constant [| Numerics.Rng.uniform rng (-2.) 2. |])
    | 1 -> G.add g (C.sine_source ~freq_hz:(Numerics.Rng.uniform rng 0.2 3.) ())
    | _ ->
        G.add g
          (C.step_source
             ~at:(Numerics.Rng.float rng 0.5)
             ~after:(Numerics.Rng.uniform rng (-1.) 1.)
             ())
  in
  let sources = List.init (1 + Numerics.Rng.int rng 3) (fun _ -> source ()) in
  let outputs = ref sources in
  let pick () = Numerics.Rng.choice rng (Array.of_list !outputs) in
  let n_blocks = 3 + Numerics.Rng.int rng 8 in
  for _ = 1 to n_blocks do
    let upstream = pick () in
    let id =
      match Numerics.Rng.int rng 7 with
      | 0 -> G.add g (C.gain (Numerics.Rng.uniform rng (-3.) 3.))
      | 1 -> G.add g (C.saturation ~lo:(-1.) ~hi:1. ())
      | 2 -> G.add g (C.dead_zone ~width:(Numerics.Rng.float rng 0.5) ())
      | 3 -> G.add g (C.quantizer ~step:(0.01 +. Numerics.Rng.float rng 0.5) ())
      | 4 ->
          let b = G.add g (C.sample_hold 1) in
          G.connect_event g ~src:(clock, 0) ~dst:(b, 0);
          b
      | 5 ->
          let b = G.add g (C.biquad ~b:[| 0.3 |] ~a:[| 1.; -0.7 |] ()) in
          G.connect_event g ~src:(clock, 0) ~dst:(b, 0);
          b
      | _ ->
          let b = G.add g (C.unit_delay [| 0. |]) in
          G.connect_event g ~src:(clock, 0) ~dst:(b, 0);
          b
    in
    G.connect_data g ~src:(upstream, 0) ~dst:(id, 0);
    outputs := id :: !outputs
  done;
  (* a two-input combinator over random upstream signals *)
  let sum = G.add g (C.sum [| 1.; -1. |]) in
  G.connect_data g ~src:(pick (), 0) ~dst:(sum, 0);
  G.connect_data g ~src:(pick (), 0) ~dst:(sum, 1);
  (g, sum)

let engine_stress_props =
  [
    qtest "random feed-forward diagrams simulate to finite values" ~count:60
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let g, probe_block = random_diagram seed in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"out" ~block:probe_block ~port:0;
        Sim.Engine.run ~t_end:1. e;
        let tr = Sim.Engine.probe e "out" in
        Sim.Trace.length tr > 0
        && Array.for_all
             (fun row -> Array.for_all Float.is_finite row)
             (Sim.Trace.values tr));
    qtest "random diagrams reset and re-run identically" ~count:20
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let g, probe_block = random_diagram seed in
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"out" ~block:probe_block ~port:0;
        Sim.Engine.run ~t_end:0.7 e;
        let first = Sim.Trace.values (Sim.Engine.probe e "out") in
        Sim.Engine.reset e;
        Sim.Engine.run ~t_end:0.7 e;
        let second = Sim.Trace.values (Sim.Engine.probe e "out") in
        first = second);
  ]

let csv_tests =
  [
    test "trace CSV has header and one row per sample" (fun () ->
        let tr = Sim.Trace.create ~width:2 in
        Sim.Trace.record tr 0. [| 1.; 2. |];
        Sim.Trace.record tr 0.5 [| 3.; 4. |];
        let csv = Sim.Trace.to_csv ~labels:[ "a"; "b" ] tr in
        let lines = String.split_on_char '\n' (String.trim csv) in
        check_int "3 lines" 3 (List.length lines);
        check_true "header" (List.hd lines = "time,a,b");
        check_true "row" (contains csv "0.5,3,4"));
    test "label count checked" (fun () ->
        let tr = Sim.Trace.create ~width:2 in
        check_raises_invalid "labels" (fun () ->
            ignore (Sim.Trace.to_csv ~labels:[ "a" ] tr)));
  ]

let suites =
  [
    ("props.pipeline", pipeline_props);
    ("props.engine_stress", engine_stress_props);
    ("sim.csv", csv_tests);
  ]
