test/test_numerics.ml: Alcotest Array Complex Float Fun Helpers List Numerics QCheck2 String
