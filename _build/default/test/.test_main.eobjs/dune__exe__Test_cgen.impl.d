test/test_cgen.ml: Aaa Filename Helpers List Printf Sys Unix
