test/test_aaa.ml: Aaa Alcotest Array Control Dataflow Exec Float Format Helpers List Numerics Option Printf QCheck2 Sim Translator
