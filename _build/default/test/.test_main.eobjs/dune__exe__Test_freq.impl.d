test/test_freq.ml: Alcotest Complex Control Float Helpers List Numerics
