test/test_sdx.ml: Aaa Alcotest Helpers List Option Sys
