test/test_diagram.ml: Aaa Alcotest Array Control Exec Float Helpers Lifecycle List Sim String Sys
