test/test_control.ml: Alcotest Array Complex Control Dataflow Float Helpers List Numerics Sim
