test/helpers.ml: Alcotest Format Numerics Printexc QCheck2 QCheck_alcotest String
