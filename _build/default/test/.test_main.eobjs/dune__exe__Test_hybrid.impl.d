test/test_hybrid.ml: Alcotest Array Control Dataflow Float Helpers List Numerics Sim
