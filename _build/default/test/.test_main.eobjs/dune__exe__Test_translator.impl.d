test/test_translator.ml: Aaa Alcotest Array Control Dataflow Exec Format Fun Helpers List Numerics Option Sim Translator
