test/test_exec.ml: Aaa Alcotest Array Exec Float Helpers List Numerics QCheck2 String
