test/test_sim.ml: Alcotest Array Control Dataflow Float Helpers List QCheck2 Sim
