test/test_lifecycle.ml: Aaa Array Control Dataflow Exec Float Helpers Lifecycle List Numerics Sim Translator
