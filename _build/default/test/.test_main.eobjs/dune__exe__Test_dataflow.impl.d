test/test_dataflow.ml: Array Control Dataflow Helpers List Numerics Option
