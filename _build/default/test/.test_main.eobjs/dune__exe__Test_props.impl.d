test/test_props.ml: Aaa Array Dataflow Exec Float Helpers List Numerics Printf QCheck2 Sim String Translator
