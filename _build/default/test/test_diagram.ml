open Helpers

let sample =
  {|
(lifecycle
  (design (name file_loop) (ts 0.05) (horizon 5)
          (cost iae y 0 1.0))
  (diagram
    (block (name plant) (type lti) (plant first-order 0.5 1) (x0 0))
    (block (name reference) (type const) (value 1))
    (block (name sample_y) (type sample-hold) (width 1))
    (block (name pid) (type pid) (kp 4) (ki 8) (kd 0) (ts 0.05))
    (block (name hold_u) (type sample-hold) (width 1))
    (link plant 0 sample_y 0)
    (link reference 0 pid 0)
    (link sample_y 0 pid 1)
    (link pid 0 hold_u 0)
    (link hold_u 0 plant 0)
    (members reference sample_y pid hold_u)
    (clocked sample_y pid hold_u)
    (probe y plant 0))
  (architecture (name solo) (operator P0))
  (durations
    (wcet reference P0 0.001)
    (wcet sample_y P0 0.004)
    (wcet pid P0 0.012)
    (wcet hold_u P0 0.004)))
|}

let diagram_tests =
  [
    test "lifecycle file parses and the ideal simulation tracks" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let e = Lifecycle.Methodology.simulate_ideal file.Lifecycle.Diagram.design in
        let sse =
          Control.Metrics.steady_state_error ~reference:1.
            (Sim.Engine.probe_component e "y" 0)
        in
        check_true "tracks" (Float.abs sse < 0.02));
    test "lifecycle file runs the full methodology" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let c =
          Lifecycle.Methodology.evaluate ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        in
        check_true "degradation positive"
          (c.Lifecycle.Methodology.implemented_cost
          >= c.Lifecycle.Methodology.ideal_cost));
    test "builds from a file are deterministic" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let b1 = file.Lifecycle.Diagram.design.Lifecycle.Design.build () in
        let b2 = file.Lifecycle.Diagram.design.Lifecycle.Design.build () in
        check_true "same members" (b1.Lifecycle.Design.members = b2.Lifecycle.Design.members));
    test "explicit state-space matrices accepted" (fun () ->
        let file =
          Lifecycle.Diagram.parse
            {|(lifecycle
                (design (name x) (ts 0.1) (horizon 1) (cost ise y 0))
                (diagram
                  (block (name plant) (type lti) (x0 1)
                         (a (-1)) (b (1)) (c (1)) (d (0)))
                  (block (name sample_y) (type sample-hold) (width 1))
                  (block (name sfb) (type state-feedback) (k 2))
                  (block (name hold_u) (type sample-hold) (width 1))
                  (link plant 0 sample_y 0)
                  (link sample_y 0 sfb 0)
                  (link sfb 0 hold_u 0)
                  (link hold_u 0 plant 0)
                  (members sample_y sfb hold_u)
                  (probe y plant 0))
                (architecture (name solo) (operator P0)))|}
        in
        ignore (Lifecycle.Methodology.simulate_ideal file.Lifecycle.Diagram.design));
    test "unknown block type rejected" (fun () ->
        match
          Lifecycle.Diagram.parse
            {|(lifecycle
                (design (name x) (ts 0.1) (horizon 1) (cost iae y 0 1))
                (diagram (block (name b) (type warp-drive)) (probe y b 0))
                (architecture (name solo) (operator P0)))|}
        with
        | exception Failure msg -> check_true "mentions type" (contains msg "warp-drive")
        | _ -> Alcotest.fail "expected Failure");
    test "cost must reference a declared probe" (fun () ->
        match
          Lifecycle.Diagram.parse
            {|(lifecycle
                (design (name x) (ts 0.1) (horizon 1) (cost iae ghost 0 1))
                (diagram
                  (block (name c) (type const) (value 1))
                  (block (name s) (type sample-hold) (width 1))
                  (link c 0 s 0)
                  (members s)
                  (probe y c 0))
                (architecture (name solo) (operator P0)))|}
        with
        | exception Failure msg -> check_true "mentions probe" (contains msg "ghost")
        | _ -> Alcotest.fail "expected Failure");
    test "bad link rejected at parse time" (fun () ->
        match
          Lifecycle.Diagram.parse
            {|(lifecycle
                (design (name x) (ts 0.1) (horizon 1) (cost iae y 0 1))
                (diagram
                  (block (name c) (type const) (value 1))
                  (link c 0 nowhere 0)
                  (members c)
                  (probe y c 0))
                (architecture (name solo) (operator P0)))|}
        with
        | exception Failure msg -> check_true "mentions block" (contains msg "nowhere")
        | _ -> Alcotest.fail "expected Failure");
    test "shipped lifecycle files load and evaluate" (fun () ->
        let try_file name =
          let candidates =
            [
              "../examples/data/" ^ name;
              "examples/data/" ^ name;
              "../../../examples/data/" ^ name;
            ]
          in
          match List.find_opt Sys.file_exists candidates with
          | None -> ()
          | Some path ->
              let file = Lifecycle.Diagram.load path in
              let c =
                Lifecycle.Methodology.evaluate ~pins:file.Lifecycle.Diagram.pins
                  ~design:file.Lifecycle.Diagram.design
                  ~architecture:file.Lifecycle.Diagram.architecture
                  ~durations:file.Lifecycle.Diagram.durations ()
              in
              check_true (name ^ " finite")
                (Float.is_finite c.Lifecycle.Methodology.implemented_cost)
        in
        try_file "dc_motor.lcs";
        try_file "cruise.lcs");
  ]

let montecarlo_tests =
  [
    test "jittered costs lie between ideal and the WCET-static bound" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let design = file.Lifecycle.Diagram.design in
        let impl =
          Lifecycle.Methodology.implement ~design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        in
        let ideal = design.Lifecycle.Design.cost (Lifecycle.Methodology.simulate_ideal design) in
        let s = Lifecycle.Montecarlo.run ~runs:8 ~design ~implementation:impl () in
        check_int "all runs" 8 (Array.length s.Lifecycle.Montecarlo.costs);
        check_true "above ideal" (s.Lifecycle.Montecarlo.cmin >= ideal -. 1e-9);
        check_true "below static bound"
          (s.Lifecycle.Montecarlo.cmax <= s.Lifecycle.Montecarlo.static_cost +. 1e-9);
        check_true "p95 ordered"
          (s.Lifecycle.Montecarlo.p95 <= s.Lifecycle.Montecarlo.cmax +. 1e-12));
    test "deterministic for a fixed base seed" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let design = file.Lifecycle.Diagram.design in
        let impl =
          Lifecycle.Methodology.implement ~design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        in
        let s1 = Lifecycle.Montecarlo.run ~runs:4 ~design ~implementation:impl () in
        let s2 = Lifecycle.Montecarlo.run ~runs:4 ~design ~implementation:impl () in
        check_vec ~eps:0. "identical" s1.Lifecycle.Montecarlo.costs
          s2.Lifecycle.Montecarlo.costs);
    test "run count validated" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let impl =
          Lifecycle.Methodology.implement ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        in
        check_raises_invalid "runs" (fun () ->
            ignore
              (Lifecycle.Montecarlo.run ~runs:0 ~design:file.Lifecycle.Diagram.design
                 ~implementation:impl ())));
  ]

let report_tests =
  [
    test "markdown report contains every section" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let c =
          Lifecycle.Methodology.evaluate ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        in
        let mc =
          Lifecycle.Montecarlo.run ~runs:3 ~design:file.Lifecycle.Diagram.design
            ~implementation:c.Lifecycle.Methodology.implementation ()
        in
        let trace =
          Lifecycle.Methodology.execute file.Lifecycle.Diagram.design
            c.Lifecycle.Methodology.implementation
        in
        let doc =
          Lifecycle.Report.markdown ~montecarlo:mc ~trace file.Lifecycle.Diagram.design c
        in
        List.iter
          (fun needle -> check_true needle (contains doc needle))
          [
            "# Lifecycle report";
            "## Cost comparison";
            "## Static temporal model";
            "## Planned schedule";
            "## Monte-Carlo cost distribution";
            "## Measured execution";
            "Order conformant";
          ]);
    test "latency CSV has one row per iteration" (fun () ->
        let file = Lifecycle.Diagram.parse sample in
        let impl =
          Lifecycle.Methodology.implement ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:file.Lifecycle.Diagram.durations ()
        in
        let trace =
          Lifecycle.Methodology.execute
            ~config:{ Exec.Machine.default_config with iterations = 7 }
            file.Lifecycle.Diagram.design impl
        in
        let csv = Exec.Machine.latencies_csv trace in
        let lines = String.split_on_char '\n' (String.trim csv) in
        check_int "header + 7 rows" 8 (List.length lines);
        check_true "sensor column" (contains (List.hd lines) "Ls_sample_y");
        check_true "actuator column" (contains (List.hd lines) "La_hold_u"));
  ]

let sweep_tests =
  let file () = Lifecycle.Diagram.parse sample in
  let durations_of fraction =
    let d = Aaa.Durations.create () in
    let ts = 0.05 in
    let set op share = Aaa.Durations.set d ~op ~operator:"P0" (share *. fraction *. ts) in
    set "reference" 0.05;
    set "sample_y" 0.2;
    set "pid" 0.6;
    set "hold_u" 0.15;
    d
  in
  [
    test "latency sweep is monotone for a stable loop" (fun () ->
        let file = file () in
        let points =
          Lifecycle.Sweep.latency ~fractions:[ 0.2; 0.5; 0.9 ]
            ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture ~durations_of ()
        in
        check_int "3 points" 3 (List.length points);
        let costs = List.map (fun p -> p.Lifecycle.Sweep.implemented_cost) points in
        check_true "monotone" (List.sort compare costs = costs);
        List.iter
          (fun p ->
            check_true "above ideal"
              (p.Lifecycle.Sweep.implemented_cost >= p.Lifecycle.Sweep.ideal_cost -. 1e-9))
          points);
    test "jitter sweep: WCET point matches the static co-simulation" (fun () ->
        let file = file () in
        let impl =
          Lifecycle.Methodology.implement ~design:file.Lifecycle.Diagram.design
            ~architecture:file.Lifecycle.Diagram.architecture
            ~durations:(durations_of 0.9) ()
        in
        let points =
          Lifecycle.Sweep.jitter ~bcet_fracs:[ 1.0; 0.5 ]
            ~design:file.Lifecycle.Diagram.design ~implementation:impl ()
        in
        (match points with
        | [ wcet_point; jittered ] ->
            let static =
              file.Lifecycle.Diagram.design.Lifecycle.Design.cost
                (Lifecycle.Methodology.simulate_implemented file.Lifecycle.Diagram.design
                   impl)
            in
            check_float ~eps:1e-12 "wcet point" static
              wcet_point.Lifecycle.Sweep.implemented_cost;
            check_true "jittered below WCET"
              (jittered.Lifecycle.Sweep.implemented_cost
              <= wcet_point.Lifecycle.Sweep.implemented_cost +. 1e-9)
        | _ -> Alcotest.fail "expected two points"));
    test "instability threshold is none for a gentle loop" (fun () ->
        let file = file () in
        check_true "stable throughout"
          (Lifecycle.Sweep.instability_threshold ~design:file.Lifecycle.Diagram.design
             ~architecture:file.Lifecycle.Diagram.architecture ~durations_of ()
          = None));
    test "instability threshold found for an aggressive loop" (fun () ->
        let design =
          Lifecycle.Design.pid_loop ~name:"aggressive"
            ~plant:(Control.Plants.dc_motor Control.Plants.default_dc_motor)
            ~x0:[| 0.; 0. |]
            ~gains:{ Control.Pid.kp = 100.; ki = 150.; kd = 0. }
            ~ts:0.05 ~reference:1. ~horizon:10. ()
        in
        match
          Lifecycle.Sweep.instability_threshold ~design
            ~architecture:(Aaa.Architecture.single ())
            ~durations_of ()
        with
        | Some f ->
            (* the margins experiment locates this near 0.64–0.8 of Ts *)
            check_true "plausible range" (f > 0.4 && f < 0.95)
        | None -> Alcotest.fail "expected a threshold");
  ]

let suites =
  [
    ("lifecycle.diagram", diagram_tests);
    ("lifecycle.montecarlo", montecarlo_tests);
    ("lifecycle.report", report_tests);
    ("lifecycle.sweep", sweep_tests);
  ]
