open Helpers
module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations
module Sched = Aaa.Schedule
module Adq = Aaa.Adequation

(* A small sensor → compute → actuator chain. *)
let chain_algorithm () =
  let alg = Alg.create ~name:"chain" ~period:0.1 in
  let s = Alg.add_op alg ~name:"sense" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
  let c = Alg.add_op alg ~name:"law" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
  let a = Alg.add_op alg ~name:"act" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
  Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
  (alg, s, c, a)

let uniform_durations alg operators value =
  let d = Dur.create () in
  List.iter
    (fun op -> Dur.set_everywhere d ~op:(Alg.op_name alg op) ~operators value)
    (Alg.ops alg);
  d

(* ------------------------------------------------------------------ *)
(* Algorithm *)

let algorithm_tests =
  [
    test "create rejects non-positive period" (fun () ->
        check_raises_invalid "period" (fun () ->
            ignore (Alg.create ~name:"x" ~period:0.)));
    test "duplicate operation names rejected" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let _ = Alg.add_op alg ~name:"op" ~kind:Alg.Compute () in
        check_raises_invalid "dup" (fun () ->
            ignore (Alg.add_op alg ~name:"op" ~kind:Alg.Compute ())));
    test "depend checks widths and ports" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Compute ~outputs:[| 2 |] () in
        let b = Alg.add_op alg ~name:"b" ~kind:Alg.Compute ~inputs:[| 1 |] () in
        check_raises_invalid "width" (fun () -> Alg.depend alg ~src:(a, 0) ~dst:(b, 0));
        check_raises_invalid "port" (fun () -> Alg.depend alg ~src:(a, 1) ~dst:(b, 0)));
    test "input port wired once" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Compute ~outputs:[| 1 |] () in
        let b = Alg.add_op alg ~name:"b" ~kind:Alg.Compute ~outputs:[| 1 |] () in
        let c = Alg.add_op alg ~name:"c" ~kind:Alg.Compute ~inputs:[| 1 |] () in
        Alg.depend alg ~src:(a, 0) ~dst:(c, 0);
        check_raises_invalid "double" (fun () -> Alg.depend alg ~src:(b, 0) ~dst:(c, 0)));
    test "validate flags unwired inputs" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let _ = Alg.add_op alg ~name:"a" ~kind:Alg.Compute ~inputs:[| 1 |] () in
        check_raises_invalid "unwired" (fun () -> Alg.validate alg));
    test "validate detects cycles" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
        let b = Alg.add_op alg ~name:"b" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] () in
        Alg.depend alg ~src:(a, 0) ~dst:(b, 0);
        Alg.depend alg ~src:(b, 0) ~dst:(a, 0);
        check_raises_invalid "cycle" (fun () -> Alg.validate alg));
    test "memory breaks cycles" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let m =
          Alg.add_op alg ~name:"state" ~kind:Alg.Memory ~inputs:[| 1 |] ~outputs:[| 1 |] ()
        in
        let c =
          Alg.add_op alg ~name:"update" ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] ()
        in
        Alg.depend alg ~src:(m, 0) ~dst:(c, 0);
        Alg.depend alg ~src:(c, 0) ~dst:(m, 0);
        Alg.validate alg);
    test "memory needs matching ports" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        check_raises_invalid "ports" (fun () ->
            ignore (Alg.add_op alg ~name:"m" ~kind:Alg.Memory ~inputs:[| 1 |] ())));
    test "topological order respects dependencies" (fun () ->
        let alg, s, c, a = chain_algorithm () in
        let order = Alg.topological_order alg in
        let pos x = Option.get (List.find_index (fun o -> o = x) order) in
        check_true "s < c" (pos s < pos c);
        check_true "c < a" (pos c < pos a));
    test "sensors and actuators listed" (fun () ->
        let alg, s, _, a = chain_algorithm () in
        check_true "sensor" (Alg.sensors alg = [ s ]);
        check_true "actuator" (Alg.actuators alg = [ a ]));
    test "condition source must exist" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let _ =
          Alg.add_op alg ~name:"c" ~kind:Alg.Compute
            ~cond:{ Alg.var = "mode"; value = 0 } ()
        in
        check_raises_invalid "no source" (fun () -> Alg.validate alg));
    test "condition source registration" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let m = Alg.add_op alg ~name:"mode" ~kind:Alg.Compute ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"mode" (m, 0);
        check_true "found" (Alg.condition_source alg ~var:"mode" = Some (m, 0));
        check_raises_invalid "dup" (fun () ->
            Alg.set_condition_source alg ~var:"mode" (m, 0)));
    test "condition source needs width 1" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let m = Alg.add_op alg ~name:"mode" ~kind:Alg.Compute ~outputs:[| 2 |] () in
        check_raises_invalid "width" (fun () ->
            Alg.set_condition_source alg ~var:"mode" (m, 0)));
    test "set_op_condition after creation" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let m = Alg.add_op alg ~name:"mode" ~kind:Alg.Compute ~outputs:[| 1 |] () in
        let c = Alg.add_op alg ~name:"c" ~kind:Alg.Compute () in
        Alg.set_condition_source alg ~var:"mode" (m, 0);
        Alg.set_op_condition alg c { Alg.var = "mode"; value = 1 };
        check_true "tagged" (Alg.op_cond alg c = Some { Alg.var = "mode"; value = 1 });
        check_raises_invalid "retag" (fun () ->
            Alg.set_op_condition alg c { Alg.var = "mode"; value = 0 }));
  ]

(* ------------------------------------------------------------------ *)
(* Architecture *)

let architecture_tests =
  [
    test "duplicate operator names rejected" (fun () ->
        let a = Arch.create ~name:"x" in
        let _ = Arch.add_operator a ~name:"P0" in
        check_raises_invalid "dup" (fun () -> ignore (Arch.add_operator a ~name:"P0")));
    test "point-to-point needs exactly two operators" (fun () ->
        let a = Arch.create ~name:"x" in
        let p = Arch.add_operator a ~name:"P0" in
        check_raises_invalid "arity" (fun () ->
            ignore (Arch.add_medium a ~name:"l" ~kind:Arch.Point_to_point ~time_per_word:1. [ p ])));
    test "comm_duration is latency + words x rate" (fun () ->
        let a = Arch.bus_topology ~latency:0.5 ~time_per_word:0.1 [ "P0"; "P1" ] in
        let m = Option.get (Arch.find_medium a "bus") in
        check_float ~eps:1e-12 "duration" 0.8 (Arch.comm_duration a m ~words:3));
    test "connecting finds shared media" (fun () ->
        let a = Arch.fully_connected ~time_per_word:1. [ "P0"; "P1"; "P2" ] in
        let p0 = Option.get (Arch.find_operator a "P0") in
        let p1 = Option.get (Arch.find_operator a "P1") in
        check_int "one direct link" 1 (List.length (Arch.connecting a p0 p1)));
    test "validate detects disconnected architecture" (fun () ->
        let a = Arch.create ~name:"x" in
        let _ = Arch.add_operator a ~name:"P0" in
        let _ = Arch.add_operator a ~name:"P1" in
        check_raises_invalid "disconnected" (fun () -> Arch.validate a));
    test "single operator architecture is valid" (fun () ->
        Arch.validate (Arch.single ()));
    test "bus topology connects all" (fun () ->
        let a = Arch.bus_topology ~time_per_word:1. [ "P0"; "P1"; "P2" ] in
        Arch.validate a;
        check_int "one medium" 1 (Arch.medium_count a);
        check_int "three operators" 3 (Arch.operator_count a));
    test "fully connected pair count" (fun () ->
        let a = Arch.fully_connected ~time_per_word:1. [ "A"; "B"; "C"; "D" ] in
        check_int "6 links" 6 (Arch.medium_count a));
  ]

(* ------------------------------------------------------------------ *)
(* Durations *)

let durations_tests =
  [
    test "wcet lookup and absence" (fun () ->
        let d = Dur.create () in
        Dur.set d ~op:"f" ~operator:"P0" 2.;
        check_true "present" (Dur.wcet d ~op:"f" ~operator:"P0" = Some 2.);
        check_true "absent" (Dur.wcet d ~op:"f" ~operator:"P1" = None);
        check_true "can_run" (Dur.can_run d ~op:"f" ~operator:"P0"));
    test "bcet defaults to wcet" (fun () ->
        let d = Dur.create () in
        Dur.set d ~op:"f" ~operator:"P0" 2.;
        check_true "bcet = wcet" (Dur.bcet d ~op:"f" ~operator:"P0" = Some 2.));
    test "bcet must not exceed wcet" (fun () ->
        let d = Dur.create () in
        Dur.set d ~op:"f" ~operator:"P0" 2.;
        check_raises_invalid "bcet" (fun () -> Dur.set_bcet d ~op:"f" ~operator:"P0" 3.);
        check_raises_invalid "no wcet" (fun () -> Dur.set_bcet d ~op:"g" ~operator:"P0" 1.));
    test "average over runnable operators" (fun () ->
        let d = Dur.create () in
        Dur.set d ~op:"f" ~operator:"P0" 2.;
        Dur.set d ~op:"f" ~operator:"P1" 4.;
        check_true "mean"
          (Dur.average_wcet d ~op:"f" ~operators:[ "P0"; "P1"; "P2" ] = Some 3.);
        check_true "none" (Dur.average_wcet d ~op:"g" ~operators:[ "P0" ] = None));
    test "negative wcet rejected" (fun () ->
        let d = Dur.create () in
        check_raises_invalid "neg" (fun () -> Dur.set d ~op:"f" ~operator:"P0" (-1.)));
    test "fold visits every entry with effective BCETs" (fun () ->
        let d = Dur.create () in
        Dur.set d ~op:"f" ~operator:"P0" 2.;
        Dur.set_bcet d ~op:"f" ~operator:"P0" 1.;
        Dur.set d ~op:"g" ~operator:"P1" 3.;
        let entries =
          Dur.fold d ~init:[] ~f:(fun ~op ~operator ~wcet ~bcet acc ->
              (op, operator, wcet, bcet) :: acc)
          |> List.sort compare
        in
        check_true "both entries"
          (entries = [ ("f", "P0", 2., 1.); ("g", "P1", 3., 3.) ]));
    test "scale multiplies WCET and BCET uniformly" (fun () ->
        let d = Dur.create () in
        Dur.set d ~op:"f" ~operator:"P0" 2.;
        Dur.set_bcet d ~op:"f" ~operator:"P0" 1.;
        let half = Dur.scale d 0.5 in
        check_true "wcet" (Dur.wcet half ~op:"f" ~operator:"P0" = Some 1.);
        check_true "bcet" (Dur.bcet half ~op:"f" ~operator:"P0" = Some 0.5);
        check_raises_invalid "factor" (fun () -> ignore (Dur.scale d 0.)));
  ]

(* ------------------------------------------------------------------ *)
(* Adequation + Schedule *)

let adequation_tests =
  [
    test "single processor serialises the chain" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_float ~eps:1e-12 "makespan = 3 wcet" 0.03 sched.Sched.makespan;
        check_true "fits" (Sched.fits_period sched);
        check_int "no comms" 0 (List.length sched.Sched.comm));
    test "sensor completion offsets exposed" (fun () ->
        let alg, s, _, a = chain_algorithm () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "Ls = wcet" (Sched.sensor_completions sched = [ (s, 0.01) ]);
        check_true "La = makespan"
          (match Sched.actuator_completions sched with
          | [ (op, t) ] -> op = a && Float.abs (t -. 0.03) < 1e-12
          | _ -> false));
    test "parallel branches exploit two processors" (fun () ->
        (* two independent chains: 2 procs should halve the makespan *)
        let alg = Alg.create ~name:"par" ~period:1. in
        let mk i =
          let s =
            Alg.add_op alg ~name:(Printf.sprintf "s%d" i) ~kind:Alg.Sensor ~outputs:[| 1 |] ()
          in
          let c =
            Alg.add_op alg
              ~name:(Printf.sprintf "c%d" i)
              ~kind:Alg.Compute ~inputs:[| 1 |] ~outputs:[| 1 |] ()
          in
          let a =
            Alg.add_op alg ~name:(Printf.sprintf "a%d" i) ~kind:Alg.Actuator ~inputs:[| 1 |] ()
          in
          Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
          Alg.depend alg ~src:(c, 0) ~dst:(a, 0)
        in
        mk 0;
        mk 1;
        let arch1 = Arch.single () in
        let arch2 = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d1 = uniform_durations alg [ "P0" ] 0.1 in
        let d2 = uniform_durations alg [ "P0"; "P1" ] 0.1 in
        let sched1 = Adq.run ~algorithm:alg ~architecture:arch1 ~durations:d1 () in
        let sched2 = Adq.run ~algorithm:alg ~architecture:arch2 ~durations:d2 () in
        check_float ~eps:1e-9 "serial" 0.6 sched1.Sched.makespan;
        check_true "parallel speedup" (sched2.Sched.makespan < 0.45));
    test "cross-processor dependency inserts a transfer" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        (* force law onto P1 by making it unavailable on P0 *)
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_int "two transfers" 2 (List.length sched.Sched.comm);
        Sched.pp Format.str_formatter sched;
        check_true "pp mentions bus" (contains (Format.flush_str_formatter ()) "bus"));
    test "pins are respected" (fun () ->
        let alg, s, _, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = uniform_durations alg [ "P0"; "P1" ] 0.01 in
        let sched =
          Adq.run ~pins:[ ("sense", "P1") ] ~algorithm:alg ~architecture:arch ~durations:d ()
        in
        check_true "pinned"
          (Arch.operator_name arch (Sched.operator_of sched s) = "P1"));
    test "pin to an operator without WCET is infeasible" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P0" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        (match
           Adq.run ~pins:[ ("law", "P1") ] ~algorithm:alg ~architecture:arch ~durations:d ()
         with
        | exception Adq.Infeasible _ -> ()
        | _ -> Alcotest.fail "expected Infeasible"));
    test "operation with no WCET anywhere is infeasible" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.single () in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        (match Adq.run ~algorithm:alg ~architecture:arch ~durations:d () with
        | exception Adq.Infeasible _ -> ()
        | _ -> Alcotest.fail "expected Infeasible"));
    test "memory placed with its producer and wrap transfer added" (fun () ->
        let alg = Alg.create ~name:"mem" ~period:1. in
        let s = Alg.add_op alg ~name:"s" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        let m = Alg.add_op alg ~name:"m" ~kind:Alg.Memory ~inputs:[| 1 |] ~outputs:[| 1 |] () in
        let c = Alg.add_op alg ~name:"c" ~kind:Alg.Compute ~inputs:[| 1; 1 |] ~outputs:[| 1 |] () in
        let a = Alg.add_op alg ~name:"a" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
        Alg.depend alg ~src:(s, 0) ~dst:(c, 0);
        Alg.depend alg ~src:(m, 0) ~dst:(c, 1);
        Alg.depend alg ~src:(c, 0) ~dst:(m, 0);
        Alg.depend alg ~src:(c, 0) ~dst:(a, 0);
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        (* memory sits on the producer's operator *)
        check_true "same operator" (Sched.operator_of sched m = Sched.operator_of sched c));
    test "conditioned branches reserve sequential windows" (fun () ->
        let alg = Alg.create ~name:"cond" ~period:1. in
        let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"m" (mode, 0);
        let b0 =
          Alg.add_op alg ~name:"b0" ~kind:Alg.Compute ~outputs:[| 1 |]
            ~cond:{ Alg.var = "m"; value = 0 } ()
        in
        let b1 =
          Alg.add_op alg ~name:"b1" ~kind:Alg.Compute ~outputs:[| 1 |]
            ~cond:{ Alg.var = "m"; value = 1 } ()
        in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.1 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        (* implicit dependency: both branches start after the source *)
        let t_mode = (Sched.slot_of sched mode).Sched.cs_start in
        let f_mode = t_mode +. (Sched.slot_of sched mode).Sched.cs_duration in
        check_true "b0 after source" ((Sched.slot_of sched b0).Sched.cs_start >= f_mode);
        check_true "b1 after source" ((Sched.slot_of sched b1).Sched.cs_start >= f_mode);
        check_float ~eps:1e-9 "three windows" 0.3 sched.Sched.makespan);
    test "heterogeneous WCETs steer the mapping to the faster operator" (fun () ->
        let alg, _, c, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.0001 [ "slow"; "fast" ] in
        let d = Dur.create () in
        (* the law runs 5x faster on the DSP-like operator *)
        Dur.set d ~op:"sense" ~operator:"slow" 0.001;
        Dur.set d ~op:"sense" ~operator:"fast" 0.001;
        Dur.set d ~op:"law" ~operator:"slow" 0.05;
        Dur.set d ~op:"law" ~operator:"fast" 0.01;
        Dur.set d ~op:"act" ~operator:"slow" 0.001;
        Dur.set d ~op:"act" ~operator:"fast" 0.001;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "law on the fast operator"
          (Arch.operator_name arch (Sched.operator_of sched c) = "fast"));
    test "ASIC-style operator hosting exactly one operation" (fun () ->
        (* the law exists only on the accelerator; everything else
           only on the CPU — models the paper's ASIC/FPGA components *)
        let alg, s, c, a = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.0001 [ "cpu"; "asic" ] in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"cpu" 0.001;
        Dur.set d ~op:"law" ~operator:"asic" 0.002;
        Dur.set d ~op:"act" ~operator:"cpu" 0.001;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "forced mapping"
          (Arch.operator_name arch (Sched.operator_of sched c) = "asic"
          && Arch.operator_name arch (Sched.operator_of sched s) = "cpu"
          && Arch.operator_name arch (Sched.operator_of sched a) = "cpu");
        check_int "two transfers" 2 (List.length sched.Sched.comm));
    test "earliest-finish strategy also yields a valid schedule" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = uniform_durations alg [ "P0"; "P1" ] 0.01 in
        let sched =
          Adq.run ~strategy:Adq.Earliest_finish ~algorithm:alg ~architecture:arch
            ~durations:d ()
        in
        check_true "valid by construction" (sched.Sched.makespan > 0.));
    test "critical path lower bound holds" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let cp = Adq.critical_path ~algorithm:alg ~architecture:arch ~durations:d in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "makespan >= cp" (sched.Sched.makespan +. 1e-12 >= cp));
    test "schedule validation rejects overlap" (fun () ->
        let alg, s, c, a = chain_algorithm () in
        let arch = Arch.single () in
        let p0 = List.hd (Arch.operators arch) in
        let slot op start =
          { Sched.cs_op = op; cs_operator = p0; cs_start = start; cs_duration = 0.02 }
        in
        check_raises_invalid "overlap" (fun () ->
            ignore
              (Sched.make ~algorithm:alg ~architecture:arch
                 ~comp:[ slot s 0.; slot c 0.01; slot a 0.03 ]
                 ~comm:[])));
    test "schedule validation rejects precedence violation" (fun () ->
        let alg, s, c, a = chain_algorithm () in
        let arch = Arch.single () in
        let p0 = List.hd (Arch.operators arch) in
        let slot op start =
          { Sched.cs_op = op; cs_operator = p0; cs_start = start; cs_duration = 0.01 }
        in
        check_raises_invalid "precedence" (fun () ->
            ignore
              (Sched.make ~algorithm:alg ~architecture:arch
                 ~comp:[ slot c 0.; slot s 0.02; slot a 0.04 ]
                 ~comm:[])));
    test "schedule validation requires missing transfers" (fun () ->
        let alg, s, c, a = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let p0 = Option.get (Arch.find_operator arch "P0") in
        let p1 = Option.get (Arch.find_operator arch "P1") in
        let slot op operator start =
          { Sched.cs_op = op; cs_operator = operator; cs_start = start; cs_duration = 0.01 }
        in
        check_raises_invalid "missing transfer" (fun () ->
            ignore
              (Sched.make ~algorithm:alg ~architecture:arch
                 ~comp:[ slot s p0 0.; slot c p1 0.02; slot a p0 0.04 ]
                 ~comm:[])));
    test "gantt renders all operators" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let s = Aaa.Gantt.render sched in
        check_true "P0 row" (contains s "P0");
        check_true "op name" (contains s "sense"));
    qtest "random layered DAGs always schedule validly" ~count:40
      QCheck2.Gen.(triple (int_range 1 4) (int_range 1 3) (int_range 0 100_000))
      (fun (layers, width, seed) ->
        let rng = Numerics.Rng.create seed in
        let alg = Alg.create ~name:"rand" ~period:10. in
        let prev = ref [] in
        for layer = 0 to layers - 1 do
          let ops =
            List.init width (fun i ->
                let kind =
                  if layer = 0 then Alg.Sensor
                  else if layer = layers - 1 then Alg.Actuator
                  else Alg.Compute
                in
                let inputs =
                  if layer = 0 then [||] else [| 1 |]
                in
                let outputs = if layer = layers - 1 then [||] else [| 1 |] in
                Alg.add_op alg
                  ~name:(Printf.sprintf "op_%d_%d" layer i)
                  ~kind ~inputs ~outputs ())
          in
          (match !prev with
          | [] -> ()
          | sources ->
              List.iter
                (fun op ->
                  let src = List.nth sources (Numerics.Rng.int rng (List.length sources)) in
                  Alg.depend alg ~src:(src, 0) ~dst:(op, 0))
                ops);
          prev := ops
        done;
        let n_ops = float_of_int (Alg.op_count alg) in
        ignore n_ops;
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1"; "P2" ] in
        let d = Dur.create () in
        List.iter
          (fun op ->
            Dur.set_everywhere d ~op:(Alg.op_name alg op) ~operators:[ "P0"; "P1"; "P2" ]
              (0.001 +. Numerics.Rng.float rng 0.01))
          (Alg.ops alg);
        (* Schedule.make validates internally; reaching here is the test *)
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        sched.Sched.makespan > 0.);
  ]

(* ------------------------------------------------------------------ *)
(* Codegen *)

let codegen_tests =
  [
    test "programs start with wait_period" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        List.iter
          (fun (_, body) ->
            match body with
            | Aaa.Codegen.Wait_period :: _ -> ()
            | _ -> Alcotest.fail "program must begin with wait_period")
          exe.Aaa.Codegen.programs);
    test "sends and recvs generated for transfers" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let count pred =
          List.fold_left
            (fun acc (_, body) -> acc + List.length (List.filter pred body))
            0 exe.Aaa.Codegen.programs
        in
        check_int "2 sends"
          2
          (count (function Aaa.Codegen.Send _ -> true | _ -> false));
        check_int "2 recvs"
          2
          (count (function Aaa.Codegen.Recv _ -> true | _ -> false)));
    test "listing mentions conditioned operations" (fun () ->
        let alg = Alg.create ~name:"cond" ~period:1. in
        let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"m" (mode, 0);
        let _ =
          Alg.add_op alg ~name:"branch0" ~kind:Alg.Compute
            ~cond:{ Alg.var = "m"; value = 0 } ()
        in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        check_true "if rendered" (contains (Aaa.Codegen.to_string exe) "if m = 0"));
    test "exec order matches schedule order per operator" (fun () ->
        let alg, s, c, a = chain_algorithm () in
        let arch = Arch.single () in
        let d = uniform_durations alg [ "P0" ] 0.01 in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let p0 = List.hd (Arch.operators arch) in
        let execs =
          List.filter_map
            (function Aaa.Codegen.Exec op -> Some op | _ -> None)
            (Aaa.Codegen.program_of exe p0)
        in
        check_true "order" (execs = [ s; c; a ]));
  ]

(* P0 —busA— GW —busB— P1: reaching P1 from P0 requires two hops *)
let gateway_arch () =
  let arch = Arch.create ~name:"gateway" in
  let p0 = Arch.add_operator arch ~name:"P0" in
  let gw = Arch.add_operator arch ~name:"GW" in
  let p1 = Arch.add_operator arch ~name:"P1" in
  let _ =
    Arch.add_medium arch ~name:"busA" ~kind:Arch.Bus ~latency:0.001 ~time_per_word:0.001
      [ p0; gw ]
  in
  let _ =
    Arch.add_medium arch ~name:"busB" ~kind:Arch.Bus ~latency:0.002 ~time_per_word:0.001
      [ gw; p1 ]
  in
  (arch, p0, gw, p1)

let routing_tests =
  [
    test "routes finds the two-hop path through the gateway" (fun () ->
        let arch, p0, gw, p1 = gateway_arch () in
        (match Arch.routes arch p0 p1 with
        | [ route ] ->
            check_int "two hops" 2 (List.length route);
            check_true "via gateway" (List.map snd route = [ gw; p1 ])
        | l -> Alcotest.failf "expected one route, got %d" (List.length l));
        check_int "direct route is single hop" 1
          (List.length (List.hd (Arch.routes arch p0 gw))));
    test "routes respects max_hops" (fun () ->
        let arch, p0, _, p1 = gateway_arch () in
        check_int "no route within one hop" 0
          (List.length (Arch.routes ~max_hops:1 arch p0 p1)));
    test "adequation schedules across the gateway" (fun () ->
        let alg, s, c, a = chain_algorithm () in
        let arch, _, _, _ = gateway_arch () in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        (* sense→law and law→act both need 2 hops *)
        check_int "four hop slots" 4 (List.length sched.Sched.comm);
        let chain =
          Sched.transfer_chain sched
            ((s, 0), (c, 0))
            ~from_operator:(Sched.operator_of sched s)
            ~to_operator:(Sched.operator_of sched c)
        in
        check_int "two hops" 2 (List.length chain);
        ignore a);
    test "executive over a gateway runs deadlock-free with correct latency" (fun () ->
        let alg, _, _, a = chain_algorithm () in
        let arch, _, _, _ = gateway_arch () in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let config =
          { Exec.Machine.default_config with law = Exec.Timing_law.Wcet; iterations = 20 }
        in
        let trace = Exec.Machine.run ~config exe in
        check_true "order conformant" (Exec.Machine.order_conformant trace);
        (* WCET law replays the static schedule exactly, hops included *)
        let slot = Sched.slot_of sched a in
        let static = slot.Sched.cs_start +. slot.Sched.cs_duration in
        (match Exec.Machine.actuation_latencies trace with
        | [ (_, lat) ] -> Array.iter (fun l -> check_float ~eps:1e-9 "La" static l) lat
        | _ -> Alcotest.fail "expected one actuator"));
    test "time-triggered baseline handles multi-hop routes too" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch, _, _, _ = gateway_arch () in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let exe = Aaa.Codegen.generate sched in
        let trace =
          Exec.Async.run ~config:{ Exec.Async.default_config with iterations = 50 } exe
        in
        check_int "fresh under WCET contract" 0 trace.Exec.Async.violations;
        check_true "reads checked" (trace.Exec.Async.remote_consumptions > 0));
    test "delay graph gates on the final hop across a gateway" (fun () ->
        (* co-simulate the fig2 loop with the pid behind a gateway *)
        let g = Dataflow.Graph.create () in
        let plant =
          Dataflow.Graph.add g
            (Dataflow.Clib.lti_continuous ~name:"plant" ~x0:[| 0. |]
               (Control.Plants.first_order ~tau:0.5 ~gain:1.))
        in
        let sampler = Dataflow.Graph.add g (Dataflow.Clib.sample_hold ~name:"sample_y" 1) in
        let law =
          Dataflow.Graph.add g
            (Dataflow.Clib.stateful ~name:"law" ~in_widths:[| 1 |] ~out_widths:[| 1 |]
               (fun i -> [| i.(0) |]))
        in
        let hold = Dataflow.Graph.add g (Dataflow.Clib.sample_hold ~name:"hold_u" 1) in
        Dataflow.Graph.connect_data g ~src:(plant, 0) ~dst:(sampler, 0);
        Dataflow.Graph.connect_data g ~src:(sampler, 0) ~dst:(law, 0);
        Dataflow.Graph.connect_data g ~src:(law, 0) ~dst:(hold, 0);
        Dataflow.Graph.connect_data g ~src:(hold, 0) ~dst:(plant, 0);
        let alg, binding =
          Translator.Scicos_to_syndex.extract g
            {
              Translator.Scicos_to_syndex.members = [ sampler; law; hold ];
              memories = [];
              period = 0.1;
            }
        in
        let arch, _, _, _ = gateway_arch () in
        let d = Dur.create () in
        Dur.set d ~op:"sample_y" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"hold_u" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let _ = Translator.Cosim.attach_delay_graph ~graph:g ~schedule:sched ~binding () in
        let e = Sim.Engine.create g in
        Sim.Engine.run ~t_end:0.099 e;
        let op_law = Option.get (Alg.find_op alg "law") in
        let slot = Sched.slot_of sched op_law in
        match Sim.Engine.activations e ~block:law with
        | [ t ] ->
            check_float ~eps:1e-9 "law activated at its gated completion"
              (slot.Sched.cs_start +. slot.Sched.cs_duration)
              t
        | l -> Alcotest.failf "expected 1 activation, got %d" (List.length l));
  ]

let hierarchy_tests =
  let module H = Aaa.Hierarchy in
  (* one wheel-station subsystem: sense -> filter, reused twice *)
  let two_wheel_spec () =
    let spec = H.create ~name:"vehicle" ~period:0.01 in
    H.define_atom spec ~name:"sense" ~kind:Alg.Sensor ~outputs:[ ("y", 1) ] ();
    H.define_atom spec ~name:"filter" ~kind:Alg.Compute ~inputs:[ ("u", 1) ]
      ~outputs:[ ("y", 1) ] ();
    H.define_subsystem spec ~name:"wheel_station" ~outputs:[ ("speed", 1) ]
      ~elements:[ ("s", "sense"); ("f", "filter") ]
      ~links:
        [ (("s", "y"), ("f", "u")); (("f", "y"), (H.boundary, "speed")) ]
      ();
    H.define_atom spec ~name:"law" ~kind:Alg.Compute
      ~inputs:[ ("left", 1); ("right", 1) ]
      ~outputs:[ ("force", 1) ] ();
    H.define_atom spec ~name:"act" ~kind:Alg.Actuator ~inputs:[ ("u", 1) ] ();
    H.define_subsystem spec ~name:"main"
      ~elements:
        [ ("lw", "wheel_station"); ("rw", "wheel_station"); ("c", "law"); ("a", "act") ]
      ~links:
        [
          (("lw", "speed"), ("c", "left"));
          (("rw", "speed"), ("c", "right"));
          (("c", "force"), ("a", "u"));
        ]
      ();
    spec
  in
  [
    test "flattening expands instances with path names" (fun () ->
        let alg = H.flatten (two_wheel_spec ()) ~root:"main" in
        check_int "2x2 + law + act" 6 (Alg.op_count alg);
        check_true "mangled names" (Alg.find_op alg "lw/s" <> None);
        check_true "shared template reused" (Alg.find_op alg "rw/f" <> None));
    test "flattened dependencies cross boundary ports" (fun () ->
        let alg = H.flatten (two_wheel_spec ()) ~root:"main" in
        let law = Option.get (Alg.find_op alg "c") in
        let srcs =
          List.map (fun p -> Alg.dep_source alg law p) [ 0; 1 ]
          |> List.map (fun s -> Alg.op_name alg (fst (Option.get s)))
          |> List.sort compare
        in
        check_true "filters feed the law" (srcs = [ "lw/f"; "rw/f" ]);
        check_int "sensors found" 2 (List.length (Alg.sensors alg)));
    test "flattened graph schedules like a hand-built one" (fun () ->
        let alg = H.flatten (two_wheel_spec ()) ~root:"main" in
        let arch = Arch.bus_topology ~time_per_word:1e-4 [ "P0"; "P1" ] in
        let d = Dur.create () in
        List.iter
          (fun op ->
            Dur.set_everywhere d ~op:(Alg.op_name alg op) ~operators:[ "P0"; "P1" ] 0.001)
          (Alg.ops alg);
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "parallel wheel stations"
          (sched.Sched.makespan < 6. *. 0.001));
    test "recursive instantiation rejected" (fun () ->
        let spec = H.create ~name:"x" ~period:1. in
        H.define_subsystem spec ~name:"a" ~elements:[ ("inner", "a") ] ~links:[] ();
        check_raises_invalid "recursion" (fun () ->
            ignore (H.flatten spec ~root:"a")));
    test "unknown definition rejected" (fun () ->
        let spec = H.create ~name:"x" ~period:1. in
        H.define_subsystem spec ~name:"main" ~elements:[ ("i", "ghost") ] ~links:[] ();
        check_raises_invalid "ghost" (fun () -> ignore (H.flatten spec ~root:"main")));
    test "unwired atom input rejected" (fun () ->
        let spec = H.create ~name:"x" ~period:1. in
        H.define_atom spec ~name:"consumer" ~kind:Alg.Compute ~inputs:[ ("u", 1) ] ();
        H.define_subsystem spec ~name:"main" ~elements:[ ("c", "consumer") ] ~links:[] ();
        check_raises_invalid "unwired" (fun () -> ignore (H.flatten spec ~root:"main")));
    test "width mismatch across boundary rejected" (fun () ->
        let spec = H.create ~name:"x" ~period:1. in
        H.define_atom spec ~name:"wide" ~kind:Alg.Sensor ~outputs:[ ("y", 2) ] ();
        H.define_atom spec ~name:"narrow" ~kind:Alg.Actuator ~inputs:[ ("u", 1) ] ();
        H.define_subsystem spec ~name:"main"
          ~elements:[ ("s", "wide"); ("a", "narrow") ]
          ~links:[ (("s", "y"), ("a", "u")) ]
          ();
        check_raises_invalid "width" (fun () -> ignore (H.flatten spec ~root:"main")));
    test "root with boundary ports rejected" (fun () ->
        let spec = H.create ~name:"x" ~period:1. in
        H.define_subsystem spec ~name:"main" ~inputs:[ ("u", 1) ] ~elements:[] ~links:[] ();
        check_raises_invalid "boundary" (fun () -> ignore (H.flatten spec ~root:"main")));
    test "three-level nesting flattens with full paths" (fun () ->
        let module H = Aaa.Hierarchy in
        let spec = H.create ~name:"deep" ~period:1. in
        H.define_atom spec ~name:"leaf" ~kind:Alg.Sensor ~outputs:[ ("y", 1) ] ();
        H.define_atom spec ~name:"sink" ~kind:Alg.Actuator ~inputs:[ ("u", 1) ] ();
        H.define_subsystem spec ~name:"inner" ~outputs:[ ("out", 1) ]
          ~elements:[ ("l", "leaf") ]
          ~links:[ (("l", "y"), (H.boundary, "out")) ]
          ();
        H.define_subsystem spec ~name:"middle" ~outputs:[ ("out", 1) ]
          ~elements:[ ("i", "inner") ]
          ~links:[ (("i", "out"), (H.boundary, "out")) ]
          ();
        H.define_subsystem spec ~name:"main"
          ~elements:[ ("m", "middle"); ("s", "sink") ]
          ~links:[ (("m", "out"), ("s", "u")) ]
          ();
        let alg = H.flatten spec ~root:"main" in
        check_true "deep path" (Alg.find_op alg "m/i/l" <> None);
        let sink = Option.get (Alg.find_op alg "s") in
        match Alg.dep_source alg sink 0 with
        | Some (src, _) -> check_true "wired through two boundaries" (Alg.op_name alg src = "m/i/l")
        | None -> Alcotest.fail "sink not wired");
    test "duplicate definitions and instances rejected" (fun () ->
        let spec = H.create ~name:"x" ~period:1. in
        H.define_atom spec ~name:"a" ~kind:Alg.Compute ();
        check_raises_invalid "dup def" (fun () ->
            H.define_atom spec ~name:"a" ~kind:Alg.Compute ());
        check_raises_invalid "dup instance" (fun () ->
            H.define_subsystem spec ~name:"s"
              ~elements:[ ("i", "a"); ("i", "a") ]
              ~links:[] ()));
  ]

let adot_tests =
  [
    test "algorithm export mentions kinds and conditions" (fun () ->
        let alg = Alg.create ~name:"x" ~period:1. in
        let mode = Alg.add_op alg ~name:"mode" ~kind:Alg.Sensor ~outputs:[| 1 |] () in
        Alg.set_condition_source alg ~var:"m" (mode, 0);
        let b =
          Alg.add_op alg ~name:"branch" ~kind:Alg.Compute
            ~cond:{ Alg.var = "m"; value = 1 } ()
        in
        ignore b;
        let dot = Aaa.Adot.algorithm alg in
        check_true "sensor shape" (contains dot "invhouse");
        check_true "condition label" (contains dot "m=1"));
    test "architecture export links media to endpoints" (fun () ->
        let arch = Arch.bus_topology ~time_per_word:1. [ "P0"; "P1"; "P2" ] in
        let dot = Aaa.Adot.architecture arch in
        check_true "diamond medium" (contains dot "diamond");
        check_true "names" (contains dot "P2"));
    test "schedule export clusters per operator" (fun () ->
        let alg, _, _, _ = chain_algorithm () in
        let arch = Arch.bus_topology ~time_per_word:0.001 [ "P0"; "P1" ] in
        let d = Dur.create () in
        Dur.set d ~op:"sense" ~operator:"P0" 0.01;
        Dur.set d ~op:"law" ~operator:"P1" 0.01;
        Dur.set d ~op:"act" ~operator:"P0" 0.01;
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let dot = Aaa.Adot.schedule sched in
        check_true "clusters" (contains dot "subgraph cluster_p0");
        check_true "transfer edge" (contains dot "color=red"));
  ]

let workloads_tests =
  [
    test "chain generator produces a schedulable pipeline" (fun () ->
        let alg, d = Aaa.Workloads.chain ~stages:5 ~operators:[ "P0" ] () in
        check_int "5 ops" 5 (Alg.op_count alg);
        let sched =
          Adq.run ~algorithm:alg ~architecture:(Arch.single ()) ~durations:d ()
        in
        check_float ~eps:1e-12 "serial makespan" 0.05 sched.Sched.makespan);
    test "fork_join generator matches the hand-built workload" (fun () ->
        let alg, d =
          Aaa.Workloads.fork_join ~branches:6 ~operators:[ "P0"; "P1"; "P2" ] ()
        in
        check_int "ops" 9 (Alg.op_count alg);
        let arch = Arch.bus_topology ~latency:0.005 ~time_per_word:0.002 [ "P0"; "P1"; "P2" ] in
        let sched = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        check_true "parallel speedup" (sched.Sched.makespan < 0.81));
    test "layered generator is valid and reproducible" (fun () ->
        let make () =
          let rng = Numerics.Rng.create 5 in
          Aaa.Workloads.layered ~rng ~layers:4 ~width:3 ~operators:[ "P0"; "P1" ] ()
        in
        let alg1, _ = make () and alg2, _ = make () in
        Alg.validate alg1;
        check_int "same shape" (Alg.op_count alg1) (Alg.op_count alg2);
        check_int "12 ops" 12 (Alg.op_count alg1));
    test "generators validate their parameters" (fun () ->
        check_raises_invalid "stages" (fun () ->
            ignore (Aaa.Workloads.chain ~stages:1 ~operators:[ "P0" ] ()));
        check_raises_invalid "branches" (fun () ->
            ignore (Aaa.Workloads.fork_join ~branches:0 ~operators:[ "P0" ] ()));
        check_raises_invalid "layers" (fun () ->
            ignore
              (Aaa.Workloads.layered ~rng:(Numerics.Rng.create 0) ~layers:1 ~width:1
                 ~operators:[ "P0" ] ())));
  ]

let refine_tests =
  [
    test "refine never returns a worse schedule" (fun () ->
        let rng = Numerics.Rng.create 11 in
        let alg, d =
          Aaa.Workloads.layered ~rng ~layers:4 ~width:3 ~operators:[ "P0"; "P1"; "P2" ] ()
        in
        let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 [ "P0"; "P1"; "P2" ] in
        let initial = Adq.run ~algorithm:alg ~architecture:arch ~durations:d () in
        let refined =
          Adq.refine ~iterations:100 ~algorithm:alg ~architecture:arch ~durations:d
            ~initial ()
        in
        check_true "no regression" (refined.Sched.makespan <= initial.Sched.makespan +. 1e-12));
    test "refine recovers from a bad initial mapping" (fun () ->
        (* force everything on one processor, then let refinement
           rediscover the parallelism *)
        let alg, d =
          Aaa.Workloads.fork_join ~branches:6 ~operators:[ "P0"; "P1"; "P2" ] ()
        in
        let arch = Arch.bus_topology ~latency:0.0005 ~time_per_word:0.0005 [ "P0"; "P1"; "P2" ] in
        let all_on_p0 =
          List.map (fun op -> (Alg.op_name alg op, "P0")) (Alg.ops alg)
        in
        let initial = Adq.run ~pins:all_on_p0 ~algorithm:alg ~architecture:arch ~durations:d () in
        let refined =
          Adq.refine ~iterations:300 ~seed:3 ~algorithm:alg ~architecture:arch
            ~durations:d ~initial ()
        in
        check_true "found parallelism"
          (refined.Sched.makespan < 0.9 *. initial.Sched.makespan));
    test "refine with no movable operation returns the initial schedule" (fun () ->
        let alg, d = Aaa.Workloads.chain ~stages:3 ~operators:[ "P0" ] () in
        let initial = Adq.run ~algorithm:alg ~architecture:(Arch.single ()) ~durations:d () in
        let refined =
          Adq.refine ~algorithm:alg ~architecture:(Arch.single ()) ~durations:d ~initial ()
        in
        check_float ~eps:0. "same" initial.Sched.makespan refined.Sched.makespan);
  ]

let suites =
  [
    ("aaa.algorithm", algorithm_tests);
    ("aaa.workloads", workloads_tests);
    ("aaa.refine", refine_tests);
    ("aaa.routing", routing_tests);
    ("aaa.hierarchy", hierarchy_tests);
    ("aaa.adot", adot_tests);
    ("aaa.architecture", architecture_tests);
    ("aaa.durations", durations_tests);
    ("aaa.adequation", adequation_tests);
    ("aaa.codegen", codegen_tests);
  ]
