open Helpers
module B = Dataflow.Block
module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib

let dummy_out widths = fun (_ : B.context) -> Array.map (fun w -> Array.make w 0.) widths

(* ------------------------------------------------------------------ *)
(* Block *)

let block_tests =
  [
    test "make with defaults validates" (fun () ->
        let b = B.make ~name:"nop" (fun _ -> [||]) in
        check_int "no ports" 0 (Array.length b.B.in_widths));
    test "continuous state requires derivative" (fun () ->
        check_raises_invalid "missing derivative" (fun () ->
            ignore (B.make ~name:"bad" ~cstate0:[| 0. |] (dummy_out [||]))));
    test "derivative requires continuous state" (fun () ->
        check_raises_invalid "spurious derivative" (fun () ->
            ignore
              (B.make ~name:"bad" ~derivatives:(fun _ -> [||]) (dummy_out [||]))));
    test "event inputs require handler" (fun () ->
        check_raises_invalid "missing handler" (fun () ->
            ignore (B.make ~name:"bad" ~event_inputs:1 (dummy_out [||]))));
    test "handler requires event inputs" (fun () ->
        check_raises_invalid "spurious handler" (fun () ->
            ignore (B.make ~name:"bad" ~on_event:(fun _ ~port:_ -> []) (dummy_out [||]))));
    test "non-positive width rejected" (fun () ->
        check_raises_invalid "width" (fun () ->
            ignore (B.make ~name:"bad" ~in_widths:[| 0 |] (dummy_out [||]))));
    test "initial Emit port range checked" (fun () ->
        check_raises_invalid "port" (fun () ->
            ignore
              (B.make ~name:"bad" ~event_outputs:1
                 ~initial_actions:[ B.Emit { port = 1; delay = 0. } ]
                 (dummy_out [||]))));
    test "initial negative delay rejected" (fun () ->
        check_raises_invalid "delay" (fun () ->
            ignore
              (B.make ~name:"bad" ~event_outputs:1
                 ~initial_actions:[ B.Emit { port = 0; delay = -1. } ]
                 (dummy_out [||]))));
  ]

(* ------------------------------------------------------------------ *)
(* Graph wiring *)

let graph_tests =
  [
    test "connect_data checks widths" (fun () ->
        let g = G.create () in
        let a = G.add g (C.constant [| 1.; 2. |]) in
        let b = G.add g (C.gain 2.) in
        check_raises_invalid "width" (fun () ->
            G.connect_data g ~src:(a, 0) ~dst:(b, 0)));
    test "input port accepts one link only" (fun () ->
        let g = G.create () in
        let a = G.add g (C.constant [| 1. |]) in
        let b = G.add g (C.constant [| 1. |]) in
        let s = G.add g (C.gain 1.) in
        G.connect_data g ~src:(a, 0) ~dst:(s, 0);
        check_raises_invalid "double" (fun () ->
            G.connect_data g ~src:(b, 0) ~dst:(s, 0)));
    test "unknown ports rejected" (fun () ->
        let g = G.create () in
        let a = G.add g (C.constant [| 1. |]) in
        let b = G.add g (C.gain 1.) in
        check_raises_invalid "src port" (fun () ->
            G.connect_data g ~src:(a, 1) ~dst:(b, 0));
        check_raises_invalid "dst port" (fun () ->
            G.connect_data g ~src:(a, 0) ~dst:(b, 7)));
    test "validate flags unwired inputs" (fun () ->
        let g = G.create () in
        let _ = G.add g (C.gain 1.) in
        check_raises_invalid "unwired" (fun () -> G.validate g));
    test "validate detects algebraic loops" (fun () ->
        let g = G.create () in
        let a = G.add g (C.gain 1.) in
        let b = G.add g (C.gain 1.) in
        G.connect_data g ~src:(a, 0) ~dst:(b, 0);
        G.connect_data g ~src:(b, 0) ~dst:(a, 0);
        check_raises_invalid "loop" (fun () -> G.validate g));
    test "loop through non-feedthrough block is fine" (fun () ->
        let g = G.create () in
        let gain = G.add g (C.gain 1.) in
        let sh = G.add g (C.sample_hold 1) in
        G.connect_data g ~src:(gain, 0) ~dst:(sh, 0);
        G.connect_data g ~src:(sh, 0) ~dst:(gain, 0);
        let clock = G.add g (E.clock ~period:1. ()) in
        G.connect_event g ~src:(clock, 0) ~dst:(sh, 0);
        G.validate g);
    test "eval_order puts producers before feedthrough consumers" (fun () ->
        let g = G.create () in
        let s = G.add g (C.gain 1.) in
        let c = G.add g (C.constant [| 1. |]) in
        G.connect_data g ~src:(c, 0) ~dst:(s, 0);
        let order = G.eval_order g in
        let pos x = Option.get (List.find_index (fun id -> id = x) order) in
        check_true "const first" (pos c < pos s));
    test "event fan-out and fan-in allowed" (fun () ->
        let g = G.create () in
        let clock = G.add g (E.clock ~period:1. ()) in
        let clock2 = G.add g (E.clock ~period:2. ()) in
        let sh = G.add g (C.sample_hold 1) in
        let sh2 = G.add g (C.sample_hold 1) in
        let c = G.add g (C.constant [| 1. |]) in
        G.connect_data g ~src:(c, 0) ~dst:(sh, 0);
        G.connect_data g ~src:(c, 0) ~dst:(sh2, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(sh, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(sh2, 0);
        G.connect_event g ~src:(clock2, 0) ~dst:(sh, 0);
        check_int "two listeners" 2 (List.length (G.event_listeners g clock 0)));
    test "data_links and event_links enumerate" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant [| 1. |]) in
        let s = G.add g (C.sample_hold 1) in
        let clock = G.add g (E.clock ~period:1. ()) in
        G.connect_data g ~src:(c, 0) ~dst:(s, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(s, 0);
        check_int "one data" 1 (List.length (G.data_links g));
        check_int "one event" 1 (List.length (G.event_links g)));
    test "dot export mentions blocks and styles" (fun () ->
        let g = G.create () in
        let c = G.add g (C.constant ~name:"my_const" [| 1. |]) in
        let s = G.add g (C.sample_hold ~name:"my_sh" 1) in
        let clock = G.add g (E.clock ~period:1. ()) in
        G.connect_data g ~src:(c, 0) ~dst:(s, 0);
        G.connect_event g ~src:(clock, 0) ~dst:(s, 0);
        let dot = Dataflow.Dot.to_string g in
        check_true "has dashed event edge" (contains dot "style=dashed");
        check_true "mentions block" (contains dot "my_const"));
  ]

(* ------------------------------------------------------------------ *)
(* Block-library parameter validation *)

let clib_tests =
  [
    test "sum requires inputs" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (C.sum [||])));
    test "saturation requires lo < hi" (fun () ->
        check_raises_invalid "bounds" (fun () -> ignore (C.saturation ~lo:1. ~hi:0. ())));
    test "lti_continuous rejects discrete systems" (fun () ->
        let sysd =
          Control.Discretize.discretize ~ts:0.1 (Control.Plants.double_integrator ())
        in
        check_raises_invalid "domain" (fun () ->
            ignore (C.lti_continuous ~x0:[| 0.; 0. |] sysd)));
    test "lti_continuous checks x0 dimension" (fun () ->
        check_raises_invalid "x0" (fun () ->
            ignore (C.lti_continuous ~x0:[| 0. |] (Control.Plants.double_integrator ()))));
    test "lti_discrete rejects continuous systems" (fun () ->
        check_raises_invalid "domain" (fun () ->
            ignore (C.lti_discrete ~x0:[| 0.; 0. |] (Control.Plants.double_integrator ()))));
    test "split ports change widths" (fun () ->
        let sys = Control.Plants.quarter_car Control.Plants.default_quarter_car in
        let b = C.lti_continuous ~split_inputs:true ~split_outputs:true ~x0:(Array.make 4 0.) sys in
        check_int "2 input ports" 2 (Array.length b.B.in_widths);
        check_int "one port per output" 2 (Array.length b.B.out_widths));
    test "sample_hold initial width checked" (fun () ->
        check_raises_invalid "initial" (fun () ->
            ignore (C.sample_hold ~initial:[| 1.; 2. |] 1)));
    test "delayed_state_feedback needs n+m columns" (fun () ->
        check_raises_invalid "cols" (fun () ->
            ignore (C.delayed_state_feedback (Numerics.Matrix.of_arrays [| [| 1. |] |]))));
  ]

(* ------------------------------------------------------------------ *)
(* Eventlib parameter validation *)

let eventlib_tests =
  [
    test "clock requires positive period" (fun () ->
        check_raises_invalid "period" (fun () -> ignore (E.clock ~period:0. ())));
    test "clock rejects negative offset" (fun () ->
        check_raises_invalid "offset" (fun () ->
            ignore (E.clock ~offset:(-1.) ~period:1. ())));
    test "event_delay rejects negative delay" (fun () ->
        check_raises_invalid "delay" (fun () -> ignore (E.event_delay ~delay:(-0.1) ())));
    test "event_source requires strictly increasing times" (fun () ->
        check_raises_invalid "order" (fun () -> ignore (E.event_source [| 1.; 1. |]));
        check_raises_invalid "empty" (fun () -> ignore (E.event_source [||])));
    test "event_select needs at least one channel" (fun () ->
        check_raises_invalid "channels" (fun () ->
            ignore (E.event_select ~channels:0 ~mapping:(fun _ -> 0) ())));
    test "synchronization needs at least one input" (fun () ->
        check_raises_invalid "inputs" (fun () -> ignore (E.synchronization ~inputs:0 ())));
  ]

let suites =
  [
    ("dataflow.block", block_tests);
    ("dataflow.graph", graph_tests);
    ("dataflow.clib", clib_tests);
    ("dataflow.eventlib", eventlib_tests);
  ]
