open Helpers
module M = Numerics.Matrix
module Lti = Control.Lti

let scalar_lag tau gain = Control.Plants.first_order ~tau ~gain
let dintegrator () = Control.Plants.double_integrator ()

(* ------------------------------------------------------------------ *)
(* Lti *)

let lti_tests =
  [
    test "make validates shapes" (fun () ->
        check_raises_invalid "B rows" (fun () ->
            ignore
              (Lti.make ~domain:Lti.Continuous ~a:(M.identity 2) ~b:(M.zeros 3 1)
                 ~c:(M.zeros 1 2) ~d:(M.zeros 1 1))));
    test "make rejects non-positive ts" (fun () ->
        check_raises_invalid "ts" (fun () ->
            ignore
              (Lti.make ~domain:(Lti.Discrete 0.) ~a:(M.identity 1) ~b:(M.identity 1)
                 ~c:(M.identity 1) ~d:(M.zeros 1 1))));
    test "dims" (fun () ->
        let sys = dintegrator () in
        check_int "n" 2 (Lti.state_dim sys);
        check_int "m" 1 (Lti.input_dim sys);
        check_int "p" 1 (Lti.output_dim sys));
    test "output and deriv" (fun () ->
        let sys = dintegrator () in
        check_vec "y = pos" [| 3. |] (Lti.output sys [| 3.; 4. |] [| 0. |]);
        check_vec "dx" [| 4.; 2. |] (Lti.deriv sys [| 3.; 4. |] [| 2. |]));
    test "step_discrete on continuous raises" (fun () ->
        check_raises_invalid "domain" (fun () ->
            ignore (Lti.step_discrete (dintegrator ()) [| 0.; 0. |] [| 0. |])));
    test "stability checks" (fun () ->
        check_true "lag stable" (Lti.is_stable (scalar_lag 1. 1.));
        check_false "integrator not strictly stable" (Lti.is_stable (dintegrator ())));
    test "poles of lag at -1/tau" (fun () ->
        match Lti.poles (scalar_lag 2. 1.) with
        | [ z ] -> check_float ~eps:1e-9 "pole" (-0.5) z.Complex.re
        | _ -> Alcotest.fail "expected one pole");
    test "controllability of double integrator" (fun () ->
        check_true "controllable" (Lti.is_controllable (dintegrator ()));
        check_true "observable" (Lti.is_observable (dintegrator ())));
    test "uncontrollable system detected" (fun () ->
        (* second state unreachable *)
        let sys =
          Lti.make ~domain:Lti.Continuous
            ~a:(M.of_arrays [| [| -1.; 0. |]; [| 0.; -2. |] |])
            ~b:(M.of_arrays [| [| 1. |]; [| 0. |] |])
            ~c:(M.of_arrays [| [| 1.; 1. |] |])
            ~d:(M.zeros 1 1)
        in
        check_false "uncontrollable" (Lti.is_controllable sys));
    test "series composes dimensions" (fun () ->
        let g = scalar_lag 1. 2. and h = scalar_lag 0.5 3. in
        let s = Lti.series g h in
        check_int "states add" 2 (Lti.state_dim s);
        (* DC gain of the series is the product *)
        let dc sys =
          let neg_a_inv = Numerics.Linalg.inv (M.neg sys.Lti.a) in
          M.get (M.mul (M.mul sys.Lti.c neg_a_inv) sys.Lti.b) 0 0
        in
        check_float ~eps:1e-9 "dc product" 6. (dc s));
    test "series domain mismatch raises" (fun () ->
        let g = scalar_lag 1. 1. in
        let h = Control.Discretize.discretize ~ts:0.1 (scalar_lag 1. 1.) in
        check_raises_invalid "domain" (fun () -> ignore (Lti.series g h)));
    test "feedback_gain closes loop" (fun () ->
        let sys = dintegrator () in
        let k = M.of_arrays [| [| 2.; 3. |] |] in
        let cl = Lti.feedback_gain sys k in
        check_true "stabilised" (Numerics.Linalg.is_stable_continuous cl.Lti.a));
    test "rhs drives ODE" (fun () ->
        let sys = scalar_lag 1. 1. in
        let rhs = Lti.rhs sys ~u:(fun _ -> [| 1. |]) in
        let xf = Numerics.Ode.integrate rhs ~t0:0. ~t1:5. [| 0. |] in
        (* settles near DC gain 1 *)
        check_float ~eps:0.01 "settles" 1. xf.(0));
  ]

(* ------------------------------------------------------------------ *)
(* Discretize *)

let discretize_tests =
  [
    test "zoh of first order matches analytic" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.2 (scalar_lag 1. 1.) in
        check_float ~eps:1e-12 "Ad" (Float.exp (-0.2)) (M.get sysd.Lti.a 0 0);
        check_float ~eps:1e-12 "Bd" (1. -. Float.exp (-0.2)) (M.get sysd.Lti.b 0 0));
    test "zoh preserves DC gain" (fun () ->
        let sys = scalar_lag 2. 5. in
        let sysd = Control.Discretize.discretize ~ts:0.1 sys in
        (* discrete DC: C(I-Ad)^-1 Bd + D *)
        let gain =
          M.get sysd.Lti.b 0 0 /. (1. -. M.get sysd.Lti.a 0 0)
        in
        check_float ~eps:1e-9 "dc" 5. gain);
    test "tustin maps stable to stable" (fun () ->
        let sysd =
          Control.Discretize.discretize ~scheme:Control.Discretize.Tustin ~ts:0.5
            (scalar_lag 0.3 1.)
        in
        check_true "stable" (Lti.is_stable sysd));
    test "forward euler can destabilise stiff systems" (fun () ->
        (* pole -50 with h = 0.1: 1 + h·a = -4 → unstable *)
        let sysd =
          Control.Discretize.discretize ~scheme:Control.Discretize.Forward_euler ~ts:0.1
            (scalar_lag 0.02 1.)
        in
        check_false "unstable" (Lti.is_stable sysd));
    test "backward euler keeps stiff systems stable" (fun () ->
        let sysd =
          Control.Discretize.discretize ~scheme:Control.Discretize.Backward_euler ~ts:0.1
            (scalar_lag 0.02 1.)
        in
        check_true "stable" (Lti.is_stable sysd));
    test "discretizing a discrete system raises" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (scalar_lag 1. 1.) in
        check_raises_invalid "twice" (fun () ->
            ignore (Control.Discretize.discretize ~ts:0.1 sysd)));
    test "zoh_with_delay dimensions" (fun () ->
        let aug = Control.Discretize.zoh_with_delay ~ts:0.1 ~delay:0.04 (dintegrator ()) in
        check_int "n+m" 3 (Lti.state_dim aug);
        check_int "m" 1 (Lti.input_dim aug));
    test "zoh_with_delay zero delay matches plain zoh" (fun () ->
        let sys = scalar_lag 1. 1. in
        let plain = Control.Discretize.discretize ~ts:0.1 sys in
        let aug = Control.Discretize.zoh_with_delay ~ts:0.1 ~delay:0. sys in
        check_float ~eps:1e-12 "Ad" (M.get plain.Lti.a 0 0) (M.get aug.Lti.a 0 0);
        (* Γ1 block must vanish *)
        check_float ~eps:1e-12 "no delayed input" 0. (M.get aug.Lti.a 0 1);
        check_float ~eps:1e-12 "Bd" (M.get plain.Lti.b 0 0) (M.get aug.Lti.b 0 0));
    test "zoh_with_delay full-period delay shifts all input" (fun () ->
        let sys = scalar_lag 1. 1. in
        let aug = Control.Discretize.zoh_with_delay ~ts:0.1 ~delay:0.1 sys in
        (* all influence through u_prev: direct Bd block ~ 0 *)
        check_float ~eps:1e-12 "direct zero" 0. (M.get aug.Lti.b 0 0);
        check_true "delayed path nonzero" (Float.abs (M.get aug.Lti.a 0 1) > 1e-6));
    test "zoh_with_delay split sums to plain Bd" (fun () ->
        (* Γ0 + Γ1 must equal the undelayed Bd for any split *)
        let sys = dintegrator () in
        let plain = Control.Discretize.discretize ~ts:0.1 sys in
        let aug = Control.Discretize.zoh_with_delay ~ts:0.1 ~delay:0.03 sys in
        let gamma0 = M.block aug.Lti.b 0 0 2 1 in
        let gamma1 = M.block aug.Lti.a 0 2 2 1 in
        check_mat ~eps:1e-10 "split" plain.Lti.b (M.add gamma0 gamma1));
    test "zoh_with_delay rejects delay beyond period" (fun () ->
        check_raises_invalid "delay" (fun () ->
            ignore (Control.Discretize.zoh_with_delay ~ts:0.1 ~delay:0.2 (scalar_lag 1. 1.))));
  ]

(* ------------------------------------------------------------------ *)
(* Pid *)

let pid_tests =
  let gains = { Control.Pid.kp = 2.; ki = 1.; kd = 0.1 } in
  [
    test "proportional action" (fun () ->
        let c = Control.Pid.create ~gains:{ gains with ki = 0.; kd = 0. } ~ts:0.1 () in
        check_float "P only" 2. (Control.Pid.step c ~r:1. ~y:0.));
    test "integral accumulates" (fun () ->
        let c = Control.Pid.create ~gains:{ Control.Pid.kp = 0.; ki = 1.; kd = 0. } ~ts:0.5 () in
        check_float "first" 0.5 (Control.Pid.step c ~r:1. ~y:0.);
        check_float "second" 1.0 (Control.Pid.step c ~r:1. ~y:0.));
    test "no derivative kick on first step" (fun () ->
        let c =
          Control.Pid.create
            ~gains:{ Control.Pid.kp = 0.; ki = 0.; kd = 1. }
            ~derivative_filter:0. ~ts:0.1 ()
        in
        check_float "no kick" 0. (Control.Pid.step c ~r:1. ~y:0.);
        (* second step: error unchanged → derivative 0 *)
        check_float "still flat" 0. (Control.Pid.step c ~r:1. ~y:0.));
    test "derivative reacts to error change" (fun () ->
        let c =
          Control.Pid.create
            ~gains:{ Control.Pid.kp = 0.; ki = 0.; kd = 1. }
            ~derivative_filter:0. ~ts:0.1 ()
        in
        ignore (Control.Pid.step c ~r:0. ~y:0.);
        check_float ~eps:1e-9 "de/dt" 10. (Control.Pid.step c ~r:1. ~y:0.));
    test "output clamping" (fun () ->
        let c = Control.Pid.create ~umin:(-1.) ~umax:1. ~gains ~ts:0.1 () in
        check_float "clamped" 1. (Control.Pid.step c ~r:10. ~y:0.));
    test "anti-windup bounds the integral" (fun () ->
        let c =
          Control.Pid.create ~windup:0.5
            ~gains:{ Control.Pid.kp = 0.; ki = 1.; kd = 0. }
            ~ts:1. ()
        in
        for _ = 1 to 10 do
          ignore (Control.Pid.step c ~r:10. ~y:0.)
        done;
        check_float "bounded" 0.5 (Control.Pid.step c ~r:0. ~y:0.));
    test "reset clears state" (fun () ->
        let c = Control.Pid.create ~gains ~ts:0.1 () in
        ignore (Control.Pid.step c ~r:1. ~y:0.);
        Control.Pid.reset c;
        let fresh = Control.Pid.create ~gains ~ts:0.1 () in
        check_float "same as fresh" (Control.Pid.step fresh ~r:1. ~y:0.)
          (Control.Pid.step c ~r:1. ~y:0.));
    test "copy starts clean" (fun () ->
        let c = Control.Pid.create ~gains ~ts:0.1 () in
        ignore (Control.Pid.step c ~r:5. ~y:0.);
        let c2 = Control.Pid.copy c in
        let fresh = Control.Pid.create ~gains ~ts:0.1 () in
        check_float "clean copy" (Control.Pid.step fresh ~r:1. ~y:0.)
          (Control.Pid.step c2 ~r:1. ~y:0.));
    test "to_tf matches the block arithmetic frequency-wise" (fun () ->
        (* drive the PID step function with a sinusoidal error and
           compare the steady-state gain with |C(e^{jwT})| *)
        let ts = 0.05 in
        let g = { Control.Pid.kp = 3.; ki = 10.; kd = 0.2 } in
        let tf = Control.Pid.to_tf g ~ts in
        let sys = Control.Tf.to_ss ~domain:(Control.Lti.Discrete ts) tf in
        let w = 8. in
        let predicted = Complex.norm (Control.Freq.response sys w) in
        let c = Control.Pid.create ~gains:g ~ts () in
        let n = 4000 in
        let out = Array.make n 0. in
        for k = 0 to n - 1 do
          let e = sin (w *. float_of_int k *. ts) in
          out.(k) <- Control.Pid.step c ~r:e ~y:0.
        done;
        (* the integrator pole keeps a constant offset (the discrete
           sum of a sinusoid is not zero-mean), so measure the
           oscillation amplitude around the tail mean *)
        let tail = Array.sub out (n / 2) (n / 2) in
        let amp = (Numerics.Stats.max tail -. Numerics.Stats.min tail) /. 2. in
        check_float ~eps:(0.02 *. predicted) "amplitude" predicted amp);
    test "to_tf of pure P is a constant" (fun () ->
        let tf = Control.Pid.to_tf { Control.Pid.kp = 7.; ki = 0.; kd = 0. } ~ts:0.1 in
        check_float ~eps:1e-12 "dc" 7. (Control.Tf.dc_gain tf));
    test "to_tf with integral action has infinite DC gain" (fun () ->
        let tf = Control.Pid.to_tf { Control.Pid.kp = 1.; ki = 2.; kd = 0. } ~ts:0.1 in
        let sys = Control.Tf.to_ss ~domain:(Control.Lti.Discrete 0.1) tf in
        (* |C| at very low frequency is huge *)
        check_true "integrating" (Complex.norm (Control.Freq.response sys 1e-4) > 1e3));
    test "ziegler-nichols formulas" (fun () ->
        let g = Control.Pid.ziegler_nichols ~ku:10. ~tu:2. in
        check_float "kp" 6. g.Control.Pid.kp;
        check_float "ki" 6. g.Control.Pid.ki;
        check_float "kd" 1.5 g.Control.Pid.kd);
    test "create rejects bad parameters" (fun () ->
        check_raises_invalid "ts" (fun () ->
            ignore (Control.Pid.create ~gains ~ts:0. ()));
        check_raises_invalid "filter" (fun () ->
            ignore (Control.Pid.create ~derivative_filter:1. ~gains ~ts:0.1 ()));
        check_raises_invalid "umin>=umax" (fun () ->
            ignore (Control.Pid.create ~umin:1. ~umax:1. ~gains ~ts:0.1 ())));
  ]

(* ------------------------------------------------------------------ *)
(* Lqr / Place / Kalman *)

let synthesis_tests =
  [
    test "dlqr stabilises the double integrator" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (dintegrator ()) in
        let res = Control.Lqr.dlqr_sys ~q:(M.identity 2) ~r:(M.identity 1) sysd in
        let cl = Control.Lqr.closed_loop sysd res in
        check_true "Schur stable" (Numerics.Linalg.is_stable_discrete cl.Lti.a));
    test "dlqr solution satisfies the Riccati equation" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (dintegrator ()) in
        let q = M.identity 2 and r = M.identity 1 in
        let res = Control.Lqr.dlqr_sys ~q ~r sysd in
        let a = sysd.Lti.a and b = sysd.Lti.b in
        let p = res.Control.Lqr.p and k = res.Control.Lqr.k in
        let rhs = M.add q (M.mul (M.mul (M.transpose a) p) (M.sub a (M.mul b k))) in
        check_mat ~eps:1e-7 "fixpoint" p rhs);
    test "scalar dlqr matches closed form" (fun () ->
        (* x+ = a x + b u, a=1, b=1, q=1, r=1:
           P = (1 + sqrt(5))/2 satisfies P = 1 + P - P²/(1+P) *)
        let sys =
          Lti.make ~domain:(Lti.Discrete 1.) ~a:(M.identity 1) ~b:(M.identity 1)
            ~c:(M.identity 1) ~d:(M.zeros 1 1)
        in
        let res = Control.Lqr.dlqr_sys ~q:(M.identity 1) ~r:(M.identity 1) sys in
        let phi = (1. +. sqrt 5.) /. 2. in
        check_float ~eps:1e-8 "golden ratio" phi (M.get res.Control.Lqr.p 0 0));
    test "dlqr on continuous system raises" (fun () ->
        check_raises_invalid "domain" (fun () ->
            ignore
              (Control.Lqr.dlqr_sys ~q:(M.identity 2) ~r:(M.identity 1) (dintegrator ()))));
    test "quadratic_cost accumulates" (fun () ->
        let q = M.identity 1 and r = M.identity 1 in
        let cost =
          Control.Lqr.quadratic_cost ~q ~r
            ~states:[| [| 1. |]; [| 2. |] |]
            ~inputs:[| [| 1. |]; [| 0. |] |]
        in
        check_float "1+1+4+0" 6. cost);
    test "ackermann places poles" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (dintegrator ()) in
        let k = Control.Place.place_sys sysd ~poles:[| 0.5; 0.6 |] in
        let cl = M.sub sysd.Lti.a (M.mul sysd.Lti.b k) in
        let eigs =
          List.sort compare (List.map (fun z -> z.Complex.re) (Numerics.Linalg.eigenvalues cl))
        in
        (match eigs with
        | [ a; b ] ->
            check_float ~eps:1e-6 "pole 1" 0.5 a;
            check_float ~eps:1e-6 "pole 2" 0.6 b
        | _ -> Alcotest.fail "expected 2 poles"));
    test "ackermann deadbeat control" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (dintegrator ()) in
        let k = Control.Place.place_sys sysd ~poles:[| 0.; 0. |] in
        let cl = M.sub sysd.Lti.a (M.mul sysd.Lti.b k) in
        (* A - BK nilpotent: (A-BK)² = 0 *)
        check_mat ~eps:1e-8 "nilpotent" (M.zeros 2 2) (M.mul cl cl));
    test "kalman gain stabilises the error dynamics" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (dintegrator ()) in
        let res =
          Control.Kalman.dkalman ~a:sysd.Lti.a ~c:sysd.Lti.c
            ~qn:(M.scale 0.01 (M.identity 2))
            ~rn:(M.scale 0.1 (M.identity 1))
            ()
        in
        let err = M.sub sysd.Lti.a (M.mul res.Control.Kalman.l sysd.Lti.c) in
        check_true "estimator stable" (Numerics.Linalg.is_stable_discrete err));
    test "observer converges to the true state" (fun () ->
        let sysd = Control.Discretize.discretize ~ts:0.1 (dintegrator ()) in
        let res =
          Control.Kalman.dkalman ~a:sysd.Lti.a ~c:sysd.Lti.c
            ~qn:(M.scale 0.01 (M.identity 2))
            ~rn:(M.scale 0.01 (M.identity 1))
            ()
        in
        let obs = Control.Kalman.observer sysd res in
        (* simulate true system from x0=[1;0] with u=0, feed outputs *)
        let x = ref [| 1.; 0.5 |] in
        for _ = 1 to 300 do
          let y = Lti.output sysd !x [| 0. |] in
          ignore (Control.Kalman.update obs ~u:[| 0. |] ~y);
          x := Lti.step_discrete sysd !x [| 0. |]
        done;
        let err = Numerics.Vec.dist2 (Control.Kalman.estimate obs) !x in
        check_true "converged" (err < 1e-3));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_tests =
  let ramp = Control.Metrics.of_arrays [| 0.; 1.; 2. |] [| 0.; 1.; 2. |] in
  [
    test "of_arrays validates" (fun () ->
        check_raises_invalid "lengths" (fun () ->
            ignore (Control.Metrics.of_arrays [| 0. |] [| 1.; 2. |]));
        check_raises_invalid "sorted" (fun () ->
            ignore (Control.Metrics.of_arrays [| 1.; 0. |] [| 1.; 2. |])));
    test "iae of ramp (trapezoid)" (fun () ->
        (* ∫|t| over [0,2] = 2 *)
        check_float "iae" 2. (Control.Metrics.iae ramp));
    test "ise of ramp" (fun () ->
        (* trapezoid of t²: (0+1)/2 + (1+4)/2 = 3 *)
        check_float "ise" 3. (Control.Metrics.ise ramp));
    test "itae weights later error more" (fun () ->
        check_true "itae > iae" (Control.Metrics.itae ramp > Control.Metrics.iae ramp));
    test "iae against reference" (fun () ->
        let flat = Control.Metrics.of_arrays [| 0.; 1. |] [| 1.; 1. |] in
        check_float "iae" 0. (Control.Metrics.iae ~reference:1. flat));
    test "overshoot fraction" (fun () ->
        let tr = Control.Metrics.of_arrays [| 0.; 1.; 2. |] [| 0.; 1.3; 1.0 |] in
        check_float ~eps:1e-9 "30%" 0.3 (Control.Metrics.overshoot ~reference:1. tr));
    test "overshoot never negative" (fun () ->
        let tr = Control.Metrics.of_arrays [| 0.; 1. |] [| 0.; 0.5 |] in
        check_float "0" 0. (Control.Metrics.overshoot ~reference:1. tr));
    test "settling time at last departure" (fun () ->
        let tr =
          Control.Metrics.of_arrays [| 0.; 1.; 2.; 3.; 4. |] [| 0.; 1.5; 0.99; 1.01; 1. |]
        in
        check_true "settles at 2"
          (Control.Metrics.settling_time ~reference:1. tr = Some 2.));
    test "settling time none when oscillating" (fun () ->
        let tr = Control.Metrics.of_arrays [| 0.; 1.; 2. |] [| 0.; 2.; 0. |] in
        check_true "never" (Control.Metrics.settling_time ~reference:1. tr = None));
    test "rise time 10-90" (fun () ->
        let tr =
          Control.Metrics.of_arrays [| 0.; 1.; 2.; 3. |] [| 0.; 0.1; 0.9; 1.0 |]
        in
        check_true "1 to 2" (Control.Metrics.rise_time ~reference:1. tr = Some 1.));
    test "steady_state_error windowed" (fun () ->
        let tr = Control.Metrics.of_arrays [| 0.; 1.; 2. |] [| 0.; 0.9; 0.9 |] in
        check_float ~eps:1e-9 "sse" 0.1
          (Control.Metrics.steady_state_error ~reference:1. ~window:2 tr));
    test "degradation_pct" (fun () ->
        check_float "50%" 50. (Control.Metrics.degradation_pct ~ideal:2. ~actual:3.);
        check_float "0 on equal" 0. (Control.Metrics.degradation_pct ~ideal:0. ~actual:0.);
        check_true "inf" (Control.Metrics.degradation_pct ~ideal:0. ~actual:1. = Float.infinity));
  ]

(* ------------------------------------------------------------------ *)
(* Plants and Tf *)

let plants_tests =
  [
    test "dc motor is stable and controllable" (fun () ->
        let sys = Control.Plants.dc_motor Control.Plants.default_dc_motor in
        check_true "stable" (Lti.is_stable sys);
        check_true "controllable" (Lti.is_controllable sys));
    test "pendulum linearisation is unstable" (fun () ->
        let sys = Control.Plants.pendulum_linear Control.Plants.default_pendulum in
        check_false "unstable upright" (Lti.is_stable sys);
        check_int "4 states" 4 (Lti.state_dim sys));
    test "pendulum nonlinear falls from small tilt" (fun () ->
        let p = Control.Plants.default_pendulum in
        let rhs = Control.Plants.pendulum_rhs p ~u:(fun _ -> 0.) in
        let xf = Numerics.Ode.integrate rhs ~t0:0. ~t1:1.5 [| 0.; 0.; 0.05; 0. |] in
        check_true "angle grew" (Float.abs xf.(2) > 0.3));
    test "pendulum nonlinear matches linear for tiny angles" (fun () ->
        let p = Control.Plants.default_pendulum in
        let lin = Control.Plants.pendulum_linear p in
        let rhs_nl = Control.Plants.pendulum_rhs p ~u:(fun _ -> 0.) in
        let x0 = [| 0.; 0.; 1e-4; 0. |] in
        let nl = Numerics.Ode.integrate rhs_nl ~t0:0. ~t1:0.2 x0 in
        let li =
          Numerics.Ode.integrate (Lti.rhs lin ~u:(fun _ -> [| 0. |])) ~t0:0. ~t1:0.2 x0
        in
        (* the two linearisation conventions differ by the 4/3 inertia
           factor; directions must agree and magnitudes be close *)
        check_true "same sign" (nl.(2) *. li.(2) > 0.);
        check_true "same order" (Float.abs (nl.(2) -. li.(2)) < 0.5 *. Float.abs nl.(2)));
    test "quarter car dimensions and stability" (fun () ->
        let sys = Control.Plants.quarter_car Control.Plants.default_quarter_car in
        check_int "states" 4 (Lti.state_dim sys);
        check_int "inputs" 2 (Lti.input_dim sys);
        check_true "stable" (Lti.is_stable sys));
    test "mass-spring-damper poles" (fun () ->
        (* m=1, k=4, c=0: poles ±2i *)
        let sys = Control.Plants.mass_spring_damper ~m:1. ~k:4. ~c:0. in
        List.iter
          (fun z -> check_float ~eps:1e-6 "modulus 2" 2. (Complex.norm z))
          (Lti.poles sys));
    test "first_order requires positive tau" (fun () ->
        check_raises_invalid "tau" (fun () ->
            ignore (Control.Plants.first_order ~tau:0. ~gain:1.)));
    test "thermal plant: stable, slow envelope, DC gain 1/k_loss" (fun () ->
        let p = Control.Plants.default_thermal in
        let sys = Control.Plants.thermal p in
        check_true "stable" (Lti.is_stable sys);
        (* steady state under power P: envelope temp P/k_loss *)
        let r = Control.Response.step ~amplitude:100. ~t_end:2000. ~dt:10. sys in
        let last = r.Control.Response.outputs.(Array.length r.Control.Response.times - 1) in
        check_float ~eps:0.2 "dc" (100. /. p.Control.Plants.k_loss) last.(0));
    test "cruise plant: drag-limited terminal speed" (fun () ->
        let p = Control.Plants.default_cruise in
        let sys = Control.Plants.cruise p in
        check_int "force + grade inputs" 2 (Lti.input_dim sys);
        check_true "stable" (Lti.is_stable sys);
        let r =
          Control.Response.lsim ~u:(fun _ -> [| 600.; 0. |]) ~t_end:200. ~dt:0.5 sys
        in
        let last = r.Control.Response.outputs.(Array.length r.Control.Response.times - 1) in
        check_float ~eps:0.05 "terminal v = F/drag" (600. /. p.Control.Plants.drag) last.(0));
    test "tf second order dc gain is 1" (fun () ->
        let tf = Control.Tf.second_order ~wn:2. ~zeta:0.7 in
        check_float ~eps:1e-12 "dc" 1. (Control.Tf.dc_gain tf));
    test "tf to_ss poles match" (fun () ->
        let tf = Control.Tf.make ~num:[| 1. |] ~den:[| 2.; 3.; 1. |] in
        let sys = Control.Tf.to_ss ~domain:Lti.Continuous tf in
        let ss_poles =
          List.sort compare (List.map (fun z -> z.Complex.re) (Lti.poles sys))
        in
        let tf_poles =
          List.sort compare (List.map (fun z -> z.Complex.re) (Control.Tf.poles tf))
        in
        List.iter2 (fun a b -> check_float ~eps:1e-6 "pole" a b) tf_poles ss_poles);
    test "tf improper raises" (fun () ->
        check_raises_invalid "improper" (fun () ->
            ignore (Control.Tf.make ~num:[| 1.; 1.; 1. |] ~den:[| 1.; 1. |])));
    test "tf with direct term realises D" (fun () ->
        (* (s+2)/(s+1) = 1 + 1/(s+1) *)
        let tf = Control.Tf.make ~num:[| 2.; 1. |] ~den:[| 1.; 1. |] in
        let sys = Control.Tf.to_ss ~domain:Lti.Continuous tf in
        check_float ~eps:1e-12 "D" 1. (M.get sys.Lti.d 0 0));
    test "tf integrator dc gain infinite" (fun () ->
        let tf = Control.Tf.make ~num:[| 1. |] ~den:[| 0.; 1. |] in
        check_true "inf" (Control.Tf.dc_gain tf = Float.infinity));
    test "tf series multiplies DC gains" (fun () ->
        let g = Control.Tf.make ~num:[| 2. |] ~den:[| 1.; 1. |] in
        let h = Control.Tf.make ~num:[| 3. |] ~den:[| 1.; 0.5 |] in
        check_float ~eps:1e-12 "dc" 6. (Control.Tf.dc_gain (Control.Tf.mul g h)));
    test "tf parallel adds DC gains" (fun () ->
        let g = Control.Tf.make ~num:[| 2. |] ~den:[| 1.; 1. |] in
        let h = Control.Tf.make ~num:[| 3. |] ~den:[| 1.; 0.5 |] in
        check_float ~eps:1e-12 "dc" 5. (Control.Tf.dc_gain (Control.Tf.add g h)));
    test "unity feedback of k/s has dc gain 1" (fun () ->
        (* k/s with unity negative feedback: k/(s+k) *)
        let g = Control.Tf.make ~num:[| 5. |] ~den:[| 0.; 1. |] in
        let cl = Control.Tf.feedback g Control.Tf.unity in
        check_float ~eps:1e-12 "dc" 1. (Control.Tf.dc_gain cl);
        match Control.Tf.poles cl with
        | [ p ] -> check_float ~eps:1e-8 "pole at -k" (-5.) p.Complex.re
        | _ -> Alcotest.fail "expected one pole");
    test "closed-loop tf matches state-space feedback poles" (fun () ->
        (* C(z)·G(z) closed loop via Tf algebra equals Lti feedback *)
        let ts = 0.1 in
        let plant = Control.Plants.first_order ~tau:0.5 ~gain:2. in
        let plant_d = Control.Discretize.discretize ~ts plant in
        let a0 = M.get plant_d.Lti.a 0 0 and b0 = M.get plant_d.Lti.b 0 0 in
        (* G(z) = b0/(z - a0), proportional control k = 0.4 *)
        let g = Control.Tf.make ~num:[| b0 |] ~den:[| -.a0; 1. |] in
        let k = 0.4 in
        let cl = Control.Tf.feedback (Control.Tf.scale k g) Control.Tf.unity in
        match Control.Tf.poles cl with
        | [ p ] -> check_float ~eps:1e-9 "pole a0 - k b0" (a0 -. (k *. b0)) p.Complex.re
        | _ -> Alcotest.fail "expected one pole");
    test "positive feedback moves the pole the other way" (fun () ->
        let g = Control.Tf.make ~num:[| 1. |] ~den:[| 1.; 1. |] in
        let neg = Control.Tf.feedback g (Control.Tf.scale 0.5 Control.Tf.unity) in
        let pos = Control.Tf.feedback ~sign:`Pos g (Control.Tf.scale 0.5 Control.Tf.unity) in
        let pole tf =
          match Control.Tf.poles tf with
          | [ p ] -> p.Complex.re
          | _ -> Alcotest.fail "expected one pole"
        in
        check_float ~eps:1e-9 "neg" (-1.5) (pole neg);
        check_float ~eps:1e-9 "pos" (-0.5) (pole pos));
  ]

let interp_tests =
  [
    test "linear interpolation between breakpoints" (fun () ->
        let t = Numerics.Interp.make ~xs:[| 0.; 1.; 3. |] ~ys:[| 0.; 10.; 30. |] in
        check_float ~eps:1e-12 "mid" 5. (Numerics.Interp.eval t 0.5);
        check_float ~eps:1e-12 "second segment" 20. (Numerics.Interp.eval t 2.));
    test "clamping outside the domain" (fun () ->
        let t = Numerics.Interp.make ~xs:[| 0.; 1. |] ~ys:[| 2.; 4. |] in
        check_float "below" 2. (Numerics.Interp.eval t (-5.));
        check_float "above" 4. (Numerics.Interp.eval t 99.));
    test "linear extrapolation variant" (fun () ->
        let t = Numerics.Interp.make ~xs:[| 0.; 1. |] ~ys:[| 0.; 2. |] in
        check_float ~eps:1e-12 "extrapolated" 4. (Numerics.Interp.eval_extrapolate t 2.));
    test "of_function samples accurately for linear functions" (fun () ->
        let t = Numerics.Interp.of_function (fun x -> (3. *. x) +. 1.) ~lo:0. ~hi:2. in
        check_float ~eps:1e-9 "exact on linear" 4. (Numerics.Interp.eval t 1.));
    test "validation" (fun () ->
        check_raises_invalid "sorted" (fun () ->
            ignore (Numerics.Interp.make ~xs:[| 1.; 0. |] ~ys:[| 0.; 1. |]));
        check_raises_invalid "short" (fun () ->
            ignore (Numerics.Interp.make ~xs:[| 1. |] ~ys:[| 0. |])));
    test "lookup_table block applies the map" (fun () ->
        let module G = Dataflow.Graph in
        let g = G.create () in
        let src = G.add g (Dataflow.Clib.constant [| 0.5 |]) in
        let table =
          Dataflow.Clib.lookup_table
            (Numerics.Interp.make ~xs:[| 0.; 1. |] ~ys:[| 0.; 8. |])
        in
        let lut = G.add g table in
        G.connect_data g ~src:(src, 0) ~dst:(lut, 0);
        let e = Sim.Engine.create g in
        Sim.Engine.add_probe e ~name:"y" ~block:lut ~port:0;
        Sim.Engine.run ~t_end:0.1 e;
        match Sim.Trace.last (Sim.Engine.probe e "y") with
        | Some (_, v) -> check_float ~eps:1e-12 "mapped" 4. v.(0)
        | None -> Alcotest.fail "no samples");
  ]

let response_tests =
  [
    test "continuous step response of a lag settles at the DC gain" (fun () ->
        let sys = Control.Plants.first_order ~tau:0.5 ~gain:3. in
        let r = Control.Response.step ~t_end:5. sys in
        let last = r.Control.Response.outputs.(Array.length r.Control.Response.times - 1) in
        check_float ~eps:1e-3 "settles at 3" 3. last.(0));
    test "time constant visible in the step response" (fun () ->
        let sys = Control.Plants.first_order ~tau:1. ~gain:1. in
        let r = Control.Response.step ~t_end:5. ~dt:0.01 sys in
        (* y(1) = 1 - e^{-1} *)
        let idx = 100 in
        check_float ~eps:1e-4 "y(tau)" (1. -. Float.exp (-1.))
          r.Control.Response.outputs.(idx).(0));
    test "discrete step response stepped exactly" (fun () ->
        let sysd =
          Control.Discretize.discretize ~ts:0.5 (Control.Plants.first_order ~tau:1. ~gain:1.)
        in
        let r = Control.Response.step ~t_end:2. sysd in
        check_int "5 samples at Ts = 0.5" 5 (Array.length r.Control.Response.times);
        (* x1 = Bd·1 = 1 - e^{-0.5}; output at k=1 *)
        check_float ~eps:1e-12 "exact recurrence" (1. -. Float.exp (-0.5))
          r.Control.Response.outputs.(1).(0));
    test "continuous impulse response equals e^{At}B" (fun () ->
        let sys = Control.Plants.first_order ~tau:1. ~gain:1. in
        let r = Control.Response.impulse ~t_end:1. ~dt:0.5 sys in
        (* g(t) = e^{-t} for 1/(s+1) *)
        check_float ~eps:1e-6 "g(0.5)" (Float.exp (-0.5)) r.Control.Response.outputs.(1).(0));
    test "initial response decays for stable systems" (fun () ->
        let sys = Control.Plants.dc_motor Control.Plants.default_dc_motor in
        let r = Control.Response.initial ~x0:[| 1.; 0. |] ~t_end:5. sys in
        let last = r.Control.Response.outputs.(Array.length r.Control.Response.times - 1) in
        check_true "decayed" (Float.abs last.(0) < 1e-3));
    test "lsim with sinusoid matches the frequency response amplitude" (fun () ->
        let sys = Control.Plants.first_order ~tau:1. ~gain:1. in
        let w = 2. in
        let r =
          Control.Response.lsim ~u:(fun t -> [| sin (w *. t) |]) ~t_end:20. ~dt:0.01 sys
        in
        (* steady-state amplitude = |G(jw)| *)
        let tail =
          Array.of_list
            (List.filteri (fun i _ -> i > 1500) (Array.to_list r.Control.Response.outputs))
        in
        let amp =
          Array.fold_left (fun acc y -> Float.max acc (Float.abs y.(0))) 0. tail
        in
        check_float ~eps:2e-3 "amplitude" (Complex.norm (Control.Freq.response sys w)) amp);
    test "step_info extracts the classic step metrics" (fun () ->
        let tf = Control.Tf.second_order ~wn:2. ~zeta:0.3 in
        let sys = Control.Tf.to_ss ~domain:Control.Lti.Continuous tf in
        let r = Control.Response.step ~t_end:15. ~dt:0.005 sys in
        let settling, overshoot, rise = Control.Response.step_info r in
        check_true "settles" (settling <> None);
        (* overshoot of a 2nd-order system: exp(-pi·z/sqrt(1-z²)) *)
        let z = 0.3 in
        let expected = Float.exp (-.Float.pi *. z /. sqrt (1. -. (z *. z))) in
        check_float ~eps:5e-3 "overshoot" expected overshoot;
        check_true "rise measured" (rise <> None));
    test "lsim rejects bad arguments" (fun () ->
        let sys = Control.Plants.first_order ~tau:1. ~gain:1. in
        check_raises_invalid "horizon" (fun () ->
            ignore (Control.Response.lsim ~u:(fun _ -> [| 0. |]) ~t_end:0. sys));
        check_raises_invalid "x0" (fun () ->
            ignore
              (Control.Response.lsim ~x0:[| 0.; 0. |] ~u:(fun _ -> [| 0. |]) ~t_end:1. sys)));
  ]

let suites =
  [
    ("control.lti", lti_tests);
    ("control.response", response_tests);
    ("control.discretize", discretize_tests);
    ("control.pid", pid_tests);
    ("control.synthesis", synthesis_tests);
    ("control.metrics", metrics_tests);
    ("control.plants_tf", plants_tests);
    ("numerics.interp", interp_tests);
  ]
