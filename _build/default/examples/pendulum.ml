(* Inverted pendulum with a *conditioned* control law (paper §3.2.2,
   Fig. 5).

   The controller has two modes selected by the measured pole angle:
     mode 0 ("balance") — a gentle LQR gain, cheap to compute;
     mode 1 ("catch")   — an aggressive recovery gain that runs a much
                          more expensive computation.
   The co-simulated plant is the full *nonlinear* cart-pole (the
   linear model is used only for gain synthesis), so the catch mode
   genuinely has work to do.

   In the SynDEx schedule both branches are conditioned operations;
   only the branch whose condition holds executes, so actuation
   latency *jitters* between iterations depending on the mode — the
   very effect the Event Select translation of the graph of delays
   exposes at design time.

   Run with: dune exec examples/pendulum.exe *)

module M = Numerics.Matrix
module G = Dataflow.Graph
module C = Dataflow.Clib

let plant =
  let sys = Control.Plants.pendulum_linear Control.Plants.default_pendulum in
  (* expose the full state for feedback *)
  Control.Lti.make ~domain:Control.Lti.Continuous ~a:sys.Control.Lti.a
    ~b:sys.Control.Lti.b ~c:(M.identity 4) ~d:(M.zeros 4 1)

let ts = 0.02
let horizon = 4.0
let angle_threshold = 0.15 (* rad: beyond this, "catch" mode *)

let q = M.of_arrays
    [|
      [| 10.; 0.; 0.; 0. |];
      [| 0.; 1.; 0.; 0. |];
      [| 0.; 0.; 100.; 0. |];
      [| 0.; 0.; 0.; 10. |];
    |]

let k_balance = Lifecycle.Calibrate.lqr_gain ~plant ~ts ~q ~r:(M.of_arrays [| [| 1. |] |]) ()

let k_catch =
  (* cheaper on control effort: much more aggressive *)
  Lifecycle.Calibrate.lqr_gain ~plant ~ts ~q:(M.scale 50. q) ~r:(M.of_arrays [| [| 0.05 |] |]) ()

(* one gain-computation branch as an event-activated block *)
let branch_block name k =
  let held = ref 0. in
  Dataflow.Block.make ~name ~in_widths:(Array.make 4 1) ~out_widths:[| 1 |] ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      let x = Array.map (fun v -> v.(0)) ctx.Dataflow.Block.inputs in
      held := -.(M.mul_vec k x).(0);
      [])
    ~reset:(fun () -> held := 0.)
    (fun _ -> [| [| !held |] |])

(* mode computation: 1 when |angle| exceeds the threshold *)
let mode_block () =
  let held = ref 0. in
  Dataflow.Block.make ~name:"mode" ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      held := (if Float.abs ctx.Dataflow.Block.inputs.(0).(0) > angle_threshold then 1. else 0.);
      [])
    ~reset:(fun () -> held := 0.)
    (fun _ -> [| [| !held |] |])

(* merge: pick the branch output matching the current mode *)
let merge_block () =
  let held = ref 0. in
  Dataflow.Block.make ~name:"merge" ~in_widths:[| 1; 1; 1 |] ~out_widths:[| 1 |]
    ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      let mode = ctx.Dataflow.Block.inputs.(0).(0) in
      held := (if mode >= 0.5 then ctx.Dataflow.Block.inputs.(2).(0)
               else ctx.Dataflow.Block.inputs.(1).(0));
      [])
    ~reset:(fun () -> held := 0.)
    (fun _ -> [| [| !held |] |])

(* deterministic builder for the whole diagram *)
(* the co-simulated plant is the full nonlinear cart-pole; the linear
   model above is used only to design the gains *)
let nonlinear_pendulum_block () =
  let params = Control.Plants.default_pendulum in
  Dataflow.Block.make ~name:"pendulum" ~in_widths:[| 1 |] ~out_widths:(Array.make 4 1)
    ~cstate0:[| 0.; 0.; 0.45; 0. |] ~always_active:true
    ~derivatives:(fun ctx ->
      let force = ctx.Dataflow.Block.inputs.(0).(0) in
      (Control.Plants.pendulum_rhs params ~u:(fun _ -> force))
        ctx.Dataflow.Block.time ctx.Dataflow.Block.cstate)
    (fun ctx -> Array.map (fun x -> [| x |]) ctx.Dataflow.Block.cstate)

let build () =
  let g = G.create () in
  let p = G.add g (nonlinear_pendulum_block ()) in
  let samplers =
    List.init 4 (fun i ->
        let s = G.add g (C.sample_hold ~name:(Printf.sprintf "sample_x%d" i) 1) in
        G.connect_data g ~src:(p, i) ~dst:(s, 0);
        s)
  in
  let mode = G.add g (mode_block ()) in
  G.connect_data g ~src:(List.nth samplers 2, 0) ~dst:(mode, 0);
  let balance = G.add g (branch_block "balance" k_balance) in
  let catch = G.add g (branch_block "catch" k_catch) in
  List.iteri
    (fun i s ->
      G.connect_data g ~src:(s, 0) ~dst:(balance, i);
      G.connect_data g ~src:(s, 0) ~dst:(catch, i))
    samplers;
  let merge = G.add g (merge_block ()) in
  G.connect_data g ~src:(mode, 0) ~dst:(merge, 0);
  G.connect_data g ~src:(balance, 0) ~dst:(merge, 1);
  G.connect_data g ~src:(catch, 0) ~dst:(merge, 2);
  let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
  G.connect_data g ~src:(merge, 0) ~dst:(hold, 0);
  G.connect_data g ~src:(hold, 0) ~dst:(p, 0);
  let angle_probe = G.add g (C.gain ~name:"angle_probe" 1.) in
  G.connect_data g ~src:(p, 2) ~dst:(angle_probe, 0);
  let members = samplers @ [ mode; balance; catch; merge; hold ] in
  {
    Lifecycle.Design.graph = g;
    clocked = samplers @ [ mode; balance; catch; merge; hold ];
    members;
    memories = [];
    probes = [ ("angle", (angle_probe, 0)); ("u", (hold, 0)) ];
    condition_feed = Some (fun _var -> (mode, 0));
    customize_algorithm =
      Some
        (fun algorithm binding ->
          Translator.Scicos_to_syndex.declare_condition binding ~algorithm ~var:"mode"
            ~source:(mode, 0)
            ~ops:[ (balance, 0); (catch, 1) ]);
  }

let design =
  Lifecycle.Design.make ~name:"pendulum_modes" ~ts ~horizon
    ~condition_runtime:(fun ~iteration ~var:_ ->
      (* representative mode profile: catching during the first 0.6 s *)
      if float_of_int iteration *. ts < 0.6 then 1 else 0)
    ~cost:(fun e -> Control.Metrics.ise (Sim.Engine.probe_component e "angle" 0))
    build

let architecture = Aaa.Architecture.single ~proc_name:"mcu" ()

let durations () =
  let d = Aaa.Durations.create () in
  let set op wcet = Aaa.Durations.set d ~op ~operator:"mcu" wcet in
  for i = 0 to 3 do
    set (Printf.sprintf "sample_x%d" i) 0.0004
  done;
  set "mode" 0.0006;
  set "balance" 0.0012;
  (* the recovery computation is an order of magnitude heavier *)
  set "catch" 0.011;
  set "merge" 0.0004;
  set "hold_u" 0.0004;
  d

let () =
  Printf.printf "=== inverted pendulum with mode-conditioned control ===\n\n";
  let ideal = Lifecycle.Methodology.simulate_ideal design in
  Printf.printf "ideal ISE(angle) = %.6g\n" (design.Lifecycle.Design.cost ideal);
  let impl = Lifecycle.Methodology.implement ~design ~architecture ~durations:(durations ()) () in
  Printf.printf "\nschedule (both branches reserve their WCET):\n%s\n"
    (Aaa.Gantt.render impl.Lifecycle.Methodology.schedule);
  let delayed = Lifecycle.Methodology.simulate_implemented design impl in
  Printf.printf "implemented ISE(angle) = %.6g\n" (design.Lifecycle.Design.cost delayed);

  (* measure the actuation jitter induced by conditioning, first in
     the co-simulation, then on the executive machine *)
  let hold_block = List.nth (design.Lifecycle.Design.build ()).Lifecycle.Design.clocked 8 in
  let la = Translator.Cosim.measured_latencies delayed ~block:hold_block ~period:ts in
  Printf.printf "\nco-simulated actuation latency La(k): %s\n" (Numerics.Stats.summary la);
  (* drive the executive's branches with the mode trajectory of the
     ideal co-simulation itself *)
  let iterations = 100 in
  let condition =
    Lifecycle.Methodology.conditions_from_ideal ~iterations design impl
  in
  let catch_iterations =
    List.length
      (List.filter
         (fun k -> condition ~iteration:k ~var:"mode" = 1)
         (List.init iterations Fun.id))
  in
  Printf.printf "\nmode profile derived from the ideal simulation: catch mode in %d of %d iterations\n"
    catch_iterations iterations;
  let trace =
    Lifecycle.Methodology.execute
      ~config:
        {
          Exec.Machine.default_config with
          iterations;
          law = Exec.Timing_law.Wcet;
          condition;
        }
      design impl
  in
  Printf.printf "executive latencies under that profile:\n%s"
    (Lifecycle.Report.latency_table impl.Lifecycle.Methodology.algorithm
       (Translator.Temporal_model.actuation_series trace));
  Printf.printf "\nThe jitter equals the branch WCET difference — the effect the\n";
  Printf.printf "paper's Event Select translation (Fig. 5) makes visible early.\n"
