(* Adequation playground: a synthetic signal-processing workload mapped
   onto growing architectures, comparing the two ranking strategies of
   the heuristic and showing the generated executive.

   Run with: dune exec examples/distributed_gantt.exe *)

module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Dur = Aaa.Durations

(* a fork-join pipeline: sensor → N parallel filters → fusion → actuator *)
let workload n_branches =
  let alg = Alg.create ~name:(Printf.sprintf "forkjoin_%d" n_branches) ~period:1. in
  let sensor = Alg.add_op alg ~name:"adc" ~kind:Alg.Sensor ~outputs:[| 4 |] () in
  let fusion_inputs = Array.make n_branches 2 in
  let fusion =
    Alg.add_op alg ~name:"fusion" ~kind:Alg.Compute ~inputs:fusion_inputs ~outputs:[| 1 |] ()
  in
  for i = 0 to n_branches - 1 do
    let f =
      Alg.add_op alg ~name:(Printf.sprintf "filter%d" i) ~kind:Alg.Compute
        ~inputs:[| 4 |] ~outputs:[| 2 |] ()
    in
    Alg.depend alg ~src:(sensor, 0) ~dst:(f, 0);
    Alg.depend alg ~src:(f, 0) ~dst:(fusion, i)
  done;
  let act = Alg.add_op alg ~name:"dac" ~kind:Alg.Actuator ~inputs:[| 1 |] () in
  Alg.depend alg ~src:(fusion, 0) ~dst:(act, 0);
  alg

let durations alg procs =
  let d = Dur.create () in
  List.iter
    (fun op ->
      let name = Alg.op_name alg op in
      let wcet =
        if name = "adc" || name = "dac" then 0.02
        else if name = "fusion" then 0.05
        else 0.12
      in
      Dur.set_everywhere d ~op:name ~operators:procs wcet)
    (Alg.ops alg);
  d

let run_one alg procs strategy =
  let arch = Arch.bus_topology ~latency:0.005 ~time_per_word:0.002 procs in
  let arch = if List.length procs = 1 then Arch.single ~proc_name:(List.hd procs) () else arch in
  let d = durations alg procs in
  let sched = Aaa.Adequation.run ~strategy ~algorithm:alg ~architecture:arch ~durations:d () in
  sched

let () =
  let alg = workload 6 in
  Printf.printf "=== fork-join workload: 1 sensor, 6 filters, fusion, 1 actuator ===\n\n";
  Printf.printf "%-10s %-18s %-18s\n" "#procs" "pressure" "earliest-finish";
  List.iter
    (fun n ->
      let procs = List.init n (fun i -> Printf.sprintf "P%d" i) in
      let m_pressure = (run_one alg procs Aaa.Adequation.Pressure).Aaa.Schedule.makespan in
      let m_eft = (run_one alg procs Aaa.Adequation.Earliest_finish).Aaa.Schedule.makespan in
      Printf.printf "%-10d %-18.4f %-18.4f\n" n m_pressure m_eft)
    [ 1; 2; 3; 4; 6 ];
  let cp =
    Aaa.Adequation.critical_path ~algorithm:alg
      ~architecture:(Arch.single ())
      ~durations:(durations alg [ "P0" ])
  in
  Printf.printf "\ncommunication-free critical path (lower bound): %.4f\n\n" cp;
  let sched = run_one alg [ "P0"; "P1"; "P2" ] Aaa.Adequation.Pressure in
  Printf.printf "Gantt chart on 3 processors:\n%s\n" (Aaa.Gantt.render sched);
  Printf.printf "generated executive:\n%s" (Aaa.Codegen.to_string (Aaa.Codegen.generate sched));
  (* prove the executive runs deadlock-free with jittered timings *)
  let exe = Aaa.Codegen.generate sched in
  let trace =
    Exec.Machine.run
      ~config:
        { Exec.Machine.default_config with iterations = 200; comm_jitter_frac = 0.4 }
      exe
  in
  Printf.printf "\nexecuted 200 iterations: order conformant = %b, overruns = %d\n"
    (Exec.Machine.order_conformant trace)
    trace.Exec.Machine.overruns;
  Printf.printf "operator utilisation:";
  List.iter
    (fun (operator, u) ->
      Printf.printf " %s %.0f%%"
        (Arch.operator_name
           trace.Exec.Machine.executive.Aaa.Codegen.schedule.Aaa.Schedule.architecture
           operator)
        (100. *. u))
    (Exec.Machine.utilization trace);
  print_newline ()
