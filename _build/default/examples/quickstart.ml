(* Quickstart: the paper's methodology end to end on a DC-motor speed
   loop.

   1. Design a PID speed controller in the block-diagram "Scicos"
      world and simulate it under the stroboscopic model (Fig. 2).
   2. Extract the control law into a SynDEx-style algorithm graph.
   3. Run the adequation onto a 2-processor + bus architecture,
      generate the distributed executive and the static temporal
      model.
   4. Co-simulate with the generated graph of delays (Fig. 3) and
      compare control performance.
   5. Execute the generated executive on a simulated machine to
      measure per-iteration sampling/actuation latencies (Fig. 1).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* -------------------------------------------------- 1. design *)
  let plant = Control.Plants.dc_motor Control.Plants.default_dc_motor in
  let ts = 0.05 in
  let design =
    Lifecycle.Design.pid_loop ~name:"dc_motor_speed" ~plant ~x0:[| 0.; 0. |]
      ~gains:{ Control.Pid.kp = 10.; ki = 5.; kd = 0.5 }
      ~ts ~reference:1.0 ~horizon:10.0 ()
  in
  let ideal = Lifecycle.Methodology.simulate_ideal design in
  Printf.printf "=== 1. ideal (stroboscopic) design ===\n";
  Printf.printf "IAE  : %.4f\n" (design.Lifecycle.Design.cost ideal);
  let y = Sim.Engine.probe_component ideal "y" 0 in
  Printf.printf "overshoot: %.1f %%\n" (100. *. Control.Metrics.overshoot ~reference:1. y);
  (match Control.Metrics.settling_time ~reference:1. y with
  | Some t -> Printf.printf "settling time (2%%): %.2f s\n" t
  | None -> Printf.printf "does not settle within the horizon\n");

  (* ------------------------------------- 2-3. extract + adequation *)
  let architecture =
    Aaa.Architecture.bus_topology ~latency:0.001 ~time_per_word:0.002 [ "ecu0"; "ecu1" ]
  in
  let durations = Aaa.Durations.create () in
  let everywhere op wcet bcet =
    List.iter
      (fun operator ->
        Aaa.Durations.set durations ~op ~operator wcet;
        Aaa.Durations.set_bcet durations ~op ~operator bcet)
      [ "ecu0"; "ecu1" ]
  in
  everywhere "reference" 0.001 0.0005;
  everywhere "sample_y" 0.004 0.002;
  everywhere "pid" 0.012 0.005;
  everywhere "hold_u" 0.004 0.002;
  let impl = Lifecycle.Methodology.implement ~design ~architecture ~durations () in
  Printf.printf "\n=== 2-3. adequation result ===\n%s\n"
    (Aaa.Gantt.render impl.Lifecycle.Methodology.schedule);
  Printf.printf "generated executive:\n%s"
    (Aaa.Codegen.to_string impl.Lifecycle.Methodology.executive);

  (* ------------------------------ 4. graph-of-delays co-simulation *)
  let delayed = Lifecycle.Methodology.simulate_implemented design impl in
  let comparison =
    {
      Lifecycle.Methodology.implementation = impl;
      ideal_cost = design.Lifecycle.Design.cost ideal;
      implemented_cost = design.Lifecycle.Design.cost delayed;
      degradation_pct =
        Control.Metrics.degradation_pct
          ~ideal:(design.Lifecycle.Design.cost ideal)
          ~actual:(design.Lifecycle.Design.cost delayed);
    }
  in
  Printf.printf "\n=== 4. ideal vs implemented ===\n%s"
    (Lifecycle.Report.comparison design comparison);

  (* --------------------------- 5. executive execution and latencies *)
  let trace =
    Lifecycle.Methodology.execute
      ~config:
        {
          Exec.Machine.default_config with
          iterations = 50;
          law = Exec.Timing_law.Uniform;
          durations = Some durations;
        }
      design impl
  in
  Printf.printf "\n=== 5. measured latencies over %d iterations ===\n"
    trace.Exec.Machine.iterations;
  Printf.printf "%s"
    (Lifecycle.Report.latency_table impl.Lifecycle.Methodology.algorithm
       (Translator.Temporal_model.sampling_series trace
       @ Translator.Temporal_model.actuation_series trace));
  Printf.printf "order conformant: %b, overruns: %d\n"
    (Exec.Machine.order_conformant trace)
    trace.Exec.Machine.overruns;
  Printf.printf "\nplanned (WCET) iteration vs one measured iteration:\n%s\n%s"
    (Aaa.Gantt.render impl.Lifecycle.Methodology.schedule)
    (Exec.Exec_gantt.render ~iteration:3 trace)
