(* Multi-rate cascade control, simulated with event dividers.

   A DC motor with position output is controlled two ways:
   - a single position PID at 20 ms;
   - a cascade: fast inner speed loop (P, 10 ms) + slow outer position
     loop (PI, 50 ms = inner clock divided by 5).

   The outer loop's activation clock is the inner clock through an
   Eventlib.divider block — multi-rate sampling in the Scicos style
   (one base clock, derived sub-clocks).  The cascade rejects a load
   torque disturbance much faster than the single loop: the inner loop
   reacts within 10 ms where the single loop waits for the position
   error to build up.

   (The AAA extraction currently targets single-rate control laws, so
   this example exercises the hybrid simulator only.)

   Run with: dune exec examples/cascade.exe *)

module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module M = Numerics.Matrix

(* DC motor with position: states [omega; current; theta],
   inputs [voltage; load torque], outputs [theta; omega] *)
let motor_with_position =
  let p = Control.Plants.default_dc_motor in
  let a =
    M.of_arrays
      [|
        [| -.p.Control.Plants.b_friction /. p.Control.Plants.j;
           p.Control.Plants.kt /. p.Control.Plants.j; 0. |];
        [| -.p.Control.Plants.ke /. p.Control.Plants.l_arm;
           -.p.Control.Plants.r_arm /. p.Control.Plants.l_arm; 0. |];
        [| 1.; 0.; 0. |];
      |]
  in
  let b =
    M.of_arrays
      [|
        [| 0.; 1. /. p.Control.Plants.j |];
        [| 1. /. p.Control.Plants.l_arm; 0. |];
        [| 0.; 0. |];
      |]
  in
  let c = M.of_arrays [| [| 0.; 0.; 1. |]; [| 1.; 0.; 0. |] |] in
  Control.Lti.make ~domain:Control.Lti.Continuous ~a ~b ~c ~d:(M.zeros 2 2)

(* a -0.02 N·m load torque hitting at t = 3 s *)
let load () = C.step_source ~name:"load" ~at:3. ~after:(-0.02) ()

let simulate_cascade () =
  let g = G.create () in
  let plant =
    G.add g
      (C.lti_continuous ~name:"motor" ~split_inputs:true ~split_outputs:true
         ~x0:[| 0.; 0.; 0. |] motor_with_position)
  in
  let disturbance = G.add g (load ()) in
  G.connect_data g ~src:(disturbance, 0) ~dst:(plant, 1);
  (* fast inner loop at 10 ms *)
  let ts_inner = 0.01 in
  let clock = G.add g (E.clock ~period:ts_inner ()) in
  let sample_omega = G.add g (C.sample_hold ~name:"sample_omega" 1) in
  G.connect_data g ~src:(plant, 1) ~dst:(sample_omega, 0);
  let inner =
    G.add g
      (C.pid ~name:"inner_p"
         (Control.Pid.create ~gains:{ Control.Pid.kp = 8.; ki = 0.; kd = 0. } ~ts:ts_inner ()))
  in
  let hold_u = G.add g (C.sample_hold ~name:"hold_u" 1) in
  G.connect_data g ~src:(inner, 0) ~dst:(hold_u, 0);
  G.connect_data g ~src:(hold_u, 0) ~dst:(plant, 0);
  (* slow outer loop: inner clock divided by 5 → 50 ms *)
  let divider = G.add g (E.divider ~factor:5 ()) in
  G.connect_event g ~src:(clock, 0) ~dst:(divider, 0);
  let sample_theta = G.add g (C.sample_hold ~name:"sample_theta" 1) in
  G.connect_data g ~src:(plant, 0) ~dst:(sample_theta, 0);
  let reference = G.add g (C.constant ~name:"theta_ref" [| 1. |]) in
  let outer =
    G.add g
      (C.pid ~name:"outer_pi"
         (Control.Pid.create ~gains:{ Control.Pid.kp = 6.; ki = 2.; kd = 0. } ~ts:0.05 ()))
  in
  G.connect_data g ~src:(reference, 0) ~dst:(outer, 0);
  G.connect_data g ~src:(sample_theta, 0) ~dst:(outer, 1);
  (* inner setpoint = outer output *)
  G.connect_data g ~src:(outer, 0) ~dst:(inner, 0);
  G.connect_data g ~src:(sample_omega, 0) ~dst:(inner, 1);
  (* clocking: fast blocks on the base clock, slow blocks on the divided one *)
  List.iter (fun b -> G.connect_event g ~src:(clock, 0) ~dst:(b, 0)) [ sample_omega; inner; hold_u ];
  List.iter (fun b -> G.connect_event g ~src:(divider, 0) ~dst:(b, 0)) [ sample_theta; outer ];
  let e = Sim.Engine.create g in
  Sim.Engine.add_probe e ~name:"theta" ~block:plant ~port:0;
  Sim.Engine.run ~t_end:6. e;
  (Sim.Engine.probe_component e "theta" 0, Sim.Engine.activations e ~block:outer)

let simulate_single () =
  let g = G.create () in
  let plant =
    G.add g
      (C.lti_continuous ~name:"motor" ~split_inputs:true ~split_outputs:true
         ~x0:[| 0.; 0.; 0. |] motor_with_position)
  in
  let disturbance = G.add g (load ()) in
  G.connect_data g ~src:(disturbance, 0) ~dst:(plant, 1);
  let ts = 0.02 in
  let clock = G.add g (E.clock ~period:ts ()) in
  let sample_theta = G.add g (C.sample_hold ~name:"sample_theta" 1) in
  G.connect_data g ~src:(plant, 0) ~dst:(sample_theta, 0);
  let reference = G.add g (C.constant ~name:"theta_ref" [| 1. |]) in
  let pid =
    G.add g
      (C.pid ~name:"position_pid"
         (Control.Pid.create ~gains:{ Control.Pid.kp = 25.; ki = 8.; kd = 3. } ~ts ()))
  in
  G.connect_data g ~src:(reference, 0) ~dst:(pid, 0);
  G.connect_data g ~src:(sample_theta, 0) ~dst:(pid, 1);
  let hold_u = G.add g (C.sample_hold ~name:"hold_u" 1) in
  G.connect_data g ~src:(pid, 0) ~dst:(hold_u, 0);
  G.connect_data g ~src:(hold_u, 0) ~dst:(plant, 0);
  List.iter (fun b -> G.connect_event g ~src:(clock, 0) ~dst:(b, 0)) [ sample_theta; pid; hold_u ];
  let e = Sim.Engine.create g in
  Sim.Engine.add_probe e ~name:"theta" ~block:plant ~port:0;
  Sim.Engine.run ~t_end:6. e;
  Sim.Engine.probe_component e "theta" 0

let () =
  Printf.printf "=== multi-rate cascade vs single-loop position control ===\n\n";
  let cascade_theta, outer_activations = simulate_cascade () in
  let single_theta = simulate_single () in
  let disturbance_window (tr : Control.Metrics.trace) =
    (* IAE over the disturbance-recovery window [3, 6] s *)
    let keep = List.filteri (fun i _ -> tr.Control.Metrics.times.(i) >= 3.) in
    Control.Metrics.of_arrays
      (Array.of_list (keep (Array.to_list tr.Control.Metrics.times)))
      (Array.of_list (keep (Array.to_list tr.Control.Metrics.values)))
  in
  Printf.printf "outer loop ran %d times in 6 s (every 5th inner tick: %d expected)\n"
    (List.length outer_activations)
    (1 + int_of_float (6. /. 0.05));
  Printf.printf "\n%-22s %-14s %-20s\n" "controller" "tracking IAE" "disturbance IAE [3,6]s";
  Printf.printf "%-22s %-14.4f %-20.4f\n" "single PID (20 ms)"
    (Control.Metrics.iae ~reference:1. single_theta)
    (Control.Metrics.iae ~reference:1. (disturbance_window single_theta));
  Printf.printf "%-22s %-14.4f %-20.4f\n" "cascade (10/50 ms)"
    (Control.Metrics.iae ~reference:1. cascade_theta)
    (Control.Metrics.iae ~reference:1. (disturbance_window cascade_theta));
  Printf.printf
    "\nThe inner speed loop absorbs the load torque within its 10 ms period,\n\
     long before the position error accumulates — the classic cascade payoff,\n\
     simulated with one base clock and an event divider.\n"
