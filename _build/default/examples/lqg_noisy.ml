(* Output-feedback (LQG) regulation with a noisy position sensor,
   through the full design lifecycle.

   The plant is a lightly damped mass-spring-damper whose *position
   only* is measurable, through a noisy ADC.  The controller is an LQG
   compensator: a steady-state Kalman predictor reconstructs the full
   state from the noisy samples and an LQR gain computes the force.
   The methodology applies unchanged: the observer-controller is one
   compute operation in the extracted algorithm graph, mapped next to
   the actuator ECU while the sensor lives on its own ECU.

   Run with: dune exec examples/lqg_noisy.exe *)

module M = Numerics.Matrix

let ts = 0.02
let horizon = 8.0
let noise_sigma = 0.01 (* 1 cm RMS position noise *)

(* m = 1 kg, k = 4 N/m, c = 0.4 N·s/m: ωn = 2 rad/s, ζ = 0.1 *)
let plant = Control.Plants.mass_spring_damper ~m:1. ~k:4. ~c:0.4

let sysd = Control.Discretize.discretize ~ts plant

let k_lqr =
  (Control.Lqr.dlqr_sys
     ~q:(M.of_arrays [| [| 100.; 0. |]; [| 0.; 10. |] |])
     ~r:(M.of_arrays [| [| 0.1 |] |])
     sysd)
    .Control.Lqr.k

let kalman =
  Control.Kalman.dkalman ~a:sysd.Control.Lti.a ~c:sysd.Control.Lti.c
    ~qn:(M.scale 1e-4 (M.identity 2))
    ~rn:(M.of_arrays [| [| noise_sigma *. noise_sigma |] |])
    ()

let design =
  Lifecycle.Design.lqg_loop ~name:"msd_lqg" ~plant ~x0:[| 0.5; 0. |] ~sysd ~k:k_lqr
    ~kalman ~ts ~horizon ~noise_sigma ~noise_seed:7 ()

let architecture =
  Aaa.Architecture.bus_topology ~latency:0.0005 ~time_per_word:0.0005
    [ "sensor_ecu"; "control_ecu" ]

let durations () =
  let d = Aaa.Durations.create () in
  Aaa.Durations.set d ~op:"sample_y0" ~operator:"sensor_ecu" 0.001;
  Aaa.Durations.set d ~op:"lqg" ~operator:"control_ecu" 0.006;
  Aaa.Durations.set d ~op:"hold_u" ~operator:"control_ecu" 0.001;
  d

let () =
  Printf.printf "=== LQG with a noisy position sensor, over two ECUs ===\n\n";
  Printf.printf "LQR gain K = [%g %g], Kalman gain converged in %d iterations\n\n"
    (M.get k_lqr 0 0) (M.get k_lqr 0 1) kalman.Control.Kalman.iterations;
  let c = Lifecycle.Methodology.evaluate ~design ~architecture ~durations:(durations ()) () in
  print_string (Lifecycle.Report.comparison design c);
  Printf.printf "\n%s\n" (Aaa.Gantt.render c.Lifecycle.Methodology.implementation.schedule);
  (* how much does the noise itself cost?  rebuild without noise *)
  let clean =
    Lifecycle.Design.lqg_loop ~name:"msd_lqg_clean" ~plant ~x0:[| 0.5; 0. |] ~sysd ~k:k_lqr
      ~kalman ~ts ~horizon ~noise_sigma:0. ()
  in
  let clean_cost = clean.Lifecycle.Design.cost (Lifecycle.Methodology.simulate_ideal clean) in
  Printf.printf "ideal cost without sensor noise : %.6g\n" clean_cost;
  Printf.printf "ideal cost with noise (filtered): %.6g\n" c.Lifecycle.Methodology.ideal_cost;
  Printf.printf
    "\nThe Kalman predictor absorbs most of the measurement noise; the\n\
     remaining implementation degradation (%.2f %%) is the timing effect the\n\
     graph of delays exposes.\n"
    c.Lifecycle.Methodology.degradation_pct
