(* Active quarter-car suspension — the automotive scenario of the
   authors' target domain (cf. their SAAAA'05 paper).

   An LQR state-feedback controller computes an actuator force from
   the four suspension states, sampled at 50 ms, while the car drives
   over a bump.  The control law is distributed over two ECUs linked
   by a CAN-like bus; sensing happens on the wheel ECU, the control
   law runs on the body ECU.

   The example walks the methodology:
     ideal co-simulation → adequation → delay-aware co-simulation,
   then shows the *calibration* step: re-synthesising the LQR on the
   delay-augmented plant model recovers most of the performance the
   naive implementation lost.

   Run with: dune exec examples/suspension.exe *)

module M = Numerics.Matrix

let qc = Control.Plants.default_quarter_car

(* plant with full state as output (C = I), inputs [force; road] *)
let plant_full_state =
  let sys = Control.Plants.quarter_car qc in
  Control.Lti.make ~domain:Control.Lti.Continuous ~a:sys.Control.Lti.a
    ~b:sys.Control.Lti.b ~c:(M.identity 4) ~d:(M.zeros 4 2)

(* control-design model: force input only *)
let plant_force_only =
  let sys = plant_full_state in
  Control.Lti.make ~domain:Control.Lti.Continuous ~a:sys.Control.Lti.a
    ~b:(M.block sys.Control.Lti.b 0 0 4 1)
    ~c:(M.identity 4) ~d:(M.zeros 4 1)

let ts = 0.05 (* 20 Hz: slow enough that the implementation latency
                 (~95 % of Ts here) visibly matters *)
let horizon = 3.0

(* ride comfort: penalise body motion strongly, wheel motion lightly *)
let q_weight =
  M.of_arrays
    [|
      [| 1e6; 0.; 0.; 0. |];
      [| 0.; 1e4; 0.; 0. |];
      [| 0.; 0.; 1e2; 0. |];
      [| 0.; 0.; 0.; 1e1 |];
    |]

let r_weight = M.of_arrays [| [| 1e-6 |] |]

(* a 5 cm speed bump entered at t = 0.5 s *)
let bump () =
  Dataflow.Block.make ~name:"road_bump" ~out_widths:[| 1 |] ~always_active:true
    (fun ctx ->
      let t = ctx.Dataflow.Block.time in
      let z = if t >= 0.5 && t < 0.7 then 0.05 *. (1. -. cos (10. *. Float.pi *. (t -. 0.5))) /. 2. else 0. in
      [| [| z |] |])

let design_with_gain name k =
  Lifecycle.Design.state_feedback_loop ~name ~plant:plant_full_state
    ~x0:(Array.make 4 0.) ~k ~ts ~horizon ~disturbance:bump ~cost_output:0 ()

let design_with_aug_gain name k_aug =
  Lifecycle.Design.delayed_state_feedback_loop ~name ~plant:plant_full_state
    ~x0:(Array.make 4 0.) ~k_aug ~ts ~horizon ~disturbance:bump ~cost_output:0 ()

(* ECU timing: sensors on the wheel ECU, control on the body ECU *)
let architecture =
  Aaa.Architecture.bus_topology ~latency:0.001 ~time_per_word:0.0005
    [ "wheel_ecu"; "body_ecu" ]

let durations () =
  let d = Aaa.Durations.create () in
  for i = 0 to 3 do
    Aaa.Durations.set d ~op:(Printf.sprintf "sample_x%d" i) ~operator:"wheel_ecu" 0.0024
  done;
  Aaa.Durations.set d ~op:"sfb" ~operator:"body_ecu" 0.0238;
  Aaa.Durations.set d ~op:"hold_u" ~operator:"body_ecu" 0.0024;
  d

let () =
  Printf.printf "=== quarter-car active suspension over a 2-ECU CAN architecture ===\n\n";
  (* nominal design: LQR ignoring the implementation *)
  let k_nominal =
    Lifecycle.Calibrate.lqr_gain ~plant:plant_force_only ~ts ~q:q_weight ~r:r_weight ()
  in
  let nominal = design_with_gain "suspension_nominal" k_nominal in
  let comparison =
    Lifecycle.Methodology.evaluate ~design:nominal ~architecture ~durations:(durations ())
      ()
  in
  Printf.printf "%s\n" (Lifecycle.Report.comparison nominal comparison);
  Printf.printf "%s\n" (Aaa.Gantt.render comparison.Lifecycle.Methodology.implementation.schedule);

  (* calibration: re-synthesise on the delay-augmented model using the
     static I/O latency predicted by the temporal model *)
  let tau =
    Float.min ts
      (Translator.Temporal_model.io_latency
         comparison.Lifecycle.Methodology.implementation.Lifecycle.Methodology.static)
  in
  Printf.printf "predicted I/O latency tau = %.4g s (%.0f %% of Ts)\n\n" tau
    (100. *. tau /. ts);
  let k_calibrated =
    Lifecycle.Calibrate.lqr_delay_gain ~plant:plant_force_only ~ts ~delay:tau ~q:q_weight
      ~r:r_weight ()
  in
  let calibrated = design_with_aug_gain "suspension_calibrated" k_calibrated in
  let impl_cal =
    Lifecycle.Methodology.implement ~design:calibrated ~architecture
      ~durations:(durations ()) ()
  in
  let sim_cal = Lifecycle.Methodology.simulate_implemented calibrated impl_cal in
  let cost_cal = calibrated.Lifecycle.Design.cost sim_cal in
  Printf.printf "=== calibration ===\n";
  Printf.printf "ideal cost             : %.6g\n" comparison.Lifecycle.Methodology.ideal_cost;
  Printf.printf "implemented (nominal)  : %.6g\n"
    comparison.Lifecycle.Methodology.implemented_cost;
  Printf.printf "implemented (calibrated): %.6g\n" cost_cal;
  let recovered =
    (comparison.Lifecycle.Methodology.implemented_cost -. cost_cal)
    /. (comparison.Lifecycle.Methodology.implemented_cost
       -. comparison.Lifecycle.Methodology.ideal_cost +. 1e-30)
    *. 100.
  in
  Printf.printf "degradation recovered  : %.1f %%\n" recovered
