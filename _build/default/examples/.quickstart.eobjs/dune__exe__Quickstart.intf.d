examples/quickstart.mli:
