examples/hybrid.mli:
