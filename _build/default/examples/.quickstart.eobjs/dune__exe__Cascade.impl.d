examples/cascade.ml: Array Control Dataflow List Numerics Printf Sim
