examples/two_loops.mli:
