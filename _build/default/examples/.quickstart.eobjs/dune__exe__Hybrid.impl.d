examples/hybrid.ml: Array Control Dataflow Float List Numerics Printf Sim
