examples/suspension.mli:
