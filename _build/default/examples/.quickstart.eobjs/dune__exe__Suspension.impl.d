examples/suspension.ml: Aaa Array Control Dataflow Float Lifecycle Numerics Printf Translator
