examples/pendulum.ml: Aaa Array Control Dataflow Exec Float Fun Lifecycle List Numerics Printf Sim Translator
