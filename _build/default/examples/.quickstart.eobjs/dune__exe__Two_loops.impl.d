examples/two_loops.ml: Aaa Control Dataflow Lifecycle List Numerics Option Printf Sim Translator
