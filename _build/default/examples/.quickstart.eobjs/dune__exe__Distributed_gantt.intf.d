examples/distributed_gantt.mli:
