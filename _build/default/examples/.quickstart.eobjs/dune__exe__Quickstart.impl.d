examples/quickstart.ml: Aaa Control Exec Lifecycle List Printf Sim Translator
