examples/pendulum.mli:
