examples/distributed_gantt.ml: Aaa Array Exec List Printf
