examples/lqg_noisy.mli:
