examples/cascade.mli:
