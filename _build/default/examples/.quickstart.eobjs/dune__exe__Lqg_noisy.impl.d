examples/lqg_noisy.ml: Aaa Control Lifecycle Numerics Printf
