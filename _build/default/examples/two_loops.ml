(* Two independent control loops sharing one computing architecture —
   the situation the paper's introduction describes: "the different
   components of the computing architecture are shared between
   different activities".

   Loop A: DC-motor speed control (PID, Ts = 50 ms) — the activity we
   care about.
   Loop B: a fast mass-spring-damper regulation whose computations are
   heavy — the "other activity" sharing the processor.

   Three evaluations of loop A's cost:
     1. ideal (stroboscopic) — what the control engineer designed;
     2. implemented, loop A alone on the processor;
     3. implemented, loops A and B sharing the processor — B's
        operations push A's actuation later in every period.

   Run with: dune exec examples/two_loops.exe *)

module G = Dataflow.Graph
module C = Dataflow.Clib
module Arch = Aaa.Architecture
module Dur = Aaa.Durations

let ts = 0.05

(* one diagram holding both loops; [with_b] controls whether loop B's
   blocks exist, so the same builder covers scenarios 2 and 3 *)
let build ~with_b () =
  let g = G.create () in
  (* loop A: DC motor + PID *)
  let plant_a =
    G.add g
      (C.lti_continuous ~name:"motor" ~x0:[| 0.; 0. |]
         (Control.Plants.dc_motor Control.Plants.default_dc_motor))
  in
  let ref_a = G.add g (C.constant ~name:"ref_a" [| 1. |]) in
  let sample_a = G.add g (C.sample_hold ~name:"sample_a" 1) in
  let pid_a =
    G.add g
      (C.pid ~name:"pid_a"
         (Control.Pid.create ~gains:{ Control.Pid.kp = 60.; ki = 80.; kd = 0. } ~ts ()))
  in
  let hold_a = G.add g (C.sample_hold ~name:"hold_a" 1) in
  G.connect_data g ~src:(plant_a, 0) ~dst:(sample_a, 0);
  G.connect_data g ~src:(ref_a, 0) ~dst:(pid_a, 0);
  G.connect_data g ~src:(sample_a, 0) ~dst:(pid_a, 1);
  G.connect_data g ~src:(pid_a, 0) ~dst:(hold_a, 0);
  G.connect_data g ~src:(hold_a, 0) ~dst:(plant_a, 0);
  let loop_a = [ ref_a; sample_a; pid_a; hold_a ] in
  let clocked_a = [ sample_a; pid_a; hold_a ] in
  (* loop B: mass-spring-damper with a heavy state-feedback filter *)
  let loop_b, clocked_b =
    if not with_b then ([], [])
    else begin
      let plant_b =
        G.add g
          (C.lti_continuous ~name:"msd" ~split_outputs:true ~x0:[| 0.3; 0. |]
             (Control.Lti.make ~domain:Control.Lti.Continuous
                ~a:(Numerics.Matrix.of_arrays [| [| 0.; 1. |]; [| -4.; -0.4 |] |])
                ~b:(Numerics.Matrix.of_arrays [| [| 0. |]; [| 1. |] |])
                ~c:(Numerics.Matrix.identity 2)
                ~d:(Numerics.Matrix.zeros 2 1)))
      in
      let s0 = G.add g (C.sample_hold ~name:"sample_b0" 1) in
      let s1 = G.add g (C.sample_hold ~name:"sample_b1" 1) in
      G.connect_data g ~src:(plant_b, 0) ~dst:(s0, 0);
      G.connect_data g ~src:(plant_b, 1) ~dst:(s1, 0);
      let sfb =
        G.add g (C.state_feedback ~name:"sfb_b" (Numerics.Matrix.of_arrays [| [| 8.; 3. |] |]))
      in
      G.connect_data g ~src:(s0, 0) ~dst:(sfb, 0);
      G.connect_data g ~src:(s1, 0) ~dst:(sfb, 1);
      let hold_b = G.add g (C.sample_hold ~name:"hold_b" 1) in
      G.connect_data g ~src:(sfb, 0) ~dst:(hold_b, 0);
      G.connect_data g ~src:(hold_b, 0) ~dst:(plant_b, 0);
      ([ s0; s1; sfb; hold_b ], [ s0; s1; sfb; hold_b ])
    end
  in
  {
    Lifecycle.Design.graph = g;
    clocked = clocked_a @ clocked_b;
    members = loop_a @ loop_b;
    memories = [];
    probes = [ ("y", (plant_a, 0)); ("u", (hold_a, 0)) ];
    condition_feed = None;
    customize_algorithm = None;
  }

let design ~with_b =
  Lifecycle.Design.make
    ~name:(if with_b then "two_loops" else "loop_a_alone")
    ~ts ~horizon:10.
    ~cost:(fun e -> Control.Metrics.iae ~reference:1. (Sim.Engine.probe_component e "y" 0))
    (build ~with_b)

let durations ~with_b () =
  let d = Dur.create () in
  let set op wcet = Dur.set d ~op ~operator:"mcu" wcet in
  set "ref_a" 0.0005;
  set "sample_a" 0.002;
  set "pid_a" 0.006;
  set "hold_a" 0.002;
  if with_b then begin
    (* loop B's heavy computation eats half the period *)
    set "sample_b0" 0.002;
    set "sample_b1" 0.002;
    set "sfb_b" 0.022;
    set "hold_b" 0.002
  end;
  d

let () =
  Printf.printf "=== two control loops sharing one processor ===\n\n";
  let arch = Arch.single ~proc_name:"mcu" () in
  let eval ~with_b =
    Lifecycle.Methodology.evaluate ~design:(design ~with_b) ~architecture:arch
      ~durations:(durations ~with_b ()) ()
  in
  let alone = eval ~with_b:false in
  let shared = eval ~with_b:true in
  Printf.printf "loop A ideal cost            : %.5f\n" alone.Lifecycle.Methodology.ideal_cost;
  Printf.printf "loop A implemented, alone    : %.5f (%+.1f %%)\n"
    alone.Lifecycle.Methodology.implemented_cost alone.Lifecycle.Methodology.degradation_pct;
  Printf.printf "loop A implemented, with B   : %.5f (%+.1f %%)\n\n"
    shared.Lifecycle.Methodology.implemented_cost shared.Lifecycle.Methodology.degradation_pct;
  Printf.printf "schedule with both loops (B's operations interleave with A's):\n%s\n"
    (Aaa.Gantt.render shared.Lifecycle.Methodology.implementation.schedule);
  let static s = s.Lifecycle.Methodology.implementation.Lifecycle.Methodology.static in
  Printf.printf "loop A actuation latency: alone %.4f s, sharing %.4f s (of Ts = %.2f s)\n"
    (List.assoc
       (Option.get (Aaa.Algorithm.find_op alone.Lifecycle.Methodology.implementation.algorithm "hold_a"))
       (static alone).Translator.Temporal_model.actuation_offsets)
    (List.assoc
       (Option.get (Aaa.Algorithm.find_op shared.Lifecycle.Methodology.implementation.algorithm "hold_a"))
       (static shared).Translator.Temporal_model.actuation_offsets)
    ts;
  Printf.printf
    "\nThe interference of the co-hosted activity is exactly what the paper's\n\
     methodology exposes before implementation: loop B's computations delay\n\
     loop A's actuation, degrading a loop whose own code did not change.\n"
