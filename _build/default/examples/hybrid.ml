(* Hybrid-simulation playground: the zero-crossing (state event)
   machinery that makes the simulator a true Scicos-class hybrid
   engine — state events located by bisection during continuous
   integration, state jumps, and relays with hysteresis.

   Two classics:
   1. a bouncing ball (impacts as zero-crossings + state jumps);
   2. a thermostat (relay with hysteresis driving a first-order room).

   Run with: dune exec examples/hybrid.exe *)

module G = Dataflow.Graph
module C = Dataflow.Clib
module E = Dataflow.Eventlib
module B = Dataflow.Block

let bouncing_ball ~h0 ~restitution =
  let rest = ref false in
  B.make ~name:"ball" ~out_widths:[| 2 |] ~cstate0:[| h0; 0. |] ~always_active:true
    ~derivatives:(fun ctx ->
      if !rest then [| 0.; 0. |] else [| ctx.B.cstate.(1); -9.81 |])
    ~surfaces:1
    ~crossings:(fun ctx -> if !rest then [| 1. |] else [| ctx.B.cstate.(0) |])
    ~on_crossing:(fun ctx ~surface:_ ~rising ->
      if rising then []
      else begin
        let v' = -.restitution *. ctx.B.cstate.(1) in
        if v' < 0.05 then begin
          rest := true;
          [ B.Set_cstate [| 0.; 0. |] ]
        end
        else [ B.Set_cstate [| 1e-9; v' |] ]
      end)
    ~reset:(fun () -> rest := false)
    (fun ctx -> [| Array.copy ctx.B.cstate |])

let () =
  Printf.printf "=== 1. bouncing ball (h0 = 1 m, restitution 0.8) ===\n";
  let g = G.create () in
  let ball = G.add g (bouncing_ball ~h0:1. ~restitution:0.8) in
  let zc = G.add g (E.zero_cross ~name:"impact_detector" ~direction:`Falling ()) in
  let demux = G.add g (C.demux [| 1; 1 |]) in
  G.connect_data g ~src:(ball, 0) ~dst:(demux, 0);
  G.connect_data g ~src:(demux, 0) ~dst:(zc, 0);
  let latch = G.add g (E.event_latch_time ()) in
  G.connect_event g ~src:(zc, 0) ~dst:(latch, 0);
  let e = Sim.Engine.create g in
  Sim.Engine.add_probe e ~name:"state" ~block:ball ~port:0;
  Sim.Engine.run ~t_end:5. e;
  let h = Sim.Engine.probe_component e "state" 0 in
  Printf.printf "first impact (analytic %.4f s): detector log below\n" (sqrt (2. /. 9.81));
  let impacts = Sim.Engine.activations e ~block:latch in
  List.iteri (fun i t -> if i < 6 then Printf.printf "  impact %d at t = %.4f s\n" i t) impacts;
  Printf.printf "peak heights stay positive: min h = %.2e m\n"
    (Numerics.Stats.min h.Control.Metrics.values);
  Printf.printf "ball at rest by t = 5 s: h = %.2e m\n\n"
    (match Sim.Trace.last (Sim.Engine.probe e "state") with
    | Some (_, v) -> v.(0)
    | None -> Float.nan);

  Printf.printf "=== 2. thermostat (hysteresis relay, band [19, 21] degC) ===\n";
  let g = G.create () in
  let room =
    G.add g
      (C.lti_continuous ~name:"room" ~x0:[| 15. |]
         (Control.Plants.first_order ~tau:1. ~gain:1.))
  in
  let neg = G.add g (C.gain ~name:"neg" (-1.)) in
  let heater =
    G.add g
      (C.relay ~name:"thermostat" ~initially_on:true ~on_above:(-19.) ~off_below:(-21.)
         ~out_on:30. ~out_off:0. ())
  in
  let toggles = G.add g (E.event_counter ()) in
  G.connect_data g ~src:(room, 0) ~dst:(neg, 0);
  G.connect_data g ~src:(neg, 0) ~dst:(heater, 0);
  G.connect_data g ~src:(heater, 0) ~dst:(room, 0);
  G.connect_event g ~src:(heater, 0) ~dst:(toggles, 0);
  let e = Sim.Engine.create g in
  Sim.Engine.add_probe e ~name:"T" ~block:room ~port:0;
  Sim.Engine.run ~t_end:10. e;
  let temps = Sim.Engine.probe_component e "T" 0 in
  let late =
    Array.of_list
      (List.filteri
         (fun i _ -> temps.Control.Metrics.times.(i) > 2.)
         (Array.to_list temps.Control.Metrics.values))
  in
  Printf.printf "temperature after warm-up: min %.2f / max %.2f degC (band [19, 21])\n"
    (Numerics.Stats.min late) (Numerics.Stats.max late);
  Printf.printf "relay toggles in 10 s: %d\n" (List.length (Sim.Engine.activations e ~block:toggles))
