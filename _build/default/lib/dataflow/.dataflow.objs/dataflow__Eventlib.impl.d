lib/dataflow/eventlib.ml: Array Block Float Fun Option Printf
