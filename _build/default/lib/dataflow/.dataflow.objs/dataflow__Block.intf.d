lib/dataflow/block.mli:
