lib/dataflow/dot.ml: Block Buffer Fun Graph List Printf String
