lib/dataflow/graph.ml: Array Block Fun List Printf Queue String
