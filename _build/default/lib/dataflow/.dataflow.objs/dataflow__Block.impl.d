lib/dataflow/block.ml: Array List Printf
