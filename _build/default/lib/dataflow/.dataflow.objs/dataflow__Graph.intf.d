lib/dataflow/graph.mli: Block
