lib/dataflow/clib.mli: Block Control Numerics
