lib/dataflow/eventlib.mli: Block
