lib/dataflow/clib.ml: Array Block Control Float Numerics Option Printf
