(** Graphviz export of block diagrams — solid edges for data links,
    dashed red edges for event (activation) links, matching the visual
    convention of Scicos diagrams in the paper's figures. *)

val to_string : ?graph_name:string -> Graph.t -> string
(** Renders the diagram in DOT syntax. *)

val to_file : ?graph_name:string -> Graph.t -> string -> unit
(** Writes {!to_string} output to a path. *)
