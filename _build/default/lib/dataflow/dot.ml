let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_string ?(graph_name = "diagram") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" graph_name);
  Buffer.add_string buf "  node [shape=box, fontname=\"Helvetica\"];\n";
  List.iter
    (fun id ->
      let b = Graph.block g id in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%s\"];\n" (id :> int) (escape b.Block.name)))
    (Graph.block_ids g);
  List.iter
    (fun (((sb : Graph.block_id), sp), ((db : Graph.block_id), dp)) ->
      Buffer.add_string buf
        (Printf.sprintf "  b%d -> b%d [label=\"%d:%d\"];\n" (sb :> int) (db :> int) sp dp))
    (Graph.data_links g);
  List.iter
    (fun (((sb : Graph.block_id), sp), ((db : Graph.block_id), dp)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  b%d -> b%d [style=dashed, color=red, label=\"e%d:%d\"];\n"
           (sb :> int) (db :> int) sp dp))
    (Graph.event_links g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?graph_name g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?graph_name g))
