(** Block-diagram graphs: blocks wired by data links (regular ports)
    and event links (activation), exactly the structure of a Scicos
    diagram such as the paper's Fig. 2 (plant + S/H blocks + controller
    + activation clock) and Fig. 3 (same + graph of delays). *)

type block_id = private int
(** Handle returned by {!add}. *)

type t
(** A mutable graph under construction. *)

val create : unit -> t

val add : t -> Block.t -> block_id
(** Adds a block instance.  The same {!Block.t} value may be added
    several times only if its internal state is pure; stateful blocks
    must be fresh per instance (the block libraries create fresh
    closures at each call). *)

val connect_data : t -> src:block_id * int -> dst:block_id * int -> unit
(** [connect_data g ~src:(b, i) ~dst:(b', j)] wires regular output
    port [i] of [b] to regular input port [j] of [b'].  Each input
    port accepts exactly one incoming link.  Raises [Invalid_argument]
    on port-index, width or double-wiring errors. *)

val connect_event : t -> src:block_id * int -> dst:block_id * int -> unit
(** Wires an event output port to an event input port.  Fan-out and
    fan-in are both allowed (one emission activates all listeners; an
    input may be activated by several sources). *)

val merge : t -> t -> block_id -> block_id
(** [merge target sub] inlines the diagram [sub] into [target]:
    every block instance of [sub] is added to [target] and all of
    [sub]'s internal data/event links are re-created.  Returns the id
    translation, with which the caller wires [sub]'s boundary to the
    rest of [target] — the flattening of a Scicos super-block.
    Because block instances are stateful, [sub] must not be simulated
    or merged again afterwards. *)

val block : t -> block_id -> Block.t
val block_count : t -> int
val block_ids : t -> block_id list

val id_of_int : t -> int -> block_id
(** Recovers a handle from a raw index (bounds-checked); useful for
    tooling that serialises graphs. *)

val data_source : t -> block_id -> int -> (block_id * int) option
(** The (block, output-port) feeding a given input port, if wired. *)

val event_listeners : t -> block_id -> int -> (block_id * int) list
(** All (block, event-input-port) pairs activated by a given event
    output port. *)

val data_links : t -> ((block_id * int) * (block_id * int)) list
val event_links : t -> ((block_id * int) * (block_id * int)) list

val validate : t -> unit
(** Global checks performed before simulation:
    - every regular input port is wired;
    - widths of wired ports match;
    - no algebraic loop (cycle through feedthrough blocks only).
    Raises [Invalid_argument] with a descriptive message. *)

val eval_order : t -> block_id list
(** Topological order of blocks along feedthrough data edges: if block
    [b]'s output feeds feedthrough block [b'], then [b] comes first.
    Raises like {!validate} if an algebraic loop exists. *)
