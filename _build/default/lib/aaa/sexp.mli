(** Minimal s-expressions: the concrete syntax carrier for the
    {!Sdx} application-file format.

    Grammar: atoms are runs of characters other than whitespace,
    parentheses and [";"]; lists are parenthesised; [";"] starts a
    comment running to the end of the line.  No string quoting — SDX
    names never need it. *)

type t = Atom of string | List of t list

val parse : string -> t list
(** Parses a sequence of top-level s-expressions.  Raises
    [Failure] with a line-numbered message on syntax errors
    (unbalanced parentheses, stray [")"]). *)

val to_string : ?indent:int -> t -> string
(** Pretty-prints with the given indentation width (default 2);
    short lists stay on one line. *)

(** {2 Accessors} (raising [Failure] with context on shape errors) *)

val atom : t -> string
val list : t -> t list

val keyed : string -> t list -> t list option
(** [keyed k items] finds the first [List (Atom k :: rest)] among
    [items] and returns [rest]. *)

val keyed_all : string -> t list -> t list list
(** All occurrences, in order. *)

val atom_of : string -> t list -> string
(** [atom_of k items] is the single atom under key [k]; raises when
    missing or not a single atom. *)

val float_of : string -> t list -> float
val int_atoms : t list -> int list
(** Parses every element as an integer atom. *)
