(** SynDEx-style algorithm graphs.

    An algorithm is a data-flow graph of {e operations} repeated
    indefinitely with the sampling period of the control law.  Sensor
    operations acquire controller inputs (measures), actuator
    operations apply controller outputs (controls), computation
    operations transform data, and memory operations carry values from
    one iteration to the next (inter-iteration delays).

    Operations may be {e conditioned} (paper §3.2.2): an operation
    tagged with condition [(var, value)] only executes at iterations
    where the conditioning variable [var] (produced by some operation
    output declared with {!set_condition_source}) equals [value].
    Alternative branches of the same [var] occupy the same schedule
    window, and their differing execution times are precisely the
    jitter source the paper's Fig. 5 translation captures. *)

type op_kind =
  | Sensor  (** controller input acquisition — defines [I_j(k)] *)
  | Actuator  (** controller output application — defines [O_j(k)] *)
  | Compute  (** internal computation *)
  | Memory  (** inter-iteration delay; its output is available at
                iteration start, its input is stored for the next one *)

type op_id = private int

type condition = { var : string; value : int }

type t
(** Mutable algorithm graph under construction. *)

val create : name:string -> period:float -> t
(** [period] is the real-time constraint: one iteration of the graph
    must execute every [period] seconds.  Raises on [period <= 0]. *)

val name : t -> string
val period : t -> float

val add_op :
  t ->
  name:string ->
  kind:op_kind ->
  ?inputs:int array ->
  ?outputs:int array ->
  ?cond:condition ->
  unit ->
  op_id
(** Adds an operation with the given regular data ports (widths in
    scalar words, used for communication costing).  Names must be
    unique within the graph.  Raises [Invalid_argument] otherwise. *)

val depend : t -> src:op_id * int -> dst:op_id * int -> unit
(** Adds a data dependency from an output port to an input port.
    Input ports accept exactly one incoming dependency.  Width
    mismatch or double wiring raises. *)

val set_op_condition : t -> op_id -> condition -> unit
(** Conditions an existing operation after creation (used by the
    Scicos→SynDEx translator, which discovers conditioning after the
    structural extraction).  Raises if the operation already carries a
    condition. *)

val set_condition_source : t -> var:string -> op_id * int -> unit
(** Declares which (operation, output port) computes a conditioning
    variable; the port must have width 1.  Required for every [var]
    used in a {!condition}. *)

val condition_source : t -> var:string -> (op_id * int) option

val op_count : t -> int
val ops : t -> op_id list
val op_name : t -> op_id -> string
val op_kind : t -> op_id -> op_kind
val op_cond : t -> op_id -> condition option
val op_inputs : t -> op_id -> int array
val op_outputs : t -> op_id -> int array
val find_op : t -> string -> op_id option

val dep_source : t -> op_id -> int -> (op_id * int) option
val dependencies : t -> ((op_id * int) * (op_id * int)) list
val successors : t -> op_id -> op_id list
val predecessors : t -> op_id -> op_id list

val sensors : t -> op_id list
(** Sensor operations in insertion order — index [j] is the paper's
    input [j]. *)

val actuators : t -> op_id list

val validate : t -> unit
(** Checks: every input port wired; no dependency cycle (memory
    outputs break cycles because they carry previous-iteration
    values); every conditioning variable has a declared source; the
    condition source of an operation is not itself conditioned on the
    same variable.  Raises [Invalid_argument]. *)

val topological_order : t -> op_id list
(** Operations ordered along intra-iteration dependencies (edges out
    of Memory operations are ignored, as their values pre-exist).
    Raises if a cycle exists. *)
