let render ?(width = 72) sched =
  if width < 10 then invalid_arg "Gantt.render: width too small";
  let makespan = sched.Schedule.makespan in
  let scale t = if makespan <= 0. then 0 else int_of_float (t /. makespan *. float_of_int width) in
  let buf = Buffer.create 1024 in
  let label_width =
    List.fold_left
      (fun acc operator ->
        Int.max acc
          (String.length (Architecture.operator_name sched.Schedule.architecture operator)))
      0
      (Architecture.operators sched.Schedule.architecture)
    |> fun w ->
    List.fold_left
      (fun acc medium ->
        Int.max acc
          (String.length (Architecture.medium_name sched.Schedule.architecture medium)))
      w
      (Architecture.media sched.Schedule.architecture)
  in
  let row name slots =
    (* slots: (start, finish, text) *)
    let cells = Bytes.make width '.' in
    List.iter
      (fun (start, finish, text) ->
        let a = Int.min (width - 1) (scale start) in
        let b = Int.min width (Int.max (a + 1) (scale finish)) in
        for i = a to b - 1 do
          Bytes.set cells i '#'
        done;
        (* overlay the name inside the bar when it fits *)
        String.iteri
          (fun i ch -> if a + i < b - 0 && a + i < width then Bytes.set cells (a + i) ch)
          (String.sub text 0 (Int.min (String.length text) (Int.max 0 (b - a)))))
      slots;
    Buffer.add_string buf (Printf.sprintf "%-*s |%s|\n" label_width name (Bytes.to_string cells))
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  0%*s%.6g\n" label_width "" (width - 1) "t=" makespan);
  List.iter
    (fun operator ->
      let slots =
        List.map
          (fun s ->
            ( s.Schedule.cs_start,
              s.Schedule.cs_start +. s.Schedule.cs_duration,
              Algorithm.op_name sched.Schedule.algorithm s.Schedule.cs_op ))
          (Schedule.on_operator sched operator)
      in
      row (Architecture.operator_name sched.Schedule.architecture operator) slots)
    (Architecture.operators sched.Schedule.architecture);
  List.iter
    (fun medium ->
      let slots =
        List.map
          (fun c ->
            ( c.Schedule.cm_start,
              c.Schedule.cm_start +. c.Schedule.cm_duration,
              Algorithm.op_name sched.Schedule.algorithm (fst c.Schedule.cm_src) ))
          (Schedule.on_medium sched medium)
      in
      row (Architecture.medium_name sched.Schedule.architecture medium) slots)
    (Architecture.media sched.Schedule.architecture);
  Buffer.contents buf
