type t = {
  algorithm : Algorithm.t;
  architecture : Architecture.t;
  durations : Durations.t;
  pins : (string * string) list;
}

let fail fmt = Printf.ksprintf failwith fmt

let kind_of_string = function
  | "sensor" -> Algorithm.Sensor
  | "actuator" -> Algorithm.Actuator
  | "compute" -> Algorithm.Compute
  | "memory" -> Algorithm.Memory
  | k -> fail "Sdx: unknown operation kind %S" k

let string_of_kind = function
  | Algorithm.Sensor -> "sensor"
  | Algorithm.Actuator -> "actuator"
  | Algorithm.Compute -> "compute"
  | Algorithm.Memory -> "memory"

(* ------------------------------------------------------------------ *)
(* parsing *)

let parse_algorithm items =
  let name = Sexp.atom_of "name" items in
  let period = Sexp.float_of "period" items in
  let algorithm = Algorithm.create ~name ~period in
  let op_of_name n =
    match Algorithm.find_op algorithm n with
    | Some op -> op
    | None -> fail "Sdx: unknown operation %S" n
  in
  List.iter
    (fun op_items ->
      let name = Sexp.atom_of "name" op_items in
      let kind = kind_of_string (Sexp.atom_of "kind" op_items) in
      let widths key =
        match Sexp.keyed key op_items with
        | Some ws -> Array.of_list (Sexp.int_atoms ws)
        | None -> [||]
      in
      let cond =
        match Sexp.keyed "when" op_items with
        | Some [ Sexp.Atom var; Sexp.Atom value ] -> (
            match int_of_string_opt value with
            | Some v -> Some { Algorithm.var; value = v }
            | None -> fail "Sdx: condition value %S is not an integer" value)
        | Some _ -> fail "Sdx: (when var value) expected in operation %S" name
        | None -> None
      in
      ignore
        (Algorithm.add_op algorithm ~name ~kind ~inputs:(widths "inputs")
           ~outputs:(widths "outputs") ?cond ()))
    (Sexp.keyed_all "operation" items);
  List.iter
    (fun dep_items ->
      match (Sexp.keyed "from" dep_items, Sexp.keyed "to" dep_items) with
      | ( Some [ Sexp.Atom src; Sexp.Atom sp ],
          Some [ Sexp.Atom dst; Sexp.Atom dp ] ) ->
          Algorithm.depend algorithm
            ~src:(op_of_name src, int_of_string sp)
            ~dst:(op_of_name dst, int_of_string dp)
      | _ -> fail "Sdx: dependency needs (from op port) and (to op port)")
    (Sexp.keyed_all "dependency" items);
  List.iter
    (fun cs_items ->
      match (Sexp.keyed "var" cs_items, Sexp.keyed "from" cs_items) with
      | Some [ Sexp.Atom var ], Some [ Sexp.Atom src; Sexp.Atom sp ] ->
          Algorithm.set_condition_source algorithm ~var (op_of_name src, int_of_string sp)
      | _ -> fail "Sdx: condition-source needs (var v) and (from op port)")
    (Sexp.keyed_all "condition-source" items);
  Algorithm.validate algorithm;
  algorithm

let parse_architecture items =
  let name = Sexp.atom_of "name" items in
  let architecture = Architecture.create ~name in
  List.iter
    (fun op_items ->
      match op_items with
      | [ Sexp.Atom n ] -> ignore (Architecture.add_operator architecture ~name:n)
      | _ -> fail "Sdx: (operator name) expected")
    (Sexp.keyed_all "operator" items);
  let operator_of n =
    match Architecture.find_operator architecture n with
    | Some op -> op
    | None -> fail "Sdx: unknown operator %S" n
  in
  let add_medium kind m_items =
    let name = Sexp.atom_of "name" m_items in
    let latency = Sexp.float_of "latency" m_items in
    let rate = Sexp.float_of "rate" m_items in
    let endpoints =
      match Sexp.keyed "connects" m_items with
      | Some atoms -> List.map (fun e -> operator_of (Sexp.atom e)) atoms
      | None -> fail "Sdx: medium %S needs (connects ...)" name
    in
    ignore
      (Architecture.add_medium architecture ~name ~kind ~latency ~time_per_word:rate
         endpoints)
  in
  List.iter (add_medium Architecture.Bus) (Sexp.keyed_all "bus" items);
  List.iter (add_medium Architecture.Point_to_point) (Sexp.keyed_all "link" items);
  Architecture.validate architecture;
  architecture

let parse_durations architecture items =
  let durations = Durations.create () in
  let all_operators =
    List.map (Architecture.operator_name architecture) (Architecture.operators architecture)
  in
  let entry setter row =
    match row with
    | [ Sexp.Atom op; Sexp.Atom operator; Sexp.Atom value ] -> (
        let v =
          match float_of_string_opt value with
          | Some v -> v
          | None -> fail "Sdx: duration %S is not a number" value
        in
        match operator with
        | "*" -> List.iter (fun operator -> setter ~op ~operator v) all_operators
        | _ ->
            if not (List.mem operator all_operators) then
              fail "Sdx: unknown operator %S in durations" operator;
            setter ~op ~operator v)
    | _ -> fail "Sdx: duration entries are (wcet|bcet op operator value)"
  in
  List.iter (entry (fun ~op ~operator v -> Durations.set durations ~op ~operator v))
    (Sexp.keyed_all "wcet" items);
  List.iter
    (entry (fun ~op ~operator v -> Durations.set_bcet durations ~op ~operator v))
    (Sexp.keyed_all "bcet" items);
  durations

let parse_pins items =
  List.map
    (fun row ->
      match row with
      | [ Sexp.Atom op; Sexp.Atom operator ] -> (op, operator)
      | _ -> fail "Sdx: pins are (pin operation operator)")
    (Sexp.keyed_all "pin" items)

let parse text =
  match Sexp.parse text with
  | [ Sexp.List (Sexp.Atom "application" :: sections) ] ->
      let algorithm =
        match Sexp.keyed "algorithm" sections with
        | Some items -> parse_algorithm items
        | None -> fail "Sdx: missing (algorithm ...) section"
      in
      let architecture =
        match Sexp.keyed "architecture" sections with
        | Some items -> parse_architecture items
        | None -> fail "Sdx: missing (architecture ...) section"
      in
      let durations =
        match Sexp.keyed "durations" sections with
        | Some items -> parse_durations architecture items
        | None -> Durations.create ()
      in
      let pins =
        match Sexp.keyed "pins" sections with
        | Some items -> parse_pins items
        | None -> []
      in
      { algorithm; architecture; durations; pins }
  | _ -> fail "Sdx: expected a single (application ...) form"

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* printing *)

let print { algorithm; architecture; durations; pins } =
  let open Sexp in
  let key k atoms = List (Atom k :: atoms) in
  let op_form op =
    let widths k ws =
      if Array.length ws = 0 then []
      else [ key k (Array.to_list (Array.map (fun w -> Atom (string_of_int w)) ws)) ]
    in
    let cond =
      match Algorithm.op_cond algorithm op with
      | Some { Algorithm.var; value } -> [ key "when" [ Atom var; Atom (string_of_int value) ] ]
      | None -> []
    in
    List
      ([
         Atom "operation";
         key "name" [ Atom (Algorithm.op_name algorithm op) ];
         key "kind" [ Atom (string_of_kind (Algorithm.op_kind algorithm op)) ];
       ]
      @ widths "inputs" (Algorithm.op_inputs algorithm op)
      @ widths "outputs" (Algorithm.op_outputs algorithm op)
      @ cond)
  in
  let dep_form ((src, sp), (dst, dp)) =
    List
      [
        Atom "dependency";
        key "from" [ Atom (Algorithm.op_name algorithm src); Atom (string_of_int sp) ];
        key "to" [ Atom (Algorithm.op_name algorithm dst); Atom (string_of_int dp) ];
      ]
  in
  let cond_sources =
    (* reconstruct declared condition variables from the operations *)
    List.sort_uniq compare
      (List.filter_map
         (fun op ->
           Option.map (fun c -> c.Algorithm.var) (Algorithm.op_cond algorithm op))
         (Algorithm.ops algorithm))
    |> List.filter_map (fun var ->
           Option.map
             (fun (src, sp) ->
               List
                 [
                   Atom "condition-source";
                   key "var" [ Atom var ];
                   key "from"
                     [ Atom (Algorithm.op_name algorithm src); Atom (string_of_int sp) ];
                 ])
             (Algorithm.condition_source algorithm ~var))
  in
  let algorithm_form =
    List
      ([
         Atom "algorithm";
         key "name" [ Atom (Algorithm.name algorithm) ];
         key "period" [ Atom (Printf.sprintf "%.17g" (Algorithm.period algorithm)) ];
       ]
      @ List.map op_form (Algorithm.ops algorithm)
      @ List.map dep_form (Algorithm.dependencies algorithm)
      @ cond_sources)
  in
  let medium_form medium =
    let kind_atom =
      match Architecture.medium_kind architecture medium with
      | Architecture.Bus -> "bus"
      | Architecture.Point_to_point -> "link"
    in
    let endpoints = Architecture.medium_endpoints architecture medium in
    let latency = Architecture.comm_duration architecture medium ~words:0 in
    let rate = Architecture.comm_duration architecture medium ~words:1 -. latency in
    List
      [
        Atom kind_atom;
        key "name" [ Atom (Architecture.medium_name architecture medium) ];
        key "latency" [ Atom (Printf.sprintf "%.17g" latency) ];
        key "rate" [ Atom (Printf.sprintf "%.17g" rate) ];
        key "connects"
          (List.map
             (fun op -> Atom (Architecture.operator_name architecture op))
             endpoints);
      ]
  in
  let architecture_form =
    List
      ([ Atom "architecture"; key "name" [ Atom (Architecture.name architecture) ] ]
      @ List.map
          (fun op ->
            List [ Atom "operator"; Atom (Architecture.operator_name architecture op) ])
          (Architecture.operators architecture)
      @ List.map medium_form (Architecture.media architecture))
  in
  let duration_forms =
    List.concat_map
      (fun op ->
        let op_name = Algorithm.op_name algorithm op in
        List.concat_map
          (fun operator ->
            let operator_name = Architecture.operator_name architecture operator in
            match Durations.wcet durations ~op:op_name ~operator:operator_name with
            | None -> []
            | Some w ->
                let wcet_row =
                  List
                    [
                      Atom "wcet"; Atom op_name; Atom operator_name;
                      Atom (Printf.sprintf "%.17g" w);
                    ]
                in
                let bcet_rows =
                  match Durations.bcet durations ~op:op_name ~operator:operator_name with
                  | Some b when b < w ->
                      [
                        List
                          [
                            Atom "bcet"; Atom op_name; Atom operator_name;
                            Atom (Printf.sprintf "%.17g" b);
                          ];
                      ]
                  | Some _ | None -> []
                in
                wcet_row :: bcet_rows)
          (Architecture.operators architecture))
      (Algorithm.ops algorithm)
  in
  let pin_forms =
    List.map (fun (op, operator) -> List [ Atom "pin"; Atom op; Atom operator ]) pins
  in
  let application =
    List
      ([ Atom "application"; algorithm_form; architecture_form ]
      @ (if duration_forms = [] then [] else [ List (Atom "durations" :: duration_forms) ])
      @ if pin_forms = [] then [] else [ List (Atom "pins" :: pin_forms) ])
  in
  Sexp.to_string application ^ "\n"

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (print t))
