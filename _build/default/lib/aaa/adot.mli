(** Graphviz export of AAA artefacts: algorithm graphs, architecture
    graphs and schedules (clustered by operator) — the visual
    counterparts of SynDEx's three main windows. *)

val algorithm : ?graph_name:string -> Algorithm.t -> string
(** Operations as nodes (shape by kind: sensors as invhouses,
    actuators as houses, memories as boxes, computations as ellipses;
    conditioned operations annotated with [var=value]), dependencies
    as edges labelled with their width. *)

val architecture : ?graph_name:string -> Architecture.t -> string
(** Operators as boxes, media as diamonds linked to their endpoint
    operators. *)

val schedule : ?graph_name:string -> Schedule.t -> string
(** One cluster per operator containing its slots in execution order
    (labels carry start/finish times), dependency edges across
    clusters via the transfers. *)
