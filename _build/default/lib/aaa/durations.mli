(** Execution-time characterisation tables.

    For each (operation, operator) pair, a worst-case execution time
    (WCET) — the value the adequation heuristic and the generated
    static schedule rely on — and optionally a best-case execution
    time (BCET, defaulting to the WCET) that execution simulation uses
    to draw actual durations.  An absent entry means the operation
    cannot run on that operator (e.g. an ASIC hosting exactly one
    operation). *)

type t

val create : unit -> t

val set : t -> op:string -> operator:string -> float -> unit
(** Sets the WCET of [op] on [operator].  Raises on negative values. *)

val set_bcet : t -> op:string -> operator:string -> float -> unit
(** Sets the BCET.  Must be set after the WCET and be ≤ it. *)

val set_everywhere : t -> op:string -> operators:string list -> float -> unit
(** Same WCET on all the given operators. *)

val wcet : t -> op:string -> operator:string -> float option
(** [None] when the operation cannot execute on the operator. *)

val bcet : t -> op:string -> operator:string -> float option
(** Defaults to the WCET when no BCET was set. *)

val can_run : t -> op:string -> operator:string -> bool

val of_measurements : ?margin:float -> (string * string * float list) list -> t
(** Builds a table from execution-time measurements
    [(op, operator, samples)]: the WCET is the largest sample
    inflated by [margin] (default 20 %, the usual safety factor of a
    measurement-based characterisation) and the BCET is the smallest
    sample.  Raises [Invalid_argument] on empty sample lists or
    negative samples. *)

val fold :
  t -> init:'acc -> f:(op:string -> operator:string -> wcet:float -> bcet:float -> 'acc -> 'acc) -> 'acc
(** Folds over every declared (operation, operator) entry (order
    unspecified); [bcet] is the effective one (defaulting to the
    WCET). *)

val scale : t -> float -> t
(** A fresh table with every WCET and BCET multiplied by the factor —
    the "same software on a k× slower platform" transformation used by
    latency sweeps.  Raises on non-positive factors. *)

val average_wcet : t -> op:string -> operators:string list -> float option
(** Mean WCET over the operators able to run [op] — the
    operator-independent estimate used for critical-path levels.
    [None] if no operator can run it. *)
