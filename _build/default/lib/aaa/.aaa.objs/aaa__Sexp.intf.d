lib/aaa/sexp.mli:
