lib/aaa/gantt.mli: Schedule
