lib/aaa/gantt.ml: Algorithm Architecture Buffer Bytes Int List Printf Schedule String
