lib/aaa/sdx.ml: Algorithm Architecture Array Durations Fun List Option Printf Sexp
