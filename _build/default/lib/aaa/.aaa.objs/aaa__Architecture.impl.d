lib/aaa/architecture.ml: Array Fun List Printf Queue String
