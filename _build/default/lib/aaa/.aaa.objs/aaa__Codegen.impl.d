lib/aaa/codegen.ml: Algorithm Architecture Buffer Float Int List Printf Schedule
