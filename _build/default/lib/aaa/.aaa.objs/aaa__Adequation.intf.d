lib/aaa/adequation.mli: Algorithm Architecture Durations Schedule
