lib/aaa/cgen.ml: Algorithm Architecture Array Buffer Codegen Filename Fun Hashtbl List Printf Schedule String
