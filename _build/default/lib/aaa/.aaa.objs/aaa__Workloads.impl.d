lib/aaa/workloads.ml: Algorithm Array Durations List Numerics Printf
