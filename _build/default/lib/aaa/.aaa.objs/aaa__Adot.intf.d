lib/aaa/adot.mli: Algorithm Architecture Schedule
