lib/aaa/durations.ml: Float Hashtbl List Option
