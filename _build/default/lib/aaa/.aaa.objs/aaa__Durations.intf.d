lib/aaa/durations.mli:
