lib/aaa/hierarchy.ml: Algorithm Array Hashtbl List Printf String
