lib/aaa/sdx.mli: Algorithm Architecture Durations Sexp
