lib/aaa/algorithm.ml: Array Fun List Option Printf Queue String
