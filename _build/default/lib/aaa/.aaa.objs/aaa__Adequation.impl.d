lib/aaa/adequation.ml: Algorithm Architecture Array Durations Float Fun Hashtbl List Numerics Option Printf Schedule String
