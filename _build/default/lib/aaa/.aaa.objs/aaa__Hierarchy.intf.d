lib/aaa/hierarchy.mli: Algorithm
