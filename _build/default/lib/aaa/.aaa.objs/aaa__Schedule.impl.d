lib/aaa/schedule.ml: Algorithm Architecture Float Format Hashtbl Int List Printf
