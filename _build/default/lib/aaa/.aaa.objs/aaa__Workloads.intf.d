lib/aaa/workloads.mli: Algorithm Durations Numerics
