lib/aaa/schedule_io.ml: Algorithm Architecture Fun List Printf Schedule Sexp String
