lib/aaa/schedule.mli: Algorithm Architecture Format
