lib/aaa/cgen.mli: Codegen
