lib/aaa/schedule_io.mli: Algorithm Architecture Schedule Sexp
