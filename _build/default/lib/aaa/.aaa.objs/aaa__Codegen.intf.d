lib/aaa/codegen.mli: Algorithm Architecture Schedule
