lib/aaa/adot.ml: Algorithm Architecture Array Buffer List Printf Schedule String
