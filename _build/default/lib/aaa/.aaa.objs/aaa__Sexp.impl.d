lib/aaa/sexp.ml: Buffer List Printf String
