lib/aaa/architecture.mli:
