lib/aaa/algorithm.mli:
