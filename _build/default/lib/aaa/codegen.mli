(** Generation of the distributed real-time executive from a schedule.

    Mirrors SynDEx's macro-code generation: each operator receives a
    sequential program — an infinite loop over one iteration of the
    schedule — whose computation order is the schedule's total order
    on that operator, with [Send]/[Recv] synchronisation operations
    inserted around every inter-operator transfer; each medium
    receives the totally ordered sequence of transfers it must carry.
    The synchronisation discipline (a transfer starts only when its
    data has been posted and the medium is free, in the static order;
    a [Recv] blocks until its transfer completes) guarantees the
    execution respects the schedule's total order and is deadlock-free
    for valid schedules — which {!Exec.Machine} verifies empirically. *)

type instr =
  | Wait_period
      (** block until the next periodic release ([k·Ts]) *)
  | Exec of Algorithm.op_id
      (** run one operation (skipped at run time when its condition
          does not hold) *)
  | Send of Schedule.comm_slot
      (** post the data of a transfer leaving this operator
          (non-blocking; the medium performs the transfer) *)
  | Recv of Schedule.comm_slot
      (** block until the incoming transfer completes *)

type t = {
  schedule : Schedule.t;
  programs : (Architecture.operator_id * instr list) list;
      (** one program per operator; the body of the infinite loop,
          beginning with [Wait_period] *)
  media_programs : (Architecture.medium_id * Schedule.comm_slot list) list;
      (** per-medium transfer order *)
}

val generate : Schedule.t -> t
(** Builds the executive.  Instructions on an operator are ordered by
    schedule time; at equal times receives come first, then
    computations, then sends. *)

val program_of : t -> Architecture.operator_id -> instr list
val media_program_of : t -> Architecture.medium_id -> Schedule.comm_slot list

val to_string : t -> string
(** Human-readable macro-code listing, one section per operator and
    per medium (conditioned operations render as [if var=v then
    exec ...]). *)
