(** SDX application files: a textual format carrying an algorithm
    graph, an architecture graph, the duration tables and optional
    pins — the equivalent of SynDEx's [.sdx] application files, so
    adequations can be run from data rather than code (see the
    [syndex] CLI in [bin/]).

    Syntax (s-expressions, [";"] comments):

    {v
    (application
      (algorithm (name dc_motor) (period 0.05)
        (operation (name sample_y) (kind sensor) (outputs 1))
        (operation (name pid) (kind compute) (inputs 1 1) (outputs 1)
                   (when mode 1))                 ; optional condition
        (operation (name hold_u) (kind actuator) (inputs 1))
        (dependency (from sample_y 0) (to pid 1))
        (dependency (from pid 0) (to hold_u 0))
        (condition-source (var mode) (from pid 0))) ; optional
      (architecture (name two_ecu)
        (operator ecu0)
        (operator ecu1)
        (bus (name can) (latency 0.001) (rate 0.0005) (connects ecu0 ecu1))
        (link (name direct) (latency 0) (rate 1e-4) (connects ecu0 ecu1)))
      (durations
        (wcet sample_y ecu0 0.004)
        (wcet pid * 0.012)          ; * = every operator
        (bcet pid ecu0 0.005))
      (pins (pin sample_y ecu0)))
    v} *)

type t = {
  algorithm : Algorithm.t;
  architecture : Architecture.t;
  durations : Durations.t;
  pins : (string * string) list;
}

val parse : string -> t
(** Parses an application from SDX text.  Raises [Failure] with a
    descriptive message on syntax or semantic errors (unknown
    operation kinds, dangling names, …); the returned algorithm and
    architecture are validated. *)

val load : string -> t
(** {!parse} on a file's contents. *)

val print : t -> string
(** Renders an application back to SDX text; [parse (print t)]
    reconstructs the same graphs (round-trip is tested). *)

val save : t -> string -> unit

(** {2 Section parsers}

    Exposed so other file formats (e.g. the lifecycle diagram files of
    {!Lifecycle.Diagram}) can embed the same [(architecture …)],
    [(durations …)] and [(pins …)] sections. *)

val parse_architecture : Sexp.t list -> Architecture.t
val parse_durations : Architecture.t -> Sexp.t list -> Durations.t
val parse_pins : Sexp.t list -> (string * string) list
