(** C source emission from a generated executive — the final step of
    SynDEx's flow ("to automatically generate the corresponding
    code", paper §1).

    {!emit} produces a set of C translation units:
    - [scilife_runtime.h] — the small runtime API the generated code
      is written against (periodic release, channel send/receive);
      the target integrator supplies its implementation (POSIX,
      RTOS, bare metal…);
    - [channels.h] — one enumerator and one buffer per inter-operator
      transfer;
    - [ops.h] — extern prototypes of the application functions, one
      per operation, with [const double *] inputs and [double *]
      outputs in port order;
    - one [operator_<name>.c] per operator — its infinite loop in the
      schedule's total order, receives before the consumers, sends
      right after the producers, conditioned operations wrapped in
      [if] on their conditioning variable's buffer.

    The generated sources are self-consistent C99: the test suite
    compiles them against a stub runtime with [cc -c] when a compiler
    is available. *)

val emit : Codegen.t -> (string * string) list
(** [(filename, content)] pairs, runtime and headers first.  Operation
    and operator names are mangled to C identifiers (non-alphanumeric
    characters become ['_']); a collision after mangling raises
    [Invalid_argument]. *)

val write : Codegen.t -> dir:string -> unit
(** Writes every emitted file under [dir] (which must exist). *)
