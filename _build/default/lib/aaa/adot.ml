let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let algorithm ?(graph_name = "algorithm") alg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" graph_name);
  List.iter
    (fun (op : Algorithm.op_id) ->
      let shape =
        match Algorithm.op_kind alg op with
        | Algorithm.Sensor -> "invhouse"
        | Algorithm.Actuator -> "house"
        | Algorithm.Memory -> "box"
        | Algorithm.Compute -> "ellipse"
      in
      let label =
        let base = escape (Algorithm.op_name alg op) in
        match Algorithm.op_cond alg op with
        | Some { Algorithm.var; value } -> Printf.sprintf "%s\\n[%s=%d]" base var value
        | None -> base
      in
      Buffer.add_string buf
        (Printf.sprintf "  op%d [label=\"%s\", shape=%s];\n" (op :> int) label shape))
    (Algorithm.ops alg);
  List.iter
    (fun (((src : Algorithm.op_id), sp), ((dst : Algorithm.op_id), dp)) ->
      let width = (Algorithm.op_outputs alg src).(sp) in
      Buffer.add_string buf
        (Printf.sprintf "  op%d -> op%d [label=\"%d:%d (w%d)\"];\n" (src :> int)
           (dst :> int) sp dp width))
    (Algorithm.dependencies alg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let architecture ?(graph_name = "architecture") arch =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" graph_name);
  List.iter
    (fun (operator : Architecture.operator_id) ->
      Buffer.add_string buf
        (Printf.sprintf "  p%d [label=\"%s\", shape=box];\n" (operator :> int)
           (escape (Architecture.operator_name arch operator))))
    (Architecture.operators arch);
  List.iter
    (fun (medium : Architecture.medium_id) ->
      let kind =
        match Architecture.medium_kind arch medium with
        | Architecture.Bus -> "bus"
        | Architecture.Point_to_point -> "link"
      in
      Buffer.add_string buf
        (Printf.sprintf "  m%d [label=\"%s\\n(%s)\", shape=diamond];\n" (medium :> int)
           (escape (Architecture.medium_name arch medium))
           kind);
      List.iter
        (fun (operator : Architecture.operator_id) ->
          Buffer.add_string buf
            (Printf.sprintf "  p%d -- m%d;\n" (operator :> int) (medium :> int)))
        (Architecture.medium_endpoints arch medium))
    (Architecture.media arch);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let schedule ?(graph_name = "schedule") sched =
  let alg = sched.Schedule.algorithm in
  let arch = sched.Schedule.architecture in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" graph_name);
  List.iter
    (fun (operator : Architecture.operator_id) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_p%d {\n    label=\"%s\";\n" (operator :> int)
           (escape (Architecture.operator_name arch operator)));
      let slots = Schedule.on_operator sched operator in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "    op%d [label=\"%s\\n[%.4g, %.4g]\"];\n"
               (s.Schedule.cs_op :> int)
               (escape (Algorithm.op_name alg s.Schedule.cs_op))
               s.Schedule.cs_start
               (s.Schedule.cs_start +. s.Schedule.cs_duration)))
        slots;
      (* invisible edges impose vertical execution order *)
      let rec chain = function
        | a :: (b :: _ as rest) ->
            Buffer.add_string buf
              (Printf.sprintf "    op%d -> op%d [style=invis];\n"
                 (a.Schedule.cs_op :> int)
                 (b.Schedule.cs_op :> int));
            chain rest
        | [ _ ] | [] -> ()
      in
      chain slots;
      Buffer.add_string buf "  }\n")
    (Architecture.operators arch);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  op%d -> op%d [color=red, label=\"%s @%.4g\"];\n"
           (fst c.Schedule.cm_src :> int)
           (fst c.Schedule.cm_dst :> int)
           (escape (Architecture.medium_name arch c.Schedule.cm_medium))
           c.Schedule.cm_start))
    sched.Schedule.comm;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
