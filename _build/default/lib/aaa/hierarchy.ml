type definition =
  | Atom of {
      a_kind : Algorithm.op_kind;
      a_inputs : (string * int) list;
      a_outputs : (string * int) list;
      a_cond : Algorithm.condition option;
    }
  | Subsystem of {
      s_inputs : (string * int) list;
      s_outputs : (string * int) list;
      s_elements : (string * string) list;
      s_links : ((string * string) * (string * string)) list;
    }

type spec = {
  sp_name : string;
  sp_period : float;
  mutable sp_defs : (string * definition) list;
}

let boundary = ""

let create ~name ~period =
  if period <= 0. then invalid_arg "Hierarchy.create: non-positive period";
  { sp_name = name; sp_period = period; sp_defs = [] }

let check_ports what ports =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p, w) ->
      if w <= 0 then invalid_arg (Printf.sprintf "Hierarchy: non-positive width on %s" what);
      if Hashtbl.mem seen p then
        invalid_arg (Printf.sprintf "Hierarchy: duplicate port %S on %s" p what);
      Hashtbl.replace seen p ())
    ports

let add_definition spec name definition =
  if List.mem_assoc name spec.sp_defs then
    invalid_arg (Printf.sprintf "Hierarchy: duplicate definition %S" name);
  if String.equal name boundary then invalid_arg "Hierarchy: empty definition name";
  spec.sp_defs <- spec.sp_defs @ [ (name, definition) ]

let define_atom spec ~name ~kind ?(inputs = []) ?(outputs = []) ?cond () =
  check_ports name inputs;
  check_ports name outputs;
  add_definition spec name (Atom { a_kind = kind; a_inputs = inputs; a_outputs = outputs; a_cond = cond })

let define_subsystem spec ~name ?(inputs = []) ?(outputs = []) ~elements ~links () =
  check_ports name inputs;
  check_ports name outputs;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (instance, _) ->
      if String.equal instance boundary then
        invalid_arg "Hierarchy: instance name may not be the boundary marker";
      if Hashtbl.mem seen instance then
        invalid_arg (Printf.sprintf "Hierarchy: duplicate instance %S in %S" instance name);
      Hashtbl.replace seen instance ())
    elements;
  add_definition spec name
    (Subsystem { s_inputs = inputs; s_outputs = outputs; s_elements = elements; s_links = links })

let find_def spec name =
  match List.assoc_opt name spec.sp_defs with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Hierarchy: unknown definition %S" name)

(* During expansion, each (path, port) endpoint eventually resolves to
   a flat operation port.  Boundary ports create forwarding entries
   resolved transitively afterwards. *)
type endpoint = { ep_path : string; ep_port : string }

let flatten spec ~root =
  (match find_def spec root with
  | Subsystem { s_inputs = []; s_outputs = []; _ } -> ()
  | Subsystem _ -> invalid_arg "Hierarchy.flatten: root definition has boundary ports"
  | Atom _ -> invalid_arg "Hierarchy.flatten: root must be a subsystem");
  let algorithm = Algorithm.create ~name:spec.sp_name ~period:spec.sp_period in
  (* flat op table: path -> (op id, input ports, output ports) *)
  let atoms : (string, Algorithm.op_id * (string * int) list * (string * int) list) Hashtbl.t =
    Hashtbl.create 32
  in
  (* raw links collected over all levels, with path-qualified endpoints *)
  let links : (endpoint * endpoint) list ref = ref [] in
  let join path name = if String.equal path "" then name else path ^ "/" ^ name in
  let rec expand ~stack path def_name =
    if List.mem def_name stack then
      invalid_arg
        (Printf.sprintf "Hierarchy: recursive instantiation of %S (via %s)" def_name
           (String.concat " -> " stack));
    match find_def spec def_name with
    | Atom { a_kind; a_inputs; a_outputs; a_cond } ->
        let op =
          Algorithm.add_op algorithm ~name:path ~kind:a_kind
            ~inputs:(Array.of_list (List.map snd a_inputs))
            ~outputs:(Array.of_list (List.map snd a_outputs))
            ?cond:a_cond ()
        in
        Hashtbl.replace atoms path (op, a_inputs, a_outputs)
    | Subsystem { s_elements; s_links; _ } ->
        List.iter
          (fun (instance, child_def) ->
            expand ~stack:(def_name :: stack) (join path instance) child_def)
          s_elements;
        List.iter
          (fun ((src_el, src_port), (dst_el, dst_port)) ->
            let qualify el =
              if String.equal el boundary then path else join path el
            in
            links :=
              ( { ep_path = qualify src_el; ep_port = src_port },
                { ep_path = qualify dst_el; ep_port = dst_port } )
              :: !links)
          s_links
  in
  expand ~stack:[] "" root;
  (* Boundary forwarding: links whose endpoint names a subsystem path
     (not an atom) forward through that subsystem's interface.  For
     every atom input port, walk backward through forwarding links
     until the producing atom output is found. *)
  let is_atom ep = Hashtbl.mem atoms ep.ep_path in
  let all_links = !links in
  let backward_to ep =
    List.filter_map
      (fun (s, d) -> if d.ep_path = ep.ep_path && d.ep_port = ep.ep_port then Some s else None)
      all_links
  in
  let port_index ports name =
    let rec go i = function
      | [] -> None
      | (p, _) :: rest -> if String.equal p name then Some i else go (i + 1) rest
    in
    go 0 ports
  in
  Hashtbl.iter
    (fun path (op, a_inputs, _) ->
      List.iteri
        (fun idx (port_name, width) ->
          let rec find_producer ep depth =
            if depth > 1000 then
              invalid_arg "Hierarchy: forwarding loop while resolving producers";
            match backward_to ep with
            | [] ->
                invalid_arg
                  (Printf.sprintf "Hierarchy: input %s.%s is not wired" ep.ep_path ep.ep_port)
            | [ src ] -> if is_atom src then src else find_producer src (depth + 1)
            | _ :: _ :: _ ->
                invalid_arg
                  (Printf.sprintf "Hierarchy: input %s.%s has several sources" ep.ep_path
                     ep.ep_port)
          in
          let producer = find_producer { ep_path = path; ep_port = port_name } 0 in
          let src_op, _, src_outputs =
            match Hashtbl.find_opt atoms producer.ep_path with
            | Some x -> x
            | None -> assert false
          in
          let sp =
            match port_index src_outputs producer.ep_port with
            | Some i -> i
            | None ->
                invalid_arg
                  (Printf.sprintf "Hierarchy: %S has no output port %S" producer.ep_path
                     producer.ep_port)
          in
          let src_width = List.nth src_outputs sp |> snd in
          if src_width <> width then
            invalid_arg
              (Printf.sprintf "Hierarchy: width mismatch %s.%s (%d) -> %s.%s (%d)"
                 producer.ep_path producer.ep_port src_width path port_name width);
          Algorithm.depend algorithm ~src:(src_op, sp) ~dst:(op, idx))
        a_inputs)
    atoms;
  Algorithm.validate algorithm;
  algorithm
