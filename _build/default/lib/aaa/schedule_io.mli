(** Saving and restoring adequation results.

    A schedule is only meaningful against its algorithm and
    architecture, so the serialised form embeds references by {e name}
    and loading takes the same application the adequation ran on (the
    usual tool flow: adequate once, save, then generate/execute in
    later runs).  Loaded schedules are re-validated, so a stale file
    against a modified application fails loudly rather than silently
    misbehaving. *)

val to_sexp : Schedule.t -> Sexp.t
val print : Schedule.t -> string

val parse :
  algorithm:Algorithm.t -> architecture:Architecture.t -> string -> Schedule.t
(** Parses a schedule saved by {!print} and revalidates it against the
    given graphs.  Raises [Failure] on syntax errors and
    [Invalid_argument] when the schedule does not fit the graphs
    (unknown names, violated precedence/exclusivity, …). *)

val save : Schedule.t -> string -> unit
val load : algorithm:Algorithm.t -> architecture:Architecture.t -> string -> Schedule.t
