(** ASCII Gantt charts of schedules — the visual output SynDEx shows
    after an adequation, rendered for terminals. *)

val render : ?width:int -> Schedule.t -> string
(** One row per operator and per medium; slot names are printed inside
    their time extent.  [width] is the number of character cells for
    the whole makespan (default 72). *)
