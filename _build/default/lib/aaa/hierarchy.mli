(** Hierarchical algorithm specifications, SynDEx style.

    SynDEx algorithms are specified as a hierarchy of {e definitions}:
    leaf operations (atoms) and subsystems containing instances of
    other definitions, wired through named ports.  The adequation
    works on the {e flattened} graph; this module provides the
    specification layer and the flattening transformation (the
    "seamless flow of graphs transformations" of Grandpierre–Sorel
    cited by the paper).

    Ports are referenced as [(element, port)] where [element] is an
    instance name inside the enclosing definition, or [boundary] to
    denote the enclosing definition's own interface. *)

type spec
(** A mutable collection of definitions. *)

val create : name:string -> period:float -> spec

val boundary : string
(** The reserved element name ([""]) denoting the enclosing
    definition's own ports inside [links]. *)

val define_atom :
  spec ->
  name:string ->
  kind:Algorithm.op_kind ->
  ?inputs:(string * int) list ->
  ?outputs:(string * int) list ->
  ?cond:Algorithm.condition ->
  unit ->
  unit
(** Declares a leaf definition with named, sized ports.  Definition
    names must be unique in the spec. *)

val define_subsystem :
  spec ->
  name:string ->
  ?inputs:(string * int) list ->
  ?outputs:(string * int) list ->
  elements:(string * string) list ->
  links:((string * string) * (string * string)) list ->
  unit ->
  unit
(** Declares a composite definition: [elements] is the list of
    [(instance name, definition name)] it contains; [links] wires
    [(element, port) → (element, port)], using {!boundary} as element
    name to connect the subsystem's own inputs (as sources) and
    outputs (as destinations). *)

val flatten : spec -> root:string -> Algorithm.t
(** Expands the [root] definition (which must have no boundary ports)
    into a flat {!Algorithm.t}.  Instance paths become operation names
    joined with ["/"] (e.g. ["left_wheel/sense"]).  Checks performed:
    - every referenced definition exists; no recursive instantiation;
    - link ports exist with matching widths;
    - after expansion, every operation input is wired (via
      {!Algorithm.validate}).
    Raises [Invalid_argument] with a diagnostic otherwise.

    Conditioning: atoms may carry a condition; after flattening,
    declare each variable's source with
    {!Algorithm.set_condition_source} using the path-mangled names
    (e.g. ["controller/mode"]). *)
