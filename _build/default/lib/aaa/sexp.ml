type t = Atom of string | List of t list

let parse input =
  let n = String.length input in
  let line = ref 1 in
  let fail msg = failwith (Printf.sprintf "Sexp: line %d: %s" !line msg) in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () =
    (if !pos < n && input.[!pos] = '\n' then incr line);
    incr pos
  in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance ();
        skip_blank ()
    | Some ';' ->
        let rec to_eol () =
          match peek () with
          | Some '\n' | None -> ()
          | Some _ ->
              advance ();
              to_eol ()
        in
        to_eol ();
        skip_blank ()
    | Some _ | None -> ()
  in
  let is_atom_char c =
    match c with ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' -> false | _ -> true
  in
  let read_atom () =
    let start = !pos in
    while (match peek () with Some c -> is_atom_char c | None -> false) do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let rec read_exp () =
    skip_blank ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_blank ();
          match peek () with
          | None -> fail "unclosed parenthesis"
          | Some ')' ->
              advance ();
              List.rev acc
          | Some _ -> items (read_exp () :: acc)
        in
        List (items [])
    | Some ')' -> fail "unexpected ')'"
    | Some _ -> Atom (read_atom ())
  in
  let rec top acc =
    skip_blank ();
    match peek () with
    | None -> List.rev acc
    | Some ')' -> fail "unexpected ')' at top level"
    | Some _ -> top (read_exp () :: acc)
  in
  top []

let rec flat_width = function
  | Atom a -> String.length a
  | List items -> 2 + List.fold_left (fun acc e -> acc + 1 + flat_width e) 0 items

let to_string ?(indent = 2) exp =
  let buf = Buffer.create 256 in
  let rec go depth exp =
    match exp with
    | Atom a -> Buffer.add_string buf a
    | List items when flat_width exp <= 72 - (depth * indent) ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i e ->
            if i > 0 then Buffer.add_char buf ' ';
            go depth e)
          items;
        Buffer.add_char buf ')'
    | List [] -> Buffer.add_string buf "()"
    | List (head :: rest) ->
        Buffer.add_char buf '(';
        go depth head;
        List.iter
          (fun e ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make ((depth + 1) * indent) ' ');
            go (depth + 1) e)
          rest;
        Buffer.add_char buf ')'
  in
  go 0 exp;
  Buffer.contents buf

let context_fail what exp =
  let rendered =
    match exp with
    | Some e -> to_string e
    | None -> "(missing)"
  in
  failwith (Printf.sprintf "Sexp: expected %s, got %s" what rendered)

let atom = function Atom a -> a | List _ as e -> context_fail "an atom" (Some e)
let list = function List l -> l | Atom _ as e -> context_fail "a list" (Some e)

let keyed key items =
  List.find_map
    (function List (Atom k :: rest) when String.equal k key -> Some rest | _ -> None)
    items

let keyed_all key items =
  List.filter_map
    (function List (Atom k :: rest) when String.equal k key -> Some rest | _ -> None)
    items

let atom_of key items =
  match keyed key items with
  | Some [ Atom a ] -> a
  | Some _ | None -> failwith (Printf.sprintf "Sexp: expected single atom under (%s ...)" key)

let float_of key items =
  let a = atom_of key items in
  match float_of_string_opt a with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Sexp: %S under (%s ...) is not a number" a key)

let int_atoms items =
  List.map
    (fun e ->
      let a = atom e in
      match int_of_string_opt a with
      | Some i -> i
      | None -> failwith (Printf.sprintf "Sexp: %S is not an integer" a))
    items
