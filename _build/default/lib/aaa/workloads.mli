(** Synthetic algorithm-graph generators, used by the benchmarks, the
    experiments and the property-based tests (and handy for sizing an
    architecture before the real control law exists).

    Every generator returns the algorithm together with a durations
    table declaring each operation on all the given [operators] (same
    WCET everywhere — heterogeneous tables can be edited
    afterwards). *)

val chain :
  ?period:float ->
  ?wcet:float ->
  stages:int ->
  operators:string list ->
  unit ->
  Algorithm.t * Durations.t
(** A sensor → [stages − 2] computations → actuator pipeline, all
    widths 1, uniform WCET (default 0.01).  [stages >= 2]. *)

val fork_join :
  ?period:float ->
  ?sensor_wcet:float ->
  ?branch_wcet:float ->
  ?fusion_wcet:float ->
  branches:int ->
  operators:string list ->
  unit ->
  Algorithm.t * Durations.t
(** The classic adc → N parallel filters → fusion → dac workload used
    by the adequation experiments (defaults: 0.02/0.12/0.05). *)

val layered :
  rng:Numerics.Rng.t ->
  layers:int ->
  width:int ->
  ?wcet_min:float ->
  ?wcet_max:float ->
  operators:string list ->
  unit ->
  Algorithm.t * Durations.t
(** A random layered DAG: [width] operations per layer, each consuming
    one random output of the previous layer; first layer sensors, last
    layer actuators; WCETs uniform in [\[wcet_min, wcet_max\]]
    (defaults 0.001 and 0.021).  [layers >= 2]. *)
