let declare durations algorithm ~operators wcet_of =
  List.iter
    (fun op ->
      Durations.set_everywhere durations
        ~op:(Algorithm.op_name algorithm op)
        ~operators (wcet_of op))
    (Algorithm.ops algorithm)

let chain ?(period = 1.) ?(wcet = 0.01) ~stages ~operators () =
  if stages < 2 then invalid_arg "Workloads.chain: need at least sensor and actuator";
  let alg = Algorithm.create ~name:(Printf.sprintf "chain_%d" stages) ~period in
  let ops =
    List.init stages (fun i ->
        let kind =
          if i = 0 then Algorithm.Sensor
          else if i = stages - 1 then Algorithm.Actuator
          else Algorithm.Compute
        in
        let inputs = if i = 0 then [||] else [| 1 |] in
        let outputs = if i = stages - 1 then [||] else [| 1 |] in
        Algorithm.add_op alg ~name:(Printf.sprintf "stage%d" i) ~kind ~inputs ~outputs ())
  in
  let rec link = function
    | a :: (b :: _ as rest) ->
        Algorithm.depend alg ~src:(a, 0) ~dst:(b, 0);
        link rest
    | [ _ ] | [] -> ()
  in
  link ops;
  let d = Durations.create () in
  declare d alg ~operators (fun _ -> wcet);
  (alg, d)

let fork_join ?(period = 1.) ?(sensor_wcet = 0.02) ?(branch_wcet = 0.12)
    ?(fusion_wcet = 0.05) ~branches ~operators () =
  if branches < 1 then invalid_arg "Workloads.fork_join: need at least one branch";
  let alg = Algorithm.create ~name:(Printf.sprintf "forkjoin_%d" branches) ~period in
  let sensor = Algorithm.add_op alg ~name:"adc" ~kind:Algorithm.Sensor ~outputs:[| 4 |] () in
  let fusion =
    Algorithm.add_op alg ~name:"fusion" ~kind:Algorithm.Compute
      ~inputs:(Array.make branches 2) ~outputs:[| 1 |] ()
  in
  for i = 0 to branches - 1 do
    let f =
      Algorithm.add_op alg ~name:(Printf.sprintf "filter%d" i) ~kind:Algorithm.Compute
        ~inputs:[| 4 |] ~outputs:[| 2 |] ()
    in
    Algorithm.depend alg ~src:(sensor, 0) ~dst:(f, 0);
    Algorithm.depend alg ~src:(f, 0) ~dst:(fusion, i)
  done;
  let act = Algorithm.add_op alg ~name:"dac" ~kind:Algorithm.Actuator ~inputs:[| 1 |] () in
  Algorithm.depend alg ~src:(fusion, 0) ~dst:(act, 0);
  let d = Durations.create () in
  declare d alg ~operators (fun op ->
      match Algorithm.op_name alg op with
      | "adc" | "dac" -> sensor_wcet
      | "fusion" -> fusion_wcet
      | _ -> branch_wcet);
  (alg, d)

let layered ~rng ~layers ~width ?(wcet_min = 0.001) ?(wcet_max = 0.021) ~operators () =
  if layers < 2 then invalid_arg "Workloads.layered: need at least two layers";
  if width < 1 then invalid_arg "Workloads.layered: need at least one operation per layer";
  if wcet_min < 0. || wcet_max < wcet_min then invalid_arg "Workloads.layered: WCET range";
  let alg = Algorithm.create ~name:"layered" ~period:10. in
  let prev = ref [] in
  for layer = 0 to layers - 1 do
    let ops =
      List.init width (fun i ->
          let kind =
            if layer = 0 then Algorithm.Sensor
            else if layer = layers - 1 then Algorithm.Actuator
            else Algorithm.Compute
          in
          let inputs = if layer = 0 then [||] else [| 1 |] in
          let outputs = if layer = layers - 1 then [||] else [| 1 |] in
          Algorithm.add_op alg
            ~name:(Printf.sprintf "op_%d_%d" layer i)
            ~kind ~inputs ~outputs ())
    in
    (match !prev with
    | [] -> ()
    | sources ->
        List.iter
          (fun op ->
            let src = List.nth sources (Numerics.Rng.int rng (List.length sources)) in
            Algorithm.depend alg ~src:(src, 0) ~dst:(op, 0))
          ops);
    prev := ops
  done;
  let d = Durations.create () in
  declare d alg ~operators (fun _ ->
      if wcet_max > wcet_min then Numerics.Rng.uniform rng wcet_min wcet_max else wcet_min);
  (alg, d)
