(** The adequation heuristic: map and schedule an algorithm graph onto
    an architecture graph, SynDEx style.

    A greedy list-scheduling heuristic in the spirit of
    Grandpierre–Sorel: at every step it considers the {e ready}
    operations (all predecessors scheduled), computes for each its
    best operator (minimising the earliest finish time including any
    needed inter-operator transfers), ranks candidates by {e schedule
    pressure} — earliest finish plus the remaining critical path to
    the end of the graph — and commits the most urgent one together
    with the communication slots its inputs require.

    Memory (delay) operations are placed on the operator of their
    producer after all regular operations; their values travel to
    remote consumers at the end of the iteration and are consumed at
    the start of the next one (see {!Schedule.t}).

    Conditioned operations (paper §3.2.2) are scheduled like
    unconditioned ones — every branch reserves its WCET window, a
    conservative choice documented in DESIGN.md; the runtime variation
    between branches is captured later by the execution simulator and
    the graph of delays.  An implicit width-1 dependency from the
    conditioning-variable source to every conditioned operation is
    added so the condition value is on-site before the branch is
    taken. *)

type strategy =
  | Pressure  (** schedule-pressure ranking (SynDEx-like, default) *)
  | Earliest_finish  (** rank ready operations by earliest finish
      time only (HEFT-like) — kept for the ablation benchmark *)

exception Infeasible of string
(** Raised when some operation has no operator able to run it, or a
    needed transfer has no medium. *)

val run :
  ?strategy:strategy ->
  ?pins:(string * string) list ->
  algorithm:Algorithm.t ->
  architecture:Architecture.t ->
  durations:Durations.t ->
  unit ->
  Schedule.t
(** Produces a valid schedule.  [pins] forces operations (by name)
    onto operators (by name) — the "manual exploration" side of
    SynDEx.  Raises {!Infeasible}, or [Invalid_argument] for malformed
    inputs or unknown pin names. *)

val critical_path : algorithm:Algorithm.t -> architecture:Architecture.t -> durations:Durations.t -> float
(** Communication-free critical path length using operator-averaged
    WCETs — the lower bound the heuristic's pressure ranking is
    computed against (useful for reporting heuristic quality). *)

val refine :
  ?iterations:int ->
  ?seed:int ->
  ?temperature:float ->
  algorithm:Algorithm.t ->
  architecture:Architecture.t ->
  durations:Durations.t ->
  initial:Schedule.t ->
  unit ->
  Schedule.t
(** Local-search refinement of a mapping (SynDEx's manual exploration,
    automated): starting from [initial], repeatedly move one random
    operation to another operator able to run it, rebuild the list
    schedule under the new mapping and accept the move if the makespan
    improves — or, with simulated-annealing probability
    [exp(−Δ/(T·makespan))] where [T] is [temperature] (default 0.05),
    if it worsens.  Runs [iterations] proposals (default 200) and
    returns the best schedule found (never worse than [initial]).
    Deterministic for a given [seed]. *)
