module G = Dataflow.Graph
module B = Dataflow.Block

let ideal_clock ~graph ~period ~blocks =
  let clock = G.add graph (Dataflow.Eventlib.clock ~name:"ideal_clock" ~period ()) in
  List.iter (fun b -> G.connect_event graph ~src:(clock, 0) ~dst:(b, 0)) blocks;
  clock

let attach_delay_graph ?mode ?comm_jitter_frac ?condition_feed ~graph ~schedule ~binding () =
  let dg = Delay_graph.build ?mode ?comm_jitter_frac ?condition_feed ~graph ~schedule () in
  List.iter
    (fun (op, tap) ->
      let block = Scicos_to_syndex.block_of_op binding op in
      let blk = G.block graph block in
      if blk.B.event_inputs > 0 then G.connect_event graph ~src:tap ~dst:(block, 0))
    dg.Delay_graph.completions;
  dg

let measured_instants engine ~block =
  Array.of_list (Sim.Engine.activations engine ~block)

let measured_latencies engine ~block ~period =
  let instants = measured_instants engine ~block in
  Array.mapi (fun k t -> t -. (float_of_int k *. period)) instants
