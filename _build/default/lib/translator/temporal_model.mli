(** The temporal model of a SynDEx implementation (paper §3.2): the
    start/completion instants of every computation and communication
    operation, and the derived sampling/actuation latencies of paper
    eqs. (1)–(2).

    Two sources of truth:
    - the {e static} model reads the WCET-based schedule — every
      iteration is identical, latencies are constants;
    - the {e measured} model reads an execution trace from
      {!Exec.Machine} — latencies vary per iteration (jitter). *)

type static = {
  period : float;
  makespan : float;
  fits_period : bool;
  sampling_offsets : (Aaa.Algorithm.op_id * float) list;
      (** per sensor [j]: the constant latency [Ls_j] — the completion
          offset of the sensor operation within the period *)
  actuation_offsets : (Aaa.Algorithm.op_id * float) list;
      (** per actuator [j]: the constant latency [La_j] *)
}

val of_schedule : Aaa.Schedule.t -> static

type series = {
  op : Aaa.Algorithm.op_id;
  latencies : float array;  (** per iteration; [nan] when skipped *)
  mean : float;
  stddev : float;
  lmin : float;
  lmax : float;
  jitter : float;  (** [lmax − lmin] *)
}

val sampling_series : Exec.Machine.trace -> series list
(** Measured sampling latencies [Ls_j(k)] with summary statistics
    (nan-skipping). *)

val actuation_series : Exec.Machine.trace -> series list

val io_latency : static -> float
(** Largest actuation offset — the static input-to-output latency the
    control engineer must tolerate (the classic
    "computational delay" of Cervin et al.). *)

val pp_static : Format.formatter -> static -> unit
val pp_series : Aaa.Algorithm.t -> Format.formatter -> series -> unit
