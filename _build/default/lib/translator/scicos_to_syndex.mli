(** Extraction of the control law from a block diagram into a SynDEx
    algorithm graph — the "automatic translator" of paper §1.

    The caller names the {e member} blocks that constitute the control
    software (controller blocks, samplers, holds, reference
    generators, delays).  Classification follows the diagram
    structure:
    - a member reading data from a non-member block is a {e sensor}
      (it acquires a measure from the environment/plant side);
    - a member writing data to a non-member block is an {e actuator};
    - members listed in [memories] are inter-iteration delays;
    - every other member is a {e compute} operation.

    A member may not be simultaneously sensor and actuator (split the
    block), and members must have at least one regular port (pure
    event blocks such as clocks are part of the simulation harness,
    not of the control law). *)

type spec = {
  members : Dataflow.Graph.block_id list;  (** the control-law blocks *)
  memories : Dataflow.Graph.block_id list;  (** members acting as delays *)
  period : float;  (** sampling period [Ts] of the control law *)
}

type binding
(** Two-way association between diagram blocks and algorithm
    operations (operation names reuse block names). *)

val extract : Dataflow.Graph.t -> spec -> Aaa.Algorithm.t * binding
(** Builds the algorithm graph: one operation per member, one
    dependency per data link between members (port indices are
    preserved; widths are taken from the block ports).  Raises
    [Invalid_argument] on classification conflicts, on a member with
    no regular port, or on [memories] not included in [members]. *)

val op_of_block : binding -> Dataflow.Graph.block_id -> Aaa.Algorithm.op_id option
val block_of_op : binding -> Aaa.Algorithm.op_id -> Dataflow.Graph.block_id
(** Raises [Not_found] for operations of another algorithm. *)

val declare_condition :
  binding ->
  algorithm:Aaa.Algorithm.t ->
  var:string ->
  source:Dataflow.Graph.block_id * int ->
  ops:(Dataflow.Graph.block_id * int) list ->
  unit
(** Marks conditioning after extraction: [source] is the member block
    output computing variable [var]; each [(block, value)] in [ops]
    conditions that block's operation on [var = value].  Wraps
    {!Aaa.Algorithm.set_condition_source} and rebuilds the operations'
    condition tags.  Raises if a block is not a member. *)
