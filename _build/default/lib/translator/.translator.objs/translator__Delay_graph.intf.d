lib/translator/delay_graph.mli: Aaa Dataflow Exec
