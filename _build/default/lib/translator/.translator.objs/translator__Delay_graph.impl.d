lib/translator/delay_graph.ml: Aaa Dataflow Exec Float Hashtbl List Numerics Option Printf String
