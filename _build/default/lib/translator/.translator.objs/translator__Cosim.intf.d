lib/translator/cosim.mli: Aaa Dataflow Delay_graph Scicos_to_syndex Sim
