lib/translator/scicos_to_syndex.ml: Aaa Array Dataflow Fun List Printf
