lib/translator/temporal_model.mli: Aaa Exec Format
