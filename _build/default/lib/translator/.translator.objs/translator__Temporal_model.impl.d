lib/translator/temporal_model.ml: Aaa Array Exec Float Format List Numerics
