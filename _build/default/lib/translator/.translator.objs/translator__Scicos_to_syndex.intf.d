lib/translator/scicos_to_syndex.mli: Aaa Dataflow
