lib/translator/cosim.ml: Array Dataflow Delay_graph List Scicos_to_syndex Sim
