module Alg = Aaa.Algorithm
module Sched = Aaa.Schedule

type static = {
  period : float;
  makespan : float;
  fits_period : bool;
  sampling_offsets : (Alg.op_id * float) list;
  actuation_offsets : (Alg.op_id * float) list;
}

let of_schedule sched =
  {
    period = Alg.period sched.Sched.algorithm;
    makespan = sched.Sched.makespan;
    fits_period = Sched.fits_period sched;
    sampling_offsets = Sched.sensor_completions sched;
    actuation_offsets = Sched.actuator_completions sched;
  }

type series = {
  op : Alg.op_id;
  latencies : float array;
  mean : float;
  stddev : float;
  lmin : float;
  lmax : float;
  jitter : float;
}

let summarise (op, latencies) =
  let valid = Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list latencies)) in
  if Array.length valid = 0 then
    { op; latencies; mean = Float.nan; stddev = Float.nan; lmin = Float.nan;
      lmax = Float.nan; jitter = Float.nan }
  else
    let lmin = Numerics.Stats.min valid and lmax = Numerics.Stats.max valid in
    {
      op;
      latencies;
      mean = Numerics.Stats.mean valid;
      stddev = Numerics.Stats.stddev valid;
      lmin;
      lmax;
      jitter = lmax -. lmin;
    }

let sampling_series trace = List.map summarise (Exec.Machine.sampling_latencies trace)
let actuation_series trace = List.map summarise (Exec.Machine.actuation_latencies trace)

let io_latency static =
  List.fold_left (fun acc (_, t) -> Float.max acc t) 0. static.actuation_offsets

let pp_static ppf s =
  Format.fprintf ppf
    "@[<v>temporal model: period=%g makespan=%g (%s)@,sampling offsets:@," s.period
    s.makespan
    (if s.fits_period then "fits" else "OVERRUNS");
  List.iter (fun (_, t) -> Format.fprintf ppf "  Ls = %g@," t) s.sampling_offsets;
  Format.fprintf ppf "actuation offsets:@,";
  List.iter (fun (_, t) -> Format.fprintf ppf "  La = %g@," t) s.actuation_offsets;
  Format.fprintf ppf "@]"

let pp_series alg ppf s =
  Format.fprintf ppf "%s: mean=%g std=%g min=%g max=%g jitter=%g" (Alg.op_name alg s.op)
    s.mean s.stddev s.lmin s.lmax s.jitter
