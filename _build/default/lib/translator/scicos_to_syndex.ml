module G = Dataflow.Graph
module B = Dataflow.Block
module Alg = Aaa.Algorithm

type spec = {
  members : G.block_id list;
  memories : G.block_id list;
  period : float;
}

type binding = {
  mutable pairs : (G.block_id * Alg.op_id) list;
}

let op_of_block binding block =
  List.assoc_opt block binding.pairs

let block_of_op binding op =
  match List.find_opt (fun (_, o) -> o = op) binding.pairs with
  | Some (b, _) -> b
  | None -> raise Not_found

let extract graph spec =
  if spec.members = [] then invalid_arg "Scicos_to_syndex.extract: empty member set";
  List.iter
    (fun m ->
      if not (List.mem m spec.members) then
        invalid_arg "Scicos_to_syndex.extract: memories must be members")
    spec.memories;
  let is_member b = List.mem b spec.members in
  (* classification from the position in the diagram *)
  let reads_from_outside b =
    let blk = G.block graph b in
    let n_in = Array.length blk.B.in_widths in
    List.exists
      (fun p ->
        match G.data_source graph b p with
        | Some (src, _) -> not (is_member src)
        | None -> false)
      (List.init n_in Fun.id)
  in
  let writes_to_outside b =
    List.exists
      (fun ((src, _), (dst, _)) -> src = b && not (is_member dst))
      (G.data_links graph)
  in
  let algorithm =
    Alg.create ~name:"extracted_control_law" ~period:spec.period
  in
  let binding = { pairs = [] } in
  List.iter
    (fun b ->
      let blk = G.block graph b in
      if Array.length blk.B.in_widths = 0 && Array.length blk.B.out_widths = 0 then
        invalid_arg
          (Printf.sprintf "Scicos_to_syndex.extract: member %S has no regular port"
             blk.B.name);
      let kind =
        let sensor = reads_from_outside b and actuator = writes_to_outside b in
        if sensor && actuator then
          invalid_arg
            (Printf.sprintf
               "Scicos_to_syndex.extract: %S is both sensor and actuator — split it"
               blk.B.name)
        else if List.mem b spec.memories then
          if sensor || actuator then
            invalid_arg
              (Printf.sprintf "Scicos_to_syndex.extract: memory %S touches the plant side"
                 blk.B.name)
          else Alg.Memory
        else if sensor then Alg.Sensor
        else if actuator then Alg.Actuator
        else Alg.Compute
      in
      (* a sensor's outside-facing input ports and an actuator's
         outside-facing output ports stay out of the algorithm graph:
         they are the physical interface *)
      let inputs =
        Array.of_list
          (List.filter_map
             (fun p ->
               match G.data_source graph b p with
               | Some (src, _) when is_member src -> Some blk.B.in_widths.(p)
               | Some _ | None -> None)
             (List.init (Array.length blk.B.in_widths) Fun.id))
      in
      let outputs =
        match kind with
        | Alg.Actuator -> [||]
        | Alg.Sensor | Alg.Compute | Alg.Memory -> Array.copy blk.B.out_widths
      in
      let op = Alg.add_op algorithm ~name:blk.B.name ~kind ~inputs ~outputs () in
      binding.pairs <- binding.pairs @ [ (b, op) ])
    spec.members;
  (* dependencies: data links whose two ends are members.  Input port
     indices must be re-based because outside-facing input ports were
     dropped. *)
  let member_input_index b p =
    let blk = G.block graph b in
    let rec count acc q =
      if q >= p then acc
      else
        let acc =
          match G.data_source graph b q with
          | Some (src, _) when is_member src -> acc + 1
          | Some _ | None -> acc
        in
        count acc (q + 1)
    in
    ignore blk;
    count 0 0
  in
  List.iter
    (fun ((src, sp), (dst, dp)) ->
      if is_member src && is_member dst then
        match (op_of_block binding src, op_of_block binding dst) with
        | Some src_op, Some dst_op ->
            Alg.depend algorithm ~src:(src_op, sp) ~dst:(dst_op, member_input_index dst dp)
        | None, _ | _, None -> assert false)
    (G.data_links graph);
  (algorithm, binding)

let declare_condition binding ~algorithm ~var ~source:(src_block, src_port) ~ops =
  let resolve block =
    match op_of_block binding block with
    | Some op -> op
    | None -> invalid_arg "Scicos_to_syndex.declare_condition: block is not a member"
  in
  Alg.set_condition_source algorithm ~var (resolve src_block, src_port);
  List.iter
    (fun (block, value) ->
      Alg.set_op_condition algorithm (resolve block) { Alg.var; value })
    ops
