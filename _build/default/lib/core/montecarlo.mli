(** Monte-Carlo evaluation of an implementation: the implemented
    co-simulation repeated over many execution-time draws, so the
    design decision rests on a cost {e distribution} rather than a
    single worst-case trace.

    The WCET-static co-simulation bounds the degradation; under
    jittered laws the actual cost varies run to run.  This module runs
    [runs] co-simulations with consecutive seeds and summarises. *)

type summary = {
  runs : int;
  costs : float array;  (** one implemented cost per run, seed order *)
  mean : float;
  stddev : float;
  cmin : float;
  cmax : float;
  p95 : float;
  static_cost : float;
      (** cost of the deterministic WCET (static) co-simulation — an
          upper envelope the samples should respect for monotone
          latency-cost designs *)
}

val run :
  ?runs:int ->
  ?base_seed:int ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  design:Design.t ->
  implementation:Methodology.implementation ->
  unit ->
  summary
(** Default 20 runs from [base_seed] 1000, uniform law over
    [\[bcet_frac·WCET, WCET\]] with [bcet_frac] 0.4.  Raises
    [Invalid_argument] on [runs <= 0]. *)

val pp : Format.formatter -> summary -> unit
