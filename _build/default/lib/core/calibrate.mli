(** Calibration — amending the control law to compensate for the
    implementation's latencies (the loop the paper's methodology
    shortens by predicting the needed amendment at design time).

    The model-based route: the static temporal model gives the
    input-to-output latency [τ]; the plant is re-discretised with that
    delay (Åström–Wittenmark augmentation) and the regulator is
    re-synthesised on the augmented model. *)

val lqr_delay_gain :
  plant:Control.Lti.t ->
  ts:float ->
  delay:float ->
  q:Numerics.Matrix.t ->
  r:Numerics.Matrix.t ->
  unit ->
  Numerics.Matrix.t
(** LQR gain over the delay-augmented state [\[x; u_prev\]] for a
    continuous [plant] sampled at [ts] with an input delay
    [0 <= delay <= ts].  [q] weights the physical state ([n×n]); the
    augmented state's [u_prev] entries get a negligible weight.
    Returns the [m×(n+m)] gain for
    {!Dataflow.Clib.delayed_state_feedback}. *)

val lqr_gain :
  plant:Control.Lti.t ->
  ts:float ->
  q:Numerics.Matrix.t ->
  r:Numerics.Matrix.t ->
  unit ->
  Numerics.Matrix.t
(** Delay-free LQR gain ([m×n]) on the ZOH-discretised plant — the
    nominal design the calibrated one is compared against. *)

val retune_pid : Control.Pid.gains -> latency_fraction:float -> Control.Pid.gains
(** Rule-of-thumb PID detuning for a loop whose I/O latency is
    [latency_fraction] of the period: gains are scaled by
    [1/(1 + latency_fraction)] (derivative slightly more), trading
    speed for the phase margin the latency consumed.  A pragmatic
    calibration when no plant model is available for re-synthesis. *)

val pid_for_delay :
  ?safety:float ->
  plant:Control.Lti.t ->
  ts:float ->
  delay:float ->
  gains:Control.Pid.gains ->
  unit ->
  Control.Pid.gains * float
(** Margin-based PID calibration: uniformly scales the gains down by
    bisection until the discrete open loop [C(z)·G(z)] (with [C] the
    implementation-exact {!Control.Pid.to_tf}) has a delay margin of
    at least [safety × delay] (default safety 1.5).  Returns the
    calibrated gains and the achieved delay margin.  Gains already
    satisfying the requirement are returned unchanged.  Raises
    [Invalid_argument] on a non-SISO plant or non-positive
    parameters; raises [Failure] when even 1 % of the gains cannot
    meet the requirement. *)
