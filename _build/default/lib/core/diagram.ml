module Sexp = Aaa.Sexp
module G = Dataflow.Graph
module C = Dataflow.Clib
module M = Numerics.Matrix

type t = {
  design : Design.t;
  architecture : Aaa.Architecture.t;
  durations : Aaa.Durations.t;
  pins : (string * string) list;
}

let fail fmt = Printf.ksprintf failwith fmt

let floats_of key items =
  match Sexp.keyed key items with
  | Some atoms ->
      List.map
        (fun e ->
          let a = Sexp.atom e in
          match float_of_string_opt a with
          | Some f -> f
          | None -> fail "Diagram: %S under (%s ...) is not a number" a key)
        atoms
  | None -> fail "Diagram: missing (%s ...)" key

let floats_opt key items =
  match Sexp.keyed key items with None -> None | Some _ -> Some (floats_of key items)

let float_req key items =
  match floats_of key items with
  | [ v ] -> v
  | _ -> fail "Diagram: (%s v) expects a single number" key

let float_opt key items =
  match Sexp.keyed key items with Some _ -> Some (float_req key items) | None -> None

let int_req key items =
  let v = float_req key items in
  int_of_float v

let flag key items = Sexp.keyed key items <> None

(* matrices written as (a (r00 r01) (r10 r11)) *)
let matrix_of key items =
  match Sexp.keyed key items with
  | None -> fail "Diagram: missing matrix (%s ...)" key
  | Some rows ->
      let parsed =
        List.map
          (fun row ->
            List.map
              (fun e ->
                match float_of_string_opt (Sexp.atom e) with
                | Some f -> f
                | None -> fail "Diagram: matrix %s has a non-numeric entry" key)
              (Sexp.list row)
            |> Array.of_list)
          rows
      in
      M.of_arrays (Array.of_list parsed)

let plant_of items =
  match Sexp.keyed "plant" items with
  | Some (Sexp.Atom name :: params) -> (
      let params =
        List.map
          (fun e ->
            match float_of_string_opt (Sexp.atom e) with
            | Some f -> f
            | None -> fail "Diagram: plant parameter is not a number")
          params
      in
      match (name, params) with
      | "dc-motor", [] -> Control.Plants.dc_motor Control.Plants.default_dc_motor
      | "first-order", [ tau; gain ] -> Control.Plants.first_order ~tau ~gain
      | "double-integrator", [] -> Control.Plants.double_integrator ()
      | "mass-spring-damper", [ m; k; c ] -> Control.Plants.mass_spring_damper ~m ~k ~c
      | "quarter-car", [] -> Control.Plants.quarter_car Control.Plants.default_quarter_car
      | "pendulum", [] -> Control.Plants.pendulum_linear Control.Plants.default_pendulum
      | "thermal", [] -> Control.Plants.thermal Control.Plants.default_thermal
      | "cruise", [] -> Control.Plants.cruise Control.Plants.default_cruise
      | "cruise", [ mass; drag ] -> Control.Plants.cruise { Control.Plants.mass; drag }
      | _ -> fail "Diagram: unknown plant spec %S (or wrong parameter count)" name)
  | Some _ -> fail "Diagram: (plant name params...) expected"
  | None ->
      (* explicit state-space matrices *)
      let a = matrix_of "a" items in
      let b = matrix_of "b" items in
      let c = matrix_of "c" items in
      let d = matrix_of "d" items in
      Control.Lti.make ~domain:Control.Lti.Continuous ~a ~b ~c ~d

let build_block ~name items =
  let block_type =
    match Sexp.keyed "type" items with
    | Some [ Sexp.Atom t ] -> t
    | Some _ | None -> fail "Diagram: block %S needs (type ...)" name
  in
  match block_type with
  | "const" -> C.constant ~name (Array.of_list (floats_of "value" items))
  | "gain" -> C.gain ~name (float_req "k" items)
  | "sum" -> C.sum ~name (Array.of_list (floats_of "signs" items))
  | "saturation" ->
      C.saturation ~name ~lo:(float_req "lo" items) ~hi:(float_req "hi" items) ()
  | "quantizer" -> C.quantizer ~name ~step:(float_req "step" items) ()
  | "dead-zone" -> C.dead_zone ~name ~width:(float_req "width" items) ()
  | "sample-hold" ->
      let initial =
        match floats_opt "initial" items with
        | Some vs -> Some (Array.of_list vs)
        | None -> None
      in
      C.sample_hold ~name ?initial (int_req "width" items)
  | "unit-delay" -> C.unit_delay ~name (Array.of_list (floats_of "initial" items))
  | "integrator" -> C.integrator ~name (Array.of_list (floats_of "x0" items))
  | "pid" ->
      let gains =
        {
          Control.Pid.kp = float_req "kp" items;
          ki = float_req "ki" items;
          kd = float_req "kd" items;
        }
      in
      C.pid ~name
        (Control.Pid.create ?umin:(float_opt "umin" items) ?umax:(float_opt "umax" items)
           ?windup:(float_opt "windup" items) ~gains ~ts:(float_req "ts" items) ())
  | "state-feedback" ->
      C.state_feedback ~name (M.of_arrays [| Array.of_list (floats_of "k" items) |])
  | "step" ->
      C.step_source ~name
        ~at:(Option.value (float_opt "at" items) ~default:0.)
        ~before:(Option.value (float_opt "before" items) ~default:0.)
        ~after:(float_req "after" items) ()
  | "sine" ->
      C.sine_source ~name
        ?amplitude:(float_opt "amplitude" items)
        ?phase:(float_opt "phase" items)
        ~freq_hz:(float_req "freq" items) ()
  | "relay" ->
      C.relay ~name ~on_above:(float_req "on-above" items)
        ~off_below:(float_req "off-below" items) ~out_on:(float_req "out-on" items)
        ~out_off:(float_req "out-off" items) ()
  | "biquad" ->
      C.biquad ~name
        ~b:(Array.of_list (floats_of "b" items))
        ~a:(Array.of_list (floats_of "a" items))
        ()
  | "mux" ->
      C.mux ~name (Array.of_list (List.map int_of_float (floats_of "widths" items)))
  | "demux" ->
      C.demux ~name (Array.of_list (List.map int_of_float (floats_of "widths" items)))
  | "lti" ->
      let plant = plant_of items in
      C.lti_continuous ~name ~split_inputs:(flag "split-inputs" items)
        ~split_outputs:(flag "split-outputs" items)
        ~x0:(Array.of_list (floats_of "x0" items))
        plant
  | t -> fail "Diagram: unknown block type %S" t

(* (link src port dst port) *)
let parse_link row =
  match row with
  | [ Sexp.Atom src; Sexp.Atom sp; Sexp.Atom dst; Sexp.Atom dp ] -> (
      match (int_of_string_opt sp, int_of_string_opt dp) with
      | Some sp, Some dp -> (src, sp, dst, dp)
      | _ -> fail "Diagram: link ports must be integers")
  | _ -> fail "Diagram: (link src port dst port) expected"

let names_of key items =
  match Sexp.keyed key items with
  | Some atoms -> List.map Sexp.atom atoms
  | None -> []

type cost_spec = { metric : string; probe : string; component : int; reference : float }

let parse_cost items =
  match Sexp.keyed "cost" items with
  | Some [ Sexp.Atom metric; Sexp.Atom probe; Sexp.Atom component; Sexp.Atom reference ] ->
      {
        metric;
        probe;
        component = int_of_string component;
        reference = float_of_string reference;
      }
  | Some [ Sexp.Atom metric; Sexp.Atom probe; Sexp.Atom component ] ->
      { metric; probe; component = int_of_string component; reference = 0. }
  | Some _ -> fail "Diagram: (cost metric probe component [reference]) expected"
  | None -> fail "Diagram: missing (cost ...) in the design section"

let cost_fn spec engine =
  let trace = Sim.Engine.probe_component engine spec.probe spec.component in
  match spec.metric with
  | "iae" -> Control.Metrics.iae ~reference:spec.reference trace
  | "ise" -> Control.Metrics.ise ~reference:spec.reference trace
  | "itae" -> Control.Metrics.itae ~reference:spec.reference trace
  | m -> fail "Diagram: unknown cost metric %S (iae|ise|itae)" m

let parse text =
  match Sexp.parse text with
  | [ Sexp.List (Sexp.Atom "lifecycle" :: sections) ] ->
      let design_items =
        match Sexp.keyed "design" sections with
        | Some items -> items
        | None -> fail "Diagram: missing (design ...) section"
      in
      let diagram_items =
        match Sexp.keyed "diagram" sections with
        | Some items -> items
        | None -> fail "Diagram: missing (diagram ...) section"
      in
      let name = Sexp.atom_of "name" design_items in
      let ts = Sexp.float_of "ts" design_items in
      let horizon = Sexp.float_of "horizon" design_items in
      let cost_spec = parse_cost design_items in
      (* the block list is re-instantiated at each build (fresh
         closures), which also makes builds deterministic *)
      let block_forms =
        List.map
          (fun items -> (Sexp.atom_of "name" items, items))
          (Sexp.keyed_all "block" diagram_items)
      in
      (if block_forms = [] then fail "Diagram: no blocks");
      let links = List.map parse_link (Sexp.keyed_all "link" diagram_items) in
      let members = names_of "members" diagram_items in
      let memories = names_of "memories" diagram_items in
      let clocked = names_of "clocked" diagram_items in
      let probes =
        List.map
          (fun row ->
            match row with
            | [ Sexp.Atom pname; Sexp.Atom block; Sexp.Atom port ] ->
                (pname, block, int_of_string port)
            | _ -> fail "Diagram: (probe name block port) expected")
          (Sexp.keyed_all "probe" diagram_items)
      in
      if not (List.exists (fun (p, _, _) -> String.equal p cost_spec.probe) probes) then
        fail "Diagram: the cost references probe %S which is not declared" cost_spec.probe;
      let clocked = if clocked = [] then members else clocked in
      let build () =
        let g = G.create () in
        let table = Hashtbl.create 16 in
        List.iter
          (fun (bname, items) ->
            if Hashtbl.mem table bname then fail "Diagram: duplicate block %S" bname;
            Hashtbl.replace table bname (G.add g (build_block ~name:bname items)))
          block_forms;
        let resolve bname =
          match Hashtbl.find_opt table bname with
          | Some id -> id
          | None -> fail "Diagram: unknown block %S" bname
        in
        List.iter
          (fun (src, sp, dst, dp) ->
            G.connect_data g ~src:(resolve src, sp) ~dst:(resolve dst, dp))
          links;
        {
          Design.graph = g;
          clocked = List.map resolve clocked;
          members = List.map resolve members;
          memories = List.map resolve memories;
          probes = List.map (fun (pname, block, port) -> (pname, (resolve block, port))) probes;
          condition_feed = None;
          customize_algorithm = None;
        }
      in
      (* fail fast on structural errors *)
      let probe_build = build () in
      G.validate probe_build.Design.graph;
      let design = Design.make ~name ~ts ~horizon ~cost:(cost_fn cost_spec) build in
      let architecture =
        match Sexp.keyed "architecture" sections with
        | Some items -> Aaa.Sdx.parse_architecture items
        | None -> fail "Diagram: missing (architecture ...) section"
      in
      let durations =
        match Sexp.keyed "durations" sections with
        | Some items -> Aaa.Sdx.parse_durations architecture items
        | None -> Aaa.Durations.create ()
      in
      let pins =
        match Sexp.keyed "pins" sections with
        | Some items -> Aaa.Sdx.parse_pins items
        | None -> []
      in
      { design; architecture; durations; pins }
  | _ -> fail "Diagram: expected a single (lifecycle ...) form"

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
