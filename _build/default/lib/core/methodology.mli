(** The design-lifecycle methodology, end to end (paper §1):

    {v
      design (Scicos)                    — Design.t
        → ideal simulation              — simulate_ideal
        → extraction (Scicos→SynDEx)    — extract
        → adequation + code generation  — implement
        → temporal model                — implementation.static
        → graph of delays co-simulation — simulate_implemented
        → comparison / calibration      — evaluate, Calibrate
    v}

    The point of the methodology — and of this module — is that the
    implemented behaviour is evaluated by {e simulation at design
    time}, before any code runs on a target, cutting the
    design/implementation/calibration iterations of the traditional
    lifecycle. *)

type implementation = {
  built : Design.built;  (** the diagram instance used for extraction *)
  algorithm : Aaa.Algorithm.t;
  binding : Translator.Scicos_to_syndex.binding;
  schedule : Aaa.Schedule.t;
  executive : Aaa.Codegen.t;
  static : Translator.Temporal_model.static;
}

val simulate_ideal : ?meth:Numerics.Ode.method_ -> Design.t -> Sim.Engine.t
(** Builds the diagram, attaches the stroboscopic clock, runs to the
    design's horizon and returns the engine (probes recorded, costs
    computable). *)

val extract : Design.t -> Design.built * Aaa.Algorithm.t * Translator.Scicos_to_syndex.binding
(** Scicos→SynDEx translation of the design's control law, with the
    design's conditioning hook applied. *)

val implement :
  ?strategy:Aaa.Adequation.strategy ->
  ?pins:(string * string) list ->
  design:Design.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  unit ->
  implementation
(** Extraction, adequation, executive generation and static temporal
    model in one step.  Raises {!Aaa.Adequation.Infeasible} when the
    mapping is impossible. *)

val simulate_implemented :
  ?meth:Numerics.Ode.method_ ->
  ?mode:Translator.Delay_graph.mode ->
  ?comm_jitter_frac:float ->
  Design.t ->
  implementation ->
  Sim.Engine.t
(** Fresh diagram + graph of delays generated from the
    implementation's schedule, simulated to the horizon.  The control
    law blocks are identical to the ideal simulation; only the
    activation events differ (paper Fig. 3). *)

val execute :
  ?config:Exec.Machine.config -> Design.t -> implementation -> Exec.Machine.trace
(** Runs the generated executive on the simulated distributed machine
    (using the design's run-time condition values when present) —
    the measured counterpart of the static temporal model. *)

val conditions_from_ideal :
  ?meth:Numerics.Ode.method_ ->
  iterations:int ->
  Design.t ->
  implementation ->
  iteration:int ->
  var:string ->
  int
(** Derives a run-time condition profile for {!execute} from the
    {e ideal} co-simulation: the design's condition-feed signals are
    probed, the ideal loop is simulated for [iterations] periods, and
    each variable's value at the start of period [k] becomes the
    condition for machine iteration [k] — so the executive's branches
    follow the same mode trajectory the control engineer simulated.
    Unknown variables and out-of-range iterations return 0.  Raises
    [Invalid_argument] when the design declares no condition feed. *)

type comparison = {
  implementation : implementation;
  ideal_cost : float;
  implemented_cost : float;
  degradation_pct : float;  (** cost increase of the implementation *)
}

val evaluate :
  ?meth:Numerics.Ode.method_ ->
  ?mode:Translator.Delay_graph.mode ->
  ?strategy:Aaa.Adequation.strategy ->
  ?pins:(string * string) list ->
  design:Design.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  unit ->
  comparison
(** The full loop: ideal cost vs implemented cost on one
    architecture. *)
