type implementation = {
  built : Design.built;
  algorithm : Aaa.Algorithm.t;
  binding : Translator.Scicos_to_syndex.binding;
  schedule : Aaa.Schedule.t;
  executive : Aaa.Codegen.t;
  static : Translator.Temporal_model.static;
}

let engine_with_probes ?meth (built : Design.built) =
  let engine = Sim.Engine.create ?meth built.Design.graph in
  List.iter
    (fun (name, (block, port)) -> Sim.Engine.add_probe engine ~name ~block ~port)
    built.Design.probes;
  engine

let simulate_ideal ?meth (design : Design.t) =
  let built = design.Design.build () in
  let _clock =
    Translator.Cosim.ideal_clock ~graph:built.Design.graph ~period:design.Design.ts
      ~blocks:built.Design.clocked
  in
  let engine = engine_with_probes ?meth built in
  Sim.Engine.run ~t_end:design.Design.horizon engine;
  engine

let extract (design : Design.t) =
  let built = design.Design.build () in
  let spec =
    {
      Translator.Scicos_to_syndex.members = built.Design.members;
      memories = built.Design.memories;
      period = design.Design.ts;
    }
  in
  let algorithm, binding = Translator.Scicos_to_syndex.extract built.Design.graph spec in
  (match built.Design.customize_algorithm with
  | Some hook -> hook algorithm binding
  | None -> ());
  (built, algorithm, binding)

let implement ?strategy ?pins ~design ~architecture ~durations () =
  let built, algorithm, binding = extract design in
  let schedule =
    Aaa.Adequation.run ?strategy ?pins ~algorithm ~architecture ~durations ()
  in
  let executive = Aaa.Codegen.generate schedule in
  let static = Translator.Temporal_model.of_schedule schedule in
  { built; algorithm; binding; schedule; executive; static }

let simulate_implemented ?meth ?mode ?comm_jitter_frac (design : Design.t) implementation =
  (* [Design.build] is deterministic, so block ids recorded in the
     binding are valid in this fresh instance *)
  let built = design.Design.build () in
  let _dg =
    Translator.Cosim.attach_delay_graph ?mode ?comm_jitter_frac
      ?condition_feed:built.Design.condition_feed ~graph:built.Design.graph
      ~schedule:implementation.schedule ~binding:implementation.binding ()
  in
  let engine = engine_with_probes ?meth built in
  Sim.Engine.run ~t_end:design.Design.horizon engine;
  engine

let execute ?config (design : Design.t) implementation =
  let config =
    match (config, design.Design.condition_runtime) with
    | Some c, _ -> c
    | None, Some condition -> { Exec.Machine.default_config with condition }
    | None, None -> Exec.Machine.default_config
  in
  Exec.Machine.run ~config implementation.executive

let conditions_from_ideal ?meth ~iterations (design : Design.t) implementation =
  let built = design.Design.build () in
  let feed =
    match built.Design.condition_feed with
    | Some f -> f
    | None -> invalid_arg "Methodology.conditions_from_ideal: design has no condition feed"
  in
  (* conditioning variables of the extracted algorithm *)
  let vars =
    List.sort_uniq compare
      (List.filter_map
         (fun op ->
           Option.map
             (fun c -> c.Aaa.Algorithm.var)
             (Aaa.Algorithm.op_cond implementation.algorithm op))
         (Aaa.Algorithm.ops implementation.algorithm))
  in
  let _clock =
    Translator.Cosim.ideal_clock ~graph:built.Design.graph ~period:design.Design.ts
      ~blocks:built.Design.clocked
  in
  let engine = Sim.Engine.create ?meth built.Design.graph in
  List.iteri
    (fun i var ->
      let block, port = feed var in
      Sim.Engine.add_probe engine ~name:(Printf.sprintf "__cond_%d" i) ~block ~port)
    vars;
  Sim.Engine.run ~t_end:(float_of_int iterations *. design.Design.ts) engine;
  let profile =
    List.mapi
      (fun i var ->
        let trace = Sim.Engine.probe engine (Printf.sprintf "__cond_%d" i) in
        let times = Sim.Trace.times trace and values = Sim.Trace.values trace in
        let at_period k =
          (* last recorded value at or before k·Ts (values hold
             between events) *)
          let t_k = (float_of_int k *. design.Design.ts) +. 1e-9 in
          let rec find best j =
            if j >= Array.length times then best
            else if times.(j) <= t_k then find (Some j) (j + 1)
            else best
          in
          match find None 0 with
          | Some j -> int_of_float (Float.round values.(j).(0))
          | None -> 0
        in
        (var, Array.init iterations at_period))
      vars
  in
  fun ~iteration ~var ->
    match List.assoc_opt var profile with
    | Some arr when iteration >= 0 && iteration < Array.length arr -> arr.(iteration)
    | Some _ | None -> 0

type comparison = {
  implementation : implementation;
  ideal_cost : float;
  implemented_cost : float;
  degradation_pct : float;
}

let evaluate ?meth ?mode ?strategy ?pins ~design ~architecture ~durations () =
  let ideal_engine = simulate_ideal ?meth design in
  let ideal_cost = design.Design.cost ideal_engine in
  let implementation = implement ?strategy ?pins ~design ~architecture ~durations () in
  let impl_engine = simulate_implemented ?meth ?mode design implementation in
  let implemented_cost = design.Design.cost impl_engine in
  {
    implementation;
    ideal_cost;
    implemented_cost;
    degradation_pct =
      Control.Metrics.degradation_pct ~ideal:ideal_cost ~actual:implemented_cost;
  }
