type summary = {
  runs : int;
  costs : float array;
  mean : float;
  stddev : float;
  cmin : float;
  cmax : float;
  p95 : float;
  static_cost : float;
}

let run ?(runs = 20) ?(base_seed = 1000) ?(law = Exec.Timing_law.Uniform)
    ?(bcet_frac = 0.4) ~design ~implementation () =
  if runs <= 0 then invalid_arg "Montecarlo.run: non-positive run count";
  let cost_with mode =
    let engine = Methodology.simulate_implemented ~mode design implementation in
    design.Design.cost engine
  in
  let costs =
    Array.init runs (fun i ->
        cost_with
          (Translator.Delay_graph.Jittered { law; bcet_frac; seed = base_seed + i }))
  in
  let static_cost = cost_with Translator.Delay_graph.Static_wcet in
  {
    runs;
    costs;
    mean = Numerics.Stats.mean costs;
    stddev = Numerics.Stats.stddev costs;
    cmin = Numerics.Stats.min costs;
    cmax = Numerics.Stats.max costs;
    p95 = Numerics.Stats.percentile costs 95.;
    static_cost;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>monte-carlo over %d runs:@,\
    \  mean = %.6g  std = %.6g@,\
    \  min = %.6g  p95 = %.6g  max = %.6g@,\
    \  static (WCET) cost = %.6g@]"
    s.runs s.mean s.stddev s.cmin s.p95 s.cmax s.static_cost
