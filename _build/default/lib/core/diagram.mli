(** Lifecycle files: a complete control-design experiment — block
    diagram, architecture, WCETs and evaluation settings — as one
    textual document, so the whole methodology runs from data
    (see the [syndex lifecycle] CLI command).

    Format (s-expressions; [";"] comments):

    {v
    (lifecycle
      (design (name dc_motor) (ts 0.05) (horizon 10)
              (cost iae y 0 1.0))        ; metric, probe, component, reference
      (diagram
        (block (name plant) (type lti) (plant dc-motor) (x0 0 0))
        (block (name reference) (type const) (value 1))
        (block (name sample_y) (type sample-hold) (width 1))
        (block (name pid) (type pid) (kp 60) (ki 80) (kd 0) (ts 0.05))
        (block (name hold_u) (type sample-hold) (width 1))
        (link plant 0 sample_y 0)
        (link reference 0 pid 0)
        (link sample_y 0 pid 1)
        (link pid 0 hold_u 0)
        (link hold_u 0 plant 0)
        (members reference sample_y pid hold_u)
        (clocked sample_y pid hold_u)
        (probe y plant 0)
        (probe u hold_u 0))
      (architecture (name two_ecu) (operator ecu0) (operator ecu1)
        (bus (name can) (latency 0.001) (rate 0.002) (connects ecu0 ecu1)))
      (durations (wcet pid * 0.012) ...)
      (pins (pin sample_y ecu0)))
    v}

    Block types: [const (value v…)], [gain (k v)], [sum (signs s…)],
    [saturation (lo v) (hi v)], [quantizer (step v)],
    [dead-zone (width v)], [sample-hold (width n) [(initial v…)]],
    [unit-delay (initial v…)], [integrator (x0 v…)],
    [pid (kp v) (ki v) (kd v) (ts v) [(umin v) (umax v) (windup v)]],
    [state-feedback (k v…)], [step (at v) (before v) (after v)],
    [sine (freq v) [(amplitude v) (phase v)]],
    [relay (on-above v) (off-below v) (out-on v) (out-off v)],
    [biquad (b v…) (a v…)], [mux (widths n…)], [demux (widths n…)],
    and [lti (x0 v…) 〈plant spec〉 [(split-inputs) (split-outputs)]]
    where the plant spec is either [(plant name v…)] — one of
    [dc-motor], [first-order tau gain], [double-integrator],
    [mass-spring-damper m k c], [quarter-car], [pendulum] — or
    explicit matrices [(a (r…) (r…)) (b …) (c …) (d …)].

    Conditioning is not expressible in diagram files (build those
    designs in OCaml); memories are marked with [(memories …)]. *)

type t = {
  design : Design.t;
  architecture : Aaa.Architecture.t;
  durations : Aaa.Durations.t;
  pins : (string * string) list;
}

val parse : string -> t
(** Raises [Failure] with a descriptive message on syntax/semantic
    errors (unknown block types, bad links, missing probes for the
    cost, …). *)

val load : string -> t
(** {!parse} on a file's contents. *)
