module M = Numerics.Matrix

let lqr_gain ~plant ~ts ~q ~r () =
  let sysd = Control.Discretize.discretize ~ts plant in
  (Control.Lqr.dlqr_sys ~q ~r sysd).Control.Lqr.k

let lqr_delay_gain ~plant ~ts ~delay ~q ~r () =
  let n = Control.Lti.state_dim plant and m = Control.Lti.input_dim plant in
  let aug = Control.Discretize.zoh_with_delay ~ts ~delay plant in
  (* block-diagonal augmented weight: physical states keep Q, the
     remembered control gets a negligible penalty *)
  let q_aug =
    M.init (n + m) (n + m) (fun i j ->
        if i < n && j < n then M.get q i j
        else if i = j then 1e-8
        else 0.)
  in
  (Control.Lqr.dlqr_sys ~q:q_aug ~r aug).Control.Lqr.k

let pid_for_delay ?(safety = 1.5) ~plant ~ts ~delay ~gains () =
  if Control.Lti.input_dim plant <> 1 || Control.Lti.output_dim plant <> 1 then
    invalid_arg "Calibrate.pid_for_delay: SISO plants only";
  if ts <= 0. || delay < 0. || safety <= 0. then
    invalid_arg "Calibrate.pid_for_delay: non-positive parameter";
  let plant_d = Control.Discretize.discretize ~ts plant in
  let required = safety *. delay in
  let scaled s =
    {
      Control.Pid.kp = s *. gains.Control.Pid.kp;
      ki = s *. gains.Control.Pid.ki;
      kd = s *. gains.Control.Pid.kd;
    }
  in
  let delay_margin s =
    let c =
      Control.Tf.to_ss ~domain:(Control.Lti.Discrete ts) (Control.Pid.to_tf (scaled s) ~ts)
    in
    let open_loop = Control.Lti.series c plant_d in
    let m = Control.Freq.margins ~n:800 ~w_min:1e-2 ~w_max:(Float.pi /. ts) open_loop in
    match m.Control.Freq.delay_margin with
    | Some dm -> dm
    | None -> Float.infinity (* |L| < 1 everywhere: no crossover, any delay is fine *)
  in
  if delay_margin 1. >= required then (gains, delay_margin 1.)
  else if delay_margin 0.01 < required then
    failwith "Calibrate.pid_for_delay: the requirement cannot be met even at 1% gain"
  else begin
    let lo = ref 0.01 and hi = ref 1. in
    for _ = 1 to 30 do
      let mid = (!lo +. !hi) /. 2. in
      if delay_margin mid >= required then lo := mid else hi := mid
    done;
    (scaled !lo, delay_margin !lo)
  end

let retune_pid (g : Control.Pid.gains) ~latency_fraction =
  if latency_fraction < 0. then invalid_arg "Calibrate.retune_pid: negative latency";
  let s = 1. /. (1. +. latency_fraction) in
  {
    Control.Pid.kp = g.Control.Pid.kp *. s;
    ki = g.Control.Pid.ki *. s;
    kd = g.Control.Pid.kd *. s *. s;
  }
