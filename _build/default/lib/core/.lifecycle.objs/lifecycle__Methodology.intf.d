lib/core/methodology.mli: Aaa Design Exec Numerics Sim Translator
