lib/core/report.mli: Aaa Design Exec Methodology Montecarlo Translator
