lib/core/sweep.mli: Aaa Design Exec Methodology
