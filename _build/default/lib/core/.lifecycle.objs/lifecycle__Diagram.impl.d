lib/core/diagram.ml: Aaa Array Control Dataflow Design Fun Hashtbl List Numerics Option Printf Sim String
