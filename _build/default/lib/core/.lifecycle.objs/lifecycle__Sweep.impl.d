lib/core/sweep.ml: Control Design Exec Float List Methodology Translator
