lib/core/design.mli: Aaa Control Dataflow Numerics Sim Translator
