lib/core/montecarlo.ml: Array Design Exec Format Methodology Numerics Translator
