lib/core/report.ml: Aaa Buffer Design Exec Int List Methodology Montecarlo Printf Translator
