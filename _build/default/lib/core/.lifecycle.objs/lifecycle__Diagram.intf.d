lib/core/diagram.mli: Aaa Design
