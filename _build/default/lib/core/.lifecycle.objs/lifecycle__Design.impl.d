lib/core/design.ml: Aaa Array Control Dataflow Fun List Numerics Option Printf Sim Translator
