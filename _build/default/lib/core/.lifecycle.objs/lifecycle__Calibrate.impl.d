lib/core/calibrate.ml: Control Float Numerics
