lib/core/methodology.ml: Aaa Array Control Design Exec Float List Option Printf Sim Translator
