lib/core/calibrate.mli: Control Numerics
