lib/core/montecarlo.mli: Design Exec Format Methodology
