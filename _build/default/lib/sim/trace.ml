type t = {
  w : int;
  mutable ts : float array;
  mutable vs : float array array;
  mutable n : int;
}

let create ~width =
  if width <= 0 then invalid_arg "Trace.create: non-positive width";
  { w = width; ts = [||]; vs = [||]; n = 0 }

let width tr = tr.w
let length tr = tr.n

let ensure_capacity tr =
  if tr.n = Array.length tr.ts then begin
    let capacity = Int.max 64 (2 * Array.length tr.ts) in
    let ts = Array.make capacity 0. in
    let vs = Array.make capacity [||] in
    Array.blit tr.ts 0 ts 0 tr.n;
    Array.blit tr.vs 0 vs 0 tr.n;
    tr.ts <- ts;
    tr.vs <- vs
  end

let record tr time v =
  if Array.length v <> tr.w then invalid_arg "Trace.record: width mismatch";
  if tr.n > 0 && tr.ts.(tr.n - 1) = time then tr.vs.(tr.n - 1) <- Array.copy v
  else begin
    ensure_capacity tr;
    tr.ts.(tr.n) <- time;
    tr.vs.(tr.n) <- Array.copy v;
    tr.n <- tr.n + 1
  end

let times tr = Array.sub tr.ts 0 tr.n
let values tr = Array.init tr.n (fun i -> Array.copy tr.vs.(i))

let component tr j =
  if j < 0 || j >= tr.w then invalid_arg "Trace.component: out of range";
  Control.Metrics.of_arrays (times tr) (Array.init tr.n (fun i -> tr.vs.(i).(j)))

let last tr = if tr.n = 0 then None else Some (tr.ts.(tr.n - 1), Array.copy tr.vs.(tr.n - 1))

let clear tr = tr.n <- 0

let iter f tr =
  for i = 0 to tr.n - 1 do
    f tr.ts.(i) tr.vs.(i)
  done

let to_csv ?labels tr =
  let labels =
    match labels with
    | Some l ->
        if List.length l <> tr.w then invalid_arg "Trace.to_csv: label count mismatch";
        l
    | None -> List.init tr.w (Printf.sprintf "y%d")
  in
  let buf = Buffer.create (64 * (tr.n + 1)) in
  Buffer.add_string buf ("time," ^ String.concat "," labels ^ "\n");
  iter
    (fun t v ->
      Buffer.add_string buf (Printf.sprintf "%.9g" t);
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf ",%.9g" x)) v;
      Buffer.add_char buf '\n')
    tr;
  Buffer.contents buf

let to_csv_file ?labels tr path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv ?labels tr))
