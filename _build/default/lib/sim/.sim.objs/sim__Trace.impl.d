lib/sim/trace.ml: Array Buffer Control Fun Int List Printf String
