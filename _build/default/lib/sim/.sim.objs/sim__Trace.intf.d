lib/sim/trace.mli: Control
