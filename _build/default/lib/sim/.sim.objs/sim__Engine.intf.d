lib/sim/engine.mli: Control Dataflow Numerics Trace
