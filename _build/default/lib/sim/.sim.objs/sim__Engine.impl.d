lib/sim/engine.ml: Array Dataflow Event_queue Float List Numerics Printf Trace
