(** Priority queue of pending activation events.

    Events are ordered by [(time, priority, sequence)]:
    - [time] — simulation instant;
    - [priority] — static activation priority of the target block
      (derived from data dependencies, so that at a shared instant a
      sampler runs before the controller that reads it);
    - [sequence] — FIFO tie-break, assigned internally. *)

type 'a t
(** Queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> priority:int -> 'a -> unit
(** Enqueues; the insertion sequence number is assigned internally. *)

val peek_time : 'a t -> float option
(** Time of the earliest event, if any. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit
