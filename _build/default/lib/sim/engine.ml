module G = Dataflow.Graph
module B = Dataflow.Block

type delivery = { target : int; port : int }

type probe_rec = { pr_block : int; pr_port : int; trace : Trace.t }

type t = {
  graph : G.t;
  blocks : B.t array;
  meth : Numerics.Ode.method_;
  max_step : float option;
  order : int array; (* output-evaluation order (feedthrough topo) *)
  priority : int array; (* static activation priority per block *)
  cs_offset : int array; (* continuous-state layout *)
  cs_len : int array;
  total_cs : int;
  cstate : float array;
  outputs : float array array array;
  queue : delivery Event_queue.t;
  mutable time : float;
  mutable probes : (string * probe_rec) list;
  mutable log : (float * int * int) list; (* (time, block id, port), reversed *)
  mutable nsteps : int;
  mutable started : bool;
}

(* Linearise the full data-dependency graph to obtain activation
   priorities.  Kahn's algorithm; when only cyclic nodes remain
   (feedback loops), the node with the smallest residual in-degree and
   then smallest id is removed, which breaks the cycle
   deterministically. *)
let activation_priorities graph n =
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (((sb : G.block_id), _), ((db : G.block_id), _)) ->
      let sb = (sb :> int) and db = (db :> int) in
      if sb <> db then begin
        succs.(sb) <- db :: succs.(sb);
        indegree.(db) <- indegree.(db) + 1
      end)
    (G.data_links graph);
  let removed = Array.make n false in
  let priority = Array.make n 0 in
  for rank = 0 to n - 1 do
    (* pick the best remaining node: zero in-degree if possible *)
    let best = ref (-1) in
    for id = n - 1 downto 0 do
      if not removed.(id) then
        if !best = -1 || indegree.(id) < indegree.(!best)
           || (indegree.(id) = indegree.(!best) && id < !best)
        then best := id
    done;
    let id = !best in
    removed.(id) <- true;
    priority.(id) <- rank;
    List.iter (fun succ -> if not removed.(succ) then indegree.(succ) <- indegree.(succ) - 1) succs.(id)
  done;
  priority

let create ?(meth = Numerics.Ode.default_method) ?max_step graph =
  G.validate graph;
  let n = G.block_count graph in
  let blocks = Array.of_list (List.map (G.block graph) (G.block_ids graph)) in
  let order = Array.of_list (List.map (fun id -> ((id : G.block_id) :> int)) (G.eval_order graph)) in
  let priority = activation_priorities graph n in
  let cs_len = Array.map (fun b -> Array.length b.B.cstate0) blocks in
  let cs_offset = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun id len ->
      cs_offset.(id) <- !total;
      total := !total + len)
    cs_len;
  let outputs =
    Array.map (fun b -> Array.map (fun w -> Array.make w 0.) b.B.out_widths) blocks
  in
  let engine =
    {
      graph;
      blocks;
      meth;
      max_step;
      order;
      priority;
      cs_offset;
      cs_len;
      total_cs = !total;
      cstate = Array.make !total 0.;
      outputs;
      queue = Event_queue.create ();
      time = 0.;
      probes = [];
      log = [];
      nsteps = 0;
      started = false;
    }
  in
  engine

let slice_cstate e id = Array.sub e.cstate e.cs_offset.(id) e.cs_len.(id)

let gather_inputs e id =
  let b = e.blocks.(id) in
  Array.init (Array.length b.B.in_widths) (fun p ->
      match G.data_source e.graph (G.id_of_int e.graph id) p with
      | Some (sb, sp) -> e.outputs.((sb :> int)).(sp)
      | None -> assert false (* validate guarantees wiring *))

let eval_block e time id =
  let b = e.blocks.(id) in
  let ctx =
    { B.time; inputs = gather_inputs e id; cstate = slice_cstate e id }
  in
  let out = b.B.outputs ctx in
  if Array.length out <> Array.length b.B.out_widths then
    failwith (Printf.sprintf "Block %S returned wrong output port count" b.B.name);
  Array.iteri
    (fun p v ->
      if Array.length v <> b.B.out_widths.(p) then
        failwith (Printf.sprintf "Block %S output %d has wrong width" b.B.name p);
      e.outputs.(id).(p) <- v)
    out

let eval_outputs e time = Array.iter (fun id -> eval_block e time id) e.order

let eval_always_active e time =
  Array.iter
    (fun id -> if e.blocks.(id).B.always_active then eval_block e time id)
    e.order

let record_probes e time =
  List.iter
    (fun (_, p) -> Trace.record p.trace time e.outputs.(p.pr_block).(p.pr_port))
    e.probes

let schedule_actions e id time actions =
  List.iter
    (fun action ->
      match action with
      | B.Emit { port; delay } ->
          if delay < 0. then
            failwith (Printf.sprintf "Block %S emitted a negative delay" e.blocks.(id).B.name);
          List.iter
            (fun ((db : G.block_id), dp) ->
              let db = (db :> int) in
              Event_queue.push e.queue ~time:(time +. delay) ~priority:e.priority.(db)
                { target = db; port = dp })
            (G.event_listeners e.graph (G.id_of_int e.graph id) port)
      | B.Self { port; delay } ->
          if delay < 0. then
            failwith (Printf.sprintf "Block %S scheduled a negative self delay" e.blocks.(id).B.name);
          Event_queue.push e.queue ~time:(time +. delay) ~priority:e.priority.(id)
            { target = id; port }
      | B.Set_cstate x ->
          if Array.length x <> e.cs_len.(id) then
            failwith
              (Printf.sprintf "Block %S: Set_cstate dimension mismatch" e.blocks.(id).B.name);
          Array.blit x 0 e.cstate e.cs_offset.(id) e.cs_len.(id))
    actions

let prime e =
  Array.iteri (fun id b -> schedule_actions e id 0. b.B.initial_actions) e.blocks

let add_probe e ~name ~block ~port =
  if e.started then invalid_arg "Engine.add_probe: simulation already started";
  if List.mem_assoc name e.probes then
    invalid_arg (Printf.sprintf "Engine.add_probe: duplicate probe %S" name);
  let id = ((block : G.block_id) :> int) in
  let b = e.blocks.(id) in
  if port < 0 || port >= Array.length b.B.out_widths then
    invalid_arg (Printf.sprintf "Engine.add_probe: %S has no output port %d" b.B.name port);
  let trace = Trace.create ~width:b.B.out_widths.(port) in
  e.probes <- e.probes @ [ (name, { pr_block = id; pr_port = port; trace }) ]

let time_eps t = 1e-9 *. (1. +. Float.abs t)

(* Deliver every event pending at instant [t] (within float tolerance),
   including zero-delay events emitted during the instant itself. *)
let process_instant e t =
  let continue_ = ref true in
  while !continue_ do
    match Event_queue.peek_time e.queue with
    | Some tt when tt <= t +. time_eps t -> begin
        match Event_queue.pop e.queue with
        | None -> continue_ := false
        | Some (_, { target; port }) ->
            let b = e.blocks.(target) in
            eval_outputs e t;
            let ctx =
              { B.time = t; inputs = gather_inputs e target; cstate = slice_cstate e target }
            in
            let handler =
              match b.B.on_event with
              | Some h -> h
              | None ->
                  failwith (Printf.sprintf "Block %S received an event but has no handler" b.B.name)
            in
            let actions = handler ctx ~port in
            e.log <- (t, target, port) :: e.log;
            e.nsteps <- e.nsteps + 1;
            schedule_actions e target t actions
      end
    | Some _ | None -> continue_ := false
  done;
  eval_outputs e t;
  record_probes e t

let make_rhs e =
  fun tt x ->
    Array.blit x 0 e.cstate 0 e.total_cs;
    eval_always_active e tt;
    let dx = Array.make e.total_cs 0. in
    Array.iteri
      (fun id b ->
        if e.cs_len.(id) > 0 then begin
          let deriv = match b.B.derivatives with Some d -> d | None -> assert false in
          let ctx =
            { B.time = tt; inputs = gather_inputs e id; cstate = slice_cstate e id }
          in
          let d = deriv ctx in
          Array.blit d 0 dx e.cs_offset.(id) e.cs_len.(id)
        end)
      e.blocks;
    dx

(* values of every declared surface at the engine's current state
   (assumes [e.cstate] and [e.time] are current) *)
let surface_values e time =
  eval_always_active e time;
  Array.mapi
    (fun id b ->
      if b.B.surfaces = 0 then [||]
      else begin
        let crossings = match b.B.crossings with Some c -> c | None -> assert false in
        let ctx = { B.time; inputs = gather_inputs e id; cstate = slice_cstate e id } in
        let v = crossings ctx in
        if Array.length v <> b.B.surfaces then
          failwith (Printf.sprintf "Block %S returned wrong surface count" b.B.name);
        v
      end)
    e.blocks

let sign v = if v > 0. then 1 else if v < 0. then -1 else 0

(* A surface fires when it leaves a nonzero sign: −→+, +→−, −→0 or
   +→0.  Starting from exactly zero does not fire, so a handler that
   resets its surface to zero is not re-triggered immediately. *)
let surface_fired va vb = sign va <> 0 && sign vb <> sign va

let crossed before after =
  let hit = ref false in
  Array.iteri
    (fun id vb ->
      Array.iteri (fun s b -> if surface_fired b after.(id).(s) then hit := true) vb)
    before;
  !hit

let has_surfaces e = Array.exists (fun b -> b.B.surfaces > 0) e.blocks

(* Integrate from the current time toward [t1].  Returns [`Reached]
   when [t1] was attained, or [`Interrupted] when a zero-crossing was
   located and handled before [t1]: the caller must process the
   instant (crossing handlers may have emitted events) and re-enter. *)
let integrate_to e t1 =
  if t1 <= e.time then `Reached
  else if (not (has_surfaces e)) && e.total_cs = 0 then begin
    e.time <- t1;
    eval_always_active e t1;
    record_probes e t1;
    `Reached
  end
  else if not (has_surfaces e) then begin
    let rhs = make_rhs e in
    let observer tt x =
      Array.blit x 0 e.cstate 0 e.total_cs;
      eval_always_active e tt;
      record_probes e tt
    in
    let x0 = Array.copy e.cstate in
    let xf =
      Numerics.Ode.integrate ~meth:e.meth ?max_step:e.max_step ~observer rhs ~t0:e.time ~t1
        x0
    in
    Array.blit xf 0 e.cstate 0 e.total_cs;
    e.time <- t1;
    `Reached
  end
  else begin
    (* surface-monitored integration: march in sub-steps, bisect on a
       sign change, deliver the crossing and stop *)
    let rhs = make_rhs e in
    let span = t1 -. e.time in
    let sub_step =
      match e.max_step with Some h -> Float.min h (span /. 4.) | None -> span /. 32.
    in
    let integrate_segment ~t0 ~t1 x0 =
      if e.total_cs = 0 then Array.copy x0
      else Numerics.Ode.integrate ~meth:e.meth rhs ~t0 ~t1 x0
    in
    let restore tt x =
      Array.blit x 0 e.cstate 0 e.total_cs;
      eval_always_active e tt
    in
    let result = ref `Reached in
    let continue_ = ref true in
    while !continue_ && t1 -. e.time > 1e-15 *. (1. +. Float.abs t1) do
      let ta = e.time in
      let xa = Array.copy e.cstate in
      let values_a = surface_values e ta in
      let tb = Float.min t1 (ta +. sub_step) in
      let xb = integrate_segment ~t0:ta ~t1:tb xa in
      restore tb xb;
      let values_b = surface_values e tb in
      if not (crossed values_a values_b) then begin
        e.time <- tb;
        record_probes e tb
      end
      else begin
        (* bisect the earliest crossing within [ta, tb] *)
        let lo = ref ta and hi = ref tb in
        for _ = 1 to 50 do
          let mid = (!lo +. !hi) /. 2. in
          let xm = integrate_segment ~t0:ta ~t1:mid xa in
          restore mid xm;
          let values_m = surface_values e mid in
          if crossed values_a values_m then hi := mid else lo := mid
        done;
        let t_star = !hi in
        let x_star = integrate_segment ~t0:ta ~t1:t_star xa in
        restore t_star x_star;
        let values_star = surface_values e t_star in
        e.time <- t_star;
        record_probes e t_star;
        (* fire every surface that changed sign over [ta, t*] *)
        Array.iteri
          (fun id b ->
            if b.B.surfaces > 0 then
              Array.iteri
                (fun s va ->
                  let vs = values_star.(id).(s) in
                  if surface_fired va vs then begin
                    let handler =
                      match b.B.on_crossing with Some h -> h | None -> assert false
                    in
                    let ctx =
                      {
                        B.time = t_star;
                        inputs = gather_inputs e id;
                        cstate = slice_cstate e id;
                      }
                    in
                    let actions = handler ctx ~surface:s ~rising:(vs > va) in
                    schedule_actions e id t_star actions
                  end)
                values_a.(id))
          e.blocks;
        result := `Interrupted;
        continue_ := false
      end
    done;
    !result
  end

let start_if_needed e =
  if not e.started then begin
    Array.iter (fun b -> b.B.reset ()) e.blocks;
    Array.iteri
      (fun id b -> Array.blit b.B.cstate0 0 e.cstate e.cs_offset.(id) e.cs_len.(id))
      e.blocks;
    prime e;
    eval_outputs e 0.;
    record_probes e 0.;
    e.started <- true
  end

let run ?(t_end = 1.) e =
  start_if_needed e;
  let continue_ = ref true in
  while !continue_ do
    match Event_queue.peek_time e.queue with
    | Some tt when tt <= t_end +. time_eps t_end -> (
        let tt = Float.max tt e.time in
        match integrate_to e tt with
        | `Reached -> process_instant e tt
        | `Interrupted ->
            (* a zero-crossing fired before [tt]; deliver whatever it
               emitted at the crossing instant, then re-examine *)
            process_instant e e.time)
    | Some _ | None -> (
        match integrate_to e t_end with
        | `Reached -> continue_ := false
        | `Interrupted -> process_instant e e.time)
  done

let reset e =
  Event_queue.clear e.queue;
  e.time <- 0.;
  e.log <- [];
  e.nsteps <- 0;
  e.started <- false;
  List.iter (fun (_, p) -> Trace.clear p.trace) e.probes

let now e = e.time

let probe e name =
  match List.assoc_opt name e.probes with
  | Some p -> p.trace
  | None -> raise Not_found

let probe_component e name j = Trace.component (probe e name) j

let event_log e =
  List.rev_map (fun (t, id, port) -> (t, e.blocks.(id).B.name, port)) e.log

let activations e ~block =
  let id = ((block : G.block_id) :> int) in
  List.rev
    (List.filter_map (fun (t, i, _) -> if i = id then Some t else None) e.log)

let steps e = e.nsteps
