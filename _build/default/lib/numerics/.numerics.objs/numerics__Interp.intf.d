lib/numerics/interp.mli:
