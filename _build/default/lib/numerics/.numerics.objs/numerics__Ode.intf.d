lib/numerics/ode.mli:
