lib/numerics/linalg.ml: Array Complex Float Fun List Matrix Poly
