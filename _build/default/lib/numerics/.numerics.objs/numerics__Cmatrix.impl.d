lib/numerics/cmatrix.ml: Array Complex Matrix
