lib/numerics/poly.ml: Array Complex Float Format Int
