lib/numerics/linalg.mli: Complex Matrix Poly
