lib/numerics/expm.ml: Array Float Int Linalg Matrix
