lib/numerics/stats.mli:
