lib/numerics/matrix.mli: Format
