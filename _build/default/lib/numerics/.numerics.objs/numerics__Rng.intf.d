lib/numerics/rng.mli:
