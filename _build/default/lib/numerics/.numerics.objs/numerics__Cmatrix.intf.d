lib/numerics/cmatrix.mli: Complex Matrix
