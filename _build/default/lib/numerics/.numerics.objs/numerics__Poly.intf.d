lib/numerics/poly.mli: Complex Format
