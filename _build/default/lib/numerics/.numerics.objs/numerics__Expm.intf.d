lib/numerics/expm.mli: Matrix
