lib/numerics/stats.ml: Array Float Printf Stdlib
