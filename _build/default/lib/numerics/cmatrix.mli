(** Dense complex matrices — the minimum needed for frequency-domain
    analysis: building [(jω·I − A)], solving linear systems and a few
    conversions.  Same conventions as {!Matrix} (row-major,
    functionally pure API). *)

type t

val rows : t -> int
val cols : t -> int

val zeros : int -> int -> t
val identity : int -> t
val init : int -> int -> (int -> int -> Complex.t) -> t

val of_real : Matrix.t -> t
(** Embeds a real matrix. *)

val scalar : Complex.t -> int -> t
(** [scalar z n] is [z·Iₙ]. *)

val get : t -> int -> int -> Complex.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Complex.t -> t -> t

val mul_vec : t -> Complex.t array -> Complex.t array

exception Singular

val solve_mat : t -> t -> t
(** [solve_mat a b] solves [a·X = b] by Gaussian elimination with
    partial (modulus) pivoting.  Raises {!Singular} or
    [Invalid_argument] on shape errors. *)

val norm_inf : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise modulus-of-difference comparison. *)
