type t = float array

let normalize p =
  let n = Array.length p in
  let rec last i = if i > 0 && p.(i) = 0. then last (i - 1) else i in
  if n = 0 then [| 0. |] else Array.sub p 0 (last (n - 1) + 1)

let degree p = Array.length (normalize p) - 1

let eval p x =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_c p z =
  let acc = ref Complex.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc z) { Complex.re = p.(i); im = 0. }
  done;
  !acc

let add p q =
  let n = Int.max (Array.length p) (Array.length q) in
  let coef a i = if i < Array.length a then a.(i) else 0. in
  normalize (Array.init n (fun i -> coef p i +. coef q i))

let mul p q =
  let p = normalize p and q = normalize q in
  let n = Array.length p + Array.length q - 1 in
  let r = Array.make n 0. in
  Array.iteri
    (fun i pi -> Array.iteri (fun j qj -> r.(i + j) <- r.(i + j) +. (pi *. qj)) q)
    p;
  normalize r

let scale s p = normalize (Array.map (fun c -> s *. c) p)

let derive p =
  let p = normalize p in
  if Array.length p <= 1 then [| 0. |]
  else Array.init (Array.length p - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1))

let of_roots rs = Array.fold_left (fun acc r -> mul acc [| -.r; 1. |]) [| 1. |] rs

(* Durand–Kerner: iterate zᵢ ← zᵢ − p(zᵢ) / ∏_{j≠i}(zᵢ − zⱼ) from
   non-real, non-symmetric starting points so real-coefficient
   symmetry cannot trap the iteration. *)
let roots ?(max_iter = 500) ?(tol = 1e-12) p =
  let p = normalize p in
  let n = Array.length p - 1 in
  if n < 0 || (n = 0 && p.(0) = 0.) then invalid_arg "Poly.roots: zero polynomial";
  if n = 0 then []
  else begin
    let lead = p.(n) in
    let monic = Array.map (fun c -> c /. lead) p in
    (* radius bound: 1 + max |cᵢ| over the monic coefficients *)
    let radius =
      1. +. Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 0.
              (Array.sub monic 0 n)
    in
    let z =
      Array.init n (fun i ->
          let angle = (2. *. Float.pi *. float_of_int i /. float_of_int n) +. 0.4 in
          Complex.polar (radius *. 0.8) angle)
    in
    let step () =
      let moved = ref 0. in
      for i = 0 to n - 1 do
        let denom = ref Complex.one in
        for j = 0 to n - 1 do
          if j <> i then denom := Complex.mul !denom (Complex.sub z.(i) z.(j))
        done;
        let delta = Complex.div (eval_c monic z.(i)) !denom in
        z.(i) <- Complex.sub z.(i) delta;
        moved := Float.max !moved (Complex.norm delta)
      done;
      !moved
    in
    let rec iterate k = if k < max_iter && step () > tol then iterate (k + 1) in
    iterate 0;
    (* clean tiny imaginary parts left by the complex iteration *)
    Array.to_list
      (Array.map
         (fun c ->
           if Float.abs c.Complex.im < 1e-8 *. (1. +. Float.abs c.Complex.re) then
             { c with Complex.im = 0. }
           else c)
         z)
  end

let pp ppf p =
  let p = normalize p in
  Format.fprintf ppf "@[";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf " + ";
      if i = 0 then Format.fprintf ppf "%g" c
      else Format.fprintf ppf "%g·x^%d" c i)
    p;
  Format.fprintf ppf "@]"
