(** Dense row-major matrices of floats.

    The representation is immutable from the outside: every exported
    operation returns a fresh matrix and never mutates its arguments.
    Matrices are small in this project (plant and controller state
    dimensions, a handful at most), so clarity is preferred over cache
    tricks. *)

type t
(** A dense [rows × cols] matrix. *)

val rows : t -> int
val cols : t -> int

val create : int -> int -> float -> t
(** [create r c x] is the [r×c] matrix filled with [x].
    Raises [Invalid_argument] if [r < 0] or [c < 0]. *)

val zeros : int -> int -> t
(** Null matrix. *)

val identity : int -> t
(** [identity n] is the [n×n] identity. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has entry [f i j] at row [i], column [j]. *)

val of_arrays : float array array -> t
(** Builds a matrix from rows.  Raises [Invalid_argument] on ragged or
    empty input. *)

val to_arrays : t -> float array array
(** Fresh row arrays. *)

val of_vec : float array -> t
(** Column vector ([n×1]) from an array. *)

val to_vec : t -> float array
(** Flattens a [n×1] or [1×n] matrix to an array.
    Raises [Invalid_argument] otherwise. *)

val get : t -> int -> int -> float
(** [get m i j] is the entry at row [i], column [j] (bounds-checked). *)

val set : t -> int -> int -> float -> t
(** Functional update: a copy of the matrix with one entry replaced. *)

val row : t -> int -> float array
(** [row m i] is a fresh copy of row [i]. *)

val col : t -> int -> float array
(** [col m j] is a fresh copy of column [j]. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on inner-dimension
    mismatch. *)

val mul_vec : t -> float array -> float array
(** [mul_vec m v] is the matrix-vector product [m·v]. *)

val transpose : t -> t
val trace : t -> float

val map : (float -> float) -> t -> t

val hcat : t -> t -> t
(** Horizontal concatenation [[a b]]. *)

val vcat : t -> t -> t
(** Vertical concatenation. *)

val block : t -> int -> int -> int -> int -> t
(** [block m i j r c] extracts the [r×c] submatrix whose top-left entry
    is [(i, j)]. *)

val norm_inf : t -> float
(** Maximum absolute row sum (the operator ∞-norm). *)

val norm_fro : t -> float
(** Frobenius norm. *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison within [eps] (default [1e-9]). *)

val is_square : t -> bool

val pow : t -> int -> t
(** [pow m k] is [m] raised to the non-negative integer power [k] by
    binary exponentiation.  Raises [Invalid_argument] if [m] is not
    square or [k < 0]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
