(** Matrix exponential and zero-order-hold discretisation.

    The exponential uses scaling-and-squaring with a diagonal Padé(6,6)
    approximant — more than accurate enough for the small, moderately
    normed matrices of plant models. *)

val expm : Matrix.t -> Matrix.t
(** [expm a] is [e^A].  Raises [Invalid_argument] if [a] is not
    square. *)

val zoh : Matrix.t -> Matrix.t -> float -> Matrix.t * Matrix.t
(** [zoh a b ts] discretises the continuous pair [(A, B)] under a
    zero-order hold with sampling period [ts]:
    [Ad = e^(A·Ts)], [Bd = (∫₀^Ts e^(A·s) ds)·B], computed in one
    exponential of the augmented block matrix [[A B; 0 0]].
    Raises [Invalid_argument] on dimension mismatch or [ts <= 0]. *)
