let create n x = Array.make n x
let zeros n = Array.make n 0.
let init = Array.init
let copy = Array.copy

let check_same_length op u v =
  if Array.length u <> Array.length v then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" op
         (Array.length u) (Array.length v))

let map2 f u v =
  check_same_length "map2" u v;
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

let add u v =
  check_same_length "add" u v;
  Array.init (Array.length u) (fun i -> u.(i) +. v.(i))

let sub u v =
  check_same_length "sub" u v;
  Array.init (Array.length u) (fun i -> u.(i) -. v.(i))

let scale a v = Array.map (fun x -> a *. x) v

let axpy a x y =
  check_same_length "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let dot u v =
  check_same_length "dot" u v;
  let s = ref 0. in
  for i = 0 to Array.length u - 1 do
    s := !s +. (u.(i) *. v.(i))
  done;
  !s

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let dist2 u v = norm2 (sub u v)

let equal ?(eps = 1e-9) u v =
  Array.length u = Array.length v
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= eps) u v

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    v
