(** Dense vector operations on [float array].

    All binary operations require equal lengths and raise
    [Invalid_argument] otherwise.  Vectors are ordinary OCaml arrays so
    they interoperate directly with {!Ode} right-hand sides and
    {!Matrix} rows. *)

val create : int -> float -> float array
(** [create n x] is a vector of [n] copies of [x]. *)

val zeros : int -> float array
(** [zeros n] is the null vector of dimension [n]. *)

val init : int -> (int -> float) -> float array
(** [init n f] is [[| f 0; ...; f (n-1) |]]. *)

val copy : float array -> float array
(** [copy v] is a fresh vector equal to [v]. *)

val add : float array -> float array -> float array
(** Component-wise sum. *)

val sub : float array -> float array -> float array
(** Component-wise difference. *)

val scale : float -> float array -> float array
(** [scale a v] multiplies every component by [a]. *)

val axpy : float -> float array -> float array -> float array
(** [axpy a x y] is [a*x + y]. *)

val dot : float array -> float array -> float
(** Inner product. *)

val norm2 : float array -> float
(** Euclidean norm. *)

val norm_inf : float array -> float
(** Maximum absolute component ([0.] for the empty vector). *)

val dist2 : float array -> float array -> float
(** [dist2 u v] is [norm2 (sub u v)]. *)

val map2 : (float -> float -> float) -> float array -> float array -> float array
(** [map2 f u v] applies [f] component-wise. *)

val equal : ?eps:float -> float array -> float array -> bool
(** [equal ~eps u v] holds when lengths match and every component pair
    differs by at most [eps] (default [1e-9]). *)

val pp : Format.formatter -> float array -> unit
(** Prints as [[v0; v1; ...]] with short float formatting. *)
