(* Padé(6,6) coefficients for eˣ: p(x)/q(x) with q(x) = p(−x). *)
let pade_coeffs = [| 1.; 0.5; 5. /. 44.; 1. /. 66.; 1. /. 792.; 1. /. 15840.; 1. /. 665280. |]

let expm a =
  if not (Matrix.is_square a) then invalid_arg "Expm.expm: not square";
  let n = Matrix.rows a in
  if n = 0 then a
  else begin
    (* scale so the norm is below 0.5, apply Padé, then square back *)
    let norm = Matrix.norm_inf a in
    let squarings =
      if norm <= 0.5 then 0
      else Int.max 0 (int_of_float (Float.ceil (Float.log2 (norm /. 0.5))))
    in
    let a_scaled = Matrix.scale (1. /. Float.of_int (1 lsl squarings)) a in
    let id = Matrix.identity n in
    (* p = Σ cᵢ Aⁱ split into even and odd parts so q = even − odd *)
    let even = ref (Matrix.scale pade_coeffs.(0) id) in
    let odd = ref (Matrix.scale pade_coeffs.(1) a_scaled) in
    let power = ref a_scaled in
    for i = 2 to 6 do
      power := Matrix.mul !power a_scaled;
      let term = Matrix.scale pade_coeffs.(i) !power in
      if i mod 2 = 0 then even := Matrix.add !even term else odd := Matrix.add !odd term
    done;
    let p = Matrix.add !even !odd in
    let q = Matrix.sub !even !odd in
    let r = ref (Linalg.solve_mat q p) in
    for _ = 1 to squarings do
      r := Matrix.mul !r !r
    done;
    !r
  end

let zoh a b ts =
  if not (Matrix.is_square a) then invalid_arg "Expm.zoh: A not square";
  if Matrix.rows a <> Matrix.rows b then invalid_arg "Expm.zoh: A/B row mismatch";
  if ts <= 0. then invalid_arg "Expm.zoh: non-positive sampling period";
  let n = Matrix.rows a and m = Matrix.cols b in
  (* exp of [[A B]; [0 0]]·Ts  =  [[Ad Bd]; [0 I]] *)
  let top = Matrix.hcat a b in
  let bottom = Matrix.zeros m (n + m) in
  let aug = Matrix.scale ts (Matrix.vcat top bottom) in
  let e = expm aug in
  (Matrix.block e 0 0 n n, Matrix.block e 0 n n m)
