(** Polynomials with real coefficients and complex root extraction.

    A polynomial is stored as its coefficient array in increasing
    degree order: [[| c0; c1; ...; cn |]] represents
    [c0 + c1·x + ... + cn·xⁿ].  Trailing zero coefficients are allowed
    on input and normalised away by {!normalize}. *)

type t = float array
(** Coefficients, lowest degree first.  The empty array and [[|0.|]]
    both denote the zero polynomial. *)

val normalize : t -> t
(** Drops trailing (high-degree) zero coefficients.  The zero
    polynomial normalises to [[|0.|]]. *)

val degree : t -> int
(** Degree after normalisation; the zero polynomial has degree 0. *)

val eval : t -> float -> float
(** Horner evaluation at a real point. *)

val eval_c : t -> Complex.t -> Complex.t
(** Horner evaluation at a complex point. *)

val add : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val derive : t -> t
(** Formal derivative. *)

val of_roots : float array -> t
(** Monic polynomial with the given real roots. *)

val roots : ?max_iter:int -> ?tol:float -> t -> Complex.t list
(** All complex roots (with multiplicity) via the Durand–Kerner
    iteration.  Suitable for the small degrees (≤ ~20) arising from
    characteristic polynomials of plant models.  Raises
    [Invalid_argument] on the zero polynomial; constants return []. *)

val pp : Format.formatter -> t -> unit
