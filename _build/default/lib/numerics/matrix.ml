type t = { r : int; c : int; a : float array }

let rows m = m.r
let cols m = m.c

let create r c x =
  if r < 0 || c < 0 then invalid_arg "Matrix.create: negative dimension";
  { r; c; a = Array.make (r * c) x }

let zeros r c = create r c 0.

let init r c f =
  if r < 0 || c < 0 then invalid_arg "Matrix.init: negative dimension";
  { r; c; a = Array.init (r * c) (fun k -> f (k / c) (k mod c)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays rows_ =
  let r = Array.length rows_ in
  if r = 0 then invalid_arg "Matrix.of_arrays: empty";
  let c = Array.length rows_.(0) in
  Array.iter
    (fun row -> if Array.length row <> c then invalid_arg "Matrix.of_arrays: ragged rows")
    rows_;
  init r c (fun i j -> rows_.(i).(j))

let to_arrays m = Array.init m.r (fun i -> Array.sub m.a (i * m.c) m.c)

let of_vec v = { r = Array.length v; c = 1; a = Array.copy v }

let to_vec m =
  if m.r <> 1 && m.c <> 1 then invalid_arg "Matrix.to_vec: not a vector";
  Array.copy m.a

let check_bounds m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg (Printf.sprintf "Matrix: index (%d,%d) out of %dx%d" i j m.r m.c)

let get m i j =
  check_bounds m i j;
  m.a.((i * m.c) + j)

let set m i j x =
  check_bounds m i j;
  let a = Array.copy m.a in
  a.((i * m.c) + j) <- x;
  { m with a }

let row m i =
  if i < 0 || i >= m.r then invalid_arg "Matrix.row: out of bounds";
  Array.sub m.a (i * m.c) m.c

let col m j =
  if j < 0 || j >= m.c then invalid_arg "Matrix.col: out of bounds";
  Array.init m.r (fun i -> m.a.((i * m.c) + j))

let check_same_shape op x y =
  if x.r <> y.r || x.c <> y.c then
    invalid_arg
      (Printf.sprintf "Matrix.%s: shape mismatch (%dx%d vs %dx%d)" op x.r x.c y.r y.c)

let map2 op f x y =
  check_same_shape op x y;
  { x with a = Array.init (Array.length x.a) (fun k -> f x.a.(k) y.a.(k)) }

let add x y = map2 "add" ( +. ) x y
let sub x y = map2 "sub" ( -. ) x y
let scale s m = { m with a = Array.map (fun x -> s *. x) m.a }
let neg m = scale (-1.) m
let map f m = { m with a = Array.map f m.a }

let mul x y =
  if x.c <> y.r then
    invalid_arg
      (Printf.sprintf "Matrix.mul: inner dimension mismatch (%dx%d * %dx%d)" x.r x.c y.r y.c);
  let a = Array.make (x.r * y.c) 0. in
  for i = 0 to x.r - 1 do
    for k = 0 to x.c - 1 do
      let xik = x.a.((i * x.c) + k) in
      if xik <> 0. then
        for j = 0 to y.c - 1 do
          a.((i * y.c) + j) <- a.((i * y.c) + j) +. (xik *. y.a.((k * y.c) + j))
        done
    done
  done;
  { r = x.r; c = y.c; a }

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let s = ref 0. in
      for j = 0 to m.c - 1 do
        s := !s +. (m.a.((i * m.c) + j) *. v.(j))
      done;
      !s)

let transpose m = init m.c m.r (fun i j -> m.a.((j * m.c) + i))

let is_square m = m.r = m.c

let trace m =
  if not (is_square m) then invalid_arg "Matrix.trace: not square";
  let s = ref 0. in
  for i = 0 to m.r - 1 do
    s := !s +. m.a.((i * m.c) + i)
  done;
  !s

let hcat x y =
  if x.r <> y.r then invalid_arg "Matrix.hcat: row mismatch";
  init x.r (x.c + y.c) (fun i j ->
      if j < x.c then x.a.((i * x.c) + j) else y.a.((i * y.c) + (j - x.c)))

let vcat x y =
  if x.c <> y.c then invalid_arg "Matrix.vcat: column mismatch";
  init (x.r + y.r) x.c (fun i j ->
      if i < x.r then x.a.((i * x.c) + j) else y.a.(((i - x.r) * y.c) + j))

let block m i j r c =
  if i < 0 || j < 0 || r < 0 || c < 0 || i + r > m.r || j + c > m.c then
    invalid_arg "Matrix.block: out of bounds";
  init r c (fun bi bj -> m.a.(((i + bi) * m.c) + (j + bj)))

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.r - 1 do
    let s = ref 0. in
    for j = 0 to m.c - 1 do
      s := !s +. Float.abs m.a.((i * m.c) + j)
    done;
    if !s > !best then best := !s
  done;
  !best

let norm_fro m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.a)

let equal ?(eps = 1e-9) x y =
  x.r = y.r && x.c = y.c
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= eps) x.a y.a

let pow m k =
  if not (is_square m) then invalid_arg "Matrix.pow: not square";
  if k < 0 then invalid_arg "Matrix.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k asr 1)
  in
  go (identity m.r) m k

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.5g" m.a.((i * m.c) + j)
    done;
    Format.fprintf ppf "]";
    if i < m.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
