type t = { r : int; c : int; a : Complex.t array }

exception Singular

let rows m = m.r
let cols m = m.c

let init r c f =
  if r < 0 || c < 0 then invalid_arg "Cmatrix.init: negative dimension";
  { r; c; a = Array.init (r * c) (fun k -> f (k / c) (k mod c)) }

let zeros r c = init r c (fun _ _ -> Complex.zero)

let identity n = init n n (fun i j -> if i = j then Complex.one else Complex.zero)

let of_real m =
  init (Matrix.rows m) (Matrix.cols m) (fun i j -> { Complex.re = Matrix.get m i j; im = 0. })

let scalar z n = init n n (fun i j -> if i = j then z else Complex.zero)

let get m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then invalid_arg "Cmatrix.get: out of bounds";
  m.a.((i * m.c) + j)

let check_same_shape op x y =
  if x.r <> y.r || x.c <> y.c then invalid_arg ("Cmatrix." ^ op ^ ": shape mismatch")

let add x y =
  check_same_shape "add" x y;
  { x with a = Array.init (Array.length x.a) (fun k -> Complex.add x.a.(k) y.a.(k)) }

let sub x y =
  check_same_shape "sub" x y;
  { x with a = Array.init (Array.length x.a) (fun k -> Complex.sub x.a.(k) y.a.(k)) }

let scale z m = { m with a = Array.map (Complex.mul z) m.a }

let mul x y =
  if x.c <> y.r then invalid_arg "Cmatrix.mul: inner dimension mismatch";
  init x.r y.c (fun i j ->
      let acc = ref Complex.zero in
      for k = 0 to x.c - 1 do
        acc := Complex.add !acc (Complex.mul x.a.((i * x.c) + k) y.a.((k * y.c) + j))
      done;
      !acc)

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Cmatrix.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref Complex.zero in
      for j = 0 to m.c - 1 do
        acc := Complex.add !acc (Complex.mul m.a.((i * m.c) + j) v.(j))
      done;
      !acc)

(* Gaussian elimination with partial pivoting on the modulus,
   solving a·X = b for the full right-hand-side matrix at once. *)
let solve_mat a b =
  if a.r <> a.c then invalid_arg "Cmatrix.solve_mat: A not square";
  if a.r <> b.r then invalid_arg "Cmatrix.solve_mat: row mismatch";
  let n = a.r and m = b.c in
  (* working copies as row arrays *)
  let aw = Array.init n (fun i -> Array.init n (fun j -> a.a.((i * n) + j))) in
  let bw = Array.init n (fun i -> Array.init m (fun j -> b.a.((i * b.c) + j))) in
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Complex.norm aw.(i).(k) > Complex.norm aw.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let t = aw.(k) in
      aw.(k) <- aw.(!pivot);
      aw.(!pivot) <- t;
      let t = bw.(k) in
      bw.(k) <- bw.(!pivot);
      bw.(!pivot) <- t
    end;
    if Complex.norm aw.(k).(k) = 0. then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = Complex.div aw.(i).(k) aw.(k).(k) in
      for j = k to n - 1 do
        aw.(i).(j) <- Complex.sub aw.(i).(j) (Complex.mul factor aw.(k).(j))
      done;
      for j = 0 to m - 1 do
        bw.(i).(j) <- Complex.sub bw.(i).(j) (Complex.mul factor bw.(k).(j))
      done
    done
  done;
  (* back substitution *)
  let x = Array.make_matrix n m Complex.zero in
  for i = n - 1 downto 0 do
    for j = 0 to m - 1 do
      let acc = ref bw.(i).(j) in
      for k = i + 1 to n - 1 do
        acc := Complex.sub !acc (Complex.mul aw.(i).(k) x.(k).(j))
      done;
      x.(i).(j) <- Complex.div !acc aw.(i).(i)
    done
  done;
  init n m (fun i j -> x.(i).(j))

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.r - 1 do
    let s = ref 0. in
    for j = 0 to m.c - 1 do
      s := !s +. Complex.norm m.a.((i * m.c) + j)
    done;
    if !s > !best then best := !s
  done;
  !best

let equal ?(eps = 1e-9) x y =
  x.r = y.r && x.c = y.c
  && Array.for_all2 (fun a b -> Complex.norm (Complex.sub a b) <= eps) x.a y.a
