(** Descriptive statistics over float arrays, used by the experiment
    harness to summarise latency traces and control costs. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on empty input. *)

val variance : float array -> float
(** Population variance (divides by [n]).  Raises on empty input. *)

val stddev : float array -> float

val min : float array -> float
val max : float array -> float

val rms : float array -> float
(** Root mean square. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation
    between order statistics.  Raises on empty input or [p] out of
    range. *)

val median : float array -> float

val histogram : ?bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] is an array of [(left_edge, count)] pairs over
    [bins] equal-width buckets spanning [min..max] (default 10 bins).
    A constant sample lands entirely in one bucket. *)

val summary : float array -> string
(** One-line [min/mean/max/std] rendering for logs. *)
