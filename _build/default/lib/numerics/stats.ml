let nonempty name xs = if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let mean xs =
  nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  nonempty "variance" xs;
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
  /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min xs =
  nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let rms xs =
  nonempty "rms" xs;
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs /. float_of_int (Array.length xs))

let percentile xs p =
  nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.

let histogram ?(bins = 10) xs =
  nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: non-positive bins";
  let lo = min xs and hi = max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.min (bins - 1) (Stdlib.max 0 b) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let summary xs =
  if Array.length xs = 0 then "n=0"
  else
    Printf.sprintf "n=%d min=%g mean=%g max=%g std=%g" (Array.length xs) (min xs) (mean xs)
      (max xs) (stddev xs)
