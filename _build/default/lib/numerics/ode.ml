type rhs = float -> float array -> float array

type method_ =
  | Euler
  | Rk2
  | Rk4
  | Rkf45 of { rtol : float; atol : float }

let default_method = Rkf45 { rtol = 1e-6; atol = 1e-9 }

let step_euler f t x h = Vec.axpy h (f t x) x

let step_rk2 f t x h =
  let k1 = f t x in
  let k2 = f (t +. h) (Vec.axpy h k1 x) in
  Vec.axpy (h /. 2.) (Vec.add k1 k2) x

let step_rk4 f t x h =
  let k1 = f t x in
  let k2 = f (t +. (h /. 2.)) (Vec.axpy (h /. 2.) k1 x) in
  let k3 = f (t +. (h /. 2.)) (Vec.axpy (h /. 2.) k2 x) in
  let k4 = f (t +. h) (Vec.axpy h k3 x) in
  let sum = Vec.add k1 (Vec.add (Vec.scale 2. k2) (Vec.add (Vec.scale 2. k3) k4)) in
  Vec.axpy (h /. 6.) sum x

(* Fehlberg 4(5) tableau *)
let rkf45_step f t x h =
  let k1 = f t x in
  let k2 = f (t +. (h /. 4.)) (Vec.axpy (h /. 4.) k1 x) in
  let k3 =
    f
      (t +. (3. *. h /. 8.))
      (Vec.add x
         (Vec.scale h (Vec.add (Vec.scale (3. /. 32.) k1) (Vec.scale (9. /. 32.) k2))))
  in
  let k4 =
    f
      (t +. (12. *. h /. 13.))
      (Vec.add x
         (Vec.scale h
            (Vec.add
               (Vec.scale (1932. /. 2197.) k1)
               (Vec.add (Vec.scale (-7200. /. 2197.) k2) (Vec.scale (7296. /. 2197.) k3)))))
  in
  let k5 =
    f (t +. h)
      (Vec.add x
         (Vec.scale h
            (Vec.add
               (Vec.scale (439. /. 216.) k1)
               (Vec.add (Vec.scale (-8.) k2)
                  (Vec.add (Vec.scale (3680. /. 513.) k3) (Vec.scale (-845. /. 4104.) k4))))))
  in
  let k6 =
    f
      (t +. (h /. 2.))
      (Vec.add x
         (Vec.scale h
            (Vec.add
               (Vec.scale (-8. /. 27.) k1)
               (Vec.add (Vec.scale 2. k2)
                  (Vec.add
                     (Vec.scale (-3544. /. 2565.) k3)
                     (Vec.add (Vec.scale (1859. /. 4104.) k4) (Vec.scale (-11. /. 40.) k5)))))))
  in
  let order4 =
    Vec.add x
      (Vec.scale h
         (Vec.add
            (Vec.scale (25. /. 216.) k1)
            (Vec.add
               (Vec.scale (1408. /. 2565.) k3)
               (Vec.add (Vec.scale (2197. /. 4104.) k4) (Vec.scale (-1. /. 5.) k5)))))
  in
  let order5 =
    Vec.add x
      (Vec.scale h
         (Vec.add
            (Vec.scale (16. /. 135.) k1)
            (Vec.add
               (Vec.scale (6656. /. 12825.) k3)
               (Vec.add
                  (Vec.scale (28561. /. 56430.) k4)
                  (Vec.add (Vec.scale (-9. /. 50.) k5) (Vec.scale (2. /. 55.) k6))))))
  in
  (order4, order5)

let integrate_fixed step ?observer f ~t0 ~t1 x0 ~h =
  let x = ref (Vec.copy x0) in
  let t = ref t0 in
  (match observer with Some g -> g t0 !x | None -> ());
  while t1 -. !t > 1e-15 *. (1. +. Float.abs t1) do
    let h = Float.min h (t1 -. !t) in
    x := step f !t !x h;
    t := !t +. h;
    (match observer with Some g -> g !t !x | None -> ())
  done;
  !x

let integrate_rkf45 ~rtol ~atol ?max_step ?observer f ~t0 ~t1 x0 =
  let x = ref (Vec.copy x0) in
  let t = ref t0 in
  let span = t1 -. t0 in
  let hmax = match max_step with Some h -> h | None -> span in
  let h = ref (Float.min hmax (span /. 10.)) in
  let hmin = 1e-12 *. (1. +. Float.abs t1) in
  (match observer with Some g -> g t0 !x | None -> ());
  while t1 -. !t > 1e-15 *. (1. +. Float.abs t1) do
    let hcur = Float.min !h (t1 -. !t) in
    let x4, x5 = rkf45_step f !t !x hcur in
    let err =
      let e = ref 0. in
      Array.iteri
        (fun i a ->
          let scale = atol +. (rtol *. Float.max (Float.abs a) (Float.abs x5.(i))) in
          e := Float.max !e (Float.abs (a -. x5.(i)) /. scale))
        x4;
      !e
    in
    if err <= 1. || hcur <= hmin then begin
      t := !t +. hcur;
      x := x5;
      (match observer with Some g -> g !t !x | None -> ())
    end;
    (* standard PI-free step update with safety factor *)
    let factor =
      if err = 0. then 4. else Float.min 4. (Float.max 0.1 (0.9 *. (err ** (-0.2))))
    in
    h := Float.min hmax (Float.max hmin (hcur *. factor))
  done;
  !x

let integrate ?(meth = default_method) ?max_step ?observer f ~t0 ~t1 x0 =
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  if t1 = t0 then begin
    (match observer with Some g -> g t0 x0 | None -> ());
    Vec.copy x0
  end
  else
    let default_h = match max_step with Some h -> h | None -> (t1 -. t0) /. 10. in
    match meth with
    | Euler -> integrate_fixed step_euler ?observer f ~t0 ~t1 x0 ~h:default_h
    | Rk2 -> integrate_fixed step_rk2 ?observer f ~t0 ~t1 x0 ~h:default_h
    | Rk4 -> integrate_fixed step_rk4 ?observer f ~t0 ~t1 x0 ~h:default_h
    | Rkf45 { rtol; atol } -> integrate_rkf45 ~rtol ~atol ?max_step ?observer f ~t0 ~t1 x0
