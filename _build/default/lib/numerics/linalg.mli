(** Dense linear algebra on {!Matrix.t}: factorisations, linear solves,
    determinants, inverses and eigenvalues.

    Everything here targets the small, well-conditioned systems that
    arise from plant/controller state-space models, so plain LU with
    partial pivoting is used throughout. *)

exception Singular
(** Raised when a factorisation or solve meets a (numerically)
    singular matrix. *)

type lu
(** An LU factorisation with partial pivoting ([P·A = L·U]). *)

val lu_decompose : Matrix.t -> lu
(** Factorises a square matrix.  Raises {!Singular} if a pivot is
    exactly zero after row exchange, [Invalid_argument] if the matrix
    is not square. *)

val lu_solve : lu -> float array -> float array
(** Solves [A·x = b] using a prior factorisation. *)

val lu_det : lu -> float
(** Determinant from the factorisation. *)

val solve : Matrix.t -> float array -> float array
(** [solve a b] solves [a·x = b].  Raises {!Singular}. *)

val solve_mat : Matrix.t -> Matrix.t -> Matrix.t
(** [solve_mat a b] solves [a·X = b] column-by-column. *)

val inv : Matrix.t -> Matrix.t
(** Matrix inverse.  Raises {!Singular}. *)

val det : Matrix.t -> float
(** Determinant ([0.] is returned for singular matrices rather than
    raising). *)

val char_poly : Matrix.t -> Poly.t
(** Characteristic polynomial [det(x·I − A)] by the
    Faddeev–LeVerrier recurrence, lowest-degree coefficient first. *)

val eigenvalues : Matrix.t -> Complex.t list
(** All eigenvalues (with multiplicity) via {!char_poly} and
    {!Poly.roots}.  Intended for the small state dimensions used in
    control design. *)

val spectral_radius : Matrix.t -> float
(** Largest eigenvalue modulus. *)

val is_stable_continuous : ?margin:float -> Matrix.t -> bool
(** All eigenvalues have real part < −[margin] (default [0.]). *)

val is_stable_discrete : ?margin:float -> Matrix.t -> bool
(** All eigenvalues have modulus < 1 − [margin] (default [0.]). *)

val kron : Matrix.t -> Matrix.t -> Matrix.t
(** Kronecker product. *)

val lyap : Matrix.t -> Matrix.t -> Matrix.t
(** [lyap a q] solves the continuous Lyapunov equation
    [A·P + P·Aᵀ + Q = 0] by Kronecker vectorisation — [A] must be
    Hurwitz for the result to be the controllability Gramian.  Raises
    {!Singular} when no unique solution exists (e.g. eigenvalues
    summing to zero). *)

val dlyap : Matrix.t -> Matrix.t -> Matrix.t
(** [dlyap a q] solves the discrete Lyapunov (Stein) equation
    [P = A·P·Aᵀ + Q].  Raises {!Singular} when [A] has reciprocal
    eigenvalue pairs. *)

val lstsq : Matrix.t -> float array -> float array
(** Least-squares solution of an overdetermined system via the normal
    equations.  Raises {!Singular} when [AᵀA] is singular (rank
    deficient). *)
