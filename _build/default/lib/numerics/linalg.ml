exception Singular

type lu = {
  lu_mat : float array array; (* combined L (unit diagonal) and U *)
  perm : int array; (* row permutation applied to the right-hand side *)
  sign : float; (* parity of the permutation, for determinants *)
  n : int;
}

let lu_decompose m =
  if not (Matrix.is_square m) then invalid_arg "Linalg.lu_decompose: not square";
  let n = Matrix.rows m in
  let a = Matrix.to_arrays m in
  let perm = Array.init n Fun.id in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* partial pivoting: bring the largest |entry| of column k to row k *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tp;
      sign := -. !sign
    end;
    if a.(k).(k) = 0. then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = a.(i).(k) /. a.(k).(k) in
      a.(i).(k) <- factor;
      for j = k + 1 to n - 1 do
        a.(i).(j) <- a.(i).(j) -. (factor *. a.(k).(j))
      done
    done
  done;
  { lu_mat = a; perm; sign = !sign; n }

let lu_solve { lu_mat = a; perm; n; _ } b =
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: dimension mismatch";
  let y = Array.make n 0. in
  (* forward substitution on the permuted right-hand side *)
  for i = 0 to n - 1 do
    let s = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (a.(i).(j) *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* back substitution *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. a.(i).(i)
  done;
  x

let lu_det { lu_mat = a; sign; n; _ } =
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. a.(i).(i)
  done;
  !d

let solve m b = lu_solve (lu_decompose m) b

let solve_mat a b =
  if Matrix.rows a <> Matrix.rows b then invalid_arg "Linalg.solve_mat: row mismatch";
  let f = lu_decompose a in
  let cols =
    Array.init (Matrix.cols b) (fun j -> lu_solve f (Matrix.col b j))
  in
  Matrix.init (Matrix.rows a) (Matrix.cols b) (fun i j -> cols.(j).(i))

let inv m = solve_mat m (Matrix.identity (Matrix.rows m))

let det m = match lu_decompose m with exception Singular -> 0. | f -> lu_det f

(* Faddeev–LeVerrier: M₀ = I, cₙ = 1;
   Mₖ = A·Mₖ₋₁ + cₙ₋ₖ₊₁·I with cₙ₋ₖ = −tr(A·Mₖ₋₁ + cₙ₋ₖ₊₁·I … )/k.
   We use the standard recurrence producing det(x·I − A). *)
let char_poly m =
  if not (Matrix.is_square m) then invalid_arg "Linalg.char_poly: not square";
  let n = Matrix.rows m in
  let coeffs = Array.make (n + 1) 0. in
  coeffs.(n) <- 1.;
  let mk = ref (Matrix.identity n) in
  for k = 1 to n do
    let am = Matrix.mul m !mk in
    let c = -.Matrix.trace am /. float_of_int k in
    coeffs.(n - k) <- c;
    mk := Matrix.add am (Matrix.scale c (Matrix.identity n))
  done;
  coeffs

let eigenvalues m =
  if Matrix.rows m = 0 then [] else Poly.roots (char_poly m)

let spectral_radius m =
  List.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. (eigenvalues m)

let is_stable_continuous ?(margin = 0.) m =
  List.for_all (fun z -> z.Complex.re < -.margin) (eigenvalues m)

let is_stable_discrete ?(margin = 0.) m =
  List.for_all (fun z -> Complex.norm z < 1. -. margin) (eigenvalues m)

let kron a b =
  let ra = Matrix.rows a and ca = Matrix.cols a in
  let rb = Matrix.rows b and cb = Matrix.cols b in
  Matrix.init (ra * rb) (ca * cb) (fun i j ->
      Matrix.get a (i / rb) (j / cb) *. Matrix.get b (i mod rb) (j mod cb))

(* vec stacks columns, so vec(A·P·Bᵀ) = (B ⊗ A)·vec(P) *)
let vec m =
  let r = Matrix.rows m and c = Matrix.cols m in
  Array.init (r * c) (fun k -> Matrix.get m (k mod r) (k / r))

let unvec v r c = Matrix.init r c (fun i j -> v.((j * r) + i))

let lyap a q =
  if not (Matrix.is_square a) then invalid_arg "Linalg.lyap: A not square";
  if Matrix.rows q <> Matrix.rows a || Matrix.cols q <> Matrix.cols a then
    invalid_arg "Linalg.lyap: Q shape mismatch";
  let n = Matrix.rows a in
  let id = Matrix.identity n in
  (* (I ⊗ A + A ⊗ I)·vec(P) = −vec(Q) *)
  let lhs = Matrix.add (kron id a) (kron a id) in
  let p = solve lhs (Array.map (fun x -> -.x) (vec q)) in
  unvec p n n

let dlyap a q =
  if not (Matrix.is_square a) then invalid_arg "Linalg.dlyap: A not square";
  if Matrix.rows q <> Matrix.rows a || Matrix.cols q <> Matrix.cols a then
    invalid_arg "Linalg.dlyap: Q shape mismatch";
  let n = Matrix.rows a in
  (* (I − A ⊗ A)·vec(P) = vec(Q) *)
  let lhs = Matrix.sub (Matrix.identity (n * n)) (kron a a) in
  let p = solve lhs (vec q) in
  unvec p n n

let lstsq a b =
  if Matrix.rows a <> Array.length b then invalid_arg "Linalg.lstsq: dimension mismatch";
  let at = Matrix.transpose a in
  let ata = Matrix.mul at a in
  let atb = Matrix.mul_vec at b in
  solve ata atb
