(** Execution-time laws: how long an operation (or transfer) actually
    takes at run time, given its BCET/WCET characterisation.

    The adequation plans with WCETs; real executions are usually
    shorter and vary — the variation is precisely what creates the
    sampling/actuation jitter the methodology exposes.  All laws are
    clamped to the [\[bcet, wcet\]] interval, honouring the
    worst-case contract of the static schedule. *)

type t =
  | Wcet  (** deterministic worst case — the static schedule replayed *)
  | Bcet  (** deterministic best case *)
  | Uniform  (** uniform over [\[bcet, wcet\]] *)
  | Triangular of float
      (** triangular over [\[bcet, wcet\]] with mode at
          [bcet + frac·(wcet − bcet)], [frac ∈ \[0,1\]] — the common
          "usually near best case, occasionally slow" profile *)
  | Gaussian of { mean_frac : float; sigma_frac : float }
      (** normal with mean/σ expressed as fractions of the interval,
          truncated to it *)

val sample : t -> Numerics.Rng.t -> bcet:float -> wcet:float -> float
(** Draws one duration.  Requires [0 <= bcet <= wcet]; a degenerate
    interval returns [wcet] whatever the law. *)
