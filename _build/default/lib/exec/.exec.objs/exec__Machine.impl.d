lib/exec/machine.ml: Aaa Array Buffer Float Hashtbl List Numerics Option Printf String Timing_law
