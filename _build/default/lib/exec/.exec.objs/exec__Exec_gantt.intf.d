lib/exec/exec_gantt.mli: Machine
