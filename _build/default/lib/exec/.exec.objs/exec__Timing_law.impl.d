lib/exec/timing_law.ml: Float Numerics
