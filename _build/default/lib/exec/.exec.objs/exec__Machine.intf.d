lib/exec/machine.mli: Aaa Timing_law
