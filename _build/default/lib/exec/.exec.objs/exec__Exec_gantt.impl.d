lib/exec/exec_gantt.ml: Aaa Buffer Bytes Int List Machine Printf String
