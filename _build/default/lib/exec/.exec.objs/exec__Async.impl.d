lib/exec/async.ml: Aaa Array Float Hashtbl List Numerics Timing_law
