lib/exec/timing_law.mli: Numerics
