lib/exec/async.mli: Aaa Timing_law
