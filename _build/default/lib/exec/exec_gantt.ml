module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Sched = Aaa.Schedule
module Cg = Aaa.Codegen

let render ?(width = 72) ~iteration trace =
  if width < 10 then invalid_arg "Exec_gantt.render: width too small";
  if iteration < 0 || iteration >= trace.Machine.iterations then
    invalid_arg "Exec_gantt.render: iteration out of range";
  let sched = trace.Machine.executive.Cg.schedule in
  let alg = sched.Sched.algorithm in
  let arch = sched.Sched.architecture in
  let t0 = float_of_int iteration *. trace.Machine.period in
  let span = trace.Machine.period in
  let scale t = int_of_float ((t -. t0) /. span *. float_of_int width) in
  let buf = Buffer.create 1024 in
  let label_width =
    List.fold_left
      (fun acc operator -> Int.max acc (String.length (Arch.operator_name arch operator)))
      0 (Arch.operators arch)
    |> fun w ->
    List.fold_left
      (fun acc medium -> Int.max acc (String.length (Arch.medium_name arch medium)))
      w (Arch.media arch)
  in
  let row name slots =
    let cells = Bytes.make width '.' in
    List.iter
      (fun (start, finish, text) ->
        let a = Int.max 0 (Int.min (width - 1) (scale start)) in
        let b = Int.min width (Int.max (a + 1) (scale finish)) in
        for i = a to b - 1 do
          Bytes.set cells i '#'
        done;
        String.iteri
          (fun i ch -> if a + i < b && a + i < width then Bytes.set cells (a + i) ch)
          (String.sub text 0 (Int.min (String.length text) (Int.max 0 (b - a)))))
      slots;
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s|\n" label_width name (Bytes.to_string cells))
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  iteration %d: t in [%.6g, %.6g)\n" label_width "" iteration t0
       (t0 +. span));
  List.iter
    (fun operator ->
      let slots =
        List.filter_map
          (fun (oe : Machine.op_exec) ->
            if oe.Machine.oe_iteration = iteration && oe.Machine.oe_operator = operator
               && not oe.Machine.oe_skipped
            then Some (oe.Machine.oe_start, oe.Machine.oe_finish, Alg.op_name alg oe.Machine.oe_op)
            else None)
          trace.Machine.ops
      in
      row (Arch.operator_name arch operator) slots)
    (Arch.operators arch);
  List.iter
    (fun medium ->
      let slots =
        List.filter_map
          (fun (ce : Machine.comm_exec) ->
            if ce.Machine.ce_iteration = iteration
               && ce.Machine.ce_slot.Sched.cm_medium = medium
            then
              Some
                ( ce.Machine.ce_start,
                  ce.Machine.ce_finish,
                  Alg.op_name alg (fst ce.Machine.ce_slot.Sched.cm_src) )
            else None)
          trace.Machine.comms
      in
      row (Arch.medium_name arch medium) slots)
    (Arch.media arch);
  Buffer.contents buf
