(** ASCII Gantt charts of {e executed} traces — the measured
    counterpart of {!Aaa.Gantt}: what one iteration actually looked
    like on the simulated machine, operator by operator and medium by
    medium, so a planned chart and a measured chart can be compared
    side by side. *)

val render : ?width:int -> iteration:int -> Machine.trace -> string
(** Renders iteration [iteration] of the trace over a time axis from
    the iteration's release to the next one (one period).  Skipped
    (conditioned-out) operations do not appear.  Raises
    [Invalid_argument] on an out-of-range iteration. *)
