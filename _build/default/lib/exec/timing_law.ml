type t =
  | Wcet
  | Bcet
  | Uniform
  | Triangular of float
  | Gaussian of { mean_frac : float; sigma_frac : float }

let sample law rng ~bcet ~wcet =
  if bcet < 0. || wcet < bcet then invalid_arg "Timing_law.sample: need 0 <= bcet <= wcet";
  let span = wcet -. bcet in
  if span = 0. then wcet
  else
    match law with
    | Wcet -> wcet
    | Bcet -> bcet
    | Uniform -> Numerics.Rng.uniform rng bcet wcet
    | Triangular frac ->
        if frac < 0. || frac > 1. then invalid_arg "Timing_law.sample: mode fraction";
        Numerics.Rng.triangular rng ~lo:bcet ~mode:(bcet +. (frac *. span)) ~hi:wcet
    | Gaussian { mean_frac; sigma_frac } ->
        let mu = bcet +. (mean_frac *. span) in
        let sigma = sigma_frac *. span in
        let v = Numerics.Rng.gaussian rng ~mu ~sigma () in
        Float.max bcet (Float.min wcet v)
