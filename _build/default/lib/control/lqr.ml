module M = Numerics.Matrix

type result = { k : M.t; p : M.t; iterations : int }

let dlqr ?(max_iter = 10_000) ?(tol = 1e-10) ~a ~b ~q ~r () =
  let n = M.rows a in
  if not (M.is_square a) then invalid_arg "Lqr.dlqr: A not square";
  if M.rows b <> n then invalid_arg "Lqr.dlqr: B rows mismatch";
  if M.rows q <> n || M.cols q <> n then invalid_arg "Lqr.dlqr: Q shape mismatch";
  let m = M.cols b in
  if M.rows r <> m || M.cols r <> m then invalid_arg "Lqr.dlqr: R shape mismatch";
  let at = M.transpose a and bt = M.transpose b in
  let gain p =
    (* K = (R + BᵀPB)⁻¹ BᵀPA *)
    let btp = M.mul bt p in
    Numerics.Linalg.solve_mat (M.add r (M.mul btp b)) (M.mul btp a)
  in
  let rec iterate p i =
    if i > max_iter then failwith "Lqr.dlqr: Riccati iteration did not converge";
    let k = gain p in
    (* P' = Q + Aᵀ P (A − B·K) — the Joseph-free simplification is
       adequate at these scales *)
    let p' = M.add q (M.mul (M.mul at p) (M.sub a (M.mul b k))) in
    if M.norm_inf (M.sub p' p) <= tol *. (1. +. M.norm_inf p') then
      { k = gain p'; p = p'; iterations = i }
    else iterate p' (i + 1)
  in
  iterate q 1

let dlqr_sys ?max_iter ?tol ~q ~r (sys : Lti.t) =
  match sys.domain with
  | Lti.Discrete _ -> dlqr ?max_iter ?tol ~a:sys.a ~b:sys.b ~q ~r ()
  | Lti.Continuous -> invalid_arg "Lqr.dlqr_sys: continuous system (discretize first)"

let closed_loop sys res = Lti.feedback_gain sys res.k

let quadratic_cost ~q ~r ~states ~inputs =
  if Array.length states <> Array.length inputs then
    invalid_arg "Lqr.quadratic_cost: trace length mismatch";
  let quad w v = Numerics.Vec.dot v (M.mul_vec w v) in
  let cost = ref 0. in
  Array.iteri (fun i x -> cost := !cost +. quad q x +. quad r inputs.(i)) states;
  !cost
