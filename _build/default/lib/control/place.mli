(** Pole placement for single-input systems (Ackermann's formula).

    Given a controllable pair [(A, b)] and a desired set of closed-loop
    poles, computes the row gain [k] such that the eigenvalues of
    [A − b·k] are the requested poles. *)

val ackermann : a:Numerics.Matrix.t -> b:Numerics.Matrix.t -> poles:float array -> Numerics.Matrix.t
(** [ackermann ~a ~b ~poles] returns the [1×n] gain.  [b] must be a
    single column and the number of poles must equal the state
    dimension.  Raises [Invalid_argument] on dimension mismatch and
    [Numerics.Linalg.Singular] when the pair is uncontrollable. *)

val place_sys : Lti.t -> poles:float array -> Numerics.Matrix.t
(** {!ackermann} on the [A], [B] of a single-input {!Lti.t}. *)
