module M = Numerics.Matrix

let h2 (sys : Lti.t) =
  if not (Lti.is_stable sys) then invalid_arg "Norms.h2: unstable system";
  let bbt = M.mul sys.Lti.b (M.transpose sys.Lti.b) in
  match sys.Lti.domain with
  | Lti.Continuous ->
      if M.norm_inf sys.Lti.d > 0. then
        invalid_arg "Norms.h2: continuous system with direct term has infinite H2 norm";
      let p = Numerics.Linalg.lyap sys.Lti.a bbt in
      sqrt (M.trace (M.mul (M.mul sys.Lti.c p) (M.transpose sys.Lti.c)))
  | Lti.Discrete _ ->
      let p = Numerics.Linalg.dlyap sys.Lti.a bbt in
      sqrt
        (M.trace (M.mul (M.mul sys.Lti.c p) (M.transpose sys.Lti.c))
        +. M.trace (M.mul sys.Lti.d (M.transpose sys.Lti.d)))

let hinf ?(n = 400) ?(w_min = 1e-3) ?(w_max = 1e4) (sys : Lti.t) =
  if Lti.input_dim sys <> 1 || Lti.output_dim sys <> 1 then
    invalid_arg "Norms.hinf: SISO systems only";
  let gain w = Complex.norm (Freq.response sys w) in
  (* grid scan, then golden-section refinement around the best point *)
  let best = ref (Freq.dc_gain sys, 0.) in
  (match sys.Lti.domain with
  | Lti.Continuous ->
      let d_gain = Float.abs (M.get sys.Lti.d 0 0) in
      if d_gain > fst !best then best := (d_gain, Float.infinity)
  | Lti.Discrete _ -> ());
  let grid =
    let ratio = Float.log (w_max /. w_min) /. float_of_int (n - 1) in
    List.init n (fun i -> w_min *. Float.exp (float_of_int i *. ratio))
  in
  List.iter
    (fun w ->
      let g = gain w in
      if g > fst !best then best := (g, w))
    grid;
  let peak, w_peak = !best in
  if Float.is_finite w_peak && w_peak > 0. then begin
    (* golden-section maximisation on the log axis around the peak *)
    let lo = ref (Float.log (w_peak /. 2.)) and hi = ref (Float.log (w_peak *. 2.)) in
    let phi = (sqrt 5. -. 1.) /. 2. in
    for _ = 1 to 60 do
      let x1 = !hi -. (phi *. (!hi -. !lo)) in
      let x2 = !lo +. (phi *. (!hi -. !lo)) in
      if gain (Float.exp x1) > gain (Float.exp x2) then hi := x2 else lo := x1
    done;
    let w_star = Float.exp ((!lo +. !hi) /. 2.) in
    let g_star = gain w_star in
    if g_star > peak then (g_star, w_star) else (peak, w_peak)
  end
  else (peak, w_peak)
