(** System norms.

    The H2 norm quantifies the output variance under white-noise
    input (the LQG-side performance measure); the H∞ norm is the
    worst-case frequency-domain gain (the robustness-side measure).
    Together with {!Freq.margins} they summarise how much latitude a
    design has before the implementation effects studied by the
    methodology destabilise it. *)

val h2 : Lti.t -> float
(** H2 norm via the controllability Gramian (continuous Lyapunov /
    discrete Stein equation).  Raises [Invalid_argument] on an
    unstable system, or on a continuous system with a nonzero direct
    term (whose H2 norm is infinite). *)

val hinf : ?n:int -> ?w_min:float -> ?w_max:float -> Lti.t -> float * float
(** [(‖G‖∞, ω_peak)] of a SISO system: the peak of [|G(jω)|] over a
    log grid (same defaults as {!Freq.bode}), refined by golden-section
    search around the best grid point.  DC and (for continuous
    systems) the ω → ∞ gain [|D|] are included in the scan.  Raises
    [Invalid_argument] on MIMO systems. *)
