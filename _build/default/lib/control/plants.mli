(** A zoo of standard plants used by the examples and experiments.

    Every plant provides its continuous-time linear model; the
    physically nonlinear ones (pendulum) also expose their nonlinear
    vector field for high-fidelity co-simulation. *)

(** Parameters of a permanent-magnet DC motor (default values are the
    classic textbook servo). States: [[angular velocity; current]];
    input: armature voltage; output: angular velocity. *)
type dc_motor = {
  j : float;  (** rotor inertia [kg·m²] *)
  b_friction : float;  (** viscous friction [N·m·s] *)
  kt : float;  (** torque constant [N·m/A] *)
  ke : float;  (** back-EMF constant [V·s/rad] *)
  r_arm : float;  (** armature resistance [Ω] *)
  l_arm : float;  (** armature inductance [H] *)
}

val default_dc_motor : dc_motor
val dc_motor : dc_motor -> Lti.t

(** Inverted pendulum on a cart.  States:
    [[cart pos; cart vel; pole angle; pole angular vel]] with angle
    measured from the upright position; input: horizontal force;
    outputs: cart position and pole angle. *)
type pendulum = {
  m_cart : float;  (** cart mass [kg] *)
  m_pole : float;  (** pole mass [kg] *)
  l_pole : float;  (** distance to pole centre of mass [m] *)
  friction : float;  (** cart friction coefficient *)
  gravity : float;
}

val default_pendulum : pendulum

val pendulum_linear : pendulum -> Lti.t
(** Linearisation about the upright equilibrium. *)

val pendulum_rhs : pendulum -> u:(float -> float) -> Numerics.Ode.rhs
(** Full nonlinear dynamics driven by force signal [u]. *)

(** Quarter-car active suspension.  States: [[sprung mass position;
    sprung velocity; unsprung position; unsprung velocity]] (positions
    relative to equilibrium); inputs: [[actuator force; road profile
    displacement]]; outputs: [[sprung acceleration proxy (suspension
    deflection); tyre deflection]]. *)
type quarter_car = {
  m_sprung : float;  (** body quarter mass [kg] *)
  m_unsprung : float;  (** wheel assembly mass [kg] *)
  k_spring : float;  (** suspension stiffness [N/m] *)
  c_damper : float;  (** suspension damping [N·s/m] *)
  k_tyre : float;  (** tyre stiffness [N/m] *)
}

val default_quarter_car : quarter_car
val quarter_car : quarter_car -> Lti.t

val mass_spring_damper : m:float -> k:float -> c:float -> Lti.t
(** Single mass-spring-damper: states [[pos; vel]], force input,
    position output. *)

val first_order : tau:float -> gain:float -> Lti.t
(** First-order lag [gain/(tau·s + 1)] — thermal/cruise-style plant. *)

val double_integrator : unit -> Lti.t
(** The canonical [1/s²] benchmark plant. *)

(** Two-mass thermal process: a heated core coupled to an envelope
    coupled to ambient.  States: [[T_core; T_envelope]] (relative to
    ambient); input: heating power [W]; output: envelope
    temperature. *)
type thermal = {
  c_core : float;  (** core heat capacity [J/K] *)
  c_env : float;  (** envelope heat capacity [J/K] *)
  k_coupling : float;  (** core↔envelope conductance [W/K] *)
  k_loss : float;  (** envelope→ambient conductance [W/K] *)
}

val default_thermal : thermal
val thermal : thermal -> Lti.t

(** Cruise control: longitudinal vehicle speed with linearised drag.
    State: [[speed]] (around the operating point); inputs:
    [[traction force; grade force]] (the second is the road-slope
    disturbance); output: speed. *)
type cruise = {
  mass : float;  (** vehicle mass [kg] *)
  drag : float;  (** linearised drag coefficient [N·s/m] *)
}

val default_cruise : cruise
val cruise : cruise -> Lti.t
