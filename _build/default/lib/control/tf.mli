(** SISO transfer functions and realisation.

    [num] and [den] are {!Numerics.Poly.t} coefficient arrays (lowest
    degree first).  The transfer function must be proper
    (deg num ≤ deg den). *)

type t = private { num : Numerics.Poly.t; den : Numerics.Poly.t }

val make : num:Numerics.Poly.t -> den:Numerics.Poly.t -> t
(** Normalises both polynomials and scales the denominator monic.
    Raises [Invalid_argument] on an improper fraction or zero
    denominator. *)

val dc_gain : t -> float
(** [num(0)/den(0)]; [infinity] for an integrating system. *)

val poles : t -> Complex.t list
val zeros : t -> Complex.t list

val to_ss : domain:Lti.domain -> t -> Lti.t
(** Controllable canonical state-space realisation. *)

val second_order : wn:float -> zeta:float -> t
(** The standard [wn²/(s² + 2·ζ·wn·s + wn²)] prototype. *)

(** {2 Block-diagram algebra} — build open/closed loops symbolically
    (e.g. the loop transfer [C·G] fed to {!Freq.margins}). *)

val mul : t -> t -> t
(** Series connection [G·H]. *)

val add : t -> t -> t
(** Parallel connection [G + H]. *)

val scale : float -> t -> t

val feedback : ?sign:[ `Neg | `Pos ] -> t -> t -> t
(** [feedback g h] closes the loop [g/(1 ± g·h)] ([`Neg], the
    default, gives negative feedback [g/(1 + g·h)]).  Raises
    [Invalid_argument] when the closed loop is improper or
    identically singular. *)

val unity : t
(** The unit transfer function [1]. *)

val pp : Format.formatter -> t -> unit
