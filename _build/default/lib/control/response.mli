(** Time-domain responses of LTI systems, without building a block
    diagram: step/impulse/initial-condition responses and simulation
    against arbitrary input signals.  Continuous systems are
    integrated with {!Numerics.Ode}; discrete systems are stepped
    exactly. *)

type t = {
  times : float array;
  outputs : float array array;  (** row per sample, column per output *)
  states : float array array;
}

val lsim :
  ?x0:float array ->
  ?meth:Numerics.Ode.method_ ->
  ?max_step:float ->
  u:(float -> float array) ->
  t_end:float ->
  ?dt:float ->
  Lti.t ->
  t
(** Simulates the system driven by [u] over [\[0, t_end\]], sampling
    the result every [dt] (default [t_end/200] for continuous systems,
    the sampling period for discrete ones).  [x0] defaults to zero.
    For a discrete system, [u] is evaluated at the sampling instants
    and [meth]/[max_step]/[dt] are ignored ([dt] = Ts). *)

val step : ?x0:float array -> ?amplitude:float -> t_end:float -> ?dt:float -> Lti.t -> t
(** Response to a step of the given [amplitude] (default 1) applied to
    every input at [t = 0]. *)

val impulse : t_end:float -> ?dt:float -> Lti.t -> t
(** Impulse response: for continuous systems, the equivalent
    initial-state response [x0 = B·[1;…]] with zero input; for
    discrete systems, a one-sample pulse of height [1/Ts]. *)

val initial : x0:float array -> t_end:float -> ?dt:float -> Lti.t -> t
(** Unforced response from an initial state. *)

val output_trace : t -> int -> Metrics.trace
(** One output channel as a metric trace. *)

val step_info :
  ?channel:int -> ?reference:float -> t -> float option * float * float option
(** Convenience: [(settling time, overshoot fraction, rise time)] of a
    step response channel against [reference] (default 1). *)
