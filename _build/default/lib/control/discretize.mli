(** Discretisation of continuous-time LTI systems.

    The third design step of the paper's lifecycle: control laws "are
    next discretized in order to allow their digital execution". *)

type scheme =
  | Zoh  (** exact zero-order hold (matrix exponential) *)
  | Tustin  (** bilinear transform *)
  | Forward_euler  (** [Ad = I + Ts·A] — cheap, conditionally stable *)
  | Backward_euler  (** [Ad = (I − Ts·A)⁻¹] *)

val discretize : ?scheme:scheme -> ts:float -> Lti.t -> Lti.t
(** Discretises a continuous system with sampling period [ts]
    (default scheme: {!Zoh}).  Raises [Invalid_argument] on a discrete
    input or non-positive [ts]; Tustin/backward Euler raise
    [Numerics.Linalg.Singular] when [(I ∓ Ts/2·A)] is singular. *)

val zoh_with_delay : ts:float -> delay:float -> Lti.t -> Lti.t
(** Exact ZOH discretisation of a continuous system whose input is
    delayed by [delay] with [0 <= delay <= ts]: the classic
    Åström–Wittenmark augmentation that appends the previous control
    value to the state.  This is the model-based view of actuation
    latency used by the calibration phase.  State layout:
    [[x; u_prev]]. *)
