module M = Numerics.Matrix

let ackermann ~a ~b ~poles =
  if not (M.is_square a) then invalid_arg "Place.ackermann: A not square";
  let n = M.rows a in
  if M.cols b <> 1 || M.rows b <> n then
    invalid_arg "Place.ackermann: B must be a single n-element column";
  if Array.length poles <> n then invalid_arg "Place.ackermann: need n poles";
  (* desired characteristic polynomial evaluated at A *)
  let chi = Numerics.Poly.of_roots poles in
  let chi_a = ref (M.zeros n n) in
  let power = ref (M.identity n) in
  Array.iteri
    (fun i c ->
      chi_a := M.add !chi_a (M.scale c !power);
      if i < Array.length chi - 1 then power := M.mul !power a)
    chi;
  (* k = [0 … 0 1]·𝒞⁻¹·χ(A) *)
  let ctrl =
    let rec build acc p k =
      if k >= n then acc
      else
        let p = M.mul a p in
        build (M.hcat acc p) p (k + 1)
    in
    build b b 1
  in
  let ctrl_inv = Numerics.Linalg.inv ctrl in
  let last_row = M.block ctrl_inv (n - 1) 0 1 n in
  M.mul last_row !chi_a

let place_sys (sys : Lti.t) ~poles =
  if Lti.input_dim sys <> 1 then invalid_arg "Place.place_sys: single-input systems only";
  ackermann ~a:sys.a ~b:sys.b ~poles
