module CM = Numerics.Cmatrix

(* evaluation point on the analysis contour *)
let eval_point (sys : Lti.t) w =
  match sys.domain with
  | Lti.Continuous -> { Complex.re = 0.; im = w }
  | Lti.Discrete ts -> Complex.polar 1. (w *. ts)

let response_mimo (sys : Lti.t) w =
  let n = Lti.state_dim sys in
  let s = eval_point sys w in
  let si_minus_a = CM.sub (CM.scalar s n) (CM.of_real sys.a) in
  let c = CM.of_real sys.c and b = CM.of_real sys.b and d = CM.of_real sys.d in
  if n = 0 then d
  else CM.add (CM.mul c (CM.solve_mat si_minus_a b)) d

let response sys w =
  if Lti.input_dim sys <> 1 || Lti.output_dim sys <> 1 then
    invalid_arg "Freq.response: SISO systems only";
  CM.get (response_mimo sys w) 0 0

type bode_point = { omega : float; magnitude_db : float; phase_deg : float }

let nyquist_cap (sys : Lti.t) w_max =
  match sys.domain with
  | Lti.Continuous -> w_max
  | Lti.Discrete ts -> Float.min w_max (0.999 *. Float.pi /. ts)

let log_grid ~n ~w_min ~w_max =
  let ratio = Float.log (w_max /. w_min) /. float_of_int (n - 1) in
  List.init n (fun i -> w_min *. Float.exp (float_of_int i *. ratio))

let bode ?(n = 200) ?(w_min = 1e-2) ?(w_max = 1e3) sys =
  if n < 2 then invalid_arg "Freq.bode: need at least two points";
  if w_min <= 0. || w_max <= w_min then invalid_arg "Freq.bode: bad frequency range";
  let w_max = nyquist_cap sys w_max in
  let points = log_grid ~n ~w_min ~w_max in
  (* unwrap the phase so margins can bisect across the -180° line *)
  let prev_phase = ref None in
  List.map
    (fun w ->
      let g = response sys w in
      let mag = Complex.norm g in
      let raw = Complex.arg g *. 180. /. Float.pi in
      let phase =
        match !prev_phase with
        | None -> raw
        | Some p ->
            let rec adjust x =
              if x -. p > 180. then adjust (x -. 360.)
              else if p -. x > 180. then adjust (x +. 360.)
              else x
            in
            adjust raw
      in
      prev_phase := Some phase;
      { omega = w; magnitude_db = 20. *. Float.log10 mag; phase_deg = phase })
    points

type margins = {
  gain_margin_db : float option;
  phase_margin_deg : float option;
  gain_crossover : float option;
  phase_crossover : float option;
  delay_margin : float option;
}

(* bisection for f(w) = 0 between wa and wb where signs differ *)
let bisect f wa wb =
  let rec go wa wb fa n =
    if n = 0 then (wa +. wb) /. 2.
    else
      let mid = sqrt (wa *. wb) (* geometric mid on a log axis *) in
      let fm = f mid in
      if (fa < 0.) = (fm < 0.) then go mid wb fm (n - 1) else go wa mid fa (n - 1)
  in
  go wa wb (f wa) 60

let margins ?(n = 400) ?(w_min = 1e-3) ?(w_max = 1e4) sys =
  let pts = Array.of_list (bode ~n ~w_min ~w_max sys) in
  let mag_db w = 20. *. Float.log10 (Complex.norm (response sys w)) in
  (* gain crossover: |G| = 1 (0 dB), refined by bisection on |G| *)
  let gain_crossover =
    let rec go i =
      if i >= Array.length pts - 1 then None
      else
        let a = pts.(i).magnitude_db and b = pts.(i + 1).magnitude_db in
        if (a >= 0.) <> (b >= 0.) then
          Some (bisect mag_db pts.(i).omega pts.(i + 1).omega)
        else go (i + 1)
    in
    go 0
  in
  (* phase crossover: unwrapped phase = -180°, refined on the grid by
     linear interpolation (phase recomputation would rewrap) *)
  let phase_crossover =
    let rec go i =
      if i >= Array.length pts - 1 then None
      else
        let a = pts.(i).phase_deg +. 180. and b = pts.(i + 1).phase_deg +. 180. in
        if (a >= 0.) <> (b >= 0.) then
          let frac = a /. (a -. b) in
          Some (pts.(i).omega *. ((pts.(i + 1).omega /. pts.(i).omega) ** frac))
        else go (i + 1)
    in
    go 0
  in
  let phase_margin_deg =
    Option.map
      (fun wc ->
        (* find the unwrapped phase at wc by interpolating the grid *)
        let rec locate i =
          if i >= Array.length pts - 1 then pts.(Array.length pts - 1).phase_deg
          else if pts.(i + 1).omega >= wc then
            let p0 = pts.(i) and p1 = pts.(i + 1) in
            let frac = Float.log (wc /. p0.omega) /. Float.log (p1.omega /. p0.omega) in
            p0.phase_deg +. (frac *. (p1.phase_deg -. p0.phase_deg))
          else locate (i + 1)
        in
        180. +. locate 0)
      gain_crossover
  in
  let gain_margin_db =
    Option.map (fun w180 -> -.mag_db w180) phase_crossover
  in
  let delay_margin =
    match (phase_margin_deg, gain_crossover) with
    | Some pm, Some wc when wc > 0. -> Some (pm *. Float.pi /. 180. /. wc)
    | (Some _ | None), _ -> None
  in
  { gain_margin_db; phase_margin_deg; gain_crossover; phase_crossover; delay_margin }

let dc_gain sys =
  match response_mimo sys 0. with
  | g -> CM.norm_inf g
  | exception CM.Singular -> Float.infinity

let nyquist ?(n = 200) ?(w_min = 1e-2) ?(w_max = 1e3) sys =
  if n < 2 then invalid_arg "Freq.nyquist: need at least two points";
  if w_min <= 0. || w_max <= w_min then invalid_arg "Freq.nyquist: bad frequency range";
  let w_max = nyquist_cap sys w_max in
  List.map (fun w -> (w, response sys w)) (log_grid ~n ~w_min ~w_max)

let sensitivity_peak ?(n = 400) ?(w_min = 1e-3) ?(w_max = 1e4) sys =
  List.fold_left
    (fun (best, w_best) (w, l) ->
      let s = 1. /. Complex.norm (Complex.add Complex.one l) in
      if s > best then (s, w) else (best, w_best))
    (0., w_min)
    (nyquist ~n ~w_min ~w_max sys)
