module P = Numerics.Poly
module M = Numerics.Matrix

type t = { num : P.t; den : P.t }

let make ~num ~den =
  let num = P.normalize num and den = P.normalize den in
  if Array.length den = 1 && den.(0) = 0. then invalid_arg "Tf.make: zero denominator";
  if P.degree num > P.degree den then invalid_arg "Tf.make: improper transfer function";
  let lead = den.(Array.length den - 1) in
  { num = P.scale (1. /. lead) num; den = P.scale (1. /. lead) den }

let dc_gain { num; den } =
  let d0 = P.eval den 0. in
  if d0 = 0. then Float.infinity else P.eval num 0. /. d0

let poles { den; _ } = P.roots den
let zeros { num; _ } = if P.degree num = 0 && num.(0) = 0. then [] else P.roots num

let to_ss ~domain { num; den } =
  let n = P.degree den in
  if n = 0 then
    (* static gain *)
    Lti.make ~domain ~a:(M.zeros 0 0) ~b:(M.zeros 0 1) ~c:(M.zeros 1 0)
      ~d:(M.of_arrays [| [| num.(0) /. den.(0) |] |])
  else begin
    (* controllable canonical form; den is monic *)
    let a =
      M.init n n (fun i j ->
          if i < n - 1 then if j = i + 1 then 1. else 0. else -.den.(j))
    in
    let b = M.init n 1 (fun i _ -> if i = n - 1 then 1. else 0.) in
    (* with direct term: split num = d·den + remainder *)
    let d_term = if P.degree num = n then num.(n) else 0. in
    let c =
      M.init 1 n (fun _ j ->
          let nj = if j < Array.length num then num.(j) else 0. in
          nj -. (d_term *. den.(j)))
    in
    Lti.make ~domain ~a ~b ~c ~d:(M.of_arrays [| [| d_term |] |])
  end

let second_order ~wn ~zeta =
  if wn <= 0. then invalid_arg "Tf.second_order: non-positive natural frequency";
  make ~num:[| wn *. wn |] ~den:[| wn *. wn; 2. *. zeta *. wn; 1. |]

let mul g h = make ~num:(P.mul g.num h.num) ~den:(P.mul g.den h.den)

let add g h =
  make
    ~num:(P.add (P.mul g.num h.den) (P.mul h.num g.den))
    ~den:(P.mul g.den h.den)

let scale s g = make ~num:(P.scale s g.num) ~den:g.den

let unity = make ~num:[| 1. |] ~den:[| 1. |]

let feedback ?(sign = `Neg) g h =
  (* g / (1 ± g·h) = g·dg·dh / (dg·dh ± ng·nh) · 1/dg — simplified:
     num = ng·dh, den = dg·dh ± ng·nh *)
  let num = P.mul g.num h.den in
  let loop = P.mul g.num h.num in
  let den_free = P.mul g.den h.den in
  let den = match sign with `Neg -> P.add den_free loop | `Pos -> P.add den_free (P.scale (-1.) loop) in
  make ~num ~den

let pp ppf { num; den } =
  Format.fprintf ppf "@[(%a) / (%a)@]" P.pp num P.pp den
