(** Linear time-invariant state-space systems.

    A system is the quadruple [(A, B, C, D)] of

    {v
      dx/dt = A·x + B·u        (continuous)   or
      x(k+1) = A·x(k) + B·u(k) (discrete)
      y      = C·x + D·u
    v}

    The same record is used for both domains; {!domain} records which
    one is meant so that mixing them is caught early. *)

type domain = Continuous | Discrete of float
(** [Discrete ts] carries the sampling period. *)

type t = private {
  a : Numerics.Matrix.t;
  b : Numerics.Matrix.t;
  c : Numerics.Matrix.t;
  d : Numerics.Matrix.t;
  domain : domain;
}

val make :
  domain:domain ->
  a:Numerics.Matrix.t ->
  b:Numerics.Matrix.t ->
  c:Numerics.Matrix.t ->
  d:Numerics.Matrix.t ->
  t
(** Validates all dimension constraints ([A] square, [B]/[C]/[D]
    conformable) and, for [Discrete ts], that [ts > 0].  Raises
    [Invalid_argument] otherwise. *)

val state_dim : t -> int
val input_dim : t -> int
val output_dim : t -> int

val output : t -> float array -> float array -> float array
(** [output sys x u] is [C·x + D·u]. *)

val deriv : t -> float array -> float array -> float array
(** [deriv sys x u] is [A·x + B·u] — the vector field of a continuous
    system (also the next state of a discrete one). *)

val step_discrete : t -> float array -> float array -> float array
(** Next state of a discrete system.  Raises [Invalid_argument] on a
    continuous system. *)

val rhs : t -> u:(float -> float array) -> Numerics.Ode.rhs
(** [rhs sys ~u] is the ODE right-hand side of a continuous system
    driven by the input signal [u].  Raises on a discrete system. *)

val is_stable : t -> bool
(** Hurwitz (continuous) or Schur (discrete) stability of [A]. *)

val poles : t -> Complex.t list
(** Eigenvalues of [A]. *)

val controllability : t -> Numerics.Matrix.t
(** Controllability matrix [[B  AB  …  Aⁿ⁻¹B]]. *)

val observability : t -> Numerics.Matrix.t
(** Observability matrix [[C; CA; …; CAⁿ⁻¹]]. *)

val is_controllable : ?eps:float -> t -> bool
(** Full-rank test of the controllability matrix (via determinant of
    [𝒞·𝒞ᵀ]; adequate at these dimensions).  [eps] defaults to
    [1e-9]. *)

val is_observable : ?eps:float -> t -> bool

val series : t -> t -> t
(** [series g h] feeds the output of [g] into [h] (same domain,
    conformable dimensions). *)

val feedback_gain : t -> Numerics.Matrix.t -> t
(** [feedback_gain sys k] closes the loop [u = −K·x], returning the
    autonomous closed-loop system [(A − B·K, B, C − D·K, D)]. *)

val pp : Format.formatter -> t -> unit
