module M = Numerics.Matrix

type scheme = Zoh | Tustin | Forward_euler | Backward_euler

let require_continuous op (sys : Lti.t) =
  match sys.domain with
  | Lti.Continuous -> ()
  | Lti.Discrete _ -> invalid_arg ("Discretize." ^ op ^ ": system already discrete")

let discretize ?(scheme = Zoh) ~ts (sys : Lti.t) =
  require_continuous "discretize" sys;
  if ts <= 0. then invalid_arg "Discretize.discretize: non-positive ts";
  let n = Lti.state_dim sys in
  let id = M.identity n in
  let ad, bd, c, d =
    match scheme with
    | Zoh ->
        let ad, bd = Numerics.Expm.zoh sys.a sys.b ts in
        (ad, bd, sys.c, sys.d)
    | Forward_euler -> (M.add id (M.scale ts sys.a), M.scale ts sys.b, sys.c, sys.d)
    | Backward_euler ->
        let inv = Numerics.Linalg.inv (M.sub id (M.scale ts sys.a)) in
        (inv, M.mul inv (M.scale ts sys.b), sys.c, sys.d)
    | Tustin ->
        (* Ad = (I + h/2·A)(I − h/2·A)⁻¹; Bd = (I − h/2·A)⁻¹·h·B;
           C and D adjusted so the sampled I/O map matches the bilinear
           transform of the transfer function. *)
        let half = ts /. 2. in
        let minus = M.sub id (M.scale half sys.a) in
        let plus = M.add id (M.scale half sys.a) in
        let minus_inv = Numerics.Linalg.inv minus in
        let ad = M.mul plus minus_inv in
        let bd = M.mul minus_inv (M.scale ts sys.b) in
        let c = M.mul sys.c minus_inv in
        let d = M.add sys.d (M.scale half (M.mul c sys.b)) in
        (ad, bd, c, d)
  in
  Lti.make ~domain:(Lti.Discrete ts) ~a:ad ~b:bd ~c ~d

let zoh_with_delay ~ts ~delay (sys : Lti.t) =
  require_continuous "zoh_with_delay" sys;
  if ts <= 0. then invalid_arg "Discretize.zoh_with_delay: non-positive ts";
  if delay < 0. || delay > ts then
    invalid_arg "Discretize.zoh_with_delay: delay must satisfy 0 <= delay <= ts";
  let n = Lti.state_dim sys and m = Lti.input_dim sys in
  (* Over one period the old control acts for [delay], the new one for
     [ts − delay]:
       x(k+1) = Φ·x(k) + Γ1·u(k−1) + Γ0·u(k)
     with Φ = e^{A·Ts}, Γ1 = e^{A(Ts−τ)}·∫₀^τ e^{As}ds·B,
     Γ0 = ∫₀^{Ts−τ} e^{As}ds·B. *)
  let phi, _ = Numerics.Expm.zoh sys.a sys.b ts in
  let gamma0 =
    if ts -. delay <= 0. then M.zeros n m
    else snd (Numerics.Expm.zoh sys.a sys.b (ts -. delay))
  in
  let gamma1 =
    if delay <= 0. then M.zeros n m
    else
      let exp_rest = Numerics.Expm.expm (M.scale (ts -. delay) sys.a) in
      let _, int_tau = Numerics.Expm.zoh sys.a sys.b delay in
      M.mul exp_rest int_tau
  in
  (* Augmented state [x; u_prev]. *)
  let a =
    M.vcat (M.hcat phi gamma1) (M.zeros m (n + m))
  in
  let b = M.vcat gamma0 (M.identity m) in
  let c = M.hcat sys.c (M.zeros (Lti.output_dim sys) m) in
  let d = sys.d in
  Lti.make ~domain:(Lti.Discrete ts) ~a ~b ~c ~d
