type t = {
  times : float array;
  outputs : float array array;
  states : float array array;
}

let lsim ?x0 ?(meth = Numerics.Ode.default_method) ?max_step ~u ~t_end ?dt (sys : Lti.t) =
  if t_end <= 0. then invalid_arg "Response.lsim: non-positive horizon";
  let n = Lti.state_dim sys in
  let x0 =
    match x0 with
    | Some x ->
        if Array.length x <> n then invalid_arg "Response.lsim: x0 dimension mismatch";
        Array.copy x
    | None -> Array.make n 0.
  in
  match sys.Lti.domain with
  | Lti.Discrete ts ->
      let steps = int_of_float (Float.floor ((t_end /. ts) +. 1e-9)) in
      let times = Array.init (steps + 1) (fun k -> float_of_int k *. ts) in
      let states = Array.make (steps + 1) [||] in
      let outputs = Array.make (steps + 1) [||] in
      let x = ref x0 in
      Array.iteri
        (fun k tk ->
          let uk = u tk in
          states.(k) <- Array.copy !x;
          outputs.(k) <- Lti.output sys !x uk;
          if k < steps then x := Lti.step_discrete sys !x uk)
        times;
      { times; outputs; states }
  | Lti.Continuous ->
      let dt = match dt with Some d -> d | None -> t_end /. 200. in
      if dt <= 0. then invalid_arg "Response.lsim: non-positive dt";
      let steps = int_of_float (Float.ceil ((t_end /. dt) -. 1e-9)) in
      let times = Array.init (steps + 1) (fun k -> Float.min t_end (float_of_int k *. dt)) in
      let states = Array.make (steps + 1) [||] in
      let outputs = Array.make (steps + 1) [||] in
      let rhs = Lti.rhs sys ~u in
      let x = ref x0 in
      states.(0) <- Array.copy !x;
      outputs.(0) <- Lti.output sys !x (u 0.);
      for k = 1 to steps do
        x := Numerics.Ode.integrate ~meth ?max_step rhs ~t0:times.(k - 1) ~t1:times.(k) !x;
        states.(k) <- Array.copy !x;
        outputs.(k) <- Lti.output sys !x (u times.(k))
      done;
      { times; outputs; states }

let step ?x0 ?(amplitude = 1.) ~t_end ?dt (sys : Lti.t) =
  let m = Lti.input_dim sys in
  lsim ?x0 ~u:(fun _ -> Array.make m amplitude) ~t_end ?dt sys

let impulse ~t_end ?dt (sys : Lti.t) =
  let m = Lti.input_dim sys in
  match sys.Lti.domain with
  | Lti.Continuous ->
      (* δ-input ≡ initial state B·1 with zero input *)
      let ones = Array.make m 1. in
      let x0 = Numerics.Matrix.mul_vec sys.Lti.b ones in
      lsim ~x0 ~u:(fun _ -> Array.make m 0.) ~t_end ?dt sys
  | Lti.Discrete ts ->
      lsim
        ~u:(fun t -> if t < ts /. 2. then Array.make m (1. /. ts) else Array.make m 0.)
        ~t_end ?dt sys

let initial ~x0 ~t_end ?dt (sys : Lti.t) =
  let m = Lti.input_dim sys in
  lsim ~x0 ~u:(fun _ -> Array.make m 0.) ~t_end ?dt sys

let output_trace r channel =
  if Array.length r.times = 0 then invalid_arg "Response.output_trace: empty response";
  if channel < 0 || channel >= Array.length r.outputs.(0) then
    invalid_arg "Response.output_trace: channel out of range";
  Metrics.of_arrays r.times (Array.map (fun y -> y.(channel)) r.outputs)

let step_info ?(channel = 0) ?(reference = 1.) r =
  let tr = output_trace r channel in
  ( Metrics.settling_time ~reference tr,
    Metrics.overshoot ~reference tr,
    Metrics.rise_time ~reference tr )
