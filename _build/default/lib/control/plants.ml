module M = Numerics.Matrix

type dc_motor = {
  j : float;
  b_friction : float;
  kt : float;
  ke : float;
  r_arm : float;
  l_arm : float;
}

let default_dc_motor =
  { j = 0.01; b_friction = 0.1; kt = 0.01; ke = 0.01; r_arm = 1.; l_arm = 0.5 }

let dc_motor p =
  let a =
    M.of_arrays
      [|
        [| -.p.b_friction /. p.j; p.kt /. p.j |];
        [| -.p.ke /. p.l_arm; -.p.r_arm /. p.l_arm |];
      |]
  in
  let b = M.of_arrays [| [| 0. |]; [| 1. /. p.l_arm |] |] in
  let c = M.of_arrays [| [| 1.; 0. |] |] in
  let d = M.zeros 1 1 in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c ~d

type pendulum = {
  m_cart : float;
  m_pole : float;
  l_pole : float;
  friction : float;
  gravity : float;
}

let default_pendulum =
  { m_cart = 0.5; m_pole = 0.2; l_pole = 0.3; friction = 0.1; gravity = 9.81 }

let pendulum_linear p =
  (* standard linearisation about θ = 0 (upright), neglecting pole
     rotational inertia beyond m·l² *)
  let mc = p.m_cart and mp = p.m_pole and l = p.l_pole and g = p.gravity in
  let fr = p.friction in
  let denom = mc in
  let a =
    M.of_arrays
      [|
        [| 0.; 1.; 0.; 0. |];
        [| 0.; -.fr /. denom; -.(mp *. g) /. denom; 0. |];
        [| 0.; 0.; 0.; 1. |];
        [| 0.; fr /. (denom *. l); (mc +. mp) *. g /. (denom *. l); 0. |];
      |]
  in
  let b =
    M.of_arrays [| [| 0. |]; [| 1. /. denom |]; [| 0. |]; [| -1. /. (denom *. l) |] |]
  in
  let c = M.of_arrays [| [| 1.; 0.; 0.; 0. |]; [| 0.; 0.; 1.; 0. |] |] in
  let d = M.zeros 2 1 in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c ~d

let pendulum_rhs p ~u =
  let mc = p.m_cart and mp = p.m_pole and l = p.l_pole and g = p.gravity in
  let fr = p.friction in
  fun t x ->
    match x with
    | [| _pos; vel; theta; omega |] ->
        let force = u t in
        let sin_t = sin theta and cos_t = cos theta in
        (* cart-pole equations with θ measured from the upright
           position (θ = 0 is up) *)
        let total = mc +. mp in
        let tmp = (force +. (mp *. l *. omega *. omega *. sin_t) -. (fr *. vel)) /. total in
        let theta_acc =
          ((g *. sin_t) +. (cos_t *. -.tmp))
          /. (l *. ((4. /. 3.) -. (mp *. cos_t *. cos_t /. total)))
        in
        let pos_acc = tmp -. (mp *. l *. theta_acc *. cos_t /. total) in
        [| vel; pos_acc; omega; theta_acc |]
    | _ -> invalid_arg "Plants.pendulum_rhs: state must have dimension 4"

type quarter_car = {
  m_sprung : float;
  m_unsprung : float;
  k_spring : float;
  c_damper : float;
  k_tyre : float;
}

let default_quarter_car =
  { m_sprung = 290.; m_unsprung = 59.; k_spring = 16_800.; c_damper = 1_000.; k_tyre = 190_000. }

let quarter_car p =
  let ms = p.m_sprung and mu = p.m_unsprung in
  let ks = p.k_spring and cs = p.c_damper and kt = p.k_tyre in
  let a =
    M.of_arrays
      [|
        [| 0.; 1.; 0.; 0. |];
        [| -.ks /. ms; -.cs /. ms; ks /. ms; cs /. ms |];
        [| 0.; 0.; 0.; 1. |];
        [| ks /. mu; cs /. mu; -.(ks +. kt) /. mu; -.cs /. mu |];
      |]
  in
  let b =
    M.of_arrays
      [|
        [| 0.; 0. |];
        [| 1. /. ms; 0. |];
        [| 0.; 0. |];
        [| -1. /. mu; kt /. mu |];
      |]
  in
  (* outputs: suspension deflection (ride comfort proxy) and tyre
     deflection (road holding) *)
  let c = M.of_arrays [| [| 1.; 0.; -1.; 0. |]; [| 0.; 0.; 1.; 0. |] |] in
  let d = M.zeros 2 2 in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c ~d

let mass_spring_damper ~m ~k ~c =
  let a = M.of_arrays [| [| 0.; 1. |]; [| -.k /. m; -.c /. m |] |] in
  let b = M.of_arrays [| [| 0. |]; [| 1. /. m |] |] in
  let cm = M.of_arrays [| [| 1.; 0. |] |] in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c:cm ~d:(M.zeros 1 1)

let first_order ~tau ~gain =
  if tau <= 0. then invalid_arg "Plants.first_order: non-positive time constant";
  let a = M.of_arrays [| [| -1. /. tau |] |] in
  let b = M.of_arrays [| [| gain /. tau |] |] in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c:(M.identity 1) ~d:(M.zeros 1 1)

let double_integrator () =
  let a = M.of_arrays [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  let b = M.of_arrays [| [| 0. |]; [| 1. |] |] in
  let c = M.of_arrays [| [| 1.; 0. |] |] in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c ~d:(M.zeros 1 1)

type thermal = { c_core : float; c_env : float; k_coupling : float; k_loss : float }

let default_thermal = { c_core = 500.; c_env = 2_000.; k_coupling = 25.; k_loss = 10. }

let thermal p =
  let a =
    M.of_arrays
      [|
        [| -.p.k_coupling /. p.c_core; p.k_coupling /. p.c_core |];
        [| p.k_coupling /. p.c_env; -.(p.k_coupling +. p.k_loss) /. p.c_env |];
      |]
  in
  let b = M.of_arrays [| [| 1. /. p.c_core |]; [| 0. |] |] in
  let c = M.of_arrays [| [| 0.; 1. |] |] in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c ~d:(M.zeros 1 1)

type cruise = { mass : float; drag : float }

let default_cruise = { mass = 1_200.; drag = 60. }

let cruise p =
  let a = M.of_arrays [| [| -.p.drag /. p.mass |] |] in
  let b = M.of_arrays [| [| 1. /. p.mass; 1. /. p.mass |] |] in
  Lti.make ~domain:Lti.Continuous ~a ~b ~c:(M.identity 1) ~d:(M.zeros 1 2)
