module M = Numerics.Matrix

type domain = Continuous | Discrete of float

type t = { a : M.t; b : M.t; c : M.t; d : M.t; domain : domain }

let make ~domain ~a ~b ~c ~d =
  if not (M.is_square a) then invalid_arg "Lti.make: A not square";
  let n = M.rows a in
  if M.rows b <> n then invalid_arg "Lti.make: B rows <> state dim";
  if M.cols c <> n then invalid_arg "Lti.make: C cols <> state dim";
  if M.rows d <> M.rows c then invalid_arg "Lti.make: D rows <> output dim";
  if M.cols d <> M.cols b then invalid_arg "Lti.make: D cols <> input dim";
  (match domain with
  | Discrete ts when ts <= 0. -> invalid_arg "Lti.make: non-positive sampling period"
  | Discrete _ | Continuous -> ());
  { a; b; c; d; domain }

let state_dim sys = M.rows sys.a
let input_dim sys = M.cols sys.b
let output_dim sys = M.rows sys.c

let output sys x u =
  Numerics.Vec.add (M.mul_vec sys.c x) (M.mul_vec sys.d u)

let deriv sys x u = Numerics.Vec.add (M.mul_vec sys.a x) (M.mul_vec sys.b u)

let step_discrete sys x u =
  match sys.domain with
  | Discrete _ -> deriv sys x u
  | Continuous -> invalid_arg "Lti.step_discrete: continuous system"

let rhs sys ~u =
  match sys.domain with
  | Continuous -> fun t x -> deriv sys x (u t)
  | Discrete _ -> invalid_arg "Lti.rhs: discrete system"

let poles sys = Numerics.Linalg.eigenvalues sys.a

let is_stable sys =
  match sys.domain with
  | Continuous -> Numerics.Linalg.is_stable_continuous sys.a
  | Discrete _ -> Numerics.Linalg.is_stable_discrete sys.a

let controllability sys =
  let n = state_dim sys in
  let rec build acc power k =
    if k >= n then acc
    else
      let power = M.mul sys.a power in
      build (M.hcat acc power) power (k + 1)
  in
  build sys.b sys.b 1

let observability sys =
  let n = state_dim sys in
  let rec build acc power k =
    if k >= n then acc
    else
      let power = M.mul power sys.a in
      build (M.vcat acc power) power (k + 1)
  in
  build sys.c sys.c 1

let full_row_rank ?(eps = 1e-9) m =
  (* m has at least as many columns as rows here; test det(m·mᵀ) *)
  let gram = M.mul m (M.transpose m) in
  Float.abs (Numerics.Linalg.det gram) > eps

let is_controllable ?eps sys = full_row_rank ?eps (controllability sys)
let is_observable ?eps sys = full_row_rank ?eps (M.transpose (observability sys))

let same_domain g h =
  match (g.domain, h.domain) with
  | Continuous, Continuous -> true
  | Discrete t1, Discrete t2 -> Float.abs (t1 -. t2) < 1e-12
  | Continuous, Discrete _ | Discrete _, Continuous -> false

let series g h =
  if not (same_domain g h) then invalid_arg "Lti.series: domain mismatch";
  if input_dim h <> output_dim g then invalid_arg "Lti.series: dimension mismatch";
  let ng = state_dim g and nh = state_dim h in
  let a =
    M.vcat
      (M.hcat g.a (M.zeros ng nh))
      (M.hcat (M.mul h.b g.c) h.a)
  in
  let b = M.vcat g.b (M.mul h.b g.d) in
  let c = M.hcat (M.mul h.d g.c) h.c in
  let d = M.mul h.d g.d in
  make ~domain:g.domain ~a ~b ~c ~d

let feedback_gain sys k =
  if M.rows k <> input_dim sys || M.cols k <> state_dim sys then
    invalid_arg "Lti.feedback_gain: gain dimension mismatch";
  make ~domain:sys.domain
    ~a:(M.sub sys.a (M.mul sys.b k))
    ~b:sys.b
    ~c:(M.sub sys.c (M.mul sys.d k))
    ~d:sys.d

let pp ppf sys =
  let dom =
    match sys.domain with
    | Continuous -> "continuous"
    | Discrete ts -> Printf.sprintf "discrete (Ts=%g)" ts
  in
  Format.fprintf ppf "@[<v>%s system, n=%d m=%d p=%d@,A =@,%a@,B =@,%a@]" dom
    (state_dim sys) (input_dim sys) (output_dim sys) M.pp sys.a M.pp sys.b
