(** Steady-state Kalman filter (discrete time).

    For [x(k+1) = A·x + B·u + w], [y = C·x + v] with process noise
    covariance [Qn] and measurement noise covariance [Rn], computes the
    stationary predictor gain [L] by iterating the filter Riccati
    equation — the dual of {!Lqr.dlqr}. *)

type result = {
  l : Numerics.Matrix.t;  (** predictor gain ([n×p]) *)
  p : Numerics.Matrix.t;  (** stationary error covariance *)
  iterations : int;
}

val dkalman :
  ?max_iter:int ->
  ?tol:float ->
  a:Numerics.Matrix.t ->
  c:Numerics.Matrix.t ->
  qn:Numerics.Matrix.t ->
  rn:Numerics.Matrix.t ->
  unit ->
  result
(** Raises [Failure] on non-convergence, [Invalid_argument] on shape
    mismatch. *)

type observer
(** Running state estimator [x̂(k+1) = A·x̂ + B·u + L·(y − C·x̂)]. *)

val observer : Lti.t -> result -> observer
(** Builds an estimator for a discrete system (raises on continuous). *)

val estimate : observer -> float array
(** Current state estimate. *)

val update : observer -> u:float array -> y:float array -> float array
(** Advances the estimator one period; returns the new estimate. *)

val reset : observer -> float array -> unit
(** Forces the estimate. *)
