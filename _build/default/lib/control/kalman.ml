module M = Numerics.Matrix

type result = { l : M.t; p : M.t; iterations : int }

let dkalman ?(max_iter = 10_000) ?(tol = 1e-10) ~a ~c ~qn ~rn () =
  if not (M.is_square a) then invalid_arg "Kalman.dkalman: A not square";
  let n = M.rows a in
  if M.cols c <> n then invalid_arg "Kalman.dkalman: C cols mismatch";
  let p_out = M.rows c in
  if M.rows qn <> n || M.cols qn <> n then invalid_arg "Kalman.dkalman: Qn shape";
  if M.rows rn <> p_out || M.cols rn <> p_out then invalid_arg "Kalman.dkalman: Rn shape";
  let at = M.transpose a and ct = M.transpose c in
  let gain p =
    (* L = A·P·Cᵀ (C·P·Cᵀ + Rn)⁻¹ *)
    let pct = M.mul p ct in
    let innov = M.add (M.mul c pct) rn in
    M.transpose (Numerics.Linalg.solve_mat (M.transpose innov) (M.transpose (M.mul a pct)))
  in
  let rec iterate p i =
    if i > max_iter then failwith "Kalman.dkalman: Riccati iteration did not converge";
    let l = gain p in
    let p' = M.add qn (M.mul (M.sub a (M.mul l c)) (M.mul p at)) in
    if M.norm_inf (M.sub p' p) <= tol *. (1. +. M.norm_inf p') then
      { l = gain p'; p = p'; iterations = i }
    else iterate p' (i + 1)
  in
  iterate qn 1

type observer = { sys : Lti.t; l : M.t; mutable xhat : float array }

let observer (sys : Lti.t) (res : result) =
  (match sys.domain with
  | Lti.Discrete _ -> ()
  | Lti.Continuous -> invalid_arg "Kalman.observer: continuous system");
  { sys; l = res.l; xhat = Array.make (Lti.state_dim sys) 0. }

let estimate o = Array.copy o.xhat

let update o ~u ~y =
  let predicted_y = Lti.output o.sys o.xhat u in
  let innovation = Numerics.Vec.sub y predicted_y in
  let next =
    Numerics.Vec.add (Lti.step_discrete o.sys o.xhat u) (M.mul_vec o.l innovation)
  in
  o.xhat <- next;
  Array.copy next

let reset o x =
  if Array.length x <> Lti.state_dim o.sys then invalid_arg "Kalman.reset: dimension";
  o.xhat <- Array.copy x
