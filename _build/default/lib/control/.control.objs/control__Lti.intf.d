lib/control/lti.mli: Complex Format Numerics
