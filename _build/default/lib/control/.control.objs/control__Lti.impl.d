lib/control/lti.ml: Float Format Numerics Printf
