lib/control/place.ml: Array Lti Numerics
