lib/control/place.mli: Lti Numerics
