lib/control/metrics.ml: Array Float Stdlib
