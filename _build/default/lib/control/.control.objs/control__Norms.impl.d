lib/control/norms.ml: Complex Float Freq List Lti Numerics
