lib/control/kalman.ml: Array Lti Numerics
