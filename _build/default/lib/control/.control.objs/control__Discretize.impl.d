lib/control/discretize.ml: Lti Numerics
