lib/control/metrics.mli:
