lib/control/plants.mli: Lti Numerics
