lib/control/tf.mli: Complex Format Lti Numerics
