lib/control/discretize.mli: Lti
