lib/control/pid.mli: Tf
