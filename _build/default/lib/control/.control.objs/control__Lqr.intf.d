lib/control/lqr.mli: Lti Numerics
