lib/control/tf.ml: Array Float Format Lti Numerics
