lib/control/response.mli: Lti Metrics Numerics
