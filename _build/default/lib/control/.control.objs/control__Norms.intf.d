lib/control/norms.mli: Lti
