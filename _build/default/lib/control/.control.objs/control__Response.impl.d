lib/control/response.ml: Array Float Lti Metrics Numerics
