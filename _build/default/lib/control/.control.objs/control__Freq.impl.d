lib/control/freq.ml: Array Complex Float List Lti Numerics Option
