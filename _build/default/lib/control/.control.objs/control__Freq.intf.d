lib/control/freq.mli: Complex Lti Numerics
