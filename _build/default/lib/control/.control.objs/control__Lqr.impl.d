lib/control/lqr.ml: Array Lti Numerics
