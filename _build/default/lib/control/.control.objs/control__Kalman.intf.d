lib/control/kalman.mli: Lti Numerics
