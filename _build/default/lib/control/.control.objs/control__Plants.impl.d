lib/control/plants.ml: Lti Numerics
