(** Frequency-domain analysis of LTI systems: frequency response,
    Bode data and classical stability margins.

    The connection to the paper: an I/O latency [τ] consumes
    [ω_c·τ] radians of phase at the gain-crossover frequency, so the
    {e delay margin} [PM/ω_c] computed here predicts the latency at
    which a loop goes unstable — the quantity the latency-sweep
    co-simulation measures empirically.  Comparing both is a strong
    cross-validation of the simulator (see the [margin] experiment). *)

val response : Lti.t -> float -> Complex.t
(** [response sys w] is the SISO frequency response at angular
    frequency [w] (rad/s): [G(jω)] for continuous systems,
    [G(e^{jωTs})] for discrete ones.  Raises [Invalid_argument] on
    MIMO systems; raises [Numerics.Cmatrix.Singular] at poles on the
    evaluation contour. *)

val response_mimo : Lti.t -> float -> Numerics.Cmatrix.t
(** Full [p×m] response matrix at one frequency. *)

type bode_point = {
  omega : float;  (** rad/s *)
  magnitude_db : float;
  phase_deg : float;  (** unwrapped, continuous across points *)
}

val bode : ?n:int -> ?w_min:float -> ?w_max:float -> Lti.t -> bode_point list
(** Log-spaced Bode data with unwrapped phase.  Defaults: 200 points
    over [\[1e-2, 1e3\]] rad/s (capped below the Nyquist rate for
    discrete systems). *)

type margins = {
  gain_margin_db : float option;
      (** at the phase crossover (-180°); [None] when the phase never
          crosses -180° (infinite gain margin) *)
  phase_margin_deg : float option;
      (** at the gain crossover (0 dB); [None] when the gain never
          crosses 0 dB *)
  gain_crossover : float option;  (** ω_c (rad/s) *)
  phase_crossover : float option;  (** ω_180 (rad/s) *)
  delay_margin : float option;
      (** [PM/ω_c] in seconds — the pure I/O delay that destroys the
          phase margin *)
}

val margins : ?n:int -> ?w_min:float -> ?w_max:float -> Lti.t -> margins
(** Classical margins of the {e open-loop} transfer [sys], located by
    bisection between Bode grid points. *)

val dc_gain : Lti.t -> float
(** Response magnitude at ω → 0 ([G(0)] or [G(1)]); [infinity] for
    integrating systems. *)

val nyquist : ?n:int -> ?w_min:float -> ?w_max:float -> Lti.t -> (float * Complex.t) list
(** The Nyquist locus [(ω, L(jω))] on a log grid (same defaults as
    {!bode}). *)

val sensitivity_peak : ?n:int -> ?w_min:float -> ?w_max:float -> Lti.t -> float * float
(** [(Ms, ω_peak)] of the open loop: the peak of [|1/(1 + L(jω))|]
    over the grid.  [1/Ms] is the {e modulus margin} — the distance of
    the Nyquist curve to the critical point −1, a single number
    bounding both classical margins (GM ≥ Ms/(Ms−1),
    PM ≥ 2·asin(1/2Ms)). *)
