(** Linear-quadratic regulator synthesis by Riccati iteration.

    Discrete-time: minimises [Σ xᵀQx + uᵀRu] subject to
    [x(k+1) = A·x(k) + B·u(k)], giving [u = −K·x].  The steady-state
    solution is obtained by iterating the Riccati difference equation
    to a fixed point, which converges for stabilisable [(A,B)] and
    detectable [(A,√Q)]. *)

type result = {
  k : Numerics.Matrix.t;  (** state-feedback gain, [u = −K·x] *)
  p : Numerics.Matrix.t;  (** Riccati solution (cost-to-go matrix) *)
  iterations : int;  (** iterations until convergence *)
}

val dlqr :
  ?max_iter:int ->
  ?tol:float ->
  a:Numerics.Matrix.t ->
  b:Numerics.Matrix.t ->
  q:Numerics.Matrix.t ->
  r:Numerics.Matrix.t ->
  unit ->
  result
(** Discrete LQR.  [max_iter] defaults to 10_000, [tol] (on the
    ∞-norm of successive [P]) to [1e-10].  Raises [Failure] if the
    iteration does not converge and [Invalid_argument] on dimension
    mismatch. *)

val dlqr_sys : ?max_iter:int -> ?tol:float -> q:Numerics.Matrix.t -> r:Numerics.Matrix.t -> Lti.t -> result
(** {!dlqr} applied to a discrete {!Lti.t}.  Raises on a continuous
    system. *)

val closed_loop : Lti.t -> result -> Lti.t
(** [closed_loop sys res] is the autonomous closed loop
    [A − B·K] (see {!Lti.feedback_gain}). *)

val quadratic_cost :
  q:Numerics.Matrix.t ->
  r:Numerics.Matrix.t ->
  states:float array array ->
  inputs:float array array ->
  float
(** Empirical cost [Σ_k x_kᵀQx_k + u_kᵀRu_k] of a simulated
    trajectory; the standard comparison metric between ideal and
    implemented control runs. *)
