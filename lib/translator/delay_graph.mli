(** Construction of the {e graph of delays} (paper §3.2, Figs. 3–5):
    event-processing blocks added to a Scicos diagram that reproduce
    the temporal behaviour of a SynDEx schedule and deliver activation
    events at the implementation's real instants.

    The translation implements the paper's three constructions:
    - {e sequencing} (§3.2.1): each scheduled operation becomes an
      [Event Delay] block whose delay is the operation's duration; the
      completion event of one block activates the next;
    - {e conditioning} (§3.2.2): a run of operations conditioned on the
      same variable becomes an [Event Select] block — fed by the
      condition value through a regular input ("Condition Mapping") —
      routing the activation into one delay chain per branch;
    - {e synchronisation} (§3.2.3): every communication medium becomes
      its own synchronized sequence — per transfer, a
      [Synchronization] block joins the medium's availability (the
      previous transfer's completion) with the producer having posted
      its data, followed by an [Event Delay] of the transfer duration;
      the final hop's completion gates the consumer through another
      [Synchronization] block.  Medium contention therefore {e emerges}
      from the structure (exactly as in the generated executive)
      rather than being folded into precomputed gaps, including in
      jittered mode.

    Each operator's chain — and each medium's — is started by a
    [Synchronization] block joining the periodic activation clock with
    its own previous-iteration completion (primed by an initial
    event), so overruns postpone the next iteration instead of
    overlapping it. *)

type mode =
  | Static_wcet
      (** delays equal the scheduled WCET durations — every iteration
          reproduces the static temporal model exactly *)
  | Jittered of { law : Exec.Timing_law.t; bcet_frac : float; seed : int }
      (** computation delays are redrawn at every activation from the
          law over [\[bcet_frac·WCET, WCET\]]; communication delays
          keep their static value *)

type t = {
  clock : Dataflow.Graph.block_id;  (** the period clock (one event output) *)
  completions : (Aaa.Algorithm.op_id * (Dataflow.Graph.block_id * int)) list;
      (** for every operation, the event output firing at its
          completion instant — wire these to S/H blocks and to the
          controller (see {!Cosim}) *)
}

val build :
  ?mode:mode ->
  ?comm_jitter_frac:float ->
  ?condition_feed:(string -> Dataflow.Graph.block_id * int) ->
  ?rng:Numerics.Rng.t ->
  graph:Dataflow.Graph.t ->
  schedule:Aaa.Schedule.t ->
  unit ->
  t
(** Adds the graph of delays to [graph] and returns the taps.
    [rng] overrides the generator the jittered delay blocks draw from
    (by default a fresh one from the mode's seed): a caller keeping the
    handle can {!Numerics.Rng.reseed} it between engine resets and run
    many Monte-Carlo scenarios through {e one} compiled engine, each
    bit-for-bit identical to a freshly built graph with that seed
    (see [Serve.Batch]).
    In {!Jittered} mode, [comm_jitter_frac] (default [0.]) additionally
    redraws each transfer's duration uniformly over
    [\[(1−f)·planned, planned\]] — the same knob as
    {!Exec.Machine.config.comm_jitter_frac}.
    [condition_feed] must map every conditioning variable to a width-1
    data output carrying its current value (e.g. the controller's mode
    output); it is required as soon as the schedule contains
    conditioned operations.  Default mode: {!Static_wcet}.  Raises
    [Invalid_argument] on a missing condition feed. *)

val completion : t -> Aaa.Algorithm.op_id -> Dataflow.Graph.block_id * int
(** Tap lookup.  Raises [Not_found]. *)
