module G = Dataflow.Graph
module B = Dataflow.Block

let ideal_clock ~graph ~period ~blocks =
  let clock = G.add graph (Dataflow.Eventlib.clock ~name:"ideal_clock" ~period ()) in
  List.iter (fun b -> G.connect_event graph ~src:(clock, 0) ~dst:(b, 0)) blocks;
  clock

let attach_delay_graph ?mode ?comm_jitter_frac ?condition_feed ?rng ~graph ~schedule
    ~binding () =
  let dg =
    Delay_graph.build ?mode ?comm_jitter_frac ?condition_feed ?rng ~graph ~schedule ()
  in
  List.iter
    (fun (op, tap) ->
      let block = Scicos_to_syndex.block_of_op binding op in
      let blk = G.block graph block in
      if blk.B.event_inputs > 0 then G.connect_event graph ~src:tap ~dst:(block, 0))
    dg.Delay_graph.completions;
  dg

let attach_recovery_delay_graph ?mode ?comm_jitter_frac ?condition_feed ~graph ~schedule
    ?failover ~binding ~fail_time ~switch_time ~failed_operator () =
  let module Sched = Aaa.Schedule in
  let module Arch = Aaa.Architecture in
  (* operations hosted by the failed operator stop producing at the
     failure; everything else keeps the nominal cadence until the
     mode switch *)
  let dead_ops =
    match Arch.find_operator schedule.Sched.architecture failed_operator with
    | Some oid -> List.map (fun s -> s.Sched.cs_op) (Sched.on_operator schedule oid)
    | None -> []
  in
  let gate ~from_t ~until_t tap block =
    if until_t > from_t then begin
      let w = G.add graph (Dataflow.Eventlib.event_window ~from_t ~until_t ()) in
      G.connect_event graph ~src:tap ~dst:(w, 0);
      G.connect_event graph ~src:(w, 0) ~dst:(block, 0)
    end
  in
  let attach_gated ~from_t ~cutoff_of dg =
    List.iter
      (fun (op, tap) ->
        let block = Scicos_to_syndex.block_of_op binding op in
        let blk = G.block graph block in
        if blk.B.event_inputs > 0 then gate ~from_t ~until_t:(cutoff_of op) tap block)
      dg.Delay_graph.completions
  in
  let nominal =
    Delay_graph.build ?mode ?comm_jitter_frac ?condition_feed ~graph ~schedule ()
  in
  attach_gated ~from_t:0.
    ~cutoff_of:(fun op -> if List.mem op dead_ops then fail_time else switch_time)
    nominal;
  let failover_dg =
    Option.map
      (fun failover_schedule ->
        let dg =
          Delay_graph.build ?mode ?comm_jitter_frac ?condition_feed ~graph
            ~schedule:failover_schedule ()
        in
        attach_gated ~from_t:switch_time ~cutoff_of:(fun _ -> Float.infinity) dg;
        dg)
      failover
  in
  (nominal, failover_dg)

let measured_instants engine ~block =
  Array.of_list (Sim.Engine.activations engine ~block)

let measured_latencies engine ~block ~period =
  let instants = measured_instants engine ~block in
  Array.mapi (fun k t -> t -. (float_of_int k *. period)) instants
