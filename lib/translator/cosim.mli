(** Co-simulation wiring: drive a Scicos diagram either by the
    stroboscopic clock (the idealised design of paper Fig. 2) or by a
    graph of delays generated from a SynDEx schedule (paper Fig. 3).

    The control-law blocks themselves are {e never modified} — exactly
    the property the paper exploits: only the source of activation
    events changes. *)

val ideal_clock :
  graph:Dataflow.Graph.t ->
  period:float ->
  blocks:Dataflow.Graph.block_id list ->
  Dataflow.Graph.block_id
(** Adds a periodic activation clock and wires it to event input 0 of
    every given block (samplers, controller, holds) — the
    stroboscopic model: sampling and actuation at the same instants.
    Returns the clock block. *)

val attach_delay_graph :
  ?mode:Delay_graph.mode ->
  ?comm_jitter_frac:float ->
  ?condition_feed:(string -> Dataflow.Graph.block_id * int) ->
  ?rng:Numerics.Rng.t ->
  graph:Dataflow.Graph.t ->
  schedule:Aaa.Schedule.t ->
  binding:Scicos_to_syndex.binding ->
  unit ->
  Delay_graph.t
(** Builds the graph of delays for [schedule] inside [graph] and wires
    each operation's completion tap to event input 0 of its bound
    diagram block (blocks without event inputs, such as constant
    reference sources, are skipped).  The result's taps remain
    available for probing.  [rng] is forwarded to {!Delay_graph.build}
    so batch evaluators can reseed one compiled engine between runs. *)

val attach_recovery_delay_graph :
  ?mode:Delay_graph.mode ->
  ?comm_jitter_frac:float ->
  ?condition_feed:(string -> Dataflow.Graph.block_id * int) ->
  graph:Dataflow.Graph.t ->
  schedule:Aaa.Schedule.t ->
  ?failover:Aaa.Schedule.t ->
  binding:Scicos_to_syndex.binding ->
  fail_time:float ->
  switch_time:float ->
  failed_operator:string ->
  unit ->
  Delay_graph.t * Delay_graph.t option
(** Like {!attach_delay_graph}, but models a fail-stop of
    [failed_operator] at [fail_time] followed by an online mode switch
    to the [failover] schedule at [switch_time]: each completion tap
    reaches its block through an {!Dataflow.Eventlib.event_window}
    gate.  Nominal taps of operations hosted by the failed operator
    are gated to [\[0, fail_time)], the others to [\[0, switch_time)];
    the failover schedule's taps (when given) are gated to
    [\[switch_time, ∞)].  Sample-holds whose activations stop simply
    freeze — the plant runs open-loop over the gap, which is exactly
    the transient the recovery comparison measures.  Pass
    [switch_time = infinity] and no [failover] for the no-recovery
    counterfactual of the same failure. *)

val measured_instants : Sim.Engine.t -> block:Dataflow.Graph.block_id -> float array
(** Activation instants of one block recorded during a simulation —
    the empirical [I_j(k)] / [O_j(k)] of paper eqs. (1)–(2). *)

val measured_latencies :
  Sim.Engine.t -> block:Dataflow.Graph.block_id -> period:float -> float array
(** Per-period latencies [instant − k·period].  The iteration index
    [k] of an activation is its rank in the activation sequence. *)
