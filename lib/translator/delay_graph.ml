module G = Dataflow.Graph
module E = Dataflow.Eventlib
module Alg = Aaa.Algorithm
module Sched = Aaa.Schedule

type mode =
  | Static_wcet
  | Jittered of { law : Exec.Timing_law.t; bcet_frac : float; seed : int }

type t = {
  clock : G.block_id;
  completions : (Alg.op_id * (G.block_id * int)) list;
}

let completion t op =
  match List.assoc_opt op t.completions with
  | Some tap -> tap
  | None -> raise Not_found

(* segments of one operator's slot sequence: unconditioned slots stand
   alone; maximal runs conditioned on the same variable are grouped *)
type segment =
  | Plain of Sched.comp_slot
  | Conditional of string * Sched.comp_slot list

let segments algorithm slots =
  let cond_var slot =
    Option.map (fun c -> c.Alg.var) (Alg.op_cond algorithm slot.Sched.cs_op)
  in
  let rec go acc current = function
    | [] -> List.rev (match current with None -> acc | Some (v, run) -> Conditional (v, List.rev run) :: acc)
    | slot :: rest -> (
        match (cond_var slot, current) with
        | None, None -> go (Plain slot :: acc) None rest
        | None, Some (v, run) -> go (Plain slot :: Conditional (v, List.rev run) :: acc) None rest
        | Some v, None -> go acc (Some (v, [ slot ])) rest
        | Some v, Some (v', run) when String.equal v v' -> go acc (Some (v, slot :: run)) rest
        | Some v, Some (v', run) ->
            go (Conditional (v', List.rev run) :: acc) (Some (v, [ slot ])) rest)
  in
  go [] None slots

let slot_key (c : Sched.comm_slot) =
  ( (fst c.Sched.cm_src :> int),
    snd c.Sched.cm_src,
    (fst c.Sched.cm_dst :> int),
    snd c.Sched.cm_dst,
    c.Sched.cm_hop )

let build ?(mode = Static_wcet) ?(comm_jitter_frac = 0.) ?condition_feed ?rng ~graph
    ~schedule () =
  let algorithm = schedule.Sched.algorithm in
  let period = Alg.period algorithm in
  let rng =
    match (rng, mode) with
    | Some rng, _ -> rng
    | None, Static_wcet -> Numerics.Rng.create 0
    | None, Jittered { seed; _ } -> Numerics.Rng.create seed
  in
  let delay_block ~name wcet =
    match mode with
    | Static_wcet -> E.event_delay ~name ~delay:wcet ()
    | Jittered { law; bcet_frac; _ } ->
        let bcet = bcet_frac *. wcet in
        E.event_delay_fn ~name (fun () -> Exec.Timing_law.sample law rng ~bcet ~wcet)
  in
  let clock = G.add graph (E.clock ~name:"dg_clock" ~period ()) in
  let completions = ref [] in
  (* every-iteration "posted" taps per operation: the event sources
     that fire once per period regardless of conditioning — for a
     plain operation its own completion, for a conditioned one the
     merge of its conditional section's branch ends *)
  let post_taps : (int, (G.block_id * int) list) Hashtbl.t = Hashtbl.create 32 in
  (* transfers whose last hop gates a consumer element:
     (comm slot, consumer-side sync block, sync input) *)
  let pending = ref [] in
  (* the last hop of each route gates its consumer *)
  let gating_transfers op =
    let home = Sched.operator_of schedule op in
    List.filter
      (fun c ->
        fst c.Sched.cm_dst = op
        && Alg.op_kind algorithm (fst c.Sched.cm_src) <> Alg.Memory
        && c.Sched.cm_to = home)
      schedule.Sched.comm
  in
  (* one chained element per slot: an optional synchronisation gate
     (when the operation consumes remote data) followed by its delay
     block; [tails] are the event outputs activating the element *)
  let element tails slot =
    let op = slot.Sched.cs_op in
    let op_name = Alg.op_name algorithm op in
    let gated_tails =
      match gating_transfers op with
      | [] -> tails
      | transfers ->
          let sync =
            G.add graph
              (E.synchronization
                 ~name:(Printf.sprintf "dg_sync_%s" op_name)
                 ~inputs:(1 + List.length transfers)
                 ())
          in
          List.iter (fun tap -> G.connect_event graph ~src:tap ~dst:(sync, 0)) tails;
          List.iteri (fun i c -> pending := (c, sync, i + 1) :: !pending) transfers;
          [ (sync, 0) ]
    in
    let delay =
      G.add graph (delay_block ~name:(Printf.sprintf "dg_delay_%s" op_name) slot.Sched.cs_duration)
    in
    List.iter (fun tap -> G.connect_event graph ~src:tap ~dst:(delay, 0)) gated_tails;
    completions := (op, (delay, 0)) :: !completions;
    [ (delay, 0) ]
  in
  (* ------------------------------------------------ operator chains *)
  List.iter
    (fun operator ->
      let slots = Sched.on_operator schedule operator in
      if slots <> [] then begin
        let operator_name =
          Aaa.Architecture.operator_name schedule.Sched.architecture operator
        in
        let sync_start =
          G.add graph
            (E.synchronization ~name:(Printf.sprintf "dg_start_%s" operator_name) ~inputs:2 ())
        in
        G.connect_event graph ~src:(clock, 0) ~dst:(sync_start, 0);
        let prime =
          G.add graph (E.initial_event ~name:(Printf.sprintf "dg_prime_%s" operator_name) ())
        in
        G.connect_event graph ~src:(prime, 0) ~dst:(sync_start, 1);
        let tails = ref [ (sync_start, 0) ] in
        List.iter
          (fun segment ->
            match segment with
            | Plain slot ->
                tails := element !tails slot;
                Hashtbl.replace post_taps ((slot.Sched.cs_op :> int)) !tails
            | Conditional (var, run) ->
                let feed =
                  match condition_feed with
                  | Some f -> f var
                  | None ->
                      invalid_arg
                        (Printf.sprintf
                           "Delay_graph.build: conditioning variable %S needs a condition feed"
                           var)
                in
                (* branches in order of first appearance *)
                let values =
                  List.fold_left
                    (fun acc slot ->
                      match Alg.op_cond algorithm slot.Sched.cs_op with
                      | Some { Alg.value; _ } when not (List.mem value acc) -> acc @ [ value ]
                      | Some _ | None -> acc)
                    [] run
                in
                let channel_of v =
                  (* unknown runtime values fall back to the first
                     branch so the chain never stalls *)
                  let rec find i = function
                    | [] -> 0
                    | x :: rest -> if x = v then i else find (i + 1) rest
                  in
                  find 0 values
                in
                let select =
                  G.add graph
                    (E.event_select
                       ~name:(Printf.sprintf "dg_select_%s_%s" operator_name var)
                       ~channels:(List.length values)
                       ~mapping:(fun x -> channel_of (int_of_float (Float.round x)))
                       ())
                in
                G.connect_data graph ~src:feed ~dst:(select, 0);
                List.iter (fun tap -> G.connect_event graph ~src:tap ~dst:(select, 0)) !tails;
                let branch_tails =
                  List.mapi
                    (fun channel value ->
                      let branch_slots =
                        List.filter
                          (fun slot ->
                            match Alg.op_cond algorithm slot.Sched.cs_op with
                            | Some { Alg.value = v; _ } -> v = value
                            | None -> false)
                          run
                      in
                      List.fold_left element [ (select, channel) ] branch_slots)
                    values
                in
                let section_tails = List.concat branch_tails in
                (* every operation of the section posts at the merge
                   point, which fires whichever branch was taken *)
                List.iter
                  (fun slot ->
                    Hashtbl.replace post_taps ((slot.Sched.cs_op :> int)) section_tails)
                  run;
                tails := section_tails)
          (segments algorithm slots);
        (* loop back: the operator's next iteration waits for this one *)
        List.iter (fun tap -> G.connect_event graph ~src:tap ~dst:(sync_start, 1)) !tails
      end)
    (Aaa.Architecture.operators schedule.Sched.architecture);
  (* ------------------------------------------------- medium chains *)
  (* Each medium is its own synchronized sequence (the paper: the
     processors' computation sequences are "synchronized by
     communication sequences on the communication media"): per
     transfer, a gate joining the medium's availability with the
     data being posted, then the transfer's delay.  The delay's
     completion is the hop's arrival tap. *)
  let arrival_taps : (int * int * int * int * int, G.block_id * int) Hashtbl.t =
    Hashtbl.create 32
  in
  let gates : (Sched.comm_slot * G.block_id) list ref = ref [] in
  List.iter
    (fun medium ->
      let transfers = Sched.on_medium schedule medium in
      if transfers <> [] then begin
        let medium_name =
          Aaa.Architecture.medium_name schedule.Sched.architecture medium
        in
        let sync_start =
          G.add graph
            (E.synchronization ~name:(Printf.sprintf "dg_medium_%s" medium_name) ~inputs:2 ())
        in
        G.connect_event graph ~src:(clock, 0) ~dst:(sync_start, 0);
        let prime =
          G.add graph
            (E.initial_event ~name:(Printf.sprintf "dg_medium_prime_%s" medium_name) ())
        in
        G.connect_event graph ~src:(prime, 0) ~dst:(sync_start, 1);
        let tail = ref (sync_start, 0) in
        List.iter
          (fun c ->
            let label =
              Printf.sprintf "%s_h%d"
                (Alg.op_name algorithm (fst c.Sched.cm_src))
                c.Sched.cm_hop
            in
            let gate =
              G.add graph
                (E.synchronization ~name:(Printf.sprintf "dg_xfer_%s_%s" medium_name label)
                   ~inputs:2 ())
            in
            G.connect_event graph ~src:!tail ~dst:(gate, 0);
            gates := (c, gate) :: !gates;
            let transfer_block =
              let name = Printf.sprintf "dg_comm_%s_%s" medium_name label in
              let planned = c.Sched.cm_duration in
              match mode with
              | Jittered _ when comm_jitter_frac > 0. && planned > 0. ->
                  let f = Float.min 1. comm_jitter_frac in
                  E.event_delay_fn ~name (fun () ->
                      Numerics.Rng.uniform rng ((1. -. f) *. planned) planned)
              | Jittered _ | Static_wcet -> E.event_delay ~name ~delay:planned ()
            in
            let transfer = G.add graph transfer_block in
            G.connect_event graph ~src:(gate, 0) ~dst:(transfer, 0);
            Hashtbl.replace arrival_taps (slot_key c) (transfer, 0);
            tail := (transfer, 0))
          transfers;
        G.connect_event graph ~src:!tail ~dst:(sync_start, 1)
      end)
    (Aaa.Architecture.media schedule.Sched.architecture);
  (* wire each transfer's "data posted" input: the producer's
     every-iteration tap for hop 0, the previous hop's arrival
     otherwise *)
  List.iter
    (fun ((c : Sched.comm_slot), gate) ->
      if c.Sched.cm_hop = 0 then begin
        let src_taps =
          match Hashtbl.find_opt post_taps ((fst c.Sched.cm_src :> int)) with
          | Some taps -> taps
          | None ->
              invalid_arg "Delay_graph.build: transfer from an unscheduled operation"
        in
        List.iter (fun tap -> G.connect_event graph ~src:tap ~dst:(gate, 1)) src_taps
      end
      else begin
        let a, b, cc, d, hop = slot_key c in
        match Hashtbl.find_opt arrival_taps (a, b, cc, d, hop - 1) with
        | Some tap -> G.connect_event graph ~src:tap ~dst:(gate, 1)
        | None -> invalid_arg "Delay_graph.build: broken transfer route"
      end)
    !gates;
  (* consumer gating: the last hop's arrival activates the waiting
     synchronisation input *)
  List.iter
    (fun (c, sync, input) ->
      match Hashtbl.find_opt arrival_taps (slot_key c) with
      | Some tap -> G.connect_event graph ~src:tap ~dst:(sync, input)
      | None -> invalid_arg "Delay_graph.build: missing transfer chain for a consumer")
    !pending;
  { clock; completions = List.rev !completions }
