module Arch = Aaa.Architecture
module Sched = Aaa.Schedule

type exclusion = { operators : string list; media : string list }

let exclusion_of scenario =
  { operators = Scenario.failed_operators scenario; media = [] }

let restrict arch { operators = excl_ops; media = excl_media } =
  List.iter
    (fun name ->
      if Arch.find_operator arch name = None then
        invalid_arg (Printf.sprintf "Degrade.restrict: unknown operator %S" name))
    excl_ops;
  List.iter
    (fun name ->
      if Arch.find_medium arch name = None then
        invalid_arg (Printf.sprintf "Degrade.restrict: unknown medium %S" name))
    excl_media;
  let survives_op o = not (List.mem (Arch.operator_name arch o) excl_ops) in
  let degraded = Arch.create ~name:(Arch.name arch ^ "_degraded") in
  let surviving = List.filter survives_op (Arch.operators arch) in
  if surviving = [] then invalid_arg "Degrade.restrict: no surviving operator";
  let id_map =
    List.map
      (fun o ->
        (o, Arch.add_operator degraded ~name:(Arch.operator_name arch o)))
      surviving
  in
  List.iter
    (fun m ->
      let name = Arch.medium_name arch m in
      if not (List.mem name excl_media) then begin
        let endpoints =
          List.filter_map
            (fun o -> List.assoc_opt o id_map)
            (Arch.medium_endpoints arch m)
        in
        let kind = Arch.medium_kind arch m in
        let enough =
          match kind with
          | Arch.Bus -> List.length endpoints >= 2
          | Arch.Point_to_point ->
              List.length endpoints = List.length (Arch.medium_endpoints arch m)
        in
        if enough then begin
          (* recover the medium's cost model from its duration function *)
          let latency = Arch.comm_duration arch m ~words:0 in
          let time_per_word = Arch.comm_duration arch m ~words:1 -. latency in
          ignore (Arch.add_medium degraded ~name ~kind ~latency ~time_per_word endpoints)
        end
      end)
    (Arch.media arch);
  Arch.validate degraded;
  degraded

let replica_pins ~replicas ~nominal ~degraded { operators = excl_ops; _ } =
  let alg = nominal.Sched.algorithm in
  List.filter_map
    (fun (op_name, backup) ->
      match Aaa.Algorithm.find_op alg op_name with
      | None ->
          invalid_arg (Printf.sprintf "Degrade.replan: unknown replica operation %S" op_name)
      | Some op ->
          let nominal_operator =
            Arch.operator_name nominal.Sched.architecture (Sched.operator_of nominal op)
          in
          if
            List.mem nominal_operator excl_ops
            && Arch.find_operator degraded backup <> None
          then Some (op_name, backup)
          else None)
    replicas

let replan ?strategy ?(replicas = []) ~algorithm ~architecture ~durations ~nominal
    ~exclusion () =
  let degraded = restrict architecture exclusion in
  let pins = replica_pins ~replicas ~nominal ~degraded exclusion in
  Aaa.Adequation.run ?strategy ~pins ~algorithm ~architecture:degraded ~durations ()

type failover = {
  failed_operator : string;
  schedule : Sched.t option;
  fits : bool;
  makespan : float;
}

let failover_table ?strategy ?replicas ~algorithm ~architecture ~durations ~nominal () =
  List.map
    (fun operator_id ->
      let failed_operator = Arch.operator_name architecture operator_id in
      let exclusion = { operators = [ failed_operator ]; media = [] } in
      match
        replan ?strategy ?replicas ~algorithm ~architecture ~durations ~nominal
          ~exclusion ()
      with
      | sched ->
          {
            failed_operator;
            schedule = Some sched;
            fits = Sched.fits_period sched;
            makespan = sched.Sched.makespan;
          }
      | exception (Aaa.Adequation.Infeasible _ | Invalid_argument _) ->
          { failed_operator; schedule = None; fits = false; makespan = Float.nan })
    (Arch.operators architecture)

let failover_executives table =
  List.filter_map
    (fun f ->
      match f.schedule with
      | Some sched -> Some (f.failed_operator, Aaa.Codegen.generate sched)
      | None -> None)
    table

type standby_plan = {
  protects : string;
  executive : Aaa.Codegen.t;
  replicated : string list;
}

let standby_plans ~nominal table =
  let alg = nominal.Sched.algorithm in
  List.filter_map
    (fun f ->
      match f.schedule with
      | None -> None
      | Some sched ->
          let replicated =
            List.filter_map
              (fun op ->
                let operator =
                  Arch.operator_name nominal.Sched.architecture
                    (Sched.operator_of nominal op)
                in
                if operator = f.failed_operator then Some (Aaa.Algorithm.op_name alg op)
                else None)
              (Aaa.Algorithm.ops alg)
          in
          Some
            {
              protects = f.failed_operator;
              executive = Aaa.Codegen.generate sched;
              replicated;
            })
    table

let standby_plan_for table ~nominal ~operator =
  List.find_opt (fun p -> p.protects = operator) (standby_plans ~nominal table)

let pp_standby_plan ppf p =
  Format.fprintf ppf "standby for %s: re-hosts %s" p.protects
    (match p.replicated with [] -> "nothing" | ops -> String.concat ", " ops)

let pp_failover ppf f =
  match f.schedule with
  | Some _ ->
      Format.fprintf ppf "without %s: makespan %.6g (%s)" f.failed_operator f.makespan
        (if f.fits then "fits the period" else "OVERRUNS the period")
  | None -> Format.fprintf ppf "without %s: infeasible" f.failed_operator
