(** Rendering of robustness evaluations for humans.

    The markdown section slots into {!Lifecycle.Report.markdown} via
    its [?robustness] argument, extending a lifecycle report with the
    fault-tolerance verdict next to the cost comparison it already
    carries. *)

val markdown_section : Robustness.summary -> string
(** A ["## Robustness"] markdown section: one table row per scenario
    (cost, degradation vs nominal, failover feasibility, lost
    transfers, stale reads, overruns) plus the aggregate verdict.
    When the evaluation carried a recovery policy, an ["### Online
    recovery"] subsection follows with the recovery-vs-no-recovery
    comparison: detection latency, switch instant, retransmission
    counts, stale reads and post-switch control cost for each
    scenario. *)

val failover_markdown : Degrade.failover list -> string
(** A markdown table of a single-failure failover analysis: one row
    per failed operator with the degraded makespan and whether the
    failover schedule still fits the period. *)
