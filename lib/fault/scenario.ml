type event =
  | Processor_failstop of { operator : string; at : float }
  | Medium_outage of { medium : string; from_t : float; until_t : float }
  | Message_loss of { medium : string option; prob : float }
  | Overrun_burst of {
      start_prob : float;
      stop_prob : float;
      overrun_prob : float;
      factor : float;
    }
  | Bus_corruption of { medium : string option; prob : float }
  | Babbling_idiot of {
      medium : string;
      ident : int;
      words : int;
      period : float;
      from_t : float;
      until_t : float;
    }
  | Bus_off of { operator : string; at : float }

type t = { name : string; seed : int; events : event list }

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Scenario.make: %s probability %g outside [0, 1]" what p)

let validate_event = function
  | Processor_failstop { operator; at } ->
      if at < 0. then
        invalid_arg
          (Printf.sprintf "Scenario.make: fail-stop of %S at negative time %g" operator at)
  | Medium_outage { medium; from_t; until_t } ->
      if from_t < 0. || until_t <= from_t then
        invalid_arg
          (Printf.sprintf "Scenario.make: outage of %S over bad window [%g, %g)" medium
             from_t until_t)
  | Message_loss { prob; _ } -> check_prob "message-loss" prob
  | Overrun_burst { start_prob; stop_prob; overrun_prob; factor } ->
      check_prob "burst-start" start_prob;
      check_prob "burst-stop" stop_prob;
      check_prob "burst overrun" overrun_prob;
      if factor <= 1. then
        invalid_arg (Printf.sprintf "Scenario.make: overrun factor %g must exceed 1" factor)
  | Bus_corruption { prob; _ } -> check_prob "bus-corruption" prob
  | Babbling_idiot { medium; ident; words; period; from_t; until_t } ->
      if ident < 0 then
        invalid_arg
          (Printf.sprintf "Scenario.make: babbling identifier %d on %S is negative" ident
             medium);
      if words < 0 then
        invalid_arg
          (Printf.sprintf "Scenario.make: babbling payload of %d words is negative" words);
      if period <= 0. then
        invalid_arg
          (Printf.sprintf "Scenario.make: babbling period %g on %S is not positive" period
             medium);
      if from_t < 0. || until_t <= from_t then
        invalid_arg
          (Printf.sprintf "Scenario.make: babbling window [%g, %g) on %S is empty" from_t
             until_t medium)
  | Bus_off { operator; at } ->
      if at < 0. then
        invalid_arg
          (Printf.sprintf "Scenario.make: bus-off of %S at negative time %g" operator at)

let make ~name ~seed events =
  List.iter validate_event events;
  { name; seed; events }

let nominal ~seed = make ~name:"nominal" ~seed []

(* ------------------------------------------------------------------ *)
(* deterministic sampling: every decision is a SplitMix64-style hash of
   the seed and the decision's integer coordinates, mapped to [0, 1) *)

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let feed acc i = mix Int64.(add (mul acc 0x9e3779b97f4a7c15L) (of_int (i + 1)))

let u01 ~seed coords =
  let h = List.fold_left feed (mix (Int64.of_int seed)) coords in
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)

let string_coord s =
  let acc = ref (Int64.of_int (String.length s)) in
  String.iter (fun c -> acc := feed !acc (Char.code c)) s;
  Int64.to_int (Int64.shift_right_logical !acc 32)

(* per-event coordinate tags keep independent decision streams apart *)
let tag_loss = 1
let tag_burst_state = 2
let tag_burst_overrun = 3
let tag_retry = 4
let tag_bus_corrupt = 5

let slot_coords (c : Aaa.Schedule.comm_slot) =
  [
    (fst c.Aaa.Schedule.cm_src :> int);
    snd c.Aaa.Schedule.cm_src;
    (fst c.Aaa.Schedule.cm_dst :> int);
    snd c.Aaa.Schedule.cm_dst;
    c.Aaa.Schedule.cm_hop;
  ]

(* burst membership is a Markov chain over iterations: state k needs
   state k−1, so memoise from iteration 0 upward (still a pure function
   of the seed — the call order cannot change it) *)
let burst_memo ~seed ~index ~start_prob ~stop_prob =
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec state k =
    match Hashtbl.find_opt memo k with
    | Some b -> b
    | None ->
        let draw = u01 ~seed [ tag_burst_state; index; k ] in
        let b =
          if k = 0 then draw < start_prob
          else if state (k - 1) then draw >= stop_prob
          else draw < start_prob
        in
        Hashtbl.replace memo k b;
        b
  in
  state

let failed_operators t =
  List.filter_map
    (function Processor_failstop { operator; _ } -> Some operator | _ -> None)
    t.events

let failed_media t =
  let media =
    List.filter_map
      (function Medium_outage { medium; _ } -> Some medium | _ -> None)
      t.events
  in
  List.fold_left (fun acc m -> if List.mem m acc then acc else acc @ [ m ]) [] media

let injection t ~architecture =
  let module Arch = Aaa.Architecture in
  let check_operator name =
    if Arch.find_operator architecture name = None then
      invalid_arg (Printf.sprintf "Scenario.injection: unknown operator %S" name)
  in
  let check_medium name =
    if Arch.find_medium architecture name = None then
      invalid_arg (Printf.sprintf "Scenario.injection: unknown medium %S" name)
  in
  List.iter
    (function
      | Processor_failstop { operator; _ } -> check_operator operator
      | Medium_outage { medium; _ } -> check_medium medium
      | Message_loss { medium = Some m; _ } -> check_medium m
      | Bus_corruption { medium = Some m; _ } -> check_medium m
      | Babbling_idiot { medium; _ } -> check_medium medium
      | Bus_off { operator; _ } -> check_operator operator
      | Message_loss { medium = None; _ }
      | Bus_corruption { medium = None; _ }
      | Overrun_burst _ -> ())
    t.events;
  let is_bus_event = function
    | Bus_corruption _ | Babbling_idiot _ | Bus_off _ -> true
    | _ -> false
  in
  (* bus-level events act through [apply_bus] on the attached bus
     models, not through the structural injection: a scenario with only
     bus events compiles to [Injection.none] so the executives keep
     their fast no-fault path *)
  if List.for_all is_bus_event t.events then Exec.Injection.none
  else begin
    let fail_times =
      List.filter_map
        (function Processor_failstop { operator; at } -> Some (operator, at) | _ -> None)
        t.events
    in
    let outages =
      List.filter_map
        (function
          | Medium_outage { medium; from_t; until_t } -> Some (medium, from_t, until_t)
          | _ -> None)
        t.events
    in
    let losses =
      List.mapi (fun i e -> (i, e)) t.events
      |> List.filter_map (function
           | i, Message_loss { medium; prob } -> Some (i, medium, prob)
           | _ -> None)
    in
    let bursts =
      List.mapi (fun i e -> (i, e)) t.events
      |> List.filter_map (function
           | i, Overrun_burst { start_prob; stop_prob; overrun_prob; factor } ->
               Some
                 ( i,
                   burst_memo ~seed:t.seed ~index:i ~start_prob ~stop_prob,
                   overrun_prob,
                   factor )
           | _ -> None)
    in
    let operator_failed ~operator ~time =
      List.exists (fun (o, at) -> o = operator && time >= at -. 1e-12) fail_times
    in
    let medium_down ~medium ~time =
      List.exists
        (fun (m, from_t, until_t) -> m = medium && time >= from_t -. 1e-12 && time < until_t)
        outages
    in
    let transfer_lost ~iteration ~slot =
      let medium_name =
        Arch.medium_name architecture slot.Aaa.Schedule.cm_medium
      in
      List.exists
        (fun (index, medium, prob) ->
          (match medium with None -> true | Some m -> m = medium_name)
          && u01 ~seed:t.seed (tag_loss :: index :: iteration :: slot_coords slot) < prob)
        losses
    in
    let retry_lost ~attempt ~iteration ~slot =
      (* each retry attempt draws a fresh coordinate so the retry
         stream is independent of the original loss decision *)
      let medium_name = Arch.medium_name architecture slot.Aaa.Schedule.cm_medium in
      List.exists
        (fun (index, medium, prob) ->
          (match medium with None -> true | Some m -> m = medium_name)
          && u01 ~seed:t.seed
               (tag_retry :: index :: attempt :: iteration :: slot_coords slot)
             < prob)
        losses
    in
    let overrun ~iteration ~op =
      List.fold_left
        (fun acc (index, in_burst, overrun_prob, factor) ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                in_burst iteration
                && u01 ~seed:t.seed [ tag_burst_overrun; index; iteration; string_coord op ]
                   < overrun_prob
              then Some factor
              else None)
        None bursts
    in
    { Exec.Injection.operator_failed; medium_down; transfer_lost; retry_lost; overrun }
  end

(* synthetic node ids for babbling-idiot streams: far above any
   operator id, so a Bus_off on an operator never silences them *)
let babbling_node index = 1000 + index

let apply_bus t ~architecture models =
  let module Arch = Aaa.Architecture in
  List.iter
    (function
      | Bus_corruption { medium = Some m; _ } | Babbling_idiot { medium = m; _ } ->
          if Arch.find_medium architecture m = None then
            invalid_arg (Printf.sprintf "Scenario.apply_bus: unknown medium %S" m)
      | Bus_off { operator; _ } ->
          if Arch.find_operator architecture operator = None then
            invalid_arg (Printf.sprintf "Scenario.apply_bus: unknown operator %S" operator)
      | _ -> ())
    t.events;
  let indexed = List.mapi (fun i e -> (i, e)) t.events in
  let offs =
    List.filter_map
      (function
        | _, Bus_off { operator; at } ->
            Option.map
              (fun (op : Arch.operator_id) -> ((op :> int), at))
              (Arch.find_operator architecture operator)
        | _ -> None)
      indexed
  in
  List.map
    (fun (bus_name, (cfg : Media.Bus.config)) ->
      let corrupts =
        List.filter_map
          (function
            | i, Bus_corruption { medium; prob }
              when medium = None || medium = Some bus_name ->
                Some (i, prob)
            | _ -> None)
          indexed
      in
      let babbles =
        List.filter_map
          (function
            | i, Babbling_idiot { medium; ident; words; period; from_t; until_t }
              when medium = bus_name ->
                Some
                  (Media.Load.periodic ~node:(babbling_node i) ~ident ~words ~period
                     ~from_t ~until_t ())
            | _ -> None)
          indexed
      in
      if corrupts = [] && babbles = [] && offs = [] then (bus_name, cfg)
      else begin
        let base = cfg.Media.Bus.b_faults in
        let faults =
          {
            Media.Bus.f_corrupted =
              (fun ~ident ~node ~attempt ~seq ->
                base.Media.Bus.f_corrupted ~ident ~node ~attempt ~seq
                || List.exists
                     (fun (index, prob) ->
                       (* decisions hash the *scenario* seed, so the
                          same scenario corrupts the same frames on any
                          bus configuration *)
                       u01 ~seed:t.seed
                         [ tag_bus_corrupt; index; ident; node; attempt; seq ]
                       < prob)
                     corrupts);
            f_node_off =
              (fun ~node ~time ->
                base.Media.Bus.f_node_off ~node ~time
                || List.exists
                     (fun (op, at) -> op = node && time >= at -. 1e-12)
                     offs);
          }
        in
        (bus_name, { cfg with Media.Bus.b_faults = faults; b_load = cfg.Media.Bus.b_load @ babbles })
      end)
    models

let single_processor_failures ?(at = 0.) ~seed architecture =
  let module Arch = Aaa.Architecture in
  List.mapi
    (fun i operator_id ->
      let operator = Arch.operator_name architecture operator_id in
      make
        ~name:(Printf.sprintf "failstop_%s" operator)
        ~seed:(seed + i)
        [ Processor_failstop { operator; at } ])
    (Arch.operators architecture)

let pp_event ppf = function
  | Processor_failstop { operator; at } ->
      Format.fprintf ppf "fail-stop %s at %g s" operator at
  | Medium_outage { medium; from_t; until_t } ->
      Format.fprintf ppf "outage of %s over [%g, %g) s" medium from_t until_t
  | Message_loss { medium; prob } ->
      Format.fprintf ppf "message loss p=%g on %s" prob
        (match medium with Some m -> m | None -> "all media")
  | Overrun_burst { start_prob; stop_prob; overrun_prob; factor } ->
      Format.fprintf ppf "overrun bursts (start %g, stop %g, p %g, x%g)" start_prob
        stop_prob overrun_prob factor
  | Bus_corruption { medium; prob } ->
      Format.fprintf ppf "frame corruption p=%g on %s" prob
        (match medium with Some m -> m | None -> "all buses")
  | Babbling_idiot { medium; ident; words; period; from_t; until_t } ->
      Format.fprintf ppf "babbling idiot on %s (id %d, %d words every %g s, [%g, %g) s)"
        medium ident words period from_t until_t
  | Bus_off { operator; at } ->
      Format.fprintf ppf "bus-off of %s at %g s" operator at

let pp ppf t =
  Format.fprintf ppf "@[<v>scenario %S (seed %d):" t.name t.seed;
  if t.events = [] then Format.fprintf ppf " fault-free";
  List.iter (fun e -> Format.fprintf ppf "@,  %a" pp_event e) t.events;
  Format.fprintf ppf "@]"
