module Sched = Aaa.Schedule
module Meth = Lifecycle.Methodology
module Design = Lifecycle.Design

type outcome = {
  scenario : Scenario.t;
  schedule : Sched.t option;
  replanned : bool;
  infeasible : bool;
  fits_period : bool;
  cost : float;
  degradation_pct : float;
  lost_transfers : int;
  stale_reads : int;
  overruns : int;
}

type summary = {
  design_name : string;
  ideal_cost : float;
  nominal_cost : float;
  outcomes : outcome list;
  worst_degradation_pct : float;
  mean_degradation_pct : float;
  all_feasible : bool;
  all_fit : bool;
}

let evaluate ?(iterations = 200) ?strategy ?(replicas = []) ?pool ~design ~architecture
    ~durations ~scenarios () =
  if scenarios = [] then invalid_arg "Robustness.evaluate: no scenarios";
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let nominal = Meth.implement ?strategy ~design ~architecture ~durations () in
  let ideal_cost = design.Design.cost (Meth.simulate_ideal design) in
  let nominal_cost = design.Design.cost (Meth.simulate_implemented design nominal) in
  let outcome scenario =
    let exclusion = Degrade.exclusion_of scenario in
    let replanned = exclusion.Degrade.operators <> [] in
    (* control-cost side: co-simulate through the graph of delays *)
    let schedule, infeasible, fits_period, cost =
      if replanned then
        match
          Degrade.replan ?strategy ~replicas ~algorithm:nominal.Meth.algorithm
            ~architecture ~durations ~nominal:nominal.Meth.schedule ~exclusion ()
        with
        | degraded ->
            let impl =
              {
                nominal with
                Meth.schedule = degraded;
                executive = Aaa.Codegen.generate degraded;
                static = Translator.Temporal_model.of_schedule degraded;
              }
            in
            ( Some degraded,
              false,
              Sched.fits_period degraded,
              design.Design.cost (Meth.simulate_implemented design impl) )
        | exception (Aaa.Adequation.Infeasible _ | Invalid_argument _) ->
            (None, true, false, Float.infinity)
      else begin
        let mode =
          Translator.Delay_graph.Jittered
            { law = Exec.Timing_law.Uniform; bcet_frac = 0.4; seed = scenario.Scenario.seed }
        in
        ( None,
          false,
          Sched.fits_period nominal.Meth.schedule,
          design.Design.cost (Meth.simulate_implemented ~mode design nominal) )
      end
    in
    (* executive side: the nominal deployment with the faults injected *)
    let injection = Scenario.injection scenario ~architecture in
    let config =
      {
        Exec.Machine.default_config with
        iterations;
        seed = scenario.Scenario.seed;
        durations = Some durations;
        injection;
      }
    in
    let config =
      match design.Design.condition_runtime with
      | Some condition -> { config with Exec.Machine.condition }
      | None -> config
    in
    let trace = Meth.execute ~config design nominal in
    {
      scenario;
      schedule;
      replanned;
      infeasible;
      fits_period;
      cost;
      degradation_pct = (cost -. nominal_cost) /. nominal_cost *. 100.;
      lost_transfers = trace.Exec.Machine.lost_transfers;
      stale_reads = trace.Exec.Machine.stale_reads;
      overruns = trace.Exec.Machine.overruns;
    }
  in
  (* one independent adequation + co-simulation + injected machine run
     per scenario: the engine's unit of parallelism; scenario order is
     preserved and every value matches the sequential evaluation *)
  let outcomes = Explore.Pool.map pool outcome scenarios in
  let feasible = List.filter (fun o -> not o.infeasible) outcomes in
  let degradations = List.map (fun o -> o.degradation_pct) feasible in
  {
    design_name = design.Design.name;
    ideal_cost;
    nominal_cost;
    outcomes;
    worst_degradation_pct =
      List.fold_left Float.max Float.neg_infinity (List.map (fun o -> o.degradation_pct) outcomes);
    mean_degradation_pct =
      (if degradations = [] then Float.nan
       else Numerics.Stats.mean (Array.of_list degradations));
    all_feasible = List.for_all (fun o -> not o.infeasible) outcomes;
    all_fit = List.for_all (fun o -> o.fits_period) outcomes;
  }

let pp ppf s =
  Format.fprintf ppf "@[<v>robustness of %S: ideal %.6g, nominal implemented %.6g@,"
    s.design_name s.ideal_cost s.nominal_cost;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %s: " o.scenario.Scenario.name;
      if o.infeasible then Format.fprintf ppf "INFEASIBLE"
      else
        Format.fprintf ppf "cost %.6g (%+.2f %%)%s, lost %d, stale %d, overruns %d"
          o.cost o.degradation_pct
          (if o.fits_period then "" else " [overruns period]")
          o.lost_transfers o.stale_reads o.overruns;
      Format.fprintf ppf "@,")
    s.outcomes;
  Format.fprintf ppf "  worst degradation %+.2f %%, mean %+.2f %%@]"
    s.worst_degradation_pct s.mean_degradation_pct
