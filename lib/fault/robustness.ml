module Sched = Aaa.Schedule
module Meth = Lifecycle.Methodology
module Design = Lifecycle.Design

type recovery_phases = {
  nominal_phase : float;
  transient_phase : float;
  degraded_phase : float;
  frozen_phase : float;
}

type standby_outcome = {
  takeover : (int * float) option;
  vote_primary : int;
  vote_standby : int;
  vote_held : int;
  divergences : int list;
  standby_events : Exec.Recovery.event list;
  decisions : Exec.Standby.decision list;
  standby_cost : float option;
  standby_post_cost : float option;
  switch_post_cost : float option;
  frozen_post_cost : float option;
}

type recovery_outcome = {
  retransmissions : int;
  recovered_transfers : int;
  stale_with : int;
  stale_without : int;
  events : Exec.Recovery.event list;
  detection : Exec.Recovery.confirmation option;
  switch_time : float option;
  post_switch_stale : int option;
  recovered_cost : float option;
  frozen_cost : float option;
  phases : recovery_phases option;
  standby : standby_outcome option;
}

type outcome = {
  scenario : Scenario.t;
  schedule : Sched.t option;
  replanned : bool;
  infeasible : bool;
  fits_period : bool;
  cost : float;
  degradation_pct : float;
  lost_transfers : int;
  stale_reads : int;
  overruns : int;
  recovery : recovery_outcome option;
}

type summary = {
  design_name : string;
  ideal_cost : float;
  nominal_cost : float;
  outcomes : outcome list;
  worst_degradation_pct : float;
  mean_degradation_pct : float;
  all_feasible : bool;
  all_fit : bool;
}

(* Methodology keeps its probe wiring private; the recovery co-sim
   rebuilds it the same way *)
let engine_with_probes (built : Design.built) =
  let engine = Sim.Engine.create built.Design.graph in
  List.iter
    (fun (name, (block, port)) -> Sim.Engine.add_probe engine ~name ~block ~port)
    built.Design.probes;
  engine

(* co-simulate the failure of [failed_operator] at [fail_time]: the
   nominal delay graph gated around the failure, plus — when a switch
   happened — the failover graph gated after it.  [switch_time =
   infinity] with no failover is the no-recovery counterfactual: the
   sample-holds freeze and the plant runs open-loop. *)
let recovery_engine ~design ~(nominal : Meth.implementation) ?failover ~fail_time
    ~switch_time ~failed_operator () =
  let built = design.Design.build () in
  let _graphs =
    Translator.Cosim.attach_recovery_delay_graph
      ?condition_feed:built.Design.condition_feed ~graph:built.Design.graph
      ~schedule:nominal.Meth.schedule ?failover ~binding:nominal.Meth.binding ~fail_time
      ~switch_time ~failed_operator ()
  in
  let engine = engine_with_probes built in
  Sim.Engine.run ~t_end:design.Design.horizon engine;
  engine

let evaluate ?(iterations = 200) ?strategy ?(replicas = []) ?pool ?recovery
    ?(standby = false) ?(bus_models = []) ~design ~architecture ~durations ~scenarios () =
  if scenarios = [] then invalid_arg "Robustness.evaluate: no scenarios";
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let nominal = Meth.implement ?strategy ~design ~architecture ~durations () in
  let ideal_cost = design.Design.cost (Meth.simulate_ideal design) in
  let nominal_cost = design.Design.cost (Meth.simulate_implemented design nominal) in
  let outcome scenario =
    let exclusion = Degrade.exclusion_of scenario in
    let replanned = exclusion.Degrade.operators <> [] in
    (* control-cost side: co-simulate through the graph of delays *)
    let schedule, infeasible, fits_period, cost =
      if replanned then
        match
          Degrade.replan ?strategy ~replicas ~algorithm:nominal.Meth.algorithm
            ~architecture ~durations ~nominal:nominal.Meth.schedule ~exclusion ()
        with
        | degraded ->
            let impl =
              {
                nominal with
                Meth.schedule = degraded;
                executive = Aaa.Codegen.generate degraded;
                static = Translator.Temporal_model.of_schedule degraded;
              }
            in
            ( Some degraded,
              false,
              Sched.fits_period degraded,
              design.Design.cost (Meth.simulate_implemented design impl) )
        | exception (Aaa.Adequation.Infeasible _ | Invalid_argument _) ->
            (None, true, false, Float.infinity)
      else begin
        let mode =
          Translator.Delay_graph.Jittered
            { law = Exec.Timing_law.Uniform; bcet_frac = 0.4; seed = scenario.Scenario.seed }
        in
        ( None,
          false,
          Sched.fits_period nominal.Meth.schedule,
          design.Design.cost (Meth.simulate_implemented ~mode design nominal) )
      end
    in
    (* executive side: the nominal deployment with the faults injected;
       bus-level events fold into the attached bus models (the control
       cost above stays bus-blind — the delay graph prices transfers
       with the temporal model, documented in the mli) *)
    let injection = Scenario.injection scenario ~architecture in
    let config =
      {
        Exec.Machine.default_config with
        iterations;
        seed = scenario.Scenario.seed;
        durations = Some durations;
        injection;
        bus_models = Scenario.apply_bus scenario ~architecture bus_models;
      }
    in
    let config =
      match design.Design.condition_runtime with
      | Some condition -> { config with Exec.Machine.condition }
      | None -> config
    in
    let trace = Meth.execute ~config design nominal in
    (* recovery side: the same seeded run with the online policy on,
       and — when a fail-stop is confirmed — the recovered vs frozen
       co-simulation of the same failure *)
    let recovery_outcome =
      match recovery with
      | None -> None
      | Some pol ->
          let failed_operator =
            match Scenario.failed_operators scenario with [ op ] -> Some op | _ -> None
          in
          let failover =
            match (failed_operator, schedule) with
            | Some op, Some degraded -> [ (op, Aaa.Codegen.generate degraded) ]
            | _ -> []
          in
          let pol = { pol with Exec.Recovery.failover } in
          let trace_with =
            Meth.execute ~config:{ config with Exec.Machine.recovery = pol } design
              nominal
          in
          let period = Aaa.Algorithm.period nominal.Meth.algorithm in
          let detection =
            Exec.Recovery.confirm pol
              ~operator_failed:injection.Exec.Injection.operator_failed
              ~operators:
                (List.map
                   (Aaa.Architecture.operator_name architecture)
                   (Aaa.Architecture.operators architecture))
              ~period ~iterations
          in
          let switch_time =
            Option.map
              (fun k -> float_of_int k *. period)
              trace_with.Exec.Machine.switched_at
          in
          (* hot standby: the replica executive (the failover copy)
             runs concurrently under the same seeded config; the voter
             takes over with zero blackout *)
          let standby_run =
            if not standby then None
            else
              match (failed_operator, failover) with
              | Some op, (op', sexe) :: _ when op' = op -> (
                  try
                    Some
                      (Exec.Standby.run
                         ~config:{ config with Exec.Machine.recovery = pol }
                         ~protects:op ~standby:sexe nominal.Meth.executive)
                  with Invalid_argument _ -> None)
              | _ -> None
          in
          let recovered_cost, frozen_cost, phases, standby_costs =
            match (detection, failed_operator, schedule, switch_time) with
            | Some conf, Some op, Some degraded, Some t_switch
              when t_switch < design.Design.horizon ->
                let fail_time = conf.Exec.Recovery.fail_time in
                let engine_rec =
                  recovery_engine ~design ~nominal ~failover:degraded ~fail_time
                    ~switch_time:t_switch ~failed_operator:op ()
                in
                let engine_frozen =
                  recovery_engine ~design ~nominal ~fail_time
                    ~switch_time:Float.infinity ~failed_operator:op ()
                in
                let recovered_cost = design.Design.cost engine_rec in
                let frozen_cost = design.Design.cost engine_frozen in
                let phases =
                  Option.map
                    (fun phase_cost ->
                      {
                        nominal_phase =
                          phase_cost engine_rec ~from_t:0. ~until_t:fail_time;
                        transient_phase =
                          phase_cost engine_rec ~from_t:fail_time ~until_t:t_switch;
                        degraded_phase =
                          phase_cost engine_rec ~from_t:t_switch
                            ~until_t:design.Design.horizon;
                        frozen_phase =
                          phase_cost engine_frozen ~from_t:t_switch
                            ~until_t:design.Design.horizon;
                      })
                    design.Design.phase_cost
                in
                (* the three-way comparison shares one post-failure
                   window [fail_time, horizon]: frozen (no recovery)
                   vs blackout-then-switch vs hot standby switching at
                   the voter's takeover instant *)
                let standby_costs =
                  match standby_run with
                  | None -> None
                  | Some st -> (
                      match st.Exec.Standby.takeover with
                      | Some (_, t_take) when t_take < design.Design.horizon ->
                          let engine_sb =
                            recovery_engine ~design ~nominal ~failover:degraded
                              ~fail_time ~switch_time:t_take ~failed_operator:op ()
                          in
                          let sb_cost = design.Design.cost engine_sb in
                          let posts =
                            Option.map
                              (fun phase_cost ->
                                ( phase_cost engine_sb ~from_t:fail_time
                                    ~until_t:design.Design.horizon,
                                  phase_cost engine_rec ~from_t:fail_time
                                    ~until_t:design.Design.horizon,
                                  phase_cost engine_frozen ~from_t:fail_time
                                    ~until_t:design.Design.horizon ))
                              design.Design.phase_cost
                          in
                          Some (Some sb_cost, posts)
                      | _ -> Some (None, None))
                in
                (Some recovered_cost, Some frozen_cost, phases, standby_costs)
            | _ ->
                ( None,
                  None,
                  None,
                  match standby_run with Some _ -> Some (None, None) | None -> None )
          in
          let standby_outcome =
            Option.map
              (fun st ->
                let p, s, h = Exec.Standby.tally st in
                let sb_cost, posts =
                  match standby_costs with Some (c, ps) -> (c, ps) | None -> (None, None)
                in
                {
                  takeover = st.Exec.Standby.takeover;
                  vote_primary = p;
                  vote_standby = s;
                  vote_held = h;
                  divergences = st.Exec.Standby.divergences;
                  standby_events = st.Exec.Standby.events;
                  decisions = Array.to_list st.Exec.Standby.decisions;
                  standby_cost = sb_cost;
                  standby_post_cost = Option.map (fun (a, _, _) -> a) posts;
                  switch_post_cost = Option.map (fun (_, b, _) -> b) posts;
                  frozen_post_cost = Option.map (fun (_, _, c) -> c) posts;
                })
              standby_run
          in
          Some
            {
              retransmissions = trace_with.Exec.Machine.retransmissions;
              recovered_transfers = trace_with.Exec.Machine.recovered_transfers;
              stale_with = trace_with.Exec.Machine.stale_reads;
              stale_without = trace.Exec.Machine.stale_reads;
              events = trace_with.Exec.Machine.recovery_events;
              detection;
              switch_time;
              post_switch_stale =
                Option.map
                  (fun (c : Exec.Machine.trace) -> c.Exec.Machine.stale_reads)
                  trace_with.Exec.Machine.continuation;
              recovered_cost;
              frozen_cost;
              phases;
              standby = standby_outcome;
            }
    in
    {
      scenario;
      schedule;
      replanned;
      infeasible;
      fits_period;
      cost;
      degradation_pct = (cost -. nominal_cost) /. nominal_cost *. 100.;
      lost_transfers = trace.Exec.Machine.lost_transfers;
      stale_reads = trace.Exec.Machine.stale_reads;
      overruns = trace.Exec.Machine.overruns;
      recovery = recovery_outcome;
    }
  in
  (* one independent adequation + co-simulation + injected machine run
     per scenario: the engine's unit of parallelism; scenario order is
     preserved and every value matches the sequential evaluation *)
  let outcomes = Explore.Pool.map pool outcome scenarios in
  let feasible = List.filter (fun o -> not o.infeasible) outcomes in
  let degradations = List.map (fun o -> o.degradation_pct) feasible in
  {
    design_name = design.Design.name;
    ideal_cost;
    nominal_cost;
    outcomes;
    worst_degradation_pct =
      List.fold_left Float.max Float.neg_infinity (List.map (fun o -> o.degradation_pct) outcomes);
    mean_degradation_pct =
      (if degradations = [] then Float.nan
       else Numerics.Stats.mean (Array.of_list degradations));
    all_feasible = List.for_all (fun o -> not o.infeasible) outcomes;
    all_fit = List.for_all (fun o -> o.fits_period) outcomes;
  }

let pp ppf s =
  Format.fprintf ppf "@[<v>robustness of %S: ideal %.6g, nominal implemented %.6g@,"
    s.design_name s.ideal_cost s.nominal_cost;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %s: " o.scenario.Scenario.name;
      if o.infeasible then Format.fprintf ppf "INFEASIBLE"
      else
        Format.fprintf ppf "cost %.6g (%+.2f %%)%s, lost %d, stale %d, overruns %d"
          o.cost o.degradation_pct
          (if o.fits_period then "" else " [overruns period]")
          o.lost_transfers o.stale_reads o.overruns;
      (match o.recovery with
      | None -> ()
      | Some r ->
          Format.fprintf ppf
            "@,    with recovery: retrans %d, recovered %d, stale %d (vs %d without)"
            r.retransmissions r.recovered_transfers r.stale_with r.stale_without;
          (match r.detection with
          | Some c ->
              Format.fprintf ppf "@,    fail-stop of %S at %g s confirmed at %g s"
                c.Exec.Recovery.operator c.Exec.Recovery.fail_time
                c.Exec.Recovery.confirm_time;
              Option.iter (fun t -> Format.fprintf ppf ", switched at %g s" t) r.switch_time
          | None -> ());
          (match r.phases with
          | Some p ->
              Format.fprintf ppf
                "@,    post-switch cost %.6g recovered vs %.6g without recovery"
                p.degraded_phase p.frozen_phase
          | None -> ());
          (match r.standby with
          | Some sb ->
              Format.fprintf ppf "@,    hot standby: %d/%d/%d primary/standby/held votes"
                sb.vote_primary sb.vote_standby sb.vote_held;
              (match sb.takeover with
              | Some (k, t) ->
                  Format.fprintf ppf ", takeover at iteration %d (t=%g, zero blackout)" k t
              | None -> Format.fprintf ppf ", no takeover");
              (match (sb.standby_post_cost, sb.switch_post_cost, sb.frozen_post_cost) with
              | Some sbc, Some swc, Some frc ->
                  Format.fprintf ppf
                    "@,    post-failure cost: %.6g hot-standby vs %.6g switch vs %.6g \
                     frozen"
                    sbc swc frc
              | _ -> ())
          | None -> ()));
      Format.fprintf ppf "@,")
    s.outcomes;
  Format.fprintf ppf "  worst degradation %+.2f %%, mean %+.2f %%@]"
    s.worst_degradation_pct s.mean_degradation_pct
