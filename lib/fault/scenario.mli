(** Fault scenarios — the structural counterpart of the timing laws.

    A scenario names a set of fault events over one execution of an
    implementation: processors that fail-stop at a given time, media
    that go dark over a window, per-transfer message loss, and
    correlated WCET-overrun bursts.  Together with an integer seed it
    is a {e complete} description: every probabilistic decision (is
    this transfer instance lost?  does this iteration sit in an
    overrun burst?) is a pure hash of the seed and the decision's
    coordinates, so two compilations of the same scenario agree
    bit-for-bit regardless of the order the executors ask in. *)

type event =
  | Processor_failstop of { operator : string; at : float }
      (** [operator] executes nothing from absolute time [at] on; its
          outputs freeze (consumers fall back to previous-iteration
          values). *)
  | Medium_outage of { medium : string; from_t : float; until_t : float }
      (** transfers departing on [medium] within [\[from_t, until_t)]
          lose their payload. *)
  | Message_loss of { medium : string option; prob : float }
      (** every transfer instance on [medium] (all media when [None])
          is independently lost with probability [prob]. *)
  | Overrun_burst of {
      start_prob : float;  (** per-iteration probability a burst begins *)
      stop_prob : float;  (** per-iteration probability an ongoing burst ends *)
      overrun_prob : float;  (** within a burst, per-execution overrun probability *)
      factor : float;  (** duration multiplier on overrun, > 1 *)
    }
      (** a two-state (Gilbert-style) burst process: interference
          arrives in correlated windows rather than i.i.d. — the
          structural version of {!Exec.Machine.config.overrun_prob}. *)
  | Bus_corruption of { medium : string option; prob : float }
      (** every frame transmission attempt on the modeled bus [medium]
          (all modeled buses when [None]) is independently corrupted
          with probability [prob]: the attempt occupies the bus and the
          frame retries up to the bus's limit before its payload is
          dropped — CAN's automatic retransmission under EMI.  Acts
          through {!apply_bus} on the attached bus models (no effect
          without one). *)
  | Babbling_idiot of {
      medium : string;
      ident : int;  (** identifier the babbler transmits at — pick < 256
          to outrank every executive frame *)
      words : int;
      period : float;  (** inter-frame gap — pick close to the frame
          time to starve the bus *)
      from_t : float;
      until_t : float;
    }
      (** a faulty node streaming high-priority frames over a window —
          the classic CAN failure mode arbitration cannot defend
          against.  Compiled by {!apply_bus} into an extra background
          stream on the named bus's model. *)
  | Bus_off of { operator : string; at : float }
      (** [operator]'s bus interface goes silent from [at] on: the
          operator keeps computing, but its frames on modeled buses are
          lost without occupying the bus (unlike
          {!Processor_failstop}, which stops the computations too).
          Acts through {!apply_bus}. *)

type t = private { name : string; seed : int; events : event list }

val make : name:string -> seed:int -> event list -> t
(** Validates every event: times non-negative, [from_t < until_t],
    probabilities within [\[0, 1\]], burst factors > 1.  Raises
    [Invalid_argument]. *)

val nominal : seed:int -> t
(** The empty scenario (no events) — the fault-free reference. *)

val injection : t -> architecture:Aaa.Architecture.t -> Exec.Injection.t
(** Compiles the scenario for one architecture (needed to resolve
    medium names on transfer slots).  [Message_loss] events also drive
    the injection's [retry_lost]: each retransmission attempt draws
    from an independent hash stream (same loss probability), so
    enabling recovery never perturbs the original loss decisions.
    Raises [Invalid_argument] when an event names an operator or
    medium the architecture does not have.

    Bus-level events ([Bus_corruption], [Babbling_idiot], [Bus_off])
    are {e not} part of the structural injection — they act on the
    executives' attached bus models through {!apply_bus}.  A scenario
    holding only bus events compiles to {!Exec.Injection.none}, keeping
    the executives' fast no-fault path. *)

val apply_bus :
  t ->
  architecture:Aaa.Architecture.t ->
  (string * Media.Bus.config) list ->
  (string * Media.Bus.config) list
(** Folds the scenario's bus-level events into the given bus models
    (the [bus_models] the executives take): [Bus_corruption] composes a
    per-attempt corruption decision (a pure hash of the {e scenario}
    seed and the frame's coordinates, independent of the bus's own
    seed), [Babbling_idiot] appends a high-priority background stream
    (on a synthetic node id ≥ 1000), and [Bus_off] silences the named
    operator's node id on every modeled bus.  Models the scenario does
    not touch pass through unchanged.  Raises [Invalid_argument] when
    an event names an unknown operator or medium. *)

val failed_operators : t -> string list
(** Operators fail-stopped by the scenario, in event order (the
    exclusion set a degraded re-adequation must plan around). *)

val failed_media : t -> string list
(** Media with outage windows, deduplicated, in event order. *)

val single_processor_failures :
  ?at:float -> seed:int -> Aaa.Architecture.t -> t list
(** One scenario per operator, each fail-stopping that operator at
    [at] (default [0.] — dead from the start).  Scenario [i] is seeded
    [seed + i] and named after its operator. *)

val pp : Format.formatter -> t -> unit
