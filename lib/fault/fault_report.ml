let markdown_section (s : Robustness.summary) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "## Robustness";
  line "";
  line "Nominal implemented cost %.6g (ideal %.6g).  %d fault scenarios:" s.Robustness.nominal_cost
    s.Robustness.ideal_cost
    (List.length s.Robustness.outcomes);
  line "";
  line "| scenario | cost | degradation | failover | lost | stale | overruns |";
  line "|---|---|---|---|---|---|---|";
  List.iter
    (fun (o : Robustness.outcome) ->
      if o.Robustness.infeasible then
        line "| %s | — | — | **infeasible** | %d | %d | %d |"
          o.Robustness.scenario.Scenario.name o.Robustness.lost_transfers
          o.Robustness.stale_reads o.Robustness.overruns
      else
        line "| %s | %.6g | %+.2f %% | %s | %d | %d | %d |"
          o.Robustness.scenario.Scenario.name o.Robustness.cost
          o.Robustness.degradation_pct
          (if not o.Robustness.replanned then "nominal"
           else if o.Robustness.fits_period then "fits period"
           else "OVERRUNS period")
          o.Robustness.lost_transfers o.Robustness.stale_reads o.Robustness.overruns)
    s.Robustness.outcomes;
  line "";
  line "Worst-case degradation %+.2f %%; mean %+.2f %%.  %s" s.Robustness.worst_degradation_pct
    s.Robustness.mean_degradation_pct
    (if s.Robustness.all_feasible && s.Robustness.all_fit then
       "Every scenario has a feasible failover meeting the period."
     else if s.Robustness.all_feasible then
       "All scenarios are schedulable, but some failover schedules overrun the period."
     else "Some scenarios have no feasible failover on the surviving architecture.");
  let recovered =
    List.filter_map
      (fun (o : Robustness.outcome) ->
        Option.map (fun r -> (o, r)) o.Robustness.recovery)
      s.Robustness.outcomes
  in
  if recovered <> [] then begin
    line "";
    line "### Online recovery";
    line "";
    line
      "Each scenario re-run with the recovery policy enabled (same seed), \
       against the no-recovery baseline above:";
    line "";
    line
      "| scenario | detected after | switch at | retrans | recovered | stale \
       (rec/no-rec) | post-switch cost (rec/no-rec) |";
    line "|---|---|---|---|---|---|---|";
    List.iter
      (fun ((o : Robustness.outcome), (r : Robustness.recovery_outcome)) ->
        let detected =
          match r.Robustness.detection with
          | Some c ->
              Printf.sprintf "%.4g s"
                (c.Exec.Recovery.confirm_time -. c.Exec.Recovery.fail_time)
          | None -> "—"
        in
        let switch =
          match r.Robustness.switch_time with
          | Some t -> Printf.sprintf "%.4g s" t
          | None -> "—"
        in
        let post =
          match r.Robustness.phases with
          | Some p ->
              Printf.sprintf "%.6g / %.6g" p.Robustness.degraded_phase
                p.Robustness.frozen_phase
          | None -> "—"
        in
        line "| %s | %s | %s | %d | %d | %d / %d | %s |"
          o.Robustness.scenario.Scenario.name detected switch
          r.Robustness.retransmissions r.Robustness.recovered_transfers
          r.Robustness.stale_with r.Robustness.stale_without post)
      recovered;
    let improved =
      List.for_all
        (fun (_, (r : Robustness.recovery_outcome)) ->
          match r.Robustness.phases with
          | Some p -> p.Robustness.degraded_phase < p.Robustness.frozen_phase
          | None -> true)
        recovered
    in
    let switched =
      List.exists (fun (_, r) -> r.Robustness.switch_time <> None) recovered
    in
    if switched then begin
      line "";
      line "%s"
        (if improved then
           "Post-switch control cost is strictly lower with recovery on every \
            switched scenario."
         else
           "**Warning**: recovery did not improve the post-switch control cost \
            on some scenario.")
    end;
    let standbys =
      List.filter_map
        (fun ((o : Robustness.outcome), (r : Robustness.recovery_outcome)) ->
          Option.map (fun sb -> (o, sb)) r.Robustness.standby)
        recovered
    in
    if standbys <> [] then begin
      line "";
      line "### Hot standby";
      line "";
      line
        "The failover copy ran concurrently on the backup processors; the output \
         voter selected the actuated stream each period:";
      line "";
      line
        "| scenario | votes P/S/H | takeover | divergences | post-failure cost \
         (standby / switch / frozen) |";
      line "|---|---|---|---|---|";
      List.iter
        (fun ((o : Robustness.outcome), (sb : Robustness.standby_outcome)) ->
          let takeover =
            match sb.Robustness.takeover with
            | Some (k, t) -> Printf.sprintf "iter %d (t=%.4g s)" k t
            | None -> "—"
          in
          let post =
            match
              ( sb.Robustness.standby_post_cost,
                sb.Robustness.switch_post_cost,
                sb.Robustness.frozen_post_cost )
            with
            | Some s, Some w, Some f -> Printf.sprintf "%.6g / %.6g / %.6g" s w f
            | _ -> "—"
          in
          line "| %s | %d/%d/%d | %s | %d | %s |" o.Robustness.scenario.Scenario.name
            sb.Robustness.vote_primary sb.Robustness.vote_standby
            sb.Robustness.vote_held takeover
            (List.length sb.Robustness.divergences)
            post)
        standbys;
      (* the vote log: per-period decisions with divergence marks and
         the voter's switch evidence, next to the watchdog/retry
         ledger above *)
      List.iter
        (fun ((o : Robustness.outcome), (sb : Robustness.standby_outcome)) ->
          line "";
          line "Vote log — %s:" o.Robustness.scenario.Scenario.name;
          line "";
          let shown, elided =
            (* keep the vote-change boundaries, divergences and the two
               endpoints; elide the interior of every same-vote run *)
            let d = sb.Robustness.decisions in
            let rec interesting prev acc = function
              | [] -> List.rev acc
              | (x : Exec.Standby.decision) :: rest ->
                  let keep =
                    x.Exec.Standby.d_diverged
                    || x.Exec.Standby.d_iteration = 0
                    || rest = []
                    || (match prev with
                       | Some (p : Exec.Standby.decision) ->
                           p.Exec.Standby.d_vote <> x.Exec.Standby.d_vote
                       | None -> true)
                  in
                  interesting (Some x) (if keep then x :: acc else acc) rest
            in
            let kept = interesting None [] d in
            (kept, List.length d - List.length kept)
          in
          List.iter
            (fun x -> line "- %s" (Format.asprintf "%a" Exec.Standby.pp_decision x))
            shown;
          if elided > 0 then line "- … %d further same-vote periods elided" elided;
          List.iter
            (fun e ->
              match e with
              | Exec.Recovery.Voter_switched _ | Exec.Recovery.Failstop_confirmed _ ->
                  line "- evidence: %s" (Format.asprintf "%a" Exec.Recovery.pp_event e)
              | _ -> ())
            sb.Robustness.standby_events)
        standbys;
      let zero_blackout =
        List.for_all
          (fun (_, (sb : Robustness.standby_outcome)) ->
            match (sb.Robustness.standby_post_cost, sb.Robustness.switch_post_cost) with
            | Some s, Some w -> s < w
            | _ -> true)
          standbys
      in
      if
        List.exists
          (fun (_, (sb : Robustness.standby_outcome)) ->
            sb.Robustness.standby_post_cost <> None)
          standbys
      then begin
        line "";
        line "%s"
          (if zero_blackout then
             "Hot-standby post-failure cost is strictly below blackout-then-switch \
              on every compared scenario: the voter's zero-blackout takeover skips \
              the open-loop transient."
           else
             "**Warning**: hot standby did not beat blackout-then-switch on some \
              scenario.")
      end
    end
  end;
  Buffer.contents buf

let failover_markdown (table : Degrade.failover list) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "| failed operator | degraded makespan | fits period |";
  line "|---|---|---|";
  List.iter
    (fun (f : Degrade.failover) ->
      match f.Degrade.schedule with
      | Some _ ->
          line "| %s | %.6g | %s |" f.Degrade.failed_operator f.Degrade.makespan
            (if f.Degrade.fits then "yes" else "**no**")
      | None -> line "| %s | — | **infeasible** |" f.Degrade.failed_operator)
    table;
  Buffer.contents buf
