let markdown_section (s : Robustness.summary) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "## Robustness";
  line "";
  line "Nominal implemented cost %.6g (ideal %.6g).  %d fault scenarios:" s.Robustness.nominal_cost
    s.Robustness.ideal_cost
    (List.length s.Robustness.outcomes);
  line "";
  line "| scenario | cost | degradation | failover | lost | stale | overruns |";
  line "|---|---|---|---|---|---|---|";
  List.iter
    (fun (o : Robustness.outcome) ->
      if o.Robustness.infeasible then
        line "| %s | — | — | **infeasible** | %d | %d | %d |"
          o.Robustness.scenario.Scenario.name o.Robustness.lost_transfers
          o.Robustness.stale_reads o.Robustness.overruns
      else
        line "| %s | %.6g | %+.2f %% | %s | %d | %d | %d |"
          o.Robustness.scenario.Scenario.name o.Robustness.cost
          o.Robustness.degradation_pct
          (if not o.Robustness.replanned then "nominal"
           else if o.Robustness.fits_period then "fits period"
           else "OVERRUNS period")
          o.Robustness.lost_transfers o.Robustness.stale_reads o.Robustness.overruns)
    s.Robustness.outcomes;
  line "";
  line "Worst-case degradation %+.2f %%; mean %+.2f %%.  %s" s.Robustness.worst_degradation_pct
    s.Robustness.mean_degradation_pct
    (if s.Robustness.all_feasible && s.Robustness.all_fit then
       "Every scenario has a feasible failover meeting the period."
     else if s.Robustness.all_feasible then
       "All scenarios are schedulable, but some failover schedules overrun the period."
     else "Some scenarios have no feasible failover on the surviving architecture.");
  Buffer.contents buf

let failover_markdown (table : Degrade.failover list) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  line "| failed operator | degraded makespan | fits period |";
  line "|---|---|---|";
  List.iter
    (fun (f : Degrade.failover) ->
      match f.Degrade.schedule with
      | Some _ ->
          line "| %s | %.6g | %s |" f.Degrade.failed_operator f.Degrade.makespan
            (if f.Degrade.fits then "yes" else "**no**")
      | None -> line "| %s | — | **infeasible** |" f.Degrade.failed_operator)
    table;
  Buffer.contents buf
