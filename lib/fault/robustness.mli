(** Robustness evaluation: the methodology's design-time loop, closed
    over structural faults.

    For every scenario, two complementary measurements:

    - the {e control-cost} side, co-simulated through
      {!Translator.Cosim} exactly like the nominal evaluation: a
      fail-stop scenario is costed on its degraded re-adequation
      schedule (the failover plan of {!Degrade}); a purely
      timing-level scenario (losses, bursts, outages) is costed on the
      nominal schedule under the jittered graph of delays seeded by
      the scenario — so each cost is comparable to the nominal
      implemented cost and the degradation quantifies what the fault
      costs the {e control law};
    - the {e executive} side, the nominal executive run on the
      simulated machine with the scenario injected
      ({!Exec.Machine.config.injection}): lost transfers, stale
      (previous-iteration) reads and period overruns.

    Everything is deterministic from the scenario seeds — re-running
    an evaluation reproduces it bit-for-bit. *)

type outcome = {
  scenario : Scenario.t;
  schedule : Aaa.Schedule.t option;
      (** the failover schedule (fail-stop scenarios only); [None]
          when the scenario keeps the nominal mapping or when
          re-adequation is infeasible *)
  replanned : bool;  (** the scenario excluded operators *)
  infeasible : bool;  (** re-adequation was required and impossible *)
  fits_period : bool;  (** the costed schedule meets the period *)
  cost : float;  (** implemented cost under the scenario ([inf] when infeasible) *)
  degradation_pct : float;  (** vs the nominal implemented cost *)
  lost_transfers : int;
  stale_reads : int;
  overruns : int;
}

type summary = {
  design_name : string;
  ideal_cost : float;
  nominal_cost : float;  (** implemented cost without faults *)
  outcomes : outcome list;  (** scenario order preserved *)
  worst_degradation_pct : float;
  mean_degradation_pct : float;  (** over feasible scenarios *)
  all_feasible : bool;
  all_fit : bool;
}

val evaluate :
  ?iterations:int ->
  ?strategy:Aaa.Adequation.strategy ->
  ?replicas:(string * string) list ->
  ?pool:Explore.Pool.t ->
  design:Lifecycle.Design.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  scenarios:Scenario.t list ->
  unit ->
  summary
(** Runs the full evaluation.  [iterations] (default 200) sizes the
    injected machine runs; [replicas] is forwarded to the degraded
    re-adequation ({!Degrade.replan}).  The per-scenario evaluations
    run on [pool] (default {!Explore.Pool.default}) with results
    identical to the sequential path, in scenario order.  Raises
    {!Aaa.Adequation.Infeasible} only for the {e nominal} mapping —
    per-scenario infeasibility is recorded, not raised.  Raises
    [Invalid_argument] on an empty scenario list. *)

val pp : Format.formatter -> summary -> unit
