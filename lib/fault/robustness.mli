(** Robustness evaluation: the methodology's design-time loop, closed
    over structural faults.

    For every scenario, two complementary measurements:

    - the {e control-cost} side, co-simulated through
      {!Translator.Cosim} exactly like the nominal evaluation: a
      fail-stop scenario is costed on its degraded re-adequation
      schedule (the failover plan of {!Degrade}); a purely
      timing-level scenario (losses, bursts, outages) is costed on the
      nominal schedule under the jittered graph of delays seeded by
      the scenario — so each cost is comparable to the nominal
      implemented cost and the degradation quantifies what the fault
      costs the {e control law};
    - the {e executive} side, the nominal executive run on the
      simulated machine with the scenario injected
      ({!Exec.Machine.config.injection}): lost transfers, stale
      (previous-iteration) reads and period overruns.

    Everything is deterministic from the scenario seeds — re-running
    an evaluation reproduces it bit-for-bit. *)

type recovery_phases = {
  nominal_phase : float;  (** recovered run's cost over [\[0, fail_time\]] *)
  transient_phase : float;
      (** recovered run over [\[fail_time, switch_time\]] — failure
          detected but not yet reconfigured *)
  degraded_phase : float;
      (** recovered run over [\[switch_time, horizon\]] — on the
          failover schedule *)
  frozen_phase : float;
      (** the {e no-recovery} run over the same post-switch window
          (plant open-loop on frozen holds) — the number
          [degraded_phase] must beat for recovery to pay off *)
}

type standby_outcome = {
  takeover : (int * float) option;
      (** first standby-voted release and its actuation instant —
          effectively zero blackout after the failure *)
  vote_primary : int;
  vote_standby : int;
  vote_held : int;  (** per-period voter decision counts *)
  divergences : int list;
      (** iterations where both streams were fresh but dated their
          actuations differently *)
  standby_events : Exec.Recovery.event list;
      (** the standby run's timeline, including [Voter_switched] *)
  decisions : Exec.Standby.decision list;  (** the full vote log *)
  standby_cost : float option;
      (** whole-horizon co-simulated cost switching at the takeover *)
  standby_post_cost : float option;
      (** cost over [\[fail_time, horizon\]] for the hot-standby run *)
  switch_post_cost : float option;
      (** same window, blackout-then-switch (PR 4's path) *)
  frozen_post_cost : float option;  (** same window, no recovery *)
}

type recovery_outcome = {
  retransmissions : int;  (** retry attempts the policy spent *)
  recovered_transfers : int;  (** drops a retransmission saved *)
  stale_with : int;  (** stale reads of the recovered run *)
  stale_without : int;  (** stale reads of the baseline run (same seed) *)
  events : Exec.Recovery.event list;
      (** the recovered run's dated detection / recovery timeline *)
  detection : Exec.Recovery.confirmation option;
      (** the heartbeat supervisor's confirmation, when one happened *)
  switch_time : float option;  (** absolute instant of the mode switch *)
  post_switch_stale : int option;
      (** stale reads after the switch (the failover phase's count) *)
  recovered_cost : float option;
      (** whole-horizon control cost of the recovered co-simulation *)
  frozen_cost : float option;
      (** whole-horizon cost of the no-recovery co-simulation *)
  phases : recovery_phases option;
      (** per-phase split, when the design provides
          {!Lifecycle.Design.t.phase_cost} *)
  standby : standby_outcome option;
      (** present when {!evaluate} ran with [~standby:true] and the
          scenario is a single-operator fail-stop with a feasible
          failover: the hot-standby replica run and its three-way
          post-failure cost comparison *)
}

type outcome = {
  scenario : Scenario.t;
  schedule : Aaa.Schedule.t option;
      (** the failover schedule (fail-stop scenarios only); [None]
          when the scenario keeps the nominal mapping or when
          re-adequation is infeasible *)
  replanned : bool;  (** the scenario excluded operators *)
  infeasible : bool;  (** re-adequation was required and impossible *)
  fits_period : bool;  (** the costed schedule meets the period *)
  cost : float;  (** implemented cost under the scenario ([inf] when infeasible) *)
  degradation_pct : float;  (** vs the nominal implemented cost *)
  lost_transfers : int;
  stale_reads : int;
  overruns : int;
  recovery : recovery_outcome option;
      (** present when {!evaluate} was given a recovery policy: the
          same seeded scenario re-run with the policy on, compared
          against the baseline fields of this record *)
}

type summary = {
  design_name : string;
  ideal_cost : float;
  nominal_cost : float;  (** implemented cost without faults *)
  outcomes : outcome list;  (** scenario order preserved *)
  worst_degradation_pct : float;
  mean_degradation_pct : float;  (** over feasible scenarios *)
  all_feasible : bool;
  all_fit : bool;
}

val evaluate :
  ?iterations:int ->
  ?strategy:Aaa.Adequation.strategy ->
  ?replicas:(string * string) list ->
  ?pool:Explore.Pool.t ->
  ?recovery:Exec.Recovery.policy ->
  ?standby:bool ->
  ?bus_models:(string * Media.Bus.config) list ->
  design:Lifecycle.Design.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  scenarios:Scenario.t list ->
  unit ->
  summary
(** Runs the full evaluation.  [iterations] (default 200) sizes the
    injected machine runs; [replicas] is forwarded to the degraded
    re-adequation ({!Degrade.replan}).  The per-scenario evaluations
    run on [pool] (default {!Explore.Pool.default}) with results
    identical to the sequential path, in scenario order.  Raises
    {!Aaa.Adequation.Infeasible} only for the {e nominal} mapping —
    per-scenario infeasibility is recorded, not raised.  Raises
    [Invalid_argument] on an empty scenario list.

    With [recovery], each scenario is additionally re-run with the
    policy enabled (same seed): the policy's [failover] table is
    completed with the executive generated from the scenario's
    degraded re-adequation schedule, so a confirmed single-operator
    fail-stop mode-switches mid-run.  When a switch happens inside the
    co-simulation horizon, the fault is also co-simulated twice through
    {!Translator.Cosim.attach_recovery_delay_graph} — recovered
    (switching to the failover delay graph) and frozen (no recovery,
    plant open-loop from the failure on) — giving the
    recovery-vs-no-recovery control costs and, when the design has a
    [phase_cost], the nominal / transient / degraded split.

    With [~standby:true] (requires [recovery]), every single-operator
    fail-stop scenario whose failover is feasible is additionally run
    hot-standby ({!Exec.Standby.run}): the failover executive runs
    concurrently under the same seed and the output voter switches
    streams on freshness/heartbeat evidence.  The outcome records the
    vote log and — when the blackout-then-switch path also completed —
    the three-way post-failure cost over [\[fail_time, horizon\]]:
    frozen vs switch vs hot-standby (the hot-standby co-simulation
    switches to the failover delay graph at the voter's takeover
    instant instead of [confirm_time + blackout]).

    With [bus_models] (default [\[\]]), every injected machine run
    routes its transfers through the shared-bus network models, with
    each scenario's bus-level events ([Bus_corruption],
    [Babbling_idiot], [Bus_off]) folded in via {!Scenario.apply_bus} —
    contention, corruption retries and starvation then show up in the
    per-scenario [lost_transfers] / [stale_reads] / [overruns]
    counters.  The control-cost co-simulation stays bus-blind: the
    delay graph prices transfers with the temporal model's fixed
    durations. *)

val pp : Format.formatter -> summary -> unit
