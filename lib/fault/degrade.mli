(** Degraded-mode re-adequation: planning the same algorithm on what
    is left of the architecture after a structural failure.

    The AAA adequation is re-run with an {e exclusion set} — the
    failed operators and media — removed from the architecture graph,
    optionally steering the orphaned operations onto their declared
    passive replicas.  The result is the failover schedule a
    fault-tolerant deployment would switch to, evaluated at design
    time exactly like the nominal one. *)

type exclusion = { operators : string list; media : string list }

val exclusion_of : Scenario.t -> exclusion
(** The permanent failures of a scenario: its fail-stopped operators.
    Outage windows are transient and do not exclude their medium. *)

val restrict : Aaa.Architecture.t -> exclusion -> Aaa.Architecture.t
(** A fresh architecture without the excluded operators and media.
    Media losing endpoints survive as long as two remain (a bus keeps
    its surviving drops; a point-to-point link dies with either end).
    Raises [Invalid_argument] when an excluded name is unknown, when
    no operator survives, or when the survivors are disconnected. *)

val replan :
  ?strategy:Aaa.Adequation.strategy ->
  ?replicas:(string * string) list ->
  algorithm:Aaa.Algorithm.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  nominal:Aaa.Schedule.t ->
  exclusion:exclusion ->
  unit ->
  Aaa.Schedule.t
(** Re-runs the adequation on the restricted architecture.
    [replicas] maps operation names to their passive-replica operator:
    operations the [nominal] schedule placed on a now-excluded
    operator are pinned onto their replica (when it survives and can
    run them); everything else is free for the heuristic to move.
    Raises {!Aaa.Adequation.Infeasible} when some operation has no
    surviving operator, [Invalid_argument] on unknown names. *)

type failover = {
  failed_operator : string;
  schedule : Aaa.Schedule.t option;  (** [None] when re-adequation is infeasible *)
  fits : bool;  (** [makespan <= period] — false when infeasible *)
  makespan : float;  (** [nan] when infeasible *)
}

val failover_table :
  ?strategy:Aaa.Adequation.strategy ->
  ?replicas:(string * string) list ->
  algorithm:Aaa.Algorithm.t ->
  architecture:Aaa.Architecture.t ->
  durations:Aaa.Durations.t ->
  nominal:Aaa.Schedule.t ->
  unit ->
  failover list
(** One failover schedule per single-operator failure — the classic
    single-fault-tolerance design table.  Infeasible failures (the
    survivors cannot run the algorithm, or are disconnected) yield
    [schedule = None] instead of raising. *)

val failover_executives : failover list -> (string * Aaa.Codegen.t) list
(** Generates one executive per feasible failover schedule, keyed by
    the failed operator's name — exactly the [failover] table a
    {!Exec.Recovery.policy} expects.  Infeasible entries are skipped:
    the online supervisor then confirms the fail-stop but has nowhere
    to switch. *)

val pp_failover : Format.formatter -> failover -> unit

(** {2 Hot-standby plans}

    A standby plan turns a failover entry into the replica executive
    {!Exec.Standby} runs {e concurrently} with the nominal one: the
    failover copy of every operation the nominal schedule places on
    the protected operator runs on its backup every period, and the
    output voter switches streams with zero blackout. *)

type standby_plan = {
  protects : string;  (** the operator whose fail-stop is covered *)
  executive : Aaa.Codegen.t;
      (** the replica executive — the failover schedule, generated *)
  replicated : string list;
      (** operations the nominal schedule placed on [protects], i.e.
          the work the standby re-hosts *)
}

val standby_plans : nominal:Aaa.Schedule.t -> failover list -> standby_plan list
(** One plan per feasible failover entry. *)

val standby_plan_for :
  failover list -> nominal:Aaa.Schedule.t -> operator:string -> standby_plan option
(** The plan covering one operator, if its failover is feasible. *)

val pp_standby_plan : Format.formatter -> standby_plan -> unit
