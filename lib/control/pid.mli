(** Discrete PID controller with filtered derivative and anti-windup.

    The positional form computed every period [ts]:

    {v
      e  = r − y
      P  = kp·e
      I += ki·ts·e          (clamped to [±windup] when given)
      D  = kd·(e − e_prev)/ts, low-pass filtered with coefficient α
      u  = clamp (P + I + D)
    v} *)

type gains = { kp : float; ki : float; kd : float }

type t
(** Mutable controller state (integral and derivative memory). *)

val create :
  ?umin:float ->
  ?umax:float ->
  ?windup:float ->
  ?derivative_filter:float ->
  gains:gains ->
  ts:float ->
  unit ->
  t
(** [derivative_filter] is the pole [α ∈ [0,1)] of the derivative
    low-pass ([0] = unfiltered, default [0.1]).  [umin]/[umax] clamp
    the output when provided.  Raises [Invalid_argument] on [ts <= 0]
    or invalid filter coefficient. *)

val reset : t -> unit
(** Clears integral and derivative memory. *)

val gains : t -> gains
val ts : t -> float

val limits : t -> float option * float option
(** The [(umin, umax)] output clamp, when configured — with both
    bounds set the control value is provably confined to
    [\[umin, umax\]], which the value-flow analysis exploits. *)

val windup : t -> float option
(** The integral anti-windup clamp, when configured. *)

val step : t -> r:float -> y:float -> float
(** One control-period update; returns the new control value. *)

val copy : t -> t
(** Fresh controller with the same parameters and cleared state. *)

val ziegler_nichols : ku:float -> tu:float -> gains
(** Classic closed-loop Ziegler–Nichols tuning from ultimate gain
    [ku] and ultimate period [tu]. *)

val to_tf : ?derivative_filter:float -> gains -> ts:float -> Tf.t
(** The discrete transfer function of this implementation's PID
    (backward-Euler integral [ki·ts·z/(z−1)], filtered backward
    derivative [kd·(1−α)(z−1)/(ts·(z−α))] with [α] =
    [derivative_filter], default 0.1) — the [C(z)] to feed
    {!Freq.margins} for loop-shaping analysis.  Matches {!step}'s
    arithmetic exactly, so frequency-domain predictions agree with
    time-domain simulations of the block. *)
