type trace = { times : float array; values : float array }

let of_arrays times values =
  if Array.length times <> Array.length values then
    invalid_arg "Metrics.of_arrays: length mismatch";
  for i = 1 to Array.length times - 1 do
    if times.(i) < times.(i - 1) then invalid_arg "Metrics.of_arrays: times not sorted"
  done;
  { times; values }

(* trapezoidal integral of f(t, y) over the trace *)
let integrate f { times; values } =
  let acc = ref 0. in
  for i = 1 to Array.length times - 1 do
    let dt = times.(i) -. times.(i - 1) in
    let a = f times.(i - 1) values.(i - 1) and b = f times.(i) values.(i) in
    acc := !acc +. (dt *. (a +. b) /. 2.)
  done;
  !acc

(* sample at time t by linear interpolation; t must lie inside the
   trace's span *)
let value_at { times; values } t =
  let n = Array.length times in
  let rec find i = if i < n && times.(i) < t then find (i + 1) else i in
  let i = find 0 in
  if i = 0 then values.(0)
  else if i >= n then values.(n - 1)
  else
    let t0 = times.(i - 1) and t1 = times.(i) in
    if t1 <= t0 then values.(i)
    else
      let w = (t -. t0) /. (t1 -. t0) in
      ((1. -. w) *. values.(i - 1)) +. (w *. values.(i))

let clip ~from_t ~until_t ({ times; values } as tr) =
  if until_t < from_t then invalid_arg "Metrics.clip: until_t before from_t";
  let n = Array.length times in
  if n = 0 then tr
  else begin
    (* clamp to the trace's span so windows extending beyond it
       compose exactly: clip a b + clip b c = clip a c *)
    let from_t = Float.max from_t times.(0) in
    let until_t = Float.min until_t times.(n - 1) in
    if until_t <= from_t then begin
      let t = Float.min (Float.max from_t times.(0)) times.(n - 1) in
      { times = [| t |]; values = [| value_at tr t |] }
    end
    else begin
      let inner = ref [] in
      for i = n - 1 downto 0 do
        if times.(i) > from_t +. 1e-15 && times.(i) < until_t -. 1e-15 then
          inner := (times.(i), values.(i)) :: !inner
      done;
      let samples =
        ((from_t, value_at tr from_t) :: !inner) @ [ (until_t, value_at tr until_t) ]
      in
      {
        times = Array.of_list (List.map fst samples);
        values = Array.of_list (List.map snd samples);
      }
    end
  end

let iae ?(reference = 0.) tr = integrate (fun _ y -> Float.abs (reference -. y)) tr

let ise ?(reference = 0.) tr =
  integrate
    (fun _ y ->
      let e = reference -. y in
      e *. e)
    tr

let itae ?(reference = 0.) tr = integrate (fun t y -> t *. Float.abs (reference -. y)) tr

let overshoot ?(reference = 0.) { values; _ } =
  if Array.length values = 0 then 0.
  else
    let peak = Array.fold_left Float.max values.(0) values in
    let over = peak -. reference in
    if over <= 0. then 0.
    else if reference = 0. then over
    else over /. Float.abs reference

let settling_time ?(reference = 0.) ?(band = 0.02) { times; values } =
  let n = Array.length times in
  if n = 0 then None
  else
    let tolerance =
      if reference = 0. then band else band *. Float.abs reference
    in
    (* scan from the end: the settling instant is the last departure *)
    let rec last_out i =
      if i < 0 then -1
      else if Float.abs (values.(i) -. reference) > tolerance then i
      else last_out (i - 1)
    in
    match last_out (n - 1) with
    | -1 -> Some times.(0)
    | i when i = n - 1 -> None
    | i -> Some times.(i + 1)

let rise_time ?(reference = 1.) { times; values } =
  if reference = 0. then None
  else
    let crossing threshold =
      let target = threshold *. reference in
      let rec find i =
        if i >= Array.length values then None
        else if
          (reference > 0. && values.(i) >= target)
          || (reference < 0. && values.(i) <= target)
        then Some times.(i)
        else find (i + 1)
      in
      find 0
    in
    match (crossing 0.1, crossing 0.9) with
    | Some t10, Some t90 when t90 >= t10 -> Some (t90 -. t10)
    | Some _, Some _ | Some _, None | None, Some _ | None, None -> None

let steady_state_error ?(reference = 0.) ?(window = 10) { values; _ } =
  let n = Array.length values in
  if n = 0 then invalid_arg "Metrics.steady_state_error: empty trace";
  let w = Stdlib.min window n in
  let sum = ref 0. in
  for i = n - w to n - 1 do
    sum := !sum +. (reference -. values.(i))
  done;
  !sum /. float_of_int w

let degradation_pct ~ideal ~actual =
  if ideal = 0. then if actual = 0. then 0. else Float.infinity
  else (actual -. ideal) /. Float.abs ideal *. 100.
