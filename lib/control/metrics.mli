(** Control-performance metrics computed from simulation traces.

    A trace is a pair of arrays [(times, values)] of equal length with
    strictly increasing times.  Integral metrics use trapezoidal
    quadrature so they are meaningful for the unevenly spaced samples
    a hybrid simulator produces. *)

type trace = { times : float array; values : float array }

val of_arrays : float array -> float array -> trace
(** Validates lengths and monotone times. *)

val clip : from_t:float -> until_t:float -> trace -> trace
(** Restriction of the trace to [\[from_t, until_t\]], with
    linearly-interpolated samples at the window boundaries so that
    integral metrics over adjacent windows compose:
    [iae (clip a b tr) + iae (clip b c tr) = iae (clip a c tr)] — an
    exact identity when the cut lands on an existing sample, or when
    the integrand stays linear across the cut segment (for [iae], the
    error keeps its sign there); otherwise the interpolated cut node
    only {e refines} the trapezoidal quadrature.  The
    window is clamped to the trace's span; a window that misses the
    span entirely degenerates to a single boundary sample (zero
    integral).  Raises [Invalid_argument] when [until_t < from_t].
    Used to split a co-simulated response into nominal / transient /
    degraded phases around a fault. *)

val iae : ?reference:float -> trace -> float
(** Integral of absolute error [∫|r − y| dt] (default reference 0
    measures [∫|y|]). *)

val ise : ?reference:float -> trace -> float
(** Integral of squared error. *)

val itae : ?reference:float -> trace -> float
(** Time-weighted IAE [∫ t·|r − y| dt]. *)

val overshoot : ?reference:float -> trace -> float
(** Peak overshoot as a fraction of the reference step (for
    [reference = 0.], the raw peak).  Never negative. *)

val settling_time : ?reference:float -> ?band:float -> trace -> float option
(** First time after which the response stays within [band]
    (default 2 %) of the reference.  [None] if it never settles. *)

val rise_time : ?reference:float -> trace -> float option
(** 10 %→90 % rise time toward [reference].  [None] if the response
    never crosses the thresholds. *)

val steady_state_error : ?reference:float -> ?window:int -> trace -> float
(** Mean of [reference − y] over the last [window] samples
    (default 10, clipped to the trace length). *)

val degradation_pct : ideal:float -> actual:float -> float
(** [(actual − ideal)/|ideal|·100] — the headline number when
    comparing implemented control against the stroboscopic design.
    Returns [infinity] when [ideal = 0.] and [actual <> 0.]. *)
