type gains = { kp : float; ki : float; kd : float }

type t = {
  gains : gains;
  ts : float;
  umin : float option;
  umax : float option;
  windup : float option;
  alpha : float;
  mutable integral : float;
  mutable prev_error : float;
  mutable filtered_deriv : float;
  mutable primed : bool; (* false until the first step, to avoid a derivative kick *)
}

let create ?umin ?umax ?windup ?(derivative_filter = 0.1) ~gains ~ts () =
  if ts <= 0. then invalid_arg "Pid.create: non-positive ts";
  if derivative_filter < 0. || derivative_filter >= 1. then
    invalid_arg "Pid.create: derivative_filter must be in [0,1)";
  (match (umin, umax) with
  | Some lo, Some hi when lo >= hi -> invalid_arg "Pid.create: umin >= umax"
  | Some _, Some _ | Some _, None | None, Some _ | None, None -> ());
  {
    gains;
    ts;
    umin;
    umax;
    windup;
    alpha = derivative_filter;
    integral = 0.;
    prev_error = 0.;
    filtered_deriv = 0.;
    primed = false;
  }

let reset c =
  c.integral <- 0.;
  c.prev_error <- 0.;
  c.filtered_deriv <- 0.;
  c.primed <- false

let gains c = c.gains
let ts c = c.ts
let limits c = (c.umin, c.umax)
let windup c = c.windup

let clamp lo hi x =
  let x = match hi with Some h -> Float.min h x | None -> x in
  match lo with Some l -> Float.max l x | None -> x

let step c ~r ~y =
  let e = r -. y in
  c.integral <- c.integral +. (c.gains.ki *. c.ts *. e);
  (match c.windup with
  | Some w -> c.integral <- Float.max (-.w) (Float.min w c.integral)
  | None -> ());
  let raw_deriv = if c.primed then (e -. c.prev_error) /. c.ts else 0. in
  c.filtered_deriv <- (c.alpha *. c.filtered_deriv) +. ((1. -. c.alpha) *. raw_deriv);
  c.prev_error <- e;
  c.primed <- true;
  let u = (c.gains.kp *. e) +. c.integral +. (c.gains.kd *. c.filtered_deriv) in
  clamp c.umin c.umax u

let copy c =
  {
    c with
    integral = 0.;
    prev_error = 0.;
    filtered_deriv = 0.;
    primed = false;
  }

let ziegler_nichols ~ku ~tu =
  if ku <= 0. || tu <= 0. then invalid_arg "Pid.ziegler_nichols: non-positive parameter";
  { kp = 0.6 *. ku; ki = 1.2 *. ku /. tu; kd = 0.075 *. ku *. tu }

let to_tf ?(derivative_filter = 0.1) g ~ts =
  if ts <= 0. then invalid_arg "Pid.to_tf: non-positive ts";
  if derivative_filter < 0. || derivative_filter >= 1. then
    invalid_arg "Pid.to_tf: derivative_filter must be in [0,1)";
  (* zero-gain terms are skipped so no spurious pole/zero pairs are
     introduced (a cancelled pole at z = 1 would still break the
     response evaluation there) *)
  let terms =
    (if g.kp <> 0. then [ Tf.make ~num:[| g.kp |] ~den:[| 1. |] ] else [])
    @ (if g.ki <> 0. then
         [ Tf.make ~num:[| 0.; g.ki *. ts |] ~den:[| -1.; 1. |] ]
       else [])
    @
    if g.kd <> 0. then begin
      let a = derivative_filter in
      let c = g.kd *. (1. -. a) /. ts in
      [ Tf.make ~num:[| -.c; c |] ~den:[| -.a; 1. |] ]
    end
    else []
  in
  match terms with
  | [] -> Tf.make ~num:[| 0. |] ~den:[| 1. |]
  | first :: rest -> List.fold_left Tf.add first rest
