module G = Dataflow.Graph
module C = Dataflow.Clib
module M = Numerics.Matrix

type built = {
  graph : G.t;
  clocked : G.block_id list;
  members : G.block_id list;
  memories : G.block_id list;
  probes : (string * (G.block_id * int)) list;
  condition_feed : (string -> G.block_id * int) option;
  customize_algorithm :
    (Aaa.Algorithm.t -> Translator.Scicos_to_syndex.binding -> unit) option;
}

type t = {
  name : string;
  ts : float;
  horizon : float;
  build : unit -> built;
  cost : Sim.Engine.t -> float;
  phase_cost : (Sim.Engine.t -> from_t:float -> until_t:float -> float) option;
  condition_runtime : (iteration:int -> var:string -> int) option;
}

let make ~name ~ts ~horizon ?condition_runtime ?phase_cost ~cost build =
  if ts <= 0. then invalid_arg "Design.make: non-positive sampling period";
  if horizon <= 0. then invalid_arg "Design.make: non-positive horizon";
  { name; ts; horizon; build; cost; phase_cost; condition_runtime }

let pid_loop ~name ~plant ~x0 ~gains ~ts ~reference ~horizon () =
  if Control.Lti.input_dim plant <> 1 || Control.Lti.output_dim plant <> 1 then
    invalid_arg "Design.pid_loop: SISO plants only";
  let build () =
    let g = G.create () in
    let plant_blk = G.add g (C.lti_continuous ~name:"plant" ~x0 plant) in
    let ref_blk = G.add g (C.constant ~name:"reference" [| reference |]) in
    let sampler = G.add g (C.sample_hold ~name:"sample_y" 1) in
    let pid_blk =
      G.add g (C.pid ~name:"pid" (Control.Pid.create ~gains ~ts ()))
    in
    let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
    G.connect_data g ~src:(plant_blk, 0) ~dst:(sampler, 0);
    G.connect_data g ~src:(ref_blk, 0) ~dst:(pid_blk, 0);
    G.connect_data g ~src:(sampler, 0) ~dst:(pid_blk, 1);
    G.connect_data g ~src:(pid_blk, 0) ~dst:(hold, 0);
    G.connect_data g ~src:(hold, 0) ~dst:(plant_blk, 0);
    {
      graph = g;
      clocked = [ sampler; pid_blk; hold ];
      members = [ ref_blk; sampler; pid_blk; hold ];
      memories = [];
      probes = [ ("y", (plant_blk, 0)); ("u", (hold, 0)) ];
      condition_feed = None;
      customize_algorithm = None;
    }
  in
  let cost engine =
    Control.Metrics.iae ~reference (Sim.Engine.probe_component engine "y" 0)
  in
  let phase_cost engine ~from_t ~until_t =
    Control.Metrics.iae ~reference
      (Control.Metrics.clip ~from_t ~until_t (Sim.Engine.probe_component engine "y" 0))
  in
  make ~name ~ts ~horizon ~cost ~phase_cost build

(* common structure of the two state-feedback designs *)
let sf_loop ~name ~plant ~x0 ~controller_block ~ts ~horizon ?disturbance
    ?(cost_output = 0) () =
  let n = Control.Lti.state_dim plant in
  if Control.Lti.output_dim plant <> n then
    invalid_arg (name ^ ": plant outputs must be its states (C = I)");
  if Control.Lti.input_dim plant > 2 then
    invalid_arg (name ^ ": at most control + one disturbance input");
  let has_disturbance = Control.Lti.input_dim plant = 2 in
  if has_disturbance && disturbance = None then
    invalid_arg (name ^ ": plant has a disturbance input but no source was given");
  let build () =
    let g = G.create () in
    let plant_blk =
      G.add g
        (C.lti_continuous ~name:"plant" ~split_inputs:has_disturbance ~split_outputs:true
           ~x0 plant)
    in
    let samplers =
      List.init n (fun i ->
          let s = G.add g (C.sample_hold ~name:(Printf.sprintf "sample_x%d" i) 1) in
          G.connect_data g ~src:(plant_blk, i) ~dst:(s, 0);
          s)
    in
    let ctrl = G.add g (controller_block ()) in
    List.iteri (fun i s -> G.connect_data g ~src:(s, 0) ~dst:(ctrl, i)) samplers;
    let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
    G.connect_data g ~src:(ctrl, 0) ~dst:(hold, 0);
    G.connect_data g ~src:(hold, 0) ~dst:(plant_blk, 0);
    if has_disturbance then begin
      let d = G.add g ((Option.get disturbance) ()) in
      G.connect_data g ~src:(d, 0) ~dst:(plant_blk, 1)
    end;
    (* probe all states through a mux outside the control law *)
    let mux = G.add g (C.mux ~name:"state_probe" (Array.make n 1)) in
    List.iteri (fun i _ ->
        G.connect_data g ~src:(plant_blk, i) ~dst:(mux, i))
      (List.init n Fun.id);
    {
      graph = g;
      clocked = samplers @ [ ctrl; hold ];
      members = samplers @ [ ctrl; hold ];
      memories = [];
      probes = [ ("y", (mux, 0)); ("u", (hold, 0)) ];
      condition_feed = None;
      customize_algorithm = None;
    }
  in
  let cost engine =
    Control.Metrics.ise (Sim.Engine.probe_component engine "y" cost_output)
  in
  let phase_cost engine ~from_t ~until_t =
    Control.Metrics.ise
      (Control.Metrics.clip ~from_t ~until_t
         (Sim.Engine.probe_component engine "y" cost_output))
  in
  make ~name ~ts ~horizon ~cost ~phase_cost build

let lqg_loop ~name ~plant ~x0 ~sysd ~k ~kalman ~ts ~horizon ?(noise_sigma = 0.)
    ?(noise_seed = 1) ?disturbance ?(cost_output = 0) () =
  let p = Control.Lti.output_dim plant in
  if Control.Lti.output_dim sysd <> p then
    invalid_arg "Design.lqg_loop: observer model output dimension mismatch";
  if Control.Lti.input_dim sysd <> 1 then
    invalid_arg "Design.lqg_loop: single control input only";
  if Control.Lti.input_dim plant > 2 then
    invalid_arg "Design.lqg_loop: at most control + one disturbance input";
  let has_disturbance = Control.Lti.input_dim plant = 2 in
  if has_disturbance && disturbance = None then
    invalid_arg "Design.lqg_loop: plant has a disturbance input but no source was given";
  let build () =
    let g = G.create () in
    let plant_blk =
      G.add g
        (C.lti_continuous ~name:"plant" ~split_inputs:has_disturbance ~split_outputs:true
           ~x0 plant)
    in
    let rng = Numerics.Rng.create noise_seed in
    let samplers =
      List.init p (fun i ->
          let name = Printf.sprintf "sample_y%d" i in
          let s =
            if noise_sigma > 0. then
              G.add g (C.noise_sample_hold ~name ~rng ~sigma:noise_sigma 1)
            else G.add g (C.sample_hold ~name 1)
          in
          G.connect_data g ~src:(plant_blk, i) ~dst:(s, 0);
          s)
    in
    let ctrl = G.add g (C.lqg ~name:"lqg" ~sysd ~k ~kalman ()) in
    List.iteri (fun i s -> G.connect_data g ~src:(s, 0) ~dst:(ctrl, i)) samplers;
    let hold = G.add g (C.sample_hold ~name:"hold_u" 1) in
    G.connect_data g ~src:(ctrl, 0) ~dst:(hold, 0);
    G.connect_data g ~src:(hold, 0) ~dst:(plant_blk, 0);
    if has_disturbance then begin
      let d = G.add g ((Option.get disturbance) ()) in
      G.connect_data g ~src:(d, 0) ~dst:(plant_blk, 1)
    end;
    let mux = G.add g (C.mux ~name:"measurement_probe" (Array.make p 1)) in
    List.iteri (fun i _ -> G.connect_data g ~src:(plant_blk, i) ~dst:(mux, i))
      (List.init p Fun.id);
    {
      graph = g;
      clocked = samplers @ [ ctrl; hold ];
      members = samplers @ [ ctrl; hold ];
      memories = [];
      probes = [ ("y", (mux, 0)); ("u", (hold, 0)) ];
      condition_feed = None;
      customize_algorithm = None;
    }
  in
  let cost engine =
    Control.Metrics.ise (Sim.Engine.probe_component engine "y" cost_output)
  in
  let phase_cost engine ~from_t ~until_t =
    Control.Metrics.ise
      (Control.Metrics.clip ~from_t ~until_t
         (Sim.Engine.probe_component engine "y" cost_output))
  in
  make ~name ~ts ~horizon ~cost ~phase_cost build

let state_feedback_loop ~name ~plant ~x0 ~k ~ts ~horizon ?disturbance ?cost_output () =
  if M.rows k <> 1 || M.cols k <> Control.Lti.state_dim plant then
    invalid_arg "Design.state_feedback_loop: K must be 1 x n";
  sf_loop ~name ~plant ~x0
    ~controller_block:(fun () -> C.state_feedback ~name:"sfb" k)
    ~ts ~horizon ?disturbance ?cost_output ()

let delayed_state_feedback_loop ~name ~plant ~x0 ~k_aug ~ts ~horizon ?disturbance
    ?cost_output () =
  if M.rows k_aug <> 1 || M.cols k_aug <> Control.Lti.state_dim plant + 1 then
    invalid_arg "Design.delayed_state_feedback_loop: K must be 1 x (n+1)";
  sf_loop ~name ~plant ~x0
    ~controller_block:(fun () -> C.delayed_state_feedback ~name:"sfb" k_aug)
    ~ts ~horizon ?disturbance ?cost_output ()
