(** Control designs — the artefact the methodology's lifecycle
    revolves around.

    A design packages a {e deterministic} diagram builder (calling
    [build] twice must produce graphs with identical block insertion
    order, so that block ids can be carried from the extraction to a
    later co-simulation), the sampling period, the simulation horizon
    and the cost functional used to compare ideal and implemented
    behaviour. *)

type built = {
  graph : Dataflow.Graph.t;
  clocked : Dataflow.Graph.block_id list;
      (** blocks the stroboscopic clock activates, in data order
          (samplers, then computes, then holds) *)
  members : Dataflow.Graph.block_id list;
      (** the control-law blocks, for Scicos→SynDEx extraction *)
  memories : Dataflow.Graph.block_id list;
      (** members that are inter-iteration delays *)
  probes : (string * (Dataflow.Graph.block_id * int)) list;
      (** signals recorded during simulation *)
  condition_feed : (string -> Dataflow.Graph.block_id * int) option;
      (** data source of each conditioning variable, for the graph of
          delays *)
  customize_algorithm :
    (Aaa.Algorithm.t -> Translator.Scicos_to_syndex.binding -> unit) option;
      (** post-extraction hook, typically declaring conditioning via
          {!Translator.Scicos_to_syndex.declare_condition} *)
}

type t = {
  name : string;
  ts : float;  (** sampling period of the control law *)
  horizon : float;  (** co-simulation duration *)
  build : unit -> built;
  cost : Sim.Engine.t -> float;
      (** performance cost of a completed simulation (lower is
          better) — e.g. IAE of the tracked output *)
  phase_cost : (Sim.Engine.t -> from_t:float -> until_t:float -> float) option;
      (** windowed variant of [cost] over [\[from_t, until_t\]]
          (typically the same integral on a {!Control.Metrics.clip}ped
          trace, so adjacent windows sum to [cost]) — lets
          {!Fault.Robustness} split a faulty run into nominal /
          transient / degraded phases *)
  condition_runtime : (iteration:int -> var:string -> int) option;
      (** run-time condition values for executive simulation *)
}

val make :
  name:string ->
  ts:float ->
  horizon:float ->
  ?condition_runtime:(iteration:int -> var:string -> int) ->
  ?phase_cost:(Sim.Engine.t -> from_t:float -> until_t:float -> float) ->
  cost:(Sim.Engine.t -> float) ->
  (unit -> built) ->
  t
(** Generic constructor for custom diagrams.  Raises on non-positive
    [ts] or [horizon].  The [pid_loop] / state-feedback / LQG helpers
    below all supply a [phase_cost] consistent with their [cost]. *)

val pid_loop :
  name:string ->
  plant:Control.Lti.t ->
  x0:float array ->
  gains:Control.Pid.gains ->
  ts:float ->
  reference:float ->
  horizon:float ->
  unit ->
  t
(** The paper's Fig. 2 loop: continuous SISO [plant], reference step,
    one sampling S/H, a PID controller, one actuation S/H.  Member
    names: ["reference"], ["sample_y"], ["pid"], ["hold_u"].  Probes:
    ["y"] (plant output), ["u"] (held control).  Cost: IAE of [y]
    against [reference] over the horizon. *)

val state_feedback_loop :
  name:string ->
  plant:Control.Lti.t ->
  x0:float array ->
  k:Numerics.Matrix.t ->
  ts:float ->
  horizon:float ->
  ?disturbance:(unit -> Dataflow.Block.t) ->
  ?cost_output:int ->
  unit ->
  t
(** Full-state regulation loop for a single-input plant whose outputs
    are its states ([C = I]): one width-1 sampler per state (member
    names ["sample_x<i>"]), a static gain controller ["sfb"]
    ([u = −K·x]), one hold ["hold_u"].  [disturbance] builds a source
    block wired to the plant's second input when the plant has one.
    Probes ["y"] (all states via the plant) and ["u"].  Cost: ISE of
    state component [cost_output] (default 0). *)

val lqg_loop :
  name:string ->
  plant:Control.Lti.t ->
  x0:float array ->
  sysd:Control.Lti.t ->
  k:Numerics.Matrix.t ->
  kalman:Control.Kalman.result ->
  ts:float ->
  horizon:float ->
  ?noise_sigma:float ->
  ?noise_seed:int ->
  ?disturbance:(unit -> Dataflow.Block.t) ->
  ?cost_output:int ->
  unit ->
  t
(** Output-feedback (LQG) regulation loop: the continuous [plant]
    exposes only its measured outputs; one width-1 sampler per
    measurement (member names ["sample_y<i>"], optionally corrupted by
    Gaussian noise of deviation [noise_sigma], seeded deterministically
    with [noise_seed]), an ["lqg"] observer-controller block built on
    the discrete model [sysd] with gains [k]/[kalman], and one hold
    ["hold_u"].  [disturbance] feeds the plant's second input when
    present.  Probes ["y"] (measurements) and ["u"].  Cost: ISE of
    measurement [cost_output] (default 0). *)

val delayed_state_feedback_loop :
  name:string ->
  plant:Control.Lti.t ->
  x0:float array ->
  k_aug:Numerics.Matrix.t ->
  ts:float ->
  horizon:float ->
  ?disturbance:(unit -> Dataflow.Block.t) ->
  ?cost_output:int ->
  unit ->
  t
(** Same loop with the calibration controller
    [u = −K_aug·\[x; u_prev\]] (see {!Calibrate.lqr_delay_gain}) —
    identical structure so costs are directly comparable. *)
