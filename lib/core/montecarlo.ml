type summary = {
  runs : int;
  seeds : int array;
  costs : float array;
  mean : float;
  stddev : float;
  cmin : float;
  cmax : float;
  p95 : float;
  static_cost : float;
}

let run ?(runs = 20) ?(base_seed = 1000) ?(law = Exec.Timing_law.Uniform)
    ?(bcet_frac = 0.4) ?pool ?cache ~design ~implementation () =
  if runs <= 0 then invalid_arg "Montecarlo.run: non-positive run count";
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let cost_with mode =
    let engine = Methodology.simulate_implemented ~mode design implementation in
    (design : Design.t).Design.cost engine
  in
  let seeds = Array.init runs (fun i -> base_seed + i) in
  (* the schedule digest is the expensive key part; compute it once *)
  let problem_key =
    lazy
      (match cache with
      | None -> ""
      | Some _ ->
          Explore.Key.digest
            [
              "scilife.montecarlo";
              design.Design.name;
              Explore.Key.float design.Design.ts;
              Explore.Key.float design.Design.horizon;
              Explore.Key.schedule implementation.Methodology.schedule;
              Explore.Key.law law;
              Explore.Key.float bcet_frac;
            ])
  in
  (* per-seed evaluation reuses the calling domain's compiled session
     (reseed + reset, bit-for-bit equal to the rebuild [cost_with]
     did here before — the Session determinism contract) *)
  let skey = lazy (Session.key ~law ~bcet_frac ~design ~implementation ()) in
  let session_cost seed =
    let s =
      Session.obtain ~key:(Lazy.force skey) ~create:(fun () ->
          Session.create ~law ~bcet_frac ~design ~implementation ())
    in
    Session.cost s ~seed
  in
  let cost_of seed =
    match cache with
    | None -> session_cost seed
    | Some c ->
        Explore.Cache.find_or_add c
          ~key:(Explore.Key.digest [ Lazy.force problem_key; Explore.Key.int seed ])
          (fun () -> session_cost seed)
  in
  let costs = Array.of_list (Explore.Pool.map pool cost_of (Array.to_list seeds)) in
  let static_cost = cost_with Translator.Delay_graph.Static_wcet in
  {
    runs;
    seeds;
    costs;
    mean = Numerics.Stats.mean costs;
    stddev = Numerics.Stats.stddev costs;
    cmin = Numerics.Stats.min costs;
    cmax = Numerics.Stats.max costs;
    p95 = Numerics.Stats.percentile costs 95.;
    static_cost;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>monte-carlo over %d runs (seeds %d..%d):@,\
    \  mean = %.6g  std = %.6g@,\
    \  min = %.6g  p95 = %.6g  max = %.6g@,\
    \  static (WCET) cost = %.6g@]"
    s.runs s.seeds.(0)
    s.seeds.(s.runs - 1)
    s.mean s.stddev s.cmin s.p95 s.cmax s.static_cost
