type point = {
  parameter : float;
  ideal_cost : float;
  implemented_cost : float;
  degradation_pct : float;
}

let default_fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let get_pool = function Some p -> p | None -> Explore.Pool.default ()

let latency ?(fractions = default_fractions) ?pool ~design ~architecture ~durations_of () =
  let pool = get_pool pool in
  let ideal_cost =
    (design : Design.t).Design.cost (Methodology.simulate_ideal design)
  in
  Explore.Pool.map pool
    (fun fraction ->
      let implementation =
        Methodology.implement ~design ~architecture ~durations:(durations_of fraction) ()
      in
      let implemented_cost =
        design.Design.cost (Methodology.simulate_implemented design implementation)
      in
      {
        parameter = fraction;
        ideal_cost;
        implemented_cost;
        degradation_pct =
          Control.Metrics.degradation_pct ~ideal:ideal_cost ~actual:implemented_cost;
      })
    fractions

let jitter ?(bcet_fracs = [ 1.0; 0.8; 0.6; 0.4; 0.2 ]) ?(law = Exec.Timing_law.Uniform)
    ?(seed = 17) ?pool ~design ~implementation () =
  let pool = get_pool pool in
  let ideal_cost =
    (design : Design.t).Design.cost (Methodology.simulate_ideal design)
  in
  Explore.Pool.map pool
    (fun bcet_frac ->
      let mode =
        if bcet_frac >= 1. then Translator.Delay_graph.Static_wcet
        else Translator.Delay_graph.Jittered { law; bcet_frac; seed }
      in
      let implemented_cost =
        design.Design.cost (Methodology.simulate_implemented ~mode design implementation)
      in
      {
        parameter = bcet_frac;
        ideal_cost;
        implemented_cost;
        degradation_pct =
          Control.Metrics.degradation_pct ~ideal:ideal_cost ~actual:implemented_cost;
      })
    bcet_fracs

let instability_threshold ?(threshold = 20.) ?(resolution = 8) ~design ~architecture
    ~durations_of () =
  if threshold <= 1. then invalid_arg "Sweep.instability_threshold: threshold must exceed 1";
  let ideal_cost =
    (design : Design.t).Design.cost (Methodology.simulate_ideal design)
  in
  let unstable fraction =
    let implementation =
      Methodology.implement ~design ~architecture ~durations:(durations_of fraction) ()
    in
    let cost =
      design.Design.cost (Methodology.simulate_implemented design implementation)
    in
    (not (Float.is_finite cost)) || cost > threshold *. ideal_cost
  in
  if not (unstable 0.99) then None
  else begin
    let lo = ref 0.02 and hi = ref 0.99 in
    if unstable !lo then Some !lo
    else begin
      for _ = 1 to resolution do
        let mid = (!lo +. !hi) /. 2. in
        if unstable mid then hi := mid else lo := mid
      done;
      Some !hi
    end
  end
