type t = {
  design : Design.t;
  engine : Sim.Engine.t;
  rng : Numerics.Rng.t;
}

let meth_tag = function
  | None -> "meth:default"
  | Some Numerics.Ode.Euler -> "meth:euler"
  | Some Numerics.Ode.Rk2 -> "meth:rk2"
  | Some Numerics.Ode.Rk4 -> "meth:rk4"
  | Some (Numerics.Ode.Rkf45 { rtol; atol }) ->
      Printf.sprintf "meth:rkf45:%h:%h" rtol atol

let key ?meth ?(law = Exec.Timing_law.Uniform) ?(bcet_frac = 0.4)
    ?comm_jitter_frac ~design ~implementation () =
  Explore.Key.digest
    [
      "scilife.session";
      (design : Design.t).Design.name;
      Explore.Key.float design.Design.ts;
      Explore.Key.float design.Design.horizon;
      Explore.Key.schedule implementation.Methodology.schedule;
      Explore.Key.law law;
      Explore.Key.float bcet_frac;
      (match comm_jitter_frac with
      | None -> "nojitter"
      | Some f -> Explore.Key.float f);
      meth_tag meth;
    ]

let create ?meth ?(law = Exec.Timing_law.Uniform) ?(bcet_frac = 0.4)
    ?comm_jitter_frac ~design ~implementation () =
  (* [Design.build] is deterministic, so the binding's block ids
     recorded at extraction are valid in this fresh instance — the
     same invariant [Methodology.simulate_implemented] relies on *)
  let built = (design : Design.t).Design.build () in
  let rng = Numerics.Rng.create 0 in
  let _dg =
    Translator.Cosim.attach_delay_graph
      ~mode:(Translator.Delay_graph.Jittered { law; bcet_frac; seed = 0 })
      ?comm_jitter_frac ?condition_feed:built.Design.condition_feed
      ~graph:built.Design.graph ~schedule:implementation.Methodology.schedule
      ~binding:implementation.Methodology.binding ~rng ()
  in
  let engine = Sim.Engine.create ?meth built.Design.graph in
  List.iter
    (fun (name, (block, port)) -> Sim.Engine.add_probe engine ~name ~block ~port)
    built.Design.probes;
  { design; engine; rng }

let cost t ~seed =
  Numerics.Rng.reseed t.rng seed;
  Sim.Engine.reset t.engine;
  Sim.Engine.run ~t_end:t.design.Design.horizon t.engine;
  t.design.Design.cost t.engine

let engine t = t.engine

(* one cached session per domain: the exploration scheduler keeps a
   design's candidates mostly contiguous on a domain, so a single
   keyed slot captures nearly all the reuse without holding more than
   one compiled engine alive per domain *)
let slot : (string * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let obtain ~key:k ~create:make =
  let r = Domain.DLS.get slot in
  match !r with
  | Some (k', s) when String.equal k' k -> s
  | _ ->
      let s = make () in
      r := Some (k, s);
      s

let clear_cached () = Domain.DLS.get slot := None
