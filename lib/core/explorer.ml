module Grid = Explore.Grid
module Key = Explore.Key

type outcome = {
  o_cost : float;
  o_io_latency : float;
  o_makespan : float;
  o_fits_period : bool;
  o_infeasible : bool;
}

type point = {
  design_name : string;
  ts : float;
  platform : string;
  price : float;
  fraction : float;
  mode : Translator.Delay_graph.mode;
  ideal_cost : float;
  cost : float;
  degradation_pct : float;
  io_latency : float;
  makespan : float;
  fits_period : bool;
  infeasible : bool;
}

let design_fields (design : Design.t) alg_key =
  [
    design.Design.name;
    Key.float design.Design.ts;
    Key.float design.Design.horizon;
    alg_key;
  ]

let ideal_key design alg_key = Key.digest (("scilife.ideal" :: design_fields design alg_key))

let candidate_key ?strategy design alg_key (c : Grid.candidate) durations =
  Key.digest
    ("scilife.impl"
     :: design_fields design alg_key
    @ [
        Key.architecture c.Grid.platform.Grid.architecture;
        Key.durations durations;
        Key.mode c.Grid.mode;
        Key.strategy strategy;
      ])

let evaluate ?pool ?cache ?strategy ~designs ~candidates () =
  if designs = [] then invalid_arg "Explorer.evaluate: no designs";
  if candidates = [] then invalid_arg "Explorer.evaluate: no candidates";
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let memo key f =
    match cache with None -> f () | Some c -> Explore.Cache.find_or_add c ~key f
  in
  (* one extraction + ideal co-simulation per design (the periods axis) *)
  let prepared =
    Explore.Pool.map pool
      (fun (design : Design.t) ->
        let _, algorithm, _ = Methodology.extract design in
        let alg_key = Key.algorithm algorithm in
        let ideal =
          memo (ideal_key design alg_key) (fun () ->
              {
                o_cost = design.Design.cost (Methodology.simulate_ideal design);
                o_io_latency = 0.;
                o_makespan = 0.;
                o_fits_period = true;
                o_infeasible = false;
              })
        in
        (design, alg_key, ideal.o_cost))
      designs
  in
  let jobs =
    List.concat_map
      (fun (design, alg_key, ideal_cost) ->
        List.map (fun c -> (design, alg_key, ideal_cost, c)) candidates)
      prepared
  in
  Explore.Pool.map pool
    (fun ((design : Design.t), alg_key, ideal_cost, (c : Grid.candidate)) ->
      let durations = c.Grid.platform.Grid.durations_of c.Grid.fraction in
      let o =
        memo (candidate_key ?strategy design alg_key c durations) (fun () ->
            match
              Methodology.implement ?strategy ~design
                ~architecture:c.Grid.platform.Grid.architecture ~durations ()
            with
            | impl ->
                let static = impl.Methodology.static in
                let cost =
                  design.Design.cost
                    (Methodology.simulate_implemented ~mode:c.Grid.mode design impl)
                in
                {
                  o_cost = cost;
                  o_io_latency = Translator.Temporal_model.io_latency static;
                  o_makespan = static.Translator.Temporal_model.makespan;
                  o_fits_period = static.Translator.Temporal_model.fits_period;
                  o_infeasible = false;
                }
            | exception Aaa.Adequation.Infeasible _ ->
                {
                  o_cost = Float.infinity;
                  o_io_latency = Float.infinity;
                  o_makespan = Float.infinity;
                  o_fits_period = false;
                  o_infeasible = true;
                })
      in
      {
        design_name = design.Design.name;
        ts = design.Design.ts;
        platform = c.Grid.platform.Grid.label;
        price = c.Grid.platform.Grid.price;
        fraction = c.Grid.fraction;
        mode = c.Grid.mode;
        ideal_cost;
        cost = o.o_cost;
        degradation_pct =
          Control.Metrics.degradation_pct ~ideal:ideal_cost ~actual:o.o_cost;
        io_latency = o.o_io_latency;
        makespan = o.o_makespan;
        fits_period = o.o_fits_period;
        infeasible = o.o_infeasible;
      })
    jobs

let feasible points =
  List.filter (fun p -> (not p.infeasible) && p.fits_period && Float.is_finite p.cost) points

let pareto points =
  Explore.Pareto.front ~objectives:(fun p -> [| p.price; p.cost |]) (feasible points)

let mode_tag = function
  | Translator.Delay_graph.Static_wcet -> "wcet"
  | Translator.Delay_graph.Jittered { seed; _ } -> Printf.sprintf "seed=%d" seed

let row p =
  Printf.sprintf "| %s | %g | %s | %.1f | %.2f | %s | %.6g | %.6g | %+.2f | %.4g | %s |"
    p.design_name p.ts p.platform p.price p.fraction (mode_tag p.mode) p.ideal_cost p.cost
    p.degradation_pct p.io_latency
    (if p.infeasible then "infeasible" else if p.fits_period then "yes" else "OVERRUNS")

let table points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "| design | Ts | platform | price | f | mode | ideal | cost | degr % | io lat | fits |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter (fun p -> Buffer.add_string buf (row p ^ "\n")) points;
  Buffer.contents buf

let markdown_section ?cache points =
  let front = pareto points in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "## Design-space exploration";
  line "";
  line "%d candidate evaluations (%d feasible, %d on the Pareto front)."
    (List.length points)
    (List.length (feasible points))
    (List.length front);
  line "";
  line "%s" (table points);
  line "### Pareto front (price × cost, minimised)";
  line "";
  line "%s"
    (table (Explore.Pareto.sort_by ~objective:(fun p -> p.price) front));
  (match cache with
  | Some c ->
      line "### Evaluation cache";
      line "";
      line "%s" (Format.asprintf "%a" Explore.Cache.pp_stats (Explore.Cache.stats c))
  | None -> ());
  Buffer.contents buf

let csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "design,ts,platform,price,fraction,mode,ideal_cost,cost,degradation_pct,io_latency,makespan,fits_period,infeasible\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%g,%s,%g,%g,%s,%.17g,%.17g,%.17g,%.17g,%.17g,%b,%b\n"
           p.design_name p.ts p.platform p.price p.fraction (mode_tag p.mode) p.ideal_cost
           p.cost p.degradation_pct p.io_latency p.makespan p.fits_period p.infeasible))
    points;
  Buffer.contents buf
