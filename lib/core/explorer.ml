module Grid = Explore.Grid
module Key = Explore.Key

type outcome = {
  o_cost : float;
  o_io_latency : float;
  o_makespan : float;
  o_fits_period : bool;
  o_infeasible : bool;
}

type point = {
  design_name : string;
  ts : float;
  platform : string;
  price : float;
  fraction : float;
  mode : Translator.Delay_graph.mode;
  ideal_cost : float;
  cost : float;
  degradation_pct : float;
  io_latency : float;
  makespan : float;
  fits_period : bool;
  infeasible : bool;
}

let design_fields (design : Design.t) alg_key =
  [
    design.Design.name;
    Key.float design.Design.ts;
    Key.float design.Design.horizon;
    alg_key;
  ]

let ideal_key design alg_key = Key.digest (("scilife.ideal" :: design_fields design alg_key))

let candidate_key ?strategy design alg_key (c : Grid.candidate) durations =
  Key.digest
    ("scilife.impl"
     :: design_fields design alg_key
    @ [
        Key.architecture c.Grid.platform.Grid.architecture;
        Key.durations durations;
        Key.mode c.Grid.mode;
        Key.strategy strategy;
      ])

(* ------------------------------------------------------------------ *)
(* per-domain implementation reuse

   Along the seeds axis of a grid, consecutive candidates share the
   (architecture, durations, strategy) cell and differ only in the
   jitter seed — so the adequation can be done once per cell per
   domain, and the co-simulation engine compiled once per schedule
   ([Session]) and reseeded per candidate.  One slot per domain is
   enough because the grid's row-major order keeps seeds innermost. *)

type mapping = Mapped of Methodology.implementation | Unmappable

let impl_slot : (string * mapping) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let impl_key ?strategy design alg_key (c : Grid.candidate) durations =
  Key.digest
    ("scilife.mapping"
     :: design_fields design alg_key
    @ [
        Key.architecture c.Grid.platform.Grid.architecture;
        Key.durations durations;
        Key.strategy strategy;
      ])

let obtain_mapping ?strategy design alg_key (c : Grid.candidate) durations =
  let k = impl_key ?strategy design alg_key c durations in
  let r = Domain.DLS.get impl_slot in
  match !r with
  | Some (k', m) when String.equal k' k -> m
  | _ ->
      let m =
        match
          Methodology.implement ?strategy ~design
            ~architecture:c.Grid.platform.Grid.architecture ~durations ()
        with
        | impl -> Mapped impl
        | exception Aaa.Adequation.Infeasible _ -> Unmappable
      in
      r := Some (k, m);
      m

let infeasible_outcome =
  {
    o_cost = Float.infinity;
    o_io_latency = Float.infinity;
    o_makespan = Float.infinity;
    o_fits_period = false;
    o_infeasible = true;
  }

let outcome_of_impl design mode (impl : Methodology.implementation) ~engine_reuse =
  let static = impl.Methodology.static in
  let cost =
    match mode with
    | Translator.Delay_graph.Jittered { law; bcet_frac; seed } when engine_reuse ->
        (* reseed + reset one compiled session instead of rebuilding
           the diagram and delay graph — bit-for-bit equal to the
           rebuild by the [Session] determinism contract *)
        let skey = Session.key ~law ~bcet_frac ~design ~implementation:impl () in
        let s =
          Session.obtain ~key:skey ~create:(fun () ->
              Session.create ~law ~bcet_frac ~design ~implementation:impl ())
        in
        Session.cost s ~seed
    | mode ->
        (design : Design.t).Design.cost
          (Methodology.simulate_implemented ~mode design impl)
  in
  {
    o_cost = cost;
    o_io_latency = Translator.Temporal_model.io_latency static;
    o_makespan = static.Translator.Temporal_model.makespan;
    o_fits_period = static.Translator.Temporal_model.fits_period;
    o_infeasible = false;
  }

let eval_job ?cache ?strategy ~engine_reuse
    ((design : Design.t), alg_key, ideal_cost, (c : Grid.candidate)) =
  let memo key f =
    match cache with None -> f () | Some ca -> Explore.Cache.find_or_add ca ~key f
  in
  let durations = c.Grid.platform.Grid.durations_of c.Grid.fraction in
  let o =
    memo (candidate_key ?strategy design alg_key c durations) (fun () ->
        if engine_reuse then
          match obtain_mapping ?strategy design alg_key c durations with
          | Unmappable -> infeasible_outcome
          | Mapped impl -> outcome_of_impl design c.Grid.mode impl ~engine_reuse
        else
          match
            Methodology.implement ?strategy ~design
              ~architecture:c.Grid.platform.Grid.architecture ~durations ()
          with
          | impl -> outcome_of_impl design c.Grid.mode impl ~engine_reuse
          | exception Aaa.Adequation.Infeasible _ -> infeasible_outcome)
  in
  {
    design_name = design.Design.name;
    ts = design.Design.ts;
    platform = c.Grid.platform.Grid.label;
    price = c.Grid.platform.Grid.price;
    fraction = c.Grid.fraction;
    mode = c.Grid.mode;
    ideal_cost;
    cost = o.o_cost;
    degradation_pct =
      Control.Metrics.degradation_pct ~ideal:ideal_cost ~actual:o.o_cost;
    io_latency = o.o_io_latency;
    makespan = o.o_makespan;
    fits_period = o.o_fits_period;
    infeasible = o.o_infeasible;
  }

let prepare ?pool ?cache designs =
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let memo key f =
    match cache with None -> f () | Some c -> Explore.Cache.find_or_add c ~key f
  in
  (* one extraction + ideal co-simulation per design (the periods axis) *)
  Explore.Pool.map pool
    (fun (design : Design.t) ->
      let _, algorithm, _ = Methodology.extract design in
      let alg_key = Key.algorithm algorithm in
      let ideal =
        memo (ideal_key design alg_key) (fun () ->
            {
              o_cost = design.Design.cost (Methodology.simulate_ideal design);
              o_io_latency = 0.;
              o_makespan = 0.;
              o_fits_period = true;
              o_infeasible = false;
            })
      in
      (design, alg_key, ideal.o_cost))
    designs

let evaluate ?pool ?cache ?strategy ?(engine_reuse = true) ?chunk ~designs
    ~candidates () =
  if designs = [] then invalid_arg "Explorer.evaluate: no designs";
  if candidates = [] then invalid_arg "Explorer.evaluate: no candidates";
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let prepared = prepare ~pool ?cache designs in
  let jobs =
    List.concat_map
      (fun (design, alg_key, ideal_cost) ->
        List.map (fun c -> (design, alg_key, ideal_cost, c)) candidates)
      prepared
  in
  Explore.Pool.map ?chunk pool (eval_job ?cache ?strategy ~engine_reuse) jobs

(* ------------------------------------------------------------------ *)
(* streaming evaluation *)

type progress = {
  p_evaluated : int;
  p_feasible : int;
  p_infeasible : int;
  p_front : point list;
}

type summary = {
  s_evaluated : int;
  s_feasible : int;
  s_infeasible : int;
  s_front : point list;
  s_samples : (int * point) list;
}

type acc = {
  a_count : int;
  a_feasible : int;
  a_infeasible : int;
  a_front : point Explore.Pareto.Front.t;
  a_samples : (int * point) list;  (* newest first *)
}

let point_feasible p = (not p.infeasible) && p.fits_period && Float.is_finite p.cost

let front_points f =
  Explore.Pareto.sort_by ~objective:(fun p -> p.price)
    (Explore.Pareto.Front.elements f)

let evaluate_seq ?pool ?cache ?strategy ?(engine_reuse = true) ?chunk
    ?snapshot_every ?snapshot ?(sample_every = 0) ~designs ~candidates () =
  if designs = [] then invalid_arg "Explorer.evaluate_seq: no designs";
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let prepared = prepare ~pool ?cache designs in
  let jobs =
    Seq.concat_map
      (fun (design, alg_key, ideal_cost) ->
        Seq.map (fun c -> (design, alg_key, ideal_cost, c)) candidates)
      (List.to_seq prepared)
  in
  let reduce a p =
    (* runs strictly in input order on the submitting domain, so
       [a_count] is the point's global index *)
    let n = a.a_count in
    let a =
      if point_feasible p then
        {
          a with
          a_count = n + 1;
          a_feasible = a.a_feasible + 1;
          a_front =
            Explore.Pareto.Front.insert a.a_front [| p.price; p.cost |] p;
        }
      else
        {
          a with
          a_count = n + 1;
          a_infeasible = (a.a_infeasible + if p.infeasible then 1 else 0);
        }
    in
    if sample_every > 0 && n mod sample_every = 0 then
      { a with a_samples = (n, p) :: a.a_samples }
    else a
  in
  let snapshot =
    Option.map
      (fun cb ~evaluated a ->
        cb
          {
            p_evaluated = evaluated;
            p_feasible = a.a_feasible;
            p_infeasible = a.a_infeasible;
            p_front = front_points a.a_front;
          })
      snapshot
  in
  let a =
    Explore.Pool.map_reduce_seq ?chunk ?snapshot_every ?snapshot pool
      ~map:(eval_job ?cache ?strategy ~engine_reuse)
      ~reduce
      ~init:
        {
          a_count = 0;
          a_feasible = 0;
          a_infeasible = 0;
          a_front = Explore.Pareto.Front.empty;
          a_samples = [];
        }
      jobs
  in
  {
    s_evaluated = a.a_count;
    s_feasible = a.a_feasible;
    s_infeasible = a.a_infeasible;
    s_front = front_points a.a_front;
    s_samples = List.rev a.a_samples;
  }

let feasible points =
  List.filter (fun p -> (not p.infeasible) && p.fits_period && Float.is_finite p.cost) points

let pareto points =
  Explore.Pareto.front ~objectives:(fun p -> [| p.price; p.cost |]) (feasible points)

let mode_tag = function
  | Translator.Delay_graph.Static_wcet -> "wcet"
  | Translator.Delay_graph.Jittered { seed; _ } -> Printf.sprintf "seed=%d" seed

let row p =
  Printf.sprintf "| %s | %g | %s | %.1f | %.2f | %s | %.6g | %.6g | %+.2f | %.4g | %s |"
    p.design_name p.ts p.platform p.price p.fraction (mode_tag p.mode) p.ideal_cost p.cost
    p.degradation_pct p.io_latency
    (if p.infeasible then "infeasible" else if p.fits_period then "yes" else "OVERRUNS")

let table points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "| design | Ts | platform | price | f | mode | ideal | cost | degr % | io lat | fits |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter (fun p -> Buffer.add_string buf (row p ^ "\n")) points;
  Buffer.contents buf

let markdown_section ?cache points =
  let front = pareto points in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "## Design-space exploration";
  line "";
  line "%d candidate evaluations (%d feasible, %d on the Pareto front)."
    (List.length points)
    (List.length (feasible points))
    (List.length front);
  line "";
  line "%s" (table points);
  line "### Pareto front (price × cost, minimised)";
  line "";
  line "%s"
    (table (Explore.Pareto.sort_by ~objective:(fun p -> p.price) front));
  (match cache with
  | Some c ->
      line "### Evaluation cache";
      line "";
      line "%s" (Format.asprintf "%a" Explore.Cache.pp_stats (Explore.Cache.stats c))
  | None -> ());
  Buffer.contents buf

let csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "design,ts,platform,price,fraction,mode,ideal_cost,cost,degradation_pct,io_latency,makespan,fits_period,infeasible\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%g,%s,%g,%g,%s,%.17g,%.17g,%.17g,%.17g,%.17g,%b,%b\n"
           p.design_name p.ts p.platform p.price p.fraction (mode_tag p.mode) p.ideal_cost
           p.cost p.degradation_pct p.io_latency p.makespan p.fits_period p.infeasible))
    points;
  Buffer.contents buf
