(** Monte-Carlo evaluation of an implementation: the implemented
    co-simulation repeated over many execution-time draws, so the
    design decision rests on a cost {e distribution} rather than a
    single worst-case trace.

    The WCET-static co-simulation bounds the degradation; under
    jittered laws the actual cost varies run to run.  This module runs
    [runs] co-simulations with consecutive seeds and summarises. *)

type summary = {
  runs : int;
  seeds : int array;
      (** the per-run seeds ([base_seed + i]), so any draw — e.g. the
          worst case — can be replayed standalone with
          [simulate_implemented ~mode:(Jittered { law; bcet_frac;
          seed = seeds.(i) })] *)
  costs : float array;
      (** one implemented cost per run, in seed order ([costs.(i)] is
          the draw of [seeds.(i)]); parallel evaluation through the
          pool preserves this order bit-for-bit *)
  mean : float;
  stddev : float;
  cmin : float;
  cmax : float;
  p95 : float;
  static_cost : float;
      (** cost of the deterministic WCET (static) co-simulation — an
          upper envelope the samples should respect for monotone
          latency-cost designs *)
}

val run :
  ?runs:int ->
  ?base_seed:int ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  ?pool:Explore.Pool.t ->
  ?cache:float Explore.Cache.t ->
  design:Design.t ->
  implementation:Methodology.implementation ->
  unit ->
  summary
(** Default 20 runs from [base_seed] 1000, uniform law over
    [\[bcet_frac·WCET, WCET\]] with [bcet_frac] 0.4.  The per-seed
    co-simulations run on [pool] (default {!Explore.Pool.default});
    with [cache], each draw is memoized under the canonical digest of
    (design params, schedule, law, BCET fraction, seed), so repeated
    summaries of the same implementation replay from the cache.
    Raises [Invalid_argument] on [runs <= 0]. *)

val pp : Format.formatter -> summary -> unit
