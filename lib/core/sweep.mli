(** Parameter sweeps over the lifecycle — the library form of the
    latency/jitter experiments, so downstream users can produce
    Cervin-style cost curves for their own designs in a few lines. *)

type point = {
  parameter : float;  (** the swept value *)
  ideal_cost : float;
  implemented_cost : float;
  degradation_pct : float;
}

val latency :
  ?fractions:float list ->
  ?pool:Explore.Pool.t ->
  design:Design.t ->
  architecture:Aaa.Architecture.t ->
  durations_of:(float -> Aaa.Durations.t) ->
  unit ->
  point list
(** [latency ~design ~architecture ~durations_of ()] evaluates the
    design for each latency fraction (default
    [0.1, 0.2, …, 0.9]), where [durations_of f] builds the WCET table
    putting the static I/O latency at [f·Ts].  The ideal cost is
    computed once.  The per-fraction evaluations run on [pool]
    (default {!Explore.Pool.default}, i.e. parallel on multi-core
    hosts); the returned points are identical to a sequential sweep,
    in fraction order. *)

val jitter :
  ?bcet_fracs:float list ->
  ?law:Exec.Timing_law.t ->
  ?seed:int ->
  ?pool:Explore.Pool.t ->
  design:Design.t ->
  implementation:Methodology.implementation ->
  unit ->
  point list
(** Sweeps the BCET fraction of the jittered graph-of-delays
    co-simulation (default [1.0, 0.8, …, 0.2]; [1.0] is the
    deterministic WCET replay).  [parameter] is the BCET fraction.
    Evaluations run on [pool] with sequential-identical results. *)

val instability_threshold :
  ?threshold:float ->
  ?resolution:int ->
  design:Design.t ->
  architecture:Aaa.Architecture.t ->
  durations_of:(float -> Aaa.Durations.t) ->
  unit ->
  float option
(** Bisection for the smallest latency fraction at which the
    implemented cost exceeds [threshold × ideal] (default 20×) —
    the empirical counterpart of {!Control.Freq.margins}'s delay
    margin.  [None] when the loop stays below the threshold up to
    fraction 0.99.  [resolution] bisection steps (default 8). *)
