(** Reusable compiled co-simulation sessions — one built diagram,
    jittered graph of delays and compiled {!Sim.Engine} evaluated for
    many seeds by reseed + reset instead of a rebuild per scenario.

    This is the engine-reuse core shared by the serve layer's batches
    ([Serve.Batch]) and the design-space explorer: compilation
    dominates a single candidate evaluation (~ms vs ~100µs of actual
    simulation on small designs), so sweeping seeds through one
    session is the difference between rebuild-bound and
    simulation-bound throughput.

    Determinism contract: [cost s ~seed] is bit-for-bit equal to
    evaluating the same design on a freshly built engine with
    [Jittered { law; bcet_frac; seed }] — the jitter generator's whole
    state is the reseeded four words, the diagram builder is
    deterministic, and {!Sim.Engine.reset} restores the compiled
    engine's initial state exactly ([test/test_serve.ml] and
    [test/test_explore.ml] enforce the equality). *)

type t
(** One compiled engine plus its reseedable jitter source. *)

val key :
  ?meth:Numerics.Ode.method_ ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  ?comm_jitter_frac:float ->
  design:Design.t ->
  implementation:Methodology.implementation ->
  unit ->
  string
(** Canonical digest of everything {!create} compiles in: two calls
    with equal keys (same defaults applied) build interchangeable
    sessions.  Drives the per-domain reuse slot of {!obtain}. *)

val create :
  ?meth:Numerics.Ode.method_ ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  ?comm_jitter_frac:float ->
  design:Design.t ->
  implementation:Methodology.implementation ->
  unit ->
  t
(** Builds the implemented co-simulation (diagram + jittered graph of
    delays + probes) and compiles it once.  Defaults match
    {!Montecarlo.run}: uniform law over [\[bcet_frac·WCET, WCET\]]
    with [bcet_frac] 0.4. *)

val cost : t -> seed:int -> float
(** Reseeds, resets, runs to the design's horizon and returns the
    design's cost.  Any number of calls, any seed order. *)

val engine : t -> Sim.Engine.t
(** The compiled engine, as left by the last {!cost} run (probes
    recorded) — for callers needing more than the scalar cost. *)

val obtain : key:string -> create:(unit -> t) -> t
(** [obtain ~key ~create] returns the calling {e domain}'s cached
    session when its key matches, else calls [create] and caches the
    result (one slot per domain — the scheduler keeps a design's
    candidates mostly contiguous, so one slot captures nearly all
    reuse while holding at most one compiled engine per domain).
    Sessions are mutable and must not cross domains; this is the only
    supported way to share them across evaluations. *)

val clear_cached : unit -> unit
(** Drops the calling domain's cached session (tests / memory). *)
