(** Textual reports of lifecycle evaluations. *)

val comparison : Design.t -> Methodology.comparison -> string
(** Multi-line summary: costs, degradation, schedule makespan and
    static I/O latencies. *)

val latency_table :
  Aaa.Algorithm.t -> Translator.Temporal_model.series list -> string
(** One row per operation: mean/min/max latency and jitter (from a
    measured execution trace). *)

val markdown :
  ?montecarlo:Montecarlo.summary ->
  ?trace:Exec.Machine.trace ->
  ?robustness:string ->
  ?exploration:string ->
  ?bounds:string ->
  ?lint:string ->
  Design.t ->
  Methodology.comparison ->
  string
(** A complete markdown report for one lifecycle evaluation: the
    cost comparison, the static temporal model, the planned Gantt
    chart, and — when provided — the Monte-Carlo cost distribution,
    the measured latency table and one executed iteration's chart.
    [robustness] appends a pre-rendered robustness section (see
    [Fault.Fault_report.markdown_section]; a plain string keeps the
    core library independent of [fault], which builds on top of it).
    [exploration] appends a pre-rendered design-space exploration
    section with the Pareto front and cache statistics (see
    {!Explorer.markdown_section}).  [bounds] appends, under an
    "Inferred signal bounds" heading, a pre-rendered table of the
    value-flow analysis ranges (see [Verify.Absint.markdown_table];
    a plain string, [verify] sits above this library).  [lint]
    appends a pre-rendered
    static-verification section listing the design-rule diagnostics
    (see [Verify.markdown_section]; again a plain string, [verify]
    sits above this library).  Written for humans reviewing a
    design decision (the [syndex lifecycle --report] output). *)
