let comparison (design : Design.t) (c : Methodology.comparison) =
  let buf = Buffer.create 512 in
  let static = c.Methodology.implementation.Methodology.static in
  Buffer.add_string buf
    (Printf.sprintf "design %S (Ts = %g s, horizon = %g s)\n" design.Design.name
       design.Design.ts design.Design.horizon);
  Buffer.add_string buf
    (Printf.sprintf "  ideal cost        : %.6g\n" c.Methodology.ideal_cost);
  Buffer.add_string buf
    (Printf.sprintf "  implemented cost  : %.6g\n" c.Methodology.implemented_cost);
  Buffer.add_string buf
    (Printf.sprintf "  degradation       : %+.2f %%\n" c.Methodology.degradation_pct);
  Buffer.add_string buf
    (Printf.sprintf "  schedule makespan : %g (%s period %g)\n"
       static.Translator.Temporal_model.makespan
       (if static.Translator.Temporal_model.fits_period then "fits" else "OVERRUNS")
       static.Translator.Temporal_model.period);
  List.iter
    (fun (op, t) ->
      Buffer.add_string buf
        (Printf.sprintf "  sampling  Ls[%s] = %g\n"
           (Aaa.Algorithm.op_name c.Methodology.implementation.Methodology.algorithm op)
           t))
    static.Translator.Temporal_model.sampling_offsets;
  List.iter
    (fun (op, t) ->
      Buffer.add_string buf
        (Printf.sprintf "  actuation La[%s] = %g\n"
           (Aaa.Algorithm.op_name c.Methodology.implementation.Methodology.algorithm op)
           t))
    static.Translator.Temporal_model.actuation_offsets;
  Buffer.contents buf

let markdown ?montecarlo ?trace ?robustness ?exploration ?bounds ?lint (design : Design.t)
    (c : Methodology.comparison) =
  let impl = c.Methodology.implementation in
  let static = impl.Methodology.static in
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# Lifecycle report — %s" design.Design.name;
  line "";
  line "Sampling period Ts = %g s, co-simulation horizon %g s." design.Design.ts
    design.Design.horizon;
  line "";
  line "## Cost comparison";
  line "";
  line "| evaluation | cost |";
  line "|---|---|";
  line "| ideal (stroboscopic) | %.6g |" c.Methodology.ideal_cost;
  line "| implemented (graph of delays) | %.6g |" c.Methodology.implemented_cost;
  line "| degradation | %+.2f %% |" c.Methodology.degradation_pct;
  line "";
  line "## Static temporal model";
  line "";
  line "Makespan %.6g s (%s the period)." static.Translator.Temporal_model.makespan
    (if static.Translator.Temporal_model.fits_period then "fits" else "OVERRUNS");
  line "";
  line "| operation | latency (s) |";
  line "|---|---|";
  List.iter
    (fun (op, t) ->
      line "| Ls %s | %.6g |" (Aaa.Algorithm.op_name impl.Methodology.algorithm op) t)
    static.Translator.Temporal_model.sampling_offsets;
  List.iter
    (fun (op, t) ->
      line "| La %s | %.6g |" (Aaa.Algorithm.op_name impl.Methodology.algorithm op) t)
    static.Translator.Temporal_model.actuation_offsets;
  line "";
  line "## Planned schedule";
  line "";
  line "```";
  Buffer.add_string buf (Aaa.Gantt.render impl.Methodology.schedule);
  line "```";
  (match montecarlo with
  | Some s ->
      line "";
      line "## Monte-Carlo cost distribution (%d runs)" s.Montecarlo.runs;
      line "";
      line "| statistic | value |";
      line "|---|---|";
      line "| mean | %.6g |" s.Montecarlo.mean;
      line "| std | %.6g |" s.Montecarlo.stddev;
      line "| min | %.6g |" s.Montecarlo.cmin;
      line "| p95 | %.6g |" s.Montecarlo.p95;
      line "| max | %.6g |" s.Montecarlo.cmax;
      line "| static (WCET) bound | %.6g |" s.Montecarlo.static_cost
  | None -> ());
  (match trace with
  | Some trace ->
      line "";
      line "## Measured execution (%d iterations)" trace.Exec.Machine.iterations;
      line "";
      line "Order conformant: %b; period overruns: %d."
        (Exec.Machine.order_conformant trace)
        trace.Exec.Machine.overruns;
      line "";
      line "| operation | mean | min | max | jitter |";
      line "|---|---|---|---|---|";
      List.iter
        (fun (s : Translator.Temporal_model.series) ->
          line "| %s | %.6g | %.6g | %.6g | %.6g |"
            (Aaa.Algorithm.op_name impl.Methodology.algorithm s.Translator.Temporal_model.op)
            s.Translator.Temporal_model.mean s.Translator.Temporal_model.lmin
            s.Translator.Temporal_model.lmax s.Translator.Temporal_model.jitter)
        (Translator.Temporal_model.sampling_series trace
        @ Translator.Temporal_model.actuation_series trace);
      line "";
      line "One executed iteration:";
      line "";
      line "```";
      Buffer.add_string buf
        (Exec.Exec_gantt.render ~iteration:(Int.min 1 (trace.Exec.Machine.iterations - 1)) trace);
      line "```"
  | None -> ());
  (match robustness with
  | Some section ->
      line "";
      Buffer.add_string buf section
  | None -> ());
  (match exploration with
  | Some section ->
      line "";
      Buffer.add_string buf section
  | None -> ());
  (match bounds with
  | Some table ->
      line "";
      line "## Inferred signal bounds";
      line "";
      Buffer.add_string buf table
  | None -> ());
  (match lint with
  | Some section ->
      line "";
      Buffer.add_string buf section
  | None -> ());
  Buffer.contents buf

let latency_table algorithm series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-20s %10s %10s %10s %10s\n" "operation" "mean" "min" "max" "jitter");
  List.iter
    (fun (s : Translator.Temporal_model.series) ->
      Buffer.add_string buf
        (Printf.sprintf "%-20s %10.6f %10.6f %10.6f %10.6f\n"
           (Aaa.Algorithm.op_name algorithm s.Translator.Temporal_model.op)
           s.Translator.Temporal_model.mean s.Translator.Temporal_model.lmin
           s.Translator.Temporal_model.lmax s.Translator.Temporal_model.jitter))
    series;
  Buffer.contents buf
