(** The design-space exploration engine: candidate grids
    ({!Explore.Grid}) evaluated through the domain pool
    ({!Explore.Pool}) and the memoizing cache ({!Explore.Cache}) into
    multi-objective points, with Pareto-front extraction and report
    rendering.

    This is the batch form of the methodology's promise: every
    candidate implementation is judged by co-simulation {e at design
    time}, so sweeping periods × platforms × latency fractions × seeds
    is a large batch of independent deterministic evaluations — ideal
    for the pool — and many of its sub-problems recur across grids and
    re-runs — ideal for the cache.

    Determinism: points come back in job order (designs outer,
    candidates inner, both in input order) with values identical to a
    sequential evaluation, whatever the pool size and cache state. *)

type point = {
  design_name : string;
  ts : float;  (** the design's sampling period (the periods axis) *)
  platform : string;
  price : float;
  fraction : float;
  mode : Translator.Delay_graph.mode;
  ideal_cost : float;
  cost : float;  (** implemented cost ([inf] when infeasible) *)
  degradation_pct : float;
  io_latency : float;  (** static sampling-to-actuation latency *)
  makespan : float;
  fits_period : bool;
  infeasible : bool;  (** the adequation found no mapping *)
}

type outcome
(** One cached evaluation result (a sub-problem's cost and static
    temporal metrics).  Create a cache with
    [Explore.Cache.create () : outcome Explore.Cache.t] and share it
    across {!evaluate} calls. *)

val evaluate :
  ?pool:Explore.Pool.t ->
  ?cache:outcome Explore.Cache.t ->
  ?strategy:Aaa.Adequation.strategy ->
  designs:Design.t list ->
  candidates:Explore.Grid.candidate list ->
  unit ->
  point list
(** Evaluates every design × candidate cell: one ideal co-simulation
    per design, then adequation + implemented co-simulation per cell.
    [pool] defaults to {!Explore.Pool.default}; with [cache] every
    sub-problem is keyed by its canonical digest ({!Explore.Key}) and
    replayed on a hit.  Raises [Invalid_argument] on empty inputs.

    The cache key identifies the design by name, period, horizon and
    extracted algorithm graph — designs differing only inside their
    diagram-builder or cost closures must carry different names to
    share a cache soundly. *)

val feasible : point list -> point list
(** Points that adequated, fit the period and have a finite cost. *)

val pareto : point list -> point list
(** Non-dominated {!feasible} points under minimised
    [(price, cost)] — the engine's decision surface. *)

val markdown_section : ?cache:outcome Explore.Cache.t -> point list -> string
(** A ["## Design-space exploration"] markdown section: the candidate
    table, the Pareto front sorted by price, and — when [cache] is
    given — its hit/miss statistics.  Designed to be spliced into
    {!Report.markdown} via its [?exploration] argument. *)

val csv : point list -> string
(** One row per point with full-precision floats, for external
    plotting of the cost/latency/price cloud. *)
