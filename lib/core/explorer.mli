(** The design-space exploration engine: candidate grids
    ({!Explore.Grid}) evaluated through the domain pool
    ({!Explore.Pool}) and the memoizing cache ({!Explore.Cache}) into
    multi-objective points, with Pareto-front extraction and report
    rendering.

    This is the batch form of the methodology's promise: every
    candidate implementation is judged by co-simulation {e at design
    time}, so sweeping periods × platforms × latency fractions × seeds
    is a large batch of independent deterministic evaluations — ideal
    for the pool — and many of its sub-problems recur across grids and
    re-runs — ideal for the cache.

    Determinism: points come back in job order (designs outer,
    candidates inner, both in input order) with values identical to a
    sequential evaluation, whatever the pool size and cache state. *)

type point = {
  design_name : string;
  ts : float;  (** the design's sampling period (the periods axis) *)
  platform : string;
  price : float;
  fraction : float;
  mode : Translator.Delay_graph.mode;
  ideal_cost : float;
  cost : float;  (** implemented cost ([inf] when infeasible) *)
  degradation_pct : float;
  io_latency : float;  (** static sampling-to-actuation latency *)
  makespan : float;
  fits_period : bool;
  infeasible : bool;  (** the adequation found no mapping *)
}

type outcome
(** One cached evaluation result (a sub-problem's cost and static
    temporal metrics).  Create a cache with
    [Explore.Cache.create () : outcome Explore.Cache.t] and share it
    across {!evaluate} calls. *)

val evaluate :
  ?pool:Explore.Pool.t ->
  ?cache:outcome Explore.Cache.t ->
  ?strategy:Aaa.Adequation.strategy ->
  ?engine_reuse:bool ->
  ?chunk:int ->
  designs:Design.t list ->
  candidates:Explore.Grid.candidate list ->
  unit ->
  point list
(** Evaluates every design × candidate cell: one ideal co-simulation
    per design, then adequation + implemented co-simulation per cell.
    [pool] defaults to {!Explore.Pool.default}; with [cache] every
    sub-problem is keyed by its canonical digest ({!Explore.Key}) and
    replayed on a hit.  Raises [Invalid_argument] on empty inputs.

    With [engine_reuse] (the default) each domain reuses its last
    adequation across the seeds axis of the grid and evaluates
    jittered candidates by reseed + reset of one compiled
    {!Session} per schedule, instead of re-implementing and
    re-compiling per candidate — bit-for-bit the same points by the
    Session determinism contract ([engine_reuse:false] restores the
    rebuild-per-candidate path, as a reference and for benchmarks).
    [chunk] overrides the pool's work-stealing chunk size.

    The cache key identifies the design by name, period, horizon and
    extracted algorithm graph — designs differing only inside their
    diagram-builder or cost closures must carry different names to
    share a cache soundly. *)

type progress = {
  p_evaluated : int;  (** candidates reduced so far *)
  p_feasible : int;
  p_infeasible : int;
  p_front : point list;  (** current front, price-ascending *)
}
(** Anytime snapshot of a streaming sweep. *)

type summary = {
  s_evaluated : int;
  s_feasible : int;
  s_infeasible : int;  (** adequation found no mapping *)
  s_front : point list;  (** final front, price-ascending *)
  s_samples : (int * point) list;
      (** every [sample_every]-th point with its global input index —
          for bit-for-bit subsampled checks against a sequential
          reference *)
}
(** Result of a streaming sweep.  The full point list is {e not}
    retained — that is the point. *)

val evaluate_seq :
  ?pool:Explore.Pool.t ->
  ?cache:outcome Explore.Cache.t ->
  ?strategy:Aaa.Adequation.strategy ->
  ?engine_reuse:bool ->
  ?chunk:int ->
  ?snapshot_every:int ->
  ?snapshot:(progress -> unit) ->
  ?sample_every:int ->
  designs:Design.t list ->
  candidates:Explore.Grid.candidate Seq.t ->
  unit ->
  summary
(** Streaming map-reduce form of {!evaluate} for candidate spaces too
    large to materialize: candidates are pulled from the (persistent,
    replayable — e.g. {!Explore.Grid.seq}) sequence as domains run
    dry, evaluated points are folded in input order into running
    counters and an incremental Pareto front
    ({!Explore.Pareto.Front}), and [snapshot] — when given — receives
    an anytime {!progress} every [snapshot_every] evaluations
    (default 4096).  With [sample_every > 0] every such point is
    retained with its global index in [s_samples].  Deterministic:
    counters, front, samples and snapshot cadence are bit-for-bit
    identical to the sequential fold whatever the pool size.  The
    candidate sequence is replayed once per design.  Raises
    [Invalid_argument] on empty [designs]; an empty sequence yields
    an empty summary. *)

val feasible : point list -> point list
(** Points that adequated, fit the period and have a finite cost. *)

val pareto : point list -> point list
(** Non-dominated {!feasible} points under minimised
    [(price, cost)] — the engine's decision surface. *)

val markdown_section : ?cache:outcome Explore.Cache.t -> point list -> string
(** A ["## Design-space exploration"] markdown section: the candidate
    table, the Pareto front sorted by price, and — when [cache] is
    given — its hit/miss statistics.  Designed to be spliced into
    {!Report.markdown} via its [?exploration] argument. *)

val csv : point list -> string
(** One row per point with full-precision floats, for external
    plotting of the cost/latency/price cloud. *)
