(** Wire protocol of the batch co-simulation service.

    One request per line, one response per line, both JSON objects
    (the printer guarantees no raw newlines).  Requests:

    {v
    {"kind": "evaluate", "id": 1, "source": "(lifecycle ...)"}
    {"kind": "evaluate", "path": "examples/data/dc_motor.lcs",
     "montecarlo": 50, "seed": 1000, "robustness": true}
    {"kind": "montecarlo", "path": "examples/data/dc_motor.lcs",
     "runs": 200, "seed": 1000}
    {"kind": "stats"}
    {"kind": "ping"}
    {"kind": "shutdown"}
    v}

    An [evaluate] submission is a lifecycle document, either inline
    ([source]) or loaded server-side from [path]; the optional knobs
    override the service defaults.  [montecarlo] is the same pipeline
    cut down to the shared-engine Monte-Carlo batch alone: it skips
    lint and robustness and answers with the {e raw} per-scenario cost
    list ({!Service}'s [Batch.costs] output) instead of the aggregated
    report — for clients doing their own statistics.  [id] is any JSON
    value and is echoed verbatim in the response, so pipelined clients
    can match replies to requests.

    Responses always carry ["ok"]: [true] with a ["kind"] of
    ["report"] / ["costs"] / ["stats"] / ["pong"] / ["bye"], or [false] with an
    ["error"] object [{ "code", "message" }].  A failed request never
    terminates the server — errors are data. *)

type submission = Inline of string | Path of string

type evaluate_opts = {
  montecarlo : int option;  (** Monte-Carlo scenario count override *)
  base_seed : int option;
  robustness : bool option;  (** evaluate single-failure scenarios *)
}

type request =
  | Evaluate of { id : Json.t option; submission : submission; opts : evaluate_opts }
  | Montecarlo of {
      id : Json.t option;
      submission : submission;
      runs : int option;  (** scenario count (default: service config) *)
      base_seed : int option;  (** first seed; seeds are consecutive *)
    }
  | Stats of { id : Json.t option }
  | Ping of { id : Json.t option }
  | Shutdown of { id : Json.t option }

type error_code =
  | Parse  (** the line is not valid JSON *)
  | Protocol  (** valid JSON but not a valid request (unknown kind, ...) *)
  | Oversized  (** request line or submission above the size limit *)
  | Submission  (** the lifecycle document failed to parse/load *)
  | Infeasible  (** the adequation found no feasible mapping *)
  | Internal  (** unexpected server-side failure (isolated per request) *)

val error_code_to_string : error_code -> string

val request_of_line : string -> (request, error_code * string) result
(** Parses one request line.  Unknown object fields are ignored
    (forward compatibility); a missing/unknown ["kind"], a submission
    with both or neither of [source]/[path], and ill-typed option
    fields are [Protocol] errors. *)

val request_id : request -> Json.t option

val error_response : ?id:Json.t -> code:error_code -> string -> Json.t
(** [{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}] *)

val ok_response : ?id:Json.t -> kind:string -> (string * Json.t) list -> Json.t
(** [{"id": ..., "ok": true, "kind": ..., <extra fields>}] *)
