(** The evaluation service behind [syndex serve]: one submission in,
    one structured report out, with memoization and service statistics.

    Each [evaluate] request runs the full deterministic pipeline —
    lifecycle document parse, adequation, ideal + implemented
    co-simulation, static design-rule lint, a shared-engine
    Monte-Carlo batch ({!Batch}) and single-failure robustness
    scenarios — and renders the result as one JSON report.  A
    [montecarlo] request runs only the batch and answers with the raw
    per-seed cost list ([kind: "costs"], fields [seeds]/[costs]), for
    clients doing their own statistics.  Responses
    are memoized in an {!Explore.Cache} keyed by the canonical digest
    of the submission text and every evaluation knob, so a repeated
    submission is a cache hit that skips the pipeline entirely;
    with [cache_path] the memo table persists across restarts
    ({!Explore.Cache.open_backing}).

    Per-request isolation: {!respond} never raises — malformed
    documents, infeasible mappings and unexpected exceptions become
    [ok: false] responses with a structured error code, and the
    service keeps serving. *)

type config = {
  montecarlo_runs : int;  (** scenarios per submission (default 100) *)
  base_seed : int;  (** first Monte-Carlo seed (default 1000) *)
  law : Exec.Timing_law.t;  (** jitter law (default [Uniform]) *)
  bcet_frac : float;  (** BCET as a fraction of WCET (default 0.4) *)
  robustness : bool;  (** evaluate single-failure scenarios (default true) *)
  robustness_iterations : int;  (** injected machine iterations (default 50) *)
  standby : bool;
      (** score each robustness scenario's hot-standby replica run too:
          voted takeover and the three-way (hot-standby / blackout-then-
          switch / frozen) post-failure costs in the report (default
          false) *)
  max_submission_bytes : int;  (** submission size limit (default 1 MiB) *)
  max_pending : int;  (** server queue bound (default 64) *)
  cache_capacity : int;  (** memo entries kept (default 4096) *)
  cache_path : string option;  (** persistent memo log (default none) *)
}

val default_config : config

type t

val create : ?pool:Explore.Pool.t -> config -> t
(** [pool] (default {!Explore.Pool.default}) runs the Monte-Carlo
    chunks and robustness scenarios.  With [cache_path], existing memo
    records are replayed (warm start). *)

val config : t -> config

val respond : t -> (Protocol.request, Protocol.error_code * string) result -> Json.t
(** Dispatches one request (or renders the given parse/protocol
    error), updating the stats counters.  Never raises. *)

val stats_json : t -> Json.t
(** The ["stats"] payload: requests served, errors, cache
    hits/misses/hit-rate, scenarios evaluated, scenarios/sec through
    the pipeline, and evaluate-latency min/mean/max. *)

val close : t -> unit
(** Flushes and closes the persistent memo log (idempotent). *)
