(** Shared-engine Monte-Carlo batches: many co-simulation scenarios
    through {e one} compiled {!Sim.Engine}.

    The per-run unit elsewhere in the toolchain rebuilds the diagram,
    the graph of delays and the compiled engine for every scenario
    ({!Lifecycle.Methodology.simulate_implemented}); for a batch of
    thousands of fault/latency scenarios that compilation dominates.
    Here the engine is compiled once per worker and scenarios vary
    only the jitter seed: the delay graph draws from a caller-held
    {!Numerics.Rng.t}, which is reseeded — and the engine reset —
    between runs.

    Determinism contract: [cost b ~seed] is bit-for-bit equal to
    evaluating the same design on a freshly built engine with
    [Jittered { law; bcet_frac; seed }] — the generator's whole state
    is the reseeded four words, the diagram builder is deterministic
    and {!Sim.Engine.reset} restores the compiled engine's initial
    state exactly.  [test/test_serve.ml] enforces the equality against
    {!Lifecycle.Montecarlo.run}.

    The engine-reuse core lives in {!Lifecycle.Session} (shared with
    the design-space explorer); this module keeps the serve-layer API
    and the pooled seed sweep. *)

type t = Lifecycle.Session.t
(** One compiled engine plus its reseedable jitter source. *)

val create :
  ?meth:Numerics.Ode.method_ ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  ?comm_jitter_frac:float ->
  design:Lifecycle.Design.t ->
  implementation:Lifecycle.Methodology.implementation ->
  unit ->
  t
(** Builds the implemented co-simulation (diagram + jittered graph of
    delays + probes) and compiles it once.  Defaults match
    {!Lifecycle.Montecarlo.run}: uniform law over
    [\[bcet_frac·WCET, WCET\]] with [bcet_frac] 0.4. *)

val cost : t -> seed:int -> float
(** Reseeds, resets, runs to the design's horizon and returns the
    design's cost.  Any number of calls, any seed order. *)

val costs :
  ?pool:Explore.Pool.t ->
  ?meth:Numerics.Ode.method_ ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  ?comm_jitter_frac:float ->
  design:Lifecycle.Design.t ->
  implementation:Lifecycle.Methodology.implementation ->
  int list ->
  float list
(** [costs ~pool ... seeds] evaluates every seed, in order.  Each
    domain obtains one compiled engine through the per-domain session
    slot ({!Lifecycle.Session.obtain}) and sweeps its share of the
    seeds through it, so compilation is amortised [⌈n/domains⌉]-fold
    while results stay bit-for-bit equal to the sequential (and to
    the per-seed rebuilding) evaluation — now independent of how the
    work-stealing scheduler splits the list.  Default pool:
    {!Explore.Pool.default}. *)

val montecarlo :
  ?runs:int ->
  ?base_seed:int ->
  ?law:Exec.Timing_law.t ->
  ?bcet_frac:float ->
  ?pool:Explore.Pool.t ->
  design:Lifecycle.Design.t ->
  implementation:Lifecycle.Methodology.implementation ->
  unit ->
  Lifecycle.Montecarlo.summary
(** Drop-in equivalent of {!Lifecycle.Montecarlo.run} (same defaults,
    same summary, bit-for-bit equal costs) computed through shared
    engines.  The static (WCET) reference cost still uses one
    dedicated engine — its delay graph differs structurally.  Raises
    [Invalid_argument] on [runs <= 0]. *)
