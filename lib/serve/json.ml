type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* parser *)

exception Error of int * string

let max_depth = 128

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, got %C" c c')
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with Failure _ -> fail "invalid \\u escape"
              in
              pos := !pos + 4;
              (* encode the code point as UTF-8; surrogate pairs are
                 passed through as two 3-byte sequences (WTF-8), which
                 round-trips our own printer *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail (Printf.sprintf "invalid escape \\%C" e))
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let before = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = before then fail "malformed number"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Error (at, msg) -> Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* printer *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> escape_into buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_into buf k;
            Buffer.add_char buf ':';
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let num_of f = if Float.is_finite f then Num f else Null
