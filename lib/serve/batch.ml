module D = Lifecycle.Design
module M = Lifecycle.Methodology

type t = {
  design : D.t;
  engine : Sim.Engine.t;
  rng : Numerics.Rng.t;
}

let create ?meth ?(law = Exec.Timing_law.Uniform) ?(bcet_frac = 0.4) ?comm_jitter_frac
    ~design ~implementation () =
  (* [D.build] is deterministic, so the binding's block ids recorded at
     extraction are valid in this fresh instance — the same invariant
     [Methodology.simulate_implemented] relies on *)
  let built = (design : D.t).D.build () in
  let rng = Numerics.Rng.create 0 in
  let _dg =
    Translator.Cosim.attach_delay_graph
      ~mode:(Translator.Delay_graph.Jittered { law; bcet_frac; seed = 0 })
      ?comm_jitter_frac ?condition_feed:built.D.condition_feed ~graph:built.D.graph
      ~schedule:implementation.M.schedule ~binding:implementation.M.binding ~rng ()
  in
  let engine = Sim.Engine.create ?meth built.D.graph in
  List.iter
    (fun (name, (block, port)) -> Sim.Engine.add_probe engine ~name ~block ~port)
    built.D.probes;
  { design; engine; rng }

let cost t ~seed =
  Numerics.Rng.reseed t.rng seed;
  Sim.Engine.reset t.engine;
  Sim.Engine.run ~t_end:t.design.D.horizon t.engine;
  t.design.D.cost t.engine

(* contiguous chunks preserving order: [chunks 3 [1;2;3;4;5;6;7]] is
   [[1;2;3];[4;5;6];[7]] *)
let chunks size xs =
  let rec go acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if k = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (k + 1) rest
  in
  go [] [] 0 xs

let costs ?pool ?meth ?law ?bcet_frac ?comm_jitter_frac ~design ~implementation seeds =
  match seeds with
  | [] -> []
  | seeds ->
      let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
      let n = List.length seeds in
      let chunk_size = max 1 ((n + Explore.Pool.domains pool - 1) / Explore.Pool.domains pool) in
      let evaluate_chunk chunk_seeds =
        let b = create ?meth ?law ?bcet_frac ?comm_jitter_frac ~design ~implementation () in
        List.map (fun seed -> cost b ~seed) chunk_seeds
      in
      List.concat (Explore.Pool.map pool evaluate_chunk (chunks chunk_size seeds))

let montecarlo ?(runs = 20) ?(base_seed = 1000) ?law ?bcet_frac ?pool ~design
    ~implementation () =
  if runs <= 0 then invalid_arg "Batch.montecarlo: non-positive run count";
  let seeds = Array.init runs (fun i -> base_seed + i) in
  let costs =
    Array.of_list
      (costs ?pool ?law ?bcet_frac ~design ~implementation (Array.to_list seeds))
  in
  let static_cost =
    let engine = M.simulate_implemented ~mode:Translator.Delay_graph.Static_wcet design implementation in
    (design : D.t).D.cost engine
  in
  {
    Lifecycle.Montecarlo.runs;
    seeds;
    costs;
    mean = Numerics.Stats.mean costs;
    stddev = Numerics.Stats.stddev costs;
    cmin = Numerics.Stats.min costs;
    cmax = Numerics.Stats.max costs;
    p95 = Numerics.Stats.percentile costs 95.;
    static_cost;
  }
