module D = Lifecycle.Design
module M = Lifecycle.Methodology
module S = Lifecycle.Session

(* a batch IS a lifecycle session; this module keeps the serve-layer
   API and adds the pooled seed sweep *)
type t = S.t

let create ?meth ?law ?bcet_frac ?comm_jitter_frac ~design ~implementation () =
  S.create ?meth ?law ?bcet_frac ?comm_jitter_frac ~design ~implementation ()

let cost = S.cost

let costs ?pool ?meth ?law ?bcet_frac ?comm_jitter_frac ~design ~implementation
    seeds =
  match seeds with
  | [] -> []
  | seeds ->
      let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
      let skey =
        S.key ?meth ?law ?bcet_frac ?comm_jitter_frac ~design ~implementation ()
      in
      (* each domain compiles (at most) one engine via the per-domain
         session slot and sweeps its share of the seeds through it;
         with work-stealing chunks the amortisation no longer depends
         on a static one-chunk-per-domain split *)
      Explore.Pool.map pool
        (fun seed ->
          let s =
            S.obtain ~key:skey ~create:(fun () ->
                S.create ?meth ?law ?bcet_frac ?comm_jitter_frac ~design
                  ~implementation ())
          in
          S.cost s ~seed)
        seeds

let montecarlo ?(runs = 20) ?(base_seed = 1000) ?law ?bcet_frac ?pool ~design
    ~implementation () =
  if runs <= 0 then invalid_arg "Batch.montecarlo: non-positive run count";
  let seeds = Array.init runs (fun i -> base_seed + i) in
  let costs =
    Array.of_list
      (costs ?pool ?law ?bcet_frac ~design ~implementation (Array.to_list seeds))
  in
  let static_cost =
    let engine = M.simulate_implemented ~mode:Translator.Delay_graph.Static_wcet design implementation in
    (design : D.t).D.cost engine
  in
  {
    Lifecycle.Montecarlo.runs;
    seeds;
    costs;
    mean = Numerics.Stats.mean costs;
    stddev = Numerics.Stats.stddev costs;
    cmin = Numerics.Stats.min costs;
    cmax = Numerics.Stats.max costs;
    p95 = Numerics.Stats.percentile costs 95.;
    static_cost;
  }
