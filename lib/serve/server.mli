(** The wire loop of [syndex serve]: line-delimited JSON requests in,
    line-delimited JSON responses out, one {!Service.t} behind them.

    Framing: each request is one JSON object on one line; each
    response is one JSON object on one line ({!Json.to_string} never
    emits raw newlines).  Requests are answered in order.  Up to
    [max_pending] already-received lines are queued while one request
    evaluates; beyond that the server stops reading and the client
    blocks on the kernel pipe/socket buffer — backpressure without an
    unbounded queue.

    Isolation: a malformed line, an oversized line or an input that
    ends mid-request produces a structured [ok: false] response; only
    a [shutdown] request, end of input or a broken client connection
    ends a session. *)

val serve :
  service:Service.t ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  [ `Shutdown | `Eof | `Disconnect ]
(** Serves one session until [shutdown] (acknowledged with a ["bye"]
    response), end of input, or a write failure / input ending in the
    middle of a request ([`Disconnect]).  Ignores [SIGPIPE].  A line
    longer than [max_submission_bytes] plus protocol slack is
    discarded as it streams in and answered with an [oversized]
    error. *)

val serve_unix_socket : service:Service.t -> path:string -> unit
(** Binds a Unix-domain socket at [path] (replacing a stale file),
    then accepts clients one at a time — each served with {!serve},
    all sharing the one service (and thus its cache and stats) — until
    a client sends [shutdown].  The socket file is removed on
    return. *)
