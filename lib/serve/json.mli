(** Minimal JSON codec for the wire protocol of the batch
    co-simulation service.

    Self-contained (the repository deliberately has no JSON
    dependency): a plain value type, a strict recursive-descent parser
    and a printer whose output never contains raw newlines — so every
    rendered value is safe as one line of the line-delimited
    protocol. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict JSON: one value, optionally surrounded by whitespace;
    trailing garbage, unterminated literals, control characters inside
    strings and nesting beyond 128 levels are errors.  Error messages
    carry the byte offset. *)

val to_string : t -> string
(** Compact rendering.  Strings are escaped (including control
    characters, so no raw newline can appear); non-finite numbers
    render as [null] (JSON has no IEEE specials); integral values
    within 2{^53} render without a decimal point. *)

(** {2 Accessors} — tolerant lookups for protocol fields *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_float : t -> float option
val to_int : t -> int option
(** Integral numbers only ([Num 3.7] is [None]). *)

val to_str : t -> string option
val to_bool : t -> bool option

val num_of : float -> t
(** [Num], mapping non-finite floats to {!Null} at construction. *)
