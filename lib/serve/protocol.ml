type submission = Inline of string | Path of string

type evaluate_opts = {
  montecarlo : int option;
  base_seed : int option;
  robustness : bool option;
}

type request =
  | Evaluate of { id : Json.t option; submission : submission; opts : evaluate_opts }
  | Montecarlo of {
      id : Json.t option;
      submission : submission;
      runs : int option;
      base_seed : int option;
    }
  | Stats of { id : Json.t option }
  | Ping of { id : Json.t option }
  | Shutdown of { id : Json.t option }

type error_code = Parse | Protocol | Oversized | Submission | Infeasible | Internal

let error_code_to_string = function
  | Parse -> "parse"
  | Protocol -> "protocol"
  | Oversized -> "oversized"
  | Submission -> "submission"
  | Infeasible -> "infeasible"
  | Internal -> "internal"

let request_id = function
  | Evaluate { id; _ } | Montecarlo { id; _ } | Stats { id } | Ping { id }
  | Shutdown { id } ->
      id

(* typed field access: [Ok None] when absent, [Error _] when present
   but ill-typed — absent and broken are different protocol situations *)
let field name convert what json =
  match Json.member name json with
  | None -> Ok None
  | Some v -> (
      match convert v with
      | Some x -> Ok (Some x)
      | None -> Error (Protocol, Printf.sprintf "field %S must be %s" name what))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* the [source] xor [path] submission shared by evaluate and montecarlo *)
let submission_of ~kind json =
  let* source = field "source" Json.to_str "a string" json in
  let* path = field "path" Json.to_str "a string" json in
  match (source, path) with
  | Some s, None -> Ok (Inline s)
  | None, Some p -> Ok (Path p)
  | Some _, Some _ ->
      Error (Protocol, Printf.sprintf "%s takes \"source\" or \"path\", not both" kind)
  | None, None ->
      Error (Protocol, Printf.sprintf "%s needs a \"source\" or \"path\" field" kind)

let non_negative name = function
  | Some m when m < 0 ->
      Error (Protocol, Printf.sprintf "field %S must be non-negative" name)
  | m -> Ok m

let request_of_line line =
  match Json.parse line with
  | Error msg -> Error (Parse, msg)
  | Ok json -> (
      let id = Json.member "id" json in
      match Json.member "kind" json with
      | None -> Error (Protocol, "request object has no \"kind\" field")
      | Some kind -> (
          match Json.to_str kind with
          | None -> Error (Protocol, "field \"kind\" must be a string")
          | Some "stats" -> Ok (Stats { id })
          | Some "ping" -> Ok (Ping { id })
          | Some "shutdown" -> Ok (Shutdown { id })
          | Some "evaluate" ->
              let* submission = submission_of ~kind:"evaluate" json in
              let* montecarlo = field "montecarlo" Json.to_int "an integer" json in
              let* montecarlo = non_negative "montecarlo" montecarlo in
              let* base_seed = field "seed" Json.to_int "an integer" json in
              let* robustness = field "robustness" Json.to_bool "a boolean" json in
              Ok (Evaluate { id; submission; opts = { montecarlo; base_seed; robustness } })
          | Some "montecarlo" ->
              let* submission = submission_of ~kind:"montecarlo" json in
              let* runs = field "runs" Json.to_int "an integer" json in
              let* runs = non_negative "runs" runs in
              let* base_seed = field "seed" Json.to_int "an integer" json in
              Ok (Montecarlo { id; submission; runs; base_seed })
          | Some k -> Error (Protocol, Printf.sprintf "unknown request kind %S" k)))

let with_id id fields =
  match id with None -> fields | Some id -> ("id", id) :: fields

let error_response ?id ~code message =
  Json.Obj
    (with_id id
       [
         ("ok", Json.Bool false);
         ( "error",
           Json.Obj
             [
               ("code", Json.Str (error_code_to_string code));
               ("message", Json.Str message);
             ] );
       ])

let ok_response ?id ~kind fields =
  Json.Obj (with_id id (("ok", Json.Bool true) :: ("kind", Json.Str kind) :: fields))
