(* fd-level buffered line reader: no in_channel, so [Unix.select] on
   the raw fd stays truthful about what has not been consumed yet *)

type event = Line of string | Oversized | Eof | Eof_mid_line

type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  mutable pos : int;
  mutable len : int;
  acc : Buffer.t;
  max_line : int;
  mutable dropping : bool;  (* inside an oversized line: discard to newline *)
}

let reader ~max_line fd =
  {
    fd;
    chunk = Bytes.create 65536;
    pos = 0;
    len = 0;
    acc = Buffer.create 256;
    max_line;
    dropping = false;
  }

let refill r =
  let rec read () =
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  let n = read () in
  r.pos <- 0;
  r.len <- n;
  n > 0

(* data we can consume without blocking: buffered bytes or a readable fd *)
let data_available r =
  r.pos < r.len
  ||
  match Unix.select [ r.fd ] [] [] 0. with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let find_newline chunk pos len =
  let i = ref pos in
  while !i < len && Bytes.get chunk !i <> '\n' do
    incr i
  done;
  if !i < len then Some !i else None

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec next r =
  if r.pos >= r.len then
    if refill r then next r
    else if r.dropping || Buffer.length r.acc > 0 then begin
      r.dropping <- false;
      Buffer.clear r.acc;
      Eof_mid_line
    end
    else Eof
  else
    match find_newline r.chunk r.pos r.len with
    | Some j ->
        let segment = Bytes.sub_string r.chunk r.pos (j - r.pos) in
        r.pos <- j + 1;
        if r.dropping then begin
          r.dropping <- false;
          Buffer.clear r.acc;
          Oversized
        end
        else begin
          Buffer.add_string r.acc segment;
          if Buffer.length r.acc > r.max_line then begin
            Buffer.clear r.acc;
            Oversized
          end
          else begin
            let line = strip_cr (Buffer.contents r.acc) in
            Buffer.clear r.acc;
            Line line
          end
        end
    | None ->
        if not r.dropping then begin
          Buffer.add_subbytes r.acc r.chunk r.pos (r.len - r.pos);
          if Buffer.length r.acc > r.max_line then begin
            Buffer.clear r.acc;
            r.dropping <- true
          end
        end;
        r.pos <- r.len;
        next r

(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  match go 0 with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      false

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let serve ~service ~input ~output =
  ignore_sigpipe ();
  let cfg = Service.config service in
  (* a line holds one JSON-escaped submission plus protocol fields:
     escaping at most doubles the text, so 2x + slack never rejects a
     submission the service itself would accept *)
  let max_line = (2 * cfg.Service.max_submission_bytes) + 65536 in
  let r = reader ~max_line input in
  let queue = Queue.create () in
  let send json = write_all output (Json.to_string json ^ "\n") in
  (* pull whatever is already waiting, up to the queue bound: past it
     we simply stop reading and the client blocks on the pipe buffer *)
  let rec pump () =
    if Queue.length queue < cfg.Service.max_pending && data_available r then begin
      let ev = next r in
      Queue.push ev queue;
      match ev with Line _ | Oversized -> pump () | Eof | Eof_mid_line -> ()
    end
  in
  let rec loop () =
    if Queue.is_empty queue then Queue.push (next r) queue;
    pump ();
    match Queue.pop queue with
    | Eof -> `Eof
    | Eof_mid_line ->
        ignore
          (send
             (Protocol.error_response ~code:Protocol.Parse
                "input ended in the middle of a request"));
        `Disconnect
    | Oversized ->
        if
          send
            (Protocol.error_response ~code:Protocol.Oversized
               (Printf.sprintf "request line exceeds %d bytes" max_line))
        then loop ()
        else `Disconnect
    | Line l when String.trim l = "" -> loop ()
    | Line l ->
        let request = Protocol.request_of_line l in
        let sent = send (Service.respond service request) in
        if (match request with Ok (Protocol.Shutdown _) -> true | _ -> false) then
          `Shutdown
        else if sent then loop ()
        else `Disconnect
  in
  loop ()

let serve_unix_socket ~service ~path =
  ignore_sigpipe ();
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let client, _ = Unix.accept sock in
        let outcome =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close client with Unix.Unix_error _ -> ())
            (fun () -> serve ~service ~input:client ~output:client)
        in
        match outcome with
        | `Shutdown -> ()
        | `Eof | `Disconnect -> accept_loop ()
      in
      accept_loop ())
