module P = Protocol
module D = Lifecycle.Design
module M = Lifecycle.Methodology

type config = {
  montecarlo_runs : int;
  base_seed : int;
  law : Exec.Timing_law.t;
  bcet_frac : float;
  robustness : bool;
  robustness_iterations : int;
  standby : bool;
      (** score each robustness scenario's hot-standby replica run
          (voted takeover, three-way post-failure costs) too *)
  max_submission_bytes : int;
  max_pending : int;
  cache_capacity : int;
  cache_path : string option;
}

let default_config =
  {
    montecarlo_runs = 100;
    base_seed = 1000;
    law = Exec.Timing_law.Uniform;
    bcet_frac = 0.4;
    robustness = true;
    robustness_iterations = 50;
    standby = false;
    max_submission_bytes = 1 lsl 20;
    max_pending = 64;
    cache_capacity = 4096;
    cache_path = None;
  }

type t = {
  cfg : config;
  pool : Explore.Pool.t;
  cache : Json.t Explore.Cache.t;
  started : float;
  mutable requests : int;
  mutable evaluations : int;
  mutable errors : int;
  mutable scenarios : int;  (** co-simulated scenario runs (cache misses only) *)
  mutable busy_s : float;  (** wall time spent inside the pipeline *)
  mutable lat_count : int;
  mutable lat_sum : float;
  mutable lat_min : float;
  mutable lat_max : float;
}

let create ?pool cfg =
  let pool = match pool with Some p -> p | None -> Explore.Pool.default () in
  let cache = Explore.Cache.create ~capacity:cfg.cache_capacity () in
  (match cfg.cache_path with
  | Some path ->
      ignore
        (Explore.Cache.open_backing cache ~path ~encode:Json.to_string
           ~decode:(fun s ->
             match Json.parse s with Ok v -> v | Error msg -> failwith msg))
  | None -> ());
  {
    cfg;
    pool;
    cache;
    started = Unix.gettimeofday ();
    requests = 0;
    evaluations = 0;
    errors = 0;
    scenarios = 0;
    busy_s = 0.;
    lat_count = 0;
    lat_sum = 0.;
    lat_min = infinity;
    lat_max = 0.;
  }

let config t = t.cfg

(* ------------------------------------------------------------------ *)
(* report rendering *)

let diag_json (d : Verify.Diag.t) =
  Json.Obj
    [
      ("rule", Json.Str d.Verify.Diag.rule);
      ("severity", Json.Str (Verify.Diag.severity_to_string d.Verify.Diag.severity));
      ("artifact", Json.Str d.Verify.Diag.artifact);
      ("location", Json.Str d.Verify.Diag.location);
      ("message", Json.Str d.Verify.Diag.message);
      ("hint", match d.Verify.Diag.hint with Some h -> Json.Str h | None -> Json.Null);
    ]

let lint_json diags =
  let count sev =
    List.length (List.filter (fun d -> d.Verify.Diag.severity = sev) diags)
  in
  Json.Obj
    [
      ("errors", Json.Num (float_of_int (count Verify.Diag.Error)));
      ("warnings", Json.Num (float_of_int (count Verify.Diag.Warning)));
      ("infos", Json.Num (float_of_int (count Verify.Diag.Info)));
      ("diagnostics", Json.Arr (List.map diag_json (List.sort Verify.Diag.compare diags)));
    ]

let montecarlo_json (s : Lifecycle.Montecarlo.summary) =
  Json.Obj
    [
      ("runs", Json.Num (float_of_int s.Lifecycle.Montecarlo.runs));
      ("mean", Json.num_of s.Lifecycle.Montecarlo.mean);
      ("stddev", Json.num_of s.Lifecycle.Montecarlo.stddev);
      ("min", Json.num_of s.Lifecycle.Montecarlo.cmin);
      ("max", Json.num_of s.Lifecycle.Montecarlo.cmax);
      ("p95", Json.num_of s.Lifecycle.Montecarlo.p95);
      ("static_cost", Json.num_of s.Lifecycle.Montecarlo.static_cost);
    ]

let standby_json (sb : Fault.Robustness.standby_outcome) =
  let opt = function Some v -> Json.num_of v | None -> Json.Null in
  Json.Obj
    [
      ("vote_primary", Json.Num (float_of_int sb.Fault.Robustness.vote_primary));
      ("vote_standby", Json.Num (float_of_int sb.Fault.Robustness.vote_standby));
      ("vote_held", Json.Num (float_of_int sb.Fault.Robustness.vote_held));
      ( "takeover",
        match sb.Fault.Robustness.takeover with
        | Some (k, t) ->
            Json.Obj [ ("iteration", Json.Num (float_of_int k)); ("time", Json.num_of t) ]
        | None -> Json.Null );
      ( "divergences",
        Json.Arr
          (List.map
             (fun i -> Json.Num (float_of_int i))
             sb.Fault.Robustness.divergences) );
      ("standby_post_cost", opt sb.Fault.Robustness.standby_post_cost);
      ("switch_post_cost", opt sb.Fault.Robustness.switch_post_cost);
      ("frozen_post_cost", opt sb.Fault.Robustness.frozen_post_cost);
    ]

let robustness_json (s : Fault.Robustness.summary) =
  let outcome (o : Fault.Robustness.outcome) =
    Json.Obj
      [
        ("scenario", Json.Str o.Fault.Robustness.scenario.Fault.Scenario.name);
        ("replanned", Json.Bool o.Fault.Robustness.replanned);
        ("infeasible", Json.Bool o.Fault.Robustness.infeasible);
        ("fits_period", Json.Bool o.Fault.Robustness.fits_period);
        ("cost", Json.num_of o.Fault.Robustness.cost);
        ("degradation_pct", Json.num_of o.Fault.Robustness.degradation_pct);
        ("lost_transfers", Json.Num (float_of_int o.Fault.Robustness.lost_transfers));
        ("stale_reads", Json.Num (float_of_int o.Fault.Robustness.stale_reads));
        ("overruns", Json.Num (float_of_int o.Fault.Robustness.overruns));
        ( "standby",
          match o.Fault.Robustness.recovery with
          | Some { Fault.Robustness.standby = Some sb; _ } -> standby_json sb
          | _ -> Json.Null );
      ]
  in
  Json.Obj
    [
      ("nominal_cost", Json.num_of s.Fault.Robustness.nominal_cost);
      ("worst_degradation_pct", Json.num_of s.Fault.Robustness.worst_degradation_pct);
      ("mean_degradation_pct", Json.num_of s.Fault.Robustness.mean_degradation_pct);
      ("all_feasible", Json.Bool s.Fault.Robustness.all_feasible);
      ("all_fit", Json.Bool s.Fault.Robustness.all_fit);
      ("scenarios", Json.Arr (List.map outcome s.Fault.Robustness.outcomes));
    ]

let report_json (file : Lifecycle.Diagram.t) (comparison : M.comparison) ~lint ~mc ~rob =
  let design = file.Lifecycle.Diagram.design in
  let schedule = comparison.M.implementation.M.schedule in
  Json.Obj
    [
      ("design", Json.Str design.D.name);
      ("ts", Json.num_of design.D.ts);
      ("horizon", Json.num_of design.D.horizon);
      ("ideal_cost", Json.num_of comparison.M.ideal_cost);
      ("implemented_cost", Json.num_of comparison.M.implemented_cost);
      ("degradation_pct", Json.num_of comparison.M.degradation_pct);
      ( "schedule",
        Json.Obj
          [
            ("makespan", Json.num_of schedule.Aaa.Schedule.makespan);
            ("fits_period", Json.Bool (Aaa.Schedule.fits_period schedule));
            ( "operators",
              Json.Num
                (float_of_int
                   (Aaa.Architecture.operator_count file.Lifecycle.Diagram.architecture))
            );
          ] );
      ("lint", lint_json lint);
      ("montecarlo", match mc with Some s -> montecarlo_json s | None -> Json.Null);
      ( "robustness",
        match rob with
        | Some (Ok s) -> robustness_json s
        | Some (Error msg) -> Json.Obj [ ("error", Json.Str msg) ]
        | None -> Json.Null );
    ]

(* ------------------------------------------------------------------ *)
(* the pipeline *)

let submission_key t source ~runs ~seed ~robustness =
  Explore.Key.digest
    [
      "scilife.serve.evaluate";
      Explore.Key.string source;
      Explore.Key.int runs;
      Explore.Key.int seed;
      Explore.Key.law t.cfg.law;
      Explore.Key.float t.cfg.bcet_frac;
      Explore.Key.int (if robustness then 1 else 0);
      Explore.Key.int t.cfg.robustness_iterations;
      Explore.Key.int (if t.cfg.standby then 1 else 0);
    ]

(* run the full pipeline on one parsed-from-[source] submission;
   returns the report plus the number of co-simulated scenarios *)
let compute t ~source ~runs ~seed ~robustness =
  match Lifecycle.Diagram.parse source with
  | exception Failure msg -> Error (P.Submission, msg)
  | exception Invalid_argument msg -> Error (P.Submission, msg)
  | file -> (
      let { Lifecycle.Diagram.design; architecture; durations; pins } = file in
      match M.evaluate ~pins ~design ~architecture ~durations () with
      | exception Aaa.Adequation.Infeasible msg -> Error (P.Infeasible, msg)
      | exception Invalid_argument msg -> Error (P.Submission, msg)
      | exception Failure msg -> Error (P.Submission, msg)
      | comparison ->
          let lint = Verify.run_all ~architecture ~durations ~pins design in
          let mc =
            if runs > 0 then
              Some
                (Batch.montecarlo ~runs ~base_seed:seed ~law:t.cfg.law
                   ~bcet_frac:t.cfg.bcet_frac ~pool:t.pool ~design
                   ~implementation:comparison.M.implementation ())
            else None
          in
          let rob =
            if robustness then
              let scenarios =
                Fault.Scenario.single_processor_failures ~seed architecture
              in
              (* hot-standby scoring needs a recovery policy so the
                 supervisor confirms the fail-stop the voter pins on *)
              let recovery =
                if t.cfg.standby then
                  Some
                    (Exec.Recovery.make
                       ~period:
                         (Aaa.Algorithm.period comparison.M.implementation.M.algorithm)
                       ())
                else None
              in
              Some
                (try
                   Ok
                     (Fault.Robustness.evaluate
                        ~iterations:t.cfg.robustness_iterations ~pool:t.pool ?recovery
                        ~standby:t.cfg.standby ~design ~architecture ~durations
                        ~scenarios ())
                 with e -> Error (Printexc.to_string e))
            else None
          in
          let scenario_count =
            runs
            + (match rob with
              | Some (Ok s) -> List.length s.Fault.Robustness.outcomes
              | Some (Error _) | None -> 0)
          in
          Ok (report_json file comparison ~lint ~mc ~rob, scenario_count))

(* resolve a submission to its text, enforcing the size limit *)
let load_submission t submission =
  let source =
    match submission with
    | P.Inline s -> Ok s
    | P.Path path -> (
        try Ok (In_channel.with_open_bin path In_channel.input_all)
        with Sys_error msg -> Error (P.Submission, msg))
  in
  match source with
  | Error e -> Error e
  | Ok source ->
      if String.length source > t.cfg.max_submission_bytes then
        Error
          ( P.Oversized,
            Printf.sprintf "submission is %d bytes (limit %d)" (String.length source)
              t.cfg.max_submission_bytes )
      else Ok source

let evaluate t ~submission (opts : P.evaluate_opts) =
  let runs = Option.value opts.P.montecarlo ~default:t.cfg.montecarlo_runs in
  let seed = Option.value opts.P.base_seed ~default:t.cfg.base_seed in
  let robustness = Option.value opts.P.robustness ~default:t.cfg.robustness in
  match load_submission t submission with
  | Error e -> Error e
  | Ok source ->
      begin
        let key = submission_key t source ~runs ~seed ~robustness in
        match Explore.Cache.find_opt t.cache ~key with
        | Some report -> Ok (report, true)
        | None -> (
            let t0 = Unix.gettimeofday () in
            match compute t ~source ~runs ~seed ~robustness with
            | Ok (report, scenario_count) ->
                t.scenarios <- t.scenarios + scenario_count;
                t.busy_s <- t.busy_s +. (Unix.gettimeofday () -. t0);
                Explore.Cache.add t.cache ~key report;
                (* cheap next to an evaluation; makes every reply durable *)
                Explore.Cache.flush t.cache;
                Ok (report, false)
            | Error e ->
                t.busy_s <- t.busy_s +. (Unix.gettimeofday () -. t0);
                Error e)
      end

(* ------------------------------------------------------------------ *)
(* raw Monte-Carlo batches *)

let montecarlo_key t source ~runs ~seed =
  Explore.Key.digest
    [
      "scilife.serve.montecarlo";
      Explore.Key.string source;
      Explore.Key.int runs;
      Explore.Key.int seed;
      Explore.Key.law t.cfg.law;
      Explore.Key.float t.cfg.bcet_frac;
    ]

(* the pipeline cut down to the shared-engine batch: parse, adequate,
   run every seed through [Batch.costs] and hand the list back raw *)
let compute_montecarlo t ~source ~runs ~seed =
  match Lifecycle.Diagram.parse source with
  | exception Failure msg -> Error (P.Submission, msg)
  | exception Invalid_argument msg -> Error (P.Submission, msg)
  | file -> (
      let { Lifecycle.Diagram.design; architecture; durations; pins } = file in
      match M.implement ~pins ~design ~architecture ~durations () with
      | exception Aaa.Adequation.Infeasible msg -> Error (P.Infeasible, msg)
      | exception Invalid_argument msg -> Error (P.Submission, msg)
      | exception Failure msg -> Error (P.Submission, msg)
      | implementation ->
          let seeds = List.init runs (fun k -> seed + k) in
          let costs =
            Batch.costs ~pool:t.pool ~law:t.cfg.law ~bcet_frac:t.cfg.bcet_frac
              ~design ~implementation seeds
          in
          Ok
            (Json.Obj
               [
                 ("design", Json.Str design.D.name);
                 ("runs", Json.Num (float_of_int runs));
                 ("seed", Json.Num (float_of_int seed));
                 ("seeds", Json.Arr (List.map (fun s -> Json.Num (float_of_int s)) seeds));
                 ("costs", Json.Arr (List.map Json.num_of costs));
               ]))

let montecarlo t ~submission ~runs ~base_seed =
  let runs = Option.value runs ~default:t.cfg.montecarlo_runs in
  let seed = Option.value base_seed ~default:t.cfg.base_seed in
  match load_submission t submission with
  | Error e -> Error e
  | Ok source -> (
      let key = montecarlo_key t source ~runs ~seed in
      match Explore.Cache.find_opt t.cache ~key with
      | Some payload -> Ok (payload, true)
      | None -> (
          let t0 = Unix.gettimeofday () in
          match compute_montecarlo t ~source ~runs ~seed with
          | Ok payload ->
              t.scenarios <- t.scenarios + runs;
              t.busy_s <- t.busy_s +. (Unix.gettimeofday () -. t0);
              Explore.Cache.add t.cache ~key payload;
              Explore.Cache.flush t.cache;
              Ok (payload, false)
          | Error e ->
              t.busy_s <- t.busy_s +. (Unix.gettimeofday () -. t0);
              Error e))

(* ------------------------------------------------------------------ *)
(* stats & dispatch *)

let stats_json t =
  let cs = Explore.Cache.stats t.cache in
  let hit_rate = Explore.Cache.hit_rate cs in
  Json.Obj
    [
      ("requests", Json.Num (float_of_int t.requests));
      ("evaluations", Json.Num (float_of_int t.evaluations));
      ("errors", Json.Num (float_of_int t.errors));
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Num (float_of_int cs.Explore.Cache.hits));
            ("misses", Json.Num (float_of_int cs.Explore.Cache.misses));
            ("evictions", Json.Num (float_of_int cs.Explore.Cache.evictions));
            ("size", Json.Num (float_of_int cs.Explore.Cache.size));
            ("capacity", Json.Num (float_of_int cs.Explore.Cache.capacity));
            ("hit_rate", Json.num_of hit_rate);
          ] );
      ("scenarios", Json.Num (float_of_int t.scenarios));
      ( "scenarios_per_sec",
        if t.busy_s > 0. then Json.num_of (float_of_int t.scenarios /. t.busy_s)
        else Json.Null );
      ( "latency_ms",
        if t.lat_count = 0 then Json.Null
        else
          Json.Obj
            [
              ("min", Json.num_of (1000. *. t.lat_min));
              ("mean", Json.num_of (1000. *. t.lat_sum /. float_of_int t.lat_count));
              ("max", Json.num_of (1000. *. t.lat_max));
            ] );
      ("uptime_s", Json.num_of (Unix.gettimeofday () -. t.started));
    ]

let record_latency t elapsed =
  t.lat_count <- t.lat_count + 1;
  t.lat_sum <- t.lat_sum +. elapsed;
  if elapsed < t.lat_min then t.lat_min <- elapsed;
  if elapsed > t.lat_max then t.lat_max <- elapsed

let respond t request =
  t.requests <- t.requests + 1;
  match request with
  | Error (code, msg) ->
      t.errors <- t.errors + 1;
      P.error_response ~code msg
  | Ok req -> (
      let id = P.request_id req in
      match req with
      | P.Stats _ -> P.ok_response ?id ~kind:"stats" [ ("stats", stats_json t) ]
      | P.Ping _ -> P.ok_response ?id ~kind:"pong" []
      | P.Shutdown _ ->
          P.ok_response ?id ~kind:"bye"
            [ ("served", Json.Num (float_of_int t.requests)) ]
      | P.Evaluate { submission; opts; _ } -> (
          t.evaluations <- t.evaluations + 1;
          let t0 = Unix.gettimeofday () in
          let result =
            try evaluate t ~submission opts
            with e -> Error (P.Internal, Printexc.to_string e)
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          record_latency t elapsed;
          match result with
          | Ok (report, cached) ->
              P.ok_response ?id ~kind:"report"
                [
                  ("cached", Json.Bool cached);
                  ("elapsed_ms", Json.num_of (1000. *. elapsed));
                  ("report", report);
                ]
          | Error (code, msg) ->
              t.errors <- t.errors + 1;
              P.error_response ?id ~code msg)
      | P.Montecarlo { submission; runs; base_seed; _ } -> (
          t.evaluations <- t.evaluations + 1;
          let t0 = Unix.gettimeofday () in
          let result =
            try montecarlo t ~submission ~runs ~base_seed
            with e -> Error (P.Internal, Printexc.to_string e)
          in
          let elapsed = Unix.gettimeofday () -. t0 in
          record_latency t elapsed;
          match result with
          | Ok (payload, cached) ->
              P.ok_response ?id ~kind:"costs"
                [
                  ("cached", Json.Bool cached);
                  ("elapsed_ms", Json.num_of (1000. *. elapsed));
                  ("batch", payload);
                ]
          | Error (code, msg) ->
              t.errors <- t.errors + 1;
              P.error_response ?id ~code msg))

let close t = Explore.Cache.close t.cache
