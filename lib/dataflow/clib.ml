module M = Numerics.Matrix
module I = Interval

(* interval image of an affine row Σ scale·port (+ extra terms),
   hulled over the rows of a gain matrix — shared by the matrix-gain
   and state-feedback transfers *)
let rows_hull ~rows row =
  let acc = ref (row 0) in
  for r = 1 to rows - 1 do
    acc := I.join !acc (row r)
  done;
  [| !acc |]

let constant ?(name = "const") v =
  let v = Array.copy v in
  Block.make ~name ~out_widths:[| Array.length v |]
    ~transfer:(Block.Static [| I.hull v |])
    (fun _ -> [| Array.copy v |])

let gain ?(name = "gain") k =
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Map (fun ins -> [| I.scale k ins.(0) |]))
    (fun ctx -> [| [| k *. ctx.Block.inputs.(0).(0) |] |])

let matrix_gain ?(name = "matrix_gain") k =
  let transfer ins =
    rows_hull ~rows:(M.rows k) (fun r ->
        let acc = ref (I.point 0.) in
        for j = 0 to M.cols k - 1 do
          acc := I.add !acc (I.scale (M.get k r j) ins.(0))
        done;
        !acc)
  in
  Block.make ~name ~in_widths:[| M.cols k |] ~out_widths:[| M.rows k |] ~feedthrough:true
    ~always_active:true ~transfer:(Block.Map transfer) (fun ctx ->
      [| M.mul_vec k ctx.Block.inputs.(0) |])

let sum ?(name = "sum") signs =
  if Array.length signs = 0 then invalid_arg "Clib.sum: no inputs";
  let transfer ins =
    let acc = ref (I.point 0.) in
    Array.iteri (fun i s -> acc := I.add !acc (I.scale s ins.(i))) signs;
    [| !acc |]
  in
  Block.make ~name
    ~in_widths:(Array.map (fun _ -> 1) signs)
    ~out_widths:[| 1 |] ~feedthrough:true ~always_active:true
    ~transfer:(Block.Map transfer) (fun ctx ->
      let acc = ref 0. in
      Array.iteri (fun i s -> acc := !acc +. (s *. ctx.Block.inputs.(i).(0))) signs;
      [| [| !acc |] |])

let product ?(name = "product") n =
  if n <= 0 then invalid_arg "Clib.product: need at least one input";
  let transfer ins = [| Array.fold_left I.mul (I.point 1.) ins |] in
  Block.make ~name ~in_widths:(Array.make n 1) ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true ~transfer:(Block.Map transfer) (fun ctx ->
      let acc = ref 1. in
      Array.iter (fun u -> acc := !acc *. u.(0)) ctx.Block.inputs;
      [| [| !acc |] |])

let divide ?(name = "divide") () =
  Block.make ~name ~in_widths:[| 1; 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Map (fun ins -> [| I.div ins.(0) ins.(1) |]))
    ~guards:[ Block.Nonzero 1 ]
    (fun ctx -> [| [| ctx.Block.inputs.(0).(0) /. ctx.Block.inputs.(1).(0) |] |])

let sqrt_op ?(name = "sqrt") () =
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Map (fun ins -> [| I.sqrt_ ins.(0) |]))
    ~guards:[ Block.Nonnegative 0 ]
    (fun ctx -> [| [| sqrt ctx.Block.inputs.(0).(0) |] |])

let log_op ?(name = "log") () =
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Map (fun ins -> [| I.log_ ins.(0) |]))
    ~guards:[ Block.Positive 0 ]
    (fun ctx -> [| [| log ctx.Block.inputs.(0).(0) |] |])

let saturation ?(name = "saturation") ~lo ~hi () =
  if lo >= hi then invalid_arg "Clib.saturation: lo >= hi";
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Map (fun ins -> [| I.clamp ~lo ~hi ins.(0) |]))
    ~clamp:(lo, hi)
    (fun ctx -> [| [| Float.max lo (Float.min hi ctx.Block.inputs.(0).(0)) |] |])

let mux ?(name = "mux") widths =
  let total = Array.fold_left ( + ) 0 widths in
  let transfer ins =
    if Array.length ins = 0 then [| I.point 0. |]
    else [| Array.fold_left I.join ins.(0) ins |]
  in
  Block.make ~name ~in_widths:widths ~out_widths:[| total |] ~feedthrough:true
    ~always_active:true ~transfer:(Block.Map transfer) (fun ctx ->
      [| Array.concat (Array.to_list ctx.Block.inputs) |])

let demux ?(name = "demux") widths =
  let total = Array.fold_left ( + ) 0 widths in
  Block.make ~name ~in_widths:[| total |] ~out_widths:widths ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Map (fun ins -> Array.map (fun _ -> ins.(0)) widths))
    (fun ctx ->
      let v = ctx.Block.inputs.(0) in
      let offset = ref 0 in
      Array.map
        (fun w ->
          let part = Array.sub v !offset w in
          offset := !offset + w;
          part)
        widths)

let step_source ?(name = "step") ?(at = 0.) ?(before = 0.) ~after () =
  Block.make ~name ~out_widths:[| 1 |] ~always_active:true
    ~transfer:(Block.Static [| I.join (I.point before) (I.point after) |])
    (fun ctx -> [| [| (if ctx.Block.time >= at then after else before) |] |])

let sine_source ?(name = "sine") ?(amplitude = 1.) ?(phase = 0.) ~freq_hz () =
  let a = Float.abs amplitude in
  Block.make ~name ~out_widths:[| 1 |] ~always_active:true
    ~transfer:(Block.Static [| I.v (-.a) a |])
    (fun ctx ->
      [| [| amplitude *. sin ((2. *. Float.pi *. freq_hz *. ctx.Block.time) +. phase) |] |])

let integrator ?(name = "integrator") x0 =
  let n = Array.length x0 in
  (* the state drifts monotonically in the direction the derivative
     sign allows: a one-signed input keeps one bound at its initial
     value, a zero input freezes the state entirely *)
  let step ~prev ins =
    let d = ins.(0) and p = prev.(0) in
    [|
      I.v
        (if d.I.lo < 0. then neg_infinity else p.I.lo)
        (if d.I.hi > 0. then infinity else p.I.hi);
    |]
  in
  Block.make ~name ~in_widths:[| n |] ~out_widths:[| n |] ~cstate0:(Array.copy x0)
    ~always_active:true
    ~transfer:(Block.Update { init = [| I.hull x0 |]; step; tracks_input = false })
    ~derivatives:(fun ctx -> Array.copy ctx.Block.inputs.(0))
    (fun ctx -> [| Array.copy ctx.Block.cstate |])

let lti_continuous ?name ?(split_inputs = false) ?(split_outputs = false) ~x0
    (sys : Control.Lti.t) =
  (match sys.domain with
  | Control.Lti.Continuous -> ()
  | Control.Lti.Discrete _ -> invalid_arg "Clib.lti_continuous: discrete system");
  if Array.length x0 <> Control.Lti.state_dim sys then
    invalid_arg "Clib.lti_continuous: x0 dimension mismatch";
  let name = Option.value name ~default:"plant" in
  let m = Control.Lti.input_dim sys and p = Control.Lti.output_dim sys in
  let in_widths = if split_inputs then Array.make m 1 else [| m |] in
  let out_widths = if split_outputs then Array.make p 1 else [| p |] in
  let gather_u inputs = if split_inputs then Array.map (fun v -> v.(0)) inputs else inputs.(0) in
  let deliver_y y = if split_outputs then Array.map (fun v -> [| v |]) y else [| y |] in
  let feedthrough = M.norm_inf sys.d > 0. in
  Block.make ~name ~in_widths ~out_widths ~cstate0:(Array.copy x0) ~feedthrough
    ~always_active:true
    ~derivatives:(fun ctx -> Control.Lti.deriv sys ctx.Block.cstate (gather_u ctx.Block.inputs))
    (fun ctx -> deliver_y (Control.Lti.output sys ctx.Block.cstate (gather_u ctx.Block.inputs)))

let state_feedback ?(name = "state_feedback") k =
  let n = M.cols k and m = M.rows k in
  let held = ref (Array.make m 0.) in
  let step ~prev:_ ins =
    rows_hull ~rows:m (fun r ->
        let acc = ref (I.point 0.) in
        for j = 0 to n - 1 do
          acc := I.add !acc (I.scale (-.M.get k r j) ins.(j))
        done;
        !acc)
  in
  Block.make ~name ~in_widths:(Array.make n 1) ~out_widths:[| m |] ~event_inputs:1
    ~transfer:(Block.Update { init = [| I.point 0. |]; step; tracks_input = false })
    ~on_event:(fun ctx ~port:_ ->
      let x = Array.map (fun v -> v.(0)) ctx.Block.inputs in
      held := Array.map (fun u -> -.u) (M.mul_vec k x);
      [])
    ~reset:(fun () -> held := Array.make m 0.)
    (fun _ -> [| Array.copy !held |])

let lqg ?(name = "lqg") ~sysd ~k ~kalman () =
  (match sysd.Control.Lti.domain with
  | Control.Lti.Discrete _ -> ()
  | Control.Lti.Continuous -> invalid_arg "Clib.lqg: observer model must be discrete");
  let n = Control.Lti.state_dim sysd in
  let m = Control.Lti.input_dim sysd in
  let p = Control.Lti.output_dim sysd in
  if M.rows k <> m || M.cols k <> n then invalid_arg "Clib.lqg: gain must be m x n";
  let l_gain = kalman.Control.Kalman.l in
  if M.rows l_gain <> n || M.cols l_gain <> p then
    invalid_arg "Clib.lqg: Kalman gain must be n x p";
  let xhat = ref (Array.make n 0.) in
  let held = ref (Array.make m 0.) in
  Block.make ~name ~in_widths:(Array.make p 1) ~out_widths:[| m |] ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      let y = Array.map (fun v -> v.(0)) ctx.Block.inputs in
      (* control from the predicted estimate, then measurement update *)
      let u = Array.map (fun v -> -.v) (M.mul_vec k !xhat) in
      let innovation =
        Numerics.Vec.sub y (Control.Lti.output sysd !xhat u)
      in
      xhat :=
        Numerics.Vec.add
          (Control.Lti.step_discrete sysd !xhat u)
          (M.mul_vec l_gain innovation);
      held := u;
      [])
    ~reset:(fun () ->
      xhat := Array.make n 0.;
      held := Array.make m 0.)
    (fun _ -> [| Array.copy !held |])

let delayed_state_feedback ?(name = "delayed_state_feedback") k =
  let m = M.rows k in
  let n = M.cols k - m in
  if n <= 0 then invalid_arg "Clib.delayed_state_feedback: K must have n + m columns";
  let u_prev = ref (Array.make m 0.) in
  let held = ref (Array.make m 0.) in
  (* the augmented state feeds the previous output back through the
     last m columns of K, so the abstract step reads prev.(0) there *)
  let step ~prev ins =
    rows_hull ~rows:m (fun r ->
        let acc = ref (I.point 0.) in
        for j = 0 to n - 1 do
          acc := I.add !acc (I.scale (-.M.get k r j) ins.(j))
        done;
        for j = n to n + m - 1 do
          acc := I.add !acc (I.scale (-.M.get k r j) prev.(0))
        done;
        !acc)
  in
  Block.make ~name ~in_widths:(Array.make n 1) ~out_widths:[| m |] ~event_inputs:1
    ~transfer:(Block.Update { init = [| I.point 0. |]; step; tracks_input = false })
    ~on_event:(fun ctx ~port:_ ->
      let x = Array.map (fun v -> v.(0)) ctx.Block.inputs in
      let aug = Array.append x !u_prev in
      let u = Array.map (fun v -> -.v) (M.mul_vec k aug) in
      u_prev := Array.copy u;
      held := u;
      [])
    ~reset:(fun () ->
      u_prev := Array.make m 0.;
      held := Array.make m 0.)
    (fun _ -> [| Array.copy !held |])

let lti_discrete ?name ~x0 (sys : Control.Lti.t) =
  (match sys.domain with
  | Control.Lti.Discrete _ -> ()
  | Control.Lti.Continuous -> invalid_arg "Clib.lti_discrete: continuous system");
  if Array.length x0 <> Control.Lti.state_dim sys then
    invalid_arg "Clib.lti_discrete: x0 dimension mismatch";
  let name = Option.value name ~default:"controller" in
  let x = ref (Array.copy x0) in
  let held = ref (Array.make (Control.Lti.output_dim sys) 0.) in
  Block.make ~name
    ~in_widths:[| Control.Lti.input_dim sys |]
    ~out_widths:[| Control.Lti.output_dim sys |]
    ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      let u = ctx.Block.inputs.(0) in
      held := Control.Lti.output sys !x u;
      x := Control.Lti.step_discrete sys !x u;
      [])
    ~reset:(fun () ->
      x := Array.copy x0;
      held := Array.make (Control.Lti.output_dim sys) 0.)
    (fun _ -> [| Array.copy !held |])

let sample_hold ?(name = "sample_hold") ?initial width =
  let initial =
    match initial with
    | Some v ->
        if Array.length v <> width then invalid_arg "Clib.sample_hold: initial width";
        Array.copy v
    | None -> Array.make width 0.
  in
  let held = ref (Array.copy initial) in
  Block.make ~name ~in_widths:[| width |] ~out_widths:[| width |] ~event_inputs:1
    ~transfer:
      (Block.Update
         {
           init = [| I.hull initial |];
           step = (fun ~prev:_ ins -> [| ins.(0) |]);
           tracks_input = true;
         })
    ~on_event:(fun ctx ~port:_ ->
      held := Array.copy ctx.Block.inputs.(0);
      [])
    ~reset:(fun () -> held := Array.copy initial)
    (fun _ -> [| Array.copy !held |])

let unit_delay ?(name = "unit_delay") y0 =
  let width = Array.length y0 in
  let held = ref (Array.copy y0) in
  let next = ref (Array.copy y0) in
  Block.make ~name ~in_widths:[| width |] ~out_widths:[| width |] ~event_inputs:1
    ~transfer:
      (Block.Update
         {
           init = [| I.hull y0 |];
           step = (fun ~prev:_ ins -> [| ins.(0) |]);
           tracks_input = true;
         })
    ~on_event:(fun ctx ~port:_ ->
      held := !next;
      next := Array.copy ctx.Block.inputs.(0);
      [])
    ~reset:(fun () ->
      held := Array.copy y0;
      next := Array.copy y0)
    (fun _ -> [| Array.copy !held |])

let pid ?(name = "pid") controller =
  let held = ref 0. in
  let g = Control.Pid.gains controller in
  let ts = Control.Pid.ts controller in
  let umin, umax = Control.Pid.limits controller in
  (* abstract image of one Pid.step: u = clamp(P + I + D).  The
     integral is bounded only by the anti-windup clamp; the filtered
     derivative is a convex combination of raw slopes, so its hull
     with the zero initial state covers every filter state. *)
  let step ~prev:_ ins =
    let e = I.sub ins.(0) ins.(1) in
    let p = I.scale g.Control.Pid.kp e in
    let i =
      if g.Control.Pid.ki = 0. then I.point 0.
      else
        match Control.Pid.windup controller with
        | Some w -> I.v (-.Float.abs w) (Float.abs w)
        | None -> I.top
    in
    let d =
      if g.Control.Pid.kd = 0. then I.point 0.
      else I.join (I.point 0.) (I.scale (g.Control.Pid.kd /. ts) (I.sub e e))
    in
    let u = I.add (I.add p i) d in
    [| I.clamp ?lo:umin ?hi:umax u |]
  in
  Block.make ~name ~in_widths:[| 1; 1 |] ~out_widths:[| 1 |] ~event_inputs:1
    ~transfer:(Block.Update { init = [| I.point 0. |]; step; tracks_input = false })
    ~on_event:(fun ctx ~port:_ ->
      let r = ctx.Block.inputs.(0).(0) and y = ctx.Block.inputs.(1).(0) in
      held := Control.Pid.step controller ~r ~y;
      [])
    ~reset:(fun () ->
      Control.Pid.reset controller;
      held := 0.)
    (fun _ -> [| [| !held |] |])

let stateful ~name ~in_widths ~out_widths ?(reset = fun () -> ()) ?transfer step =
  let zero () = Array.map (fun w -> Array.make w 0.) out_widths in
  let held = ref (zero ()) in
  Block.make ~name ~in_widths ~out_widths ~event_inputs:1 ?transfer
    ~on_event:(fun ctx ~port:_ ->
      let out = step ctx.Block.inputs in
      if Array.length out <> Array.length out_widths then
        invalid_arg (Printf.sprintf "Block %S: step returned wrong port count" name);
      held := out;
      [])
    ~reset:(fun () ->
      reset ();
      held := zero ())
    (fun _ -> Array.map Array.copy !held)

let pure_fn ~name ~in_widths ~out_widths ?transfer f =
  Block.make ~name ~in_widths ~out_widths ~feedthrough:true ~always_active:true ?transfer
    (fun ctx -> f ctx.Block.inputs)

let relay ?(name = "relay") ?(initially_on = false) ~on_above ~off_below ~out_on ~out_off
    () =
  if off_below > on_above then invalid_arg "Clib.relay: off_below > on_above";
  let on = ref initially_on in
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~event_outputs:1 ~surfaces:2
    ~always_active:true
    ~transfer:(Block.Static [| I.join (I.point out_on) (I.point out_off) |])
    ~crossings:(fun ctx ->
      let u = ctx.Block.inputs.(0).(0) in
      [| u -. on_above; u -. off_below |])
    ~on_crossing:(fun _ ~surface ~rising ->
      let toggled =
        match surface with
        | 0 when rising && not !on ->
            on := true;
            true
        | 1 when (not rising) && !on ->
            on := false;
            true
        | _ -> false
      in
      if toggled then [ Block.Emit { port = 0; delay = 0. } ] else [])
    ~reset:(fun () -> on := initially_on)
    (fun _ -> [| [| (if !on then out_on else out_off) |] |])

let quantizer ?(name = "quantizer") ~step () =
  if step <= 0. then invalid_arg "Clib.quantizer: non-positive step";
  let half = step /. 2. in
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:
      (Block.Map (fun ins -> [| I.add ins.(0) (I.v (-.half) half) |]))
    (fun ctx -> [| [| step *. Float.round (ctx.Block.inputs.(0).(0) /. step) |] |])

let rate_limiter ?(name = "rate_limiter") ~rising ~falling () =
  if rising <= 0. || falling <= 0. then invalid_arg "Clib.rate_limiter: non-positive rate";
  let held = ref 0. in
  let last_time = ref Float.nan in
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~event_inputs:1
    ~transfer:
      (* the output chases the input and never overshoots it, so the
         reachable set is the hull of the initial state and the input *)
      (Block.Update
         {
           init = [| I.point 0. |];
           step = (fun ~prev:_ ins -> [| ins.(0) |]);
           tracks_input = true;
         })
    ~on_event:(fun ctx ~port:_ ->
      let u = ctx.Block.inputs.(0).(0) in
      (if Float.is_nan !last_time then held := u
       else begin
         let dt = ctx.Block.time -. !last_time in
         let delta = u -. !held in
         let bounded = Float.max (-.falling *. dt) (Float.min (rising *. dt) delta) in
         held := !held +. bounded
       end);
      last_time := ctx.Block.time;
      [])
    ~reset:(fun () ->
      held := 0.;
      last_time := Float.nan)
    (fun _ -> [| [| !held |] |])

let dead_zone ?(name = "dead_zone") ~width () =
  if width < 0. then invalid_arg "Clib.dead_zone: negative width";
  let dz u = if u > width then u -. width else if u < -.width then u +. width else 0. in
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    (* dz is monotone, so the image of an interval is the interval of
       the endpoint images *)
    ~transfer:(Block.Map (fun ins -> [| I.v (dz ins.(0).I.lo) (dz ins.(0).I.hi) |]))
    (fun ctx -> [| [| dz ctx.Block.inputs.(0).(0) |] |])

let lookup_table ?(name = "lookup_table") table =
  let lo, hi = Numerics.Interp.codomain table in
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~feedthrough:true
    ~always_active:true
    ~transfer:(Block.Static [| I.v lo hi |])
    (fun ctx -> [| [| Numerics.Interp.eval table ctx.Block.inputs.(0).(0) |] |])

let biquad ?(name = "biquad") ~b ~a () =
  if Array.length a = 0 || Array.length a > 3 || Array.length b = 0 || Array.length b > 3
  then invalid_arg "Clib.biquad: coefficient arrays must have length 1..3";
  if a.(0) = 0. then invalid_arg "Clib.biquad: a.(0) must be nonzero";
  let coef arr i = if i < Array.length arr then arr.(i) /. a.(0) else 0. in
  let b0 = coef b 0 and b1 = coef b 1 and b2 = coef b 2 in
  let a1 = coef a 1 and a2 = coef a 2 in
  let s1 = ref 0. and s2 = ref 0. in
  let held = ref 0. in
  Block.make ~name ~in_widths:[| 1 |] ~out_widths:[| 1 |] ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      let u = ctx.Block.inputs.(0).(0) in
      let y = (b0 *. u) +. !s1 in
      s1 := (b1 *. u) -. (a1 *. y) +. !s2;
      s2 := (b2 *. u) -. (a2 *. y);
      held := y;
      [])
    ~reset:(fun () ->
      s1 := 0.;
      s2 := 0.;
      held := 0.)
    (fun _ -> [| [| !held |] |])

let noise_sample_hold ?(name = "noisy_sample") ~rng ~sigma width =
  let held = ref (Array.make width 0.) in
  Block.make ~name ~in_widths:[| width |] ~out_widths:[| width |] ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      held :=
        Array.map
          (fun x -> x +. Numerics.Rng.gaussian rng ~mu:0. ~sigma ())
          ctx.Block.inputs.(0);
      [])
    ~reset:(fun () -> held := Array.make width 0.)
    (fun _ -> [| Array.copy !held |])
