let clock ?(name = "clock") ?(offset = 0.) ~period () =
  if period <= 0. then invalid_arg "Eventlib.clock: non-positive period";
  if offset < 0. then invalid_arg "Eventlib.clock: negative offset";
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~initial_actions:[ Block.Self { port = 0; delay = offset } ]
    ~on_event:(fun _ ~port:_ ->
      [ Block.Emit { port = 0; delay = 0. }; Block.Self { port = 0; delay = period } ])
    (fun _ -> [||])

let initial_event ?(name = "initial_event") ?(at = 0.) () =
  if at < 0. then invalid_arg "Eventlib.initial_event: negative time";
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~initial_actions:[ Block.Self { port = 0; delay = at } ]
    ~on_event:(fun _ ~port:_ -> [ Block.Emit { port = 0; delay = 0. } ])
    (fun _ -> [||])

let event_source ?(name = "event_source") times =
  if Array.length times = 0 then invalid_arg "Eventlib.event_source: empty schedule";
  if times.(0) < 0. then invalid_arg "Eventlib.event_source: negative time";
  for i = 1 to Array.length times - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Eventlib.event_source: times must be strictly increasing"
  done;
  let cursor = ref 0 in
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~initial_actions:[ Block.Self { port = 0; delay = times.(0) } ]
    ~on_event:(fun _ ~port:_ ->
      let i = !cursor in
      incr cursor;
      let emit = Block.Emit { port = 0; delay = 0. } in
      if !cursor < Array.length times then
        [ emit; Block.Self { port = 0; delay = times.(!cursor) -. times.(i) } ]
      else [ emit ])
    ~reset:(fun () -> cursor := 0)
    (fun _ -> [||])

let event_window ?name ~from_t ~until_t () =
  if until_t <= from_t then invalid_arg "Eventlib.event_window: empty window";
  let name =
    Option.value name ~default:(Printf.sprintf "event_window[%g,%g)" from_t until_t)
  in
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~on_event:(fun ctx ~port:_ ->
      if ctx.Block.time >= from_t -. 1e-12 && ctx.Block.time < until_t -. 1e-12 then
        [ Block.Emit { port = 0; delay = 0. } ]
      else [])
    (fun _ -> [||])

let event_delay ?name ~delay () =
  if delay < 0. then invalid_arg "Eventlib.event_delay: negative delay";
  let name = Option.value name ~default:(Printf.sprintf "event_delay(%g)" delay) in
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~on_event:(fun _ ~port:_ -> [ Block.Emit { port = 0; delay } ])
    (fun _ -> [||])

let event_delay_fn ?(name = "event_delay_fn") sample =
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~on_event:(fun _ ~port:_ -> [ Block.Emit { port = 0; delay = Float.max 0. (sample ()) } ])
    (fun _ -> [||])

let event_select ?(name = "event_select") ~channels ~mapping () =
  if channels <= 0 then invalid_arg "Eventlib.event_select: need at least one channel";
  Block.make ~name ~in_widths:[| 1 |] ~event_inputs:1 ~event_outputs:channels
    ~on_event:(fun ctx ~port:_ ->
      let v = ctx.Block.inputs.(0).(0) in
      let channel = mapping v in
      if channel < 0 || channel >= channels then
        failwith
          (Printf.sprintf "Block %S: condition mapping of %g gave channel %d (of %d)" name
             v channel channels);
      [ Block.Emit { port = channel; delay = 0. } ])
    (fun _ -> [||])

let synchronization ?(name = "synchronization") ~inputs () =
  if inputs <= 0 then invalid_arg "Eventlib.synchronization: need at least one input";
  let received = Array.make inputs false in
  Block.make ~name ~event_inputs:inputs ~event_outputs:1
    ~on_event:(fun _ ~port ->
      received.(port) <- true;
      if Array.for_all Fun.id received then begin
        Array.fill received 0 inputs false;
        [ Block.Emit { port = 0; delay = 0. } ]
      end
      else [])
    ~reset:(fun () -> Array.fill received 0 inputs false)
    (fun _ -> [||])

let zero_cross ?(name = "zero_cross") ?(direction = `Either) () =
  Block.make ~name ~in_widths:[| 1 |] ~event_outputs:1 ~surfaces:1
    ~crossings:(fun ctx -> [| ctx.Block.inputs.(0).(0) |])
    ~on_crossing:(fun _ ~surface:_ ~rising ->
      let fire =
        match direction with
        | `Either -> true
        | `Rising -> rising
        | `Falling -> not rising
      in
      if fire then [ Block.Emit { port = 0; delay = 0. } ] else [])
    (fun _ -> [||])

let divider ?(name = "divider") ?(phase = 0) ~factor () =
  if factor < 1 then invalid_arg "Eventlib.divider: factor must be at least 1";
  if phase < 0 || phase >= factor then invalid_arg "Eventlib.divider: phase out of range";
  let count = ref 0 in
  Block.make ~name ~event_inputs:1 ~event_outputs:1
    ~on_event:(fun _ ~port:_ ->
      let fire = !count mod factor = phase in
      incr count;
      if fire then [ Block.Emit { port = 0; delay = 0. } ] else [])
    ~reset:(fun () -> count := 0)
    (fun _ -> [||])

let event_counter ?(name = "event_counter") () =
  let count = ref 0 in
  Block.make ~name ~out_widths:[| 1 |] ~event_inputs:1
    ~transfer:
      (Block.Update
         {
           init = [| Interval.point 0. |];
           step = (fun ~prev:_ _ -> [| Interval.v 0. infinity |]);
           tracks_input = false;
         })
    ~on_event:(fun _ ~port:_ ->
      incr count;
      [])
    ~reset:(fun () -> count := 0)
    (fun _ -> [| [| float_of_int !count |] |])

let event_latch_time ?(name = "event_latch_time") () =
  let last = ref Float.nan in
  Block.make ~name ~out_widths:[| 1 |] ~event_inputs:1
    ~on_event:(fun ctx ~port:_ ->
      last := ctx.Block.time;
      [])
    ~reset:(fun () -> last := Float.nan)
    (fun _ -> [| [| !last |] |])
