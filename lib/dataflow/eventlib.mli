(** Event-processing blocks — the machinery of Section 3 of the paper.

    These blocks generate, delay, route and synchronise activation
    events.  They are the building material of the {e graph of delays}
    that models a SynDEx schedule inside the block diagram:
    - {!event_delay} models the execution duration of one SynDEx
      operation (paper §3.2.1, Fig. 4);
    - {!event_select} + a condition-mapping function model
      conditioning (paper §3.2.2, Fig. 5);
    - {!synchronization} is the new block the paper introduces for
      inter-processor message synchronisation (paper §3.2.3). *)

val clock : ?name:string -> ?offset:float -> period:float -> unit -> Block.t
(** Periodic activation clock (the stroboscopic-model event source of
    Fig. 2).  Emits on its single event output at [offset],
    [offset+period], ...  Raises [Invalid_argument] if
    [period <= 0] or [offset < 0]. *)

val initial_event : ?name:string -> ?at:float -> unit -> Block.t
(** Emits exactly one event at time [at] (default [0.]). *)

val event_source : ?name:string -> float array -> Block.t
(** Replays a strictly increasing, non-empty sequence of absolute
    event times on its single event output. *)

val event_window : ?name:string -> from_t:float -> until_t:float -> unit -> Block.t
(** Gate: forwards incoming events whose occurrence time lies in
    [\[from_t, until_t)] and swallows the rest — how
    {!Translator.Cosim} splits one executive's activation taps into
    nominal / transient / degraded phases.  Raises [Invalid_argument]
    on an empty window. *)

val event_delay : ?name:string -> delay:float -> unit -> Block.t
(** Paper's [Event Delay]: each incoming event is re-emitted [delay]
    time units later.  [delay >= 0]. *)

val event_delay_fn : ?name:string -> (unit -> float) -> Block.t
(** Like {!event_delay} but the delay of each occurrence is obtained
    by calling the function — used to model jittery execution
    durations.  A negative sampled delay is clamped to [0.]. *)

val event_select : ?name:string -> channels:int -> mapping:(float -> int) -> unit -> Block.t
(** Paper's [Event Select] + "Condition Mapping": the block has one
    width-1 regular input (the conditioning variable), one event input
    and [channels] event outputs.  On activation, it forwards the
    event to output channel [mapping v] where [v] is the current
    value of the regular input.  A mapping result outside
    [0..channels−1] raises [Failure] at simulation time. *)

val synchronization : ?name:string -> inputs:int -> unit -> Block.t
(** Paper's new [Synchronization] block (§3.2.3): [N = inputs] event
    inputs, one event output.  It emits an output event — and resets
    its internal memory — once {e every} input port has received at
    least one event since the last reset. *)

val zero_cross :
  ?name:string -> ?direction:[ `Rising | `Falling | `Either ] -> unit -> Block.t
(** State-event detector (Scicos's zcross): one width-1 regular input,
    one event output; emits an event at the instant the input signal
    crosses zero in the given direction (default [`Either]).  The
    engine locates the crossing by bisection during continuous
    integration. *)

val divider : ?name:string -> ?phase:int -> factor:int -> unit -> Block.t
(** Event-rate divider: one event input, one event output; forwards
    every [factor]-th incoming event (the [phase]-th of each group,
    default 0 — the first).  The standard way to derive a slow outer
    control loop from the fast inner clock (multi-rate cascades).
    Raises [Invalid_argument] unless [factor >= 1] and
    [0 <= phase < factor]. *)

val event_counter : ?name:string -> unit -> Block.t
(** One event input, no outputs, one width-1 regular output carrying
    the number of activations so far — handy for tests and probes. *)

val event_latch_time : ?name:string -> unit -> Block.t
(** One event input, width-1 regular output holding the time of the
    last activation ([nan] before the first) — used to measure
    sampling/actuation instants [I_j(k)], [O_j(k)] of paper eq. (1)–(2). *)
