type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: NaN endpoint";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

(* Total: a NaN endpoint means the computation escaped the reals on
   that side, so it degrades to the matching infinity. *)
let v lo hi =
  let lo = if Float.is_nan lo then neg_infinity else lo in
  let hi = if Float.is_nan hi then infinity else hi in
  if lo <= hi then { lo; hi } else { lo = hi; hi = lo }

let point x = if Float.is_nan x then top else { lo = x; hi = x }

let hull xs =
  if Array.length xs = 0 then point 0.
  else
    Array.fold_left
      (fun acc x ->
        if Float.is_nan x then top else v (Float.min acc.lo x) (Float.max acc.hi x))
      (point xs.(0)) xs

let is_top a = a.lo = neg_infinity && a.hi = infinity
let is_point a = a.lo = a.hi
let bounded a = Float.is_finite a.lo && Float.is_finite a.hi
let contains a x = if Float.is_nan x then is_top a else a.lo <= x && x <= a.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let equal a b = a.lo = b.lo && a.hi = b.hi
let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let neg a = { lo = -.a.hi; hi = -.a.lo }
let add a b = v (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = add a (neg b)

let scale k a =
  if Float.is_nan k then top
  else if k = 0. then point 0.
  else if k > 0. then v (k *. a.lo) (k *. a.hi)
  else v (k *. a.hi) (k *. a.lo)

(* Moore corner product with the 0·∞ = 0 convention (sound: the zero
   endpoint contributes the value 0, reached in the limit). *)
let mulc x y = if x = 0. || y = 0. then 0. else x *. y

let mul a b =
  let p1 = mulc a.lo b.lo and p2 = mulc a.lo b.hi in
  let p3 = mulc a.hi b.lo and p4 = mulc a.hi b.hi in
  v
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let div a b =
  if b.lo <= 0. && b.hi >= 0. then top
  else
    let q1 = a.lo /. b.lo and q2 = a.lo /. b.hi in
    let q3 = a.hi /. b.lo and q4 = a.hi /. b.hi in
    v
      (Float.min (Float.min q1 q2) (Float.min q3 q4))
      (Float.max (Float.max q1 q2) (Float.max q3 q4))

let abs a =
  if a.lo >= 0. then a
  else if a.hi <= 0. then neg a
  else { lo = 0.; hi = Float.max (-.a.lo) a.hi }

let clamp ?(lo = neg_infinity) ?(hi = infinity) a =
  let c x = Float.max lo (Float.min hi x) in
  v (c a.lo) (c a.hi)

let sqrt_ a = if a.hi < 0. then top else v (sqrt (Float.max 0. a.lo)) (sqrt a.hi)

let log_ a =
  if a.hi <= 0. then top
  else v (if a.lo <= 0. then neg_infinity else log a.lo) (log a.hi)

let width a = a.hi -. a.lo
let to_string a = Printf.sprintf "[%g, %g]" a.lo a.hi
let pp ppf a = Format.pp_print_string ppf (to_string a)
