(** Closed real intervals with infinite endpoints — the abstract value
    domain of the signal-range analysis ({!Verify.Absint}).

    An interval [{lo; hi}] stands for every real in [\[lo, hi\]]; the
    endpoints may be [-∞]/[+∞] but never NaN (operations whose IEEE
    result would be NaN widen the endpoint to the matching infinity
    instead, so every operation is total and sound).  The full line
    [⊤ = \[-∞, +∞\]] additionally stands for {e any} float, NaN
    included — an opaque block about which nothing is known. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** Raises [Invalid_argument] on NaN endpoints or [lo > hi]. *)

val v : float -> float -> t
(** Total constructor: NaN endpoints become the matching infinity,
    reversed endpoints are swapped. *)

val point : float -> t
(** The singleton [\[x, x\]]; {!top} when [x] is NaN. *)

val top : t
(** [\[-∞, +∞\]] — no information. *)

val hull : float array -> t
(** Smallest interval containing every element (⊤ if any is NaN);
    {!point}[ 0.] for the empty array. *)

val is_top : t -> bool
val is_point : t -> bool
val bounded : t -> bool
(** Both endpoints finite. *)

val contains : t -> float -> bool
(** Membership.  NaN is a member of {!top} only (an opaque signal may
    be NaN; a bounded one provably is not). *)

val subset : t -> t -> bool
(** [subset a b] — every value of [a] is a value of [b]. *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Convex hull (least upper bound). *)

val meet : t -> t -> t option
(** Intersection; [None] when disjoint. *)

(** {2 Arithmetic}  All operations are inclusion-monotone and map
    abstract values to a superset of the concrete image. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
(** [scale 0.] is {!point}[ 0.] even on unbounded arguments. *)

val mul : t -> t -> t
val div : t -> t -> t
(** ⊤ when the divisor may be zero (the concrete quotient may be
    ±∞ or NaN). *)

val abs : t -> t
val clamp : ?lo:float -> ?hi:float -> t -> t
(** Image under [x ↦ max lo (min hi x)] (missing bounds are ±∞). *)

val sqrt_ : t -> t
(** Image under [sqrt] of the non-negative part; ⊤ when the argument
    may be entirely negative (NaN). *)

val log_ : t -> t
(** Image under [log]; ⊤ when the argument may be non-positive. *)

val width : t -> float
(** [hi -. lo] (may be [+∞]). *)

val to_string : t -> string
(** ["[lo, hi]"] with [%g] endpoints. *)

val pp : Format.formatter -> t -> unit
