type action =
  | Emit of { port : int; delay : float }
  | Self of { port : int; delay : float }
  | Set_cstate of float array

type context = {
  mutable time : float;
  mutable inputs : float array array;
  mutable cstate : float array;
}

type t = {
  name : string;
  in_widths : int array;
  out_widths : int array;
  event_inputs : int;
  event_outputs : int;
  cstate0 : float array;
  feedthrough : bool;
  always_active : bool;
  outputs : context -> float array array;
  derivatives : (context -> float array) option;
  on_event : (context -> port:int -> action list) option;
  surfaces : int;
  crossings : (context -> float array) option;
  on_crossing : (context -> surface:int -> rising:bool -> action list) option;
  reset : unit -> unit;
  initial_actions : action list;
}

let validate b =
  let fail msg = invalid_arg (Printf.sprintf "Block %S: %s" b.name msg) in
  if b.event_inputs < 0 || b.event_outputs < 0 then fail "negative event port count";
  if b.surfaces < 0 then fail "negative surface count";
  Array.iter (fun w -> if w <= 0 then fail "non-positive regular port width") b.in_widths;
  Array.iter (fun w -> if w <= 0 then fail "non-positive regular port width") b.out_widths;
  (match (Array.length b.cstate0 > 0, b.derivatives) with
  | true, None -> fail "continuous state without derivative callback"
  | false, Some _ -> fail "derivative callback without continuous state"
  | true, Some _ | false, None -> ());
  (match (b.event_inputs > 0, b.on_event) with
  | true, None -> fail "event inputs without on_event handler"
  | false, Some _ -> fail "on_event handler without event inputs"
  | true, Some _ | false, None -> ());
  (match (b.surfaces > 0, b.crossings, b.on_crossing) with
  | true, Some _, Some _ -> ()
  | true, _, _ -> fail "surfaces declared without crossings/on_crossing callbacks"
  | false, None, None -> ()
  | false, _, _ -> fail "crossing callbacks without declared surfaces");
  List.iter
    (fun action ->
      match action with
      | Emit { port; delay } ->
          if port < 0 || port >= b.event_outputs then fail "initial Emit port out of range";
          if delay < 0. then fail "negative initial Emit delay"
      | Self { port; delay } ->
          if port < 0 || port >= b.event_inputs then fail "initial Self port out of range";
          if delay < 0. then fail "negative initial Self delay"
      | Set_cstate x ->
          if Array.length x <> Array.length b.cstate0 then
            fail "initial Set_cstate dimension mismatch")
    b.initial_actions

let make ~name ?(in_widths = [||]) ?(out_widths = [||]) ?(event_inputs = 0)
    ?(event_outputs = 0) ?(cstate0 = [||]) ?(feedthrough = false) ?(always_active = false)
    ?derivatives ?on_event ?(surfaces = 0) ?crossings ?on_crossing
    ?(reset = fun () -> ()) ?(initial_actions = []) outputs =
  let b =
    {
      name;
      in_widths;
      out_widths;
      event_inputs;
      event_outputs;
      cstate0;
      feedthrough;
      always_active;
      outputs;
      derivatives;
      on_event;
      surfaces;
      crossings;
      on_crossing;
      reset;
      initial_actions;
    }
  in
  validate b;
  b
