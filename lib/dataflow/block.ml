type action =
  | Emit of { port : int; delay : float }
  | Self of { port : int; delay : float }
  | Set_cstate of float array

type context = {
  mutable time : float;
  mutable inputs : float array array;
  mutable cstate : float array;
}

type transfer =
  | Opaque
  | Static of Interval.t array
  | Map of (Interval.t array -> Interval.t array)
  | Update of {
      init : Interval.t array;
      step : prev:Interval.t array -> Interval.t array -> Interval.t array;
      tracks_input : bool;
    }

type guard = Nonzero of int | Nonnegative of int | Positive of int

type format = Float32 | Q of { int_bits : int; frac_bits : int }

type machine = { format : format; tolerance : float option }

type t = {
  name : string;
  in_widths : int array;
  out_widths : int array;
  event_inputs : int;
  event_outputs : int;
  cstate0 : float array;
  feedthrough : bool;
  always_active : bool;
  outputs : context -> float array array;
  derivatives : (context -> float array) option;
  on_event : (context -> port:int -> action list) option;
  surfaces : int;
  crossings : (context -> float array) option;
  on_crossing : (context -> surface:int -> rising:bool -> action list) option;
  reset : unit -> unit;
  initial_actions : action list;
  transfer : transfer;
  guards : guard list;
  clamp : (float * float) option;
  machine : machine option;
}

let validate b =
  let fail msg = invalid_arg (Printf.sprintf "Block %S: %s" b.name msg) in
  if b.event_inputs < 0 || b.event_outputs < 0 then fail "negative event port count";
  if b.surfaces < 0 then fail "negative surface count";
  Array.iter (fun w -> if w <= 0 then fail "non-positive regular port width") b.in_widths;
  Array.iter (fun w -> if w <= 0 then fail "non-positive regular port width") b.out_widths;
  (match (Array.length b.cstate0 > 0, b.derivatives) with
  | true, None -> fail "continuous state without derivative callback"
  | false, Some _ -> fail "derivative callback without continuous state"
  | true, Some _ | false, None -> ());
  (match (b.event_inputs > 0, b.on_event) with
  | true, None -> fail "event inputs without on_event handler"
  | false, Some _ -> fail "on_event handler without event inputs"
  | true, Some _ | false, None -> ());
  (match (b.surfaces > 0, b.crossings, b.on_crossing) with
  | true, Some _, Some _ -> ()
  | true, _, _ -> fail "surfaces declared without crossings/on_crossing callbacks"
  | false, None, None -> ()
  | false, _, _ -> fail "crossing callbacks without declared surfaces");
  List.iter
    (fun action ->
      match action with
      | Emit { port; delay } ->
          if port < 0 || port >= b.event_outputs then fail "initial Emit port out of range";
          if delay < 0. then fail "negative initial Emit delay"
      | Self { port; delay } ->
          if port < 0 || port >= b.event_inputs then fail "initial Self port out of range";
          if delay < 0. then fail "negative initial Self delay"
      | Set_cstate x ->
          if Array.length x <> Array.length b.cstate0 then
            fail "initial Set_cstate dimension mismatch")
    b.initial_actions;
  let nout = Array.length b.out_widths in
  (match b.transfer with
  | Static r when Array.length r <> nout -> fail "Static transfer port-count mismatch"
  | Update { init; _ } when Array.length init <> nout ->
      fail "Update transfer init port-count mismatch"
  | Opaque | Static _ | Map _ | Update _ -> ());
  let nin = Array.length b.in_widths in
  List.iter
    (fun guard ->
      let port = match guard with Nonzero p | Nonnegative p | Positive p -> p in
      if port < 0 || port >= nin then fail "guard references a non-existent input port")
    b.guards;
  (match b.clamp with
  | Some (lo, hi) when not (lo < hi) -> fail "clamp bounds not ordered"
  | Some _ | None -> ());
  match b.machine with
  | Some { format = Q { int_bits; frac_bits }; _ } when int_bits < 0 || frac_bits < 0 ->
      fail "negative fixed-point field width"
  | Some { tolerance = Some tol; _ } when not (tol > 0.) ->
      fail "non-positive quantization tolerance"
  | Some _ | None -> ()

let make ~name ?(in_widths = [||]) ?(out_widths = [||]) ?(event_inputs = 0)
    ?(event_outputs = 0) ?(cstate0 = [||]) ?(feedthrough = false) ?(always_active = false)
    ?derivatives ?on_event ?(surfaces = 0) ?crossings ?on_crossing
    ?(reset = fun () -> ()) ?(initial_actions = []) ?(transfer = Opaque) ?(guards = [])
    ?clamp ?machine outputs =
  let b =
    {
      name;
      in_widths;
      out_widths;
      event_inputs;
      event_outputs;
      cstate0;
      feedthrough;
      always_active;
      outputs;
      derivatives;
      on_event;
      surfaces;
      crossings;
      on_crossing;
      reset;
      initial_actions;
      transfer;
      guards;
      clamp;
      machine;
    }
  in
  validate b;
  b

let with_format ?tolerance format b =
  let b = { b with machine = Some { format; tolerance } } in
  validate b;
  b

let format_range = function
  | Float32 -> Interval.v (-3.40282347e38) 3.40282347e38
  | Q { int_bits; frac_bits } ->
      let span = Float.ldexp 1. int_bits in
      Interval.v (-.span) (span -. Float.ldexp 1. (-frac_bits))

let format_quantum format (range : Interval.t) =
  match format with
  | Q { frac_bits; _ } -> Float.ldexp 1. (-(frac_bits + 1))
  | Float32 ->
      let mag = Float.max (Float.abs range.Interval.lo) (Float.abs range.Interval.hi) in
      if Float.is_finite mag then Float.ldexp mag (-24) else infinity
