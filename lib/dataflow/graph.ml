type block_id = int

type t = {
  mutable blocks : Block.t array;
  mutable n : int;
  (* data_in.(dst).(port) = Some (src, src_port) *)
  mutable data_in : (block_id * int) option array array;
  (* event_out.(src).(port) = listeners *)
  mutable event_out : (block_id * int) list array array;
}

let create () = { blocks = [||]; n = 0; data_in = [||]; event_out = [||] }

let add g b =
  Block.validate b;
  let id = g.n in
  g.blocks <- Array.append g.blocks [| b |];
  g.data_in <-
    Array.append g.data_in [| Array.make (Array.length b.Block.in_widths) None |];
  g.event_out <- Array.append g.event_out [| Array.make b.Block.event_outputs [] |];
  g.n <- g.n + 1;
  id

let check_id g id = if id < 0 || id >= g.n then invalid_arg "Graph: unknown block id"

let block g id =
  check_id g id;
  g.blocks.(id)

let block_count g = g.n
let block_ids g = List.init g.n Fun.id

let id_of_int g i =
  check_id g i;
  i

let connect_data g ~src:(sb, sp) ~dst:(db, dp) =
  check_id g sb;
  check_id g db;
  let sblk = g.blocks.(sb) and dblk = g.blocks.(db) in
  if sp < 0 || sp >= Array.length sblk.Block.out_widths then
    invalid_arg
      (Printf.sprintf "[GRAPH004] Graph.connect_data: %S has no output port %d" sblk.Block.name sp);
  if dp < 0 || dp >= Array.length dblk.Block.in_widths then
    invalid_arg
      (Printf.sprintf "[GRAPH004] Graph.connect_data: %S has no input port %d" dblk.Block.name dp);
  if sblk.Block.out_widths.(sp) <> dblk.Block.in_widths.(dp) then
    invalid_arg
      (Printf.sprintf "[GRAPH003] Graph.connect_data: width mismatch %S.%d (%d) -> %S.%d (%d)"
         sblk.Block.name sp
         sblk.Block.out_widths.(sp)
         dblk.Block.name dp
         dblk.Block.in_widths.(dp));
  (match g.data_in.(db).(dp) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "[GRAPH002] Graph.connect_data: input %S.%d already wired" dblk.Block.name dp)
  | None -> ());
  g.data_in.(db).(dp) <- Some (sb, sp)

let connect_event g ~src:(sb, sp) ~dst:(db, dp) =
  check_id g sb;
  check_id g db;
  let sblk = g.blocks.(sb) and dblk = g.blocks.(db) in
  if sp < 0 || sp >= sblk.Block.event_outputs then
    invalid_arg
      (Printf.sprintf "[GRAPH004] Graph.connect_event: %S has no event output %d" sblk.Block.name sp);
  if dp < 0 || dp >= dblk.Block.event_inputs then
    invalid_arg
      (Printf.sprintf "[GRAPH004] Graph.connect_event: %S has no event input %d" dblk.Block.name dp);
  g.event_out.(sb).(sp) <- g.event_out.(sb).(sp) @ [ (db, dp) ]

let merge target sub =
  let offset = target.n in
  for id = 0 to sub.n - 1 do
    ignore (add target sub.blocks.(id))
  done;
  let translate id =
    if id < 0 || id >= sub.n then invalid_arg "Graph.merge: unknown sub-graph block id";
    id + offset
  in
  for db = 0 to sub.n - 1 do
    Array.iteri
      (fun dp src ->
        match src with
        | Some (sb, sp) ->
            connect_data target ~src:(translate sb, sp) ~dst:(translate db, dp)
        | None -> ())
      sub.data_in.(db)
  done;
  for sb = 0 to sub.n - 1 do
    Array.iteri
      (fun sp listeners ->
        List.iter
          (fun (db, dp) ->
            connect_event target ~src:(translate sb, sp) ~dst:(translate db, dp))
          listeners)
      sub.event_out.(sb)
  done;
  translate

let data_source g id port =
  check_id g id;
  if port < 0 || port >= Array.length g.data_in.(id) then
    invalid_arg "Graph.data_source: port out of range";
  g.data_in.(id).(port)

let event_listeners g id port =
  check_id g id;
  if port < 0 || port >= Array.length g.event_out.(id) then
    invalid_arg "Graph.event_listeners: port out of range";
  g.event_out.(id).(port)

let data_links g =
  let acc = ref [] in
  for db = g.n - 1 downto 0 do
    Array.iteri
      (fun dp src -> match src with Some s -> acc := (s, (db, dp)) :: !acc | None -> ())
      g.data_in.(db)
  done;
  !acc

let event_links g =
  let acc = ref [] in
  for sb = g.n - 1 downto 0 do
    for sp = Array.length g.event_out.(sb) - 1 downto 0 do
      List.iter (fun dst -> acc := ((sb, sp), dst) :: !acc) (List.rev g.event_out.(sb).(sp))
    done
  done;
  !acc

(* Topological sort along data edges whose destination is a
   feedthrough block.  A cycle through such edges is an algebraic
   loop: the outputs at an instant would depend on themselves. *)
let eval_order g =
  (* edges src -> dst restricted to feedthrough destinations *)
  let indegree = Array.make g.n 0 in
  let succs = Array.make g.n [] in
  for db = 0 to g.n - 1 do
    if g.blocks.(db).Block.feedthrough then
      Array.iter
        (fun src ->
          match src with
          | Some (sb, _) when sb <> db ->
              succs.(sb) <- db :: succs.(sb);
              indegree.(db) <- indegree.(db) + 1
          | Some _ | None -> ())
        g.data_in.(db)
  done;
  let queue = Queue.create () in
  for id = 0 to g.n - 1 do
    if indegree.(id) = 0 then Queue.add id queue
  done;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr visited;
    List.iter
      (fun succ ->
        indegree.(succ) <- indegree.(succ) - 1;
        if indegree.(succ) = 0 then Queue.add succ queue)
      succs.(id)
  done;
  if !visited <> g.n then begin
    let stuck =
      List.filter (fun id -> indegree.(id) > 0) (List.init g.n Fun.id)
      |> List.map (fun id -> g.blocks.(id).Block.name)
      |> String.concat ", "
    in
    invalid_arg ("[GRAPH005] algebraic loop through feedthrough blocks: " ^ stuck)
  end;
  List.rev !order

let validate g =
  for db = 0 to g.n - 1 do
    Array.iteri
      (fun dp src ->
        if src = None then
          invalid_arg
            (Printf.sprintf "[GRAPH001] input port %S.%d is not wired"
               g.blocks.(db).Block.name dp))
      g.data_in.(db)
  done;
  ignore (eval_order g)
