(** Standard Scicos-like block library (regular blocks).

    Every function returns a {e fresh} block instance: internal state
    lives in closures, so each call may be added to a graph exactly
    once.  Event-processing blocks live in {!Eventlib}.

    Blocks here also declare their {!Block.transfer} abstract
    semantics, so {!Verify.Absint} can bound every signal in a design
    built from this library without executing it. *)

val constant : ?name:string -> float array -> Block.t
(** Constant source of the given vector. *)

val gain : ?name:string -> float -> Block.t
(** Scalar gain on a width-1 signal. *)

val matrix_gain : ?name:string -> Numerics.Matrix.t -> Block.t
(** [y = K·u]; input width = columns, output width = rows. *)

val sum : ?name:string -> float array -> Block.t
(** [sum signs] has one width-1 input per sign and outputs
    [Σ signᵢ·uᵢ]; e.g. [[|1.; -1.|]] is a comparator. *)

val product : ?name:string -> int -> Block.t
(** Pointwise product of [n] width-1 inputs. *)

val divide : ?name:string -> unit -> Block.t
(** [u₀ / u₁] on width-1 inputs.  Declares a {!Block.Nonzero} guard on
    the divisor port: the value-flow analysis raises FLOW001 when the
    inferred divisor range straddles zero. *)

val sqrt_op : ?name:string -> unit -> Block.t
(** [√u] on a width-1 input; guarded {!Block.Nonnegative} (FLOW006 on
    possibly-negative arguments). *)

val log_op : ?name:string -> unit -> Block.t
(** [ln u] on a width-1 input; guarded {!Block.Positive} (FLOW006 on
    possibly-nonpositive arguments). *)

val saturation : ?name:string -> lo:float -> hi:float -> unit -> Block.t
(** Clamps a width-1 signal. *)

val mux : ?name:string -> int array -> Block.t
(** Concatenates inputs of the given widths into one vector. *)

val demux : ?name:string -> int array -> Block.t
(** Splits a vector into outputs of the given widths. *)

val step_source : ?name:string -> ?at:float -> ?before:float -> after:float -> unit -> Block.t
(** Scalar step: [before] (default 0) until time [at] (default 0),
    then [after]. *)

val sine_source : ?name:string -> ?amplitude:float -> ?phase:float -> freq_hz:float -> unit -> Block.t

val integrator : ?name:string -> float array -> Block.t
(** Vector integrator with the given initial state. *)

val lti_continuous :
  ?name:string ->
  ?split_inputs:bool ->
  ?split_outputs:bool ->
  x0:float array ->
  Control.Lti.t ->
  Block.t
(** Continuous state-space system as an always-active block (the
    "plant" of the paper's Fig. 2).  With [split_inputs] (resp.
    [split_outputs]) the block exposes one width-1 port per input
    (resp. output) instead of a single vector port — convenient when
    different inputs come from different sources (a control hold and a
    disturbance) or when each measure has its own sampler.  Raises on
    a discrete system or initial-state dimension mismatch. *)

val state_feedback : ?name:string -> Numerics.Matrix.t -> Block.t
(** Static state-feedback controller [u = −K·x] as an event-activated
    block: one width-1 input per state (matching a split-output plant
    through per-measure samplers), one output of width [rows K]; the
    control is held between activations. *)

val lqg :
  ?name:string ->
  sysd:Control.Lti.t ->
  k:Numerics.Matrix.t ->
  kalman:Control.Kalman.result ->
  unit ->
  Block.t
(** Output-feedback LQG controller: a steady-state Kalman predictor on
    the discrete model [sysd] combined with the state-feedback gain
    [k] ([u = −K·x̂]).  One width-1 input per plant measurement, one
    output of width [m]; on each activation it computes the control
    from the current estimate, then propagates the estimate with the
    new measurement ([x̂ ← A·x̂ + B·u + L·(y − C·x̂ − D·u)]).  Raises on
    a continuous [sysd] or dimension mismatches. *)

val delayed_state_feedback : ?name:string -> Numerics.Matrix.t -> Block.t
(** State feedback over the delay-augmented state
    [u = −K·\[x; u_prev\]] (the calibration controller for a loop with
    one-period-bounded I/O latency, cf.
    {!Control.Discretize.zoh_with_delay}): [K] has [n + m] columns;
    the block keeps [u_prev] internally. *)

val lti_discrete : ?name:string -> x0:float array -> Control.Lti.t -> Block.t
(** Discrete state-space controller: one event input; on activation it
    computes [y = C·x + D·u], updates [x ← A·x + B·u] and holds [y]
    until the next activation.  Raises on a continuous system. *)

val sample_hold : ?name:string -> ?initial:float array -> int -> Block.t
(** The S/H block of the paper's Fig. 2: on activation, latches its
    input of the given width; output holds the latched value
    ([initial], default zero, before the first event). *)

val unit_delay : ?name:string -> float array -> Block.t
(** Event-activated one-period delay with the given initial output. *)

val pid : ?name:string -> Control.Pid.t -> Block.t
(** PID controller block: inputs [(reference, measure)], one event
    input, holds its control output between activations. *)

val stateful :
  name:string ->
  in_widths:int array ->
  out_widths:int array ->
  ?reset:(unit -> unit) ->
  ?transfer:Block.transfer ->
  (float array array -> float array array) ->
  Block.t
(** Generic event-activated block: on each activation applies the
    step function to current inputs and holds the result.  The step
    function may close over arbitrary state; supply [reset] to restore
    it.  Output is zero before the first activation.  [transfer]
    (default {!Block.Opaque}) declares abstract semantics for the
    value-flow analysis. *)

val pure_fn :
  name:string ->
  in_widths:int array ->
  out_widths:int array ->
  ?transfer:Block.transfer ->
  (float array array -> float array array) ->
  Block.t
(** Memoryless always-active function block (feedthrough).
    [transfer] (default {!Block.Opaque}) declares abstract semantics
    for the value-flow analysis. *)

val noise_sample_hold :
  ?name:string -> rng:Numerics.Rng.t -> sigma:float -> int -> Block.t
(** S/H that adds Gaussian measurement noise when it latches. *)

val relay :
  ?name:string ->
  ?initially_on:bool ->
  on_above:float ->
  off_below:float ->
  out_on:float ->
  out_off:float ->
  unit ->
  Block.t
(** Hysteresis relay (thermostat-style): switches on when the width-1
    input rises above [on_above], off when it falls below
    [off_below]; outputs [out_on]/[out_off].  Switching instants are
    located exactly by the engine's zero-crossing machinery and an
    event is emitted on each toggle (event output 0).  Requires
    [off_below <= on_above]. *)

val quantizer : ?name:string -> step:float -> unit -> Block.t
(** Mid-tread uniform quantiser [q·round(u/q)] on a width-1 signal —
    the amplitude counterpart of the paper's timing effects
    (ADC/DAC/fixed-point resolution). *)

val rate_limiter : ?name:string -> rising:float -> falling:float -> unit -> Block.t
(** Event-activated rate limiter: on each activation the output moves
    toward the input by at most [rising·dt] upward or [falling·dt]
    downward ([dt] = time since the previous activation; the first
    activation latches the input).  [rising > 0], [falling > 0]. *)

val dead_zone : ?name:string -> width:float -> unit -> Block.t
(** Symmetric dead zone of half-width [width] around zero
    (memoryless). *)

val lookup_table : ?name:string -> Numerics.Interp.t -> Block.t
(** Memoryless 1-D lookup table on a width-1 signal (piecewise-linear
    with clamping, the usual embedded-map semantics) — sensor
    linearisation curves, actuator maps, gain schedules. *)

val biquad : ?name:string -> b:float array -> a:float array -> unit -> Block.t
(** Direct-form-II-transposed discrete filter with numerator [b]
    (length ≤ 3) and denominator [a] (length ≤ 3, [a.(0) <> 0]),
    activated by events — e.g. an anti-aliasing or derivative filter
    inside the control law. *)
