(** Scicos-style simulation blocks.

    A block mirrors a Scicos computational function: it has {e regular}
    input/output ports carrying vector-valued signals, {e event} input
    ports that activate it and {e event} output ports through which it
    activates others, an optional continuous state with a derivative
    callback, and arbitrary internal (discrete) state captured in its
    closures.

    Activation semantics, as in Scicos (and as exploited by the paper's
    methodology): a discrete block does nothing until an event arrives
    on one of its event inputs; when it does, the block reads its
    current inputs, updates its internal state, refreshes its outputs,
    and may emit events — in particular the "execution finished" event
    that drives the sequencing translation of SynDEx schedules
    (paper §3.2.1). *)

type action =
  | Emit of { port : int; delay : float }
      (** schedule an event on event-output [port] after [delay ≥ 0] *)
  | Self of { port : int; delay : float }
      (** re-activate this block's event-input [port] after
          [delay > 0] — how periodic clocks are built *)
  | Set_cstate of float array
      (** jump this block's own continuous state (applied immediately;
          length must equal the state dimension) — e.g. the velocity
          reversal of a bouncing ball at impact.  A crossing handler
          that re-initialises a monitored surface should restart it
          {e slightly off} zero (e.g. [1e-9]): a surface that starts a
          segment exactly at zero cannot re-fire until it has shown a
          nonzero sign at a sample point, so a fast re-crossing inside
          one integration sub-step would be missed. *)

type context = {
  mutable time : float;  (** current simulation time *)
  mutable inputs : float array array;  (** one vector per regular input port *)
  mutable cstate : float array;  (** this block's continuous state (may be [[||]]) *)
}
(** The fields are mutable so the simulation engine can reuse one
    context record (and its [inputs]/[cstate] arrays) per block across
    calls instead of allocating in its inner loop.  Consequences for
    block authors:
    - a callback must read what it needs {e during} the call; retaining
      [ctx], [ctx.inputs] or [ctx.cstate] for later use is invalid
      (their contents are overwritten before the next call);
    - [outputs] must be a pure function of [ctx], the block's internal
      state and its captured constants — the engine only re-evaluates a
      block when one of those may have changed (dirty-set propagation),
      so side effects or hidden call-count dependence in [outputs] are
      unsupported;
    - an [outputs] callback that depends on [ctx.time] must declare
      [always_active], otherwise the engine may serve a stale value
      recorded at an earlier instant. *)

(** {2 Abstract transfer metadata}

    Blocks optionally carry a sound {e abstract} counterpart of their
    concrete semantics, consumed by the whole-design value-flow
    analysis ({!Verify.Absint}).  The abstraction is per {e port}: one
    {!Interval.t} covers every element of a vector-valued port. *)

type transfer =
  | Opaque
      (** nothing is known; every output is {!Interval.top} (the sound
          default for black-box blocks — continuous plants, observers,
          user closures) *)
  | Static of Interval.t array
      (** outputs lie in these intervals at every instant, inputs and
          state notwithstanding (sources, relays) *)
  | Map of (Interval.t array -> Interval.t array)
      (** memoryless: an inclusion-monotone function from input-port
          intervals to output-port intervals covering the concrete
          outputs (gains, sums, saturations) *)
  | Update of {
      init : Interval.t array;
          (** output intervals before the first activation *)
      step : prev:Interval.t array -> Interval.t array -> Interval.t array;
          (** [step ~prev ins] covers the outputs after one activation,
              given that the current outputs lie in [prev] and the
              inputs in [ins]; must be inclusion-monotone in both *)
      tracks_input : bool;
          (** the held output is a copy of input port 0 (sample-holds,
              delays) — lets the analysis relate initial conditions to
              the stored signal *)
    }  (** event-driven blocks holding internal state *)

type guard =
  | Nonzero of int  (** input port that must never contain zero (divisors) *)
  | Nonnegative of int  (** input port that must stay ≥ 0 (sqrt) *)
  | Positive of int  (** input port that must stay > 0 (log) *)
(** Domain preconditions on regular input ports; violations produce
    infinities or NaN at run time and are reported by the FLOW rules. *)

type format =
  | Float32  (** IEEE-754 binary32 target storage *)
  | Q of { int_bits : int; frac_bits : int }
      (** signed fixed point: one sign bit, [int_bits] integer bits,
          [frac_bits] fractional bits — representable range
          [\[-2^int_bits, 2^int_bits - 2^-frac_bits\]] *)
(** Machine formats a target may impose on a signal (the AD/DA and
    quantized-synthesis word widths of the roadmap). *)

type machine = {
  format : format;
  tolerance : float option;
      (** stated bound on the acceptable quantization error *)
}

type t = {
  name : string;
  in_widths : int array;  (** regular input port widths *)
  out_widths : int array;  (** regular output port widths *)
  event_inputs : int;  (** number of event input ports *)
  event_outputs : int;  (** number of event output ports *)
  cstate0 : float array;  (** initial continuous state ([[||]] if none) *)
  feedthrough : bool;
      (** whether outputs depend directly on current inputs; used for
          algebraic-loop detection and output-evaluation ordering *)
  always_active : bool;
      (** outputs must be re-evaluated continuously (continuous and
          memoryless blocks), as opposed to held between events *)
  outputs : context -> float array array;
      (** compute current outputs; must return [out_widths]-shaped data *)
  derivatives : (context -> float array) option;
      (** time derivative of [cstate]; required iff [cstate0] is
          non-empty *)
  on_event : (context -> port:int -> action list) option;
      (** event-input handler; required iff [event_inputs > 0] *)
  surfaces : int;
      (** number of zero-crossing surfaces this block monitors
          (state events, as in Scicos's zcross machinery) *)
  crossings : (context -> float array) option;
      (** surface values (length [surfaces]); the engine locates their
          sign changes during continuous integration.  Required iff
          [surfaces > 0]. *)
  on_crossing : (context -> surface:int -> rising:bool -> action list) option;
      (** called at a located crossing instant; [rising] is true for a
          −→+ sign change.  Required iff [surfaces > 0]. *)
  reset : unit -> unit;
      (** restore all internal state to its initial value, so a graph
          can be simulated repeatedly *)
  initial_actions : action list;
      (** actions applied at simulation start (e.g. a clock priming
          itself); [Self] delays are measured from the start time *)
  transfer : transfer;
      (** abstract counterpart of [outputs] for value-flow analysis *)
  guards : guard list;  (** input-domain preconditions *)
  clamp : (float * float) option;
      (** declared output saturation bounds (saturation blocks) *)
  machine : machine option;
      (** declared machine format of the outputs, if any *)
}

val validate : t -> unit
(** Checks internal consistency (derivative present iff continuous
    state, handler present iff event inputs, non-negative widths).
    Raises [Invalid_argument] with the block name otherwise. *)

val make :
  name:string ->
  ?in_widths:int array ->
  ?out_widths:int array ->
  ?event_inputs:int ->
  ?event_outputs:int ->
  ?cstate0:float array ->
  ?feedthrough:bool ->
  ?always_active:bool ->
  ?derivatives:(context -> float array) ->
  ?on_event:(context -> port:int -> action list) ->
  ?surfaces:int ->
  ?crossings:(context -> float array) ->
  ?on_crossing:(context -> surface:int -> rising:bool -> action list) ->
  ?reset:(unit -> unit) ->
  ?initial_actions:action list ->
  ?transfer:transfer ->
  ?guards:guard list ->
  ?clamp:float * float ->
  ?machine:machine ->
  (context -> float array array) ->
  t
(** Convenience constructor; the positional argument is [outputs].
    Defaults: no ports, no events, no continuous state, no surfaces,
    not feedthrough, not always active, [Opaque] transfer, no guards,
    no clamp, no machine format.  Runs {!validate}. *)

val with_format : ?tolerance:float -> format -> t -> t
(** Declares the machine format (and optionally a quantization-error
    tolerance) of a block's outputs — the annotation the FLOW002 and
    FLOW008 rules check inferred ranges against. *)

val format_range : format -> Interval.t
(** Representable range of a machine format. *)

val format_quantum : format -> Interval.t -> float
(** Worst-case round-to-nearest quantization error of values in the
    given interval when stored in the format: [2^-(frac_bits+1)] for
    fixed point, relative [2^-24] at the interval's largest magnitude
    for [Float32]; [+∞] when an unbounded interval meets a relative
    format. *)
