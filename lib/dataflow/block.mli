(** Scicos-style simulation blocks.

    A block mirrors a Scicos computational function: it has {e regular}
    input/output ports carrying vector-valued signals, {e event} input
    ports that activate it and {e event} output ports through which it
    activates others, an optional continuous state with a derivative
    callback, and arbitrary internal (discrete) state captured in its
    closures.

    Activation semantics, as in Scicos (and as exploited by the paper's
    methodology): a discrete block does nothing until an event arrives
    on one of its event inputs; when it does, the block reads its
    current inputs, updates its internal state, refreshes its outputs,
    and may emit events — in particular the "execution finished" event
    that drives the sequencing translation of SynDEx schedules
    (paper §3.2.1). *)

type action =
  | Emit of { port : int; delay : float }
      (** schedule an event on event-output [port] after [delay ≥ 0] *)
  | Self of { port : int; delay : float }
      (** re-activate this block's event-input [port] after
          [delay > 0] — how periodic clocks are built *)
  | Set_cstate of float array
      (** jump this block's own continuous state (applied immediately;
          length must equal the state dimension) — e.g. the velocity
          reversal of a bouncing ball at impact.  A crossing handler
          that re-initialises a monitored surface should restart it
          {e slightly off} zero (e.g. [1e-9]): a surface that starts a
          segment exactly at zero cannot re-fire until it has shown a
          nonzero sign at a sample point, so a fast re-crossing inside
          one integration sub-step would be missed. *)

type context = {
  mutable time : float;  (** current simulation time *)
  mutable inputs : float array array;  (** one vector per regular input port *)
  mutable cstate : float array;  (** this block's continuous state (may be [[||]]) *)
}
(** The fields are mutable so the simulation engine can reuse one
    context record (and its [inputs]/[cstate] arrays) per block across
    calls instead of allocating in its inner loop.  Consequences for
    block authors:
    - a callback must read what it needs {e during} the call; retaining
      [ctx], [ctx.inputs] or [ctx.cstate] for later use is invalid
      (their contents are overwritten before the next call);
    - [outputs] must be a pure function of [ctx], the block's internal
      state and its captured constants — the engine only re-evaluates a
      block when one of those may have changed (dirty-set propagation),
      so side effects or hidden call-count dependence in [outputs] are
      unsupported;
    - an [outputs] callback that depends on [ctx.time] must declare
      [always_active], otherwise the engine may serve a stale value
      recorded at an earlier instant. *)

type t = {
  name : string;
  in_widths : int array;  (** regular input port widths *)
  out_widths : int array;  (** regular output port widths *)
  event_inputs : int;  (** number of event input ports *)
  event_outputs : int;  (** number of event output ports *)
  cstate0 : float array;  (** initial continuous state ([[||]] if none) *)
  feedthrough : bool;
      (** whether outputs depend directly on current inputs; used for
          algebraic-loop detection and output-evaluation ordering *)
  always_active : bool;
      (** outputs must be re-evaluated continuously (continuous and
          memoryless blocks), as opposed to held between events *)
  outputs : context -> float array array;
      (** compute current outputs; must return [out_widths]-shaped data *)
  derivatives : (context -> float array) option;
      (** time derivative of [cstate]; required iff [cstate0] is
          non-empty *)
  on_event : (context -> port:int -> action list) option;
      (** event-input handler; required iff [event_inputs > 0] *)
  surfaces : int;
      (** number of zero-crossing surfaces this block monitors
          (state events, as in Scicos's zcross machinery) *)
  crossings : (context -> float array) option;
      (** surface values (length [surfaces]); the engine locates their
          sign changes during continuous integration.  Required iff
          [surfaces > 0]. *)
  on_crossing : (context -> surface:int -> rising:bool -> action list) option;
      (** called at a located crossing instant; [rising] is true for a
          −→+ sign change.  Required iff [surfaces > 0]. *)
  reset : unit -> unit;
      (** restore all internal state to its initial value, so a graph
          can be simulated repeatedly *)
  initial_actions : action list;
      (** actions applied at simulation start (e.g. a clock priming
          itself); [Self] delays are measured from the start time *)
}

val validate : t -> unit
(** Checks internal consistency (derivative present iff continuous
    state, handler present iff event inputs, non-negative widths).
    Raises [Invalid_argument] with the block name otherwise. *)

val make :
  name:string ->
  ?in_widths:int array ->
  ?out_widths:int array ->
  ?event_inputs:int ->
  ?event_outputs:int ->
  ?cstate0:float array ->
  ?feedthrough:bool ->
  ?always_active:bool ->
  ?derivatives:(context -> float array) ->
  ?on_event:(context -> port:int -> action list) ->
  ?surfaces:int ->
  ?crossings:(context -> float array) ->
  ?on_crossing:(context -> surface:int -> rising:bool -> action list) ->
  ?reset:(unit -> unit) ->
  ?initial_actions:action list ->
  (context -> float array array) ->
  t
(** Convenience constructor; the positional argument is [outputs].
    Defaults: no ports, no events, no continuous state, no surfaces,
    not feedthrough, not always active.  Runs {!validate}. *)
