(* Samples live in fixed-size chunks referenced from a small pointer
   directory: appending allocates a fresh chunk every [chunk_size]
   samples and only ever copies the directory (pointers), never the
   recorded data — so long batch runs stop re-copying large probe
   arrays the way the previous doubling scheme did. *)

let chunk_size = 1024

type t = {
  w : int;
  mutable tdir : float array array;  (* tdir.(c).(i) = time of sample c·N+i *)
  mutable vdir : float array array array;  (* vdir.(c).(i) = its row *)
  mutable n : int;
}

let create ~width =
  if width <= 0 then invalid_arg "Trace.create: non-positive width";
  { w = width; tdir = [||]; vdir = [||]; n = 0 }

let width tr = tr.w
let length tr = tr.n

(* the chunk holding sample [i]; only called for i < n or i = n right
   after [ensure_capacity], so the slot is always allocated *)
let[@inline] chunk i = i / chunk_size
let[@inline] offset i = i mod chunk_size

let ensure_capacity tr =
  let c = chunk tr.n in
  if c >= Array.length tr.tdir then begin
    (* grow the directory (pointer copy only) *)
    let cap = Int.max 4 (2 * Array.length tr.tdir) in
    let tdir = Array.make cap [||] in
    let vdir = Array.make cap [||] in
    Array.blit tr.tdir 0 tdir 0 (Array.length tr.tdir);
    Array.blit tr.vdir 0 vdir 0 (Array.length tr.vdir);
    tr.tdir <- tdir;
    tr.vdir <- vdir
  end;
  (* chunks survive [clear] for reuse, hence the emptiness test *)
  if Array.length tr.tdir.(c) = 0 then begin
    tr.tdir.(c) <- Array.make chunk_size 0.;
    tr.vdir.(c) <- Array.make chunk_size [||]
  end

let record tr time v =
  if Array.length v <> tr.w then invalid_arg "Trace.record: width mismatch";
  if tr.n > 0 && tr.tdir.(chunk (tr.n - 1)).(offset (tr.n - 1)) = time then
    tr.vdir.(chunk (tr.n - 1)).(offset (tr.n - 1)) <- Array.copy v
  else begin
    ensure_capacity tr;
    tr.tdir.(chunk tr.n).(offset tr.n) <- time;
    tr.vdir.(chunk tr.n).(offset tr.n) <- Array.copy v;
    tr.n <- tr.n + 1
  end

let times tr = Array.init tr.n (fun i -> tr.tdir.(chunk i).(offset i))
let values tr = Array.init tr.n (fun i -> Array.copy tr.vdir.(chunk i).(offset i))

let component tr j =
  if j < 0 || j >= tr.w then invalid_arg "Trace.component: out of range";
  Control.Metrics.of_arrays (times tr)
    (Array.init tr.n (fun i -> tr.vdir.(chunk i).(offset i).(j)))

let last tr =
  if tr.n = 0 then None
  else
    Some
      ( tr.tdir.(chunk (tr.n - 1)).(offset (tr.n - 1)),
        Array.copy tr.vdir.(chunk (tr.n - 1)).(offset (tr.n - 1)) )

let clear tr = tr.n <- 0

let iter f tr =
  for i = 0 to tr.n - 1 do
    f tr.tdir.(chunk i).(offset i) tr.vdir.(chunk i).(offset i)
  done

let to_csv ?labels tr =
  let labels =
    match labels with
    | Some l ->
        if List.length l <> tr.w then invalid_arg "Trace.to_csv: label count mismatch";
        l
    | None -> List.init tr.w (Printf.sprintf "y%d")
  in
  let buf = Buffer.create (64 * (tr.n + 1)) in
  Buffer.add_string buf ("time," ^ String.concat "," labels ^ "\n");
  iter
    (fun t v ->
      Buffer.add_string buf (Printf.sprintf "%.9g" t);
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf ",%.9g" x)) v;
      Buffer.add_char buf '\n')
    tr;
  Buffer.contents buf

let to_csv_file ?labels tr path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv ?labels tr))
