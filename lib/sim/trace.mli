(** Growable time-series recorder used by simulation probes.

    Storage grows in fixed-size chunks behind a pointer directory:
    appending a sample never copies previously recorded data (only the
    directory of chunk pointers doubles), so long batch runs — many
    scenarios re-recorded through one engine — avoid the repeated
    large-array copies of a doubling buffer. *)

type t

val create : width:int -> t
(** A recorder for vector samples of the given width. *)

val width : t -> int
val length : t -> int

val record : t -> float -> float array -> unit
(** Appends a sample.  Raises [Invalid_argument] on width mismatch.
    A sample at exactly the same time as the previous one replaces it
    (the engine records once per major step; an instant with several
    event deliveries keeps only the final values). *)

val times : t -> float array
val values : t -> float array array
(** [values tr] has one row per sample. *)

val component : t -> int -> Control.Metrics.trace
(** Scalar metric trace of one vector component. *)

val last : t -> (float * float array) option

val clear : t -> unit

val iter : (float -> float array -> unit) -> t -> unit

val to_csv : ?labels:string list -> t -> string
(** Renders the trace as CSV with a header row ([time,y0,y1,…] or the
    given column labels) — for plotting outside OCaml.  Raises
    [Invalid_argument] when the label count does not match the
    width. *)

val to_csv_file : ?labels:string list -> t -> string -> unit
(** Writes {!to_csv} to a path. *)
