(* [payload] is cleared when the entry is popped: heap slots beyond
   [size] keep stale entry references (the array is not shrunk), and
   without the [option] indirection those slots would retain arbitrary
   popped payloads until overwritten — a space leak when payloads are
   large (closures, arrays). *)
type 'a entry = { time : float; priority : int; seq : int; mutable payload : 'a option }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let earlier a b =
  if a.time <> b.time then a.time < b.time
  else if a.priority <> b.priority then a.priority < b.priority
  else a.seq < b.seq

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && earlier q.heap.(left) q.heap.(!smallest) then smallest := left;
  if right < q.size && earlier q.heap.(right) q.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~time ~priority payload =
  let entry = { time; priority; seq = q.next_seq; payload = Some payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let capacity = Int.max 16 (2 * Array.length q.heap) in
    let heap = Array.make capacity entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let next_time q ~default = if q.size = 0 then default else q.heap.(0).time

exception Empty

let pop_exn q =
  if q.size = 0 then raise Empty;
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  match top.payload with
  | Some p ->
      top.payload <- None;
      p
  | None -> assert false

let pop q =
  if q.size = 0 then None
  else begin
    let time = q.heap.(0).time in
    let payload = pop_exn q in
    Some (time, payload)
  end

let is_empty q = q.size = 0
let length q = q.size

let clear q =
  q.heap <- [||];
  q.size <- 0;
  q.next_seq <- 0
