module G = Dataflow.Graph
module B = Dataflow.Block

type delivery = { target : int; port : int }

type probe_rec = { pr_block : int; pr_port : int; trace : Trace.t }

(* The simulation is *compiled* at [create] time into flat runtime
   tables so the two inner loops (event delivery and the ODE
   right-hand side) run without graph lookups and without steady-state
   allocation:

   - wiring is resolved once into int arrays ([in_src_block] /
     [in_src_port]) and precomputed delivery arrays ([listeners] /
     [self_deliv]), replacing the per-call [G.data_source] /
     [G.event_listeners] queries;
   - every block gets one reusable {!B.context} whose [inputs] and
     [cstate] arrays are refreshed in place before each callback;
   - output re-evaluation is incremental: delivering an event marks the
     target block (and its feedthrough closure) dirty, and only dirty
     blocks are re-evaluated, in topological order — always-active
     blocks stay fresh through the integration observers, and blocks
     whose outputs can drift with continuous state or time without
     being always-active ([drift_ids]) are re-marked at every instant;
   - integration uses {!Numerics.Ode.integrate_inplace} with a
     persistent workspace and scratch state vectors.

   [debug = true] restores the seed semantics — a full output sweep at
   every delivery, the allocating integrator and per-call output-shape
   validation — and is the reference the golden-equivalence tests
   compare against. *)

type t = {
  graph : G.t;
  blocks : B.t array;
  meth : Numerics.Ode.method_;
  max_step : float option;
  debug : bool;
  order : int array; (* output-evaluation order (feedthrough topo) *)
  priority : int array; (* static activation priority per block *)
  cs_offset : int array; (* continuous-state layout *)
  cs_len : int array;
  total_cs : int;
  cstate : float array;
  outputs : float array array array;
  queue : delivery Event_queue.t;
  (* compiled wiring *)
  in_src_block : int array array; (* per block, per input port *)
  in_src_port : int array array;
  listeners : delivery array array array; (* block, event-out port *)
  self_deliv : delivery array array; (* block, event-in port *)
  (* reusable per-block callback state *)
  in_refs : float array array array; (* ctx.inputs backing stores *)
  cs_buf : float array array; (* ctx.cstate backing stores *)
  ctxs : B.context array;
  (* incremental re-evaluation *)
  dirty : bool array;
  dirty_succs : int array array; (* feedthrough data successors *)
  drift_ids : int array; (* re-marked dirty at every instant *)
  mutable any_dirty : bool;
  validated : bool array; (* output shapes checked once *)
  (* integration scratch *)
  active_ids : int array; (* always-active blocks, in eval order *)
  deriv_ids : int array; (* blocks with continuous state, by id *)
  surf_ids : int array; (* blocks with surfaces, by id *)
  with_surfaces : bool;
  ws : Numerics.Ode.workspace;
  x_buf : float array; (* state vector handed to the integrator *)
  xa_buf : float array; (* segment start state (surface marching) *)
  xw_buf : float array; (* segment work state (surface marching) *)
  surf_a : float array array; (* surface-value scratch (3 snapshots) *)
  surf_b : float array array;
  surf_m : float array array;
  mutable rhs_ip : Numerics.Ode.rhs_inplace;
  mutable obs_record : float -> float array -> unit;
  mutable time : float;
  mutable probes : (string * probe_rec) list; (* newest first *)
  mutable probe_arr : probe_rec array; (* frozen at start, registration order *)
  mutable log : (float * int * int) list; (* (time, block id, port), reversed *)
  mutable nsteps : int;
  mutable started : bool;
}

(* Linearise the full data-dependency graph to obtain activation
   priorities.  Kahn's algorithm; when only cyclic nodes remain
   (feedback loops), the node with the smallest residual in-degree and
   then smallest id is removed, which breaks the cycle
   deterministically. *)
let activation_priorities graph n =
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (((sb : G.block_id), _), ((db : G.block_id), _)) ->
      let sb = (sb :> int) and db = (db :> int) in
      if sb <> db then begin
        succs.(sb) <- db :: succs.(sb);
        indegree.(db) <- indegree.(db) + 1
      end)
    (G.data_links graph);
  let removed = Array.make n false in
  let priority = Array.make n 0 in
  for rank = 0 to n - 1 do
    (* pick the best remaining node: zero in-degree if possible *)
    let best = ref (-1) in
    for id = n - 1 downto 0 do
      if not removed.(id) then
        if !best = -1 || indegree.(id) < indegree.(!best)
           || (indegree.(id) = indegree.(!best) && id < !best)
        then best := id
    done;
    let id = !best in
    removed.(id) <- true;
    priority.(id) <- rank;
    List.iter (fun succ -> if not removed.(succ) then indegree.(succ) <- indegree.(succ) - 1) succs.(id)
  done;
  priority

let empty_floats : float array = [||]

let create ?(meth = Numerics.Ode.default_method) ?max_step ?(debug = false) graph =
  G.validate graph;
  let n = G.block_count graph in
  let blocks = Array.of_list (List.map (G.block graph) (G.block_ids graph)) in
  let order = Array.of_list (List.map (fun id -> ((id : G.block_id) :> int)) (G.eval_order graph)) in
  let priority = activation_priorities graph n in
  let cs_len = Array.map (fun b -> Array.length b.B.cstate0) blocks in
  let cs_offset = Array.make n 0 in
  let total = ref 0 in
  Array.iteri
    (fun id len ->
      cs_offset.(id) <- !total;
      total := !total + len)
    cs_len;
  let outputs =
    Array.map (fun b -> Array.map (fun w -> Array.make w 0.) b.B.out_widths) blocks
  in
  (* wiring tables: validate guarantees every input port is wired *)
  let in_src_block =
    Array.init n (fun id -> Array.make (Array.length blocks.(id).B.in_widths) 0)
  in
  let in_src_port =
    Array.init n (fun id -> Array.make (Array.length blocks.(id).B.in_widths) 0)
  in
  Array.iteri
    (fun id b ->
      for p = 0 to Array.length b.B.in_widths - 1 do
        match G.data_source graph (G.id_of_int graph id) p with
        | Some (sb, sp) ->
            in_src_block.(id).(p) <- (sb :> int);
            in_src_port.(id).(p) <- sp
        | None -> assert false
      done)
    blocks;
  let listeners =
    Array.init n (fun id ->
        Array.init blocks.(id).B.event_outputs (fun p ->
            Array.of_list
              (List.map
                 (fun ((db : G.block_id), dp) -> { target = (db :> int); port = dp })
                 (G.event_listeners graph (G.id_of_int graph id) p))))
  in
  let self_deliv =
    Array.init n (fun id ->
        Array.init blocks.(id).B.event_inputs (fun p -> { target = id; port = p }))
  in
  let in_refs =
    Array.init n (fun id ->
        Array.make (Array.length blocks.(id).B.in_widths) empty_floats)
  in
  let cs_buf =
    Array.init n (fun id -> if cs_len.(id) = 0 then empty_floats else Array.make cs_len.(id) 0.)
  in
  let ctxs =
    Array.init n (fun id -> { B.time = 0.; inputs = in_refs.(id); cstate = cs_buf.(id) })
  in
  (* feedthrough data successors, for dirty propagation *)
  let dirty_succs =
    let seen = Array.make n (-1) in
    Array.init n (fun sb ->
        let acc = ref [] in
        List.iter
          (fun (((sb' : G.block_id), _), ((db : G.block_id), _)) ->
            let sb' = (sb' :> int) and db = (db :> int) in
            if sb' = sb && db <> sb && blocks.(db).B.feedthrough && seen.(db) <> sb
            then begin
              seen.(db) <- sb;
              acc := db :: !acc
            end)
          (G.data_links graph);
        Array.of_list !acc)
  in
  (* blocks whose stored outputs can go stale without any event: a
     non-always-active block that either carries continuous state or is
     feedthrough (its inputs may drift continuously).  The seed
     semantics re-evaluated every block at every instant; these are the
     ones for which that sweep could observe a change. *)
  let drift_ids =
    Array.of_list
      (List.filter
         (fun id ->
           (not blocks.(id).B.always_active)
           && (blocks.(id).B.feedthrough || cs_len.(id) > 0))
         (List.init n Fun.id))
  in
  let active_ids =
    Array.of_list
      (List.filter (fun id -> blocks.(id).B.always_active) (Array.to_list order))
  in
  let deriv_ids =
    Array.of_list (List.filter (fun id -> cs_len.(id) > 0) (List.init n Fun.id))
  in
  let surf_ids =
    Array.of_list
      (List.filter (fun id -> blocks.(id).B.surfaces > 0) (List.init n Fun.id))
  in
  let surf_scratch () =
    Array.init n (fun id ->
        if blocks.(id).B.surfaces = 0 then empty_floats
        else Array.make blocks.(id).B.surfaces 0.)
  in
  let engine =
    {
      graph;
      blocks;
      meth;
      max_step;
      debug;
      order;
      priority;
      cs_offset;
      cs_len;
      total_cs = !total;
      cstate = Array.make !total 0.;
      outputs;
      queue = Event_queue.create ();
      in_src_block;
      in_src_port;
      listeners;
      self_deliv;
      in_refs;
      cs_buf;
      ctxs;
      dirty = Array.make n false;
      dirty_succs;
      drift_ids;
      any_dirty = false;
      validated = Array.make n false;
      active_ids;
      deriv_ids;
      surf_ids;
      with_surfaces = Array.length surf_ids > 0;
      ws = Numerics.Ode.workspace !total;
      x_buf = Array.make !total 0.;
      xa_buf = Array.make !total 0.;
      xw_buf = Array.make !total 0.;
      surf_a = surf_scratch ();
      surf_b = surf_scratch ();
      surf_m = surf_scratch ();
      rhs_ip = (fun _ _ ~dx:_ -> ());
      obs_record = (fun _ _ -> ());
      time = 0.;
      probes = [];
      probe_arr = [||];
      log = [];
      nsteps = 0;
      started = false;
    }
  in
  engine

(* ------------------------------------------------------------------ *)
(* reusable callback contexts *)

let refresh_inputs e id =
  let refs = e.in_refs.(id) in
  let sb = e.in_src_block.(id) and sp = e.in_src_port.(id) in
  for p = 0 to Array.length refs - 1 do
    refs.(p) <- e.outputs.(sb.(p)).(sp.(p))
  done

(* Prepares block [id]'s context for a callback at [time]: input
   references refreshed, continuous-state slice copied in.  All
   callbacks receive the same context record. *)
let load_ctx e id time =
  refresh_inputs e id;
  let len = e.cs_len.(id) in
  if len > 0 then Array.blit e.cstate e.cs_offset.(id) e.cs_buf.(id) 0 len;
  let ctx = e.ctxs.(id) in
  ctx.B.time <- time;
  ctx

(* ------------------------------------------------------------------ *)
(* output evaluation: full sweep (debug / start) and dirty-set *)

let eval_block e time id =
  let b = e.blocks.(id) in
  let ctx = load_ctx e id time in
  let out = b.B.outputs ctx in
  let outs = e.outputs.(id) in
  if e.debug || not e.validated.(id) then begin
    if Array.length out <> Array.length b.B.out_widths then
      failwith (Printf.sprintf "Block %S returned wrong output port count" b.B.name);
    Array.iteri
      (fun p v ->
        if Array.length v <> b.B.out_widths.(p) then
          failwith (Printf.sprintf "Block %S output %d has wrong width" b.B.name p))
      out;
    e.validated.(id) <- true
  end;
  for p = 0 to Array.length outs - 1 do
    outs.(p) <- out.(p)
  done

let eval_outputs e time =
  for i = 0 to Array.length e.order - 1 do
    eval_block e time e.order.(i)
  done;
  Array.fill e.dirty 0 (Array.length e.dirty) false;
  e.any_dirty <- false

let rec mark_dirty e id =
  if not e.dirty.(id) then begin
    e.dirty.(id) <- true;
    e.any_dirty <- true;
    let succs = e.dirty_succs.(id) in
    for i = 0 to Array.length succs - 1 do
      mark_dirty e succs.(i)
    done
  end

let mark_drift e =
  let d = e.drift_ids in
  for i = 0 to Array.length d - 1 do
    mark_dirty e d.(i)
  done

(* Re-evaluates exactly the dirty blocks, in topological order (an
   upstream dirty block is refreshed before a downstream one reads
   it).  In debug mode this degenerates to the seed's full sweep. *)
let refresh_dirty e time =
  if e.debug then eval_outputs e time
  else if e.any_dirty then begin
    let order = e.order in
    for i = 0 to Array.length order - 1 do
      let id = order.(i) in
      if e.dirty.(id) then begin
        eval_block e time id;
        e.dirty.(id) <- false
      end
    done;
    e.any_dirty <- false
  end

let eval_always_active e time =
  let ids = e.active_ids in
  for i = 0 to Array.length ids - 1 do
    eval_block e time ids.(i)
  done

let record_probes e time =
  let ps = e.probe_arr in
  for i = 0 to Array.length ps - 1 do
    let p = ps.(i) in
    Trace.record p.trace time e.outputs.(p.pr_block).(p.pr_port)
  done

(* ------------------------------------------------------------------ *)
(* event scheduling *)

let schedule_actions e id time actions =
  List.iter
    (fun action ->
      match action with
      | B.Emit { port; delay } ->
          if delay < 0. then
            failwith (Printf.sprintf "Block %S emitted a negative delay" e.blocks.(id).B.name);
          let ds = e.listeners.(id).(port) in
          let t = time +. delay in
          for i = 0 to Array.length ds - 1 do
            let d = ds.(i) in
            Event_queue.push e.queue ~time:t ~priority:e.priority.(d.target) d
          done
      | B.Self { port; delay } ->
          if delay < 0. then
            failwith (Printf.sprintf "Block %S scheduled a negative self delay" e.blocks.(id).B.name);
          Event_queue.push e.queue ~time:(time +. delay) ~priority:e.priority.(id)
            e.self_deliv.(id).(port)
      | B.Set_cstate x ->
          if Array.length x <> e.cs_len.(id) then
            failwith
              (Printf.sprintf "Block %S: Set_cstate dimension mismatch" e.blocks.(id).B.name);
          Array.blit x 0 e.cstate e.cs_offset.(id) e.cs_len.(id);
          mark_dirty e id)
    actions

let prime e =
  Array.iteri (fun id b -> schedule_actions e id 0. b.B.initial_actions) e.blocks

let add_probe e ~name ~block ~port =
  if e.started then invalid_arg "Engine.add_probe: simulation already started";
  if List.mem_assoc name e.probes then
    invalid_arg (Printf.sprintf "Engine.add_probe: duplicate probe %S" name);
  let id = ((block : G.block_id) :> int) in
  let b = e.blocks.(id) in
  if port < 0 || port >= Array.length b.B.out_widths then
    invalid_arg (Printf.sprintf "Engine.add_probe: %S has no output port %d" b.B.name port);
  let trace = Trace.create ~width:b.B.out_widths.(port) in
  e.probes <- (name, { pr_block = id; pr_port = port; trace }) :: e.probes

let time_eps t = 1e-9 *. (1. +. Float.abs t)

(* Deliver every event pending at instant [t] (within float tolerance),
   including zero-delay events emitted during the instant itself.
   Only blocks whose outputs may have changed are re-evaluated. *)
let process_instant e t =
  mark_drift e;
  let eps = time_eps t in
  let continue_ = ref true in
  while !continue_ do
    if Event_queue.next_time e.queue ~default:infinity <= t +. eps then begin
      let { target; port } = Event_queue.pop_exn e.queue in
      let b = e.blocks.(target) in
      refresh_dirty e t;
      let handler =
        match b.B.on_event with
        | Some h -> h
        | None ->
            failwith (Printf.sprintf "Block %S received an event but has no handler" b.B.name)
      in
      let ctx = load_ctx e target t in
      let actions = handler ctx ~port in
      e.log <- (t, target, port) :: e.log;
      e.nsteps <- e.nsteps + 1;
      mark_dirty e target;
      schedule_actions e target t actions
    end
    else continue_ := false
  done;
  refresh_dirty e t;
  record_probes e t

(* ------------------------------------------------------------------ *)
(* continuous integration *)

(* allocating right-hand side, as in the seed engine (debug mode) *)
let make_rhs_alloc e =
  fun tt x ->
    Array.blit x 0 e.cstate 0 e.total_cs;
    eval_always_active e tt;
    let dx = Array.make e.total_cs 0. in
    let ids = e.deriv_ids in
    for i = 0 to Array.length ids - 1 do
      let id = ids.(i) in
      let b = e.blocks.(id) in
      let deriv = match b.B.derivatives with Some d -> d | None -> assert false in
      let ctx = load_ctx e id tt in
      let d = deriv ctx in
      Array.blit d 0 dx e.cs_offset.(id) e.cs_len.(id)
    done;
    dx

(* persistent closures for the compiled path, installed once *)
let install_hot_closures e =
  e.rhs_ip <-
    (fun tt x ~dx ->
      Array.blit x 0 e.cstate 0 e.total_cs;
      eval_always_active e tt;
      let ids = e.deriv_ids in
      for i = 0 to Array.length ids - 1 do
        let id = ids.(i) in
        let b = e.blocks.(id) in
        let deriv = match b.B.derivatives with Some d -> d | None -> assert false in
        let ctx = load_ctx e id tt in
        let d = deriv ctx in
        Array.blit d 0 dx e.cs_offset.(id) e.cs_len.(id)
      done);
  e.obs_record <-
    (fun tt x ->
      Array.blit x 0 e.cstate 0 e.total_cs;
      eval_always_active e tt;
      record_probes e tt)

(* values of every declared surface at the engine's current state,
   written into the caller's scratch snapshot (assumes [e.cstate] and
   the target time are current) *)
let surface_values e time ~into =
  eval_always_active e time;
  let ids = e.surf_ids in
  for i = 0 to Array.length ids - 1 do
    let id = ids.(i) in
    let b = e.blocks.(id) in
    let crossings = match b.B.crossings with Some c -> c | None -> assert false in
    let ctx = load_ctx e id time in
    let v = crossings ctx in
    if Array.length v <> b.B.surfaces then
      failwith (Printf.sprintf "Block %S returned wrong surface count" b.B.name);
    Array.blit v 0 into.(id) 0 b.B.surfaces
  done

let sign v = if v > 0. then 1 else if v < 0. then -1 else 0

(* A surface fires when it leaves a nonzero sign: −→+, +→−, −→0 or
   +→0.  Starting from exactly zero does not fire, so a handler that
   resets its surface to zero is not re-triggered immediately. *)
let surface_fired va vb = sign va <> 0 && sign vb <> sign va

let crossed e before after =
  let hit = ref false in
  let ids = e.surf_ids in
  for i = 0 to Array.length ids - 1 do
    let id = ids.(i) in
    let vb = before.(id) and va = after.(id) in
    for s = 0 to Array.length vb - 1 do
      if surface_fired vb.(s) va.(s) then hit := true
    done
  done;
  !hit

(* Integrate from the current time toward [t1].  Returns [`Reached]
   when [t1] was attained, or [`Interrupted] when a zero-crossing was
   located and handled before [t1]: the caller must process the
   instant (crossing handlers may have emitted events) and re-enter. *)
let integrate_to e t1 =
  if t1 <= e.time then `Reached
  else if (not e.with_surfaces) && e.total_cs = 0 then begin
    e.time <- t1;
    eval_always_active e t1;
    record_probes e t1;
    `Reached
  end
  else if not e.with_surfaces then begin
    (if e.debug then begin
       let rhs = make_rhs_alloc e in
       let observer tt x =
         Array.blit x 0 e.cstate 0 e.total_cs;
         eval_always_active e tt;
         record_probes e tt
       in
       let x0 = Array.copy e.cstate in
       let xf =
         Numerics.Ode.integrate ~meth:e.meth ?max_step:e.max_step ~observer rhs ~t0:e.time
           ~t1 x0
       in
       Array.blit xf 0 e.cstate 0 e.total_cs
     end
     else begin
       Array.blit e.cstate 0 e.x_buf 0 e.total_cs;
       Numerics.Ode.integrate_inplace ~meth:e.meth ?max_step:e.max_step
         ~observer:e.obs_record ~ws:e.ws e.rhs_ip ~t0:e.time ~t1 e.x_buf;
       Array.blit e.x_buf 0 e.cstate 0 e.total_cs
     end);
    e.time <- t1;
    `Reached
  end
  else begin
    (* surface-monitored integration: march in sub-steps, bisect on a
       sign change, deliver the crossing and stop *)
    let rhs_alloc = if e.debug then Some (make_rhs_alloc e) else None in
    let span = t1 -. e.time in
    let sub_step =
      match e.max_step with Some h -> Float.min h (span /. 4.) | None -> span /. 32.
    in
    (* integrate the segment [t0, t1] from [xa_buf] into [xw_buf] *)
    let integrate_segment ~t0 ~t1 =
      Array.blit e.xa_buf 0 e.xw_buf 0 e.total_cs;
      if e.total_cs > 0 then
        match rhs_alloc with
        | Some rhs ->
            let xf = Numerics.Ode.integrate ~meth:e.meth rhs ~t0 ~t1 (Array.copy e.xa_buf) in
            Array.blit xf 0 e.xw_buf 0 e.total_cs
        | None -> Numerics.Ode.integrate_inplace ~meth:e.meth ~ws:e.ws e.rhs_ip ~t0 ~t1 e.xw_buf
    in
    let restore tt =
      Array.blit e.xw_buf 0 e.cstate 0 e.total_cs;
      eval_always_active e tt
    in
    let result = ref `Reached in
    let continue_ = ref true in
    while !continue_ && t1 -. e.time > 1e-15 *. (1. +. Float.abs t1) do
      let ta = e.time in
      Array.blit e.cstate 0 e.xa_buf 0 e.total_cs;
      surface_values e ta ~into:e.surf_a;
      let tb = Float.min t1 (ta +. sub_step) in
      integrate_segment ~t0:ta ~t1:tb;
      restore tb;
      surface_values e tb ~into:e.surf_b;
      if not (crossed e e.surf_a e.surf_b) then begin
        e.time <- tb;
        record_probes e tb
      end
      else begin
        (* bisect the earliest crossing within [ta, tb] *)
        let lo = ref ta and hi = ref tb in
        for _ = 1 to 50 do
          let mid = (!lo +. !hi) /. 2. in
          integrate_segment ~t0:ta ~t1:mid;
          restore mid;
          surface_values e mid ~into:e.surf_m;
          if crossed e e.surf_a e.surf_m then hi := mid else lo := mid
        done;
        let t_star = !hi in
        integrate_segment ~t0:ta ~t1:t_star;
        restore t_star;
        (* [surf_b] is free once a crossing is detected; reuse it for
           the located crossing snapshot *)
        surface_values e t_star ~into:e.surf_b;
        e.time <- t_star;
        record_probes e t_star;
        (* fire every surface that changed sign over [ta, t*] *)
        let ids = e.surf_ids in
        for i = 0 to Array.length ids - 1 do
          let id = ids.(i) in
          let b = e.blocks.(id) in
          let va = e.surf_a.(id) and vs = e.surf_b.(id) in
          for s = 0 to Array.length va - 1 do
            if surface_fired va.(s) vs.(s) then begin
              let handler =
                match b.B.on_crossing with Some h -> h | None -> assert false
              in
              let ctx = load_ctx e id t_star in
              let actions = handler ctx ~surface:s ~rising:(vs.(s) > va.(s)) in
              mark_dirty e id;
              schedule_actions e id t_star actions
            end
          done
        done;
        result := `Interrupted;
        continue_ := false
      end
    done;
    !result
  end

let start_if_needed e =
  if not e.started then begin
    install_hot_closures e;
    e.probe_arr <- Array.of_list (List.rev_map snd e.probes);
    Array.iter (fun b -> b.B.reset ()) e.blocks;
    Array.iteri
      (fun id b -> Array.blit b.B.cstate0 0 e.cstate e.cs_offset.(id) e.cs_len.(id))
      e.blocks;
    prime e;
    eval_outputs e 0.;
    record_probes e 0.;
    e.started <- true
  end

let run ?(t_end = 1.) e =
  start_if_needed e;
  let continue_ = ref true in
  while !continue_ do
    let tt = Event_queue.next_time e.queue ~default:infinity in
    if tt <= t_end +. time_eps t_end then begin
      let tt = Float.max tt e.time in
      match integrate_to e tt with
      | `Reached -> process_instant e tt
      | `Interrupted ->
          (* a zero-crossing fired before [tt]; deliver whatever it
             emitted at the crossing instant, then re-examine *)
          process_instant e e.time
    end
    else
      match integrate_to e t_end with
      | `Reached -> continue_ := false
      | `Interrupted -> process_instant e e.time
  done

let reset e =
  Event_queue.clear e.queue;
  e.time <- 0.;
  e.log <- [];
  e.nsteps <- 0;
  e.started <- false;
  List.iter (fun (_, p) -> Trace.clear p.trace) e.probes

let now e = e.time

let probe e name =
  match List.assoc_opt name e.probes with
  | Some p -> p.trace
  | None -> raise Not_found

let probe_component e name j = Trace.component (probe e name) j

let event_log e =
  List.rev_map (fun (t, id, port) -> (t, e.blocks.(id).B.name, port)) e.log

let activations e ~block =
  let id = ((block : G.block_id) :> int) in
  List.rev
    (List.filter_map (fun (t, i, _) -> if i = id then Some t else None) e.log)

let steps e = e.nsteps
