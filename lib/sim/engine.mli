(** Hybrid (continuous/discrete-event) simulation of a block diagram —
    the Scicos-equivalent simulator of the methodology.

    The engine alternates two regimes:
    - between event instants, the concatenated continuous states of
      all blocks are integrated with a {!Numerics.Ode} method, with
      the outputs of always-active blocks re-evaluated inside the
      right-hand side;
    - at an event instant, pending activations are delivered in
      [(priority, emission order)] order, where the static priority is
      a linearisation of the data-dependency graph — so a
      sampler activated at the same instant as the controller it feeds
      executes first, exactly as Scicos orders simultaneous
      activations.

    Blocks may emit new events with zero delay; those are processed
    within the same instant, which is how chains of
    {!Dataflow.Eventlib.event_delay} blocks with zero latency and the
    {!Dataflow.Eventlib.synchronization} block behave like their
    Scicos counterparts.

    {2 Compiled hot path}

    {!create} compiles the diagram into flat runtime tables so the
    steady-state loops run without graph lookups or allocation:

    - wiring is resolved once into per-block integer source tables and
      precomputed event-delivery arrays;
    - every block owns one reusable mutable {!Dataflow.Block.context}
      whose [inputs] / [cstate] arrays are refreshed in place before
      each callback (callbacks must not retain them — see
      {!Dataflow.Block.context});
    - event delivery re-evaluates only the blocks whose outputs may
      have changed (the activated block plus its feedthrough closure,
      in topological order) instead of sweeping the whole diagram —
      this relies on [outputs] callbacks being pure functions of the
      context and internal state, part of the {!Dataflow.Block}
      contract;
    - integration between events runs through
      {!Numerics.Ode.integrate_inplace} with persistent workspaces.

    All of this is observationally equivalent to the straightforward
    interpretation: traces, event logs and step counts are bit-for-bit
    identical (the [test/test_sim_perf.ml] suite enforces this). *)

type t

val create :
  ?meth:Numerics.Ode.method_ -> ?max_step:float -> ?debug:bool -> Dataflow.Graph.t -> t
(** Prepares a simulation: validates the graph, computes evaluation
    order, activation priorities, continuous-state layout and the
    compiled wiring/delivery tables, resets all blocks and queues
    their initial actions.  [max_step] bounds the integrator step
    between events (useful when a source block is time-varying between
    events).  [debug] (default [false]) disables the compiled hot
    path: every event delivery re-evaluates all outputs, integration
    uses the allocating {!Numerics.Ode.integrate}, and output shapes
    are validated at every call instead of only the first — the
    reference semantics the golden-equivalence tests compare against.
    Raises [Invalid_argument] on an invalid graph. *)

val add_probe : t -> name:string -> block:Dataflow.Graph.block_id -> port:int -> unit
(** Registers a recorder on a regular output port.  Must be called
    before {!run}; duplicate names raise [Invalid_argument]. *)

val run : ?t_end:float -> t -> unit
(** Advances the simulation until [t_end] (default [1.]).  May be
    called repeatedly with increasing horizons to continue a run.
    Events scheduled exactly at [t_end] are processed. *)

val reset : t -> unit
(** Returns the simulation to its initial state: block internal state
    reset, continuous states restored, queue re-primed with initial
    actions, probes and event log cleared. *)

val now : t -> float
(** Current simulation time. *)

val probe : t -> string -> Trace.t
(** The recorded trace of a probe.  Raises [Not_found] on unknown
    names. *)

val probe_component : t -> string -> int -> Control.Metrics.trace
(** Scalar component of a probe as a metric trace. *)

val event_log : t -> (float * string * int) list
(** Every delivered activation as [(time, block name, event input
    port)], in delivery order — the raw material for measuring the
    sampling and actuation instants of paper eqs. (1)–(2). *)

val activations : t -> block:Dataflow.Graph.block_id -> float list
(** Delivery times of all activations of one block, ascending. *)

val steps : t -> int
(** Number of event deliveries processed so far. *)
