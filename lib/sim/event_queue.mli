(** Priority queue of pending activation events.

    Events are ordered by [(time, priority, sequence)]:
    - [time] — simulation instant;
    - [priority] — static activation priority of the target block
      (derived from data dependencies, so that at a shared instant a
      sampler runs before the controller that reads it);
    - [sequence] — FIFO tie-break, assigned internally. *)

type 'a t
(** Queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> priority:int -> 'a -> unit
(** Enqueues; the insertion sequence number is assigned internally. *)

val peek_time : 'a t -> float option
(** Time of the earliest event, if any. *)

val next_time : 'a t -> default:float -> float
(** Allocation-free {!peek_time}: the time of the earliest event, or
    [default] when the queue is empty (the simulation engine passes
    [infinity]). *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

exception Empty

val pop_exn : 'a t -> 'a
(** Allocation-free {!pop}: removes and returns the earliest event's
    payload.  @raise Empty when the queue is empty. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val clear : 'a t -> unit
(** Empties the queue and drops the backing array, so previously
    queued payloads can be collected.

    Popping never leaks payloads: the payload reference is cleared
    from the popped entry, so the stale copies the binary heap leaves
    in its backing array keep only a small entry record alive, never
    the payload itself. *)
