(** Seeded background-traffic generators for the shared-bus model.

    A {!stream} describes one source of background frames on a bus: a
    node transmitting a fixed-identifier, fixed-size frame roughly
    periodically over a window.  Release instants are pure hashes of
    the bus seed and the frame's coordinates (stream index, frame
    number), so a bus replays its background traffic bit-for-bit under
    a fixed seed regardless of how the simulation interleaves its
    queries — the same determinism contract as [Fault.Scenario]. *)

type stream = {
  l_node : int;
      (** transmitting node.  Executive frames use operator ids
          (0-based); synthetic background nodes conventionally start at
          1000 so a [Bus_off] on an operator never silences them by
          accident. *)
  l_ident : int;
      (** CAN-style identifier of the stream's frames: lower values win
          arbitration.  Executive frames occupy [\[256, 1023\]]
          ({!Bus.slot_identifier}); identifiers below 256 outrank the
          executive, identifiers from 1024 up always yield to it. *)
  l_words : int;  (** payload words per frame *)
  l_period : float;  (** nominal inter-release time, > 0 *)
  l_jitter_frac : float;
      (** per-release jitter as a fraction of the period, in [\[0, 1\]]:
          release k is [from + k·period + u·jitter·period] with [u]
          hashed from the seed — releases stay monotone *)
  l_from : float;  (** first nominal release *)
  l_until : float;
      (** releases strictly before this instant; [infinity] keeps the
          stream alive for the whole run *)
}

val periodic :
  ?jitter_frac:float ->
  ?from_t:float ->
  ?until_t:float ->
  node:int ->
  ident:int ->
  words:int ->
  period:float ->
  unit ->
  stream
(** A periodic stream (defaults: no jitter, from 0, forever).  Raises
    [Invalid_argument] with a ["[MEDIA004]"] prefix on a non-positive
    period, negative words/node/ident, jitter outside [\[0, 1\]] or an
    empty window. *)

val babbling :
  ?ident:int ->
  ?words:int ->
  node:int ->
  period:float ->
  from_t:float ->
  until_t:float ->
  unit ->
  stream
(** A babbling-idiot node: back-to-back frames at the highest priority
    (default identifier 0, 1 word) over the fault window — pick
    [period] close to the frame time to starve the bus. *)

val validate : stream -> unit
(** The constructor checks, re-runnable on a hand-forged record.
    Raises [Invalid_argument] with a ["[MEDIA004]"] prefix. *)

val release : seed:int -> index:int -> stream -> int -> float
(** [release ~seed ~index s k] is the k-th release instant of stream
    [index] — a pure function of the seed and coordinates. *)

val hash01 : seed:int -> int list -> float
(** The underlying SplitMix64-style hash, mapped to [\[0, 1)] — exposed
    for callers building their own deterministic per-frame decisions
    (e.g. [Fault.Scenario]'s bus-corruption events). *)
