(** Deterministic discrete-event model of a CAN-like shared bus.

    Frames carry an identifier (lower wins), a transmitting node and a
    payload; arbitration is fixed-priority and non-preemptive: whenever
    the bus goes idle, the pending frame with the lowest identifier
    starts transmitting and occupies the bus for its whole frame time.
    A corrupted attempt still occupies the bus (error frames are folded
    into the frame time) and the frame re-enters arbitration at the end
    of the attempt, up to [retry_limit] retransmissions before it is
    dropped — CAN's automatic retransmission.

    Two kinds of traffic share the bus:

    - {b foreground} frames submitted one at a time through {!transmit}
      — the executives' inter-operator transfers.  The caller supplies
      the transmission duration (the schedule's [cm_duration], possibly
      jittered), so an empty bus reproduces the fixed-duration timing
      bit-for-bit: with no background load and {!no_faults},
      [transmit] returns [start = max (bus idle) release] and
      [finish = start + duration], exactly the fixed path, and consumes
      no randomness.
    - {b background} frames generated lazily from the configured
      {!Load.stream}s; their frame time is
      [frame_overhead + words·time_per_word].

    All probabilistic behaviour (release jitter, fault decisions) is a
    pure function of the seed and the frame's coordinates, so the whole
    bus replays bit-for-bit under a fixed seed. *)

type faults = {
  f_corrupted : ident:int -> node:int -> attempt:int -> seq:int -> bool;
      (** true corrupts transmission attempt [attempt] (1-based) of the
          frame; the attempt occupies the bus, then the frame re-enters
          arbitration.  Must be pure. *)
  f_node_off : node:int -> time:float -> bool;
      (** true silences [node] at [time]: its frames are never released
          (bus-off).  Must be pure and, for a given node, monotone in
          time. *)
}

val no_faults : faults
(** Never corrupts, never silences.  Recognised physically: a config
    carrying [no_faults] skips fault consultation entirely. *)

type config = {
  b_name : string;  (** medium name this model attaches to *)
  b_time_per_word : float;  (** seconds per payload word, > 0 *)
  b_frame_overhead : float;
      (** per-frame framing/arbitration overhead in seconds, >= 0 —
          applied to background frames (foreground durations come from
          the schedule, which already prices the whole transfer) *)
  b_retry_limit : int;
      (** automatic retransmissions of a corrupted frame before it is
          dropped, >= 0 *)
  b_max_wait : float;
      (** transmit abort: a foreground frame that has not won
          arbitration within this many seconds of its release is
          dropped as starved, > 0 (default [infinity]: wait forever).
          On an {e overloaded} bus — background utilization at or above
          1, flagged statically by rule MEDIA001 — higher-priority
          traffic starves executive frames indefinitely; a finite bound
          keeps such a simulation terminating. *)
  b_seed : int;  (** drives background release jitter *)
  b_load : Load.stream list;  (** background traffic *)
  b_faults : faults;
}

val make :
  ?frame_overhead:float ->
  ?retry_limit:int ->
  ?max_wait:float ->
  ?seed:int ->
  ?load:Load.stream list ->
  ?faults:faults ->
  name:string ->
  time_per_word:float ->
  unit ->
  config
(** Validating constructor (defaults: no overhead, 3 retries, unbounded
    wait, seed 0, no load, {!no_faults}).  Raises [Invalid_argument]
    with a ["[MEDIA004]"] prefix on a non-positive word time or max
    wait, negative overhead or retry limit, or an invalid stream. *)

val validate : config -> unit
(** The constructor checks, re-runnable on a hand-forged record. *)

val frame_time : config -> words:int -> float
(** [frame_overhead + words·time_per_word] — the bus occupancy of one
    background frame attempt. *)

val slot_identifier : Aaa.Schedule.comm_slot -> int
(** Canonical CAN-style identifier of a schedule transfer, hashed from
    its coordinates (source/destination operation and port, hop) into
    [\[256, 1023\]].  Background streams below 256 outrank every
    executive frame; streams at 1024 and above always yield to it.
    Collisions across slots are possible (arbitration stays
    deterministic via tie-breaking) and are flagged by rule MEDIA003. *)

type completion = {
  c_ident : int;
  c_node : int;
  c_release : float;  (** first enqueue instant *)
  c_start : float;  (** start of the final transmission attempt *)
  c_finish : float;  (** bus release instant of the final attempt *)
  c_attempts : int;  (** 1 + retransmissions consumed *)
  c_dropped : bool;
      (** retry limit exhausted, or the sender aborted after waiting
          [b_max_wait] (then [c_start = c_finish], the give-up
          instant): payload never delivered *)
  c_background : bool;
}

type t
(** Mutable run state of one bus.  Create one per simulation run: the
    executives instantiate a fresh [t] from the attached config for
    every run (and for each phase of a failover run), which is what
    makes runs independent and reproducible. *)

val create : config -> t
val config : t -> config

val transmit :
  t -> ident:int -> node:int -> release:float -> duration:float -> completion
(** Submit one foreground frame and simulate the bus until its final
    attempt completes (delivered or dropped).  Background frames that
    win arbitration in between are transmitted and logged.  [release]
    may lie before the bus's current idle instant — the frame then
    queues.  Foreground frames are serialised by the caller in schedule
    order (the executives' static medium order guarantees this). *)

val node_off : t -> node:int -> time:float -> bool
(** Consult the fault model: is [node] bus-off at [time]?  The
    executives use this to lose a silenced operator's transfers without
    occupying the bus. *)

val drain : t -> until:float -> unit
(** Transmit every background frame released before [until] (final
    attempts may finish after it).  Call at end of run so the log and
    utilization cover the whole horizon. *)

val log : t -> completion list
(** Every completion so far, foreground and background, in
    chronological transmission order. *)

val busy_time : t -> float
(** Total bus occupancy of all attempts so far, seconds. *)

val utilization : t -> at:float -> float
(** [busy_time / at] — fraction of the horizon the bus was busy
    (slightly above the true value when a final attempt overruns
    [at]). *)
