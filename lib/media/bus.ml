module Sched = Aaa.Schedule

type faults = {
  f_corrupted : ident:int -> node:int -> attempt:int -> seq:int -> bool;
  f_node_off : node:int -> time:float -> bool;
}

let no_faults =
  {
    f_corrupted = (fun ~ident:_ ~node:_ ~attempt:_ ~seq:_ -> false);
    f_node_off = (fun ~node:_ ~time:_ -> false);
  }

type config = {
  b_name : string;
  b_time_per_word : float;
  b_frame_overhead : float;
  b_retry_limit : int;
  b_max_wait : float;
  b_seed : int;
  b_load : Load.stream list;
  b_faults : faults;
}

let bad fmt = Printf.ksprintf invalid_arg ("[MEDIA004] " ^^ fmt)

let validate cfg =
  if not (cfg.b_time_per_word > 0.) then
    bad "bus %S: time per word %g is not positive" cfg.b_name
      cfg.b_time_per_word;
  if not (cfg.b_frame_overhead >= 0.) then
    bad "bus %S: frame overhead %g is negative" cfg.b_name cfg.b_frame_overhead;
  if cfg.b_retry_limit < 0 then
    bad "bus %S: retry limit %d is negative" cfg.b_name cfg.b_retry_limit;
  if not (cfg.b_max_wait > 0.) then
    bad "bus %S: max wait %g is not positive" cfg.b_name cfg.b_max_wait;
  List.iter Load.validate cfg.b_load

let make ?(frame_overhead = 0.) ?(retry_limit = 3) ?(max_wait = infinity)
    ?(seed = 0) ?(load = []) ?(faults = no_faults) ~name ~time_per_word () =
  let cfg =
    {
      b_name = name;
      b_time_per_word = time_per_word;
      b_frame_overhead = frame_overhead;
      b_retry_limit = retry_limit;
      b_max_wait = max_wait;
      b_seed = seed;
      b_load = load;
      b_faults = faults;
    }
  in
  validate cfg;
  cfg

let frame_time cfg ~words =
  cfg.b_frame_overhead +. (float_of_int words *. cfg.b_time_per_word)

let slot_identifier (c : Sched.comm_slot) =
  let h =
    List.fold_left
      (fun h v -> ((h * 31) + v + 1) land 0x3FFFFFFF)
      17
      [
        (fst c.Sched.cm_src :> int);
        snd c.Sched.cm_src;
        (fst c.Sched.cm_dst :> int);
        snd c.Sched.cm_dst + 1;
        c.Sched.cm_hop;
      ]
  in
  0x100 lor (h mod 0x300)

type completion = {
  c_ident : int;
  c_node : int;
  c_release : float;
  c_start : float;
  c_finish : float;
  c_attempts : int;
  c_dropped : bool;
  c_background : bool;
}

(* A released-but-unfinished frame.  Background retries re-enter this
   queue; the foreground frame is threaded through [transmit]'s loop
   instead so it never mixes with lazily generated traffic. *)
type pending = {
  q_ident : int;
  q_node : int;
  q_release : float;  (* ready for (re-)arbitration from this instant *)
  q_first_release : float;
  q_duration : float;
  q_attempt : int;  (* 1-based *)
  q_seq : int;  (* per-frame coordinate for fault decisions *)
}

type t = {
  cfg : config;
  streams : Load.stream array;
  next_k : int array;  (* per-stream next frame number to release *)
  mutable free_at : float;  (* bus idle from this instant *)
  mutable queue : pending list;  (* released background frames *)
  mutable completions : completion list;  (* reverse chronological *)
  mutable busy : float;
  mutable fg_seq : int;  (* foreground frames submitted so far *)
}

let create cfg =
  validate cfg;
  let streams = Array.of_list cfg.b_load in
  {
    cfg;
    streams;
    next_k = Array.make (Array.length streams) 0;
    free_at = 0.;
    queue = [];
    completions = [];
    busy = 0.;
    fg_seq = 0;
  }

let config t = t.cfg

let have_faults t = t.cfg.b_faults != no_faults

let node_off t ~node ~time =
  have_faults t && t.cfg.b_faults.f_node_off ~node ~time

let corrupted t ~ident ~node ~attempt ~seq =
  have_faults t && t.cfg.b_faults.f_corrupted ~ident ~node ~attempt ~seq

(* Earliest still-ungenerated background release, ignoring the window
   end and bus-off (those are applied when the frame is materialised —
   skipping here would need the same checks anyway). *)
let next_stream_release t =
  let best = ref infinity in
  Array.iteri
    (fun i s ->
      let k = t.next_k.(i) in
      let r = Load.release ~seed:t.cfg.b_seed ~index:i s k in
      if r < s.Load.l_until && r < !best then best := r)
    t.streams;
  !best

(* Materialise every background frame released up to [upto]. *)
let refill t ~upto =
  Array.iteri
    (fun i s ->
      let continue_ = ref true in
      while !continue_ do
        let k = t.next_k.(i) in
        let r = Load.release ~seed:t.cfg.b_seed ~index:i s k in
        if r >= s.Load.l_until || r > upto then continue_ := false
        else begin
          t.next_k.(i) <- k + 1;
          if not (node_off t ~node:s.Load.l_node ~time:r) then
            t.queue <-
              {
                q_ident = s.Load.l_ident;
                q_node = s.Load.l_node;
                q_release = r;
                q_first_release = r;
                q_duration = frame_time t.cfg ~words:s.Load.l_words;
                q_attempt = 1;
                q_seq = (i lsl 20) lor (k land 0xFFFFF);
              }
              :: t.queue
        end
      done)
    t.streams

let queue_min_release t =
  List.fold_left (fun acc p -> Float.min acc p.q_release) infinity t.queue

(* Total order on competing frames: identifier first (lower wins the
   arbitration), then node and sequence so ties stay deterministic. *)
let beats a b =
  a.q_ident < b.q_ident
  || (a.q_ident = b.q_ident
      && (a.q_node < b.q_node || (a.q_node = b.q_node && a.q_seq < b.q_seq)))

let pick_winner t ~at ~fg =
  let best = ref fg in
  List.iter
    (fun p ->
      if p.q_release <= at then
        match !best with
        | Some b when not (beats p b) -> ()
        | _ -> best := Some p)
    t.queue;
  !best

let remove_pending t p = t.queue <- List.filter (fun q -> q != p) t.queue

let log_completion t ~(p : pending) ~start ~finish ~dropped ~background =
  t.completions <-
    {
      c_ident = p.q_ident;
      c_node = p.q_node;
      c_release = p.q_first_release;
      c_start = start;
      c_finish = finish;
      c_attempts = p.q_attempt;
      c_dropped = dropped;
      c_background = background;
    }
    :: t.completions

(* One arbitration round: find the next instant at which some frame
   (background, or the optional foreground [fg]) is pending, transmit
   the winner, and return it with its fate.  [None] when nothing is
   pending before [horizon]. *)
type round = {
  r_frame : pending;
  r_foreground : bool;
  r_start : float;
  r_finish : float;
  r_corrupted : bool;
}

let rec round t ?fg ~horizon () =
  let t_fg = match fg with Some f -> f.q_release | None -> infinity in
  (* materialise frames released while the bus was busy (and, when a
     foreground frame waits, up to its release so they compete with
     it); without one, [t_fg] is infinite and must not drive the
     refill — the lazy [next_stream_release] covers later frames *)
  refill t
    ~upto:(match fg with None -> t.free_at | Some f -> Float.max t.free_at f.q_release);
  let t_bg = Float.min (queue_min_release t) (next_stream_release t) in
  let t_cand = Float.min t_fg t_bg in
  if t_cand >= horizon then None
  else begin
    let s = Float.max t.free_at t_cand in
    (* everything queued while the bus was busy competes at [s] *)
    refill t ~upto:s;
    let fg_ready =
      match fg with Some f when f.q_release <= s -> fg | _ -> None
    in
    match pick_winner t ~at:s ~fg:fg_ready with
    | None ->
        (* every candidate at [s] was a bus-off node's frame, skipped by
           [refill]; its cursor advanced, so retry from the next one *)
        round t ?fg ~horizon ()
    | Some w ->
        let foreground = match fg with Some f -> w == f | None -> false in
        let finish = s +. w.q_duration in
        t.free_at <- finish;
        t.busy <- t.busy +. w.q_duration;
        let corr =
          corrupted t ~ident:w.q_ident ~node:w.q_node ~attempt:w.q_attempt
            ~seq:w.q_seq
        in
        if not foreground then begin
          remove_pending t w;
          if corr && w.q_attempt <= t.cfg.b_retry_limit then
            t.queue <-
              { w with q_release = finish; q_attempt = w.q_attempt + 1 }
              :: t.queue
          else
            log_completion t ~p:w ~start:s ~finish ~dropped:corr
              ~background:true
        end;
        Some
          { r_frame = w; r_foreground = foreground; r_start = s; r_finish = finish; r_corrupted = corr }
  end

let transmit t ~ident ~node ~release ~duration =
  let seq = t.fg_seq in
  t.fg_seq <- seq + 1;
  let fg =
    ref
      {
        q_ident = ident;
        q_node = node;
        q_release = release;
        q_first_release = release;
        q_duration = duration;
        q_attempt = 1;
        q_seq = seq;
      }
  in
  let result = ref None in
  while !result = None do
    match round t ~fg:!fg ~horizon:infinity () with
    | None -> assert false (* fg is always pending *)
    | Some r ->
        if not r.r_foreground then begin
          (* transmit abort: on a starved (overloaded) bus the sender
             gives up once it has waited [max_wait] past its release —
             the liveness bound that keeps an overloaded simulation
             (flagged statically by MEDIA001) terminating *)
          if t.free_at -. release >= t.cfg.b_max_wait then begin
            let give_up = t.free_at in
            let c =
              {
                c_ident = ident;
                c_node = node;
                c_release = release;
                c_start = give_up;
                c_finish = give_up;
                c_attempts = !fg.q_attempt;
                c_dropped = true;
                c_background = false;
              }
            in
            t.completions <- c :: t.completions;
            result := Some c
          end
        end
        else if r.r_corrupted && !fg.q_attempt <= t.cfg.b_retry_limit then
          fg := { !fg with q_release = r.r_finish; q_attempt = !fg.q_attempt + 1 }
        else begin
          let c =
            {
              c_ident = ident;
              c_node = node;
              c_release = release;
              c_start = r.r_start;
              c_finish = r.r_finish;
              c_attempts = !fg.q_attempt;
              c_dropped = r.r_corrupted;
              c_background = false;
            }
          in
          t.completions <- c :: t.completions;
          result := Some c
        end
  done;
  Option.get !result

let drain t ~until =
  let continue_ = ref true in
  while !continue_ do
    match round t ~horizon:until () with
    | None -> continue_ := false
    | Some _ -> ()
  done

let log t = List.rev t.completions
let busy_time t = t.busy
let utilization t ~at = if at > 0. then t.busy /. at else 0.
