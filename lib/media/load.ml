(* Seeded background traffic: release instants are pure hashes of
   (seed, stream index, frame number), so the generator consumes no
   stateful RNG — interleaving bus queries cannot perturb the traffic,
   and an unloaded bus draws nothing at all.  Same machinery as
   Fault.Scenario's decision sampler. *)

type stream = {
  l_node : int;
  l_ident : int;
  l_words : int;
  l_period : float;
  l_jitter_frac : float;
  l_from : float;
  l_until : float;
}

let bad fmt = Printf.ksprintf invalid_arg ("[MEDIA004] " ^^ fmt)

let validate s =
  if s.l_node < 0 then bad "stream node %d is negative" s.l_node;
  if s.l_ident < 0 then bad "stream identifier %d is negative" s.l_ident;
  if s.l_words < 0 then bad "stream payload of %d words is negative" s.l_words;
  if not (s.l_period > 0.) then
    bad "stream period %g is not positive" s.l_period;
  if not (s.l_jitter_frac >= 0. && s.l_jitter_frac <= 1.) then
    bad "stream jitter fraction %g is outside [0, 1]" s.l_jitter_frac;
  if not (s.l_from >= 0.) then bad "stream start %g is negative" s.l_from;
  if not (s.l_until > s.l_from) then
    bad "stream window [%g, %g) is empty" s.l_from s.l_until

let periodic ?(jitter_frac = 0.) ?(from_t = 0.) ?(until_t = infinity) ~node
    ~ident ~words ~period () =
  let s =
    {
      l_node = node;
      l_ident = ident;
      l_words = words;
      l_period = period;
      l_jitter_frac = jitter_frac;
      l_from = from_t;
      l_until = until_t;
    }
  in
  validate s;
  s

let babbling ?(ident = 0) ?(words = 1) ~node ~period ~from_t ~until_t () =
  periodic ~node ~ident ~words ~period ~from_t ~until_t ()

(* SplitMix64 finalizer, as in Fault.Scenario. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let feed acc i =
  mix Int64.(add (mul acc 0x9e3779b97f4a7c15L) (of_int (i + 1)))

let hash01 ~seed coords =
  let h = List.fold_left feed (mix (Int64.of_int seed)) coords in
  let bits = Int64.(to_int (shift_right_logical h 11)) land ((1 lsl 53) - 1) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

(* stream-separating tag, kept clear of Fault.Scenario's tags 1-4 so a
   shared seed never correlates bus jitter with injection decisions *)
let tag_release = 11

let release ~seed ~index s k =
  let base = s.l_from +. (float_of_int k *. s.l_period) in
  if s.l_jitter_frac = 0. then base
  else base +. (s.l_jitter_frac *. s.l_period *. hash01 ~seed [ tag_release; index; k ])
