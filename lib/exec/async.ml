module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Sched = Aaa.Schedule
module Cg = Aaa.Codegen

type config = {
  iterations : int;
  law : Timing_law.t;
  comm_jitter_frac : float;
  bcet_frac : float;
  overrun_prob : float;
  overrun_factor : float;
  seed : int;
  condition : iteration:int -> var:string -> int;
  injection : Injection.t;
  recovery : Recovery.policy;
  bus_models : (string * Media.Bus.config) list;
}

let default_config =
  {
    iterations = 100;
    law = Timing_law.Uniform;
    comm_jitter_frac = 0.;
    bcet_frac = 0.5;
    overrun_prob = 0.;
    overrun_factor = 1.5;
    seed = 42;
    condition = (fun ~iteration:_ ~var:_ -> 0);
    injection = Injection.none;
    recovery = Recovery.disabled;
    bus_models = [];
  }

type trace = {
  period : float;
  iterations : int;
  violations : int;
  remote_consumptions : int;
  actuation_latencies : (Alg.op_id * float array) list;
  overruns : int;
  lost_transfers : int;
  retransmissions : int;
  recovered_transfers : int;
  recovery_events : Recovery.event list;
  bus_log : (string * Media.Bus.completion list) list;
}

let slot_key (c : Sched.comm_slot) =
  ( (fst c.Sched.cm_src :> int),
    snd c.Sched.cm_src,
    (fst c.Sched.cm_dst :> int),
    snd c.Sched.cm_dst,
    c.Sched.cm_hop )

let prev_key c =
  let a, b, d, e, hop = slot_key c in
  (a, b, d, e, hop - 1)

let run ?(config = default_config) exe =
  if config.iterations <= 0 then invalid_arg "Async.run: non-positive iteration count";
  let sched = exe.Cg.schedule in
  let alg = sched.Sched.algorithm in
  let period = Alg.period alg in
  let rng = Numerics.Rng.create config.seed in
  let table t key =
    match Hashtbl.find_opt t key with
    | Some a -> a
    | None ->
        let a = Array.make config.iterations Float.nan in
        Hashtbl.replace t key a;
        a
  in
  let posted : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 32 in
  let read_at : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 32 in
  let finish_of : (int, float array) Hashtbl.t = Hashtbl.create 32 in
  let finishes (op : Alg.op_id) =
    match Hashtbl.find_opt finish_of (op :> int) with
    | Some a -> a
    | None ->
        let a = Array.make config.iterations Float.nan in
        Hashtbl.replace finish_of (op :> int) a;
        a
  in
  let overruns = ref 0 in
  let inj = config.injection in
  let have_inj = not (Injection.is_none inj) in
  (* shared-bus models, one fresh Media.Bus.t per modeled medium *)
  let buses =
    if config.bus_models = [] then [||]
    else begin
      let arch = sched.Sched.architecture in
      let arr = Array.make (Arch.medium_count arch) None in
      List.iter
        (fun (bname, bcfg) ->
          match Arch.find_medium arch bname with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "[MEDIA004] Async.run: bus model %S names no medium of architecture %S"
                   bname (Arch.name arch))
          | Some mid ->
              if Arch.medium_kind arch mid <> Arch.Bus then
                invalid_arg
                  (Printf.sprintf
                     "[MEDIA004] Async.run: medium %S is not a shared bus"
                     bname);
              arr.((mid :> int)) <- Some (Media.Bus.create bcfg))
        config.bus_models;
      arr
    end
  in
  let bus_of mid = if Array.length buses = 0 then None else buses.(mid) in
  let pol = config.recovery in
  let retrans_on = have_inj && Recovery.retransmission_enabled pol in
  let lost_transfers = ref 0 in
  let retransmissions = ref 0 and recovered_transfers = ref 0 in
  let events = ref [] in
  let retry_used : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  (* remember each read slot so phase 3 can name the consumer *)
  let slot_of_key : (int * int * int * int * int, Sched.comm_slot) Hashtbl.t =
    Hashtbl.create 32
  in
  (* phase 1: operators fire every instruction at its static offset
     (or as soon as the previous one finishes, when running late) *)
  List.iter
    (fun (operator, body) ->
      let operator = Arch.operator_name sched.Sched.architecture operator in
      let time = ref 0. in
      for k = 0 to config.iterations - 1 do
        let base = float_of_int k *. period in
        List.iter
          (fun instr ->
            match instr with
            | Cg.Wait_period ->
                if !time > base +. 1e-9 then incr overruns;
                time := Float.max !time base
            | Cg.Exec op ->
                let slot = Sched.slot_of sched op in
                let start = Float.max !time (base +. slot.Sched.cs_start) in
                let skipped =
                  match Alg.op_cond alg op with
                  | None -> false
                  | Some { Alg.var; value } -> config.condition ~iteration:k ~var <> value
                in
                let failed =
                  have_inj && inj.Injection.operator_failed ~operator ~time:start
                in
                let duration =
                  if skipped || failed then 0.
                  else begin
                    let wcet = slot.Sched.cs_duration in
                    let nominal =
                      Timing_law.sample config.law rng ~bcet:(config.bcet_frac *. wcet)
                        ~wcet
                    in
                    let nominal =
                      if config.overrun_prob > 0.
                         && Numerics.Rng.float rng 1. < config.overrun_prob
                      then nominal *. config.overrun_factor
                      else nominal
                    in
                    match
                      if have_inj then
                        inj.Injection.overrun ~iteration:k ~op:(Alg.op_name alg op)
                      else None
                    with
                    | Some factor -> nominal *. factor
                    | None -> nominal
                  end
                in
                time := start +. duration;
                if not failed then (finishes op).(k) <- !time
            | Cg.Send c ->
                (* a fail-stopped producer posts nothing: the table's
                   bus slot departs carrying the old value *)
                if
                  not
                    (have_inj && inj.Injection.operator_failed ~operator ~time:!time)
                then (table posted (slot_key c)).(k) <- !time
            | Cg.Recv c ->
                (* time-triggered read at the planned read offset —
                   completion plus any slack the schedule inserted for
                   retransmissions (Schedule.insert_slack) *)
                let planned = base +. c.Sched.cm_read in
                let t_read = Float.max !time planned in
                time := t_read;
                Hashtbl.replace slot_of_key (slot_key c) c;
                (table read_at (slot_key c)).(k) <- t_read)
          body
      done)
    exe.Cg.programs;
  (* phase 2: the media are time-triggered too — every transfer slot
     fires at its planned offset (or as soon as the medium frees up),
     in the static order.  Data that has not been posted by departure
     misses its slot: the fresh value only travels next period, which
     the freshness check reports as a stale read. *)
  let arrival : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 32 in
  let medium_time : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
  let medium_clock m =
    match Hashtbl.find_opt medium_time m with
    | Some r -> r
    | None ->
        let r = ref 0. in
        Hashtbl.replace medium_time m r;
        r
  in
  (* all transfer instances in global planned-start order, so a hop's
     predecessor (always planned earlier) is processed first *)
  let instances =
    List.concat_map
      (fun (_, transfers) ->
        List.concat_map
          (fun c ->
            List.init config.iterations (fun k ->
                ((float_of_int k *. period) +. c.Sched.cm_start, c, k)))
          transfers)
      exe.Cg.media_programs
    |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
  in
  List.iter
    (fun (planned_start, c, k) ->
      let clock = medium_clock ((c.Sched.cm_medium :> int)) in
      let bus = bus_of (c.Sched.cm_medium :> int) in
      let release = Float.max !clock planned_start in
      (* with a bus model, the slot's frame is enqueued at its planned
         offset and arbitrates against the bus's other traffic; the
         fixed-duration path below is bit-for-bit the original *)
      let start, t_done0, bus_dropped =
        match bus with
        | None -> (release, release +. c.Sched.cm_duration, false)
        | Some b ->
            let node = (c.Sched.cm_from :> int) in
            let duration =
              if config.comm_jitter_frac <= 0. || c.Sched.cm_duration <= 0. then
                c.Sched.cm_duration
              else
                Numerics.Rng.uniform rng
                  ((1. -. Float.min 1. config.comm_jitter_frac)
                  *. c.Sched.cm_duration)
                  c.Sched.cm_duration
            in
            if Media.Bus.node_off b ~node ~time:release then
              (* a bus-off interface posts nothing and occupies no bus *)
              (release, release, true)
            else
              let comp =
                Media.Bus.transmit b ~ident:(Media.Bus.slot_identifier c)
                  ~node ~release ~duration
              in
              ( comp.Media.Bus.c_start,
                comp.Media.Bus.c_finish,
                comp.Media.Bus.c_dropped )
      in
      let ready =
        if c.Sched.cm_hop = 0 then (table posted (slot_key c)).(k)
        else (table arrival (prev_key c)).(k)
      in
      let data_ready = (not (Float.is_nan ready)) && ready <= start +. 1e-12 in
      let medium_name = Arch.medium_name sched.Sched.architecture c.Sched.cm_medium in
      let dropped =
        have_inj
        && (inj.Injection.medium_down ~medium:medium_name ~time:start
           || inj.Injection.transfer_lost ~iteration:k ~slot:c)
      in
      (* the slot is consumed whether or not fresh data made it *)
      let t_done = ref t_done0 in
      let delivered = ref (not (dropped || bus_dropped)) in
      let attempts = ref 0 in
      if dropped && (not bus_dropped) && data_ready && retrans_on then begin
        (* retries extend the slot past its planned end; the table's
           later transfers on this medium are pushed back — recovery
           can itself cause overruns *)
        let mkey = ((c.Sched.cm_medium :> int), k) in
        let used = ref (Option.value (Hashtbl.find_opt retry_used mkey) ~default:0) in
        while
          (not !delivered)
          && !attempts < pol.Recovery.max_retries
          && !used < pol.Recovery.retry_budget
        do
          incr attempts;
          incr used;
          incr retransmissions;
          let retry_start = !t_done +. Recovery.backoff_delay pol ~attempt:!attempts in
          let retry_bus_dropped =
            match bus with
            | None ->
                t_done := retry_start +. c.Sched.cm_duration;
                false
            | Some b ->
                let comp =
                  Media.Bus.transmit b ~ident:(Media.Bus.slot_identifier c)
                    ~node:(c.Sched.cm_from :> int)
                    ~release:retry_start ~duration:c.Sched.cm_duration
                in
                t_done := comp.Media.Bus.c_finish;
                comp.Media.Bus.c_dropped
          in
          delivered :=
            not
              (retry_bus_dropped
              || inj.Injection.medium_down ~medium:medium_name ~time:retry_start
              || inj.Injection.retry_lost ~attempt:!attempts ~iteration:k ~slot:c)
        done;
        Hashtbl.replace retry_used mkey !used;
        events :=
          (if !delivered then
             Recovery.Transfer_recovered
               { time = !t_done; iteration = k; medium = medium_name; attempts = !attempts }
           else
             Recovery.Retries_exhausted
               { time = !t_done; iteration = k; medium = medium_name; attempts = !attempts })
          :: !events
      end;
      if bus_dropped then incr lost_transfers
      else if dropped then
        if !delivered then incr recovered_transfers else incr lost_transfers;
      clock := !t_done;
      if !delivered && data_ready then
        (table arrival (slot_key c)).(k) <-
          (match bus with
          | Some _ ->
              (* bus timing already includes the jittered frame time *)
              !t_done
          | None ->
              if !attempts > 0 then !t_done
              else begin
                (* same rng draw as the recovery-free path, so disabling
                   recovery replays the seed's stream exactly *)
                let duration =
                  if config.comm_jitter_frac <= 0. || c.Sched.cm_duration <= 0. then
                    c.Sched.cm_duration
                  else
                    Numerics.Rng.uniform rng
                      ((1. -. Float.min 1. config.comm_jitter_frac) *. c.Sched.cm_duration)
                      c.Sched.cm_duration
                in
                start +. duration
              end))
    instances;
  (* phase 3: freshness — iteration k's read is stale when iteration
     k's transfer had not arrived yet *)
  let violations = ref 0 and remote = ref 0 in
  Hashtbl.iter
    (fun key reads ->
      let arrivals = table arrival key in
      Array.iteri
        (fun k t_read ->
          if not (Float.is_nan t_read) then begin
            incr remote;
            let t_arrive = arrivals.(k) in
            if Float.is_nan t_arrive || t_arrive > t_read +. 1e-12 then begin
              incr violations;
              if pol.Recovery.freshness_watchdog then
                match Hashtbl.find_opt slot_of_key key with
                | Some c ->
                    events :=
                      Recovery.Stale_detected
                        {
                          time = t_read;
                          iteration = k;
                          op = Alg.op_name alg (fst c.Sched.cm_dst);
                        }
                      :: !events
                | None -> ()
            end
          end)
        reads)
    read_at;
  let actuation_latencies =
    List.map
      (fun op ->
        let f = finishes op in
        (op, Array.mapi (fun k t -> t -. (float_of_int k *. period)) f))
      (Alg.actuators alg)
  in
  let bus_log =
    if Array.length buses = 0 then []
    else begin
      let arch = sched.Sched.architecture in
      let horizon = float_of_int config.iterations *. period in
      List.filter_map
        (fun (mid : Arch.medium_id) ->
          match buses.((mid :> int)) with
          | None -> None
          | Some b ->
              Media.Bus.drain b ~until:horizon;
              Some (Arch.medium_name arch mid, Media.Bus.log b))
        (Arch.media arch)
    end
  in
  {
    period;
    iterations = config.iterations;
    violations = !violations;
    remote_consumptions = !remote;
    actuation_latencies;
    overruns = !overruns;
    lost_transfers = !lost_transfers;
    retransmissions = !retransmissions;
    recovered_transfers = !recovered_transfers;
    (* the Hashtbl.iter above enumerates in hash order: sort for a
       deterministic event list *)
    recovery_events = List.sort Recovery.compare_event !events;
    bus_log;
  }
