(** Execution of a generated executive on a simulated distributed
    machine.

    Each operator runs its {!Aaa.Codegen} program as a sequential
    process; each medium carries its transfers in the generated static
    order.  Synchronisation follows the executive's semantics: a
    transfer starts once its data is posted and the medium is free, a
    [Recv] blocks until its transfer completes, and a [Wait_period]
    blocks until the iteration's periodic release.  Actual operation
    durations are drawn from a {!Timing_law} within [\[BCET, WCET\]],
    and conditioned operations are skipped when their condition does
    not hold — the two mechanisms that make real I/O instants differ
    from the stroboscopic model.

    The simulation doubles as an empirical deadlock-freedom check: if
    no entity can progress before completing the requested iterations,
    {!Deadlock} is raised with a description of who waits on what. *)

exception Deadlock of string

type config = {
  iterations : int;  (** number of periods to execute *)
  law : Timing_law.t;  (** computation-duration law *)
  comm_jitter_frac : float;
      (** transfers take [uniform(\[1−f, 1\])·planned] time; [0.] replays
          the planned duration exactly *)
  bcet_frac : float;
      (** fallback BCET as a fraction of the planned WCET when no
          durations table is supplied *)
  durations : Aaa.Durations.t option;
      (** BCET lookup (per operation and operator) when available *)
  overrun_prob : float;
      (** probability that an execution {e exceeds} its WCET (a faulty
          characterisation or an unmodelled interference) *)
  overrun_factor : float;
      (** duration multiplier applied on an overrun (> 1) *)
  seed : int;  (** RNG seed — runs are reproducible *)
  condition : iteration:int -> var:string -> int;
      (** run-time value of each conditioning variable *)
  injection : Injection.t;
      (** structural faults (fail-stop, outages, message loss,
          overrun bursts) — see {!Injection}.  A lost transfer still
          consumes its slot and unblocks its [Recv] at the normal
          completion instant, but the consumer reads the {e previous}
          iteration's value: the trace counts it in [stale_reads]
          rather than deadlocking.  A dead operator's program runs
          instantly, posting frozen (stale) values. *)
  recovery : Recovery.policy;
      (** online detection & recovery — see {!Recovery}.  With
          {!Recovery.disabled} (the default) the executive behaves
          exactly as before: faults stay silent in the counters. *)
  bus_models : (string * Media.Bus.config) list;
      (** shared-bus network models, keyed by medium name.  A listed
          medium's transfers become frames on a fresh {!Media.Bus.t}
          (one per run; a failover run's phases each get their own, in
          their own frame): the completion instant comes from CAN-like
          arbitration against the bus's background traffic, corrupted
          frames consume bus time and retry up to the bus's limit
          before the payload goes stale, and a bus-off source loses its
          frames without occupying the bus.  Recovery retransmissions
          re-arbitrate like any other frame.  With the default [\[\]]
          every transfer keeps its fixed planned duration, bit-for-bit.
          Raises [Invalid_argument] (["[MEDIA004]"]) when a name
          matches no medium or a point-to-point one. *)
}

val default_config : config
(** 100 iterations, {!Timing_law.Uniform}, no comm jitter,
    [bcet_frac = 0.5], no overruns ([overrun_prob = 0.],
    [overrun_factor = 1.5]), seed 42, all conditions = 0, no injected
    faults, recovery disabled. *)

type op_exec = {
  oe_iteration : int;
  oe_op : Aaa.Algorithm.op_id;
  oe_operator : Aaa.Architecture.operator_id;
  oe_start : float;
  oe_finish : float;
  oe_skipped : bool;  (** condition did not hold: no execution *)
  oe_failed : bool;  (** operator was fail-stopped: no execution *)
}

type comm_exec = {
  ce_iteration : int;
  ce_slot : Aaa.Schedule.comm_slot;
  ce_start : float;
  ce_finish : float;
}

type trace = {
  executive : Aaa.Codegen.t;
  period : float;
  iterations : int;
  ops : op_exec list;  (** chronological *)
  comms : comm_exec list;  (** chronological *)
  iteration_end : float array;
      (** per iteration, the last finish over all operators *)
  overruns : int;
      (** iterations still running past their next release *)
  lost_transfers : int;
      (** transfer instances whose payload went stale under the
          injection (counted once per instance, at the first loss
          along its hop chain) *)
  stale_reads : int;
      (** [Recv]s that consumed a previous-iteration value — the
          freshness violations of the injected run *)
  retransmissions : int;
      (** retry attempts spent by the recovery policy (whole run) *)
  recovered_transfers : int;
      (** dropped transfers whose payload a retransmission saved *)
  recovery_events : Recovery.event list;
      (** dated detection / recovery observations, chronological under
          {!Recovery.compare_event}; whole-run (absolute time) at the
          top level *)
  detection_latency : float option;
      (** [confirm_time − fail_time] when the heartbeat supervisor
          confirmed a fail-stop *)
  switched_at : int option;
      (** iteration index at which the mode switch took effect *)
  bus_log : (string * Media.Bus.completion list) list;
      (** per modeled bus, every frame completion (executive transfers
          and background traffic) in chronological order, drained to
          the run horizon — empty without [bus_models].  After a mode
          switch this is the nominal phase's log; the failover phase's
          log lives in its [continuation]. *)
  continuation : trace option;
      (** after a mode switch, the failover phase as its own trace {e in
          its own frame}: its executive is the failover one (renumbered
          operators), its times are relative to the switch instant and
          its iterations count from 0.  The accessor functions below
          stitch through it; the top-level counters already include
          it. *)
}

val run : ?config:config -> Aaa.Codegen.t -> trace
(** Executes the executive.  Raises {!Deadlock} (never happens for
    executives generated from valid schedules — tests rely on this),
    or [Invalid_argument] on a non-positive iteration count.

    With a {!Recovery} policy whose heartbeat supervisor confirms a
    fail-stop and whose [failover] table holds an executive for the
    dead operator, the run switches to that executive at
    {!Recovery.switch_iteration}: the trace carries [switched_at], the
    failover phase as [continuation], and the whole-run counters.  The
    failover phase sees the same injection, condition stream and seed,
    re-expressed in its frame — the two-phase run is bit-for-bit
    reproducible. *)

(** {2 Latency extraction (paper §2, eqs. (1)–(2))} *)

val instants : trace -> Aaa.Algorithm.op_id -> float array
(** Completion instants of one operation across iterations ([nan] at
    iterations where it was skipped or its operator had failed),
    stitched in absolute time across a mode switch. *)

val sampling_latencies : trace -> (Aaa.Algorithm.op_id * float array) list
(** For each sensor [j], the per-iteration sampling latency
    [Ls_j(k) = I_j(k) − k·Ts]. *)

val actuation_latencies : trace -> (Aaa.Algorithm.op_id * float array) list
(** For each actuator [j], [La_j(k) = O_j(k) − k·Ts]. *)

val fresh_actuations : trace -> bool array
(** Per-iteration freshness of the actuated outputs: [true] at release
    [k] iff every actuator completed (not skipped, operator alive) and
    the freshness watchdog dated no stale read during iteration [k].
    The evidence stream {!Standby}'s output voter consumes. *)

val utilization : trace -> (Aaa.Architecture.operator_id * float) list
(** Per-operator utilisation: busy time (non-skipped executions) over
    the total simulated time — the architecture-sizing metric.  After
    a mode switch, busy time is merged by operator {e name} (the
    failover architecture renumbers operators), keyed by the nominal
    architecture's ids. *)

val latencies_csv : trace -> string
(** CSV table of the per-iteration latencies: one row per iteration,
    one [Ls_<op>] column per sensor and one [La_<op>] column per
    actuator ([nan] where skipped) — for plotting Fig.-1-style series
    outside OCaml. *)

val order_conformant : trace -> bool
(** Checks the run respected the schedule's total orders: on every
    operator (and medium), executions happened in the scheduled
    sequence without overlap.  Always true for generated executives —
    exercised by the test suite as the paper's order-guarantee
    property.  After a mode switch, each phase is checked against its
    own executive's schedule. *)
