type policy = {
  freshness_watchdog : bool;
  max_retries : int;
  retry_budget : int;
  backoff_base : float;
  backoff_factor : float;
  heartbeat_timeout : float;
  heartbeat_k : int;
  blackout : float;
  failover : (string * Aaa.Codegen.t) list;
}

let disabled =
  {
    freshness_watchdog = false;
    max_retries = 0;
    retry_budget = 0;
    backoff_base = 0.;
    backoff_factor = 2.;
    heartbeat_timeout = 0.;
    heartbeat_k = 1;
    blackout = 0.;
    failover = [];
  }

let invalid fmt = Printf.ksprintf (fun s -> invalid_arg ("[REC001] Recovery.make: " ^ s)) fmt

let make ?(freshness_watchdog = true) ?(max_retries = 2) ?(retry_budget = 4)
    ?backoff_base ?(backoff_factor = 2.) ?heartbeat_timeout ?(heartbeat_k = 2)
    ?blackout ?(failover = []) ~period () =
  if period <= 0. then invalid "non-positive period %g" period;
  let backoff_base = Option.value backoff_base ~default:(period /. 50.) in
  let heartbeat_timeout = Option.value heartbeat_timeout ~default:period in
  let blackout = Option.value blackout ~default:period in
  if max_retries < 0 then invalid "negative retry count %d" max_retries;
  if retry_budget < 0 then invalid "negative retry budget %d" retry_budget;
  if backoff_base < 0. then invalid "negative backoff %g" backoff_base;
  if backoff_factor < 1. then invalid "backoff factor %g below 1" backoff_factor;
  if heartbeat_timeout < 0. then invalid "negative heartbeat timeout %g" heartbeat_timeout;
  if heartbeat_k < 1 then invalid "heartbeat confirmation count %d below 1" heartbeat_k;
  if blackout < 0. then invalid "negative blackout %g" blackout;
  {
    freshness_watchdog;
    max_retries;
    retry_budget;
    backoff_base;
    backoff_factor;
    heartbeat_timeout;
    heartbeat_k;
    blackout;
    failover;
  }

type event =
  | Stale_detected of { time : float; iteration : int; op : string }
  | Transfer_recovered of {
      time : float;
      iteration : int;
      medium : string;
      attempts : int;
    }
  | Retries_exhausted of {
      time : float;
      iteration : int;
      medium : string;
      attempts : int;
    }
  | Failstop_confirmed of { time : float; operator : string; fail_time : float }
  | Mode_switched of { time : float; iteration : int; operator : string }
  | Voter_switched of { time : float; iteration : int; operator : string }

let event_time = function
  | Stale_detected { time; _ }
  | Transfer_recovered { time; _ }
  | Retries_exhausted { time; _ }
  | Failstop_confirmed { time; _ }
  | Mode_switched { time; _ }
  | Voter_switched { time; _ } ->
      time

let compare_event a b =
  let c = Float.compare (event_time a) (event_time b) in
  if c <> 0 then c else Stdlib.compare a b

let pp_event ppf = function
  | Stale_detected { time; iteration; op } ->
      Format.fprintf ppf "t=%g: stale read at %S (iteration %d)" time op iteration
  | Transfer_recovered { time; iteration; medium; attempts } ->
      Format.fprintf ppf "t=%g: transfer recovered on %S after %d retr%s (iteration %d)"
        time medium attempts
        (if attempts = 1 then "y" else "ies")
        iteration
  | Retries_exhausted { time; iteration; medium; attempts } ->
      Format.fprintf ppf "t=%g: retries exhausted on %S after %d attempt%s (iteration %d)"
        time medium attempts
        (if attempts = 1 then "" else "s")
        iteration
  | Failstop_confirmed { time; operator; fail_time } ->
      Format.fprintf ppf "t=%g: fail-stop of %S confirmed (failed at %g)" time operator
        fail_time
  | Mode_switched { time; iteration; operator } ->
      Format.fprintf ppf "t=%g: switched to the %S failover executive (iteration %d)" time
        operator iteration
  | Voter_switched { time; iteration; operator } ->
      Format.fprintf ppf
        "t=%g: voter pinned the %S hot-standby stream (iteration %d, zero blackout)" time
        operator iteration

let retransmission_enabled p = p.max_retries > 0 && p.retry_budget > 0
let supervisor_enabled p = p.heartbeat_timeout > 0. && p.heartbeat_k >= 1

let backoff_delay p ~attempt =
  if attempt < 1 then invalid_arg "Recovery.backoff_delay: attempt below 1";
  p.backoff_base *. (p.backoff_factor ** float_of_int (attempt - 1))

let worst_case_retry_time p ~transfer_duration =
  let rec go acc attempt =
    if attempt > p.max_retries then acc
    else go (acc +. backoff_delay p ~attempt +. transfer_duration) (attempt + 1)
  in
  go 0. 1

let first_failure ~failed ~horizon =
  if not (failed ~time:horizon) then None
  else if failed ~time:0. then Some 0.
  else begin
    (* monotone predicate: bisect the transition *)
    let lo = ref 0. and hi = ref horizon in
    for _ = 1 to 64 do
      let mid = 0.5 *. (!lo +. !hi) in
      if failed ~time:mid then hi := mid else lo := mid
    done;
    Some !hi
  end

type confirmation = {
  operator : string;
  fail_time : float;
  first_missed : int;
  confirm_time : float;
}

let confirm p ~operator_failed ~operators ~period ~iterations =
  if not (supervisor_enabled p) then None
  else
    List.fold_left
      (fun best operator ->
        let failed ~time = operator_failed ~operator ~time in
        let rec find k =
          if k >= iterations then None
          else if failed ~time:(float_of_int k *. period) then Some k
          else find (k + 1)
        in
        match find 0 with
        | None -> best
        | Some k0 when k0 + p.heartbeat_k - 1 >= iterations -> best
        | Some k0 ->
            let confirm_time =
              (float_of_int (k0 + p.heartbeat_k - 1) *. period) +. p.heartbeat_timeout
            in
            let fail_time =
              (* the failure happened no later than release k0 *)
              let horizon = float_of_int k0 *. period in
              match first_failure ~failed ~horizon with
              | Some t -> t
              | None -> horizon
            in
            let candidate = { operator; fail_time; first_missed = k0; confirm_time } in
            (match best with
            | Some b when b.confirm_time <= candidate.confirm_time -> best
            | Some _ | None -> Some candidate))
      None operators

let switch_iteration p ~confirm_time ~period =
  let t = confirm_time +. p.blackout in
  int_of_float (Float.ceil ((t /. period) -. 1e-9))
