module Alg = Aaa.Algorithm
module Arch = Aaa.Architecture
module Sched = Aaa.Schedule
module Cg = Aaa.Codegen

exception Deadlock of string

type config = {
  iterations : int;
  law : Timing_law.t;
  comm_jitter_frac : float;
  bcet_frac : float;
  durations : Aaa.Durations.t option;
  overrun_prob : float;
  overrun_factor : float;
  seed : int;
  condition : iteration:int -> var:string -> int;
  injection : Injection.t;
}

let default_config =
  {
    iterations = 100;
    law = Timing_law.Uniform;
    comm_jitter_frac = 0.;
    bcet_frac = 0.5;
    durations = None;
    overrun_prob = 0.;
    overrun_factor = 1.5;
    seed = 42;
    condition = (fun ~iteration:_ ~var:_ -> 0);
    injection = Injection.none;
  }

type op_exec = {
  oe_iteration : int;
  oe_op : Alg.op_id;
  oe_operator : Arch.operator_id;
  oe_start : float;
  oe_finish : float;
  oe_skipped : bool;
  oe_failed : bool;
}

type comm_exec = {
  ce_iteration : int;
  ce_slot : Sched.comm_slot;
  ce_start : float;
  ce_finish : float;
}

type trace = {
  executive : Cg.t;
  period : float;
  iterations : int;
  ops : op_exec list;
  comms : comm_exec list;
  iteration_end : float array;
  overruns : int;
  lost_transfers : int;
  stale_reads : int;
}

(* identity of one hop of a transfer within one iteration *)
let slot_key (c : Sched.comm_slot) =
  ( (fst c.Sched.cm_src :> int),
    snd c.Sched.cm_src,
    (fst c.Sched.cm_dst :> int),
    snd c.Sched.cm_dst,
    c.Sched.cm_hop )

type operator_state = {
  os_id : Arch.operator_id;
  os_program : Cg.instr array;
  mutable os_pc : int;
  mutable os_iter : int;
  mutable os_time : float;
}

type medium_state = {
  ms_transfers : Sched.comm_slot array;
  mutable ms_index : int;
  mutable ms_iter : int;
  mutable ms_time : float;
}

let run ?(config = default_config) exe =
  if config.iterations <= 0 then invalid_arg "Machine.run: non-positive iteration count";
  let sched = exe.Cg.schedule in
  let alg = sched.Sched.algorithm in
  let arch = sched.Sched.architecture in
  let period = Alg.period alg in
  let rng = Numerics.Rng.create config.seed in
  let posted : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 64 in
  let finished : (int * int * int * int * int, float array) Hashtbl.t = Hashtbl.create 64 in
  let slot_table kind table key =
    match Hashtbl.find_opt table key with
    | Some arr -> arr
    | None ->
        let arr = Array.make config.iterations Float.nan in
        Hashtbl.replace table key arr;
        ignore kind;
        arr
  in
  let operators =
    List.map
      (fun (operator, body) ->
        { os_id = operator; os_program = Array.of_list body; os_pc = 0; os_iter = 0; os_time = 0. })
      exe.Cg.programs
  in
  let media =
    List.map
      (fun (_, transfers) ->
        { ms_transfers = Array.of_list transfers; ms_index = 0; ms_iter = 0; ms_time = 0. })
      exe.Cg.media_programs
  in
  let ops_log = ref [] in
  let comms_log = ref [] in
  let inj = config.injection in
  let have_inj = not (Injection.is_none inj) in
  (* per hop instance: the payload carried is stale (lost somewhere
     upstream); the slot itself always fires, so injected faults never
     block the executive *)
  let lost : (int * int * int * int * int, bool array) Hashtbl.t = Hashtbl.create 16 in
  let lost_arr key =
    match Hashtbl.find_opt lost key with
    | Some a -> a
    | None ->
        let a = Array.make config.iterations false in
        Hashtbl.replace lost key a;
        a
  in
  let lost_transfers = ref 0 and stale_reads = ref 0 in
  let operator_dead os =
    have_inj
    && inj.Injection.operator_failed ~operator:(Arch.operator_name arch os.os_id)
         ~time:os.os_time
  in
  let sample_exec_duration op operator =
    (* the WCET is the planned slot length; the BCET comes from the
       durations table when provided, else from [bcet_frac] *)
    let wcet =
      match List.find_opt (fun s -> s.Sched.cs_op = op) sched.Sched.comp with
      | Some s -> s.Sched.cs_duration
      | None -> 0.
    in
    let bcet =
      let from_table =
        Option.bind config.durations (fun table ->
            Aaa.Durations.bcet table ~op:(Alg.op_name alg op)
              ~operator:(Arch.operator_name arch operator))
      in
      match from_table with
      | Some b -> Float.min b wcet
      | None -> config.bcet_frac *. wcet
    in
    let nominal = Timing_law.sample config.law rng ~bcet ~wcet in
    if config.overrun_prob > 0. && Numerics.Rng.float rng 1. < config.overrun_prob then
      nominal *. config.overrun_factor
    else nominal
  in
  let sample_comm_duration planned =
    if config.comm_jitter_frac <= 0. then planned
    else
      let f = Float.min 1. config.comm_jitter_frac in
      if planned <= 0. then planned
      else Numerics.Rng.uniform rng ((1. -. f) *. planned) planned
  in
  (* one attempt to advance an operator; returns true on progress *)
  let step_operator os =
    if os.os_iter >= config.iterations then false
    else
      match os.os_program.(os.os_pc) with
      | Cg.Wait_period ->
          os.os_time <- Float.max os.os_time (float_of_int os.os_iter *. period);
          os.os_pc <- os.os_pc + 1;
          true
      | Cg.Exec op ->
          let skipped =
            match Alg.op_cond alg op with
            | None -> false
            | Some { Alg.var; value } -> config.condition ~iteration:os.os_iter ~var <> value
          in
          let failed = (not skipped) && operator_dead os in
          let start = os.os_time in
          let finish =
            if skipped || failed then start
            else begin
              let d = sample_exec_duration op os.os_id in
              match
                if have_inj then
                  inj.Injection.overrun ~iteration:os.os_iter ~op:(Alg.op_name alg op)
                else None
              with
              | Some factor -> start +. (d *. factor)
              | None -> start +. d
            end
          in
          os.os_time <- finish;
          ops_log :=
            {
              oe_iteration = os.os_iter;
              oe_op = op;
              oe_operator = os.os_id;
              oe_start = start;
              oe_finish = finish;
              oe_skipped = skipped;
              oe_failed = failed;
            }
            :: !ops_log;
          os.os_pc <- os.os_pc + 1;
          true
      | Cg.Send c ->
          let arr = slot_table `Posted posted (slot_key c) in
          arr.(os.os_iter) <- os.os_time;
          (* a dead producer posts instantly, but the value it posts is
             the previous iteration's (its outputs are frozen) *)
          if operator_dead os then begin
            let la = lost_arr (slot_key c) in
            if not la.(os.os_iter) then begin
              la.(os.os_iter) <- true;
              incr lost_transfers
            end
          end;
          os.os_pc <- os.os_pc + 1;
          true
      | Cg.Recv c ->
          let arr = slot_table `Finished finished (slot_key c) in
          let t = arr.(os.os_iter) in
          if Float.is_nan t then false
          else begin
            os.os_time <- Float.max os.os_time t;
            if have_inj && (lost_arr (slot_key c)).(os.os_iter) then incr stale_reads;
            os.os_pc <- os.os_pc + 1;
            true
          end
  in
  let wrap_operator os =
    if os.os_iter < config.iterations && os.os_pc >= Array.length os.os_program then begin
      os.os_iter <- os.os_iter + 1;
      os.os_pc <- 0
    end
  in
  let step_medium ms =
    if ms.ms_iter >= config.iterations || Array.length ms.ms_transfers = 0 then false
    else begin
      let c = ms.ms_transfers.(ms.ms_index) in
      (* hop 0 waits for the producer's post; later hops wait for the
         previous hop's completion *)
      let posted_arr =
        if c.Sched.cm_hop = 0 then slot_table `Posted posted (slot_key c)
        else
          slot_table `Finished finished
            (let a, b, cc, d, hop = slot_key c in
             (a, b, cc, d, hop - 1))
      in
      let t_posted = posted_arr.(ms.ms_iter) in
      if Float.is_nan t_posted then false
      else begin
        let start = Float.max ms.ms_time t_posted in
        let finish = start +. sample_comm_duration c.Sched.cm_duration in
        if have_inj then begin
          let inherited =
            let key =
              if c.Sched.cm_hop = 0 then slot_key c
              else
                let a, b, d, e, hop = slot_key c in
                (a, b, d, e, hop - 1)
            in
            (lost_arr key).(ms.ms_iter)
          in
          let dropped =
            inj.Injection.medium_down
              ~medium:(Arch.medium_name arch c.Sched.cm_medium)
              ~time:start
            || inj.Injection.transfer_lost ~iteration:ms.ms_iter ~slot:c
          in
          if inherited || dropped then begin
            (lost_arr (slot_key c)).(ms.ms_iter) <- true;
            if dropped && not inherited then incr lost_transfers
          end
        end;
        let fin_arr = slot_table `Finished finished (slot_key c) in
        fin_arr.(ms.ms_iter) <- finish;
        ms.ms_time <- finish;
        comms_log :=
          { ce_iteration = ms.ms_iter; ce_slot = c; ce_start = start; ce_finish = finish }
          :: !comms_log;
        if ms.ms_index + 1 >= Array.length ms.ms_transfers then begin
          ms.ms_index <- 0;
          ms.ms_iter <- ms.ms_iter + 1
        end
        else ms.ms_index <- ms.ms_index + 1;
        true
      end
    end
  in
  let all_done () =
    List.for_all (fun os -> os.os_iter >= config.iterations) operators
    && List.for_all
         (fun ms -> ms.ms_iter >= config.iterations || Array.length ms.ms_transfers = 0)
         media
  in
  let describe_blocked () =
    let operator_desc =
      List.filter_map
        (fun os ->
          if os.os_iter >= config.iterations then None
          else
            Some
              (Printf.sprintf "%s blocked at pc=%d (iteration %d)"
                 (Arch.operator_name arch os.os_id)
                 os.os_pc os.os_iter))
        operators
    in
    String.concat "; " operator_desc
  in
  let rec drive () =
    if not (all_done ()) then begin
      let progress = ref false in
      List.iter
        (fun os ->
          (* advance greedily while possible to keep the loop cheap *)
          while step_operator os do
            progress := true;
            wrap_operator os
          done)
        operators;
      List.iter (fun ms -> while step_medium ms do progress := true done) media;
      if not !progress then
        raise (Deadlock (Printf.sprintf "executive deadlock: %s" (describe_blocked ())));
      drive ()
    end
  in
  drive ();
  let ops = List.rev !ops_log in
  let comms = List.rev !comms_log in
  let iteration_end = Array.make config.iterations 0. in
  List.iter
    (fun oe ->
      iteration_end.(oe.oe_iteration) <- Float.max iteration_end.(oe.oe_iteration) oe.oe_finish)
    ops;
  let overruns = ref 0 in
  Array.iteri
    (fun k t_end -> if t_end > (float_of_int (k + 1) *. period) +. 1e-9 then incr overruns)
    iteration_end;
  {
    executive = exe;
    period;
    iterations = config.iterations;
    ops;
    comms;
    iteration_end;
    overruns = !overruns;
    lost_transfers = !lost_transfers;
    stale_reads = !stale_reads;
  }

let instants trace op =
  let arr = Array.make trace.iterations Float.nan in
  List.iter
    (fun oe ->
      if oe.oe_op = op && (not oe.oe_skipped) && not oe.oe_failed then
        arr.(oe.oe_iteration) <- oe.oe_finish)
    trace.ops;
  arr

let latencies_of trace ids =
  List.map
    (fun op ->
      let inst = instants trace op in
      let lat =
        Array.mapi
          (fun k t -> if Float.is_nan t then t else t -. (float_of_int k *. trace.period))
          inst
      in
      (op, lat))
    ids

let sampling_latencies trace =
  latencies_of trace (Alg.sensors trace.executive.Cg.schedule.Sched.algorithm)

let actuation_latencies trace =
  latencies_of trace (Alg.actuators trace.executive.Cg.schedule.Sched.algorithm)

let utilization trace =
  let arch = trace.executive.Cg.schedule.Sched.architecture in
  let horizon = float_of_int trace.iterations *. trace.period in
  List.map
    (fun operator ->
      let busy =
        List.fold_left
          (fun acc oe ->
            if oe.oe_operator = operator && not oe.oe_skipped then
              acc +. (oe.oe_finish -. oe.oe_start)
            else acc)
          0. trace.ops
      in
      (operator, busy /. horizon))
    (Arch.operators arch)

let latencies_csv trace =
  let alg = trace.executive.Cg.schedule.Sched.algorithm in
  let columns =
    List.map (fun (op, lat) -> ("Ls_" ^ Alg.op_name alg op, lat)) (sampling_latencies trace)
    @ List.map
        (fun (op, lat) -> ("La_" ^ Alg.op_name alg op, lat))
        (actuation_latencies trace)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    ("iteration," ^ String.concat "," (List.map fst columns) ^ "\n");
  for k = 0 to trace.iterations - 1 do
    Buffer.add_string buf (string_of_int k);
    List.iter
      (fun (_, lat) -> Buffer.add_string buf (Printf.sprintf ",%.9g" lat.(k)))
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let order_conformant trace =
  let sched = trace.executive.Cg.schedule in
  (* on every operator, executions must follow the scheduled sequence
     within each iteration, without overlap *)
  let ok = ref true in
  List.iter
    (fun operator ->
      let expected = List.map (fun s -> s.Sched.cs_op) (Sched.on_operator sched operator) in
      for k = 0 to trace.iterations - 1 do
        let actual =
          List.filter_map
            (fun oe ->
              if oe.oe_operator = operator && oe.oe_iteration = k then Some oe else None)
            trace.ops
        in
        let names = List.map (fun oe -> oe.oe_op) actual in
        if names <> expected then ok := false;
        let rec overlap = function
          | a :: (b :: _ as rest) ->
              if a.oe_finish > b.oe_start +. 1e-9 then ok := false;
              overlap rest
          | [ _ ] | [] -> ()
        in
        overlap actual
      done)
    (Arch.operators sched.Sched.architecture);
  !ok
